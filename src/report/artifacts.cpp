#include "report/artifacts.hpp"

#include <stdexcept>

namespace dynaq::report {
namespace {

OracleQueueRow load_oracle_queue(const Json& q) {
  OracleQueueRow row;
  row.queue = q.integer_or("queue", 0);
  row.offered_bytes = q.number_or("offered_bytes", 0.0);
  row.policy_bytes = q.number_or("policy_bytes", 0.0);
  row.optimal_bytes = q.number_or("optimal_bytes", 0.0);
  row.ratio = q.number_or("ratio", 0.0);
  return row;
}

OracleBlock load_oracle(const Json& o) {
  OracleBlock block;
  block.port = o.string_or("port", "");
  block.offered_bytes = o.number_or("offered_bytes", 0.0);
  block.policy_bytes = o.number_or("policy_bytes", 0.0);
  block.optimal_bytes = o.number_or("optimal_bytes", 0.0);
  block.ratio = o.number_or("ratio", 0.0);
  block.trace_fingerprint = o.string_or("trace_fingerprint", "");
  if (const Json* queues = o.find("queues"); queues != nullptr && queues->is_array()) {
    for (const Json& q : queues->as_array()) block.queues.push_back(load_oracle_queue(q));
  }
  return block;
}

SweepJob load_job(const Json& j) {
  SweepJob job;
  job.id = j.integer_or("id", 0);
  if (const Json* point = j.find("point"); point != nullptr && point->is_object()) {
    for (const auto& [axis, value] : point->as_object()) {
      if (value.is_string()) {
        job.labels[axis] = value.as_string();
      } else if (value.is_number()) {
        job.numbers[axis] = value.as_number();
      }
    }
  }
  job.ok = j.bool_or("ok", false);
  job.timed_out = j.bool_or("timed_out", false);
  job.error = j.string_or("error", "");
  if (const Json* metrics = j.find("metrics"); metrics != nullptr && metrics->is_object()) {
    for (const auto& [name, value] : metrics->as_object()) {
      if (value.is_number()) job.metrics[name] = value.as_number();
    }
  }
  job.trajectory_hash = j.string_or("trajectory_hash", "");
  if (const Json* oracle = j.find("oracle"); oracle != nullptr && oracle->is_object()) {
    job.oracle = load_oracle(*oracle);
  }
  return job;
}

}  // namespace

std::vector<std::string> SweepDoc::label_values(const std::string& axis) const {
  std::vector<std::string> out;
  for (const SweepJob& job : jobs) {
    const auto it = job.labels.find(axis);
    if (it == job.labels.end()) continue;
    bool seen = false;
    for (const std::string& v : out) {
      if (v == it->second) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(it->second);
  }
  return out;
}

bool looks_like_sweep_doc(const Json& root) {
  if (!root.is_object()) return false;
  const Json* version = root.find("schema_version");
  const Json* sweep = root.find("sweep");
  const Json* jobs = root.find("jobs");
  return version != nullptr && version->is_number() && sweep != nullptr && sweep->is_string() &&
         jobs != nullptr && jobs->is_array();
}

SweepDoc load_sweep_doc(const Json& root, std::string path) {
  if (!looks_like_sweep_doc(root)) {
    throw std::runtime_error(path + ": not a sweep results document (schema_version/sweep/jobs)");
  }
  SweepDoc doc;
  doc.path = std::move(path);
  doc.schema_version = root.integer_or("schema_version", 0);
  doc.sweep = root.string_or("sweep", "");
  for (const Json& j : root.find("jobs")->as_array()) doc.jobs.push_back(load_job(j));
  doc.failures = root.integer_or("failures", 0);
  if (const Json* perf = root.find("perf"); perf != nullptr && perf->is_object()) {
    doc.total_wall_ms = perf->number_or("total_wall_ms", 0.0);
    doc.perf_jobs = perf->integer_or("jobs", 0);
  }
  return doc;
}

bool looks_like_bench_core_doc(const Json& root) {
  if (!root.is_object()) return false;
  const Json* schema = root.find("schema");
  const Json* workloads = root.find("workloads");
  return schema != nullptr && schema->is_string() &&
         schema->as_string().rfind("dynaq-bench-core-", 0) == 0 && workloads != nullptr &&
         workloads->is_object();
}

BenchCoreDoc load_bench_core_doc(const Json& root, std::string path) {
  if (!looks_like_bench_core_doc(root)) {
    throw std::runtime_error(path + ": not a BENCH_core.json document (dynaq-bench-core-*)");
  }
  BenchCoreDoc doc;
  doc.path = std::move(path);
  doc.schema = root.string_or("schema", "");
  doc.events_per_pass = root.integer_or("events_per_pass", 0);
  doc.reps = root.integer_or("reps", 0);
  for (const auto& [name, w] : root.find("workloads")->as_object()) {
    if (!w.is_object()) continue;
    BenchWorkload workload;
    workload.name = name;
    workload.ns_per_event = w.number_or("ns_per_event", 0.0);
    workload.events_per_sec = w.number_or("events_per_sec", 0.0);
    workload.heap_fallbacks = w.integer_or("heap_fallbacks", 0);
    if (const Json* budget = w.find("budget_ns_per_event"); budget != nullptr && budget->is_number()) {
      workload.budget_ns_per_event = budget->as_number();
    }
    if (const Json* baseline = w.find("baseline_ns_per_event");
        baseline != nullptr && baseline->is_number()) {
      workload.baseline_ns_per_event = baseline->as_number();
    }
    doc.workloads.push_back(std::move(workload));
  }
  return doc;
}

}  // namespace dynaq::report
