#include "report/bench_history.hpp"

#include <cstdio>

namespace dynaq::report {
namespace {

// Matches sweep::JsonWriter::format_number so history rows round-trip the
// snapshot values byte-identically.
std::string number(double d) {
  if (d == static_cast<double>(static_cast<std::int64_t>(d)) && d >= -1e15 && d <= 1e15) {
    return std::to_string(static_cast<std::int64_t>(d));
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", d);
  return buf;
}

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

HistoryRow make_history_row(const std::string& rev, const BenchCoreDoc* core,
                            const SweepDoc* sweep) {
  HistoryRow row;
  row.rev = rev;
  if (core != nullptr) row.core = core->workloads;
  if (sweep != nullptr) {
    HistoryRow::SweepPerf perf;
    perf.sweep = sweep->sweep;
    perf.jobs = static_cast<std::int64_t>(sweep->jobs.size());
    perf.failures = sweep->failures;
    perf.total_wall_ms = sweep->total_wall_ms;
    row.sweep = perf;
  }
  return row;
}

std::vector<HistoryRow> parse_history(std::string_view jsonl) {
  std::vector<HistoryRow> rows;
  for (const Json& doc : parse_jsonl(jsonl)) {
    HistoryRow row;
    row.schema = doc.string_or("schema", "");
    row.rev = doc.string_or("rev", "unknown");
    row.seq = doc.integer_or("seq", static_cast<std::int64_t>(rows.size()) + 1);
    if (const Json* core = doc.find("core"); core != nullptr && core->is_object()) {
      for (const auto& [name, w] : core->as_object()) {
        if (!w.is_object()) continue;
        BenchWorkload workload;
        workload.name = name;
        workload.ns_per_event = w.number_or("ns_per_event", 0.0);
        workload.heap_fallbacks = w.integer_or("heap_fallbacks", 0);
        if (const Json* budget = w.find("budget_ns_per_event");
            budget != nullptr && budget->is_number()) {
          workload.budget_ns_per_event = budget->as_number();
        }
        row.core.push_back(std::move(workload));
      }
    }
    if (const Json* sweep = doc.find("sweep"); sweep != nullptr && sweep->is_object()) {
      HistoryRow::SweepPerf perf;
      perf.sweep = sweep->string_or("name", "");
      perf.jobs = sweep->integer_or("jobs", 0);
      perf.failures = sweep->integer_or("failures", 0);
      perf.total_wall_ms = sweep->number_or("total_wall_ms", 0.0);
      row.sweep = perf;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string render_history_row(const HistoryRow& row) {
  std::string out = "{\"schema\":" + quoted(row.schema) + ",\"rev\":" + quoted(row.rev) +
                    ",\"seq\":" + std::to_string(row.seq);
  if (!row.core.empty()) {
    out += ",\"core\":{";
    bool first = true;
    for (const BenchWorkload& w : row.core) {
      if (!first) out += ',';
      first = false;
      out += quoted(w.name) + ":{\"ns_per_event\":" + number(w.ns_per_event) +
             ",\"heap_fallbacks\":" + std::to_string(w.heap_fallbacks);
      if (w.budget_ns_per_event) {
        out += ",\"budget_ns_per_event\":" + number(*w.budget_ns_per_event);
      }
      out += '}';
    }
    out += '}';
  }
  if (row.sweep) {
    out += ",\"sweep\":{\"name\":" + quoted(row.sweep->sweep) +
           ",\"jobs\":" + std::to_string(row.sweep->jobs) +
           ",\"failures\":" + std::to_string(row.sweep->failures) +
           ",\"total_wall_ms\":" + number(row.sweep->total_wall_ms) + '}';
  }
  out += '}';
  return out;
}

std::string append_history(const std::string& existing_jsonl, HistoryRow row) {
  std::vector<HistoryRow> rows = parse_history(existing_jsonl);
  if (!rows.empty() && rows.back().rev == row.rev) {
    row.seq = rows.back().seq;
    rows.back() = std::move(row);
  } else {
    row.seq = rows.empty() ? 1 : rows.back().seq + 1;
    rows.push_back(std::move(row));
  }
  std::string out;
  for (const HistoryRow& r : rows) {
    out += render_history_row(r);
    out += '\n';
  }
  return out;
}

std::vector<std::string> history_regressions(const std::vector<HistoryRow>& rows) {
  std::vector<std::string> findings;
  if (rows.empty()) return findings;
  const HistoryRow& latest = rows.back();
  for (const BenchWorkload& w : latest.core) {
    if (w.heap_fallbacks != 0) {
      findings.push_back("bench.heap_fallbacks: " + w.name + " recorded " +
                         std::to_string(w.heap_fallbacks) +
                         " heap fallbacks (hard gate: the event hot path must not allocate)");
    }
    if (w.budget_ns_per_event && w.ns_per_event > *w.budget_ns_per_event) {
      findings.push_back("bench.ns_budget: " + w.name + " at " + number(w.ns_per_event) +
                         " ns/event exceeds its soft budget of " +
                         number(*w.budget_ns_per_event));
    }
  }
  if (latest.sweep && latest.sweep->failures != 0) {
    findings.push_back("bench.sweep_failures: " + latest.sweep->sweep + " recorded " +
                       std::to_string(latest.sweep->failures) + " failed jobs");
  }
  return findings;
}

}  // namespace dynaq::report
