#include "report/expectation.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

namespace dynaq::report {
namespace {

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.4g", v);
  return buf;
}

// One non-seed grid point of one scheme: seed replicas averaged per metric.
struct Group {
  std::string scheme;
  std::string point;  // non-scheme, non-seed coordinates, e.g. "load=0.5"
  double load = 0.0;
  bool has_load = false;
  std::map<std::string, double> sums;
  std::map<std::string, std::int64_t> counts;

  double mean(const std::string& metric, bool* present) const {
    const auto it = sums.find(metric);
    if (it == sums.end()) {
      *present = false;
      return 0.0;
    }
    *present = true;
    return it->second / static_cast<double>(counts.at(metric));
  }
};

std::vector<Group> group_jobs(const SweepDoc& doc) {
  std::vector<Group> groups;
  for (const SweepJob& job : doc.jobs) {
    if (!job.ok) continue;
    std::string scheme;
    if (const auto it = job.labels.find("scheme"); it != job.labels.end()) scheme = it->second;
    std::string point;
    double load = 0.0;
    bool has_load = false;
    for (const auto& [axis, value] : job.labels) {
      if (axis == "scheme") continue;
      if (!point.empty()) point += ' ';
      point += axis + "=" + value;
    }
    for (const auto& [axis, value] : job.numbers) {
      if (axis == "seed") continue;
      if (axis == "load") {
        load = value;
        has_load = true;
      }
      if (!point.empty()) point += ' ';
      point += axis + "=" + fmt(value);
    }
    Group* group = nullptr;
    for (Group& g : groups) {
      if (g.scheme == scheme && g.point == point) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      groups.push_back(Group{scheme, point, load, has_load, {}, {}});
      group = &groups.back();
    }
    for (const auto& [metric, value] : job.metrics) {
      group->sums[metric] += value;
      group->counts[metric] += 1;
    }
  }
  return groups;
}

// Running summary of the values one expectation judged, rendered as
// "lo..hi over N point(s)" (or the single value).
struct ValueSpan {
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::int64_t n = 0;

  void add(double v) {
    if (v < min) min = v;
    if (v > max) max = v;
    ++n;
  }
  std::string render(const std::string& what, const std::string& unit_word) const {
    if (n == 0) return "";
    std::string out = what + " = " + fmt(min);
    if (n > 1 && max != min) out += ".." + fmt(max);
    out += " over " + std::to_string(n) + " " + unit_word + (n == 1 ? "" : "s");
    return out;
  }
};

std::string bound_text(const Expectation& e, double hi) {
  std::string out;
  if (e.lo > 0.0 || e.kind == ExpectationKind::kOracleBound) out += ">= " + fmt(e.lo);
  if (!e.unbounded_above) {
    if (!out.empty()) out += ", ";
    out += "<= " + fmt(hi);
  }
  return out.empty() ? "any" : out;
}

class Evaluator {
 public:
  Evaluator(const Expectation& e, const std::vector<SweepDoc>& sweeps)
      : e_(e), sweeps_(sweeps) {}

  Outcome run() {
    Outcome out;
    out.id = e_.id;
    out.figure = e_.figure;
    out.claim = e_.claim;
    switch (e_.kind) {
      case ExpectationKind::kSchemeRatio: eval_scheme_ratio(); break;
      case ExpectationKind::kMetricBound: eval_metric_bound(); break;
      case ExpectationKind::kMetricPairRatio: eval_pair_ratio(); break;
      case ExpectationKind::kJobHealth: eval_job_health(); break;
      case ExpectationKind::kOracleBound: eval_oracle_bound(); break;
    }
    if (judged_ == 0) {
      out.status = Status::kSkip;
      out.detail = skip_reason_.empty() ? "no matching document loaded" : skip_reason_;
      return out;
    }
    out.status = failures_.empty() ? Status::kPass : Status::kFail;
    out.measured = measured_;
    if (!failures_.empty()) out.detail = failures_;
    return out;
  }

 private:
  std::vector<const SweepDoc*> matching_docs() const {
    std::vector<const SweepDoc*> docs;
    for (const SweepDoc& doc : sweeps_) {
      if (e_.sweep.empty() || doc.sweep == e_.sweep) docs.push_back(&doc);
    }
    if (docs.empty() && !e_.sweep.empty()) {
      skip_reason_ = "sweep '" + e_.sweep + "' not among the loaded documents";
    }
    return docs;
  }

  void check(double value, const std::string& where, double hi) {
    ++judged_;
    span_.add(value);
    const bool ok = value >= e_.lo && (e_.unbounded_above || value <= hi);
    if (!ok && failures_.empty()) {
      failures_ = where + ": " + fmt(value) + " outside [" + bound_text(e_, hi) + "]";
    }
  }

  bool point_in_scope(const Group& g) const {
    return !(g.has_load && g.load < e_.min_load);
  }

  void eval_scheme_ratio() {
    for (const SweepDoc* doc : matching_docs()) {
      const auto groups = group_jobs(*doc);
      for (const Group& a : groups) {
        if (a.scheme != e_.scheme_a || !point_in_scope(a)) continue;
        for (const std::string& baseline : e_.scheme_b) {
          for (const Group& b : groups) {
            if (b.scheme != baseline || b.point != a.point) continue;
            bool have_a = false;
            bool have_b = false;
            const double num = a.mean(e_.metric, &have_a);
            const double den = b.mean(e_.metric, &have_b);
            if (!have_a || !have_b) continue;
            const std::string where =
                e_.scheme_a + "/" + baseline + " " + e_.metric + " @ " + a.point;
            if (den <= 0.0) {
              ++judged_;
              if (failures_.empty()) failures_ = where + ": baseline mean is " + fmt(den);
              continue;
            }
            check(num / den, where, e_.hi);
          }
        }
      }
    }
    measured_ = span_.render(e_.scheme_a + "/" + join(e_.scheme_b) + " " + e_.metric, "point");
  }

  void eval_metric_bound() {
    for (const SweepDoc* doc : matching_docs()) {
      for (const Group& g : group_jobs(*doc)) {
        if (!e_.scheme_a.empty() && g.scheme != e_.scheme_a) continue;
        if (!point_in_scope(g)) continue;
        bool present = false;
        const double value = g.mean(e_.metric, &present);
        if (!present) continue;
        check(value, scheme_point(g), e_.hi);
      }
    }
    measured_ = span_.render((e_.scheme_a.empty() ? "" : e_.scheme_a + " ") + e_.metric, "point");
  }

  void eval_pair_ratio() {
    for (const SweepDoc* doc : matching_docs()) {
      for (const Group& g : group_jobs(*doc)) {
        if (!e_.scheme_a.empty() && g.scheme != e_.scheme_a) continue;
        if (!point_in_scope(g)) continue;
        bool have_a = false;
        bool have_b = false;
        const double num = g.mean(e_.metric, &have_a);
        const double den = g.mean(e_.metric_b, &have_b);
        if (!have_a || !have_b) continue;
        const std::string where =
            e_.metric + "/" + e_.metric_b + " @ " + scheme_point(g);
        if (den <= 0.0) {
          ++judged_;
          if (failures_.empty()) failures_ = where + ": denominator mean is " + fmt(den);
          continue;
        }
        check(num / den, where, e_.hi);
      }
    }
    measured_ = span_.render(e_.metric + "/" + e_.metric_b, "point");
  }

  void eval_job_health() {
    std::int64_t jobs = 0;
    std::int64_t bad = 0;
    std::int64_t docs = 0;
    for (const SweepDoc* doc : matching_docs()) {
      ++docs;
      ++judged_;
      for (const SweepJob& job : doc->jobs) {
        ++jobs;
        if (job.ok) continue;
        ++bad;
        if (failures_.empty()) {
          failures_ = doc->sweep + " job " + std::to_string(job.id) +
                      (job.timed_out ? " timed out" : " failed: " + job.error);
        }
      }
      if (doc->failures > 0 && failures_.empty()) {
        failures_ = doc->sweep + ": " + std::to_string(doc->failures) + " recorded failures";
      }
    }
    measured_ = std::to_string(docs) + " document" + (docs == 1 ? "" : "s") + ", " +
                std::to_string(jobs) + " jobs, " + std::to_string(bad) + " failed";
  }

  void eval_oracle_bound() {
    for (const SweepDoc* doc : matching_docs()) {
      for (const SweepJob& job : doc->jobs) {
        if (!job.ok || !job.oracle) continue;
        if (!e_.scheme_a.empty()) {
          const auto it = job.labels.find("scheme");
          if (it == job.labels.end() || it->second != e_.scheme_a) continue;
        }
        double hi = e_.hi;
        if (e_.harmonic_bound) {
          const double n = static_cast<double>(job.oracle->queues.size());
          hi += n > 0.0 ? std::log(n) : 0.0;
        }
        check(job.oracle->ratio, "job " + std::to_string(job.id), hi);
      }
    }
    if (judged_ == 0 && skip_reason_.empty()) {
      skip_reason_ = "no oracle blocks" + (e_.scheme_a.empty() ? "" : " for " + e_.scheme_a);
    }
    measured_ =
        span_.render((e_.scheme_a.empty() ? "" : e_.scheme_a + " ") + "competitive ratio", "job");
  }

  std::string scheme_point(const Group& g) const {
    std::string out = g.scheme;
    if (!g.point.empty()) out += (out.empty() ? "" : " @ ") + g.point;
    return out.empty() ? "(all)" : out;
  }

  static std::string join(const std::vector<std::string>& parts) {
    std::string out;
    for (const std::string& p : parts) {
      if (!out.empty()) out += "|";
      out += p;
    }
    return out;
  }

  const Expectation& e_;
  const std::vector<SweepDoc>& sweeps_;
  std::int64_t judged_ = 0;
  ValueSpan span_;
  std::string measured_;
  std::string failures_;
  mutable std::string skip_reason_;
};

constexpr double kInf = std::numeric_limits<double>::infinity();

Expectation make(std::string id, std::string figure, std::string claim, ExpectationKind kind) {
  Expectation e;
  e.id = std::move(id);
  e.figure = std::move(figure);
  e.claim = std::move(claim);
  e.kind = kind;
  return e;
}

}  // namespace

std::string_view status_name(Status s) {
  switch (s) {
    case Status::kPass: return "pass";
    case Status::kFail: return "FAIL";
    case Status::kSkip: return "skip";
  }
  return "?";
}

std::vector<Expectation> default_catalogue() {
  std::vector<Expectation> cat;

  {  // Zero invariant-audit violations (DESIGN.md §6): an AuditError kills
     // its job, so "every job ok" is the machine-checkable form.
    Expectation e = make("fidelity.audit_clean", "§6",
                         "every job of every sweep completes with zero invariant-audit "
                         "violations and zero sweep failures",
                         ExpectationKind::kJobHealth);
    cat.push_back(std::move(e));
  }
  {
    Expectation e = make("fig08.overall_ties_besteffort", "Fig. 8",
                         "DynaQ roughly ties BestEffort on overall average FCT",
                         ExpectationKind::kSchemeRatio);
    e.sweep = "fig08_fct_non_ecn";
    e.metric = "avg_overall_ms";
    e.scheme_a = "DynaQ";
    e.scheme_b = {"BestEffort"};
    e.lo = 0.5;
    e.hi = 1.5;
    cat.push_back(std::move(e));
  }
  {
    Expectation e = make("fig08.small_p99_beats_besteffort", "Fig. 8",
                         "DynaQ clearly beats BestEffort on small-flow p99 FCT at high load",
                         ExpectationKind::kSchemeRatio);
    e.sweep = "fig08_fct_non_ecn";
    e.metric = "p99_small_ms";
    e.scheme_a = "DynaQ";
    e.scheme_b = {"BestEffort"};
    e.lo = 0.0;
    e.hi = 1.0;
    e.min_load = 0.5;
    cat.push_back(std::move(e));
  }
  {
    Expectation e = make("fig08.large_beats_pql", "Fig. 8",
                         "DynaQ beats PQL on large-flow average FCT",
                         ExpectationKind::kSchemeRatio);
    e.sweep = "fig08_fct_non_ecn";
    e.metric = "avg_large_ms";
    e.scheme_a = "DynaQ";
    e.scheme_b = {"PQL"};
    e.lo = 0.0;
    e.hi = 1.0;
    cat.push_back(std::move(e));
  }
  {
    Expectation e = make("fig09.small_beats_ecn", "Fig. 9",
                         "plain-TCP DynaQ beats every DCTCP+ECN scheme on small-flow average FCT",
                         ExpectationKind::kSchemeRatio);
    e.sweep = "fig09_fct_ecn";
    e.metric = "avg_small_ms";
    e.scheme_a = "DynaQ";
    e.scheme_b = {"TCN", "PMSB", "PerQueueECN"};
    e.lo = 0.0;
    e.hi = 1.0;
    cat.push_back(std::move(e));
  }
  {
    Expectation e = make("fig12.dynaq_fair_share", "Fig. 12",
                         "DynaQ holds near-perfect fairness with 16..2048 flows per queue",
                         ExpectationKind::kMetricBound);
    e.sweep = "fig12_many_flows";
    e.metric = "min_jain";
    e.scheme_a = "DynaQ";
    e.lo = 0.95;
    e.unbounded_above = true;
    cat.push_back(std::move(e));
  }
  {
    Expectation e = make("fig12.dynaq_full_throughput", "Fig. 12",
                         "DynaQ sustains full 100 Gbps aggregate throughput",
                         ExpectationKind::kMetricBound);
    e.sweep = "fig12_many_flows";
    e.metric = "mean_aggregate_gbps";
    e.scheme_a = "DynaQ";
    e.lo = 95.0;
    e.unbounded_above = true;
    cat.push_back(std::move(e));
  }
  {
    Expectation e = make("fig12.pql_collapse_avoided", "Fig. 12",
                         "DynaQ keeps last-phase throughput PQL gives up after the other "
                         "queues stop",
                         ExpectationKind::kSchemeRatio);
    e.sweep = "fig12_many_flows";
    e.metric = "last_phase_gbps";
    e.scheme_a = "DynaQ";
    e.scheme_b = {"PQL"};
    e.lo = 1.0;
    e.unbounded_above = true;
    cat.push_back(std::move(e));
  }
  {
    Expectation e = make("fig13.overall_ties_besteffort", "Fig. 13",
                         "leaf-spine at 10 Gbps compresses the overall-FCT gaps to a few percent",
                         ExpectationKind::kSchemeRatio);
    e.sweep = "fig13_leaf_spine";
    e.metric = "avg_overall_ms";
    e.scheme_a = "DynaQ";
    e.scheme_b = {"BestEffort"};
    e.lo = 0.85;
    e.hi = 1.15;
    cat.push_back(std::move(e));
  }
  {
    Expectation e = make("fig13.pql_worst_overall", "Fig. 13",
                         "PQL has the worst overall FCT on the leaf-spine fabric",
                         ExpectationKind::kSchemeRatio);
    e.sweep = "fig13_leaf_spine";
    e.metric = "avg_overall_ms";
    e.scheme_a = "DynaQ";
    e.scheme_b = {"PQL"};
    e.lo = 0.0;
    e.hi = 1.0;
    cat.push_back(std::move(e));
  }
  {
    Expectation e = make("abl.dynaq_fct_vs_dt", "§12",
                         "DynaQ's overall FCT is no worse than classic Dynamic Threshold's",
                         ExpectationKind::kSchemeRatio);
    e.sweep = "abl_competitive";
    e.metric = "avg_overall_ms";
    e.scheme_a = "DynaQ";
    e.scheme_b = {"DT"};
    e.lo = 0.0;
    e.hi = 1.05;
    cat.push_back(std::move(e));
  }
  {
    Expectation e = make("oracle.ratio_is_upper_bound", "§12",
                         "the clairvoyant optimum dominates every online policy "
                         "(competitive ratio >= 1)",
                         ExpectationKind::kOracleBound);
    e.sweep = "abl_competitive";
    e.lo = 1.0 - 1e-9;
    e.unbounded_above = true;
    cat.push_back(std::move(e));
  }
  {
    Expectation e = make("oracle.lqd_within_bound", "§12",
                         "measured LQD ratio stays within Matsakis' adversarial 1.5 bound "
                         "(+ fluid-relaxation slack)",
                         ExpectationKind::kOracleBound);
    e.sweep = "abl_competitive";
    e.scheme_a = "LQD";
    e.lo = 1.0 - 1e-9;
    e.hi = 1.55;
    cat.push_back(std::move(e));
  }
  {
    Expectation e = make("oracle.harmonic_within_bound", "§12",
                         "measured Harmonic ratio stays within Addanki et al.'s 2+ln(n) bound "
                         "(+ slack)",
                         ExpectationKind::kOracleBound);
    e.sweep = "abl_competitive";
    e.scheme_a = "Harmonic";
    e.lo = 1.0 - 1e-9;
    e.hi = 2.05;  // + ln(n) from the job's oracle block
    e.harmonic_bound = true;
    cat.push_back(std::move(e));
  }
  {
    Expectation e = make("rob.link_flap_outage", "§11",
                         "a scripted link_down actually takes the bottleneck down",
                         ExpectationKind::kMetricPairRatio);
    e.sweep = "rob_link_flap";
    e.metric = "flap_gbps";
    e.metric_b = "pre_gbps";
    e.lo = 0.0;
    e.hi = 0.2;
    cat.push_back(std::move(e));
  }
  {
    Expectation e = make("rob.link_flap_recovery", "§11",
                         "every scheme recovers at least 90% of pre-fault throughput after "
                         "the last link_up",
                         ExpectationKind::kMetricPairRatio);
    e.sweep = "rob_link_flap";
    e.metric = "recovered_gbps";
    e.metric_b = "pre_gbps";
    e.lo = 0.9;
    e.unbounded_above = true;
    cat.push_back(std::move(e));
  }
  {
    Expectation e = make("rob.weight_churn_dynaq_fair", "§11",
                         "DynaQ tracks every mid-run weight reassignment at high fairness",
                         ExpectationKind::kMetricBound);
    e.sweep = "rob_weight_churn";
    e.metric = "jain";
    e.scheme_a = "DynaQ";
    e.lo = 0.95;
    e.unbounded_above = true;
    cat.push_back(std::move(e));
  }
  {
    Expectation e = make("rob.weight_churn_dynaq_throughput", "§11",
                         "DynaQ stays work-conserving through weight churn (>= 0.95 Gbps "
                         "aggregate on the 1 Gbps star)",
                         ExpectationKind::kMetricBound);
    e.sweep = "rob_weight_churn";
    e.metric = "agg_gbps";
    e.scheme_a = "DynaQ";
    e.lo = 0.95;
    e.unbounded_above = true;
    cat.push_back(std::move(e));
  }
  {
    Expectation e = make("rob.controller_failover_retention", "§14",
                         "DynaQ with a crashed controller (failed over to DT) retains "
                         "throughput comparable to a native DT baseline",
                         ExpectationKind::kSchemeRatio);
    e.sweep = "rob_controller";
    e.metric = "throughput_retention";
    e.scheme_a = "DynaQ";
    e.scheme_b = {"DT"};
    e.lo = 0.95;
    e.unbounded_above = true;
    cat.push_back(std::move(e));
  }
  {
    Expectation e = make("rob.controller_recovery_bounded", "§14",
                         "time from controller return to restored DynaQ thresholds stays "
                         "within one watchdog period plus the re-sync update latency",
                         ExpectationKind::kMetricPairRatio);
    e.sweep = "rob_controller";
    e.metric = "recovery_time_us";
    e.metric_b = "recovery_budget_us";
    e.scheme_a = "DynaQ";
    e.lo = 0.0;
    e.hi = 1.0;
    cat.push_back(std::move(e));
  }
  return cat;
}

std::vector<Outcome> evaluate(const std::vector<Expectation>& catalogue,
                              const std::vector<SweepDoc>& sweeps) {
  std::vector<Outcome> outcomes;
  outcomes.reserve(catalogue.size());
  for (const Expectation& e : catalogue) outcomes.push_back(Evaluator(e, sweeps).run());
  return outcomes;
}

}  // namespace dynaq::report
