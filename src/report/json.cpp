#include "report/json.hpp"

#include <cstdlib>

namespace dynaq::report {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1;
    std::size_t col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw ParseError(what, line, col);
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json();
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object members;
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(members));
    }
    while (true) {
      std::string key = parse_string_at('"');
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Json(std::move(members));
      }
      fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json::Array elements;
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(elements));
    }
    while (true) {
      elements.push_back(parse_value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Json(std::move(elements));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string_at(char quote) {
    if (peek() != quote) fail("expected string");
    return parse_string();
  }

  std::string parse_string() {
    // caller guarantees text_[pos_] == '"'
    ++pos_;
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // Artifacts are ASCII; encode BMP code points as UTF-8 so the
          // parser is still lossless if one ever is not.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool saw_digit = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        saw_digit = saw_digit || (c >= '0' && c <= '9');
        ++pos_;
      } else {
        break;
      }
    }
    if (!saw_digit) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number '" + token + "'");
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json parse_json(std::string_view text) { return Parser(text).parse_document(); }

std::vector<Json> parse_jsonl(std::string_view text) {
  std::vector<Json> docs;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    const std::string_view line = text.substr(pos, nl - pos);
    ++line_no;
    bool blank = true;
    for (const char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') {
        blank = false;
        break;
      }
    }
    if (!blank) {
      try {
        docs.push_back(parse_json(line));
      } catch (const ParseError& e) {
        throw ParseError(std::string("JSONL line ") + std::to_string(line_no) + ": " + e.what(),
                         line_no, e.column());
      }
    }
    if (nl == text.size()) break;
    pos = nl + 1;
  }
  return docs;
}

}  // namespace dynaq::report
