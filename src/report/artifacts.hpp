// Typed views over the repo's machine-readable artifacts (DESIGN.md §13):
// sweep results JSON (schema_version >= 2, DESIGN.md §7) and the
// BENCH_core.json event-engine snapshot (DESIGN.md §9). Loaders copy what
// the report needs out of the parsed Json so documents can be dropped after
// loading; unknown fields are ignored (forward-compatible), missing
// optional fields default.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "report/json.hpp"

namespace dynaq::report {

// Per-queue row of a job's offline-optimal oracle block (DESIGN.md §12).
struct OracleQueueRow {
  std::int64_t queue = 0;
  double offered_bytes = 0.0;
  double policy_bytes = 0.0;
  double optimal_bytes = 0.0;
  double ratio = 0.0;
};

struct OracleBlock {
  std::string port;
  double offered_bytes = 0.0;
  double policy_bytes = 0.0;
  double optimal_bytes = 0.0;
  double ratio = 0.0;
  std::string trace_fingerprint;
  std::vector<OracleQueueRow> queues;
};

// One job of a sweep document. Grid-point coordinates are split by JSON
// type: labels (e.g. scheme) vs numbers (e.g. load, seed).
struct SweepJob {
  std::int64_t id = 0;
  std::map<std::string, std::string> labels;
  std::map<std::string, double> numbers;
  bool ok = false;
  bool timed_out = false;
  std::string error;
  std::map<std::string, double> metrics;
  std::string trajectory_hash;
  std::optional<OracleBlock> oracle;
};

struct SweepDoc {
  std::string path;  // provenance, shown in the report's inputs section
  std::int64_t schema_version = 0;
  std::string sweep;
  std::vector<SweepJob> jobs;
  std::int64_t failures = 0;
  // Run-wide perf block (absent under JsonOptions{.include_perf=false}).
  double total_wall_ms = 0.0;
  std::int64_t perf_jobs = 0;

  // Distinct values of a label coordinate, in first-seen job order.
  std::vector<std::string> label_values(const std::string& axis) const;
};

// True when the document has the sweep-results shape (schema_version +
// sweep + jobs) — used to skip events.jsonl and foreign JSON when scanning
// a results directory.
bool looks_like_sweep_doc(const Json& root);

// Throws std::runtime_error (with the path) on a structurally unusable
// document; tolerates missing optional blocks.
SweepDoc load_sweep_doc(const Json& root, std::string path);

// One workload row of BENCH_core.json (schema dynaq-bench-core-v1).
struct BenchWorkload {
  std::string name;
  double ns_per_event = 0.0;
  double events_per_sec = 0.0;
  std::int64_t heap_fallbacks = 0;
  std::optional<double> budget_ns_per_event;
  std::optional<double> baseline_ns_per_event;
};

struct BenchCoreDoc {
  std::string path;
  std::string schema;
  std::int64_t events_per_pass = 0;
  std::int64_t reps = 0;
  std::vector<BenchWorkload> workloads;  // JSON object order
};

bool looks_like_bench_core_doc(const Json& root);
BenchCoreDoc load_bench_core_doc(const Json& root, std::string path);

}  // namespace dynaq::report
