// Minimal recursive-descent JSON reader for the report subsystem
// (DESIGN.md §13). src/report consumes only serialized artifacts — sweep
// results JSON (schema_version 5), BENCH_core.json, BENCH_history.jsonl —
// and must stay decoupled from the simulator (conventions rule 13), so it
// carries its own parser instead of linking any model library. Objects
// preserve key order (vector of pairs, linear lookup): artifact objects are
// small and deterministic ordering keeps rendered reports byte-stable.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dynaq::report {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, std::size_t line, std::size_t column)
      : std::runtime_error(what + " at line " + std::to_string(line) + ", column " +
                           std::to_string(column)),
        line_(line),
        column_(column) {}
  std::size_t line() const { return line_; }
  std::size_t column() const { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() = default;
  explicit Json(bool b) : type_(Type::kBool), bool_(b) {}
  explicit Json(double d) : type_(Type::kNumber), number_(d) {}
  explicit Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  explicit Json(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  explicit Json(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_bool() const { return type_ == Type::kBool; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const Array& as_array() const { return array_; }
  const Object& as_object() const { return object_; }

  // Object lookup by key; nullptr when absent or when this is not an object.
  const Json* find(std::string_view key) const {
    if (type_ != Type::kObject) return nullptr;
    for (const auto& [k, v] : object_) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  // Typed convenience accessors with fallbacks, for optional artifact fields.
  double number_or(std::string_view key, double fallback) const {
    const Json* v = find(key);
    return v != nullptr && v->is_number() ? v->number_ : fallback;
  }
  std::int64_t integer_or(std::string_view key, std::int64_t fallback) const {
    const Json* v = find(key);
    return v != nullptr && v->is_number() ? static_cast<std::int64_t>(v->number_) : fallback;
  }
  std::string string_or(std::string_view key, std::string fallback) const {
    const Json* v = find(key);
    return v != nullptr && v->is_string() ? v->string_ : std::move(fallback);
  }
  bool bool_or(std::string_view key, bool fallback) const {
    const Json* v = find(key);
    return v != nullptr && v->is_bool() ? v->bool_ : fallback;
  }

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

// Parse one JSON document; throws report::ParseError (with 1-based
// line/column) on malformed input or trailing garbage.
Json parse_json(std::string_view text);

// Parse JSON Lines (one document per non-empty line) — the
// BENCH_history.jsonl format. Blank lines are skipped; a malformed line
// throws ParseError with that line number.
std::vector<Json> parse_jsonl(std::string_view text);

}  // namespace dynaq::report
