// Executable result expectations (DESIGN.md §13): the paper's result
// *shapes* from DESIGN.md §5 coded as a declarative catalogue and evaluated
// against sweep results JSON — never against simulator internals. Each
// Expectation is one assertion with a stable id (cross-referenced from
// DESIGN.md §5); the evaluator turns it into Pass / Fail / Skip, where Skip
// means the inputs to judge it were not among the loaded documents (e.g.
// the CI smoke sweep carries only fig08 with two schemes).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "report/artifacts.hpp"

namespace dynaq::report {

enum class ExpectationKind {
  // mean(metric | scheme_a) / mean(metric | scheme_b) within [lo, hi] at
  // every grid point the two schemes share (seed replicas averaged first).
  kSchemeRatio,
  // mean(metric | scheme_a) within [lo, hi] at every grid point
  // (scheme_a empty = every scheme).
  kMetricBound,
  // mean(metric) / mean(metric_b) within [lo, hi] per scheme and grid point
  // — relates two metrics of the *same* run (e.g. recovered vs pre-fault
  // throughput).
  kMetricPairRatio,
  // The sweep ran clean: failures == 0 and every job ok. A job killed by a
  // check::AuditError (invariant-audit violation, DESIGN.md §6) surfaces
  // here as a failed job, so this is the executable form of "zero audit
  // violations". sweep empty = every loaded document.
  kJobHealth,
  // Per-job oracle block (DESIGN.md §12): competitive ratio within
  // [lo, hi]; with harmonic_bound the upper bound is hi + ln(n) where n is
  // the number of queues in the job's oracle block.
  kOracleBound,
};

struct Expectation {
  std::string id;      // stable, dot-separated: "fig08.small_p99_beats_besteffort"
  std::string figure;  // "Fig. 8", "§12", ... — groups the report table
  std::string claim;   // the DESIGN.md §5 prose this executes
  ExpectationKind kind = ExpectationKind::kJobHealth;
  std::string sweep;               // sweep name to match; "" = every document
  std::string metric;              // primary metric (numerator)
  std::string metric_b;            // kMetricPairRatio denominator
  std::string scheme_a;            // subject scheme; "" = every scheme
  std::vector<std::string> scheme_b;  // baselines (kSchemeRatio)
  double lo = 0.0;
  double hi = 0.0;
  bool unbounded_above = false;  // ignore hi
  bool harmonic_bound = false;   // kOracleBound: hi becomes hi + ln(n_queues)
  double min_load = 0.0;         // skip grid points whose "load" coord is below this
};

enum class Status { kPass, kFail, kSkip };

struct Outcome {
  std::string id;
  std::string figure;
  std::string claim;
  Status status = Status::kSkip;
  std::string measured;  // one-line summary of the values judged
  std::string detail;    // failure specifics / skip reason
};

// The shipped catalogue: DESIGN.md §5's prose expectations, executable.
// Ids are stable; DESIGN.md §5 cross-references them.
std::vector<Expectation> default_catalogue();

// Evaluate every expectation against the loaded sweep documents.
// Deterministic: outcome order == catalogue order.
std::vector<Outcome> evaluate(const std::vector<Expectation>& catalogue,
                              const std::vector<SweepDoc>& sweeps);

std::string_view status_name(Status s);

}  // namespace dynaq::report
