// Bench-trajectory tracking (DESIGN.md §13): BENCH_history.jsonl is an
// append-only JSONL ledger of the committed perf snapshots
// (BENCH_core.json event-engine numbers + BENCH_sweep.json smoke-sweep
// wall time), one row per git revision. ci.sh appends the current run's
// row; the regression comparator re-applies the soft ns/event budgets and
// the hard zero-heap-fallback gate to the newest row so a perf regression
// fails the report gate even if the bench binary's own assert was skipped.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "report/artifacts.hpp"

namespace dynaq::report {

struct HistoryRow {
  // "dynaq-bench-history-v1"
  std::string schema = kHistorySchema;
  std::string rev;        // git revision the metrics were measured at
  std::int64_t seq = 0;   // 1-based position in the ledger
  std::vector<BenchWorkload> core;  // from BENCH_core.json
  struct SweepPerf {
    std::string sweep;
    std::int64_t jobs = 0;
    std::int64_t failures = 0;
    double total_wall_ms = 0.0;
  };
  std::optional<SweepPerf> sweep;  // from BENCH_sweep.json

  static constexpr const char* kHistorySchema = "dynaq-bench-history-v1";
};

// Build the row for this run from the loaded snapshots (either may be
// absent; an empty row is still a valid rev marker).
HistoryRow make_history_row(const std::string& rev, const BenchCoreDoc* core,
                            const SweepDoc* sweep);

// Parse BENCH_history.jsonl text. Unknown-schema lines are preserved as
// empty rows carrying only rev/seq so the ledger never shrinks.
std::vector<HistoryRow> parse_history(std::string_view jsonl);

// One JSONL line (no trailing newline), deterministic key order.
std::string render_history_row(const HistoryRow& row);

// Ledger update policy: one row per rev. A repeat run at the rev of the
// *last* row refreshes that row in place; any other rev appends. Rows for
// older revs are never modified — across revisions the ledger is
// append-only. Returns the full new ledger text.
std::string append_history(const std::string& existing_jsonl, HistoryRow row);

// Regression comparator over the newest row: hard-fails on any
// heap_fallbacks != 0 (allocation crept into the event hot path) or sweep
// failures != 0, soft-fails on ns_per_event above the workload's recorded
// budget. Returns human-readable findings; empty = clean.
std::vector<std::string> history_regressions(const std::vector<HistoryRow>& rows);

}  // namespace dynaq::report
