// Markdown fidelity report (DESIGN.md §13): renders the expectation
// outcomes, the oracle competitive-ratio table, the bench trajectory and
// the input inventory into results/REPORT.md. Pure function of its inputs
// (no clocks, no environment) so golden-file tests can assert the exact
// bytes.
#pragma once

#include <string>
#include <vector>

#include "report/artifacts.hpp"
#include "report/bench_history.hpp"
#include "report/expectation.hpp"

namespace dynaq::report {

struct ReportInputs {
  std::vector<SweepDoc> sweeps;
  std::vector<Outcome> outcomes;
  const BenchCoreDoc* bench_core = nullptr;          // optional
  std::vector<HistoryRow> history;                   // optional (may be empty)
  std::vector<std::string> bench_findings;           // history_regressions()
};

std::string render_markdown_report(const ReportInputs& inputs);

// True when the gate must fail: any expectation failed, or the bench
// comparator found a regression.
bool gate_failed(const ReportInputs& inputs);

}  // namespace dynaq::report
