#include "ctrlplane/recovery_instrument.hpp"

#include <algorithm>

#include "telemetry/hub.hpp"

namespace dynaq::ctrlplane {

RecoveryInstrument::RecoveryInstrument(telemetry::Hub& hub, int tel_port)
    : port_(static_cast<std::int16_t>(tel_port)) {
  hub.subscribe([this](const telemetry::Event& e) { on_event(e); });
}

void RecoveryInstrument::on_event(const telemetry::Event& e) {
  if (e.port != port_) return;
  switch (e.kind) {
    case telemetry::EventKind::kEnqueue:
      total_bytes_ += e.bytes;
      if (window_open_) degraded_bytes_ += e.bytes;
      break;
    case telemetry::EventKind::kControlFailover:
      ++failovers_;
      if (!window_open_) {
        window_open_ = true;
        window_start_ = e.when;
      }
      break;
    case telemetry::EventKind::kControlRestore:
      ++restores_;
      if (window_open_) {
        degraded_us_ += to_microseconds(e.when - window_start_);
        window_open_ = false;
      }
      // The shim stamps its measured recovery time (µs) into the payload.
      max_recovery_us_ = std::max(max_recovery_us_, static_cast<double>(e.bytes));
      break;
    default:
      break;
  }
}

RecoveryInstrument::Metrics RecoveryInstrument::finalize(Time run_duration) const {
  Metrics m;
  double degraded_us = degraded_us_;
  if (window_open_ && run_duration > window_start_) {
    degraded_us += to_microseconds(run_duration - window_start_);
  }
  m.degraded_us = degraded_us;
  m.recovery_us = max_recovery_us_;
  const double total_us = to_microseconds(run_duration);
  const double healthy_us = total_us - degraded_us;
  if (degraded_us <= 0.0 || healthy_us <= 0.0) return m;  // retention stays 1.0
  const double healthy_rate =
      static_cast<double>(total_bytes_ - degraded_bytes_) / healthy_us;
  const double degraded_rate = static_cast<double>(degraded_bytes_) / degraded_us;
  if (healthy_rate > 0.0) m.throughput_retention = degraded_rate / healthy_rate;
  return m;
}

}  // namespace dynaq::ctrlplane
