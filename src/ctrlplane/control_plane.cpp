#include "ctrlplane/control_plane.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "check/invariant_auditor.hpp"
#include "telemetry/hub.hpp"

namespace dynaq::ctrlplane {
namespace {

std::int32_t clamp_us(std::int64_t us) {
  return static_cast<std::int32_t>(
      std::clamp<std::int64_t>(us, 0, std::numeric_limits<std::int32_t>::max()));
}

double clamp_rate(double rate) { return std::clamp(rate, 0.0, 1.0); }

}  // namespace

ControlPlanePolicy::ControlPlanePolicy(sim::Simulator& sim, ControlPlaneConfig config,
                                       core::DynaQPolicy::Options dynaq_options)
    : sim_(sim),
      config_(config),
      inline_(dynaq_options),
      rng_(config.seed),
      loss_rate_(clamp_rate(config.update_loss)) {}

void ControlPlanePolicy::attach(const net::MqState& state) {
  state_ = &state;
  inline_.attach(state);
  if (async()) {
    const auto ts = inline_.controller().thresholds();
    enforced_.assign(ts.begin(), ts.end());
    blocked_bytes_.assign(state.queues.size(), 0);
    last_blocked_size_.assign(state.queues.size(), 0);
    last_commit_ = sim_.now();
  }
  // Timers start once; the qdisc attaches exactly once at construction. In
  // inline mode without a watchdog no event is ever scheduled, keeping the
  // trajectory byte-identical to a bare DynaQPolicy run.
  if (!timers_started_) {
    timers_started_ = true;
    if (async()) schedule_tick();
    if (config_.watchdog_deadline > 0) schedule_probe();
  }
}

bool ControlPlanePolicy::admit(const net::MqState& state, int q, const net::Packet& p) {
  if (failed_over_) {
    admit_path_ = AdmitPath::kFailover;
    return admit_dt(state, q, p);
  }
  if (!async()) {
    if (alive()) {
      // A crash that ended before any watchdog probe (or with no watchdog
      // armed) re-syncs lazily at the next arrival.
      if (needs_resync_) resync();
      admit_path_ = AdmitPath::kDelegated;
      return inline_.admit(state, q, p);
    }
    // Controller down, no failover (yet): the data plane keeps enforcing
    // the thresholds as last programmed — stale but frozen.
    admit_path_ = AdmitPath::kFrozen;
    return state.queue(q).bytes + p.size <= inline_.controller().threshold(q);
  }
  admit_path_ = AdmitPath::kAsync;
  const auto uq = static_cast<std::size_t>(q);
  if (state.queue(q).bytes + p.size <= enforced_[uq]) return true;
  // Rejected against a stale threshold: remember the demand so the next
  // controller tick can run Algorithm 1's exchange for it.
  blocked_bytes_[uq] += p.size;
  last_blocked_size_[uq] = p.size;
  return false;
}

bool ControlPlanePolicy::admit_dt(const net::MqState& state, int q, const net::Packet& p) {
  // Classic Dynamic Thresholds (core::DynamicThresholdPolicy's rule): the
  // data plane can evaluate it from local state alone, which is exactly why
  // it is the failover scheme.
  const double free_buffer = static_cast<double>(state.buffer_bytes - state.port_bytes);
  const auto threshold = static_cast<std::int64_t>(config_.failover_dt_alpha * free_buffer);
  return state.queue(q).bytes + p.size <= threshold;
}

void ControlPlanePolicy::on_admit_aborted(const net::MqState& state, int q,
                                          const net::Packet& p) {
  // Only the delegated path mutates controller state inside admit(); the
  // frozen/async/failover predicates are pure.
  if (admit_path_ == AdmitPath::kDelegated) inline_.on_admit_aborted(state, q, p);
}

void ControlPlanePolicy::on_buffer_resize(const net::MqState& state) {
  if (!async() && alive() && !failed_over_) {
    inline_.on_buffer_resize(state);
    return;
  }
  // The data plane's physical bound changed immediately, but the controller
  // learns only via the control channel (next tick) or the recovery re-sync.
  needs_resync_ = true;
}

void ControlPlanePolicy::on_weights_changed(const net::MqState& state) {
  if (!async() && alive() && !failed_over_) {
    inline_.on_weights_changed(state);
    return;
  }
  needs_resync_ = true;
}

void ControlPlanePolicy::on_enqueue(const net::MqState& state, int q, const net::Packet& p) {
  inline_.on_enqueue(state, q, p);
}

void ControlPlanePolicy::on_dequeue(const net::MqState& state, int q, const net::Packet& p) {
  inline_.on_dequeue(state, q, p);
}

std::vector<std::int64_t> ControlPlanePolicy::thresholds() const {
  // During failover the enforced rule is DT, which has no per-queue
  // threshold vector — mirror core::DynamicThresholdPolicy and advertise
  // none (the auditor then skips the ΣT = B check, as it does for DT).
  if (failed_over_) return {};
  if (!async()) return inline_.thresholds();
  return enforced_;
}

bool ControlPlanePolicy::enforces_thresholds() const {
  if (failed_over_) return false;
  if (!async()) return inline_.enforces_thresholds();
  return true;  // async admission is exactly q_p + size ≤ enforced T_p
}

Time ControlPlanePolicy::threshold_staleness_bound() const {
  if (config_.staleness_bound > 0) return config_.staleness_bound;
  if (!async()) return 0;  // inline DynaQ never drifts — keep the strict contract
  // Auto bound: a reconfiguration is re-balanced by the next periodic update
  // (one period + delay), surviving one lost update (a second period), and
  // in the worst case rides through a watchdog failover/restore cycle.
  return 2 * (config_.update_period + config_.update_delay) + config_.watchdog_deadline;
}

telemetry::DropReason ControlPlanePolicy::last_drop_reason() const {
  if (admit_path_ == AdmitPath::kDelegated) return inline_.last_drop_reason();
  return telemetry::DropReason::kThreshold;
}

int ControlPlanePolicy::last_exchange_victim() const {
  if (admit_path_ == AdmitPath::kDelegated) return inline_.last_exchange_victim();
  return -1;
}

void ControlPlanePolicy::attach_telemetry(telemetry::Hub& hub, int tel_port) {
  hub_ = &hub;
  tel_port_ = static_cast<std::int16_t>(tel_port);
}

void ControlPlanePolicy::stall_for(Time duration) {
  if (duration <= 0) return;
  if (alive()) fault_begin_ = sim_.now();
  stall_until_ = std::max(stall_until_, sim_.now() + duration);
  resync_sent_ = false;  // an in-flight re-sync would land during the stall
}

void ControlPlanePolicy::crash_for(Time duration) {
  if (duration <= 0) return;
  if (alive()) fault_begin_ = sim_.now();
  crashed_until_ = std::max(crashed_until_, sim_.now() + duration);
  ++epoch_;              // void every in-flight update of the dead incarnation
  needs_resync_ = true;  // controller state is lost; Eq. 1 re-init on recovery
  resync_sent_ = false;
}

void ControlPlanePolicy::set_update_loss(double rate) { loss_rate_ = clamp_rate(rate); }

void ControlPlanePolicy::resync() {
  std::vector<double> weights;
  weights.reserve(state_->queues.size());
  for (const net::ServiceQueue& q : state_->queues) weights.push_back(q.weight);
  inline_.controller().set_weights(weights);
  inline_.controller().reinitialize(state_->buffer_bytes);
  needs_resync_ = false;
}

void ControlPlanePolicy::drain_blocked() {
  std::int64_t occupancy[64];
  const int m = state_->num_queues();
  for (int i = 0; i < m; ++i) occupancy[i] = state_->queue(i).bytes;
  for (int q = 0; q < m; ++q) {
    const auto uq = static_cast<std::size_t>(q);
    if (blocked_bytes_[uq] <= 0) continue;
    // The verdict is advisory here — a successful exchange raises T_q in
    // the vector the next update ships; a drop verdict means the victim
    // protection held and the stale rejection was the right call anyway.
    (void)inline_.controller().on_arrival({occupancy, static_cast<std::size_t>(m)}, q,
                                          last_blocked_size_[uq]);
    blocked_bytes_[uq] = 0;
    last_blocked_size_[uq] = 0;
  }
}

void ControlPlanePolicy::send_update(bool reliable) {
  ++seq_;
  // Exactly one draw per send, lost or not, reliable or not: the loss
  // stream stays aligned across seeds/scenarios (DESIGN.md §10).
  const double draw = rng_.uniform();
  if (!reliable && draw < loss_rate_) {
    ++updates_lost_;
    emit_control(telemetry::EventKind::kControlUpdateLost, 0);
    return;
  }
  const auto ts = inline_.controller().thresholds();
  std::vector<std::int64_t> vec(ts.begin(), ts.end());
  const std::uint64_t seq = seq_;
  const std::uint64_t epoch = epoch_;
  auto deliver = [this, vec = std::move(vec), seq, epoch]() mutable {
    commit(std::move(vec), seq, epoch);
  };
  static_assert(sizeof(deliver) <= sim::kEventInlineBytes);
  sim_.schedule_in(config_.update_delay, std::move(deliver));
}

void ControlPlanePolicy::commit(std::vector<std::int64_t> vec, std::uint64_t seq,
                                std::uint64_t epoch) {
  // Guard against stale deliveries: reordered/older updates and anything
  // sent by a since-crashed controller incarnation are discarded.
  if (epoch != epoch_ || seq <= applied_seq_) return;
  applied_seq_ = seq;
  enforced_ = std::move(vec);
  last_commit_ = sim_.now();
  ++commits_;
  emit_control(telemetry::EventKind::kControlUpdate,
               static_cast<std::int64_t>(std::min<std::uint64_t>(
                   seq, static_cast<std::uint64_t>(std::numeric_limits<std::int32_t>::max()))));
  if (failed_over_) {
    if (alive()) {
      restore();
    } else {
      // The re-sync landed during a new outage; let the watchdog push again
      // once the controller is actually back.
      resync_sent_ = false;
    }
  }
}

void ControlPlanePolicy::tick() {
  schedule_tick();
  // A failed-over port is the watchdog's to recover; a dead controller
  // produces nothing (which is exactly what ages last_commit_ past the
  // watchdog deadline).
  if (failed_over_ || !alive()) return;
  if (needs_resync_) resync();
  drain_blocked();
  send_update(/*reliable=*/false);
}

void ControlPlanePolicy::probe() {
  schedule_probe();
  if (!failed_over_) {
    // Async mode watches the commit stream (covers stall, crash and a lossy
    // channel alike); inline mode can only watch controller liveness.
    const bool dead = async() ? sim_.now() - last_commit_ > config_.watchdog_deadline
                              : !alive();
    if (dead) {
      failed_over_ = true;
      failover_time_ = sim_.now();
      ++failovers_;
      const Time staleness =
          async() ? sim_.now() - last_commit_ : sim_.now() - fault_begin_;
      emit_control(telemetry::EventKind::kControlFailover,
                   static_cast<std::int64_t>(to_microseconds(staleness)));
    }
    return;
  }
  if (!alive()) return;
  if (async()) {
    // Recovery: re-sync the controller from the live port config and push
    // the fresh vector reliably; restore fires when it commits.
    if (!resync_sent_) {
      if (needs_resync_) resync();
      resync_sent_ = true;
      send_update(/*reliable=*/true);
    }
    return;
  }
  if (needs_resync_) resync();
  restore();
}

void ControlPlanePolicy::restore() {
  failed_over_ = false;
  resync_sent_ = false;
  // Recovery time: from the instant the controller came back (end of the
  // outage; the failover instant itself for pure channel-loss failovers)
  // to DynaQ enforcement resuming.
  const Time back_at = std::max({failover_time_, stall_until_, crashed_until_});
  last_recovery_ = sim_.now() - std::min(back_at, sim_.now());
  ++restores_;
  emit_control(telemetry::EventKind::kControlRestore,
               static_cast<std::int64_t>(to_microseconds(last_recovery_)));
}

void ControlPlanePolicy::schedule_tick() {
  sim_.schedule_in(config_.update_period, [this] { tick(); });
}

void ControlPlanePolicy::schedule_probe() {
  // Probe at a quarter of the deadline so failover engages within one
  // watchdog period of the controller going quiet.
  sim_.schedule_in(std::max<Time>(config_.watchdog_deadline / 4, 1), [this] { probe(); });
}

void ControlPlanePolicy::emit_control(telemetry::EventKind kind, std::int64_t payload_us) {
  if (hub_ == nullptr || !hub_->enabled()) return;
  hub_->emit({.kind = kind, .port = tel_port_, .bytes = clamp_us(payload_us)});
}

ControlPlanePolicy* find_control_plane(net::BufferPolicy& policy) {
  if (auto* direct = dynamic_cast<ControlPlanePolicy*>(&policy)) return direct;
  if (auto* audited = dynamic_cast<check::AuditedBufferPolicy*>(&policy)) {
    return dynamic_cast<ControlPlanePolicy*>(&audited->inner());
  }
  return nullptr;
}

}  // namespace dynaq::ctrlplane
