// Recovery metrics for control-plane degradation (DESIGN.md §14).
//
// RecoveryInstrument subscribes to a telemetry::Hub and watches one
// observation point (the port hosting a ControlPlanePolicy): failover and
// restore events bracket "degraded windows" (DT enforcement instead of
// DynaQ), enqueue events accumulate delivered bytes inside and outside
// those windows, and the restore event's payload carries the shim's
// measured recovery time. finalize() turns the stream into the two
// paper-facing robustness metrics:
//
//   * throughput retention — bytes/µs enqueued while degraded, relative to
//     bytes/µs enqueued while healthy (1.0 when the run never failed over);
//   * recovery time — the worst time-to-steady-state across restore events,
//     measured from the controller coming back to DynaQ enforcement
//     resuming (bounded by the watchdog probe period + re-sync commit).
//
// The instrument needs nothing beyond the event stream — no simulator or
// policy access — so it works identically on live runs and replayed rings.
#pragma once

#include <cstdint>

#include "sim/time.hpp"
#include "telemetry/events.hpp"

namespace dynaq::telemetry {
class Hub;
}

namespace dynaq::ctrlplane {

class RecoveryInstrument {
 public:
  // Subscribes to `hub`, filtering to events at observation point
  // `tel_port`. The instrument must outlive the hub's event stream and
  // cannot move afterwards (the subscription captures `this`).
  RecoveryInstrument(telemetry::Hub& hub, int tel_port);

  RecoveryInstrument(const RecoveryInstrument&) = delete;
  RecoveryInstrument& operator=(const RecoveryInstrument&) = delete;

  struct Metrics {
    double degraded_us = 0.0;          // total time spent failed over
    double recovery_us = 0.0;          // worst restore's recovery time
    double throughput_retention = 1.0;  // degraded rate / healthy rate
  };

  // Derives the metrics for a run of `run_duration`; a window still open at
  // the end of the run is closed at `run_duration`.
  Metrics finalize(Time run_duration) const;

  std::uint64_t failovers_seen() const { return failovers_; }
  std::uint64_t restores_seen() const { return restores_; }

 private:
  void on_event(const telemetry::Event& e);

  std::int16_t port_;
  std::int64_t total_bytes_ = 0;
  std::int64_t degraded_bytes_ = 0;
  double degraded_us_ = 0.0;
  double max_recovery_us_ = 0.0;
  bool window_open_ = false;
  Time window_start_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t restores_ = 0;
};

}  // namespace dynaq::ctrlplane
