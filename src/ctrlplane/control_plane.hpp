// Asynchronous control-plane shim for DynaQ (DESIGN.md §14).
//
// On a real switch Algorithm 1 does not run inline with every arrival: the
// controller computes thresholds and pushes them to the data plane over a
// control channel with a period, a latency and a loss probability. This
// module models that separation as a net::BufferPolicy wrapper around
// core::DynaQPolicy:
//
//   * update_period == 0 (the default) keeps today's inline behaviour —
//     every call delegates straight to the wrapped DynaQPolicy, no timers
//     are scheduled, and trajectories are byte-identical to a bare DynaQ
//     run;
//   * update_period > 0 switches to asynchronous operation: the data plane
//     enforces the last *committed* threshold vector (possibly stale),
//     while the controller re-runs Algorithm 1 on a timer against the
//     blocked demand it observed and ships a fresh vector per period,
//     delayed by update_delay and lost with probability update_loss;
//   * a deadline-based watchdog (watchdog_deadline > 0) detects a stalled,
//     crashed or unreachable controller and fails the port over to classic
//     Dynamic Thresholds (the same rule as core::DynamicThresholdPolicy);
//     once the controller is healthy again the watchdog re-syncs it from
//     the live port configuration (Eq. 1 — ΣT = B re-established through
//     the audited path) and restores DynaQ enforcement;
//   * every transition is emitted on the telemetry bus (kControlUpdate /
//     kControlUpdateLost / kControlFailover / kControlRestore), so stale
//     state, failover and re-sync all fold into the trajectory hash.
//
// Fault handles (stall_for / crash_for / set_update_loss) are driven by
// scenario::ScenarioDirector actions (controller_stall / controller_crash /
// control_loss_window) — conventions rule 14: controller state is mutated
// only through this shim, never by poking core::DynaQController directly.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/policies.hpp"
#include "net/buffer_policy.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace dynaq::ctrlplane {

struct ControlPlaneConfig {
  // Harness switch (harness::StaticExperimentConfig::control_plane): when
  // false the shim is not installed at all. The policy itself ignores it.
  bool enabled = false;
  // Threshold recomputation/push period. 0 = inline (today's behaviour).
  Time update_period = 0;
  // One-way control-message latency from controller to data plane.
  Time update_delay = 0;
  // Bernoulli loss probability of a threshold update in transit.
  double update_loss = 0.0;
  // Watchdog failover deadline; 0 disables the watchdog. In async mode the
  // data plane declares the controller dead when no update committed for
  // this long, so it must comfortably exceed update_period + update_delay.
  Time watchdog_deadline = 0;
  // alpha of the Dynamic-Thresholds rule enforced while failed over.
  double failover_dt_alpha = 1.0;
  // Seed of the control-channel loss stream (independent of model RNG).
  std::uint64_t seed = 1;
  // Bound declared to the invariant auditor for how long ΣT may drift from
  // B after a reconfiguration before the drift is a contract violation.
  // 0 = auto: 2·(update_period + update_delay) + watchdog_deadline in
  // async mode, strict (0) in inline mode.
  Time staleness_bound = 0;
};

class ControlPlanePolicy final : public net::BufferPolicy {
 public:
  ControlPlanePolicy(sim::Simulator& sim, ControlPlaneConfig config,
                     core::DynaQPolicy::Options dynaq_options = {});

  // ---- net::BufferPolicy --------------------------------------------------
  void attach(const net::MqState& state) override;
  bool admit(const net::MqState& state, int q, const net::Packet& p) override;
  void on_admit_aborted(const net::MqState& state, int q, const net::Packet& p) override;
  void on_buffer_resize(const net::MqState& state) override;
  void on_weights_changed(const net::MqState& state) override;
  void on_enqueue(const net::MqState& state, int q, const net::Packet& p) override;
  void on_dequeue(const net::MqState& state, int q, const net::Packet& p) override;
  std::vector<std::int64_t> thresholds() const override;
  bool conserves_threshold_sum() const override { return !failed_over_; }
  bool enforces_thresholds() const override;
  Time threshold_staleness_bound() const override;
  telemetry::DropReason last_drop_reason() const override;
  int last_exchange_victim() const override;
  void attach_telemetry(telemetry::Hub& hub, int tel_port) override;
  std::string_view name() const override { return "dynaq+ctrl"; }

  // ---- fault handles (scenario::ScenarioDirector, DESIGN.md §11/§14) ------
  // Stall: the controller stops reacting/pushing but keeps its state.
  void stall_for(Time duration);
  // Crash: like stall, but controller state is lost — in-flight updates are
  // voided and recovery requires a full Eq. 1 re-sync from the port config.
  void crash_for(Time duration);
  // Control-channel loss override (control_loss_window start/end).
  void set_update_loss(double rate);
  double base_update_loss() const { return config_.update_loss; }

  // ---- introspection ------------------------------------------------------
  bool inline_mode() const { return config_.update_period <= 0; }
  bool failed_over() const { return failed_over_; }
  bool controller_alive() const { return alive(); }
  std::uint64_t updates_committed() const { return commits_; }
  std::uint64_t updates_lost() const { return updates_lost_; }
  std::uint64_t failovers() const { return failovers_; }
  std::uint64_t restores() const { return restores_; }
  // Duration of the most recent restore, measured from the instant the
  // controller came back to the instant DynaQ enforcement resumed.
  Time last_recovery() const { return last_recovery_; }
  const ControlPlaneConfig& config() const { return config_; }
  const core::DynaQController& controller() const { return inline_.controller(); }

 private:
  // Which branch the most recent admit() took, so on_admit_aborted() and
  // the telemetry introspection forward only when DynaQ actually ran.
  enum class AdmitPath : std::uint8_t { kDelegated, kFrozen, kAsync, kFailover };

  bool async() const { return config_.update_period > 0; }
  bool alive() const {
    const Time now = sim_.now();
    return now >= stall_until_ && now >= crashed_until_;
  }
  bool admit_dt(const net::MqState& state, int q, const net::Packet& p);
  // Rebuild the controller from the live port configuration: Eq. 1 over the
  // current weights and buffer size, so ΣT = B holds exactly afterwards.
  void resync();
  // Feed the controller the demand the stale data plane rejected since the
  // last tick (one Algorithm 1 arrival per backlogged queue, ascending).
  void drain_blocked();
  // Ship the controller's current vector; commits update_delay later unless
  // the channel drops it. `reliable` models an acknowledged re-sync push.
  void send_update(bool reliable);
  void commit(std::vector<std::int64_t> vec, std::uint64_t seq, std::uint64_t epoch);
  void tick();
  void probe();
  void restore();
  void schedule_tick();
  void schedule_probe();
  void emit_control(telemetry::EventKind kind, std::int64_t payload_us);

  sim::Simulator& sim_;
  ControlPlaneConfig config_;
  core::DynaQPolicy inline_;  // controller owner; full delegate in inline mode
  sim::Rng rng_;              // control-channel loss stream
  const net::MqState* state_ = nullptr;  // live port state (outlives the policy)
  telemetry::Hub* hub_ = nullptr;
  std::int16_t tel_port_ = -1;

  // Data-plane view (async mode): last committed thresholds and the demand
  // rejected against them since the last controller tick.
  std::vector<std::int64_t> enforced_;
  std::vector<std::int64_t> blocked_bytes_;
  std::vector<std::int32_t> last_blocked_size_;

  double loss_rate_ = 0.0;  // current channel loss (scenario may override)
  Time stall_until_ = 0;
  Time crashed_until_ = 0;
  Time fault_begin_ = 0;  // start of the current outage (for staleness payload)
  bool needs_resync_ = false;
  bool failed_over_ = false;
  bool resync_sent_ = false;  // async: reliable re-sync push is in flight
  bool timers_started_ = false;

  std::uint64_t seq_ = 0;          // updates sent
  std::uint64_t applied_seq_ = 0;  // newest committed update
  std::uint64_t epoch_ = 0;        // bumped per crash; voids in-flight commits
  Time last_commit_ = 0;
  Time failover_time_ = 0;
  Time last_recovery_ = 0;

  std::uint64_t commits_ = 0;
  std::uint64_t updates_lost_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t restores_ = 0;
  AdmitPath admit_path_ = AdmitPath::kDelegated;
};

// Resolves the control-plane shim installed on a qdisc's policy, looking
// through the check::AuditedBufferPolicy decorator when present. Returns
// nullptr for ports running any other scheme — topologies use this to
// register scenario handles only where a control plane exists.
ControlPlanePolicy* find_control_plane(net::BufferPolicy& policy);

}  // namespace dynaq::ctrlplane
