// Minimal streaming JSON writer with deterministic formatting: keys emit in
// call order, doubles print as integers when exactly integral and via "%.12g"
// otherwise, strings are escaped per RFC 8259. Enough for the sweep results
// schema without an external dependency.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace dynaq::sweep {

class JsonWriter {
 public:
  std::string take() { return std::move(out_); }

  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  void key(const std::string& k) {
    comma();
    write_string(k);
    out_ += ':';
    just_keyed_ = true;
  }

  void value(const std::string& s) {
    comma();
    write_string(s);
  }
  void value(const char* s) { value(std::string(s)); }
  void value(bool b) {
    comma();
    out_ += b ? "true" : "false";
  }
  void value(std::int64_t n) {
    comma();
    out_ += std::to_string(n);
  }
  void value(std::size_t n) { value(static_cast<std::int64_t>(n)); }
  void value(int n) { value(static_cast<std::int64_t>(n)); }
  void value(double d) {
    comma();
    out_ += format_number(d);
  }

  static std::string format_number(double d) {
    if (d == static_cast<double>(static_cast<std::int64_t>(d)) && d >= -1e15 && d <= 1e15) {
      return std::to_string(static_cast<std::int64_t>(d));
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.12g", d);
    return buf;
  }

 private:
  void open(char c) {
    comma();
    out_ += c;
    fresh_.push_back(true);
  }
  void close(char c) {
    out_ += c;
    fresh_.pop_back();
    just_keyed_ = false;
  }
  // Insert "," before any value/key that is neither the first element of its
  // container nor the value immediately following a key.
  void comma() {
    if (just_keyed_) {
      just_keyed_ = false;
      return;
    }
    if (!fresh_.empty()) {
      if (!fresh_.back()) out_ += ',';
      fresh_.back() = false;
    }
  }
  void write_string(const std::string& s) {
    out_ += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> fresh_;  // per open container: no element emitted yet
  bool just_keyed_ = false;
};

}  // namespace dynaq::sweep
