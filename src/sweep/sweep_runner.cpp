#include "sweep/sweep_runner.hpp"

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dynaq::sweep {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since).count();
}

double thread_cpu_ms() {
#ifdef RUSAGE_THREAD
  rusage r{};
  if (getrusage(RUSAGE_THREAD, &r) == 0) {
    const auto tv_ms = [](const timeval& tv) {
      return static_cast<double>(tv.tv_sec) * 1e3 + static_cast<double>(tv.tv_usec) / 1e3;
    };
    return tv_ms(r.ru_utime) + tv_ms(r.ru_stime);
  }
#endif
  return 0.0;
}

std::int64_t process_max_rss_kb() {
  rusage r{};
  if (getrusage(RUSAGE_SELF, &r) != 0) return 0;
  return static_cast<std::int64_t>(r.ru_maxrss);
}

// Result of one attempt, shared with the (possibly abandoned) attempt
// thread. The shared_ptr keeps it alive past a timeout so a straggler can
// still write into it harmlessly; `done` is owned by the mutex/cv pair.
struct AttemptState {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  JobResult result;
  bool ok = false;
  std::string error;
  double cpu_ms = 0.0;
};

void execute_attempt(const JobFn& fn, const JobPoint& point, AttemptState& state) {
  const double cpu0 = thread_cpu_ms();
  JobResult result;
  bool ok = false;
  std::string error;
  try {
    result = fn(point);
    ok = true;
  } catch (const std::exception& e) {
    error = e.what();
  } catch (...) {
    error = "non-standard exception";
  }
  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.result = std::move(result);
    state.ok = ok;
    state.error = std::move(error);
    state.cpu_ms = thread_cpu_ms() - cpu0;
    state.done = true;
  }
  state.cv.notify_one();
}

}  // namespace

int SweepRunner::effective_jobs() const {
  if (options_.jobs > 0) return options_.jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ResultStore SweepRunner::run(std::string sweep_name, const SweepSpec& spec,
                             const JobFn& fn) const {
  const auto sweep_start = Clock::now();
  const std::vector<JobPoint> points = spec.expand();
  std::vector<JobOutcome> outcomes(points.size());

  std::mutex stragglers_mu;
  std::vector<std::thread> stragglers;  // timed-out attempt threads

  // One attempt at `point`: inline on the worker when no timeout is
  // configured; otherwise on its own thread so the worker can give up
  // waiting and move on.
  const double timeout_s = options_.timeout_s;
  const auto run_attempt = [&](const JobPoint& point, JobOutcome& out) {
    const auto t0 = Clock::now();
    auto state = std::make_shared<AttemptState>();
    if (timeout_s <= 0.0) {
      execute_attempt(fn, point, *state);
    } else {
      std::thread attempt([state, &fn, &point] { execute_attempt(fn, point, *state); });
      std::unique_lock<std::mutex> lock(state->mu);
      const bool finished = state->cv.wait_for(
          lock, std::chrono::duration<double>(timeout_s), [&] { return state->done; });
      lock.unlock();
      if (finished) {
        attempt.join();
      } else {
        out.timed_out = true;
        out.ok = false;
        out.error = "timed out after " + std::to_string(timeout_s) + " s";
        out.wall_ms = elapsed_ms(t0);
        std::lock_guard<std::mutex> guard(stragglers_mu);
        stragglers.push_back(std::move(attempt));
        return;
      }
    }
    out.timed_out = false;
    out.ok = state->ok;
    out.metrics = std::move(state->result.metrics);
    out.telemetry = std::move(state->result.telemetry);
    out.trajectory_hash = state->result.trajectory_hash;
    out.oracle = std::move(state->result.oracle);
    out.error = std::move(state->error);
    out.cpu_ms = state->cpu_ms;
    out.wall_ms = elapsed_ms(t0);
  };

  const auto run_job = [&](std::size_t job_id) {
    JobOutcome& out = outcomes[job_id];
    out.point = points[job_id];
    const int max_attempts = options_.retry_failed_once ? 2 : 1;
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
      out.attempts = attempt;
      run_attempt(points[job_id], out);
      if (out.ok) break;
    }
  };

  const int workers = std::min<int>(effective_jobs(), static_cast<int>(points.size()));
  if (workers <= 1) {
    for (std::size_t i = 0; i < points.size(); ++i) run_job(i);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= points.size()) return;
          run_job(i);
        }
      });
    }
    for (auto& t : pool) t.join();
  }
  // Abandoned attempts still reference fn/points; they must finish before
  // anything they capture goes out of scope.
  for (auto& t : stragglers) t.join();

  ResultStore store(std::move(sweep_name), spec);
  store.set_outcomes(std::move(outcomes));
  store.set_run_info(workers, elapsed_ms(sweep_start), process_max_rss_kb());
  return store;
}

}  // namespace dynaq::sweep
