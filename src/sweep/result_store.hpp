// Sweep results: per-job records (metrics, error, runtime, rusage) stored
// in job-id order, seed-replica aggregation (mean/p50/p99 + 95% confidence
// interval per metric), and machine-readable emission as JSON (schema in
// DESIGN.md §7) or tidy CSV. Everything except the optional perf section is
// a pure function of the spec and the job results, so emitted bytes are
// identical for any worker count.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "oracle/report.hpp"
#include "sweep/sweep_spec.hpp"
#include "telemetry/summary.hpp"

namespace dynaq::sweep {

// What a job function hands back: scalar metrics, plus (optionally) the
// experiment's TelemetrySummary so the sweep JSON carries per-job drop
// reasons and queueing-delay percentiles, plus (optionally) the run's
// trajectory hash (DESIGN.md §10) and its offline-optimal competitive
// report (DESIGN.md §12; schema_version 5, DESIGN.md §7). Implicitly
// constructible from a bare metrics map so metrics-only job functions keep
// working unchanged.
struct JobResult {
  std::map<std::string, double> metrics;
  std::optional<telemetry::TelemetrySummary> telemetry;
  // The experiment's check::TrajectoryHash value; hashes cannot ride
  // `metrics` because JSON doubles lose u64 precision, so they are emitted
  // as "0x…" hex strings instead.
  std::optional<std::uint64_t> trajectory_hash;
  // Competitive ratios vs. the offline optimum, when the job ran with
  // oracle_competitive enabled (DESIGN.md §12).
  std::optional<oracle::Report> oracle;

  JobResult() = default;
  JobResult(std::map<std::string, double> m) : metrics(std::move(m)) {}
  JobResult(std::map<std::string, double> m, telemetry::TelemetrySummary t)
      : metrics(std::move(m)), telemetry(std::move(t)) {}
};

struct JobOutcome {
  JobPoint point;
  std::map<std::string, double> metrics;  // empty unless ok
  std::optional<telemetry::TelemetrySummary> telemetry;  // when the job returned one
  std::optional<std::uint64_t> trajectory_hash;  // when the job returned one
  std::optional<oracle::Report> oracle;  // when the job returned one
  bool ok = false;
  bool timed_out = false;
  int attempts = 0;
  std::string error;       // what() of the captured exception, if any
  double wall_ms = 0.0;    // last attempt's wall-clock time
  double cpu_ms = 0.0;     // last attempt's thread CPU time (user+sys)
};

// Distribution of one metric across seed replicas.
struct MetricAggregate {
  std::size_t n = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double min = 0.0;
  double max = 0.0;
  // Half-width of the 95% CI of the mean (Student t); 0 when n < 2.
  double ci95_half = 0.0;
};

MetricAggregate aggregate_samples(std::vector<double> samples);

// One aggregate row: the grid point minus the replica axis, plus the
// per-metric distributions over the replicas that succeeded.
struct AggregateRow {
  std::vector<std::pair<std::string, AxisValue>> coords;
  std::size_t replicas = 0;  // successful jobs folded in
  std::map<std::string, MetricAggregate> metrics;
};

struct JsonOptions {
  // Include per-job wall/cpu times and the sweep perf block. The
  // determinism contract (byte-identical output for any --jobs) holds only
  // with this off; bench binaries keep it on so the JSON doubles as a perf
  // record.
  bool include_perf = true;
};

class ResultStore {
 public:
  ResultStore(std::string sweep_name, SweepSpec spec)
      : name_(std::move(sweep_name)), spec_(std::move(spec)) {}

  const std::string& name() const { return name_; }
  const SweepSpec& spec() const { return spec_; }

  // Outcomes arrive from the runner already indexed by job id.
  void set_outcomes(std::vector<JobOutcome> outcomes) { outcomes_ = std::move(outcomes); }
  const std::vector<JobOutcome>& outcomes() const { return outcomes_; }
  const JobOutcome& outcome(std::size_t job_id) const { return outcomes_.at(job_id); }

  std::size_t failures() const;
  bool all_ok() const { return failures() == 0; }

  // Sweep-level perf context, reported in the JSON perf block.
  void set_run_info(int jobs, double total_wall_ms, std::int64_t max_rss_kb) {
    jobs_used_ = jobs;
    total_wall_ms_ = total_wall_ms;
    max_rss_kb_ = max_rss_kb;
  }
  double total_wall_ms() const { return total_wall_ms_; }

  // Groups successful outcomes by every axis except `replica_axis` (in job
  // order) and aggregates each metric. A spec without that axis yields one
  // single-replica row per job.
  std::vector<AggregateRow> aggregate(const std::string& replica_axis = "seed") const;

  // Serialization. write_json returns false (and warns on stderr) when the
  // path cannot be opened.
  std::string to_json(const JsonOptions& options = {},
                      const std::string& replica_axis = "seed") const;
  bool write_json(const std::string& path, const JsonOptions& options = {},
                  const std::string& replica_axis = "seed") const;
  // Tidy CSV: one row per job — axis columns, then the sorted union of
  // metric names, then ok/error.
  bool write_csv(const std::string& path) const;

 private:
  std::string name_;
  SweepSpec spec_;
  std::vector<JobOutcome> outcomes_;
  int jobs_used_ = 0;
  double total_wall_ms_ = 0.0;
  std::int64_t max_rss_kb_ = 0;
};

}  // namespace dynaq::sweep
