#include "sweep/sweep_spec.hpp"

#include <cstdio>
#include <stdexcept>

namespace dynaq::sweep {

Axis Axis::numeric(std::string name, const std::vector<double>& xs) {
  Axis axis{std::move(name), {}};
  axis.values.reserve(xs.size());
  for (const double x : xs) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%g", x);
    axis.values.push_back(AxisValue{buf, x, /*numeric=*/true});
  }
  return axis;
}

Axis Axis::labels(std::string name, std::vector<std::string> ls) {
  Axis axis{std::move(name), {}};
  axis.values.reserve(ls.size());
  for (auto& l : ls) axis.values.push_back(AxisValue{std::move(l), 0.0, /*numeric=*/false});
  return axis;
}

const AxisValue& JobPoint::at(const std::string& axis) const {
  for (const auto& [name, value] : coords) {
    if (name == axis) return value;
  }
  throw std::out_of_range("JobPoint: no axis named '" + axis + "'");
}

std::string JobPoint::name() const {
  std::string out;
  for (const auto& [axis, value] : coords) {
    if (!out.empty()) out += ' ';
    out += axis + '=' + value.label;
  }
  return out;
}

std::size_t SweepSpec::num_jobs() const {
  if (axes.empty()) return 0;
  if (zipped) return axes.front().values.size();
  std::size_t n = 1;
  for (const auto& axis : axes) n *= axis.values.size();
  return n;
}

std::vector<JobPoint> SweepSpec::expand() const {
  if (axes.empty()) throw std::invalid_argument("SweepSpec: no axes");
  for (const auto& axis : axes) {
    if (axis.values.empty()) {
      throw std::invalid_argument("SweepSpec: axis '" + axis.name + "' has no values");
    }
    if (zipped && axis.values.size() != axes.front().values.size()) {
      throw std::invalid_argument("SweepSpec: zipped axes must have equal lengths ('" +
                                  axis.name + "' differs)");
    }
  }

  std::vector<JobPoint> points;
  points.reserve(num_jobs());
  if (zipped) {
    for (std::size_t i = 0; i < axes.front().values.size(); ++i) {
      JobPoint p;
      p.job_id = points.size();
      for (const auto& axis : axes) p.coords.emplace_back(axis.name, axis.values[i]);
      points.push_back(std::move(p));
    }
    return points;
  }

  // Cartesian product, last axis fastest (odometer).
  std::vector<std::size_t> idx(axes.size(), 0);
  for (;;) {
    JobPoint p;
    p.job_id = points.size();
    for (std::size_t a = 0; a < axes.size(); ++a) {
      p.coords.emplace_back(axes[a].name, axes[a].values[idx[a]]);
    }
    points.push_back(std::move(p));
    std::size_t a = axes.size();
    while (a > 0) {
      --a;
      if (++idx[a] < axes[a].values.size()) break;
      idx[a] = 0;
      if (a == 0) return points;
    }
  }
}

}  // namespace dynaq::sweep
