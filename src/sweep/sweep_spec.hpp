// Declarative experiment-sweep grids. A SweepSpec names a set of axes
// (scheme, load, seed, or any caller-defined dimension) and expands them —
// cartesian product or position-wise zip — into an ordered list of
// JobPoints. Expansion order is fixed by the spec alone, so job ids (and
// everything keyed off them: results, aggregation, JSON) are independent of
// how many workers later execute the jobs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dynaq::sweep {

// One value along an axis: a display label plus, for numeric axes, the
// number itself (loads, seeds, weights...). Label-only axes (scheme names,
// config-mutator variants) leave `number` at 0 and `numeric` false.
struct AxisValue {
  std::string label;
  double number = 0.0;
  bool numeric = false;
};

struct Axis {
  std::string name;
  std::vector<AxisValue> values;

  // --loads=0.3,0.5 style numeric axes; labels render via "%g".
  static Axis numeric(std::string name, const std::vector<double>& xs);
  // Scheme names, variant tags, mutator ids.
  static Axis labels(std::string name, std::vector<std::string> ls);
};

// One grid point: the job id (its rank in expansion order) and the chosen
// value per axis, in axis declaration order.
struct JobPoint {
  std::size_t job_id = 0;
  std::vector<std::pair<std::string, AxisValue>> coords;

  const AxisValue& at(const std::string& axis) const;  // throws on unknown axis
  double number(const std::string& axis) const { return at(axis).number; }
  const std::string& label(const std::string& axis) const { return at(axis).label; }
  std::string name() const;  // "scheme=DynaQ load=0.5 seed=1"
};

struct SweepSpec {
  std::vector<Axis> axes;
  // false: cartesian product, last axis fastest (row-major, matching the
  // nesting order of the serial loops the sweep replaces). true: all axes
  // must have equal length; job i takes value i of every axis.
  bool zipped = false;

  std::size_t num_jobs() const;
  std::vector<JobPoint> expand() const;  // throws on empty/ragged specs
};

}  // namespace dynaq::sweep
