// Worker-pool executor for SweepSpec grids. Each job runs the caller's
// JobFn at one grid point; the function must build everything the run
// needs (its own sim::Simulator, topology, flows) from the point alone, so
// jobs share no mutable state and results are bit-identical for any worker
// count. A throwing job (check::AuditError, any std::exception) is captured
// into its JobOutcome instead of killing the sweep; a wall-clock timeout
// and a retry-once policy are available per sweep.
//
// This is the only directory in src/ that may spawn threads
// (tools/check_conventions.sh enforces it): simulators are single-threaded
// by design, and parallelism lives entirely at the whole-job granularity.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "sweep/result_store.hpp"
#include "sweep/sweep_spec.hpp"

namespace dynaq::sweep {

// A job maps its grid point to named scalar metrics ("avg_overall_ms",
// "jain_min", ...) plus an optional TelemetrySummary (JobResult converts
// implicitly from a bare metrics map). Metric names must not depend on the
// worker count; the ordered map keeps JSON/CSV emission deterministic.
using JobFn = std::function<JobResult(const JobPoint&)>;

struct RunnerOptions {
  int jobs = 0;              // workers; <= 0 means hardware_concurrency
  double timeout_s = 0.0;    // per-attempt wall-clock budget; <= 0 disables
  bool retry_failed_once = false;  // one extra attempt after failure/timeout
};

class SweepRunner {
 public:
  explicit SweepRunner(RunnerOptions options = {}) : options_(options) {}

  // Runs every job in `spec` and returns the filled store. Never throws for
  // job failures — inspect ResultStore::failures(). A timed-out attempt
  // releases its worker immediately; the runaway thread is joined before
  // run() returns, so a truly wedged job delays only sweep shutdown, never
  // its siblings.
  ResultStore run(std::string sweep_name, const SweepSpec& spec, const JobFn& fn) const;

  int effective_jobs() const;  // options_.jobs resolved against the hardware

 private:
  RunnerOptions options_;
};

}  // namespace dynaq::sweep
