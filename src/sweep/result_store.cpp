#include "sweep/result_store.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>

#include "stats/percentile.hpp"
#include "sweep/json.hpp"

namespace dynaq::sweep {
namespace {

// Student t 97.5% quantiles for df 1..30; the normal quantile beyond. Few
// seed replicas are the common case, where the normal approximation would
// understate the interval badly.
double t975(std::size_t df) {
  static constexpr double kTable[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return 0.0;
  return df <= std::size(kTable) ? kTable[df - 1] : 1.960;
}

void write_axis_value(JsonWriter& json, const AxisValue& v) {
  if (v.numeric) {
    json.value(v.number);
  } else {
    json.value(v.label);
  }
}

void write_point(JsonWriter& json,
                 const std::vector<std::pair<std::string, AxisValue>>& coords) {
  json.begin_object();
  for (const auto& [axis, value] : coords) {
    json.key(axis);
    write_axis_value(json, value);
  }
  json.end_object();
}

void write_telemetry(JsonWriter& json, const telemetry::TelemetrySummary& t) {
  json.begin_object();
  json.key("drops");
  json.begin_object();
  for (std::size_t r = 0; r < telemetry::kNumDropReasons; ++r) {
    json.key(std::string(telemetry::drop_reason_name(static_cast<telemetry::DropReason>(r))));
    json.value(t.drops_by_reason[r]);
  }
  json.end_object();
  json.key("enqueues");
  json.value(t.enqueues);
  json.key("evictions");
  json.value(t.evictions);
  json.key("threshold_exchanges");
  json.value(t.threshold_exchanges);
  json.key("exchanged_bytes");
  json.value(t.exchanged_bytes);
  json.key("ecn_marks");
  json.value(t.ecn_marks);
  json.key("scenario_actions");
  json.value(t.scenario_actions);
  if (t.control.any()) {
    // Control-plane block (DESIGN.md §14), present only when a
    // ctrlplane::ControlPlanePolicy actually emitted events this run.
    json.key("control");
    json.begin_object();
    json.key("updates");
    json.value(t.control.updates);
    json.key("updates_lost");
    json.value(t.control.updates_lost);
    json.key("failovers");
    json.value(t.control.failovers);
    json.key("restores");
    json.value(t.control.restores);
    json.key("degraded_us");
    json.value(t.control.degraded_us);
    json.key("recovery_us");
    json.value(t.control.recovery_us);
    json.key("throughput_retention");
    json.value(t.control.throughput_retention);
    json.end_object();
  }
  json.key("queue_delay");
  json.begin_array();
  for (std::size_t q = 0; q < t.queue_delay.size(); ++q) {
    const telemetry::QueueDelaySummary& d = t.queue_delay[q];
    if (d.count == 0) continue;
    json.begin_object();
    json.key("queue");
    json.value(q);
    json.key("count");
    json.value(d.count);
    json.key("p50_us");
    json.value(d.p50_us);
    json.key("p99_us");
    json.value(d.p99_us);
    json.key("max_us");
    json.value(d.max_us);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

// Hashes are emitted as "0x" + 16 hex digits: a u64 does not survive a
// round-trip through JSON numbers (doubles), and the ci.sh differential
// gate greps for this exact canonical form.
std::string hash_hex(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(v));
  return buf;
}

void write_oracle(JsonWriter& json, const oracle::Report& r) {
  json.begin_object();
  json.key("port");
  json.value(r.port);
  json.key("offered_bytes");
  json.value(r.offered_bytes);
  json.key("policy_bytes");
  json.value(r.policy_bytes);
  json.key("optimal_bytes");
  json.value(r.optimal_bytes);
  json.key("ratio");
  json.value(r.ratio);
  json.key("arrivals");
  json.value(r.arrivals);
  json.key("policy_drops");
  json.value(r.policy_drops);
  json.key("policy_evictions");
  json.value(r.policy_evictions);
  json.key("opt_pushouts");
  json.value(r.opt_pushouts);
  json.key("trace_events");
  json.value(r.trace_events);
  json.key("trace_fingerprint");
  json.value(hash_hex(r.trace_fingerprint));
  json.key("queues");
  json.begin_array();
  for (const oracle::QueueRatio& q : r.queues) {
    json.begin_object();
    json.key("queue");
    json.value(q.queue);
    json.key("offered_bytes");
    json.value(q.offered_bytes);
    json.key("policy_bytes");
    json.value(q.policy_bytes);
    json.key("optimal_bytes");
    json.value(q.optimal_bytes);
    json.key("ratio");
    json.value(q.ratio);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

}  // namespace

MetricAggregate aggregate_samples(std::vector<double> samples) {
  MetricAggregate agg;
  agg.n = samples.size();
  if (samples.empty()) return agg;
  agg.mean = stats::mean(samples);
  agg.min = *std::min_element(samples.begin(), samples.end());
  agg.max = *std::max_element(samples.begin(), samples.end());
  static constexpr double kPs[] = {50.0, 99.0};
  const auto ps = stats::percentiles_inplace(samples, kPs);
  agg.p50 = ps[0];
  agg.p99 = ps[1];
  if (agg.n >= 2) {
    double ss = 0.0;
    for (const double x : samples) ss += (x - agg.mean) * (x - agg.mean);
    const double sd = std::sqrt(ss / static_cast<double>(agg.n - 1));
    agg.ci95_half = t975(agg.n - 1) * sd / std::sqrt(static_cast<double>(agg.n));
  }
  return agg;
}

std::size_t ResultStore::failures() const {
  std::size_t n = 0;
  for (const auto& o : outcomes_) n += o.ok ? 0 : 1;
  return n;
}

std::vector<AggregateRow> ResultStore::aggregate(const std::string& replica_axis) const {
  std::vector<AggregateRow> rows;
  std::map<std::string, std::size_t> row_by_key;      // group key -> rows index
  std::map<std::size_t, std::map<std::string, std::vector<double>>> samples;

  for (const auto& o : outcomes_) {
    std::string key;
    std::vector<std::pair<std::string, AxisValue>> coords;
    for (const auto& [axis, value] : o.point.coords) {
      if (axis == replica_axis) continue;
      key += axis + '=' + value.label + '\x1f';
      coords.emplace_back(axis, value);
    }
    auto [it, inserted] = row_by_key.emplace(key, rows.size());
    if (inserted) rows.push_back(AggregateRow{std::move(coords), 0, {}});
    AggregateRow& row = rows[it->second];
    if (!o.ok) continue;
    ++row.replicas;
    for (const auto& [metric, v] : o.metrics) samples[it->second][metric].push_back(v);
  }
  for (auto& [row_idx, by_metric] : samples) {
    for (auto& [metric, xs] : by_metric) {
      rows[row_idx].metrics[metric] = aggregate_samples(std::move(xs));
    }
  }
  return rows;
}

std::string ResultStore::to_json(const JsonOptions& options,
                                 const std::string& replica_axis) const {
  JsonWriter json;
  json.begin_object();
  // v6: telemetry gained the optional "control" block (control-plane
  // updates/failovers and recovery metrics, DESIGN.md §14); v5: jobs gained
  // the per-job "oracle" competitive-ratio block (DESIGN.md §12); v4:
  // telemetry gained "scenario_actions" (§11).
  json.key("schema_version");
  json.value(6);
  json.key("sweep");
  json.value(name_);
  json.key("mode");
  json.value(spec_.zipped ? "zipped" : "cartesian");

  json.key("axes");
  json.begin_array();
  for (const auto& axis : spec_.axes) {
    json.begin_object();
    json.key("name");
    json.value(axis.name);
    json.key("values");
    json.begin_array();
    for (const auto& v : axis.values) write_axis_value(json, v);
    json.end_array();
    json.end_object();
  }
  json.end_array();

  json.key("jobs");
  json.begin_array();
  for (const auto& o : outcomes_) {
    json.begin_object();
    json.key("id");
    json.value(o.point.job_id);
    json.key("point");
    write_point(json, o.point.coords);
    json.key("ok");
    json.value(o.ok);
    json.key("attempts");
    json.value(o.attempts);
    if (o.ok) {
      json.key("metrics");
      json.begin_object();
      for (const auto& [metric, v] : o.metrics) {
        json.key(metric);
        json.value(v);
      }
      json.end_object();
      if (o.telemetry) {
        json.key("telemetry");
        write_telemetry(json, *o.telemetry);
      }
      if (o.trajectory_hash) {
        json.key("trajectory_hash");
        json.value(hash_hex(*o.trajectory_hash));
      }
      if (o.oracle) {
        json.key("oracle");
        write_oracle(json, *o.oracle);
      }
    } else {
      json.key("timed_out");
      json.value(o.timed_out);
      json.key("error");
      json.value(o.error);
    }
    if (options.include_perf) {
      json.key("perf");
      json.begin_object();
      json.key("wall_ms");
      json.value(o.wall_ms);
      json.key("cpu_ms");
      json.value(o.cpu_ms);
      json.end_object();
    }
    json.end_object();
  }
  json.end_array();

  json.key("aggregates");
  json.begin_array();
  for (const auto& row : aggregate(replica_axis)) {
    json.begin_object();
    json.key("point");
    write_point(json, row.coords);
    json.key("replicas");
    json.value(row.replicas);
    json.key("metrics");
    json.begin_object();
    for (const auto& [metric, agg] : row.metrics) {
      json.key(metric);
      json.begin_object();
      json.key("n");
      json.value(agg.n);
      json.key("mean");
      json.value(agg.mean);
      json.key("p50");
      json.value(agg.p50);
      json.key("p99");
      json.value(agg.p99);
      json.key("min");
      json.value(agg.min);
      json.key("max");
      json.value(agg.max);
      json.key("ci95_half");
      json.value(agg.ci95_half);
      json.end_object();
    }
    json.end_object();
    json.end_object();
  }
  json.end_array();

  json.key("failures");
  json.value(failures());

  if (options.include_perf) {
    json.key("perf");
    json.begin_object();
    json.key("jobs");
    json.value(jobs_used_);
    json.key("total_wall_ms");
    json.value(total_wall_ms_);
    json.key("max_rss_kb");
    json.value(max_rss_kb_);
    json.end_object();
  }
  json.end_object();
  std::string out = json.take();
  out += '\n';
  return out;
}

bool ResultStore::write_json(const std::string& path, const JsonOptions& options,
                             const std::string& replica_axis) const {
  std::ofstream out(path);
  if (!out.good()) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  out << to_json(options, replica_axis);
  return out.good();
}

bool ResultStore::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out.good()) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  std::set<std::string> metric_names;
  for (const auto& o : outcomes_) {
    for (const auto& [metric, v] : o.metrics) metric_names.insert(metric);
  }
  out << "job_id";
  for (const auto& axis : spec_.axes) out << ',' << axis.name;
  for (const auto& metric : metric_names) out << ',' << metric;
  out << ",ok,error\n";
  for (const auto& o : outcomes_) {
    out << o.point.job_id;
    for (const auto& [axis, value] : o.point.coords) out << ',' << value.label;
    for (const auto& metric : metric_names) {
      out << ',';
      const auto it = o.metrics.find(metric);
      if (it != o.metrics.end()) out << JsonWriter::format_number(it->second);
    }
    std::string err = o.error;
    std::replace(err.begin(), err.end(), ',', ';');
    std::replace(err.begin(), err.end(), '\n', ' ');
    out << ',' << (o.ok ? 1 : 0) << ',' << err << '\n';
  }
  return out.good();
}

}  // namespace dynaq::sweep
