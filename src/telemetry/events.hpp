// Typed switch-level events carried by the telemetry bus (DESIGN.md §8).
//
// Events are small PODs: emitters fill one on the stack and hand it to
// telemetry::Hub::emit(), which stamps the simulation time, updates the
// monotonic counters, appends to the bounded ring and fans out to
// subscribers. Nothing here depends on net/ — the WireRecord mirrors the
// packet fields the tracer needs so the subsystem stays at the bottom of
// the dependency stack (only sim/ below it).
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/time.hpp"

namespace dynaq::telemetry {

// Why a packet was refused or removed. The first three come from the DynaQ
// admission path (Algorithm 1's drop points), kPortFull from the physical
// port-buffer bound, kNicFull from host NIC tail-drop queues, and kInjected
// from the fault-injection queues (net/fault_injection.hpp).
enum class DropReason : std::uint8_t {
  kThreshold = 0,          // q_p + size > T_p and no exchange possible (PQL/DT: quota)
  kVictimUnsatisfied = 1,  // victim active and T_v - size < S_v (Alg. 1 line 3)
  kVictimTooSmall = 2,     // victim threshold smaller than the packet (T_v < size)
  kPortFull = 3,           // policy admitted, physical bound rejected
  kNicFull = 4,            // host NIC tail-drop queue overflow
  kInjected = 5,           // fault-injection loss queue
};
inline constexpr std::size_t kNumDropReasons = 6;

constexpr std::string_view drop_reason_name(DropReason reason) {
  switch (reason) {
    case DropReason::kThreshold: return "threshold";
    case DropReason::kVictimUnsatisfied: return "victim_unsatisfied";
    case DropReason::kVictimTooSmall: return "victim_too_small";
    case DropReason::kPortFull: return "port_full";
    case DropReason::kNicFull: return "nic_full";
    case DropReason::kInjected: return "injected";
  }
  return "unknown";
}

enum class EventKind : std::uint8_t {
  kEnqueue = 0,
  kDrop = 1,
  kEvict = 2,              // buffered packet displaced to admit an arrival
  kThresholdExchange = 3,  // DynaQ moved `bytes` of threshold victim -> requester
  kEcnMark = 4,
  kScenarioAction = 5,     // scenario::ScenarioDirector applied a timeline action
  // Control-plane shim events (dynaq::ctrlplane, DESIGN.md §14). `bytes`
  // carries a microsecond latency payload where noted so the recovery
  // instrument never needs simulator access beyond the event stream.
  kControlUpdate = 6,      // threshold update committed at the data plane
  kControlUpdateLost = 7,  // update dropped by the control channel
  kControlFailover = 8,    // watchdog engaged DT failover (bytes: staleness µs)
  kControlRestore = 9,     // DynaQ restored after re-sync (bytes: recovery µs)
};
inline constexpr std::size_t kNumEventKinds = 10;

constexpr std::string_view event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kEnqueue: return "enqueue";
    case EventKind::kDrop: return "drop";
    case EventKind::kEvict: return "evict";
    case EventKind::kThresholdExchange: return "threshold_exchange";
    case EventKind::kEcnMark: return "ecn_mark";
    case EventKind::kScenarioAction: return "scenario_action";
    case EventKind::kControlUpdate: return "control_update";
    case EventKind::kControlUpdateLost: return "control_update_lost";
    case EventKind::kControlFailover: return "control_failover";
    case EventKind::kControlRestore: return "control_restore";
  }
  return "unknown";
}

struct Event {
  Time when = 0;  // stamped by Hub::emit()
  EventKind kind = EventKind::kEnqueue;
  DropReason reason = DropReason::kThreshold;  // meaningful for kDrop only
  std::int16_t port = -1;         // Hub port id (register_port)
  std::int16_t queue = -1;        // service queue; the requester for exchanges
  std::int16_t other_queue = -1;  // exchange victim / evicted packet's queue
  std::int32_t bytes = 0;         // packet size, or exchanged threshold bytes
  std::uint32_t flow = 0;
};

// One wire observation (serialization start or delivery) for packet
// tracing; a flat copy of the packet fields net::PacketTracer records.
struct WireRecord {
  Time when = 0;  // stamped by Hub::emit_wire()
  std::int16_t port = -1;
  bool transmit = false;  // true: serialization started; false: delivered
  bool is_ack = false;
  bool retx = false;
  bool ce = false;
  std::uint8_t queue = 0;
  std::int32_t size = 0;
  std::uint32_t flow = 0;
  std::uint64_t seq = 0;
};

}  // namespace dynaq::telemetry
