// Metrics registry: named counters, gauges and HDR-style log-bucketed
// histograms. The record path is allocation-free (fixed-size bucket
// arrays, pre-resolved references); registry lookups happen once at
// attach/registration time, never per packet.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

namespace dynaq::telemetry {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(std::int64_t v) { value_ = v; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

// Log-bucketed histogram over non-negative int64 values (queueing delays in
// picoseconds, byte counts). Values below 2^kSubBits land in exact
// single-value buckets; above that, each power-of-two octave is split into
// 2^kSubBits linear sub-buckets, bounding the relative quantile error at
// 1/2^kSubBits (12.5%). Fixed-size array storage: no allocation on record.
class LogHistogram {
 public:
  static constexpr int kSubBits = 3;       // 8 sub-buckets per octave
  static constexpr int kSub = 1 << kSubBits;
  static constexpr int kMaxBits = 48;      // covers ~2.8e14 (ps -> ~280 s)
  static constexpr int kNumBuckets = kSub + (kMaxBits - kSubBits) * kSub;

  static constexpr int index_of(std::int64_t v) {
    if (v < kSub) return v < 0 ? 0 : static_cast<int>(v);
    const int msb = 63 - std::countl_zero(static_cast<std::uint64_t>(v));
    if (msb >= kMaxBits) return kNumBuckets - 1;
    const int sub = static_cast<int>((v >> (msb - kSubBits)) & (kSub - 1));
    return kSub + (msb - kSubBits) * kSub + sub;
  }

  // Smallest value mapping to bucket `index`; index_of(lower_bound(i)) == i.
  static constexpr std::int64_t lower_bound(int index) {
    if (index < kSub) return index;
    const int octave = (index - kSub) / kSub;
    const int sub = (index - kSub) % kSub;
    return (std::int64_t{1} << (kSubBits + octave)) +
           (static_cast<std::int64_t>(sub) << octave);
  }

  void record(std::int64_t v) {
    ++count_;
    if (v > max_) max_ = v;
    ++buckets_[static_cast<std::size_t>(index_of(v))];
  }

  std::uint64_t count() const { return count_; }
  std::int64_t max() const { return max_; }
  std::uint64_t bucket(int index) const { return buckets_[static_cast<std::size_t>(index)]; }

  // Quantile estimate: the lower bound of the bucket holding the p-th
  // percentile sample (deterministic, biased low by at most 12.5%).
  std::int64_t percentile(double p) const {
    if (count_ == 0) return 0;
    auto rank = static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(count_) + 0.5);
    if (rank < 1) rank = 1;
    if (rank > count_) rank = count_;
    std::uint64_t cum = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      cum += buckets_[static_cast<std::size_t>(i)];
      if (cum >= rank) return lower_bound(i);
    }
    return max_;
  }

 private:
  std::uint64_t count_ = 0;
  std::int64_t max_ = 0;
  std::array<std::uint64_t, kNumBuckets> buckets_{};
};

// Named metric instruments. Accessors create on first use and return stable
// references (node-based map): resolve once, record through the reference.
// Iteration order is the map's lexicographic key order, keeping any export
// deterministic.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return get(counters_, name); }
  Gauge& gauge(const std::string& name) { return get(gauges_, name); }
  LogHistogram& histogram(const std::string& name) { return get(histograms_, name); }

  const std::map<std::string, std::unique_ptr<Counter>>& counters() const { return counters_; }
  const std::map<std::string, std::unique_ptr<Gauge>>& gauges() const { return gauges_; }
  const std::map<std::string, std::unique_ptr<LogHistogram>>& histograms() const {
    return histograms_;
  }

 private:
  template <typename T>
  static T& get(std::map<std::string, std::unique_ptr<T>>& m, const std::string& name) {
    auto& slot = m[name];
    if (!slot) slot = std::make_unique<T>();
    return *slot;
  }

  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LogHistogram>> histograms_;
};

}  // namespace dynaq::telemetry
