// The per-simulator telemetry hub (DESIGN.md §8): one Hub instance is
// created next to each sim::Simulator (no globals, per CLAUDE.md) and every
// instrumented component — switch qdiscs, host NIC queues, fault-injection
// wrappers, ports — attaches to it by name.
//
// Overhead model: components hold a `Hub*` that is null until attached, so
// an un-instrumented simulation pays one pointer test per potential
// emission site; attached-but-disabled pays one extra bool load
// (enabled()). bench/micro_telemetry asserts both stay under a per-op
// budget. Emission itself is counter increments plus a bounded-ring write —
// no allocation.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "telemetry/events.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/summary.hpp"

namespace dynaq::telemetry {

// One occupancy/threshold observation of every service queue at a port —
// the unit of the Fig. 1/4 time series (stats::QueueLengthSampler is now a
// thin adapter over this).
struct QueueSample {
  Time when = 0;
  std::vector<std::int64_t> queue_bytes;  // occupancy per service queue
  std::vector<std::int64_t> thresholds;   // drop threshold per queue (if any)
};

// Bounded occupancy time series with the paper's "skip then keep K
// sequential samples" cadence, plus an optional minimum time gap turning
// the event-driven cadence into a time-driven one.
class QueueSeries {
 public:
  explicit QueueSeries(std::size_t capacity = 0, std::size_t skip = 0, Time min_gap = 0)
      : capacity_(capacity), skip_(skip), min_gap_(min_gap) {}

  void record(Time when, std::vector<std::int64_t> queue_bytes,
              std::vector<std::int64_t> thresholds = {}) {
    if (seen_++ < skip_) return;
    if (samples_.size() >= capacity_) return;
    if (min_gap_ > 0 && !samples_.empty() && when - samples_.back().when < min_gap_) return;
    samples_.push_back(QueueSample{when, std::move(queue_bytes), std::move(thresholds)});
  }

  bool active() const { return samples_.size() < capacity_; }
  bool full() const { return samples_.size() >= capacity_; }
  const std::vector<QueueSample>& samples() const { return samples_; }

 private:
  std::size_t capacity_;
  std::size_t skip_;
  Time min_gap_;
  std::size_t seen_ = 0;
  std::vector<QueueSample> samples_;
};

struct HubConfig {
  bool enabled = true;
  std::size_t ring_capacity = 4096;  // newest events kept; older overwritten
  std::size_t max_delay_queues = 64;  // per-queue delay histograms allocated lazily
  // Fold every emitted event into an FNV-1a trajectory fingerprint
  // (DESIGN.md §10): one guarded branch inside emit(), allocation-free.
  // check::TrajectoryHash combines this with the engine's pop-stream digest
  // and the audit ledgers into the per-run oracle hash.
  bool fingerprint = false;
};

class Hub {
 public:
  explicit Hub(sim::Simulator& sim, HubConfig config = {});

  sim::Simulator& simulator() { return sim_; }
  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  // Event-bus half of the trajectory fingerprint (HubConfig::fingerprint):
  // the FNV-1a digest of every event emitted so far, in emission order.
  std::uint64_t trajectory_fingerprint() const { return fingerprint_; }
  bool fingerprinting() const { return fingerprint_events_; }

  // ---- observation points -------------------------------------------------
  // Registers an observation point; idempotent per name (the same name maps
  // to the same id), so several components may share one point.
  int register_port(const std::string& name);
  const std::string& port_name(int id) const { return port_names_.at(static_cast<std::size_t>(id)); }
  const std::vector<std::string>& port_names() const { return port_names_; }

  // ---- typed event bus ----------------------------------------------------
  // Emitters must gate on enabled() themselves (that is the whole fast
  // path); emit() stamps the simulation time, bumps the aggregate counters,
  // writes the ring and fans out to subscribers.
  void emit(Event e);
  void subscribe(std::function<void(const Event&)> fn) { subscribers_.push_back(std::move(fn)); }

  std::size_t ring_capacity() const { return ring_.size(); }
  std::size_t ring_size() const { return ring_count_; }
  std::uint64_t ring_overwritten() const { return ring_overwritten_; }
  std::vector<Event> ring_events() const;  // oldest -> newest

  // ---- wire taps (packet tracing) -----------------------------------------
  void add_wire_listener(std::function<void(const WireRecord&)> fn) {
    wire_listeners_.push_back(std::move(fn));
  }
  bool wants_wire() const { return enabled_ && !wire_listeners_.empty(); }
  void emit_wire(WireRecord w);

  // ---- per-queue queueing delay -------------------------------------------
  // Recorded by qdiscs at dequeue (sojourn time, picoseconds). Histograms
  // are allocated on the first record per queue index.
  void record_queue_delay(int queue, Time delay);
  // Highest queue index recorded so far + 1 (0 when none).
  std::size_t num_delay_queues() const { return delay_hist_.size(); }
  const LogHistogram& queue_delay_histogram(int queue) const {
    return delay_hist_.at(static_cast<std::size_t>(queue));
  }

  // ---- occupancy time series ----------------------------------------------
  void enable_queue_sampling(std::size_t capacity, std::size_t skip = 0, Time min_gap = 0) {
    series_ = QueueSeries(capacity, skip, min_gap);
  }
  bool sampling_active() const { return enabled_ && series_.active(); }
  void sample(Time when, std::span<const std::int64_t> occupancy,
              std::vector<std::int64_t> thresholds);
  const std::vector<QueueSample>& queue_samples() const { return series_.samples(); }

  // ---- metrics registry ---------------------------------------------------
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  // ---- export -------------------------------------------------------------
  TelemetrySummary summary() const;

 private:
  sim::Simulator& sim_;
  bool enabled_;
  bool fingerprint_events_;
  std::uint64_t fingerprint_;
  std::vector<std::string> port_names_;

  std::vector<Event> ring_;
  std::size_t ring_head_ = 0;   // next write slot
  std::size_t ring_count_ = 0;  // valid entries (<= ring_.size())
  std::uint64_t ring_overwritten_ = 0;
  std::vector<std::function<void(const Event&)>> subscribers_;
  std::vector<std::function<void(const WireRecord&)>> wire_listeners_;

  // Aggregate counters, monotonic regardless of ring overwrites.
  std::array<std::uint64_t, kNumDropReasons> drops_by_reason_{};
  std::uint64_t enqueues_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t threshold_exchanges_ = 0;
  std::int64_t exchanged_bytes_ = 0;
  std::uint64_t ecn_marks_ = 0;
  std::uint64_t scenario_actions_ = 0;
  std::uint64_t control_updates_ = 0;
  std::uint64_t control_updates_lost_ = 0;
  std::uint64_t control_failovers_ = 0;
  std::uint64_t control_restores_ = 0;

  std::size_t max_delay_queues_;
  std::vector<LogHistogram> delay_hist_;  // indexed by service queue
  QueueSeries series_;
  MetricsRegistry metrics_;
};

// JSONL export of an event sequence (one JSON object per line, ports
// resolved to their registered names). Used by the figure binaries to drop
// machine-readable event dumps next to their CSVs.
std::string events_to_jsonl(std::span<const Event> events,
                            std::span<const std::string> port_names);
bool write_events_jsonl(const std::string& path, std::span<const Event> events,
                        std::span<const std::string> port_names);

}  // namespace dynaq::telemetry
