// Compact per-run telemetry digest: the structure harness experiments
// return and sweep::ResultStore embeds per job (JSON schema_version 2,
// DESIGN.md §8). Everything is a pure function of the simulated events, so
// summaries are byte-identical across worker counts.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "telemetry/events.hpp"

namespace dynaq::telemetry {

// Queueing-delay distribution of one service queue (microseconds; derived
// from the per-queue picosecond LogHistogram).
struct QueueDelaySummary {
  std::uint64_t count = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

// Control-plane health digest (dynaq::ctrlplane, DESIGN.md §14). The event
// counts come straight from the hub's monotonic counters; the derived time
// and retention figures are filled by the ctrlplane::RecoveryInstrument
// subscriber (a pure function of the event stream, so still byte-identical
// across worker counts). All zeros / retention 1.0 when no shim is attached.
struct ControlSummary {
  std::uint64_t updates = 0;        // threshold updates committed
  std::uint64_t updates_lost = 0;   // updates dropped by the control channel
  std::uint64_t failovers = 0;      // watchdog DT-failover engagements
  std::uint64_t restores = 0;       // DynaQ restorations after re-sync
  double degraded_us = 0.0;         // total time spent failed over
  double recovery_us = 0.0;         // last restore's time-to-steady-state
  double throughput_retention = 1.0;  // degraded / normal enqueue rate at the port

  bool any() const { return updates + updates_lost + failovers + restores > 0; }
};

struct TelemetrySummary {
  std::array<std::uint64_t, kNumDropReasons> drops_by_reason{};
  std::uint64_t enqueues = 0;
  std::uint64_t evictions = 0;
  std::uint64_t threshold_exchanges = 0;
  std::int64_t exchanged_bytes = 0;
  std::uint64_t ecn_marks = 0;
  std::uint64_t scenario_actions = 0;  // mid-run timeline actions applied (DESIGN.md §11)
  ControlSummary control;              // control-plane shim health (DESIGN.md §14)
  std::vector<QueueDelaySummary> queue_delay;  // indexed by service queue

  std::uint64_t drops(DropReason reason) const {
    return drops_by_reason[static_cast<std::size_t>(reason)];
  }
  std::uint64_t total_drops() const {
    std::uint64_t sum = 0;
    for (const std::uint64_t n : drops_by_reason) sum += n;
    return sum;
  }
};

}  // namespace dynaq::telemetry
