#include "telemetry/hub.hpp"

#include <cstdio>
#include <fstream>

#include "sim/fingerprint.hpp"

namespace dynaq::telemetry {

Hub::Hub(sim::Simulator& sim, HubConfig config)
    : sim_(sim),
      enabled_(config.enabled),
      fingerprint_events_(config.fingerprint),
      fingerprint_(sim::kFnv1aOffset),
      ring_(config.ring_capacity),
      max_delay_queues_(config.max_delay_queues) {}

int Hub::register_port(const std::string& name) {
  for (std::size_t i = 0; i < port_names_.size(); ++i) {
    if (port_names_[i] == name) return static_cast<int>(i);
  }
  port_names_.push_back(name);
  return static_cast<int>(port_names_.size() - 1);
}

void Hub::emit(Event e) {
  e.when = sim_.now();
  if (fingerprint_events_) {
    // Pack the discriminating fields into two u64 folds: the stamp, then
    // (kind, reason, port, queue, other_queue) and (bytes, flow). Any
    // nondeterministic drop victim, exchange partner or flow choice lands
    // in the digest even when event timing happens to coincide.
    const std::uint64_t tagged =
        (static_cast<std::uint64_t>(static_cast<std::uint8_t>(e.kind)) << 56) |
        (static_cast<std::uint64_t>(static_cast<std::uint8_t>(e.reason)) << 48) |
        (static_cast<std::uint64_t>(static_cast<std::uint16_t>(e.port)) << 32) |
        (static_cast<std::uint64_t>(static_cast<std::uint16_t>(e.queue)) << 16) |
        static_cast<std::uint64_t>(static_cast<std::uint16_t>(e.other_queue));
    const std::uint64_t payload =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.bytes)) << 32) |
        static_cast<std::uint64_t>(e.flow);
    fingerprint_ = sim::fnv1a_u64(fingerprint_, static_cast<std::uint64_t>(e.when));
    fingerprint_ = sim::fnv1a_u64(sim::fnv1a_u64(fingerprint_, tagged), payload);
  }
  switch (e.kind) {
    case EventKind::kEnqueue:
      ++enqueues_;
      break;
    case EventKind::kDrop:
      ++drops_by_reason_[static_cast<std::size_t>(e.reason)];
      break;
    case EventKind::kEvict:
      ++evictions_;
      break;
    case EventKind::kThresholdExchange:
      ++threshold_exchanges_;
      exchanged_bytes_ += e.bytes;
      break;
    case EventKind::kEcnMark:
      ++ecn_marks_;
      break;
    case EventKind::kScenarioAction:
      ++scenario_actions_;
      break;
    case EventKind::kControlUpdate:
      ++control_updates_;
      break;
    case EventKind::kControlUpdateLost:
      ++control_updates_lost_;
      break;
    case EventKind::kControlFailover:
      ++control_failovers_;
      break;
    case EventKind::kControlRestore:
      ++control_restores_;
      break;
  }
  if (!ring_.empty()) {
    if (ring_count_ == ring_.size()) ++ring_overwritten_;
    ring_[ring_head_] = e;
    ring_head_ = (ring_head_ + 1) % ring_.size();
    if (ring_count_ < ring_.size()) ++ring_count_;
  }
  for (const auto& fn : subscribers_) fn(e);
}

std::vector<Event> Hub::ring_events() const {
  std::vector<Event> out;
  out.reserve(ring_count_);
  const std::size_t start = (ring_head_ + ring_.size() - ring_count_) % ring_.size();
  for (std::size_t i = 0; i < ring_count_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void Hub::emit_wire(WireRecord w) {
  w.when = sim_.now();
  for (const auto& fn : wire_listeners_) fn(w);
}

void Hub::record_queue_delay(int queue, Time delay) {
  const auto q = static_cast<std::size_t>(queue);
  if (queue < 0 || q >= max_delay_queues_) return;
  if (q >= delay_hist_.size()) delay_hist_.resize(q + 1);
  delay_hist_[q].record(delay);
}

void Hub::sample(Time when, std::span<const std::int64_t> occupancy,
                 std::vector<std::int64_t> thresholds) {
  series_.record(when, {occupancy.begin(), occupancy.end()}, std::move(thresholds));
}

TelemetrySummary Hub::summary() const {
  TelemetrySummary s;
  s.drops_by_reason = drops_by_reason_;
  s.enqueues = enqueues_;
  s.evictions = evictions_;
  s.threshold_exchanges = threshold_exchanges_;
  s.exchanged_bytes = exchanged_bytes_;
  s.ecn_marks = ecn_marks_;
  s.scenario_actions = scenario_actions_;
  s.control.updates = control_updates_;
  s.control.updates_lost = control_updates_lost_;
  s.control.failovers = control_failovers_;
  s.control.restores = control_restores_;
  s.queue_delay.reserve(delay_hist_.size());
  for (const LogHistogram& h : delay_hist_) {
    QueueDelaySummary q;
    q.count = h.count();
    // Sojourn times are recorded in picoseconds; report microseconds.
    q.p50_us = static_cast<double>(h.percentile(50)) / 1e6;
    q.p99_us = static_cast<double>(h.percentile(99)) / 1e6;
    q.max_us = static_cast<double>(h.max()) / 1e6;
    s.queue_delay.push_back(q);
  }
  return s;
}

std::string events_to_jsonl(std::span<const Event> events,
                            std::span<const std::string> port_names) {
  std::string out;
  char buf[256];
  for (const Event& e : events) {
    const char* port = (e.port >= 0 && static_cast<std::size_t>(e.port) < port_names.size())
                           ? port_names[static_cast<std::size_t>(e.port)].c_str()
                           : "?";
    int n = std::snprintf(buf, sizeof buf,
                          "{\"t_ps\":%lld,\"kind\":\"%s\",\"port\":\"%s\",\"queue\":%d",
                          static_cast<long long>(e.when),
                          std::string(event_kind_name(e.kind)).c_str(), port,
                          static_cast<int>(e.queue));
    out.append(buf, static_cast<std::size_t>(n));
    if (e.kind == EventKind::kDrop) {
      n = std::snprintf(buf, sizeof buf, ",\"reason\":\"%s\"",
                        std::string(drop_reason_name(e.reason)).c_str());
      out.append(buf, static_cast<std::size_t>(n));
    }
    if (e.other_queue >= 0) {
      n = std::snprintf(buf, sizeof buf, ",\"victim\":%d", static_cast<int>(e.other_queue));
      out.append(buf, static_cast<std::size_t>(n));
    }
    n = std::snprintf(buf, sizeof buf, ",\"bytes\":%d,\"flow\":%u}\n",
                      static_cast<int>(e.bytes), e.flow);
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

bool write_events_jsonl(const std::string& path, std::span<const Event> events,
                        std::span<const std::string> port_names) {
  std::ofstream out(path);
  if (!out.good()) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  out << events_to_jsonl(events, port_names);
  return out.good();
}

}  // namespace dynaq::telemetry
