// DCTCP (Alizadeh et al., SIGCOMM'10): ECN-fraction-proportional window
// reduction over NewReno growth. Used by the ECN-based scheme comparison
// (Fig. 9); the receiver side echoes CE per packet, which with per-packet
// ACKs gives the exact marked-byte fraction.
#pragma once

#include "transport/newreno.hpp"

namespace dynaq::transport {

class DctcpCc final : public NewRenoCc {
 public:
  void init(std::int32_t mss, double initial_cwnd_packets) override;
  void on_ack(const AckInfo& info) override;

  double alpha() const { return alpha_; }
  bool wants_ecn() const override { return true; }
  std::string_view name() const override { return "dctcp"; }

 private:
  static constexpr double kG = 1.0 / 16.0;  // EWMA gain from the paper

  double alpha_ = 1.0;  // start conservative, per the DCTCP paper
  std::int64_t window_bytes_ = 0;
  std::int64_t window_marked_ = 0;
  std::uint64_t window_end_ = 0;   // snd_una that closes the current observation window
  std::uint64_t cwr_end_ = 0;      // reductions suppressed until snd_una passes this
};

}  // namespace dynaq::transport
