// Classic TCP ECN (RFC 3168) over NewReno: an ECE-marked ACK is treated
// like a loss event — one half-window reduction per RTT — without any
// retransmission. This is the "generic transport with ECN enabled" the
// paper's protocol-independence argument must also serve: unlike DCTCP it
// reacts to the *presence* of marks, not their fraction.
#pragma once

#include "transport/newreno.hpp"

namespace dynaq::transport {

class NewRenoEcnCc final : public NewRenoCc {
 public:
  void init(std::int32_t mss, double initial_cwnd_packets) override {
    NewRenoCc::init(mss, initial_cwnd_packets);
    cwr_end_ = 0;
  }

  void on_ack(const AckInfo& info) override {
    if (info.ece && info.snd_una >= cwr_end_) {
      // RFC 3168 §6.1.2: halve once, then ignore further marks until the
      // current window drains (CWR state).
      on_loss_event(info);
      cwr_end_ = info.snd_nxt;
      return;
    }
    NewRenoCc::on_ack(info);
  }

  bool wants_ecn() const override { return true; }
  std::string_view name() const override { return "newreno-ecn"; }

 private:
  std::uint64_t cwr_end_ = 0;
};

}  // namespace dynaq::transport
