#include "transport/congestion_control.hpp"

#include <stdexcept>

#include "transport/cubic.hpp"
#include "transport/dctcp.hpp"
#include "transport/newreno.hpp"
#include "transport/newreno_ecn.hpp"
#include "transport/vegas.hpp"

namespace dynaq::transport {

std::string_view cc_name(CcKind kind) {
  switch (kind) {
    case CcKind::kNewReno: return "newreno";
    case CcKind::kNewRenoEcn: return "newreno-ecn";
    case CcKind::kCubic: return "cubic";
    case CcKind::kDctcp: return "dctcp";
    case CcKind::kVegas: return "vegas";
  }
  return "?";
}

std::unique_ptr<CongestionControl> make_congestion_control(CcKind kind) {
  switch (kind) {
    case CcKind::kNewReno: return std::make_unique<NewRenoCc>();
    case CcKind::kNewRenoEcn: return std::make_unique<NewRenoEcnCc>();
    case CcKind::kCubic: return std::make_unique<CubicCc>();
    case CcKind::kDctcp: return std::make_unique<DctcpCc>();
    case CcKind::kVegas: return std::make_unique<VegasCc>();
  }
  throw std::logic_error("unknown congestion control kind");
}

}  // namespace dynaq::transport
