#include "transport/flow_sender.hpp"

#include <algorithm>
#include <limits>

namespace dynaq::transport {
namespace {

constexpr Time kRtoMax = seconds(std::int64_t{60});
constexpr int kMaxBackoff = 64;

}  // namespace

FlowSender::FlowSender(sim::Simulator& sim, net::Host& host, FlowParams params)
    : sim_(sim), host_(host), params_(params), cc_(make_congestion_control(params.cc)) {
  cc_->init(params_.mss, params_.initial_cwnd_packets);
  if (params_.initial_srtt > 0) {
    srtt_ = params_.initial_srtt;
    rttvar_ = params_.initial_srtt / 2;
  }
}

void FlowSender::start() {
  const Time delay = std::max<Time>(0, params_.start - sim_.now());
  sim_.schedule_in(delay, [this] {
    started_ = true;
    send_available();
  });
}

std::int64_t FlowSender::flow_limit() const {
  return params_.unbounded() ? std::numeric_limits<std::int64_t>::max() / 2
                             : params_.size_bytes;
}

void FlowSender::resume() {
  if (!paused_) return;
  paused_ = false;
  // A sender that went fully idle while paused (everything acked, timer
  // cancelled) restarts its ACK clock here; transmit_segment re-arms the RTO.
  if (started_ && !complete_) send_available();
}

bool FlowSender::may_send_new_data() const {
  if (!started_ || complete_ || paused_) return false;
  if (static_cast<std::int64_t>(snd_nxt_) >= flow_limit()) return false;
  if (params_.unbounded() && params_.stop > 0 && sim_.now() >= params_.stop) return false;
  return true;
}

// ------------------------------------------------------ SACK scoreboard --

void FlowSender::merge_sack_blocks(const net::Packet& ack) {
  for (int i = 0; i < ack.num_sack; ++i) {
    std::uint64_t start = ack.sack[i].start;
    std::uint64_t end = ack.sack[i].end;
    if (end <= snd_una_ || end <= start) continue;
    start = std::max(start, snd_una_);
    auto it = sacked_.lower_bound(start);
    if (it != sacked_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= start) {
        start = prev->first;
        end = std::max(end, prev->second);
        it = sacked_.erase(prev);
      }
    }
    while (it != sacked_.end() && it->first <= end) {
      end = std::max(end, it->second);
      it = sacked_.erase(it);
    }
    sacked_[start] = end;
  }
  // Prune everything at or below the cumulative point.
  while (!sacked_.empty() && sacked_.begin()->second <= snd_una_) sacked_.erase(sacked_.begin());
  if (!sacked_.empty() && sacked_.begin()->first < snd_una_) {
    auto node = sacked_.extract(sacked_.begin());
    if (node.mapped() > snd_una_) sacked_[snd_una_] = node.mapped();
  }
}

std::int64_t FlowSender::sacked_bytes() const {
  std::int64_t total = 0;
  for (const auto& [start, end] : sacked_) total += static_cast<std::int64_t>(end - start);
  return total;
}

std::uint64_t FlowSender::highest_sacked() const {
  return sacked_.empty() ? snd_una_ : sacked_.rbegin()->second;
}

std::int64_t FlowSender::unsacked_in(std::uint64_t lo, std::uint64_t hi) const {
  if (hi <= lo) return 0;
  std::int64_t covered = 0;
  for (const auto& [start, end] : sacked_) {
    const std::uint64_t s = std::max(start, lo);
    const std::uint64_t e = std::min(end, hi);
    if (e > s) covered += static_cast<std::int64_t>(e - s);
  }
  return static_cast<std::int64_t>(hi - lo) - covered;
}

std::optional<std::uint64_t> FlowSender::next_hole(std::uint64_t from) const {
  const std::uint64_t limit = highest_sacked();
  std::uint64_t pos = std::max(from, snd_una_);
  for (const auto& [start, end] : sacked_) {
    if (end <= pos) continue;
    if (start > pos) break;  // pos is in a gap before this block
    pos = end;               // pos was inside a sacked block; skip past it
  }
  if (pos >= limit) return std::nullopt;
  return pos;
}

std::int64_t FlowSender::pipe_bytes() const {
  // In flight = everything sent and unacknowledged, minus SACKed bytes,
  // minus holes below the highest SACK that we have not (re)sent in this
  // recovery (those are presumed lost).
  const auto outstanding = static_cast<std::int64_t>(snd_nxt_ - snd_una_);
  const std::uint64_t hs = highest_sacked();
  const std::int64_t sacked = sacked_bytes();
  const std::int64_t lost_or_resent = unsacked_in(snd_una_, hs);
  const std::int64_t resent = unsacked_in(snd_una_, std::min(rtx_next_, hs));
  return outstanding - sacked - (lost_or_resent - resent);
}

void FlowSender::sack_recovery_send() {
  double cwnd = cc_->cwnd_bytes();
  if (params_.max_window_bytes > 0) {
    cwnd = std::min(cwnd, static_cast<double>(params_.max_window_bytes));
  }
  while (true) {
    const std::int64_t pipe = pipe_bytes();
    if (pipe > 0 && static_cast<double>(pipe) + params_.mss > cwnd) break;
    // Priority 1: fill the oldest un-retransmitted hole below the highest
    // SACK (RFC 6675 NextSeg rule 1).
    if (const auto hole = next_hole(std::max(rtx_next_, snd_una_)); hole.has_value()) {
      ++stats_.partial_ack_retx;
      transmit_segment(*hole, /*retransmission=*/true);
      const std::int64_t remaining = flow_limit() - static_cast<std::int64_t>(*hole);
      rtx_next_ = *hole + static_cast<std::uint64_t>(
                              std::min<std::int64_t>(params_.mss, remaining));
      continue;
    }
    // Priority 2: new data keeps the ACK clock running.
    if (may_send_new_data()) {
      transmit_segment(snd_nxt_, /*retransmission=*/false);
      continue;
    }
    break;
  }
}

// ----------------------------------------------------------- transmit --

void FlowSender::send_available() {
  if (in_recovery_ && params_.sack) {
    sack_recovery_send();
    return;
  }
  // During (non-SACK) fast recovery the window is inflated by one MSS per
  // dupACK (classic NewReno), which keeps the pipe full while the hole is
  // plugged. The socket buffer caps the effective window either way.
  double window =
      cc_->cwnd_bytes() +
      (in_recovery_ ? static_cast<double>(dup_acks_) * params_.mss : 0.0);
  if (params_.max_window_bytes > 0) {
    window = std::min(window, static_cast<double>(params_.max_window_bytes));
  }
  while (may_send_new_data()) {
    const auto inflight = static_cast<double>(snd_nxt_ - snd_una_);
    // Always allow at least one outstanding segment so sub-MSS windows
    // (post-RTO) still make progress.
    if (inflight > 0 && inflight + params_.mss > window) break;
    transmit_segment(snd_nxt_, /*retransmission=*/false);
  }
}

void FlowSender::transmit_segment(std::uint64_t seq, bool retransmission) {
  const std::int64_t remaining = flow_limit() - static_cast<std::int64_t>(seq);
  const std::int32_t payload =
      static_cast<std::int32_t>(std::min<std::int64_t>(params_.mss, remaining));
  net::Packet p = net::make_data_packet(params_.id, static_cast<std::uint32_t>(params_.src_host),
                                        static_cast<std::uint32_t>(params_.dst_host), seq,
                                        payload);
  p.queue = static_cast<std::uint8_t>(queue_for_segment(params_, seq));
  if (cc_->wants_ecn()) p.set(net::kFlagEct);
  if (!params_.unbounded() &&
      static_cast<std::int64_t>(seq) + payload >= params_.size_bytes) {
    p.set(net::kFlagFin);
  }
  const std::uint64_t end = seq + static_cast<std::uint64_t>(payload);
  // Anything at or below the high-water mark has been sent before (either
  // an explicit retransmission or go-back-N resending after an RTO).
  const bool is_retx = retransmission || end <= highest_sent_;
  if (seq == snd_nxt_) snd_nxt_ = end;
  highest_sent_ = std::max(highest_sent_, end);
  if (is_retx) {
    p.set(net::kFlagRetx);
    ++stats_.retransmissions;
    if (!retransmission) ++stats_.goback_retx;
    // Karn's rule: a retransmission invalidates any in-flight RTT probe.
    probe_armed_ = false;
  } else if (!probe_armed_) {
    probe_armed_ = true;
    probe_end_seq_ = end;
    probe_sent_at_ = sim_.now();
  }
  ++stats_.data_packets;
  stats_.bytes_sent += p.size;
  host_.send(std::move(p));
  if (!timer_active_) arm_timer(sim_.now() + current_rto());
}

// ----------------------------------------------------------- RTT / RTO --

Time FlowSender::current_rto() const {
  Time rto;
  if (srtt_ == 0) {
    rto = seconds(std::int64_t{1});  // RFC 6298 initial RTO, before any sample
  } else {
    rto = srtt_ + std::max<Time>(4 * rttvar_, kNanosecond);
  }
  rto = std::clamp(rto, params_.rto_min, kRtoMax);
  return std::min<Time>(rto * rto_backoff_, kRtoMax);
}

void FlowSender::take_rtt_sample(Time sample) {
  if (srtt_ == 0) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    const Time err = srtt_ > sample ? srtt_ - sample : sample - srtt_;
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * srtt_ + sample) / 8;
  }
}

// ------------------------------------------------------- ACK processing --

void FlowSender::on_ack(const net::Packet& ack) {
  if (complete_) return;
  const std::uint64_t ack_seq = ack.seq;

  AckInfo info;
  info.now = sim_.now();
  info.ece = ack.has(net::kFlagEce);
  info.snd_nxt = snd_nxt_;

  if (ack_seq > snd_una_) {
    info.bytes_acked = static_cast<std::int64_t>(ack_seq - snd_una_);
    snd_una_ = ack_seq;
    // After a go-back-N rewind the receiver's out-of-order buffer can push
    // the cumulative point past the resend position.
    if (snd_nxt_ < snd_una_) snd_nxt_ = snd_una_;
    if (rtx_next_ < snd_una_) rtx_next_ = snd_una_;
    if (params_.sack) merge_sack_blocks(ack);
    rto_backoff_ = 1;

    if (probe_armed_ && snd_una_ >= probe_end_seq_) {
      probe_armed_ = false;
      info.rtt_sample = sim_.now() - probe_sent_at_;
      take_rtt_sample(info.rtt_sample);
    }
    info.srtt = srtt_;

    if (in_recovery_) {
      if (snd_una_ >= recover_point_) {
        in_recovery_ = false;
        dup_acks_ = 0;
        cc_->on_ack(info);
      } else if (params_.sack) {
        sack_recovery_send();
      } else {
        // Partial ACK: the next hole starts at the new snd_una.
        ++stats_.partial_ack_retx;
        transmit_segment(snd_una_, /*retransmission=*/true);
      }
    } else {
      dup_acks_ = 0;
      cc_->on_ack(info);
    }

    if (!params_.unbounded() && static_cast<std::int64_t>(snd_una_) >= params_.size_bytes) {
      complete_ = true;
      cancel_timer();
      if (on_complete) on_complete(*this);
      return;
    }
    arm_timer(sim_.now() + current_rto());
    send_available();
    return;
  }

  if (ack_seq == snd_una_ && snd_nxt_ > snd_una_) {
    ++dup_acks_;
    if (params_.sack) merge_sack_blocks(ack);
    info.snd_una = snd_una_;
    info.srtt = srtt_;
    // Loss detection: three dupACKs, or (with SACK) more than 3 MSS of
    // scoreboard holes even when dupACKs were lost (RFC 6675).
    const bool sack_trigger =
        params_.sack && sacked_bytes() > 3 * static_cast<std::int64_t>(params_.mss);
    const bool fresh_window = !has_recover_point_ || snd_una_ > recover_point_;
    if (!in_recovery_ && (dup_acks_ >= 3 || sack_trigger) && fresh_window) {
      enter_recovery(info);
    } else {
      send_available();  // window inflation / pipe update may open slots
    }
  }
}

void FlowSender::enter_recovery(const AckInfo& info) {
  in_recovery_ = true;
  recover_point_ = snd_nxt_;
  has_recover_point_ = true;
  rtx_next_ = snd_una_;
  ++stats_.fast_retransmits;
  cc_->on_loss_event(info);
  if (params_.sack) {
    sack_recovery_send();
  } else {
    transmit_segment(snd_una_, /*retransmission=*/true);
  }
  arm_timer(sim_.now() + current_rto());
}

void FlowSender::handle_timeout() {
  if (complete_) return;
  if (snd_una_ >= snd_nxt_ && !may_send_new_data()) {
    // Nothing outstanding (e.g. a stopped unbounded flow); go idle.
    cancel_timer();
    return;
  }
  ++stats_.timeouts;
  cc_->on_timeout();
  in_recovery_ = false;
  dup_acks_ = 0;
  rto_backoff_ = std::min(rto_backoff_ * 2, kMaxBackoff);
  // Go-back-N: rewind to the cumulative point and slow-start forward again
  // (ns-2 / pre-SACK TCP behaviour). The receiver's out-of-order buffer
  // turns the resent prefix into fast cumulative jumps. The resends will
  // echo duplicate ACKs; moving the recover guard to the high-water mark
  // keeps them from triggering a spurious fast retransmit (RFC 6582 §5).
  recover_point_ = highest_sent_;
  has_recover_point_ = true;
  sacked_.clear();  // RFC 6675 permits discarding the scoreboard on RTO
  rtx_next_ = snd_una_;
  snd_nxt_ = snd_una_;
  send_available();
  arm_timer(sim_.now() + current_rto());
}

// ---------------------------------------------------------- lazy timer --

void FlowSender::arm_timer(Time deadline) {
  timer_active_ = true;
  timer_deadline_ = deadline;
  if (timer_event_ != sim::kNoEvent) {
    if (timer_event_time_ <= deadline) {
      // The pending event fires first; it will re-arm for the new deadline.
      return;
    }
    // The deadline moved earlier: the pending event is now too late.
    sim_.cancel(timer_event_);
  }
  timer_event_time_ = deadline;
  timer_event_ = sim_.schedule_at(deadline, [this] { timer_fired(); });
}

void FlowSender::cancel_timer() {
  timer_active_ = false;
  if (timer_event_ != sim::kNoEvent) {
    sim_.cancel(timer_event_);
    timer_event_ = sim::kNoEvent;
  }
}

void FlowSender::timer_fired() {
  timer_event_ = sim::kNoEvent;
  if (sim_.now() < timer_deadline_) {
    arm_timer(timer_deadline_);  // deadline was pushed out; sleep again
    return;
  }
  handle_timeout();
}

}  // namespace dynaq::transport
