// CUBIC congestion control (Ha, Rhee & Xu), the Linux default and the
// second "generic transport" of the paper's protocol-independence
// experiment (Fig. 7). Cubic window growth W(t) = C(t-K)^3 + Wmax with
// β = 0.7, plus the TCP-friendly region.
#pragma once

#include "transport/congestion_control.hpp"

namespace dynaq::transport {

class CubicCc final : public CongestionControl {
 public:
  void init(std::int32_t mss, double initial_cwnd_packets) override;
  void on_ack(const AckInfo& info) override;
  void on_loss_event(const AckInfo& info) override;
  void on_timeout() override;

  double cwnd_bytes() const override { return cwnd_; }
  double ssthresh_bytes() const override { return ssthresh_; }
  std::string_view name() const override { return "cubic"; }

 private:
  void reset_epoch();

  static constexpr double kC = 0.4;     // cubic scaling constant (MSS/s^3)
  static constexpr double kBeta = 0.7;  // multiplicative decrease factor

  std::int32_t mss_ = 1460;
  double cwnd_ = 0.0;      // bytes
  double ssthresh_ = 0.0;  // bytes
  double w_max_ = 0.0;     // bytes, window before last reduction
  double k_ = 0.0;         // seconds to regain w_max_
  Time epoch_start_ = -1;  // -1: no epoch in progress
};

}  // namespace dynaq::transport
