#include "transport/cubic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dynaq::transport {

void CubicCc::init(std::int32_t mss, double initial_cwnd_packets) {
  mss_ = mss;
  cwnd_ = initial_cwnd_packets * static_cast<double>(mss);
  ssthresh_ = std::numeric_limits<double>::max() / 4;
  w_max_ = 0.0;
  epoch_start_ = -1;
}

void CubicCc::reset_epoch() { epoch_start_ = -1; }

void CubicCc::on_ack(const AckInfo& info) {
  if (cwnd_ < ssthresh_) {  // slow start
    cwnd_ += static_cast<double>(info.bytes_acked);
    if (cwnd_ > ssthresh_) cwnd_ = ssthresh_;
    return;
  }
  if (epoch_start_ < 0) {
    epoch_start_ = info.now;
    if (w_max_ < cwnd_) {
      // Fresh epoch above the last Wmax: start the cubic curve here.
      w_max_ = cwnd_;
      k_ = 0.0;
    } else {
      k_ = std::cbrt(w_max_ / static_cast<double>(mss_) * (1.0 - kBeta) / kC);
    }
  }
  const double t = to_seconds(info.now - epoch_start_);
  const double dt = t - k_;
  const double target_mss = kC * dt * dt * dt + w_max_ / static_cast<double>(mss_);
  double target = target_mss * static_cast<double>(mss_);

  // TCP-friendly region: never grow slower than an AIMD flow with the same
  // loss rate would (Ha et al. §4.2, simplified with srtt).
  if (info.srtt > 0) {
    const double rtts = t / to_seconds(info.srtt);
    const double w_est_mss = w_max_ / static_cast<double>(mss_) * kBeta +
                             3.0 * (1.0 - kBeta) / (1.0 + kBeta) * rtts;
    target = std::max(target, w_est_mss * static_cast<double>(mss_));
  }

  if (target > cwnd_) {
    // Approach the target over one RTT: (target - cwnd)/cwnd per acked MSS.
    cwnd_ += (target - cwnd_) / cwnd_ * static_cast<double>(info.bytes_acked);
  } else {
    // Minimal growth in the concave plateau.
    cwnd_ += static_cast<double>(mss_) * static_cast<double>(info.bytes_acked) / (100.0 * cwnd_);
  }
}

void CubicCc::on_loss_event(const AckInfo& info) {
  (void)info;
  w_max_ = cwnd_;
  cwnd_ = std::max(cwnd_ * kBeta, 2.0 * mss_);
  ssthresh_ = cwnd_;
  reset_epoch();
}

void CubicCc::on_timeout() {
  w_max_ = cwnd_;
  ssthresh_ = std::max(cwnd_ * kBeta, 2.0 * mss_);
  cwnd_ = static_cast<double>(mss_);
  reset_epoch();
}

}  // namespace dynaq::transport
