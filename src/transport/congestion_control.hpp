// Congestion-control strategy interface.
//
// The sender owns reliability (cumulative ACKs, dupACK fast retransmit,
// RTO); the strategy owns the window. DynaQ is protocol-independent, so the
// evaluation mixes NewReno ("TCP"), CUBIC and DCTCP senders freely.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "sim/time.hpp"

namespace dynaq::transport {

enum class CcKind { kNewReno, kNewRenoEcn, kCubic, kDctcp, kVegas };

std::string_view cc_name(CcKind kind);

// Per-ACK context handed to the strategy.
struct AckInfo {
  std::int64_t bytes_acked = 0;  // newly acknowledged bytes
  bool ece = false;              // ECN echo on this ACK
  Time now = 0;
  Time rtt_sample = 0;           // 0 when no valid sample (Karn)
  Time srtt = 0;                 // sender's smoothed RTT (0 until first sample)
  std::uint64_t snd_una = 0;     // after applying this ACK
  std::uint64_t snd_nxt = 0;
};

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  // Called once before the flow starts.
  virtual void init(std::int32_t mss, double initial_cwnd_packets) = 0;

  // New data acknowledged outside fast recovery.
  virtual void on_ack(const AckInfo& info) = 0;

  // Entering fast recovery (triple dupACK). Called once per loss event.
  virtual void on_loss_event(const AckInfo& info) = 0;

  // Retransmission timeout.
  virtual void on_timeout() = 0;

  virtual double cwnd_bytes() const = 0;
  virtual double ssthresh_bytes() const = 0;

  // True when the sender should set ECT on data packets.
  virtual bool wants_ecn() const { return false; }

  virtual std::string_view name() const = 0;
};

std::unique_ptr<CongestionControl> make_congestion_control(CcKind kind);

}  // namespace dynaq::transport
