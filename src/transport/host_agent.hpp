// Per-host transport endpoint: demultiplexes arriving packets to flow
// senders (ACKs) and receivers (data) by flow id.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "net/node.hpp"
#include "transport/flow_receiver.hpp"
#include "transport/flow_sender.hpp"

namespace dynaq::transport {

class HostAgent {
 public:
  explicit HostAgent(net::Host& host) : host_(host) {
    host_.set_packet_handler([this](net::Packet&& p) { on_packet(std::move(p)); });
  }

  // Creates the sending side of a flow on this host. Call start() yourself
  // or use FlowManager, which wires both ends.
  FlowSender& add_sender(const FlowParams& params) {
    auto sender = std::make_unique<FlowSender>(host_.simulator(), host_, params);
    FlowSender& ref = *sender;
    senders_.emplace(params.id, std::move(sender));
    return ref;
  }

  FlowReceiver& add_receiver(const FlowParams& params) {
    auto receiver = std::make_unique<FlowReceiver>(host_.simulator(), host_, params);
    FlowReceiver& ref = *receiver;
    receivers_.emplace(params.id, std::move(receiver));
    return ref;
  }

  net::Host& host() { return host_; }
  std::size_t num_senders() const { return senders_.size(); }
  std::size_t num_receivers() const { return receivers_.size(); }
  std::uint64_t stray_packets() const { return stray_; }

 private:
  void on_packet(net::Packet&& p) {
    if (p.is_ack()) {
      if (auto it = senders_.find(p.flow); it != senders_.end()) {
        it->second->on_ack(p);
        return;
      }
    } else {
      if (auto it = receivers_.find(p.flow); it != receivers_.end()) {
        it->second->on_data(p);
        return;
      }
    }
    ++stray_;  // packet for an unknown flow (e.g. after teardown)
  }

  net::Host& host_;
  // Audited for DESIGN.md §10: both maps are flow-id lookup tables consulted
  // only via find() on packet arrival — never iterated — so their hash order
  // cannot leak into the trajectory.
  // detlint: allow(unordered-container): lookup-only by flow id, never iterated
  std::unordered_map<std::uint32_t, std::unique_ptr<FlowSender>> senders_;
  // detlint: allow(unordered-container): lookup-only by flow id, never iterated
  std::unordered_map<std::uint32_t, std::unique_ptr<FlowReceiver>> receivers_;
  std::uint64_t stray_ = 0;
};

}  // namespace dynaq::transport
