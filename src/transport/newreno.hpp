// TCP NewReno congestion control: slow start, AIMD congestion avoidance,
// half-window reduction on fast retransmit, one-MSS restart on RTO. This is
// the "TCP" of the paper's testbed (Linux 3.18 with ECN disabled behaves as
// NewReno-style loss-based AIMD for these workloads).
#pragma once

#include "transport/congestion_control.hpp"

namespace dynaq::transport {

class NewRenoCc : public CongestionControl {
 public:
  void init(std::int32_t mss, double initial_cwnd_packets) override;
  void on_ack(const AckInfo& info) override;
  void on_loss_event(const AckInfo& info) override;
  void on_timeout() override;

  double cwnd_bytes() const override { return cwnd_; }
  double ssthresh_bytes() const override { return ssthresh_; }
  std::string_view name() const override { return "newreno"; }

  bool in_slow_start() const { return cwnd_ < ssthresh_; }

 protected:
  std::int32_t mss_ = 1460;
  double cwnd_ = 0.0;
  double ssthresh_ = 0.0;
};

}  // namespace dynaq::transport
