// Flow description shared by senders, receivers and experiment harnesses.
#pragma once

#include <cstdint>

#include "net/packet.hpp"
#include "sim/time.hpp"
#include "transport/congestion_control.hpp"

namespace dynaq::transport {

struct FlowParams {
  std::uint32_t id = 0;
  int src_host = 0;
  int dst_host = 0;

  // Application bytes to transfer; 0 means unbounded (iperf-style
  // long-lived flow that keeps sending until `stop`).
  std::int64_t size_bytes = 0;
  Time start = 0;
  Time stop = 0;  // unbounded flows emit no new data after this time (0 = never)

  int service_queue = 0;  // DSCP class → switch service queue
  CcKind cc = CcKind::kNewReno;
  // Selective acknowledgements (on by default, as in Linux and the ns-2
  // Sack1/TCP-Linux agents DCN studies use). Without SACK the sender falls
  // back to classic NewReno partial-ACK recovery.
  bool sack = true;
  std::int32_t mss = net::kDefaultMss;
  double initial_cwnd_packets = 10.0;  // RFC 6928
  Time rto_min = milliseconds(std::int64_t{10});
  // Socket-buffer cap on the congestion window (Linux tcp_wmem/rmem); 0 =
  // unlimited. Bounds slow-start overshoot the way a real kernel does.
  std::int64_t max_window_bytes = 0;
  // Delayed ACKs (RFC 1122): acknowledge every 2nd segment, or after
  // `delayed_ack_timeout` for a lone segment. The paper's testbed behaves
  // per-packet (LSO/LRO off, DCTCP-style immediate echo), so this is off
  // by default; turn it on to study ACK-thinning effects.
  bool delayed_ack = false;
  Time delayed_ack_timeout = microseconds(std::int64_t{500});
  // Pre-seeded RTT estimate. 0 models a cold connection (RFC 6298's 1 s
  // initial RTO applies until the first sample); a positive value models a
  // request on an established persistent connection, as the paper's
  // client/server application uses — first-window losses then recover
  // after ~RTOmin instead of 1 s.
  Time initial_srtt = 0;

  // Two-level PIAS tagging (Bai et al., NSDI'15): the first
  // `pias_threshold_bytes` of every flow ride the strict-priority queue,
  // the rest drop to the flow's dedicated service queue.
  bool pias = false;
  std::int64_t pias_threshold_bytes = 100'000;
  int pias_high_queue = 0;

  bool unbounded() const { return size_bytes <= 0; }
};

// Service queue for the packet carrying byte offset `seq` of this flow.
inline int queue_for_segment(const FlowParams& params, std::uint64_t seq) {
  if (params.pias && seq < static_cast<std::uint64_t>(params.pias_threshold_bytes)) {
    return params.pias_high_queue;
  }
  return params.service_queue;
}

}  // namespace dynaq::transport
