#include "transport/flow_receiver.hpp"

#include <algorithm>

namespace dynaq::transport {

void FlowReceiver::insert_segment(std::uint64_t seq, std::uint64_t end) {
  if (end <= rcv_nxt_) return;  // stale retransmission
  seq = std::max(seq, rcv_nxt_);

  // Merge [seq, end) into the out-of-order interval set.
  auto it = out_of_order_.lower_bound(seq);
  if (it != out_of_order_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= seq) {
      seq = prev->first;
      end = std::max(end, prev->second);
      it = out_of_order_.erase(prev);
    }
  }
  while (it != out_of_order_.end() && it->first <= end) {
    end = std::max(end, it->second);
    it = out_of_order_.erase(it);
  }
  out_of_order_[seq] = end;

  // Advance the cumulative point across any now-contiguous intervals.
  auto head = out_of_order_.begin();
  while (head != out_of_order_.end() && head->first <= rcv_nxt_) {
    rcv_nxt_ = std::max(rcv_nxt_, head->second);
    head = out_of_order_.erase(head);
  }
}

void FlowReceiver::send_ack(std::uint8_t queue, bool ece) {
  net::Packet ack = net::make_ack_packet(params_.id, static_cast<std::uint32_t>(params_.dst_host),
                                         static_cast<std::uint32_t>(params_.src_host), rcv_nxt_);
  ack.queue = queue;  // ACKs ride the same service class as their data
  if (ece) ack.set(net::kFlagEce);
  // SACK option: advertise up to kMaxSackBlocks out-of-order intervals,
  // nearest the cumulative point first — enough for the sender's
  // scoreboard to locate every hole within a few ACKs.
  for (const auto& [start, end] : out_of_order_) {
    if (ack.num_sack >= net::kMaxSackBlocks) break;
    ack.sack[ack.num_sack++] = net::SackBlock{start, end};
  }
  ++acks_sent_;
  ack_pending_ = false;
  if (ack_timer_event_ != sim::kNoEvent) {
    sim_.cancel(ack_timer_event_);  // the ACK is going out now
    ack_timer_event_ = sim::kNoEvent;
  }
  host_.send(std::move(ack));
}

void FlowReceiver::delayed_ack_timer_fired() {
  ack_timer_event_ = sim::kNoEvent;
  if (!ack_pending_) return;
  send_ack(pending_queue_, /*ece=*/false);
}

void FlowReceiver::on_data(const net::Packet& data) {
  const std::uint64_t before = rcv_nxt_;
  insert_segment(data.seq, data.seq + static_cast<std::uint64_t>(data.payload));
  const bool advanced = rcv_nxt_ > before;

  // RFC 1122 delayed ACKs acknowledge at least every 2nd segment; dupACK
  // triggers (out-of-order data) and ECN (CE must be echoed promptly for
  // DCTCP's estimator) always acknowledge immediately.
  const bool must_ack_now = !params_.delayed_ack || !advanced || data.has(net::kFlagCe) ||
                            ack_pending_ || complete_ ||
                            (!params_.unbounded() &&
                             static_cast<std::int64_t>(rcv_nxt_) >= params_.size_bytes);
  if (must_ack_now) {
    send_ack(data.queue, data.has(net::kFlagCe));
  } else {
    ack_pending_ = true;
    pending_queue_ = data.queue;
    ack_timer_event_ =
        sim_.schedule_in(params_.delayed_ack_timeout, [this] { delayed_ack_timer_fired(); });
  }

  if (!complete_ && !params_.unbounded() &&
      static_cast<std::int64_t>(rcv_nxt_) >= params_.size_bytes) {
    complete_ = true;
    completion_time_ = sim_.now();
    if (on_complete) on_complete(*this);
  }
}

}  // namespace dynaq::transport
