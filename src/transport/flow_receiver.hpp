// Reliable byte-stream receiver: out-of-order reassembly, per-packet
// cumulative ACKs (optionally delayed per RFC 1122), and per-packet ECN
// echo (CE on a data packet sets ECE on exactly its ACK, giving DCTCP the
// exact marked fraction — the behaviour the testbed gets with LSO/LRO
// disabled).
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "transport/flow.hpp"

namespace dynaq::transport {

class FlowReceiver {
 public:
  FlowReceiver(sim::Simulator& sim, net::Host& host, FlowParams params)
      : sim_(sim), host_(host), params_(params) {}

  void on_data(const net::Packet& data);

  std::uint64_t rcv_nxt() const { return rcv_nxt_; }
  std::int64_t bytes_received() const { return static_cast<std::int64_t>(rcv_nxt_); }
  bool complete() const { return complete_; }
  Time completion_time() const { return completion_time_; }
  const FlowParams& params() const { return params_; }
  std::uint64_t acks_sent() const { return acks_sent_; }

  // Invoked once when a finite flow's last byte arrives in order.
  std::function<void(const FlowReceiver&)> on_complete;

 private:
  void insert_segment(std::uint64_t seq, std::uint64_t end);
  void send_ack(std::uint8_t queue, bool ece);
  void delayed_ack_timer_fired();

  sim::Simulator& sim_;
  net::Host& host_;
  FlowParams params_;
  std::uint64_t rcv_nxt_ = 0;
  std::map<std::uint64_t, std::uint64_t> out_of_order_;  // start → end
  bool complete_ = false;
  Time completion_time_ = 0;
  std::uint64_t acks_sent_ = 0;

  // Delayed-ACK state: at most one segment may be unacknowledged. The
  // pending timer event is cancelled outright when the ACK goes out early.
  bool ack_pending_ = false;
  std::uint8_t pending_queue_ = 0;
  sim::EventId ack_timer_event_ = sim::kNoEvent;
};

}  // namespace dynaq::transport
