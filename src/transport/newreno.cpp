#include "transport/newreno.hpp"

#include <algorithm>
#include <limits>

namespace dynaq::transport {

void NewRenoCc::init(std::int32_t mss, double initial_cwnd_packets) {
  mss_ = mss;
  cwnd_ = initial_cwnd_packets * static_cast<double>(mss);
  ssthresh_ = std::numeric_limits<double>::max() / 4;
}

void NewRenoCc::on_ack(const AckInfo& info) {
  if (in_slow_start()) {
    cwnd_ += static_cast<double>(info.bytes_acked);
    if (cwnd_ > ssthresh_) cwnd_ = ssthresh_;  // precise ssthresh crossing
  } else {
    // ~1 MSS per RTT: MSS^2/cwnd per MSS acked, scaled by bytes.
    cwnd_ += static_cast<double>(mss_) * static_cast<double>(info.bytes_acked) / cwnd_;
  }
}

void NewRenoCc::on_loss_event(const AckInfo& info) {
  (void)info;
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * mss_);
  cwnd_ = ssthresh_;
}

void NewRenoCc::on_timeout() {
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * mss_);
  cwnd_ = static_cast<double>(mss_);
}

}  // namespace dynaq::transport
