// Reliable byte-stream sender: window-based transmission with cumulative
// ACKs, triple-dupACK fast retransmit with NewReno-style partial-ACK
// recovery, and an RFC 6298 retransmission timer. Congestion control is a
// strategy object (NewReno / CUBIC / DCTCP).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "transport/congestion_control.hpp"
#include "transport/flow.hpp"

namespace dynaq::transport {

struct SenderStats {
  std::uint64_t data_packets = 0;
  std::uint64_t retransmissions = 0;      // all resent segments
  std::uint64_t partial_ack_retx = 0;     // NewReno hole-filling resends
  std::uint64_t goback_retx = 0;          // go-back-N resends after an RTO
  std::uint64_t fast_retransmits = 0;     // recovery entries
  std::uint64_t timeouts = 0;
  std::int64_t bytes_sent = 0;            // includes retransmissions
};

class FlowSender {
 public:
  FlowSender(sim::Simulator& sim, net::Host& host, FlowParams params);

  // Schedules the first window at params.start.
  void start();

  // ACK arrival from the network (invoked by the host agent).
  void on_ack(const net::Packet& ack);

  // Scenario service_leave / service_join (DESIGN.md §11): a paused sender
  // injects no new data but keeps processing ACKs for bytes already in
  // flight, so the flow drains cleanly and resumes where it left off.
  void pause() { paused_ = true; }
  void resume();
  bool paused() const { return paused_; }

  bool complete() const { return complete_; }
  const FlowParams& params() const { return params_; }
  const SenderStats& stats() const { return stats_; }
  const CongestionControl& cc() const { return *cc_; }
  std::uint64_t snd_una() const { return snd_una_; }
  std::uint64_t snd_nxt() const { return snd_nxt_; }
  Time current_rto() const;
  Time srtt() const { return srtt_; }

  // SACK scoreboard introspection (testing).
  std::int64_t sacked_bytes() const;
  std::uint64_t highest_sacked() const;

  // Invoked once when a finite flow has all bytes acknowledged.
  std::function<void(const FlowSender&)> on_complete;

 private:
  std::int64_t flow_limit() const;  // total bytes, or "infinite"
  bool may_send_new_data() const;
  void send_available();
  void transmit_segment(std::uint64_t seq, bool retransmission);
  void enter_recovery(const AckInfo& info);
  void handle_timeout();
  void take_rtt_sample(Time sample);

  // SACK machinery (RFC 6675-style pipe-driven recovery).
  void merge_sack_blocks(const net::Packet& ack);
  std::int64_t unsacked_in(std::uint64_t lo, std::uint64_t hi) const;
  std::optional<std::uint64_t> next_hole(std::uint64_t from) const;
  std::int64_t pipe_bytes() const;
  void sack_recovery_send();

  // Lazy retransmission timer (at most one live event per RTO period).
  // Pushing the deadline out keeps the pending event (it re-arms when it
  // fires); pulling it in or disarming cancels the event via
  // Simulator::cancel, so no dead closure ever reaches the event loop.
  void arm_timer(Time deadline);
  void cancel_timer();
  void timer_fired();

  sim::Simulator& sim_;
  net::Host& host_;
  FlowParams params_;
  std::unique_ptr<CongestionControl> cc_;

  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  std::uint64_t highest_sent_ = 0;  // high-water mark of transmitted bytes
  bool started_ = false;
  bool complete_ = false;
  bool paused_ = false;  // service_leave gate; see pause()/resume()

  // Fast retransmit / recovery. `recover_point_` persists after recovery
  // exits and implements RFC 6582's "recover" guard: dupACKs belonging to a
  // window that already went through recovery (or an RTO) must not trigger
  // a new fast retransmit, otherwise every stale dupACK cascades into a
  // full spurious recovery that retransmits an entire received window.
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recover_point_ = 0;
  bool has_recover_point_ = false;

  // SACK scoreboard: received intervals above snd_una, and the hole-scan
  // position of the current recovery episode (everything in
  // [snd_una, rtx_next_) that is unsacked has been retransmitted).
  std::map<std::uint64_t, std::uint64_t> sacked_;
  std::uint64_t rtx_next_ = 0;

  // RTT estimation (RFC 6298).
  Time srtt_ = 0;
  Time rttvar_ = 0;
  int rto_backoff_ = 1;
  std::uint64_t probe_end_seq_ = 0;  // cumulative ACK that completes the probe
  Time probe_sent_at_ = 0;
  bool probe_armed_ = false;

  // Timer bookkeeping. timer_event_ is the pending simulator event (or
  // kNoEvent); timer_event_time_ is when it fires, which may be earlier
  // than timer_deadline_ after the deadline was pushed out.
  bool timer_active_ = false;
  Time timer_deadline_ = 0;
  sim::EventId timer_event_ = sim::kNoEvent;
  Time timer_event_time_ = 0;

  SenderStats stats_;
};

}  // namespace dynaq::transport
