#include "transport/dctcp.hpp"

#include <algorithm>

namespace dynaq::transport {

void DctcpCc::init(std::int32_t mss, double initial_cwnd_packets) {
  NewRenoCc::init(mss, initial_cwnd_packets);
  alpha_ = 1.0;
  window_bytes_ = 0;
  window_marked_ = 0;
  window_end_ = 0;
  cwr_end_ = 0;
}

void DctcpCc::on_ack(const AckInfo& info) {
  window_bytes_ += info.bytes_acked;
  if (info.ece) window_marked_ += info.bytes_acked;

  // One observation window ≈ one RTT of data: when the ACK passes the
  // snd_nxt recorded at the previous boundary, fold the marked fraction
  // into alpha (α ← (1−g)α + g·F).
  if (info.snd_una >= window_end_) {
    if (window_bytes_ > 0) {
      const double f = static_cast<double>(window_marked_) / static_cast<double>(window_bytes_);
      alpha_ = (1.0 - kG) * alpha_ + kG * f;
    }
    window_bytes_ = 0;
    window_marked_ = 0;
    window_end_ = info.snd_nxt;
  }

  // ECN-proportional reduction, at most once per window (CWR state).
  if (info.ece && info.snd_una >= cwr_end_) {
    cwnd_ = std::max(cwnd_ * (1.0 - alpha_ / 2.0), 2.0 * mss_);
    ssthresh_ = cwnd_;
    cwr_end_ = info.snd_nxt;
    return;  // no additive growth on the reducing ACK
  }

  NewRenoCc::on_ack(info);
}

}  // namespace dynaq::transport
