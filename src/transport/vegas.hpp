// Delay-based congestion control (Vegas-style window adaptation).
//
// §II-B of the paper motivates protocol independence with the rise of
// non-ECN transports, explicitly citing delay-based designs (DX, TIMELY).
// This strategy is the windowed essence of that family: it estimates the
// backlog it keeps in the network, diff = cwnd · (1 − baseRTT/RTT), and
// nudges the window to hold alpha..beta packets of queueing — backing off
// on delay rather than loss. Against loss-based neighbours in one shared
// buffer it starves; DynaQ's per-queue isolation is what protects it (see
// bench/abl_delay_based).
#pragma once

#include <algorithm>

#include "transport/congestion_control.hpp"

namespace dynaq::transport {

class VegasCc final : public CongestionControl {
 public:
  void init(std::int32_t mss, double initial_cwnd_packets) override {
    mss_ = mss;
    cwnd_ = initial_cwnd_packets * static_cast<double>(mss);
    ssthresh_ = 1e18;
    base_rtt_ = 0;
  }

  void on_ack(const AckInfo& info) override {
    if (info.rtt_sample > 0 && (base_rtt_ == 0 || info.rtt_sample < base_rtt_)) {
      base_rtt_ = info.rtt_sample;
    }
    const Time rtt = info.srtt > 0 ? info.srtt : info.rtt_sample;
    if (base_rtt_ == 0 || rtt <= 0) {
      cwnd_ += static_cast<double>(info.bytes_acked);  // still measuring: slow start
      return;
    }
    // Estimated bytes this flow keeps queued in the network.
    const double backlog =
        cwnd_ * (1.0 - static_cast<double>(base_rtt_) / static_cast<double>(rtt));
    const double alpha = 2.0 * mss_;  // target at least 2 packets of backlog
    const double beta = 4.0 * mss_;   // and at most 4
    if (cwnd_ < ssthresh_ && backlog < alpha) {
      cwnd_ += static_cast<double>(info.bytes_acked);  // slow start while no queueing
      return;
    }
    const double per_rtt = static_cast<double>(mss_) * static_cast<double>(info.bytes_acked) / cwnd_;
    if (backlog < alpha) {
      cwnd_ += per_rtt;  // +1 MSS per RTT
    } else if (backlog > beta) {
      cwnd_ = std::max(cwnd_ - per_rtt, 2.0 * mss_);  // -1 MSS per RTT
      ssthresh_ = cwnd_;
    }
  }

  void on_loss_event(const AckInfo& info) override {
    (void)info;
    cwnd_ = std::max(cwnd_ * 0.75, 2.0 * mss_);  // Vegas' gentler loss response
    ssthresh_ = cwnd_;
  }

  void on_timeout() override {
    ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * mss_);
    cwnd_ = static_cast<double>(mss_);
  }

  double cwnd_bytes() const override { return cwnd_; }
  double ssthresh_bytes() const override { return ssthresh_; }
  std::string_view name() const override { return "vegas"; }

  Time base_rtt() const { return base_rtt_; }

 private:
  std::int32_t mss_ = 1460;
  double cwnd_ = 0.0;
  double ssthresh_ = 1e18;
  Time base_rtt_ = 0;
};

}  // namespace dynaq::transport
