#include "workload/flow_generator.hpp"

#include <stdexcept>

namespace dynaq::workload {

double arrival_rate_for_load(double load, double capacity_bps, double mean_flow_bytes) {
  if (load <= 0.0 || capacity_bps <= 0.0 || mean_flow_bytes <= 0.0) {
    throw std::invalid_argument("arrival_rate_for_load: all arguments must be positive");
  }
  return load * capacity_bps / (8.0 * mean_flow_bytes);
}

std::vector<FlowRequest> generate_poisson_flows(
    std::size_t count, double rate_per_sec, const FlowSizeDistribution& dist, sim::Rng& rng,
    const std::function<void(std::size_t, FlowRequest&)>& placement) {
  if (rate_per_sec <= 0.0) throw std::invalid_argument("rate_per_sec must be positive");
  std::vector<FlowRequest> flows;
  flows.reserve(count);
  double t_seconds = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    t_seconds += rng.exponential(1.0 / rate_per_sec);
    FlowRequest req;
    req.start = seconds(t_seconds);
    req.size_bytes = dist.sample(rng);
    placement(i, req);
    flows.push_back(req);
  }
  return flows;
}

}  // namespace dynaq::workload
