#include "workload/flow_size_distribution.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace dynaq::workload {

FlowSizeDistribution::FlowSizeDistribution(std::string name, std::vector<CdfPoint> table)
    : name_(std::move(name)), table_(std::move(table)) {
  if (table_.size() < 2) throw std::invalid_argument("CDF table needs >= 2 points");
  for (std::size_t i = 1; i < table_.size(); ++i) {
    if (table_[i].cum_prob < table_[i - 1].cum_prob || table_[i].bytes < table_[i - 1].bytes) {
      throw std::invalid_argument("CDF table must be non-decreasing");
    }
  }
  if (std::abs(table_.back().cum_prob - 1.0) > 1e-9) {
    throw std::invalid_argument("CDF table must end at probability 1");
  }
  // Mean of the piecewise-linear CDF: each segment contributes its
  // probability mass times the midpoint size.
  double mean = table_.front().bytes * table_.front().cum_prob;
  for (std::size_t i = 1; i < table_.size(); ++i) {
    const double mass = table_[i].cum_prob - table_[i - 1].cum_prob;
    mean += mass * 0.5 * (table_[i].bytes + table_[i - 1].bytes);
  }
  mean_bytes_ = mean;
}

double FlowSizeDistribution::quantile(double u) const {
  u = std::clamp(u, 0.0, 1.0);
  if (u <= table_.front().cum_prob) return table_.front().bytes;
  for (std::size_t i = 1; i < table_.size(); ++i) {
    if (u <= table_[i].cum_prob) {
      const double dp = table_[i].cum_prob - table_[i - 1].cum_prob;
      if (dp <= 0.0) return table_[i].bytes;
      const double frac = (u - table_[i - 1].cum_prob) / dp;
      return table_[i - 1].bytes + frac * (table_[i].bytes - table_[i - 1].bytes);
    }
  }
  return table_.back().bytes;
}

double FlowSizeDistribution::cdf(double bytes) const {
  if (bytes <= table_.front().bytes) {
    return bytes < table_.front().bytes ? 0.0 : table_.front().cum_prob;
  }
  for (std::size_t i = 1; i < table_.size(); ++i) {
    if (bytes <= table_[i].bytes) {
      const double db = table_[i].bytes - table_[i - 1].bytes;
      if (db <= 0.0) return table_[i].cum_prob;
      const double frac = (bytes - table_[i - 1].bytes) / db;
      return table_[i - 1].cum_prob + frac * (table_[i].cum_prob - table_[i - 1].cum_prob);
    }
  }
  return 1.0;
}

std::int64_t FlowSizeDistribution::sample(sim::Rng& rng) const {
  const double v = quantile(rng.uniform());
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(std::llround(v)));
}

namespace {

constexpr double kMss = 1460.0;  // tables below are in MSS-sized packets

std::vector<CdfPoint> in_packets(std::initializer_list<CdfPoint> pts) {
  std::vector<CdfPoint> out;
  out.reserve(pts.size());
  for (const CdfPoint& p : pts) out.push_back(CdfPoint{p.bytes * kMss, p.cum_prob});
  return out;
}

}  // namespace

// Web search (DCTCP, Alizadeh et al. SIGCOMM'10). The classic table shipped
// with the MQ-ECN / PIAS simulation scripts, sizes in 1460 B packets. Mean
// ~1.6 MB; ~50% of flows under ~80 KB while >95% of bytes come from flows
// above 1 MB — the "least skewed" of the four, which is why the paper uses
// it for all testbed queues.
const FlowSizeDistribution& web_search_workload() {
  static const FlowSizeDistribution dist("websearch", in_packets({
                                                          {1, 0.0},
                                                          {6, 0.15},
                                                          {13, 0.2},
                                                          {19, 0.3},
                                                          {33, 0.4},
                                                          {53, 0.53},
                                                          {133, 0.6},
                                                          {667, 0.7},
                                                          {1333, 0.8},
                                                          {3333, 0.9},
                                                          {6667, 0.97},
                                                          {20000, 1.0},
                                                      }));
  return dist;
}

// Data mining (VL2, Greenberg et al. SIGCOMM'09). Roughly 50% of flows are a
// single ~1 KB packet while ~90% of bytes come from flows larger than
// 100 MB, exactly the shape the paper quotes in §V.
const FlowSizeDistribution& data_mining_workload() {
  static const FlowSizeDistribution dist("datamining", in_packets({
                                                           {1, 0.0},
                                                           {1, 0.5},
                                                           {2, 0.6},
                                                           {3, 0.7},
                                                           {7, 0.8},
                                                           {267, 0.9},
                                                           {2107, 0.95},
                                                           {66667, 0.99},
                                                           {666667, 1.0},
                                                       }));
  return dist;
}

// Cache follower (Facebook, Roy et al. SIGCOMM'15). The study publishes the
// distribution only as a plot; this table is the widely used transcription
// (e.g. from the PIAS/HPCC simulation suites): dominated by sub-10 KB
// objects with a tail of multi-MB responses.
const FlowSizeDistribution& cache_workload() {
  static const FlowSizeDistribution dist("cache", std::vector<CdfPoint>{
                                                      {0, 0.0},
                                                      {100, 0.1},
                                                      {200, 0.2},
                                                      {300, 0.3},
                                                      {400, 0.4},
                                                      {500, 0.5},
                                                      {700, 0.6},
                                                      {1000, 0.7},
                                                      {2000, 0.8},
                                                      {10000, 0.9},
                                                      {100000, 0.96},
                                                      {1000000, 0.98},
                                                      {10000000, 1.0},
                                                  });
  return dist;
}

// Hadoop (Facebook, Roy et al. SIGCOMM'15). Also transcribed from the plot:
// mostly small control/shuffle chunks with a heavy tail of block-sized
// (tens of MB) transfers carrying most bytes.
const FlowSizeDistribution& hadoop_workload() {
  static const FlowSizeDistribution dist("hadoop", std::vector<CdfPoint>{
                                                       {0, 0.0},
                                                       {250, 0.2},
                                                       {500, 0.4},
                                                       {1000, 0.53},
                                                       {2000, 0.6},
                                                       {10000, 0.7},
                                                       {100000, 0.8},
                                                       {1000000, 0.9},
                                                       {10000000, 0.97},
                                                       {100000000, 1.0},
                                                   });
  return dist;
}

std::span<const FlowSizeDistribution* const> all_workloads() {
  static const FlowSizeDistribution* const kAll[] = {
      &web_search_workload(),
      &data_mining_workload(),
      &cache_workload(),
      &hadoop_workload(),
  };
  return kAll;
}

}  // namespace dynaq::workload
