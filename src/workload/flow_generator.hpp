// Open-loop Poisson flow generation at a target offered load.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"
#include "workload/flow_size_distribution.hpp"

namespace dynaq::workload {

// One flow request produced by the generator.
struct FlowRequest {
  Time start = 0;
  std::int64_t size_bytes = 0;
  int src_host = 0;
  int dst_host = 0;
  int service_queue = 0;  // service the flow belongs to (DSCP class)
};

// Converts an offered load fraction into the Poisson arrival rate that
// produces it on a bottleneck of `capacity_bps`:
//   lambda = load * capacity / (8 * mean_flow_bytes)   [flows per second]
double arrival_rate_for_load(double load, double capacity_bps, double mean_flow_bytes);

// Pre-generates a flow schedule: `count` flows with exponential
// inter-arrival times at `rate_per_sec`, sizes drawn from `dist`, and
// src/dst/service chosen by the provided `placement` callback (invoked with
// the flow index). Flows are returned sorted by start time.
std::vector<FlowRequest> generate_poisson_flows(
    std::size_t count, double rate_per_sec, const FlowSizeDistribution& dist, sim::Rng& rng,
    const std::function<void(std::size_t, FlowRequest&)>& placement);

}  // namespace dynaq::workload
