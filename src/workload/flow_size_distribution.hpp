// Empirical flow-size distributions used in the DynaQ evaluation.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/random.hpp"

namespace dynaq::workload {

// One point of a piecewise-linear CDF: P[size <= bytes] = cum_prob.
struct CdfPoint {
  double bytes = 0.0;
  double cum_prob = 0.0;
};

// Piecewise-linear inverse-CDF sampler over flow sizes in bytes.
//
// The table must be sorted by cum_prob, start at or below probability 0 and
// end at probability 1. Sampling draws u ~ U[0,1) and interpolates linearly
// between the bracketing points, the standard ns-2/ns-3 "empirical
// distribution" behaviour the original MQ-ECN/TCN/DynaQ scripts rely on.
class FlowSizeDistribution {
 public:
  FlowSizeDistribution(std::string name, std::vector<CdfPoint> table);

  const std::string& name() const { return name_; }
  std::span<const CdfPoint> table() const { return table_; }

  // Analytical mean of the piecewise-linear distribution, in bytes. Used to
  // convert an offered load fraction into a Poisson arrival rate.
  double mean_bytes() const { return mean_bytes_; }

  // Draws one flow size (>= 1 byte).
  std::int64_t sample(sim::Rng& rng) const;

  // Inverse CDF at probability u in [0, 1].
  double quantile(double u) const;

  // CDF evaluated at `bytes` (linear interpolation).
  double cdf(double bytes) const;

 private:
  std::string name_;
  std::vector<CdfPoint> table_;
  double mean_bytes_ = 0.0;
};

// The four production workloads of Fig. 2. Tables are transcribed from the
// distributions published with DCTCP (web search), VL2 (data mining) and the
// Facebook datacenter study (cache, hadoop); see distributions.cpp for the
// numbers and provenance notes.
const FlowSizeDistribution& web_search_workload();
const FlowSizeDistribution& data_mining_workload();
const FlowSizeDistribution& cache_workload();
const FlowSizeDistribution& hadoop_workload();

// All four, in the order the paper lists them.
std::span<const FlowSizeDistribution* const> all_workloads();

}  // namespace dynaq::workload
