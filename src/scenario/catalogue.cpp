#include <sstream>
#include <stdexcept>

#include "scenario/scenario.hpp"

namespace dynaq::scenario {
namespace {

// The catalogue lays timelines out on eighths of the run: long enough for
// flows to reach steady state before the first disturbance, with a quiet
// final eighth so post-fault recovery shows up in the aggregate metrics.
Action at(Time when, ActionKind kind) {
  Action a;
  a.at = when;
  a.kind = kind;
  return a;
}

Scenario weight_churn(const ScenarioParams& p) {
  // Every eighth of the run, promote one queue (rotating) to 4× weight;
  // restore the flat split for the final quarter. Each update rebalances
  // ΣT = B through the audited set_weights path.
  Scenario s{"weight_churn", {}};
  const Time t8 = p.duration / 8;
  for (int step = 1; step <= 5; ++step) {
    Action a = at(t8 * step, ActionKind::kWeightUpdate);
    a.target = p.qdisc;
    a.weights.assign(static_cast<std::size_t>(p.num_queues), 1.0);
    a.weights[static_cast<std::size_t>((step - 1) % p.num_queues)] = 4.0;
    s.actions.push_back(std::move(a));
  }
  Action restore = at(t8 * 6, ActionKind::kWeightUpdate);
  restore.target = p.qdisc;
  restore.weights.assign(static_cast<std::size_t>(p.num_queues), 1.0);
  s.actions.push_back(std::move(restore));
  return s;
}

Scenario link_flap(const ScenarioParams& p) {
  // Two down/up cycles on the bottleneck link, one eighth of the run each:
  // long enough (vs the RTO floor) that senders hit timeouts and must
  // recover, short enough that the run ends in steady state again.
  Scenario s{"link_flap", {}};
  const Time t8 = p.duration / 8;
  for (const int down_at : {2, 5}) {
    Action down = at(t8 * down_at, ActionKind::kLinkDown);
    down.target = p.link;
    s.actions.push_back(std::move(down));
    Action up = at(t8 * (down_at + 1), ActionKind::kLinkUp);
    up.target = p.link;
    s.actions.push_back(std::move(up));
  }
  return s;
}

Scenario service_churn(const ScenarioParams& p) {
  // One service leaves a quarter into the run and rejoins at 5/8 — the
  // dynamic-services story of the paper's title: the remaining queues
  // should absorb the freed buffer and give it back on rejoin.
  Scenario s{"service_churn", {}};
  const Time t8 = p.duration / 8;
  const int q = p.churn_queue >= 0 ? p.churn_queue : p.num_queues - 1;
  Action leave = at(t8 * 2, ActionKind::kServiceLeave);
  leave.queue = q;
  s.actions.push_back(std::move(leave));
  Action join = at(t8 * 5, ActionKind::kServiceJoin);
  join.queue = q;
  s.actions.push_back(std::move(join));
  return s;
}

Scenario incast(const ScenarioParams& p) {
  // A synchronized fan-in of short flows into queue 0 at mid-run.
  Scenario s{"incast", {}};
  Action burst = at(p.duration / 2, ActionKind::kIncastBurst);
  burst.queue = 0;
  burst.count = p.incast_fanin;
  burst.bytes = p.incast_bytes;
  s.actions.push_back(std::move(burst));
  return s;
}

Scenario loss_burst(const ScenarioParams& p) {
  // A lossy-cable episode: raise the registered loss queue's rate for a
  // quarter of the run starting at 3/8.
  Scenario s{"loss_burst", {}};
  Action w = at(p.duration * 3 / 8, ActionKind::kLossWindow);
  w.target = p.loss;
  w.loss_rate = p.loss_burst_rate;
  w.duration = p.duration / 4;
  s.actions.push_back(std::move(w));
  return s;
}

Scenario buffer_squeeze(const ScenarioParams& p) {
  // Halve the bottleneck buffer at 3/8, restore at 6/8 — §III-B3's resize
  // path exercised mid-run in both directions.
  Scenario s{"buffer_squeeze", {}};
  Action shrink = at(p.duration * 3 / 8, ActionKind::kBufferResize);
  shrink.target = p.qdisc;
  shrink.bytes = p.buffer_bytes / 2;
  s.actions.push_back(std::move(shrink));
  Action grow = at(p.duration * 6 / 8, ActionKind::kBufferResize);
  grow.target = p.qdisc;
  grow.bytes = p.buffer_bytes;
  s.actions.push_back(std::move(grow));
  return s;
}

Scenario mixed(const ScenarioParams& p) {
  // Weight churn, a link flap and an incast in one run — the kitchen-sink
  // robustness scenario the rob_* benches default to for the "everything
  // at once" column.
  Scenario s{"mixed", {}};
  const Time t8 = p.duration / 8;
  Action favor = at(t8 * 2, ActionKind::kWeightUpdate);
  favor.target = p.qdisc;
  favor.weights.assign(static_cast<std::size_t>(p.num_queues), 1.0);
  favor.weights[0] = 4.0;
  s.actions.push_back(std::move(favor));
  Action down = at(t8 * 4, ActionKind::kLinkDown);
  down.target = p.link;
  s.actions.push_back(std::move(down));
  Action up = at(t8 * 4 + t8 / 2, ActionKind::kLinkUp);
  up.target = p.link;
  s.actions.push_back(std::move(up));
  Action burst = at(t8 * 6, ActionKind::kIncastBurst);
  burst.queue = 0;
  burst.count = p.incast_fanin;
  burst.bytes = p.incast_bytes;
  s.actions.push_back(std::move(burst));
  Action restore = at(t8 * 7, ActionKind::kWeightUpdate);
  restore.target = p.qdisc;
  restore.weights.assign(static_cast<std::size_t>(p.num_queues), 1.0);
  s.actions.push_back(std::move(restore));
  return s;
}

Scenario controller_stall(const ScenarioParams& p) {
  // The controller goes unresponsive (state intact) at 3/8 for a quarter of
  // the run: stale thresholds stay enforced, the watchdog fails over to DT,
  // and the restore path needs no re-sync.
  Scenario s{"controller_stall", {}};
  Action a = at(p.duration * 3 / 8, ActionKind::kControllerStall);
  a.target = p.ctrl;
  a.duration = p.duration / 4;
  s.actions.push_back(std::move(a));
  return s;
}

Scenario controller_crash(const ScenarioParams& p) {
  // Same window, but the controller loses its state: in-flight updates are
  // voided and recovery requires the full Eq. 1 re-sync (ΣT = B re-checked
  // by the auditor the moment DynaQ enforcement resumes).
  Scenario s{"controller_crash", {}};
  Action a = at(p.duration * 3 / 8, ActionKind::kControllerCrash);
  a.target = p.ctrl;
  a.duration = p.duration / 4;
  s.actions.push_back(std::move(a));
  return s;
}

Scenario control_loss_window(const ScenarioParams& p) {
  // The controller stays healthy but its updates stop arriving: the channel
  // drops them at ctrl_loss_rate for a quarter of the run from 3/8. At 100%
  // loss the commit stream goes quiet and the watchdog fails over exactly
  // as for a stall.
  Scenario s{"control_loss_window", {}};
  Action a = at(p.duration * 3 / 8, ActionKind::kControlLossWindow);
  a.target = p.ctrl;
  a.loss_rate = p.ctrl_loss_rate;
  a.duration = p.duration / 4;
  s.actions.push_back(std::move(a));
  return s;
}

}  // namespace

std::vector<std::string> scenario_names() {
  return {"none",           "weight_churn",     "link_flap",
          "service_churn",  "incast",           "loss_burst",
          "buffer_squeeze", "mixed",            "controller_stall",
          "controller_crash", "control_loss_window"};
}

std::string_view scenario_description(std::string_view name) {
  if (name == "none") return "empty timeline — scenario machinery armed but idle (baseline)";
  if (name == "weight_churn")
    return "rotate a 4x weight promotion across queues every eighth; flat split restored at 6/8";
  if (name == "link_flap") return "two down/up outage cycles on the bottleneck link (eighths 2 and 5)";
  if (name == "service_churn") return "one service queue leaves at 2/8 and rejoins at 5/8";
  if (name == "incast") return "synchronized fan-in of short flows into queue 0 at mid-run";
  if (name == "loss_burst") return "lossy-cable window: raised loss rate for a quarter of the run from 3/8";
  if (name == "buffer_squeeze") return "halve the bottleneck buffer at 3/8, restore it at 6/8";
  if (name == "mixed") return "kitchen sink: weight favor, link flap and incast in one run";
  if (name == "controller_stall")
    return "control plane unresponsive (state kept) for a quarter of the run from 3/8";
  if (name == "controller_crash")
    return "control plane down with state loss for a quarter of the run from 3/8";
  if (name == "control_loss_window")
    return "control channel drops threshold updates for a quarter of the run from 3/8";
  return "unknown scenario";
}

Scenario make_scenario(std::string_view name, const ScenarioParams& params) {
  if (params.duration <= 0) throw std::invalid_argument("scenario duration must be positive");
  if (params.num_queues <= 0) throw std::invalid_argument("scenario needs at least one queue");
  if (name == "none") return Scenario{"none", {}};
  if (name == "weight_churn") return weight_churn(params);
  if (name == "link_flap") return link_flap(params);
  if (name == "service_churn") return service_churn(params);
  if (name == "incast") return incast(params);
  if (name == "loss_burst") return loss_burst(params);
  if (name == "buffer_squeeze") return buffer_squeeze(params);
  if (name == "mixed") return mixed(params);
  if (name == "controller_stall") return controller_stall(params);
  if (name == "controller_crash") return controller_crash(params);
  if (name == "control_loss_window") return control_loss_window(params);
  std::ostringstream os;
  os << "unknown scenario '" << name << "' (known:";
  for (const std::string& known : scenario_names()) os << " " << known;
  os << ")";
  throw std::invalid_argument(os.str());
}

}  // namespace dynaq::scenario
