// Declarative mid-run timelines (DESIGN.md §11): a Scenario is a list of
// timestamped actions — weight rebalances, service churn, link faults,
// buffer resizes, incast bursts, loss windows — that a ScenarioDirector
// replays against registered component handles while an experiment runs.
// Scenarios are plain data: building one performs no side effects, so the
// same Scenario value can drive any number of simulator instances.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace dynaq::scenario {

enum class ActionKind : std::uint8_t {
  kWeightUpdate = 0,    // rewrite a qdisc's per-queue weights (ΣT = B rebalance)
  kServiceJoin = 1,     // resume every registered sender of a service queue
  kServiceLeave = 2,    // pause every registered sender of a service queue
  kLinkRateChange = 3,  // rewrite a link's line rate
  kLinkDown = 4,        // cut a link (cancels the in-flight serialization)
  kLinkUp = 5,          // restore a cut link
  kBufferResize = 6,    // rewrite a qdisc's buffer size B
  kIncastBurst = 7,     // launch N synchronized short flows into one queue
  kLossWindow = 8,      // raise a loss queue's rate for a bounded window
  // Control-plane faults (dynaq::ctrlplane, DESIGN.md §14); targets are
  // registered ControlPlanePolicy handles ("sw.p0.ctrl").
  kControllerStall = 9,     // controller unresponsive for `duration` (state kept)
  kControllerCrash = 10,    // controller down for `duration` (state lost)
  kControlLossWindow = 11,  // raise control-channel loss for a bounded window
};
inline constexpr std::size_t kNumActionKinds = 12;

constexpr std::string_view action_kind_name(ActionKind kind) {
  switch (kind) {
    case ActionKind::kWeightUpdate: return "weight_update";
    case ActionKind::kServiceJoin: return "service_join";
    case ActionKind::kServiceLeave: return "service_leave";
    case ActionKind::kLinkRateChange: return "link_rate_change";
    case ActionKind::kLinkDown: return "link_down";
    case ActionKind::kLinkUp: return "link_up";
    case ActionKind::kBufferResize: return "buffer_resize";
    case ActionKind::kIncastBurst: return "incast_burst";
    case ActionKind::kLossWindow: return "loss_window";
    case ActionKind::kControllerStall: return "controller_stall";
    case ActionKind::kControllerCrash: return "controller_crash";
    case ActionKind::kControlLossWindow: return "control_loss_window";
  }
  return "unknown";
}

// One timeline entry. Only the fields its kind reads are meaningful; the
// director rejects under-specified actions at arm() time, not mid-run.
struct Action {
  Time at = 0;                  // absolute simulation time
  ActionKind kind = ActionKind::kWeightUpdate;
  std::string target;           // registered handle name (qdisc / link / loss)
  int queue = -1;               // service queue (join/leave/incast)
  std::vector<double> weights;  // weight_update: one positive weight per queue
  double rate_bps = 0.0;        // link_rate_change
  std::int64_t bytes = 0;       // buffer_resize: new B; incast_burst: flow size
  int count = 0;                // incast_burst: number of synchronized flows
  double loss_rate = 0.0;       // loss_window / control_loss_window: probability
  Time duration = 0;            // loss_window / controller faults: window length
};

struct Scenario {
  std::string name;
  std::vector<Action> actions;
  bool empty() const { return actions.empty(); }
};

// Knobs for the named catalogue below. Handle names default to the star
// harness convention (switch egress port facing host 0 = the bottleneck).
struct ScenarioParams {
  Time duration = seconds(std::int64_t{10});  // experiment length the timeline spans
  int num_queues = 4;
  std::string qdisc = "sw.p0";  // weight_update / buffer_resize target
  std::string link = "sw.p0";   // link fault target
  std::string loss;             // loss-queue handle (loss_burst only)
  std::int64_t buffer_bytes = 85'000;  // restore point for buffer_squeeze
  int churn_queue = -1;         // service_churn queue; -1 = last queue
  int incast_fanin = 16;
  std::int64_t incast_bytes = 20'000;
  double loss_burst_rate = 0.02;
  // Control-plane fault targets (DESIGN.md §14): the ControlPlanePolicy
  // handle at the bottleneck and the channel loss rate the
  // control_loss_window timeline raises.
  std::string ctrl = "sw.p0.ctrl";
  double ctrl_loss_rate = 1.0;
};

// Builds one of the named scenarios ("none", "weight_churn", "link_flap",
// "service_churn", "incast", "loss_burst", "buffer_squeeze", "mixed",
// "controller_stall", "controller_crash", "control_loss_window").
// Throws std::invalid_argument listing the known names when `name` is not
// one of them — bench binaries surface that as a clean usage error.
Scenario make_scenario(std::string_view name, const ScenarioParams& params);

// The catalogue's names, in a fixed order (for --help text and error messages).
std::vector<std::string> scenario_names();

// One-line human description of a catalogue entry (what the timeline does
// and when), for --list-scenarios output. Unknown names get a fixed
// "unknown scenario" string rather than a throw — listing is diagnostics,
// not validation.
std::string_view scenario_description(std::string_view name);

}  // namespace dynaq::scenario
