#include "scenario/director.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "ctrlplane/control_plane.hpp"
#include "net/fault_injection.hpp"
#include "net/multi_queue_qdisc.hpp"
#include "net/port.hpp"
#include "telemetry/hub.hpp"
#include "transport/flow_sender.hpp"

namespace dynaq::scenario {
namespace {

template <typename MapT>
std::string known_keys(const MapT& map) {
  std::ostringstream os;
  bool first = true;
  for (const auto& [key, value] : map) {
    (void)value;
    if (!first) os << ", ";
    os << key;
    first = false;
  }
  return first ? std::string("<none registered>") : os.str();
}

std::int32_t clamp_payload(std::int64_t value) {
  return static_cast<std::int32_t>(std::clamp<std::int64_t>(
      value, 0, std::numeric_limits<std::int32_t>::max()));
}

}  // namespace

void ScenarioDirector::attach_telemetry(telemetry::Hub& hub) {
  hub_ = &hub;
  tel_port_ = static_cast<std::int16_t>(hub.register_port("scenario"));
}

void ScenarioDirector::register_qdisc(const std::string& name, net::MultiQueueQdisc& qdisc) {
  qdiscs_[name] = &qdisc;
}

void ScenarioDirector::register_link(const std::string& name, net::Port& port) {
  links_[name] = &port;
}

void ScenarioDirector::register_loss(const std::string& name, net::BernoulliLossQueue& queue) {
  losses_[name] = &queue;
}

void ScenarioDirector::register_ctrlplane(const std::string& name,
                                          ctrlplane::ControlPlanePolicy& shim) {
  ctrlplanes_[name] = &shim;
}

void ScenarioDirector::register_sender(int queue, transport::FlowSender& sender) {
  senders_[queue].push_back(&sender);
}

void ScenarioDirector::set_incast_launcher(std::function<void(const Action&)> launcher) {
  launch_incast_ = std::move(launcher);
}

void ScenarioDirector::reject(const Action& a, std::size_t idx, const std::string& why) const {
  std::ostringstream os;
  os << "scenario";
  if (!name_.empty()) os << " '" << name_ << "'";
  os << " action #" << idx << " (" << action_kind_name(a.kind) << "): " << why;
  throw std::invalid_argument(os.str());
}

void ScenarioDirector::validate(const Action& a, std::size_t idx) const {
  if (a.at < 0) reject(a, idx, "timestamp is negative");
  switch (a.kind) {
    case ActionKind::kWeightUpdate:
    case ActionKind::kBufferResize: {
      const auto it = qdiscs_.find(a.target);
      if (it == qdiscs_.end()) {
        reject(a, idx, "unknown qdisc '" + a.target + "' (known: " + known_keys(qdiscs_) + ")");
      }
      if (a.kind == ActionKind::kWeightUpdate) {
        if (static_cast<int>(a.weights.size()) != it->second->num_service_queues()) {
          reject(a, idx, "needs one weight per service queue");
        }
        for (const double w : a.weights) {
          if (w <= 0.0) reject(a, idx, "weights must be positive");
        }
      } else if (a.bytes <= 0) {
        reject(a, idx, "new buffer size must be positive");
      }
      break;
    }
    case ActionKind::kServiceJoin:
    case ActionKind::kServiceLeave: {
      const auto it = senders_.find(a.queue);
      if (it == senders_.end() || it->second.empty()) {
        reject(a, idx, "no senders registered for queue " + std::to_string(a.queue));
      }
      break;
    }
    case ActionKind::kLinkRateChange:
    case ActionKind::kLinkDown:
    case ActionKind::kLinkUp: {
      if (!links_.contains(a.target)) {
        reject(a, idx, "unknown link '" + a.target + "' (known: " + known_keys(links_) + ")");
      }
      if (a.kind == ActionKind::kLinkRateChange && a.rate_bps <= 0.0) {
        reject(a, idx, "link rate must be positive");
      }
      break;
    }
    case ActionKind::kIncastBurst: {
      if (!launch_incast_) reject(a, idx, "no incast launcher installed");
      if (a.count <= 0) reject(a, idx, "incast flow count must be positive");
      if (a.bytes <= 0) reject(a, idx, "incast flow size must be positive");
      if (a.queue < 0) reject(a, idx, "incast needs a target service queue");
      break;
    }
    case ActionKind::kLossWindow: {
      if (!losses_.contains(a.target)) {
        reject(a, idx, "unknown loss queue '" + a.target + "' (known: " + known_keys(losses_) + ")");
      }
      if (a.loss_rate < 0.0 || a.loss_rate > 1.0) reject(a, idx, "loss rate must be in [0, 1]");
      if (a.duration <= 0) reject(a, idx, "loss window needs a positive duration");
      break;
    }
    case ActionKind::kControllerStall:
    case ActionKind::kControllerCrash:
    case ActionKind::kControlLossWindow: {
      if (!ctrlplanes_.contains(a.target)) {
        reject(a, idx, "unknown control plane '" + a.target +
                        "' (known: " + known_keys(ctrlplanes_) + ")");
      }
      if (a.kind == ActionKind::kControlLossWindow &&
          (a.loss_rate < 0.0 || a.loss_rate > 1.0)) {
        reject(a, idx, "loss rate must be in [0, 1]");
      }
      if (a.duration <= 0) reject(a, idx, "controller fault needs a positive duration");
      break;
    }
  }
}

void ScenarioDirector::arm(const Scenario& scenario) {
  if (armed_) throw std::logic_error("ScenarioDirector::arm called twice");
  // Validate the whole timeline before touching any director state: a
  // reject must leave nothing armed and nothing scheduled, so a re-arm
  // with a corrected Scenario starts from a clean slate.
  for (std::size_t i = 0; i < scenario.actions.size(); ++i) validate(scenario.actions[i], i);
  armed_ = true;
  name_ = scenario.name;
  actions_ = scenario.actions;

  // One inline closure per action (DESIGN.md §9): 16 bytes of captures
  // ([this, i]), never a heap fallback. Ties at equal timestamps fire in
  // arming order.
  static_assert(sizeof(ScenarioDirector*) + sizeof(std::size_t) <= sim::kEventInlineBytes);
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    sim_.schedule_at(actions_[i].at, [this, i] { apply(i); });
    if (actions_[i].kind == ActionKind::kLossWindow) {
      sim_.schedule_at(actions_[i].at + actions_[i].duration,
                       [this, i] { end_loss_window(i); });
    }
    if (actions_[i].kind == ActionKind::kControlLossWindow) {
      sim_.schedule_at(actions_[i].at + actions_[i].duration,
                       [this, i] { end_control_loss_window(i); });
    }
  }
}

void ScenarioDirector::apply(std::size_t idx) {
  const Action& a = actions_[idx];
  std::int64_t payload = 0;
  switch (a.kind) {
    case ActionKind::kWeightUpdate:
      // Audited entry point: the qdisc notifies its buffer policy, whose
      // auditor re-checks ΣT = B the instant the rebalance returns.
      qdiscs_.at(a.target)->set_weights(a.weights);
      break;
    case ActionKind::kServiceJoin:
      for (transport::FlowSender* s : senders_.at(a.queue)) s->resume();
      payload = static_cast<std::int64_t>(senders_.at(a.queue).size());
      break;
    case ActionKind::kServiceLeave:
      for (transport::FlowSender* s : senders_.at(a.queue)) s->pause();
      payload = static_cast<std::int64_t>(senders_.at(a.queue).size());
      break;
    case ActionKind::kLinkRateChange:
      links_.at(a.target)->set_rate(a.rate_bps);
      payload = static_cast<std::int64_t>(a.rate_bps / 1e3);  // kbps fits int32
      break;
    case ActionKind::kLinkDown:
      links_.at(a.target)->set_link_down();
      break;
    case ActionKind::kLinkUp:
      links_.at(a.target)->set_link_up();
      break;
    case ActionKind::kBufferResize:
      qdiscs_.at(a.target)->resize_buffer(a.bytes);
      payload = a.bytes;
      break;
    case ActionKind::kIncastBurst:
      launch_incast_(a);
      payload = a.count;
      break;
    case ActionKind::kLossWindow:
      losses_.at(a.target)->set_loss_rate(a.loss_rate);
      payload = static_cast<std::int64_t>(a.loss_rate * 1e6);
      break;
    case ActionKind::kControllerStall:
      ctrlplanes_.at(a.target)->stall_for(a.duration);
      payload = static_cast<std::int64_t>(to_microseconds(a.duration));
      break;
    case ActionKind::kControllerCrash:
      ctrlplanes_.at(a.target)->crash_for(a.duration);
      payload = static_cast<std::int64_t>(to_microseconds(a.duration));
      break;
    case ActionKind::kControlLossWindow:
      ctrlplanes_.at(a.target)->set_update_loss(a.loss_rate);
      payload = static_cast<std::int64_t>(a.loss_rate * 1e6);
      break;
  }
  ++applied_;
  emit(a, idx, payload);
}

void ScenarioDirector::end_loss_window(std::size_t idx) {
  const Action& a = actions_[idx];
  losses_.at(a.target)->set_loss_rate(0.0);
  ++applied_;
  emit(a, idx, 0);
}

void ScenarioDirector::end_control_loss_window(std::size_t idx) {
  const Action& a = actions_[idx];
  ctrlplane::ControlPlanePolicy* shim = ctrlplanes_.at(a.target);
  shim->set_update_loss(shim->base_update_loss());
  ++applied_;
  emit(a, idx, 0);
}

void ScenarioDirector::emit(const Action& a, std::size_t idx, std::int64_t payload) {
  if (hub_ == nullptr || !hub_->enabled()) return;
  // other_queue carries the action kind and flow the timeline index, so the
  // hub's event fingerprint distinguishes both what ran and when — the
  // scenario becomes part of the trajectory hash (DESIGN.md §10).
  hub_->emit({.kind = telemetry::EventKind::kScenarioAction,
              .port = tel_port_,
              .queue = static_cast<std::int16_t>(a.queue),
              .other_queue = static_cast<std::int16_t>(a.kind),
              .bytes = clamp_payload(payload),
              .flow = static_cast<std::uint32_t>(idx)});
}

}  // namespace dynaq::scenario
