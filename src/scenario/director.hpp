// ScenarioDirector (DESIGN.md §11): replays a Scenario against a running
// simulation. Components are mutated only through handles registered by
// name — the director never reaches into queue internals (conventions rule
// 11), so every mutation goes through the same audited entry points tests
// and operators use (MultiQueueQdisc::set_weights / resize_buffer,
// Port::set_link_down / set_link_up / set_rate, FlowSender::pause /
// resume, BernoulliLossQueue::set_loss_rate).
//
// Determinism: arm() schedules one inline closure per action at its fixed
// timestamp through the allocation-free event engine; ties against model
// events resolve by the engine's (time, sequence) order, which depends
// only on arming order — itself fixed by the Scenario value. Every applied
// action is also emitted on the telemetry bus as a kScenarioAction event,
// folding the timeline into the run's trajectory hash.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"

namespace dynaq::ctrlplane {
class ControlPlanePolicy;
}
namespace dynaq::net {
class BernoulliLossQueue;
class MultiQueueQdisc;
class Port;
}  // namespace dynaq::net
namespace dynaq::transport {
class FlowSender;
}
namespace dynaq::telemetry {
class Hub;
}

namespace dynaq::scenario {

class ScenarioDirector {
 public:
  explicit ScenarioDirector(sim::Simulator& sim) : sim_(sim) {}

  ScenarioDirector(const ScenarioDirector&) = delete;
  ScenarioDirector& operator=(const ScenarioDirector&) = delete;

  // Registers the director's own observation point ("scenario") on the hub;
  // every applied action then emits one kScenarioAction event. The hub must
  // outlive the director.
  void attach_telemetry(telemetry::Hub& hub);

  // ---- handle registration (before arm) ---------------------------------
  // Names are free-form; topologies register under their telemetry port
  // names ("sw.p0", "h1.nic", ...) so scenarios and dashboards agree.
  void register_qdisc(const std::string& name, net::MultiQueueQdisc& qdisc);
  void register_link(const std::string& name, net::Port& port);
  void register_loss(const std::string& name, net::BernoulliLossQueue& queue);
  // Control-plane shims (DESIGN.md §14): controller_stall / controller_crash
  // / control_loss_window act only through the shim's fault handles —
  // conventions rule 14 bans any other controller mutation path.
  void register_ctrlplane(const std::string& name, ctrlplane::ControlPlanePolicy& shim);
  // Senders are grouped by the service queue they feed; service_join /
  // service_leave act on every sender of the named queue.
  void register_sender(int queue, transport::FlowSender& sender);
  // kIncastBurst delegates flow creation to the harness (it owns hosts and
  // flow-id allocation); the callback runs at the burst's timestamp.
  void set_incast_launcher(std::function<void(const Action&)> launcher);

  // Validates every action against the registered handles (throwing
  // std::invalid_argument with the offending index on any unresolvable
  // target or malformed field) and schedules the timeline. May be called
  // once; a kLossWindow action schedules both its start and its end.
  void arm(const Scenario& scenario);

  const std::string& scenario_name() const { return name_; }
  std::size_t actions_armed() const { return actions_.size(); }
  // Mutations applied so far (a loss window counts twice: raise + restore).
  std::uint64_t actions_applied() const { return applied_; }

 private:
  void validate(const Action& a, std::size_t idx) const;
  void apply(std::size_t idx);
  void end_loss_window(std::size_t idx);
  void end_control_loss_window(std::size_t idx);
  void emit(const Action& a, std::size_t idx, std::int64_t payload);
  [[noreturn]] void reject(const Action& a, std::size_t idx, const std::string& why) const;

  sim::Simulator& sim_;
  telemetry::Hub* hub_ = nullptr;
  std::int16_t tel_port_ = -1;
  std::string name_;
  bool armed_ = false;
  std::vector<Action> actions_;  // the armed timeline; closures index into it
  // Lookup-only registries (populated before arm, read at apply): ordered
  // maps keep error listings and any future iteration deterministic.
  std::map<std::string, net::MultiQueueQdisc*> qdiscs_;
  std::map<std::string, net::Port*> links_;
  std::map<std::string, net::BernoulliLossQueue*> losses_;
  std::map<std::string, ctrlplane::ControlPlanePolicy*> ctrlplanes_;
  std::map<int, std::vector<transport::FlowSender*>> senders_;
  std::function<void(const Action&)> launch_incast_;
  std::uint64_t applied_ = 0;
};

}  // namespace dynaq::scenario
