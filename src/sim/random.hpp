// Deterministic random number generation for simulations.
#pragma once

#include <cstdint>
#include <random>

namespace dynaq::sim {

// Seeded pseudo-random source. Every experiment owns one Rng so that runs
// are reproducible from the seed alone and independent of call ordering in
// unrelated components.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

  // Uniform double in [0, 1).
  double uniform() { return unit_(engine_); }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  // Exponential variate with the given mean (inter-arrival times of a
  // Poisson process).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  std::uint64_t next_u64() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace dynaq::sim
