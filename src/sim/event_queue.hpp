// Pending-event set for the discrete-event engine.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace dynaq::sim {

using EventId = std::uint64_t;

// A binary-heap pending-event set. Events scheduled for the same timestamp
// fire in insertion order (FIFO tie-break via a monotonically increasing
// sequence number) so runs are fully deterministic.
class EventQueue {
 public:
  EventId push(Time when, std::function<void()> action) {
    const EventId id = next_id_++;
    heap_.push(Entry{when, id, std::move(action)});
    return id;
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  Time next_time() const { return heap_.top().when; }

  // Removes and returns the earliest event's action, advancing `now` to its
  // timestamp. Precondition: !empty().
  std::function<void()> pop(Time& now) {
    now = heap_.top().when;
    // std::priority_queue::top() is const; the action is moved out via a
    // const_cast-free copy of the entry by re-wrapping with mutable access.
    std::function<void()> action = std::move(const_cast<Entry&>(heap_.top()).action);
    heap_.pop();
    return action;
  }

 private:
  struct Entry {
    Time when;
    EventId id;
    std::function<void()> action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  EventId next_id_ = 0;
};

}  // namespace dynaq::sim
