// Pending-event set for the discrete-event engine (DESIGN.md §9).
//
// Three pieces replace the old binary heap of std::function:
//
//  * EventPool — a chunked slab arena owned (via EventQueue) by the
//    Simulator. Every scheduled callable lives in a fixed 128-byte slot
//    (EventFn inline storage + generation + freelist link); slots are
//    recycled through a freelist and chunk addresses never move, so
//    callables are constructed once and invoked in place. Generation
//    counters make stale EventIds (fired or cancelled) detectably dead,
//    which is what gives O(1) cancellation.
//
//  * CalendarQueue (the EventQueue below) — a bucketed pending-event set
//    tuned for the simulator's near-monotonic insert pattern. Buckets hold
//    unsorted 24-byte POD entries {when, seq, slot, gen}; the bucket at
//    the cursor is staged into a sorted "front" vector and popped with an
//    index, so steady-state push and pop are O(1). Same-timestamp events
//    fire in schedule order via a global sequence number (FIFO tie-break),
//    independent of bucket geometry — rebuilds and width changes cannot
//    reorder ties, so runs are fully deterministic.
//
//  * FiredEvent — a move-only handle returned by pop(): invokes the
//    callable in place in its slot and recycles the slot on destruction
//    (exception-safe: a throwing event still releases its slot).
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/time.hpp"

namespace dynaq::sim {

// Handle to a pending event: (generation << 32) | slot index. Generations
// are odd while the event is pending, so a valid id is never kNoEvent.
using EventId = std::uint64_t;
inline constexpr EventId kNoEvent = 0;

// Slab arena of event slots. Chunk addresses are stable for the arena's
// lifetime, so a callable may schedule further events (growing the arena)
// while it is being invoked in place.
class EventPool {
 public:
  static constexpr std::uint32_t kChunkShift = 8;  // 256 slots per chunk
  static constexpr std::uint32_t kChunkSlots = 1u << kChunkShift;
  static constexpr std::uint32_t kNone = 0xffffffffu;

  struct Slot {
    EventFn fn;
    std::uint32_t gen = 0;  // even = free, odd = pending; bumped on release
    std::uint32_t next_free = kNone;
  };
  static_assert(sizeof(Slot) == 128, "event slot should be two cache lines");

  // Acquires a slot and constructs `f` in it. Returns the slot index; the
  // slot's generation is odd (= pending) afterwards.
  template <typename F>
  std::uint32_t acquire(F&& f) {
    if (free_head_ == kNone) add_chunk();
    const std::uint32_t idx = free_head_;
    Slot& s = slot(idx);
    free_head_ = s.next_free;
    try {
      s.fn.emplace(std::forward<F>(f));
    } catch (...) {
      s.next_free = free_head_;  // roll the slot back onto the freelist
      free_head_ = idx;
      throw;
    }
    ++s.gen;  // even (free) -> odd (pending)
    if constexpr (!EventFn::fits_inline<std::remove_cvref_t<F>>()) ++heap_fallbacks_;
    ++live_;
    return idx;
  }

  std::uint32_t generation(std::uint32_t idx) const { return slot(idx).gen; }

  // True when `gen` names the currently pending occupancy of `idx`.
  bool live(std::uint32_t idx, std::uint32_t gen) const {
    return (gen & 1u) != 0 && idx < total_ && slot(idx).gen == gen;
  }

  // Firing protocol: begin_fire() retires the id (so the event cannot be
  // cancelled while running) and returns the slot so the caller can invoke
  // the callable in place without re-resolving the chunk; finish_fire()
  // destroys the callable and recycles the slot.
  Slot& begin_fire(std::uint32_t idx) {
    Slot& s = slot(idx);
    ++s.gen;
    return s;
  }
  void finish_fire(std::uint32_t idx, Slot& s) {
    s.fn.reset();
    recycle(idx, s);
  }

  // O(1) cancellation: destroys the callable and recycles the slot. The
  // queue entry pointing here becomes stale (generation mismatch) and is
  // skipped when reached.
  void destroy_cancelled(std::uint32_t idx) {
    Slot& s = slot(idx);
    ++s.gen;
    s.fn.reset();
    recycle(idx, s);
  }

  std::size_t live_slots() const { return live_; }
  std::size_t capacity() const { return total_; }
  std::uint64_t heap_fallbacks() const { return heap_fallbacks_; }

  // Starts pulling a slot toward the cache without touching it (used to
  // overlap the next event's slot miss with the current event's work).
  void prefetch(std::uint32_t idx) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&slot(idx));
#else
    (void)idx;
#endif
  }

 private:
  Slot& slot(std::uint32_t idx) { return chunks_[idx >> kChunkShift][idx & (kChunkSlots - 1)]; }
  const Slot& slot(std::uint32_t idx) const {
    return chunks_[idx >> kChunkShift][idx & (kChunkSlots - 1)];
  }

  void recycle(std::uint32_t idx, Slot& s) {
    s.next_free = free_head_;
    free_head_ = idx;
    --live_;
  }

  void add_chunk() {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSlots));
    const std::uint32_t base = total_;
    total_ += kChunkSlots;
    // Thread the new chunk onto the freelist, lowest index first.
    for (std::uint32_t i = kChunkSlots; i-- > 0;) {
      Slot& s = chunks_.back()[i];
      s.next_free = free_head_;
      free_head_ = base + i;
    }
  }

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t free_head_ = kNone;
  std::uint32_t total_ = 0;
  std::size_t live_ = 0;
  std::uint64_t heap_fallbacks_ = 0;
};

// Move-only handle to a popped event: operator() invokes the callable in
// place; the destructor recycles the slot (even if the callable threw).
// Holds the resolved Slot* so firing touches the chunk table only once,
// and the event's schedule-order sequence number so the simulator can fold
// the pop stream into a trajectory fingerprint (DESIGN.md §10).
class [[nodiscard]] FiredEvent {
 public:
  FiredEvent(EventPool& pool, std::uint32_t idx, EventPool::Slot& s, std::uint64_t seq)
      : pool_(&pool), slot_(&s), idx_(idx), seq_(seq) {}
  FiredEvent(const FiredEvent&) = delete;
  FiredEvent& operator=(const FiredEvent&) = delete;
  FiredEvent(FiredEvent&& other) noexcept
      : pool_(other.pool_), slot_(other.slot_), idx_(other.idx_), seq_(other.seq_) {
    other.pool_ = nullptr;
  }
  FiredEvent& operator=(FiredEvent&& other) noexcept {
    if (this != &other) {
      if (pool_ != nullptr) pool_->finish_fire(idx_, *slot_);
      pool_ = other.pool_;
      slot_ = other.slot_;
      idx_ = other.idx_;
      seq_ = other.seq_;
      other.pool_ = nullptr;
    }
    return *this;
  }
  ~FiredEvent() {
    if (pool_ != nullptr) pool_->finish_fire(idx_, *slot_);
  }

  // Invokes and destroys the callable in one indirect call; the destructor
  // then only recycles the slot (EventFn::reset on an empty fn is free).
  void operator()() { slot_->fn.consume(); }

  // Global schedule-order sequence number of the popped event — with the
  // pop timestamp this uniquely identifies the trajectory step.
  std::uint64_t seq() const { return seq_; }

 private:
  EventPool* pool_;
  EventPool::Slot* slot_;
  std::uint32_t idx_;
  std::uint64_t seq_;
};

// Calendar-style pending-event set. Events scheduled for the same
// timestamp fire in insertion order (FIFO tie-break via a monotonically
// increasing sequence number) so runs are fully deterministic.
//
// Geometry: absolute slot s covers times [s*width, (s+1)*width). A frozen
// window of nb consecutive slots [window_lo, window_lo+nb) maps onto a
// ring of nb unsorted buckets (slot & (nb-1) is collision-free inside the
// window). Everything earlier than front_end lives in the sorted front_
// staging vector; everything at or past the window lives in overflow_.
// When the ring drains, the window jumps to the earliest overflow slot
// (no empty-bucket years to scan); when the live count outgrows or
// undershoots the ring, the queue rebuilds with a bucket count ~ the live
// count and a width of ~3x the mean event spacing.
class EventQueue {
 public:
  static constexpr std::size_t kMinBuckets = 16;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;

  EventQueue() { buckets_.resize(nb_); }

  template <typename F>
  EventId push(Time when, F&& action) {
    const std::uint32_t idx = pool_.acquire(std::forward<F>(action));
    const std::uint32_t gen = pool_.generation(idx);
    insert(Entry{when, seq_++, idx, gen});
    ++size_;
    // Grow to ~2 entries per bucket once occupancy reaches ~8: buckets stay
    // fat enough that staging amortizes the per-bucket work (scan, swap,
    // sort) over several events, and rebuilds stay rare (4x growth apart).
    if (size_ > 8 * nb_ && nb_ < kMaxBuckets) {
      rebuild(std::min(kMaxBuckets, std::bit_ceil(size_ / 2)));
    }
    return make_id(idx, gen);
  }

  // Cancels a pending event in O(1). Returns true iff `id` named a
  // pending event (not yet fired, not already cancelled); the callable is
  // destroyed immediately and the event will not fire.
  bool cancel(EventId id) {
    const auto idx = static_cast<std::uint32_t>(id & 0xffffffffu);
    const auto gen = static_cast<std::uint32_t>(id >> 32);
    if (!pool_.live(idx, gen)) return false;
    pool_.destroy_cancelled(idx);
    --size_;
    ++cancelled_;
    ++stale_;  // the filed Entry is now dead; dropped when next scanned
    return true;
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  // Timestamp of the earliest pending event. Precondition: !empty().
  Time next_time() {
    skim();
    return front_[front_head_].when;
  }

  // Removes the earliest event, advancing `now` to its timestamp. Invoke
  // the returned handle to run the callable. Precondition: !empty().
  FiredEvent pop(Time& now) {
    skim();
    const Entry e = front_[front_head_++];
    now = e.when;
    --size_;
    EventPool::Slot& s = pool_.begin_fire(e.slot);
    compact_front();
    // Overlap the next event's slot fetch with this event's execution.
    if (front_head_ < front_.size()) pool_.prefetch(front_[front_head_].slot);
    return FiredEvent{pool_, e.slot, s, e.seq};
  }

  // Engine statistics for the perf harness and tests.
  std::uint64_t cancelled() const { return cancelled_; }
  std::uint64_t heap_fallbacks() const { return pool_.heap_fallbacks(); }
  std::size_t arena_capacity() const { return pool_.capacity(); }
  std::size_t bucket_count() const { return nb_; }
  Time bucket_width() const { return width_; }

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  static_assert(sizeof(Entry) == 24, "queue entries should stay small PODs");

  static bool earlier(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  static EventId make_id(std::uint32_t idx, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | idx;
  }

  std::int64_t slot_of(Time when) const { return when / width_; }

  void insert(const Entry& e) {
    if (e.when < front_end_) {
      // Belongs to the already-staged region: keep front_ sorted. The
      // common case (an event for the current slot, largest seq so far)
      // appends at the end; self-rescheduling chains hit this path on
      // every push.
      if (front_.empty() || !earlier(e, front_.back())) {
        front_.push_back(e);
        return;
      }
      const auto at = std::lower_bound(front_.begin() + static_cast<std::ptrdiff_t>(front_head_),
                                       front_.end(), e, earlier);
      front_.insert(at, e);
      return;
    }
    const std::int64_t s = slot_of(e.when);
    if (s < window_lo_ + static_cast<std::int64_t>(nb_)) {
      auto& bucket = buckets_[static_cast<std::size_t>(s) & (nb_ - 1)];
      // First touch reserves the steady-state depth in one allocation
      // instead of growing 1 -> 2 -> 4 -> 8.
      if (bucket.capacity() == 0) bucket.reserve(8);
      bucket.push_back(e);
      ++bucketed_;
    } else {
      overflow_.push_back(e);
    }
  }

  // Ensures front_[front_head_] is the earliest live (uncancelled) entry.
  // Precondition: size_ > 0. With no stale entries anywhere (the common
  // case), this costs one bounds check — no slot-generation probe.
  void skim() {
    for (;;) {
      if (front_head_ >= front_.size()) {
        refill_front();
      }
      if (stale_ == 0) return;
      const Entry& e = front_[front_head_];
      if (pool_.live(e.slot, e.gen)) return;
      ++front_head_;  // stale: cancelled after being scheduled
      --stale_;
    }
  }

  // Keeps the staged vector from accumulating a drained prefix forever
  // when inserts land in the staged region as fast as pops retire it
  // (self-rescheduling chains). Amortized O(1): an erase moves at most as
  // many entries as the pops that preceded it.
  void compact_front() {
    if (front_head_ == front_.size()) {
      front_.clear();
      front_head_ = 0;
    } else if (front_head_ >= 1024 && 2 * front_head_ >= front_.size()) {
      front_.erase(front_.begin(), front_.begin() + static_cast<std::ptrdiff_t>(front_head_));
      front_head_ = 0;
    }
  }

  // Stages the next non-empty bucket (or overflow region) into front_.
  // Precondition: at least one entry exists outside the drained front_.
  void refill_front() {
    front_.clear();
    front_head_ = 0;
    for (;;) {
      if (bucketed_ == 0) {
        rebase_from_overflow();
        // A shrink rebuild inside the rebase realigns front_end_ upward and
        // may stage entries straight into front_ — they are already the
        // earliest pending events, so clearing or rescanning would lose or
        // reorder them.
        if (!front_.empty()) return;
        continue;
      }
      // Scan the frozen window; bucketed_ > 0 guarantees a hit before the
      // window ends.
      for (;;) {
        auto& bucket = buckets_[static_cast<std::size_t>(cursor_) & (nb_ - 1)];
        ++cursor_;
        if (!bucket.empty()) {
          bucketed_ -= bucket.size();
          front_.swap(bucket);
          std::sort(front_.begin(), front_.end(), earlier);
          front_end_ = cursor_ * width_;
          // The staged slots are scattered across the pool; start pulling
          // them in now so the misses overlap instead of serializing one
          // per pop.
          const std::size_t lookahead = std::min<std::size_t>(front_.size(), 16);
          for (std::size_t i = 0; i < lookahead; ++i) pool_.prefetch(front_[i].slot);
          return;
        }
      }
    }
  }

  // The ring is empty: jump the window to the earliest overflow slot and
  // pull the overflow entries that now fit. Entries cancelled since they
  // were filed are dropped during the scan (each stale entry is visited at
  // most once here, keeping cancellation amortized O(1)). Shrinks the ring
  // first when the live count has fallen far below it.
  void rebase_from_overflow() {
    if (nb_ > kMinBuckets && size_ < nb_ / 8) {
      rebuild(std::max(kMinBuckets, std::bit_ceil(4 * std::max<std::size_t>(size_, 1))));
      return;
    }
    std::size_t kept = 0;
    std::int64_t min_slot = 0;
    for (const Entry& e : overflow_) {
      if (stale_ != 0 && !pool_.live(e.slot, e.gen)) {
        --stale_;
        continue;
      }
      const std::int64_t s = slot_of(e.when);
      min_slot = (kept == 0) ? s : std::min(min_slot, s);
      overflow_[kept++] = e;
    }
    overflow_.resize(kept);
    // size_ > 0 with an empty ring and drained front_ implies a live
    // overflow entry survived the purge.
    window_lo_ = cursor_ = min_slot;
    front_end_ = cursor_ * width_;
    take_overflow_into_window();
  }

  void take_overflow_into_window() {
    const std::int64_t window_hi = window_lo_ + static_cast<std::int64_t>(nb_);
    std::size_t kept = 0;
    for (Entry& e : overflow_) {
      if (stale_ != 0 && !pool_.live(e.slot, e.gen)) {
        --stale_;
        continue;
      }
      const std::int64_t s = slot_of(e.when);
      if (s < window_hi) {
        buckets_[static_cast<std::size_t>(s) & (nb_ - 1)].push_back(e);
        ++bucketed_;
      } else {
        overflow_[kept++] = e;
      }
    }
    overflow_.resize(kept);
  }

  // Re-buckets everything outside front_ with `new_nb` buckets and a
  // width fitted to the current population. Never reorders anything:
  // ordering is decided at pop time by (when, seq) alone.
  void rebuild(std::size_t new_nb) {
    scratch_.clear();
    for (auto& bucket : buckets_) {
      for (const Entry& e : bucket) {
        if (stale_ != 0 && !pool_.live(e.slot, e.gen)) {
          --stale_;
          continue;
        }
        scratch_.push_back(e);
      }
      bucket.clear();
    }
    for (const Entry& e : overflow_) {
      if (stale_ != 0 && !pool_.live(e.slot, e.gen)) {
        --stale_;
        continue;
      }
      scratch_.push_back(e);
    }
    overflow_.clear();
    bucketed_ = 0;

    width_ = fitted_width(new_nb);
    nb_ = new_nb;
    buckets_.resize(nb_);
    // Realign the window to the new width, just past the staged region.
    cursor_ = window_lo_ = (front_end_ + width_ - 1) / width_;
    front_end_ = cursor_ * width_;

    for (const Entry& e : scratch_) insert(e);
  }

  // Width ~ 3x the mean spacing of the entries in scratch_ (so the steady
  // state holds a few events per bucket), floored so `new_nb` slots cover
  // the whole gathered span — otherwise a dense far-flung population would
  // round-trip through overflow_ once per window pass. Deterministic:
  // depends only on queue contents.
  Time fitted_width(std::size_t new_nb) const {
    if (scratch_.size() < 2) return width_;
    Time lo = scratch_.front().when;
    Time hi = lo;
    for (const Entry& e : scratch_) {
      lo = std::min(lo, e.when);
      hi = std::max(hi, e.when);
    }
    if (hi == lo) return width_;  // one timestamp: any width works
    Time per = (hi - lo) / static_cast<Time>(scratch_.size() - 1);
    per = std::min(per, kSecond);  // keep nb*width far from Time overflow
    const Time span_per_slot = (hi - lo) / static_cast<Time>(new_nb) + 1;
    return std::max({Time{1}, 3 * per, span_per_slot});
  }

  // Calendar state. Invariants: every pending entry with when < front_end_
  // is in front_[front_head_..]; ring entries occupy absolute slots in
  // [cursor_, window_lo_ + nb_); overflow entries lie at or past the
  // window. front_end_ == cursor_ * width_ and only ever grows.
  std::vector<std::vector<Entry>> buckets_;
  std::size_t nb_ = kMinBuckets;
  Time width_ = kMicrosecond;
  std::int64_t window_lo_ = 0;
  std::int64_t cursor_ = 0;
  std::size_t bucketed_ = 0;  // entries (live + stale) in the ring
  std::vector<Entry> overflow_;
  std::vector<Entry> front_;
  std::size_t front_head_ = 0;
  Time front_end_ = 0;
  std::vector<Entry> scratch_;  // rebuild workspace, kept to reuse capacity

  std::uint64_t seq_ = 0;
  std::size_t size_ = 0;   // live (scheduled - fired - cancelled)
  std::size_t stale_ = 0;  // cancelled entries still filed somewhere
  std::uint64_t cancelled_ = 0;
  EventPool pool_;
};

}  // namespace dynaq::sim
