// Discrete-event simulator.
//
// A single-threaded event loop with an integer picosecond clock. All model
// components hold a reference to the Simulator that owns their timeline;
// there is no global simulator instance, so tests can run many independent
// simulations in one process.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace dynaq::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current simulation time. Monotonically non-decreasing.
  Time now() const { return now_; }

  // Schedules `action` at absolute time `when`. Scheduling in the past is a
  // programming error and throws.
  EventId schedule_at(Time when, std::function<void()> action) {
    if (when < now_) throw std::logic_error("Simulator: scheduling into the past");
    return events_.push(when, std::move(action));
  }

  // Schedules `action` `delay` after the current time.
  EventId schedule_in(Time delay, std::function<void()> action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  // Runs until the pending-event set is empty or stop() is called.
  void run() {
    running_ = true;
    while (running_ && !events_.empty()) step();
    running_ = false;
  }

  // Runs until simulated time reaches `deadline` (events at exactly
  // `deadline` are executed), the event set drains, or stop() is called.
  void run_until(Time deadline) {
    running_ = true;
    while (running_ && !events_.empty() && events_.next_time() <= deadline) step();
    running_ = false;
    if (now_ < deadline && events_.empty()) now_ = deadline;
  }

  // Stops the run loop after the current event returns.
  void stop() { running_ = false; }

  std::uint64_t events_processed() const { return processed_; }
  std::size_t events_pending() const { return events_.size(); }

 private:
  void step() {
    auto action = events_.pop(now_);
    ++processed_;
    action();
  }

  EventQueue events_;
  Time now_ = 0;
  bool running_ = false;
  std::uint64_t processed_ = 0;
};

}  // namespace dynaq::sim
