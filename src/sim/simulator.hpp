// Discrete-event simulator.
//
// A single-threaded event loop with an integer picosecond clock. All model
// components hold a reference to the Simulator that owns their timeline;
// there is no global simulator instance, so tests can run many independent
// simulations in one process.
//
// Scheduling is allocation-free on the hot path (DESIGN.md §9): callables
// go straight into the Simulator's event arena (EventPool slots with
// inline storage — no std::function, no per-event heap allocation) and the
// pending-event set is a calendar queue with O(1) push/pop and O(1)
// cancellation. Determinism contract: events at the same timestamp fire in
// the order they were scheduled.
#pragma once

#include <concepts>
#include <cstdint>
#include <stdexcept>
#include <utility>

#include "sim/event_queue.hpp"
#include "sim/fingerprint.hpp"
#include "sim/time.hpp"

namespace dynaq::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current simulation time. Monotonically non-decreasing.
  Time now() const { return now_; }

  // Schedules `action` (any move-constructible callable) at absolute time
  // `when`. Scheduling in the past is a programming error and throws. The
  // returned id stays valid until the event fires or is cancelled.
  template <typename F>
    requires std::invocable<std::remove_cvref_t<F>&>
  EventId schedule_at(Time when, F&& action) {
    if (when < now_) throw std::logic_error("Simulator: scheduling into the past");
    return events_.push(when, std::forward<F>(action));
  }

  // Schedules `action` `delay` after the current time.
  template <typename F>
    requires std::invocable<std::remove_cvref_t<F>&>
  EventId schedule_in(Time delay, F&& action) {
    return schedule_at(now_ + delay, std::forward<F>(action));
  }

  // Cancels a pending event in O(1): the callable is destroyed now and
  // will not fire. Returns false when `id` is no longer pending (already
  // fired, already cancelled, or currently executing).
  bool cancel(EventId id) { return events_.cancel(id); }

  // Runs until the pending-event set is empty or stop() is called.
  void run() {
    running_ = true;
    while (running_ && !events_.empty()) step();
    running_ = false;
  }

  // Runs until simulated time reaches `deadline` (events at exactly
  // `deadline` are executed), the event set drains, or stop() is called.
  void run_until(Time deadline) {
    running_ = true;
    while (running_ && !events_.empty() && events_.next_time() <= deadline) step();
    running_ = false;
    if (now_ < deadline && events_.empty()) now_ = deadline;
  }

  // Stops the run loop after the current event returns.
  void stop() { running_ = false; }

  std::uint64_t events_processed() const { return processed_; }
  std::size_t events_pending() const { return events_.size(); }
  std::uint64_t events_cancelled() const { return events_.cancelled(); }

  // Event-arena statistics (perf-regression harness, DESIGN.md §9):
  // callables too large for a slot's inline buffer fall back to the heap;
  // the hot path is expected to keep that count at zero.
  std::uint64_t event_heap_fallbacks() const { return events_.heap_fallbacks(); }
  std::size_t event_arena_slots() const { return events_.arena_capacity(); }

  // Trajectory fingerprint (DESIGN.md §10): when enabled, every popped
  // event folds (when, seq) into an FNV-1a digest — one guarded branch per
  // pop, off by default so the event-engine perf budgets are unaffected.
  // Observation only: enabling it never perturbs the simulation.
  void enable_trajectory_fingerprint(bool on = true) { fingerprint_pops_ = on; }
  bool trajectory_fingerprint_enabled() const { return fingerprint_pops_; }
  std::uint64_t trajectory_fingerprint() const { return pop_fingerprint_; }

 private:
  void step() {
    FiredEvent event = events_.pop(now_);
    ++processed_;
    if (fingerprint_pops_) {
      pop_fingerprint_ =
          fnv1a_u64(fnv1a_u64(pop_fingerprint_, static_cast<std::uint64_t>(now_)), event.seq());
    }
    event();
  }

  EventQueue events_;
  Time now_ = 0;
  bool running_ = false;
  bool fingerprint_pops_ = false;
  std::uint64_t processed_ = 0;
  std::uint64_t pop_fingerprint_ = kFnv1aOffset;
};

}  // namespace dynaq::sim
