// Simulation time representation.
//
// The simulator uses a signed 64-bit integer clock in picoseconds. At
// 100 Gbps a 64-byte frame serializes in 5.12 ns, so nanosecond resolution
// would introduce ~2% rounding error on the smallest packets; picoseconds
// are exact for every rate and packet size used in the DynaQ evaluation
// while still covering ~106 days of simulated time.
#pragma once

#include <cstdint>

namespace dynaq {

// Picoseconds since simulation start.
using Time = std::int64_t;

inline constexpr Time kPicosecond = 1;
inline constexpr Time kNanosecond = 1'000;
inline constexpr Time kMicrosecond = 1'000'000;
inline constexpr Time kMillisecond = 1'000'000'000;
inline constexpr Time kSecond = 1'000'000'000'000;

constexpr Time picoseconds(std::int64_t v) { return v * kPicosecond; }
constexpr Time nanoseconds(std::int64_t v) { return v * kNanosecond; }
constexpr Time microseconds(std::int64_t v) { return v * kMicrosecond; }
constexpr Time milliseconds(std::int64_t v) { return v * kMillisecond; }
constexpr Time seconds(std::int64_t v) { return v * kSecond; }

// Fractional constructors for configuration convenience (e.g. 0.5 s).
constexpr Time seconds(double v) { return static_cast<Time>(v * static_cast<double>(kSecond)); }
constexpr Time milliseconds(double v) {
  return static_cast<Time>(v * static_cast<double>(kMillisecond));
}
constexpr Time microseconds(double v) {
  return static_cast<Time>(v * static_cast<double>(kMicrosecond));
}

constexpr double to_seconds(Time t) { return static_cast<double>(t) / static_cast<double>(kSecond); }
constexpr double to_milliseconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}
constexpr double to_microseconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

// Time to serialize `bytes` onto a link of `bits_per_second` capacity.
// Rounded to the nearest picosecond; exact for all practical rates.
constexpr Time transmission_time(std::int64_t bytes, double bits_per_second) {
  return static_cast<Time>(static_cast<double>(bytes) * 8.0 /
                               bits_per_second * static_cast<double>(kSecond) +
                           0.5);
}

}  // namespace dynaq
