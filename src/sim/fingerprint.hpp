// FNV-1a 64-bit folding primitives for trajectory fingerprints
// (DESIGN.md §10). The engine folds every popped event's (when, seq) pair
// into a running digest when fingerprinting is enabled, and the layers
// above (telemetry::Hub event bus, check::TrajectoryHash oracle) reuse the
// same primitive so one hash algorithm covers the whole determinism
// contract. Everything is constexpr and allocation-free.
#pragma once

#include <cstdint>

namespace dynaq::sim {

inline constexpr std::uint64_t kFnv1aOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001b3ull;

constexpr std::uint64_t fnv1a_byte(std::uint64_t h, std::uint8_t b) {
  return (h ^ static_cast<std::uint64_t>(b)) * kFnv1aPrime;
}

// Folds the 8 bytes of `x` (little-endian order) into the digest `h`.
constexpr std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h = fnv1a_byte(h, static_cast<std::uint8_t>(x & 0xffu));
    x >>= 8;
  }
  return h;
}

}  // namespace dynaq::sim
