// Move-only type-erased event callable with inline storage.
//
// The discrete-event engine fires millions of closures per simulated
// second; wrapping each one in a std::function heap-allocates as soon as
// the capture outgrows the library's tiny SBO (16 bytes in libstdc++ — a
// single captured net::Packet is ~6x that). EventFn stores the callable
// inline in a fixed-size buffer large enough for every closure the models
// schedule (see the static_assert in net/port.hpp for the biggest one, a
// packet-in-flight hop) and falls back to the heap only for oversized or
// throwing-move callables. The engine counts those fallbacks
// (EventQueue::heap_fallbacks) so the perf harness can assert the hot path
// stays allocation-free.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace dynaq::sim {

// Inline capacity, chosen so an event-pool slot (EventFn + bookkeeping,
// see EventPool) is exactly two cache lines and a lambda capturing a
// net::Packet by value plus one pointer fits without allocating.
inline constexpr std::size_t kEventInlineBytes = 104;
inline constexpr std::size_t kEventInlineAlign = 16;

class EventFn {
 public:
  EventFn() = default;

  template <typename F>
    requires(!std::same_as<std::remove_cvref_t<F>, EventFn> &&
             std::invocable<std::remove_cvref_t<F>&>)
  explicit EventFn(F&& f) {
    emplace(std::forward<F>(f));
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  EventFn(EventFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  ~EventFn() { reset(); }

  // Constructs `f` in place, destroying any held callable first.
  template <typename F>
    requires(!std::same_as<std::remove_cvref_t<F>, EventFn> &&
             std::invocable<std::remove_cvref_t<F>&>)
  void emplace(F&& f) {
    using T = std::remove_cvref_t<F>;
    reset();
    if constexpr (fits_inline<T>()) {
      ::new (static_cast<void*>(storage_)) T(std::forward<F>(f));
      ops_ = &kInlineOps<T>;
    } else {
      ::new (static_cast<void*>(storage_)) T*(new T(std::forward<F>(f)));
      ops_ = &kHeapOps<T>;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const { return ops_ != nullptr; }

  // True when the held callable lives on the heap (oversized capture).
  bool on_heap() const { return ops_ != nullptr && ops_->heap; }

  // Invokes the held callable. Precondition: bool(*this).
  void operator()() { ops_->invoke(storage_); }

  // Invokes the held callable and destroys it (even when it throws),
  // leaving *this empty — one indirect call instead of invoke + destroy.
  // Precondition: bool(*this).
  void consume() {
    const Ops* ops = ops_;
    ops_ = nullptr;
    ops->consume(storage_);
  }

  // Whether a callable of type T avoids the heap fallback.
  template <typename T>
  static constexpr bool fits_inline() {
    return sizeof(T) <= kEventInlineBytes && alignof(T) <= kEventInlineAlign &&
           std::is_nothrow_move_constructible_v<T>;
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*consume)(void*);  // invoke + destroy (destroys even on throw)
    void (*relocate)(void* dst, void* src) noexcept;  // move-construct + destroy src
    void (*destroy)(void*) noexcept;
    bool heap;
  };

  template <typename T>
  static constexpr Ops kInlineOps{
      [](void* p) { (*std::launder(reinterpret_cast<T*>(p)))(); },
      [](void* p) {
        T* t = std::launder(reinterpret_cast<T*>(p));
        struct Guard {
          T* t;
          ~Guard() { t->~T(); }
        } guard{t};
        (*t)();
      },
      [](void* dst, void* src) noexcept {
        T* s = std::launder(reinterpret_cast<T*>(src));
        ::new (dst) T(std::move(*s));
        s->~T();
      },
      [](void* p) noexcept { std::launder(reinterpret_cast<T*>(p))->~T(); },
      /*heap=*/false};

  template <typename T>
  static constexpr Ops kHeapOps{
      [](void* p) { (**std::launder(reinterpret_cast<T**>(p)))(); },
      [](void* p) {
        T* t = *std::launder(reinterpret_cast<T**>(p));
        struct Guard {
          T* t;
          ~Guard() { delete t; }
        } guard{t};
        (*t)();
      },
      [](void* dst, void* src) noexcept { std::memcpy(dst, src, sizeof(T*)); },
      [](void* p) noexcept { delete *std::launder(reinterpret_cast<T**>(p)); },
      /*heap=*/true};

  alignas(kEventInlineAlign) unsigned char storage_[kEventInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace dynaq::sim
