#include "core/dynaq_controller.hpp"

#include <bit>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace dynaq::core {
namespace {

// Splits `total` proportionally to `weights`, assigning the rounding
// remainder to the largest-weight entry so the parts always sum to `total`
// exactly — Eq. (1)/(3) need ΣT_i = B as a hard invariant.
std::vector<std::int64_t> proportional_split(std::int64_t total,
                                             std::span<const double> weights) {
  double sum_w = 0.0;
  for (double w : weights) sum_w += w;
  std::vector<std::int64_t> parts(weights.size());
  std::int64_t assigned = 0;
  std::size_t largest = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    parts[i] = static_cast<std::int64_t>(
        std::floor(static_cast<double>(total) * weights[i] / sum_w));
    assigned += parts[i];
    if (weights[i] > weights[largest]) largest = i;
  }
  parts[largest] += total - assigned;
  return parts;
}

}  // namespace

DynaQController::DynaQController(DynaQConfig config) : config_(std::move(config)) {
  if (config_.buffer_bytes <= 0) throw std::invalid_argument("buffer_bytes must be positive");
  if (config_.weights.empty()) throw std::invalid_argument("need at least one queue");
  if (config_.weights.size() > 64) {
    // Real switch ASICs expose 4-8 service queues per port; the fixed-depth
    // tournament buffer supports up to 64.
    throw std::invalid_argument("at most 64 service queues supported");
  }
  for (double w : config_.weights) {
    if (w <= 0.0) throw std::invalid_argument("weights must be positive");
  }
  if (config_.satisfaction == SatisfactionRule::kWeightedBdp && config_.bdp_bytes <= 0) {
    throw std::invalid_argument("kWeightedBdp needs bdp_bytes");
  }
  reinitialize(config_.buffer_bytes);
}

void DynaQController::reinitialize(std::int64_t buffer_bytes) {
  if (buffer_bytes <= 0) throw std::invalid_argument("buffer_bytes must be positive");
  buffer_bytes_ = buffer_bytes;
  thresholds_ = proportional_split(buffer_bytes_, config_.weights);  // Eq. (1)
  switch (config_.satisfaction) {
    case SatisfactionRule::kBufferShare:
      satisfaction_ = proportional_split(buffer_bytes_, config_.weights);  // Eq. (3)
      break;
    case SatisfactionRule::kWeightedBdp:
      satisfaction_ = proportional_split(config_.bdp_bytes, config_.weights);
      break;
  }
  // Fresh thresholds carry no exchange history: an undo after a
  // re-initialization would corrupt the just-restored Eq. (1) split.
  last_p_ = -1;
}

void DynaQController::set_weights(const std::vector<double>& weights) {
  if (weights.size() != config_.weights.size()) {
    throw std::invalid_argument("set_weights needs one weight per queue");
  }
  for (double w : weights) {
    if (w <= 0.0) throw std::invalid_argument("weights must be positive");
  }
  config_.weights = weights;
  reinitialize(buffer_bytes_);
}

std::int64_t DynaQController::threshold_sum() const {
  std::int64_t sum = 0;
  for (std::int64_t t : thresholds_) sum += t;
  return sum;
}

int DynaQController::find_victim_linear(int p) const {
  int best = -1;
  std::int64_t best_key = std::numeric_limits<std::int64_t>::min();
  for (int i = 0; i < num_queues(); ++i) {
    if (i == p) continue;
    const std::int64_t key = victim_key(i);
    if (best == -1 || key > best_key) {
      best = i;
      best_key = key;
    }
  }
  return best;
}

int DynaQController::find_victim_tournament(int p) const {
  // The paper's loop-free MaxIdx reduction: pairwise comparisons arranged
  // as a balanced tournament, O(log M) depth. The arriving packet's own
  // queue is excluded by giving it a -inf key; ties break toward the lower
  // index so the result matches the linear reference exactly.
  const int m = num_queues();
  if (m <= 1) return -1;
  const auto key = [this, p](int i) {
    return (i < 0 || i == p) ? std::numeric_limits<std::int64_t>::min() : victim_key(i);
  };
  const auto max_idx = [&key](int a, int b) {
    if (a < 0) return b;
    if (b < 0) return a;
    const std::int64_t ka = key(a);
    const std::int64_t kb = key(b);
    if (kb != ka) return kb > ka ? b : a;
    return b < a ? b : a;  // ties resolve to the lower index at every level
  };

  const auto width = std::bit_ceil(static_cast<unsigned>(m));
  int lanes[64];
  for (unsigned i = 0; i < width; ++i) lanes[i] = i < static_cast<unsigned>(m) ? static_cast<int>(i) : -1;
  for (unsigned stride = width / 2; stride >= 1; stride /= 2) {
    for (unsigned i = 0; i < stride; ++i) lanes[i] = max_idx(lanes[i], lanes[i + stride]);
  }
  const int winner = lanes[0];
  return (winner == p || winner < 0) ? -1 : winner;
}

Verdict DynaQController::on_arrival(std::span<const std::int64_t> queue_bytes, int p,
                                    std::int32_t size) {
  assert(queue_bytes.size() == thresholds_.size());
  assert(p >= 0 && p < num_queues());
  assert(size > 0);
  last_p_ = -1;  // only the exchange made by *this* arrival may be undone
  last_drop_cause_ = DropCause::kNone;

  auto& t_p = thresholds_[static_cast<std::size_t>(p)];

  // Line 1: below threshold — DynaQ does nothing.
  if (queue_bytes[static_cast<std::size_t>(p)] + size <= t_p) return Verdict::kAdmit;

  // Line 2: victim selection.
  const int v = config_.loop_free_search ? find_victim_tournament(p) : find_victim_linear(p);
  if (v < 0) {
    last_drop_cause_ = DropCause::kThreshold;  // single-queue port: no buffer to borrow
    return Verdict::kDrop;
  }

  auto& t_v = thresholds_[static_cast<std::size_t>(v)];
  const std::int64_t s_v = satisfaction_[static_cast<std::size_t>(v)];
  const std::int64_t q_v = queue_bytes[static_cast<std::size_t>(v)];

  // Line 3: drop to keep T_v >= 0, and to protect unsatisfied *active*
  // queues (inactive queues may be raided for work conservation).
  if (t_v < size) {
    last_drop_cause_ = DropCause::kVictimTooSmall;
    return Verdict::kDrop;
  }
  if (q_v > 0 && t_v - size < s_v) {
    last_drop_cause_ = DropCause::kVictimUnsatisfied;
    return Verdict::kDrop;
  }

  // Lines 6-7: exchange exactly size(P); decrease before increase keeps
  // ΣT = B at every instant.
  t_v -= size;
  t_p += size;
  last_p_ = p;
  last_v_ = v;
  last_size_ = size;

  if (config_.strict && queue_bytes[static_cast<std::size_t>(p)] + size > t_p) {
    // The packet is dropped anyway, so return the borrowed buffer —
    // otherwise thresholds would drift toward p without carrying packets.
    t_p -= size;
    t_v += size;
    last_p_ = -1;
    last_drop_cause_ = DropCause::kThreshold;
    return Verdict::kDrop;
  }
  return Verdict::kAdjusted;
}

void DynaQController::undo_last_exchange() {
  if (last_p_ < 0) return;
  thresholds_[static_cast<std::size_t>(last_p_)] -= last_size_;
  thresholds_[static_cast<std::size_t>(last_v_)] += last_size_;
  last_p_ = -1;
}

}  // namespace dynaq::core
