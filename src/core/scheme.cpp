#include "core/scheme.hpp"

#include <stdexcept>

namespace dynaq::core {

std::string_view scheme_name(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kDynaQ: return "DynaQ";
    case SchemeKind::kDynaQEvict: return "DynaQ+Evict";
    case SchemeKind::kBestEffort: return "BestEffort";
    case SchemeKind::kPql: return "PQL";
    case SchemeKind::kDynamicThreshold: return "DT";
    case SchemeKind::kLongestQueueDrop: return "LQD";
    case SchemeKind::kHarmonic: return "Harmonic";
    case SchemeKind::kDynaQEcn: return "DynaQ+ECN";
    case SchemeKind::kTcn: return "TCN";
    case SchemeKind::kPmsb: return "PMSB";
    case SchemeKind::kPerQueueEcn: return "PerQueueECN";
    case SchemeKind::kMqEcn: return "MQ-ECN";
  }
  return "?";
}

SchemeKind parse_scheme(std::string_view name) {
  for (SchemeKind k : {SchemeKind::kDynaQ, SchemeKind::kDynaQEvict, SchemeKind::kBestEffort,
                       SchemeKind::kPql, SchemeKind::kDynamicThreshold,
                       SchemeKind::kLongestQueueDrop, SchemeKind::kHarmonic,
                       SchemeKind::kDynaQEcn, SchemeKind::kTcn, SchemeKind::kPmsb,
                       SchemeKind::kPerQueueEcn, SchemeKind::kMqEcn}) {
    if (name == scheme_name(k)) return k;
  }
  throw std::invalid_argument("unknown scheme: " + std::string(name));
}

bool scheme_uses_ecn(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kDynaQEcn:
    case SchemeKind::kTcn:
    case SchemeKind::kPmsb:
    case SchemeKind::kPerQueueEcn:
    case SchemeKind::kMqEcn:
      return true;
    default:
      return false;
  }
}

std::unique_ptr<net::BufferPolicy> make_policy(const SchemeSpec& spec) {
  if (spec.custom_policy) return spec.custom_policy();
  switch (spec.kind) {
    case SchemeKind::kDynaQ:
      return std::make_unique<DynaQPolicy>(spec.dynaq);
    case SchemeKind::kDynaQEvict:
      return std::make_unique<DynaQEvictPolicy>(spec.dynaq);
    case SchemeKind::kPql:
      return std::make_unique<PqlPolicy>();
    case SchemeKind::kDynamicThreshold:
      return std::make_unique<DynamicThresholdPolicy>(spec.dt_alpha);
    case SchemeKind::kLongestQueueDrop:
      return std::make_unique<LongestQueueDropPolicy>();
    case SchemeKind::kHarmonic:
      return std::make_unique<HarmonicPolicy>();
    case SchemeKind::kBestEffort:
    case SchemeKind::kDynaQEcn:  // §III-B3: thresholds frozen, buffer shared
    case SchemeKind::kTcn:
    case SchemeKind::kPmsb:
    case SchemeKind::kPerQueueEcn:
    case SchemeKind::kMqEcn:
      return std::make_unique<BestEffortPolicy>();
  }
  throw std::logic_error("unhandled scheme kind");
}

std::unique_ptr<net::EcnMarker> make_marker(const SchemeSpec& spec) {
  switch (spec.kind) {
    case SchemeKind::kDynaQEcn:
    case SchemeKind::kPmsb:
      return std::make_unique<PmsbEcnMarker>(spec.ecn);
    case SchemeKind::kTcn:
      return std::make_unique<TcnEcnMarker>(spec.ecn);
    case SchemeKind::kPerQueueEcn:
      return std::make_unique<PerQueueEcnMarker>(spec.ecn);
    case SchemeKind::kMqEcn:
      return std::make_unique<MqEcnMarker>(spec.ecn);
    default:
      return nullptr;
  }
}

std::unique_ptr<net::MultiQueueQdisc> make_mq_qdisc(
    sim::Simulator& sim, std::vector<double> weights, std::int64_t buffer_bytes,
    const SchemeSpec& spec, std::unique_ptr<net::SchedulerPolicy> scheduler) {
  std::unique_ptr<net::BufferPolicy> policy =
      spec.custom_policy_sim ? spec.custom_policy_sim(sim) : make_policy(spec);
  if (spec.audit) {
    policy = std::make_unique<check::AuditedBufferPolicy>(std::move(policy), &sim,
                                                          spec.audit_options);
  }
  return std::make_unique<net::MultiQueueQdisc>(sim, std::move(weights), buffer_bytes,
                                                std::move(policy), std::move(scheduler),
                                                make_marker(spec));
}

}  // namespace dynaq::core
