// Hardware cost model for Algorithm 1 (§IV-A of the paper).
//
// The paper argues DynaQ is inexpensive in a switching ASIC: with M service
// queues and the usual 1 GHz clock, one arrival costs at most
//   1 cycle          line 1   threshold comparison q_p + size > T_p
//   log2(M) cycles   line 2   loop-free MaxIdx victim tournament
//   2 cycles         line 3   (q_v>0 && T_v−size<S_v) then || with T_v<size
//                             (the comparisons themselves pipeline)
//   1 cycle          lines 6-7 threshold exchange (no read/write dependency)
// = 7 cycles for M = 8, against a minimum per-packet pipeline latency of
// ~800 cycles (Broadcom Trident 3), i.e. < 1% overhead.
//
// This header reproduces that arithmetic as constexpr functions so the
// claims are testable and the micro-bench can print the model next to the
// measured software cost.
#pragma once

#include <cstdint>

namespace dynaq::core {

struct AsicCostBreakdown {
  int threshold_check = 0;  // Alg. 1 line 1
  int victim_search = 0;    // line 2 (MaxIdx tournament depth)
  int protection = 0;       // line 3
  int exchange = 0;         // lines 6-7

  constexpr int total() const {
    return threshold_check + victim_search + protection + exchange;
  }
};

// ceil(log2(n)) for n >= 1.
constexpr int log2_ceil(int n) {
  int bits = 0;
  int capacity = 1;
  while (capacity < n) {
    capacity *= 2;
    ++bits;
  }
  return bits;
}

// Worst-case per-arrival cost of Algorithm 1 in clock cycles.
constexpr AsicCostBreakdown dynaq_asic_cost(int num_queues) {
  return AsicCostBreakdown{
      .threshold_check = 1,
      .victim_search = log2_ceil(num_queues),
      .protection = 2,
      .exchange = 1,
  };
}

// Fast-path cost (line 1 false, the common case): one comparison.
constexpr int dynaq_asic_fast_path_cycles() { return 1; }

// Overhead relative to the ASIC's minimum per-packet processing latency.
// Broadcom Trident 3 processes a packet in >= 800 cycles at 1 GHz.
inline constexpr int kTrident3MinPacketCycles = 800;

constexpr double dynaq_overhead_fraction(int num_queues,
                                         int pipeline_cycles = kTrident3MinPacketCycles) {
  return static_cast<double>(dynaq_asic_cost(num_queues).total()) /
         static_cast<double>(pipeline_cycles);
}

// Compile-time checks of the paper's headline numbers.
static_assert(dynaq_asic_cost(8).total() == 7, "the paper's 7-cycle claim (M=8)");
static_assert(dynaq_asic_cost(4).total() == 6, "O(2) search for 4-queue ASICs");
static_assert(dynaq_overhead_fraction(8) < 0.01, "the paper's <1% overhead claim");

}  // namespace dynaq::core
