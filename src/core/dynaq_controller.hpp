// DynaQ threshold controller — the paper's Algorithm 1 as a pure,
// simulator-independent component.
//
// Each service queue i owns a packet-dropping threshold T_i with the global
// invariant ΣT_i = B. On an arrival to queue p that would exceed T_p, the
// controller finds the victim queue v with the largest extra buffer
// T_v^ex = T_v − S_v (S_i = B·w_i/Σw is the satisfaction threshold) and
// either exchanges size(P) of threshold from v to p, or drops the packet if
// the victim cannot give buffer without dipping below its own satisfaction
// threshold while active.
//
// Keeping this logic free of any net/ dependency lets the unit tests and
// the ASIC-cost micro-benchmark exercise Algorithm 1 directly.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dynaq::core {

// How the victim queue is chosen. The paper argues for kLargestExtra
// (respects weights); kLargestThreshold is the strawman it rejects,
// retained for the ablation bench.
enum class VictimSelection {
  kLargestExtra,
  kLargestThreshold,
};

// How S_i is derived. The paper uses the full weighted buffer share
// (kBufferShare, Eq. 3) after observing that the theoretically sufficient
// weighted BDP (kWeightedBdp) leaves no headroom for threshold fluctuation.
enum class SatisfactionRule {
  kBufferShare,   // S_i = B · w_i / Σw          (Eq. 3)
  kWeightedBdp,   // S_i = C·RTT · w_i / Σw      (ablation, needs bdp_bytes)
};

struct DynaQConfig {
  std::int64_t buffer_bytes = 0;        // port buffer size B
  std::vector<double> weights;          // one per service queue
  VictimSelection victim = VictimSelection::kLargestExtra;
  SatisfactionRule satisfaction = SatisfactionRule::kBufferShare;
  std::int64_t bdp_bytes = 0;           // only for SatisfactionRule::kWeightedBdp
  bool loop_free_search = true;         // MaxIdx tournament vs reference linear scan
  // Threshold-enforced admission (default): after a successful exchange the
  // packet is admitted only if q_p + size <= T_p, which preserves
  // q_i <= T_i for every queue and therefore Σq <= ΣT = B — the port bound
  // needs no separate check and a below-threshold queue can never be
  // starved by other queues pinning the port full. Setting strict=false
  // gives the looser reading (admit on port occupancy alone after the
  // exchange); the ablation bench shows it starves light queues when every
  // other queue sits exactly at its threshold.
  bool strict = true;
};

enum class Verdict {
  kAdmit,     // below threshold — nothing done (Alg. 1 line 1 false)
  kAdjusted,  // thresholds exchanged, packet may be enqueued (lines 6-7)
  kDrop,      // victim protection triggered (line 4), or strict-mode recheck
};

// Why the most recent on_arrival() returned kDrop — the drop taxonomy the
// telemetry layer reports. kThreshold covers the cases where no usable
// exchange exists at all (no victim queue, or the strict-mode recheck
// rejected the packet even after borrowing).
enum class DropCause {
  kNone,                // last verdict was not kDrop
  kThreshold,           // no victim / strict recheck: arrival exceeds T_p
  kVictimTooSmall,      // line 3a: T_v < size, victim cannot give that much
  kVictimUnsatisfied,   // line 3b: active victim would dip below S_v
};

class DynaQController {
 public:
  explicit DynaQController(DynaQConfig config);

  // Runs Algorithm 1 for a packet of `size` bytes arriving to queue `p`,
  // given the current per-queue occupancies (`queue_bytes[i]` = q_i).
  Verdict on_arrival(std::span<const std::int64_t> queue_bytes, int p, std::int32_t size);

  // Rolls back the threshold exchange performed by the most recent
  // on_arrival() that returned kAdjusted. Used when the switch's physical
  // buffer bound rejects the packet after the policy admitted it; calling
  // it at any other time is a no-op.
  void undo_last_exchange();

  // Re-initializes all thresholds to T_i = B·w_i/Σw (Eq. 1); also used when
  // the operator resizes the port buffer (§III-B3).
  void reinitialize(std::int64_t buffer_bytes);

  // Installs new per-queue weights mid-run (scenario weight_update,
  // DESIGN.md §11) and rebalances via Eq. (1)/(3) — the analogue of the
  // §III-B3 resize path along the weight axis. The proportional split
  // assigns the rounding remainder deterministically, so ΣT = B holds
  // exactly after the rebalance; any pending undo_last_exchange() snapshot
  // is invalidated (there is nothing meaningful left to undo).
  void set_weights(const std::vector<double>& weights);

  int num_queues() const { return static_cast<int>(thresholds_.size()); }
  std::int64_t buffer_bytes() const { return buffer_bytes_; }
  std::int64_t threshold(int i) const { return thresholds_[static_cast<std::size_t>(i)]; }
  std::span<const std::int64_t> thresholds() const { return thresholds_; }
  std::int64_t satisfaction(int i) const { return satisfaction_[static_cast<std::size_t>(i)]; }
  std::int64_t extra(int i) const { return threshold(i) - satisfaction(i); }

  // Queue i is satisfied iff T_i >= S_i (footnote 1 of the paper).
  bool satisfied(int i) const { return threshold(i) >= satisfaction(i); }

  // Introspection for the telemetry layer: why the most recent on_arrival()
  // dropped, and which queue the most recent (not yet undone) exchange
  // borrowed from (-1 when the last arrival made no exchange).
  DropCause last_drop_cause() const { return last_drop_cause_; }
  int last_victim() const { return last_p_ >= 0 ? last_v_ : -1; }

  // ΣT_i; equals buffer_bytes() at all times (checked by tests).
  std::int64_t threshold_sum() const;

  // Victim search: index of the queue (≠ p) with the largest extra buffer.
  // Exposed publicly so tests and the micro-bench can cross-check the
  // loop-free tournament against the linear reference.
  int find_victim_tournament(int p) const;
  int find_victim_linear(int p) const;

 private:
  std::int64_t victim_key(int i) const {
    return config_.victim == VictimSelection::kLargestExtra ? extra(i) : threshold(i);
  }

  DynaQConfig config_;
  std::int64_t buffer_bytes_ = 0;
  std::vector<std::int64_t> thresholds_;
  std::vector<std::int64_t> satisfaction_;

  // Most recent exchange, for undo_last_exchange().
  int last_p_ = -1;
  int last_v_ = -1;
  std::int32_t last_size_ = 0;
  DropCause last_drop_cause_ = DropCause::kNone;
};

}  // namespace dynaq::core
