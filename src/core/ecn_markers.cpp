#include "core/ecn_markers.hpp"

#include <algorithm>
#include <cmath>

namespace dynaq::core {
namespace {

std::int64_t weighted_share(std::int64_t total, const net::MqState& state, int q) {
  return static_cast<std::int64_t>(std::floor(static_cast<double>(total) *
                                              state.queue(q).weight / state.total_weight()));
}

}  // namespace

bool PerQueueEcnMarker::mark_on_enqueue(const net::MqState& state, int q,
                                        const net::Packet& p) {
  const std::int64_t k_i = weighted_share(cfg_.port_threshold_bytes, state, q);
  return state.queue(q).bytes + p.size > k_i;
}

bool PmsbEcnMarker::mark_on_enqueue(const net::MqState& state, int q, const net::Packet& p) {
  const bool port_over = state.port_bytes + p.size > cfg_.port_threshold_bytes;
  const std::int64_t k_i = weighted_share(cfg_.port_threshold_bytes, state, q);
  const bool queue_over = state.queue(q).bytes + p.size > k_i;
  return port_over && queue_over;
}

bool TcnEcnMarker::mark_on_dequeue(const net::MqState& state, int q, const net::Packet& p,
                                   Time sojourn) {
  (void)state, (void)q, (void)p;
  return sojourn > cfg_.sojourn_threshold;
}

bool MqEcnMarker::mark_on_enqueue(const net::MqState& state, int q, const net::Packet& p) {
  // Instantaneous round time: one quantum for every backlogged queue.
  double active_quantum_bytes = 0.0;
  for (const net::ServiceQueue& sq : state.queues) {
    if (sq.bytes > 0) {
      active_quantum_bytes += static_cast<double>(cfg_.quantum_base) * sq.weight;
    }
  }
  const double quantum_q = static_cast<double>(cfg_.quantum_base) * state.queue(q).weight;
  if (active_quantum_bytes < quantum_q) active_quantum_bytes = quantum_q;
  const Time t_round_inst = seconds(active_quantum_bytes * 8.0 / cfg_.capacity_bps);
  t_round_ = t_round_ == 0 ? t_round_inst : (3 * t_round_ + t_round_inst) / 4;

  const double rate_share =
      std::min(quantum_q * 8.0 / to_seconds(t_round_), cfg_.capacity_bps);  // bits/s
  const auto k_i = static_cast<std::int64_t>(rate_share * to_seconds(cfg_.rtt) *
                                             cfg_.lambda / 8.0);
  return state.queue(q).bytes + p.size > k_i;
}

}  // namespace dynaq::core
