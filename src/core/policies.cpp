#include "core/policies.hpp"

#include <cmath>

namespace dynaq::core {

// ----------------------------------------------------------------- PQL --

void PqlPolicy::attach(const net::MqState& state) {
  quotas_.clear();
  const double sum_w = state.total_weight();
  for (const net::ServiceQueue& q : state.queues) {
    quotas_.push_back(static_cast<std::int64_t>(
        std::floor(static_cast<double>(state.buffer_bytes) * q.weight / sum_w)));
  }
}

bool PqlPolicy::admit(const net::MqState& state, int q, const net::Packet& p) {
  return state.queue(q).bytes + p.size <= quotas_[static_cast<std::size_t>(q)];
}

// ------------------------------------------------- Dynamic Threshold --

bool DynamicThresholdPolicy::admit(const net::MqState& state, int q, const net::Packet& p) {
  const double free_buffer =
      pool_ != nullptr ? static_cast<double>(pool_->free_bytes())
                       : static_cast<double>(state.buffer_bytes - state.port_bytes);
  const auto threshold = static_cast<std::int64_t>(alpha_ * free_buffer);
  return state.queue(q).bytes + p.size <= threshold;
}

// ----------------------------------------------------------------- LQD --

int LongestQueueDropPolicy::evict_candidate(const net::MqState& state, int q,
                                            const net::Packet& p) {
  // Push out from the longest queue — but only if it is strictly longer
  // than the arriving queue would be with the packet accepted; otherwise
  // the arrival itself belongs to the longest queue and is the drop victim.
  // Ties go to the lowest index for determinism.
  const std::int64_t arriving = state.queue(q).bytes + p.size;
  int best = -1;
  std::int64_t best_bytes = arriving;
  for (int i = 0; i < state.num_queues(); ++i) {
    if (i == q || state.queue(i).empty()) continue;
    if (state.queue(i).bytes > best_bytes) {
      best = i;
      best_bytes = state.queue(i).bytes;
    }
  }
  return best;
}

// ------------------------------------------------------------ Harmonic --

void HarmonicPolicy::attach(const net::MqState& state) {
  buffer_bytes_ = state.buffer_bytes;
  harmonic_n_ = 0.0;
  for (int i = 1; i <= state.num_queues(); ++i) harmonic_n_ += 1.0 / i;
  lengths_.clear();
  for (const net::ServiceQueue& q : state.queues) lengths_.push_back(q.bytes);
}

std::int64_t HarmonicPolicy::cap_for_rank(int rank) const {
  return static_cast<std::int64_t>(
      std::floor(static_cast<double>(buffer_bytes_) / (rank * harmonic_n_)));
}

int HarmonicPolicy::rank_of(const std::vector<std::int64_t>& lengths, int q) const {
  const auto uq = static_cast<std::size_t>(q);
  int rank = 1;
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    if (i == uq) continue;
    if (lengths[i] > lengths[uq] || (lengths[i] == lengths[uq] && i < uq)) ++rank;
  }
  return rank;
}

bool HarmonicPolicy::admit(const net::MqState& state, int q, const net::Packet& p) {
  // The decision is exactly the enforced-threshold predicate the auditor
  // re-checks: q_p + size ≤ B / (rank(q) · H_n). Accepting can only improve
  // q's rank (longer → smaller rank number → larger cap), so the admitted
  // packet still fits under the post-enqueue threshold.
  return state.queue(q).bytes + p.size <=
         cap_for_rank(rank_of(lengths_, q));
}

void HarmonicPolicy::on_enqueue(const net::MqState& state, int q, const net::Packet& p) {
  (void)state;
  lengths_[static_cast<std::size_t>(q)] += p.size;
}

void HarmonicPolicy::on_dequeue(const net::MqState& state, int q, const net::Packet& p) {
  (void)state;
  lengths_[static_cast<std::size_t>(q)] -= p.size;
}

std::vector<std::int64_t> HarmonicPolicy::thresholds() const {
  std::vector<std::int64_t> caps(lengths_.size(), 0);
  for (std::size_t q = 0; q < lengths_.size(); ++q) {
    caps[q] = cap_for_rank(rank_of(lengths_, static_cast<int>(q)));
  }
  return caps;
}

// --------------------------------------------------------------- DynaQ --

void DynaQPolicy::attach(const net::MqState& state) {
  stale_qlen_.assign(state.queues.size(), 0);
  DynaQConfig cfg;
  cfg.buffer_bytes = state.buffer_bytes;
  for (const net::ServiceQueue& q : state.queues) cfg.weights.push_back(q.weight);
  cfg.victim = options_.victim;
  cfg.satisfaction = options_.satisfaction;
  cfg.bdp_bytes = options_.bdp_bytes;
  cfg.loop_free_search = options_.loop_free_search;
  cfg.strict = options_.strict;
  controller_ = std::make_unique<DynaQController>(std::move(cfg));
}

bool DynaQPolicy::admit(const net::MqState& state, int q, const net::Packet& p) {
  // Snapshot per-queue occupancies for the pure controller. M <= 8 on real
  // switches, so a fixed-size stack buffer avoids allocation on this path.
  // In TNA-emulation mode the snapshot is the stale deq_qdepth feedback
  // instead of the live occupancy (§IV-A2).
  std::int64_t occupancy[64];
  const int m = state.num_queues();
  if (options_.stale_queue_info) {
    for (int i = 0; i < m; ++i) occupancy[i] = stale_qlen_[static_cast<std::size_t>(i)];
  } else {
    for (int i = 0; i < m; ++i) occupancy[i] = state.queue(i).bytes;
  }

  last_exchange_victim_ = -1;
  switch (controller_->on_arrival({occupancy, static_cast<std::size_t>(m)}, q, p.size)) {
    case Verdict::kAdmit:
      return true;
    case Verdict::kAdjusted:
      ++adjustments_;
      last_exchange_victim_ = controller_->last_victim();
      return true;
    case Verdict::kDrop:
      switch (controller_->last_drop_cause()) {
        case DropCause::kVictimTooSmall:
          last_drop_reason_ = telemetry::DropReason::kVictimTooSmall;
          break;
        case DropCause::kVictimUnsatisfied:
          last_drop_reason_ = telemetry::DropReason::kVictimUnsatisfied;
          break;
        case DropCause::kNone:
        case DropCause::kThreshold:
          last_drop_reason_ = telemetry::DropReason::kThreshold;
          break;
      }
      return false;
  }
  return false;
}

void DynaQPolicy::on_weights_changed(const net::MqState& state) {
  std::vector<double> weights;
  weights.reserve(state.queues.size());
  for (const net::ServiceQueue& q : state.queues) weights.push_back(q.weight);
  controller_->set_weights(weights);
  last_exchange_victim_ = -1;  // the rebalance wiped any exchange history
}

void DynaQPolicy::on_dequeue(const net::MqState& state, int q, const net::Packet& p) {
  (void)p;
  // deq_qdepth: the queue's depth observed when a packet leaves it, which
  // is what TNA's egress intrinsic metadata exposes to the feedback loop.
  stale_qlen_[static_cast<std::size_t>(q)] = state.queue(q).bytes;
}

void DynaQPolicy::on_admit_aborted(const net::MqState& state, int q, const net::Packet& p) {
  (void)state, (void)q, (void)p;
  // The port's physical bound rejected the packet after we exchanged
  // thresholds for it; give the buffer back to the victim.
  controller_->undo_last_exchange();
  last_exchange_victim_ = -1;
}

std::vector<std::int64_t> DynaQPolicy::thresholds() const {
  if (!controller_) return {};
  return {controller_->thresholds().begin(), controller_->thresholds().end()};
}

// ------------------------------------------------------- DynaQ+Evict --

int DynaQEvictPolicy::evict_candidate(const net::MqState& state, int q, const net::Packet& p) {
  (void)p;
  // Evict only from queues buffering beyond their guaranteed share: the
  // victim with the largest q_i - S_i surplus gives back buffer it was
  // only lent.
  int best = -1;
  std::int64_t best_surplus = 0;
  for (int i = 0; i < state.num_queues(); ++i) {
    if (i == q || state.queue(i).empty()) continue;
    const std::int64_t surplus = state.queue(i).bytes - controller().satisfaction(i);
    if (surplus > best_surplus) {
      best = i;
      best_surplus = surplus;
    }
  }
  return best;
}

}  // namespace dynaq::core
