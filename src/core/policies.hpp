// Buffer-management policies: DynaQ and every baseline the paper compares
// against or discusses in related work.
#pragma once

#include <cstdint>
#include <memory>

#include "core/dynaq_controller.hpp"
#include "net/buffer_policy.hpp"
#include "net/shared_memory.hpp"

namespace dynaq::core {

// Best-effort shared buffer (the "BestEffort" baseline): any queue may fill
// the port buffer; admission is purely the physical bound, which the port
// already enforces, so this policy always says yes.
class BestEffortPolicy final : public net::BufferPolicy {
 public:
  bool admit(const net::MqState& state, int q, const net::Packet& p) override {
    (void)state, (void)q, (void)p;
    return true;
  }
  std::string_view name() const override { return "besteffort"; }
};

// Per-Queue Length limit (PQL): a static buffer quota B·w_i/Σw per queue.
// Fair but not work-conserving — the paper's second baseline.
class PqlPolicy final : public net::BufferPolicy {
 public:
  void attach(const net::MqState& state) override;
  bool admit(const net::MqState& state, int q, const net::Packet& p) override;
  std::vector<std::int64_t> thresholds() const override { return quotas_; }
  // Static quotas are always enforced; they floor to B·w_i/Σw so their sum
  // may fall short of B — no conservation claim.
  bool enforces_thresholds() const override { return true; }
  std::string_view name() const override { return "pql"; }

 private:
  std::vector<std::int64_t> quotas_;
};

// Classic Dynamic Threshold (Choudhury & Hahne) applied per service queue:
// T(t) = alpha · (B − Σq). Discussed in §II-C as insufficient for per-queue
// fairness; implemented for the ablation bench.
class DynamicThresholdPolicy final : public net::BufferPolicy {
 public:
  // With `pool` set, thresholds derive from the chip-wide free memory
  // (T = alpha * pool free) instead of the port's free share — the
  // shared-buffer switch configuration §II-C warns about.
  explicit DynamicThresholdPolicy(double alpha = 1.0,
                                  const net::SharedMemoryPool* pool = nullptr)
      : alpha_(alpha), pool_(pool) {}
  bool admit(const net::MqState& state, int q, const net::Packet& p) override;
  std::string_view name() const override { return "dt"; }

 private:
  double alpha_;
  const net::SharedMemoryPool* pool_;
};

// Longest-Queue-Drop (Matsakis; 1.5-competitive for shared-buffer output
// queueing — the literature yardstick bench/abl_competitive measures
// against): admit every arrival, and when the buffer is physically full
// push out tail packets of the longest queue. If the arriving queue itself
// would be the longest, the arrival is dropped instead (surfacing as a
// port_full drop, since the policy did admit it).
class LongestQueueDropPolicy final : public net::BufferPolicy {
 public:
  bool admit(const net::MqState& state, int q, const net::Packet& p) override {
    (void)state, (void)q, (void)p;
    return true;
  }
  int evict_candidate(const net::MqState& state, int q, const net::Packet& p) override;
  // No thresholds at all: admission is the physical bound plus push-out, so
  // there is no ΣT = B sum to conserve and nothing to enforce.
  bool conserves_threshold_sum() const override { return false; }
  bool enforces_thresholds() const override { return false; }
  std::string_view name() const override { return "lqd"; }
};

// The Harmonic policy (Addanki, Pacut & Schmid; (2 + ln n)-competitive):
// the i-th longest queue may hold at most B / (i · H_n) bytes, H_n the n-th
// harmonic number — the longest queue gets the biggest cap, so the caps sum
// to B while still guaranteeing every queue a share. Ranks are recomputed
// per admission, deterministically (bytes descending, index ascending).
class HarmonicPolicy final : public net::BufferPolicy {
 public:
  void attach(const net::MqState& state) override;
  bool admit(const net::MqState& state, int q, const net::Packet& p) override;
  void on_buffer_resize(const net::MqState& state) override { attach(state); }
  void on_enqueue(const net::MqState& state, int q, const net::Packet& p) override;
  void on_dequeue(const net::MqState& state, int q, const net::Packet& p) override;
  std::vector<std::int64_t> thresholds() const override;
  // Caps floor to B/(i·H_n), so their sum falls (slightly) short of B — no
  // conservation claim; admission, though, is exactly q_p + size ≤ T_p.
  bool conserves_threshold_sum() const override { return false; }
  bool enforces_thresholds() const override { return true; }
  std::string_view name() const override { return "harmonic"; }

 private:
  // Cap for the queue currently ranked `rank` (1-based; rank 1 = longest).
  std::int64_t cap_for_rank(int rank) const;
  // 1-based rank of queue q under (bytes desc, index asc) — deterministic.
  int rank_of(const std::vector<std::int64_t>& lengths, int q) const;

  std::int64_t buffer_bytes_ = 0;
  double harmonic_n_ = 1.0;             // H_n for the attached queue count
  std::vector<std::int64_t> lengths_;   // mirror of per-queue occupancy, so
                                        // thresholds() works without state
};

// DynaQ: dynamic packet-dropping thresholds per Algorithm 1, delegating to
// the pure DynaQController.
class DynaQPolicy : public net::BufferPolicy {
 public:
  // The controller's weights/buffer are taken from the port state at
  // attach() time; `options` carries the ablation knobs.
  struct Options {
    VictimSelection victim = VictimSelection::kLargestExtra;
    SatisfactionRule satisfaction = SatisfactionRule::kBufferShare;
    std::int64_t bdp_bytes = 0;
    bool loop_free_search = true;
    bool strict = true;  // threshold-enforced admission; see DynaQConfig
    // Tofino/TNA emulation (§IV-A2 of the paper): the ingress pipeline
    // cannot read live queue depths; it sees the `deq_qdepth` of the last
    // dequeued packet, fed back through an extern register. With this set,
    // Algorithm 1 runs on those stale per-queue lengths instead of the
    // true occupancy — the abl_tna_staleness bench quantifies the paper's
    // claim that the inaccuracy is tolerable under round-robin scheduling.
    bool stale_queue_info = false;
  };

  DynaQPolicy() = default;
  explicit DynaQPolicy(Options options) : options_(options) {}

  void attach(const net::MqState& state) override;
  bool admit(const net::MqState& state, int q, const net::Packet& p) override;
  void on_admit_aborted(const net::MqState& state, int q, const net::Packet& p) override;
  // §III-B3: re-initialize all thresholds from the new B via Eq. (1).
  void on_buffer_resize(const net::MqState& state) override {
    controller_->reinitialize(state.buffer_bytes);
  }
  // Scenario weight_update (DESIGN.md §11): rebalance ΣT = B under the new
  // weights without rebuilding the controller (the TNA stale-depth feedback
  // in stale_qlen_ survives the rebalance).
  void on_weights_changed(const net::MqState& state) override;
  // TNA emulation: record deq_qdepth at dequeue time.
  void on_dequeue(const net::MqState& state, int q, const net::Packet& p) override;
  std::vector<std::int64_t> thresholds() const override;
  // ΣT = B is Algorithm 1's core invariant; admission is threshold-enforced
  // in strict mode only (DESIGN.md §4), and TNA staleness makes the live
  // q_p + size ≤ T_p recheck unsound (Algorithm 1 then sees stale depths).
  bool conserves_threshold_sum() const override { return true; }
  bool enforces_thresholds() const override {
    return options_.strict && !options_.stale_queue_info;
  }
  // Telemetry: Algorithm 1's drop causes map one-to-one onto the event
  // taxonomy (DESIGN.md §8); exchanges surface as the borrowed-from queue.
  telemetry::DropReason last_drop_reason() const override { return last_drop_reason_; }
  int last_exchange_victim() const override { return last_exchange_victim_; }
  std::string_view name() const override { return "dynaq"; }

  const DynaQController& controller() const { return *controller_; }
  DynaQController& controller() { return *controller_; }
  std::uint64_t threshold_adjustments() const { return adjustments_; }

 private:
  Options options_;
  std::unique_ptr<DynaQController> controller_;
  std::uint64_t adjustments_ = 0;
  std::vector<std::int64_t> stale_qlen_;  // last deq_qdepth per queue (TNA mode)
  telemetry::DropReason last_drop_reason_ = telemetry::DropReason::kThreshold;
  int last_exchange_victim_ = -1;
};

// DynaQ with packet eviction (extension; the BarberQ idea from the paper's
// related work): when an admitted packet does not physically fit because
// other queues pinned the port full, evict a tail packet from the active
// queue holding the most buffer beyond its satisfaction threshold.
// Removes the port-full starvation races that tail small-flow FCTs under
// plain DynaQ (see bench/abl_eviction).
class DynaQEvictPolicy final : public DynaQPolicy {
 public:
  DynaQEvictPolicy() = default;
  explicit DynaQEvictPolicy(Options options) : DynaQPolicy(options) {}

  int evict_candidate(const net::MqState& state, int q, const net::Packet& p) override;
  std::string_view name() const override { return "dynaq+evict"; }
};

}  // namespace dynaq::core
