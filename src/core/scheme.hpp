// Scheme catalogue: one-stop construction of every buffer-management /
// ECN configuration evaluated in the paper, as a (BufferPolicy, EcnMarker)
// pair installed into a MultiQueueQdisc.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "check/invariant_auditor.hpp"
#include "core/dynaq_controller.hpp"
#include "core/ecn_markers.hpp"
#include "core/policies.hpp"
#include "net/multi_queue_qdisc.hpp"
#include "net/scheduler.hpp"
#include "sim/simulator.hpp"

namespace dynaq::core {

enum class SchemeKind {
  kDynaQ,             // the paper's contribution (drop-based)
  kDynaQEvict,        // extension: DynaQ + BarberQ-style tail eviction
  kBestEffort,        // shared buffer, physical bound only
  kPql,               // static per-queue quota
  kDynamicThreshold,  // classic DT (ablation)
  kLongestQueueDrop,  // LQD push-out (1.5-competitive; oracle baseline)
  kHarmonic,          // Harmonic rank caps ((2+ln n)-competitive; oracle baseline)
  kDynaQEcn,          // DynaQ with ECN transports: frozen thresholds + PMSB marking
  kTcn,               // shared buffer + sojourn-time dequeue marking
  kPmsb,              // shared buffer + port∧queue marking
  kPerQueueEcn,       // shared buffer + per-queue weighted-K marking
  kMqEcn,             // shared buffer + round-time-normalized marking
};

// Human-readable name (also accepted by parse_scheme).
std::string_view scheme_name(SchemeKind kind);
SchemeKind parse_scheme(std::string_view name);
bool scheme_uses_ecn(SchemeKind kind);

struct SchemeSpec {
  SchemeKind kind = SchemeKind::kDynaQ;
  EcnConfig ecn;                     // for the ECN-based kinds
  double dt_alpha = 1.0;             // kDynamicThreshold
  DynaQPolicy::Options dynaq;        // ablation knobs for kDynaQ
  // User extension point: when set, this factory supplies the buffer
  // policy instead of `kind` (one instance per switch port). `kind` still
  // selects the ECN marker, if any.
  std::function<std::unique_ptr<net::BufferPolicy>()> custom_policy;
  // Simulator-aware variant for policies that schedule their own events —
  // the dynaq::ctrlplane control-plane shim needs the port's simulator to
  // run its update/watchdog timers. Only honored by make_mq_qdisc (which
  // owns a simulator); takes precedence over custom_policy.
  std::function<std::unique_ptr<net::BufferPolicy>(sim::Simulator&)> custom_policy_sim;
  // Wrap the policy in check::AuditedBufferPolicy so every admission/
  // eviction/rollback is verified against the buffer-policy contract
  // (DESIGN.md §6). harness::run_*_experiment turns this on by default;
  // audit.throw_on_violation picks fail-fast vs collect.
  bool audit = false;
  check::AuditOptions audit_options;
};

// Builds the buffer policy for `spec` (BestEffort for all pure-ECN schemes,
// since they manage a shared buffer and only differ in marking).
std::unique_ptr<net::BufferPolicy> make_policy(const SchemeSpec& spec);

// Builds the ECN marker for `spec`, or nullptr for drop-based schemes.
std::unique_ptr<net::EcnMarker> make_marker(const SchemeSpec& spec);

// Convenience: a fully configured multi-queue egress buffer.
std::unique_ptr<net::MultiQueueQdisc> make_mq_qdisc(
    sim::Simulator& sim, std::vector<double> weights, std::int64_t buffer_bytes,
    const SchemeSpec& spec, std::unique_ptr<net::SchedulerPolicy> scheduler);

}  // namespace dynaq::core
