// ECN marking schemes: the paper's comparison set (Per-Queue ECN, TCN,
// PMSB) plus MQ-ECN from related work. DynaQ's own ECN mode (§III-B3)
// *is* PMSB marking over a frozen-threshold shared buffer.
#pragma once

#include <cstdint>

#include "net/ecn_marker.hpp"
#include "sim/time.hpp"

namespace dynaq::core {

// Standard marking threshold K = C·RTT·λ, in bytes. The evaluation uses
// K=30 KB at 1 Gbps (DCTCP's experimentally best value on the testbed).
struct EcnConfig {
  std::int64_t port_threshold_bytes = 0;  // K
  double capacity_bps = 0.0;              // C  (MQ-ECN only)
  Time rtt = 0;                           // base RTT (MQ-ECN only)
  double lambda = 1.0;                    // transport coefficient λ (MQ-ECN only)
  std::int64_t quantum_base = 1500;       // DRR quantum for weight 1 (MQ-ECN only)
  Time sojourn_threshold = 0;             // TCN: T = RTT·λ (e.g. 240 µs)
};

// Per-queue instantaneous marking: CE when q_i + size > K_i with
// K_i = K·w_i/Σw. The naive weighted split of the standard threshold.
class PerQueueEcnMarker final : public net::EcnMarker {
 public:
  explicit PerQueueEcnMarker(EcnConfig cfg) : cfg_(cfg) {}
  bool mark_on_enqueue(const net::MqState& state, int q, const net::Packet& p) override;
  std::string_view name() const override { return "perqueue-ecn"; }

 private:
  EcnConfig cfg_;
};

// PMSB (Pan et al., ICDCS'18): per-port marking with selective blindness —
// CE only when the port occupancy exceeds K *and* the arriving packet's
// queue exceeds its weighted share K_i, simultaneously.
class PmsbEcnMarker final : public net::EcnMarker {
 public:
  explicit PmsbEcnMarker(EcnConfig cfg) : cfg_(cfg) {}
  bool mark_on_enqueue(const net::MqState& state, int q, const net::Packet& p) override;
  std::string_view name() const override { return "pmsb"; }

 private:
  EcnConfig cfg_;
};

// TCN (Bai et al., CoNEXT'16): sojourn-time dequeue marking — CE when the
// packet spent longer than T = RTT·λ in the buffer. Works under any
// scheduler because it needs no notion of rounds.
class TcnEcnMarker final : public net::EcnMarker {
 public:
  explicit TcnEcnMarker(EcnConfig cfg) : cfg_(cfg) {}
  bool mark_on_dequeue(const net::MqState& state, int q, const net::Packet& p,
                       Time sojourn) override;
  std::string_view name() const override { return "tcn"; }

 private:
  EcnConfig cfg_;
};

// MQ-ECN (Bai et al., NSDI'16): K_i = min(quantum_i/T_round, C)·RTT·λ where
// T_round is the (smoothed) time for the round-robin scheduler to serve
// every active queue once. We estimate T_round analytically from the
// backlogged set — Σ_active quantum_j · 8 / C — with an EWMA, which matches
// the published scheme's steady state without instrumenting the scheduler.
class MqEcnMarker final : public net::EcnMarker {
 public:
  explicit MqEcnMarker(EcnConfig cfg) : cfg_(cfg) {}
  bool mark_on_enqueue(const net::MqState& state, int q, const net::Packet& p) override;
  Time smoothed_round() const { return t_round_; }
  std::string_view name() const override { return "mq-ecn"; }

 private:
  EcnConfig cfg_;
  Time t_round_ = 0;  // smoothed DRR round time
};

}  // namespace dynaq::core
