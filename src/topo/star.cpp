#include "topo/star.hpp"

#include <string>

#include "ctrlplane/control_plane.hpp"
#include "net/fault_injection.hpp"
#include "scenario/director.hpp"

namespace dynaq::topo {

StarTopology::StarTopology(sim::Simulator& sim, StarConfig config)
    : sim_(sim), config_(std::move(config)) {
  switch_ = std::make_unique<net::Switch>(sim_, /*id=*/0);

  for (int h = 0; h < config_.num_hosts; ++h) {
    // Host NIC: finite drop-tail (the testbed's qdisc rate-limits just
    // below line rate so host-side buffering never drops). With lossy_nics
    // the queue is a rate-0 Bernoulli loss wrapper instead, giving scenario
    // loss windows a scriptable handle.
    std::unique_ptr<net::QueueDisc> nic_queue;
    if (config_.lossy_nics) {
      auto lossy = std::make_unique<net::BernoulliLossQueue>(
          0.0, config_.nic_loss_seed + static_cast<std::uint64_t>(h),
          config_.host_queue_bytes);
      nic_loss_.push_back(lossy.get());
      nic_queue = std::move(lossy);
    } else {
      nic_loss_.push_back(nullptr);
      nic_queue = std::make_unique<net::DropTailQueue>(config_.host_queue_bytes);
    }
    auto nic = std::make_unique<net::Port>(sim_, config_.link_rate_bps, config_.link_delay,
                                           std::move(nic_queue));
    net::Port& nic_ref = *nic;
    hosts_.push_back(std::make_unique<net::Host>(sim_, h, std::move(nic)));
    agents_.push_back(std::make_unique<transport::HostAgent>(*hosts_.back()));

    // Switch egress port toward host h, with the configured multi-queue
    // buffer scheme.
    auto qdisc = core::make_mq_qdisc(sim_, config_.queue_weights, config_.buffer_bytes,
                                     config_.scheme,
                                     make_scheduler(config_.scheduler, config_.quantum_base));
    port_qdiscs_.push_back(qdisc.get());
    auto port = std::make_unique<net::Port>(
        sim_, config_.link_rate_bps * config_.egress_rate_factor, config_.link_delay,
        std::move(qdisc));
    net::Port& port_ref = *port;
    const int idx = switch_->add_port(std::move(port));
    (void)idx;
    net::connect(nic_ref, port_ref);
  }

  // Port i faces host i, so routing is the identity on the destination.
  switch_->set_router([](const net::Packet& p) { return static_cast<int>(p.dst); });
}

void StarTopology::register_scenario_handles(scenario::ScenarioDirector& director) {
  for (int i = 0; i < num_hosts(); ++i) {
    const std::string sw = "sw.p" + std::to_string(i);
    const std::string nic = "h" + std::to_string(i) + ".nic";
    director.register_qdisc(sw, port_qdisc(i));
    director.register_link(sw, fabric().port(i));
    director.register_link(nic, host(i).nic());
    if (nic_loss_[static_cast<std::size_t>(i)] != nullptr) {
      director.register_loss(nic, *nic_loss_[static_cast<std::size_t>(i)]);
    }
    // Control-plane shim handle (DESIGN.md §14), present only when the
    // scheme installed one (possibly under the audit decorator).
    if (ctrlplane::ControlPlanePolicy* shim =
            ctrlplane::find_control_plane(port_qdisc(i).policy())) {
      director.register_ctrlplane(sw + ".ctrl", *shim);
    }
  }
}

}  // namespace dynaq::topo
