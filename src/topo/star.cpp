#include "topo/star.hpp"

namespace dynaq::topo {

StarTopology::StarTopology(sim::Simulator& sim, StarConfig config)
    : sim_(sim), config_(std::move(config)) {
  switch_ = std::make_unique<net::Switch>(sim_, /*id=*/0);

  for (int h = 0; h < config_.num_hosts; ++h) {
    // Host NIC: unlimited drop-tail (the testbed's qdisc rate-limits just
    // below line rate so host-side buffering never drops).
    auto nic = std::make_unique<net::Port>(
        sim_, config_.link_rate_bps, config_.link_delay,
        std::make_unique<net::DropTailQueue>(config_.host_queue_bytes));
    net::Port& nic_ref = *nic;
    hosts_.push_back(std::make_unique<net::Host>(sim_, h, std::move(nic)));
    agents_.push_back(std::make_unique<transport::HostAgent>(*hosts_.back()));

    // Switch egress port toward host h, with the configured multi-queue
    // buffer scheme.
    auto qdisc = core::make_mq_qdisc(sim_, config_.queue_weights, config_.buffer_bytes,
                                     config_.scheme,
                                     make_scheduler(config_.scheduler, config_.quantum_base));
    port_qdiscs_.push_back(qdisc.get());
    auto port = std::make_unique<net::Port>(
        sim_, config_.link_rate_bps * config_.egress_rate_factor, config_.link_delay,
        std::move(qdisc));
    net::Port& port_ref = *port;
    const int idx = switch_->add_port(std::move(port));
    (void)idx;
    net::connect(nic_ref, port_ref);
  }

  // Port i faces host i, so routing is the identity on the destination.
  switch_->set_router([](const net::Packet& p) { return static_cast<int>(p.dst); });
}

}  // namespace dynaq::topo
