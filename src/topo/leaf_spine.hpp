// Non-blocking leaf-spine fabric with per-flow ECMP — the paper's
// large-scale dynamic-flow simulation: 12 leaf switches × 12 spine
// switches, 12 hosts per leaf (144 hosts), all links 10 Gbps.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/scheme.hpp"
#include "net/multi_queue_qdisc.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"
#include "topo/scheduler_factory.hpp"
#include "transport/host_agent.hpp"

namespace dynaq::scenario {
class ScenarioDirector;
}

namespace dynaq::topo {

struct LeafSpineConfig {
  int num_leaves = 12;
  int num_spines = 12;
  int hosts_per_leaf = 12;
  double link_rate_bps = 10e9;
  // One-way propagation per link; the inter-rack base RTT spans 8 link
  // traversals (host→leaf→spine→leaf→host and back). The paper's 85.2 µs
  // base RTT gives 10.65 µs per link.
  Time link_delay = nanoseconds(10'650);
  // Optional egress shaping factor; see StarConfig::egress_rate_factor.
  double egress_rate_factor = 1.0;
  std::int64_t buffer_bytes = 192'000;  // Broadcom Trident+ class, per port
  std::int64_t host_queue_bytes = 1'500'000;  // finite sender NIC queue (see StarConfig)
  std::vector<double> queue_weights = {1, 1, 1, 1, 1, 1, 1, 1};
  core::SchemeSpec scheme;
  SchedulerKind scheduler = SchedulerKind::kSpqOverDrr;
  std::int64_t quantum_base = 1500;
  std::uint64_t ecmp_salt = 0x9e3779b97f4a7c15ULL;
};

class LeafSpineTopology {
 public:
  LeafSpineTopology(sim::Simulator& sim, LeafSpineConfig config);

  int num_hosts() const { return static_cast<int>(hosts_.size()); }
  net::Host& host(int i) { return *hosts_[static_cast<std::size_t>(i)]; }
  transport::HostAgent& agent(int i) { return *agents_[static_cast<std::size_t>(i)]; }

  int leaf_of(int host) const { return host / config_.hosts_per_leaf; }
  net::Switch& leaf(int i) { return *leaves_[static_cast<std::size_t>(i)]; }
  net::Switch& spine(int i) { return *spines_[static_cast<std::size_t>(i)]; }

  // The leaf egress buffer facing host `i` (its downlink bottleneck).
  net::MultiQueueQdisc& downlink_qdisc(int host) {
    return *down_qdiscs_[static_cast<std::size_t>(host)];
  }

  // All multi-queue qdiscs in the fabric (for aggregate drop/mark stats).
  const std::vector<net::MultiQueueQdisc*>& all_qdiscs() const { return all_qdiscs_; }

  // Registers every mutable handle with a scenario director (DESIGN.md
  // §11): per-host downlink qdisc and leaf-egress link "down.p<host>",
  // host NIC link "h<host>.nic".
  void register_scenario_handles(scenario::ScenarioDirector& director);

  const LeafSpineConfig& config() const { return config_; }

 private:
  std::unique_ptr<net::MultiQueueQdisc> new_qdisc();
  int ecmp_spine(std::uint32_t flow) const;

  sim::Simulator& sim_;
  LeafSpineConfig config_;
  std::vector<std::unique_ptr<net::Switch>> leaves_;
  std::vector<std::unique_ptr<net::Switch>> spines_;
  std::vector<std::unique_ptr<net::Host>> hosts_;
  std::vector<std::unique_ptr<transport::HostAgent>> agents_;
  std::vector<net::MultiQueueQdisc*> down_qdiscs_;
  std::vector<net::MultiQueueQdisc*> all_qdiscs_;
};

}  // namespace dynaq::topo
