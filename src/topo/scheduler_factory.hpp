// Scheduler construction shared by topologies and harnesses.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string_view>

#include "net/schedulers.hpp"

namespace dynaq::topo {

enum class SchedulerKind {
  kFifo,
  kSpq,
  kDrr,
  kWrr,
  kSpqOverDrr,  // queue 0 strict-high over DRR for the rest (the paper's SPQ/DRR)
};

inline std::string_view scheduler_kind_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFifo: return "fifo";
    case SchedulerKind::kSpq: return "spq";
    case SchedulerKind::kDrr: return "drr";
    case SchedulerKind::kWrr: return "wrr";
    case SchedulerKind::kSpqOverDrr: return "spq/drr";
  }
  return "?";
}

inline std::unique_ptr<net::SchedulerPolicy> make_scheduler(SchedulerKind kind,
                                                            std::int64_t quantum_base = 1500) {
  switch (kind) {
    case SchedulerKind::kFifo:
      return std::make_unique<net::FifoScheduler>();
    case SchedulerKind::kSpq:
      return std::make_unique<net::SpqScheduler>();
    case SchedulerKind::kDrr:
      return std::make_unique<net::DrrScheduler>(quantum_base);
    case SchedulerKind::kWrr:
      return std::make_unique<net::WrrScheduler>();
    case SchedulerKind::kSpqOverDrr:
      return std::make_unique<net::SpqOverScheduler>(
          std::make_unique<net::DrrScheduler>(quantum_base));
  }
  throw std::logic_error("unknown scheduler kind");
}

}  // namespace dynaq::topo
