// Star (single-switch rack) topology — the paper's testbed and the
// 10/100 Gbps static-flow simulations: N hosts on one switch, every switch
// egress port carrying the configured multi-queue buffer scheme.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/scheme.hpp"
#include "net/multi_queue_qdisc.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"
#include "topo/scheduler_factory.hpp"
#include "transport/host_agent.hpp"

namespace dynaq::net {
class BernoulliLossQueue;
}
namespace dynaq::scenario {
class ScenarioDirector;
}

namespace dynaq::topo {

struct StarConfig {
  int num_hosts = 5;
  double link_rate_bps = 1e9;
  // One-way propagation delay per link. The base RTT is 4× this value
  // (host→switch→host and back) plus serialization.
  Time link_delay = microseconds(std::int64_t{125});
  // Optional switch egress shaping factor (the testbed shaped its qdisc to
  // 99.5% of NIC capacity). With equal host/switch rates the ACK-clocked
  // standing queue already forms at the switch egress, so the default is
  // 1.0; shaving the egress rate instead migrates the standing queue to the
  // sender NIC, hiding the buffer policy under test.
  double egress_rate_factor = 1.0;
  std::int64_t buffer_bytes = 85'000;        // per switch egress port
  // Finite host NIC queue (Linux txqueuelen-style). Without it, slow-start
  // overshoot accumulates unbounded at the sender and the switch buffer
  // policy under test never sees the standing queue.
  std::int64_t host_queue_bytes = 1'500'000;
  std::vector<double> queue_weights = {1, 1, 1, 1};
  core::SchemeSpec scheme;
  SchedulerKind scheduler = SchedulerKind::kDrr;
  std::int64_t quantum_base = 1500;
  // Replace every host NIC queue with a runtime-scriptable Bernoulli loss
  // queue (initial rate 0 — transparent until a scenario loss_window raises
  // it, DESIGN.md §11). Draws are seeded per host from nic_loss_seed so
  // loss placement stays a pure function of the configuration.
  bool lossy_nics = false;
  std::uint64_t nic_loss_seed = 0x10552ULL;
};

class StarTopology {
 public:
  StarTopology(sim::Simulator& sim, StarConfig config);

  int num_hosts() const { return static_cast<int>(hosts_.size()); }
  net::Host& host(int i) { return *hosts_[static_cast<std::size_t>(i)]; }
  transport::HostAgent& agent(int i) { return *agents_[static_cast<std::size_t>(i)]; }
  net::Switch& fabric() { return *switch_; }

  // Multi-queue egress buffer of the switch port facing host `i` — where
  // the bottleneck lives when host `i` is the receiver.
  net::MultiQueueQdisc& port_qdisc(int i) { return *port_qdiscs_[static_cast<std::size_t>(i)]; }

  // Host i's NIC loss queue, or nullptr unless config.lossy_nics is set.
  net::BernoulliLossQueue* nic_loss(int i) { return nic_loss_[static_cast<std::size_t>(i)]; }

  // Registers every mutable handle with a scenario director (DESIGN.md
  // §11): qdisc and switch-egress link "sw.p<i>", host NIC link (and, when
  // lossy, loss queue) "h<i>.nic".
  void register_scenario_handles(scenario::ScenarioDirector& director);

  const StarConfig& config() const { return config_; }

 private:
  sim::Simulator& sim_;
  StarConfig config_;
  std::unique_ptr<net::Switch> switch_;
  std::vector<std::unique_ptr<net::Host>> hosts_;
  std::vector<std::unique_ptr<transport::HostAgent>> agents_;
  std::vector<net::MultiQueueQdisc*> port_qdiscs_;  // owned by the switch ports
  std::vector<net::BernoulliLossQueue*> nic_loss_;  // owned by the host NICs; null when not lossy
};

}  // namespace dynaq::topo
