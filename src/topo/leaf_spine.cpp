#include "topo/leaf_spine.hpp"

#include <string>

#include "scenario/director.hpp"

namespace dynaq::topo {
namespace {

// splitmix64 finalizer — a cheap, well-mixed per-flow ECMP hash.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::unique_ptr<net::MultiQueueQdisc> LeafSpineTopology::new_qdisc() {
  return core::make_mq_qdisc(sim_, config_.queue_weights, config_.buffer_bytes, config_.scheme,
                             make_scheduler(config_.scheduler, config_.quantum_base));
}

int LeafSpineTopology::ecmp_spine(std::uint32_t flow) const {
  return static_cast<int>(mix64(flow ^ config_.ecmp_salt) %
                          static_cast<std::uint64_t>(config_.num_spines));
}

LeafSpineTopology::LeafSpineTopology(sim::Simulator& sim, LeafSpineConfig config)
    : sim_(sim), config_(std::move(config)) {
  const int hpl = config_.hosts_per_leaf;

  for (int l = 0; l < config_.num_leaves; ++l) {
    leaves_.push_back(std::make_unique<net::Switch>(sim_, l));
  }
  for (int s = 0; s < config_.num_spines; ++s) {
    spines_.push_back(std::make_unique<net::Switch>(sim_, 1000 + s));
  }

  // Hosts and leaf downlinks. Leaf port h (h < hpl) faces local host h.
  for (int l = 0; l < config_.num_leaves; ++l) {
    for (int h = 0; h < hpl; ++h) {
      const int host_id = l * hpl + h;
      auto nic = std::make_unique<net::Port>(sim_, config_.link_rate_bps, config_.link_delay,
          std::make_unique<net::DropTailQueue>(config_.host_queue_bytes));
      net::Port& nic_ref = *nic;
      hosts_.push_back(std::make_unique<net::Host>(sim_, host_id, std::move(nic)));
      agents_.push_back(std::make_unique<transport::HostAgent>(*hosts_.back()));

      auto qdisc = new_qdisc();
      down_qdiscs_.push_back(qdisc.get());
      all_qdiscs_.push_back(qdisc.get());
      auto port = std::make_unique<net::Port>(
          sim_, config_.link_rate_bps * config_.egress_rate_factor, config_.link_delay,
          std::move(qdisc));
      net::Port& port_ref = *port;
      leaves_[static_cast<std::size_t>(l)]->add_port(std::move(port));
      net::connect(nic_ref, port_ref);
    }
  }

  // Uplinks: leaf port hpl+s faces spine s; spine port l faces leaf l.
  for (int l = 0; l < config_.num_leaves; ++l) {
    for (int s = 0; s < config_.num_spines; ++s) {
      auto up_qdisc = new_qdisc();
      all_qdiscs_.push_back(up_qdisc.get());
      auto up = std::make_unique<net::Port>(
          sim_, config_.link_rate_bps * config_.egress_rate_factor, config_.link_delay,
          std::move(up_qdisc));
      net::Port& up_ref = *up;
      leaves_[static_cast<std::size_t>(l)]->add_port(std::move(up));

      auto down_qdisc = new_qdisc();
      all_qdiscs_.push_back(down_qdisc.get());
      auto down = std::make_unique<net::Port>(
          sim_, config_.link_rate_bps * config_.egress_rate_factor, config_.link_delay,
          std::move(down_qdisc));
      net::Port& down_ref = *down;
      spines_[static_cast<std::size_t>(s)]->add_port(std::move(down));

      net::connect(up_ref, down_ref);
    }
  }

  for (int l = 0; l < config_.num_leaves; ++l) {
    leaves_[static_cast<std::size_t>(l)]->set_router([this, l, hpl](const net::Packet& p) {
      const int dst = static_cast<int>(p.dst);
      if (leaf_of(dst) == l) return dst % hpl;
      return hpl + ecmp_spine(p.flow);
    });
  }
  for (int s = 0; s < config_.num_spines; ++s) {
    spines_[static_cast<std::size_t>(s)]->set_router([this](const net::Packet& p) {
      return leaf_of(static_cast<int>(p.dst));
    });
  }
}

void LeafSpineTopology::register_scenario_handles(scenario::ScenarioDirector& director) {
  // Leaf port (host % hosts_per_leaf) is host's downlink (see constructor).
  for (int i = 0; i < num_hosts(); ++i) {
    const std::string down = "down.p" + std::to_string(i);
    director.register_qdisc(down, downlink_qdisc(i));
    director.register_link(down, leaf(leaf_of(i)).port(i % config_.hosts_per_leaf));
    director.register_link("h" + std::to_string(i) + ".nic", host(i).nic());
  }
}

}  // namespace dynaq::topo
