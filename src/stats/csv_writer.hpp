// Minimal CSV emission for experiment time series, so bench output can be
// plotted without scraping the pretty-printed tables.
#pragma once

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

namespace dynaq::stats {

class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path) : out_(path) {}

  bool ok() const { return out_.good(); }

  void header(const std::vector<std::string>& columns) { write_cells(columns); }

  void row(std::initializer_list<double> values) {
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (const double v : values) {
      std::ostringstream ss;
      ss << v;
      cells.push_back(ss.str());
    }
    write_cells(cells);
  }

  void row(const std::vector<std::string>& cells) { write_cells(cells); }

 private:
  void write_cells(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) out_ << ',';
      out_ << cells[i];
    }
    out_ << '\n';
  }

  std::ofstream out_;
};

}  // namespace dynaq::stats
