// Order statistics over collected samples.
#pragma once

#include <span>
#include <vector>

namespace dynaq::stats {

// p-th percentile (p in [0,100]) by linear interpolation between closest
// ranks (the "exclusive" method used by numpy's default). The input span is
// copied; the original order is preserved. Returns 0 for an empty input.
double percentile(std::span<const double> samples, double p);

// Arithmetic mean; 0 for an empty input.
double mean(std::span<const double> samples);

// In-place variant for hot paths: sorts `samples` and reads percentiles
// without copying. Each entry of `ps` is a percentile in [0,100].
std::vector<double> percentiles_inplace(std::vector<double>& samples,
                                        std::span<const double> ps);

}  // namespace dynaq::stats
