// Flow completion time collection and size-bucketed summaries.
//
// The paper reports the average FCT of overall flows, small flows
// (<= 100 KB), large flows (> 10 MB), and the 99th-percentile FCT of small
// flows, normalizing each series by DynaQ's value.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace dynaq::stats {

inline constexpr std::int64_t kSmallFlowBytes = 100 * 1000;        // <= 100 KB
inline constexpr std::int64_t kLargeFlowBytes = 10 * 1000 * 1000;  // > 10 MB

struct FlowRecord {
  std::uint64_t flow_id = 0;
  std::int64_t size_bytes = 0;
  Time start = 0;
  Time finish = 0;

  Time fct() const { return finish - start; }
};

// Summary of one FCT distribution, all values in milliseconds.
struct FctSummary {
  std::size_t count = 0;
  double avg_overall_ms = 0.0;
  double avg_small_ms = 0.0;
  double avg_medium_ms = 0.0;
  double avg_large_ms = 0.0;
  double p99_small_ms = 0.0;
  double p99_overall_ms = 0.0;
  std::size_t small_count = 0;
  std::size_t large_count = 0;
};

class FctRecorder {
 public:
  void record(const FlowRecord& r) { records_.push_back(r); }
  void record(std::uint64_t flow_id, std::int64_t size_bytes, Time start, Time finish) {
    records_.push_back(FlowRecord{flow_id, size_bytes, start, finish});
  }

  std::size_t count() const { return records_.size(); }
  const std::vector<FlowRecord>& records() const { return records_; }

  FctSummary summarize() const;

 private:
  std::vector<FlowRecord> records_;
};

}  // namespace dynaq::stats
