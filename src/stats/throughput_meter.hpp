// Windowed throughput measurement, per service queue.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace dynaq::stats {

// Accumulates bytes per (queue, time-window) and reports Gbps series.
// The evaluation measures per-queue throughput every 0.5 s (testbed) or
// 10 ms (simulations); the window length is configurable.
class ThroughputMeter {
 public:
  ThroughputMeter(int num_queues, Time window)
      : num_queues_(num_queues), window_(window) {}

  // Records `bytes` leaving queue `queue` at time `when`.
  void record(int queue, std::int64_t bytes, Time when) {
    const auto w = static_cast<std::size_t>(when / window_);
    if (w >= windows_.size()) windows_.resize(w + 1, std::vector<std::int64_t>(num_queues_, 0));
    windows_[w][static_cast<std::size_t>(queue)] += bytes;
  }

  int num_queues() const { return num_queues_; }
  Time window() const { return window_; }
  std::size_t num_windows() const { return windows_.size(); }

  // Throughput of `queue` during window `w`, in Gbps.
  double gbps(std::size_t w, int queue) const {
    if (w >= windows_.size()) return 0.0;
    return static_cast<double>(windows_[w][static_cast<std::size_t>(queue)]) * 8.0 /
           dynaq::to_seconds(window_) / 1e9;
  }

  // Aggregate throughput across all queues during window `w`, in Gbps.
  double aggregate_gbps(std::size_t w) const {
    double total = 0.0;
    for (int q = 0; q < num_queues_; ++q) total += gbps(w, q);
    return total;
  }

  // Per-queue throughput vector for window `w`, in Gbps.
  std::vector<double> window_gbps(std::size_t w) const {
    std::vector<double> out(static_cast<std::size_t>(num_queues_));
    for (int q = 0; q < num_queues_; ++q) out[static_cast<std::size_t>(q)] = gbps(w, q);
    return out;
  }

  // Mean throughput of `queue` over windows [from, to), in Gbps.
  double mean_gbps(int queue, std::size_t from, std::size_t to) const {
    if (to <= from) return 0.0;
    double total = 0.0;
    for (std::size_t w = from; w < to && w < windows_.size(); ++w) total += gbps(w, queue);
    return total / static_cast<double>(to - from);
  }

 private:
  int num_queues_;
  Time window_;
  std::vector<std::vector<std::int64_t>> windows_;
};

}  // namespace dynaq::stats
