// Fairness metrics used in the DynaQ evaluation.
#pragma once

#include <span>

namespace dynaq::stats {

// Jain's fairness index: (Σx)² / (n·Σx²). Returns 1.0 for a perfectly even
// allocation, 1/n when one member receives everything, and 1.0 for an empty
// or all-zero input (nothing to be unfair about).
double jain_index(std::span<const double> allocations);

// Throughput share of member i: x_i / Σx. Returns 0 when Σx == 0.
double share_of(std::span<const double> allocations, std::size_t i);

}  // namespace dynaq::stats
