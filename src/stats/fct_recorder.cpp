#include "stats/fct_recorder.hpp"

#include "stats/percentile.hpp"

namespace dynaq::stats {

FctSummary FctRecorder::summarize() const {
  FctSummary s;
  s.count = records_.size();
  if (records_.empty()) return s;

  std::vector<double> all_ms;
  std::vector<double> small_ms;
  std::vector<double> medium_ms;
  std::vector<double> large_ms;
  all_ms.reserve(records_.size());
  for (const FlowRecord& r : records_) {
    const double ms = to_milliseconds(r.fct());
    all_ms.push_back(ms);
    if (r.size_bytes <= kSmallFlowBytes) {
      small_ms.push_back(ms);
    } else if (r.size_bytes > kLargeFlowBytes) {
      large_ms.push_back(ms);
    } else {
      medium_ms.push_back(ms);
    }
  }
  s.small_count = small_ms.size();
  s.large_count = large_ms.size();
  s.avg_overall_ms = mean(all_ms);
  s.avg_small_ms = mean(small_ms);
  s.avg_medium_ms = mean(medium_ms);
  s.avg_large_ms = mean(large_ms);
  s.p99_small_ms = percentile(small_ms, 99.0);
  s.p99_overall_ms = percentile(all_ms, 99.0);
  return s;
}

}  // namespace dynaq::stats
