#include "stats/fairness.hpp"

#include <cstddef>

namespace dynaq::stats {

double jain_index(std::span<const double> allocations) {
  if (allocations.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : allocations) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  const double n = static_cast<double>(allocations.size());
  return (sum * sum) / (n * sum_sq);
}

double share_of(std::span<const double> allocations, std::size_t i) {
  double sum = 0.0;
  for (double x : allocations) sum += x;
  if (sum == 0.0 || i >= allocations.size()) return 0.0;
  return allocations[i] / sum;
}

}  // namespace dynaq::stats
