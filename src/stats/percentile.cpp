#include "stats/percentile.hpp"

#include <algorithm>
#include <cmath>

namespace dynaq::stats {
namespace {

double percentile_sorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

double percentile(std::span<const double> samples, double p) {
  std::vector<double> copy(samples.begin(), samples.end());
  std::sort(copy.begin(), copy.end());
  return percentile_sorted(copy, p);
}

double mean(std::span<const double> samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

std::vector<double> percentiles_inplace(std::vector<double>& samples,
                                        std::span<const double> ps) {
  std::sort(samples.begin(), samples.end());
  std::vector<double> out;
  out.reserve(ps.size());
  for (double p : ps) out.push_back(percentile_sorted(samples, p));
  return out;
}

}  // namespace dynaq::stats
