// Per-operation queue length sampling (Fig. 1 / Fig. 4 of the paper record
// 1K sequential per-enqueue/dequeue samples of every queue's occupancy).
// The storage and cadence logic live in telemetry::QueueSeries (DESIGN.md
// §8); this adapter keeps the original stats-layer type for callers that
// sample by hand rather than through a telemetry::Hub.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "telemetry/hub.hpp"

namespace dynaq::stats {

using QueueLengthSample = telemetry::QueueSample;

class QueueLengthSampler {
 public:
  // Starts retaining samples after `skip` recorded operations and keeps at
  // most `capacity` of them, matching the paper's "1K sequential samples at
  // random time" methodology.
  explicit QueueLengthSampler(std::size_t capacity = 1000, std::size_t skip = 0)
      : series_(capacity, skip) {}

  void record(Time when, std::vector<std::int64_t> queue_bytes,
              std::vector<std::int64_t> thresholds = {}) {
    series_.record(when, std::move(queue_bytes), std::move(thresholds));
  }

  bool full() const { return series_.full(); }
  const std::vector<QueueLengthSample>& samples() const { return series_.samples(); }

 private:
  telemetry::QueueSeries series_;
};

}  // namespace dynaq::stats
