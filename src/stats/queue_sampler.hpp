// Per-operation queue length sampling (Fig. 1 / Fig. 4 of the paper record
// 1K sequential per-enqueue/dequeue samples of every queue's occupancy).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace dynaq::stats {

struct QueueLengthSample {
  Time when = 0;
  std::vector<std::int64_t> queue_bytes;     // occupancy per service queue
  std::vector<std::int64_t> thresholds;      // drop threshold per queue (if any)
};

class QueueLengthSampler {
 public:
  // Starts retaining samples after `skip` recorded operations and keeps at
  // most `capacity` of them, matching the paper's "1K sequential samples at
  // random time" methodology.
  explicit QueueLengthSampler(std::size_t capacity = 1000, std::size_t skip = 0)
      : capacity_(capacity), skip_(skip) {}

  void record(Time when, std::vector<std::int64_t> queue_bytes,
              std::vector<std::int64_t> thresholds = {}) {
    if (seen_++ < skip_) return;
    if (samples_.size() >= capacity_) return;
    samples_.push_back(QueueLengthSample{when, std::move(queue_bytes), std::move(thresholds)});
  }

  bool full() const { return samples_.size() >= capacity_; }
  const std::vector<QueueLengthSample>& samples() const { return samples_; }

 private:
  std::size_t capacity_;
  std::size_t skip_;
  std::size_t seen_ = 0;
  std::vector<QueueLengthSample> samples_;
};

}  // namespace dynaq::stats
