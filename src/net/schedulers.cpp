#include "net/schedulers.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace dynaq::net {

// ---------------------------------------------------------------- FIFO --

void FifoScheduler::on_enqueue(const MqState& state, int q) {
  (void)state;
  order_.push_back(q);
}

int FifoScheduler::next_queue(MqState& state) {
  (void)state;
  if (order_.empty()) return -1;
  const int q = order_.front();
  order_.pop_front();
  return q;
}

// ----------------------------------------------------------------- SPQ --

int SpqScheduler::next_queue(MqState& state) {
  for (int q = 0; q < state.num_queues(); ++q) {
    if (!state.queue(q).empty()) return q;
  }
  return -1;
}

// ----------------------------------------------------------------- DRR --

void DrrScheduler::attach(const MqState& state) {
  if (quantum_base_ <= 0) throw std::invalid_argument("DRR quantum must be positive");
  deficits_.assign(static_cast<std::size_t>(state.num_queues()), 0);
  in_list_.assign(static_cast<std::size_t>(state.num_queues()), false);
  active_.clear();
}

std::int64_t DrrScheduler::quantum_for(const MqState& state, int q) const {
  const double w = state.queue(q).weight;
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(std::llround(
                                       static_cast<double>(quantum_base_) * w)));
}

void DrrScheduler::on_enqueue(const MqState& state, int q) {
  (void)state;
  auto idx = static_cast<std::size_t>(q);
  if (idx >= in_list_.size()) {
    // attach() was not called with enough queues; treat as programming error.
    assert(false && "DRR scheduler not attached to this state");
    return;
  }
  if (!in_list_[idx]) {
    in_list_[idx] = true;
    deficits_[idx] = 0;
    active_.push_back(q);
  }
}

int DrrScheduler::next_queue(MqState& state) {
  if (active_.empty()) return -1;
  // Terminates because each pass around the active list strictly increases
  // the front queue's deficit by a positive quantum.
  while (true) {
    const int q = active_.front();
    auto idx = static_cast<std::size_t>(q);
    ServiceQueue& sq = state.queue(q);
    if (sq.empty()) {
      // Defensive: queues are removed from the list when their last packet
      // is scheduled, so an empty queue here indicates external meddling.
      active_.pop_front();
      in_list_[idx] = false;
      deficits_[idx] = 0;
      if (active_.empty()) return -1;
      continue;
    }
    const std::int64_t head = sq.packets.front().size;
    if (deficits_[idx] >= head) {
      deficits_[idx] -= head;
      if (sq.packets.size() == 1) {
        // Queue drains with this dequeue; leave the round.
        active_.pop_front();
        in_list_[idx] = false;
        deficits_[idx] = 0;
      }
      return q;
    }
    deficits_[idx] += quantum_for(state, q);
    active_.pop_front();
    active_.push_back(q);
  }
}

// ----------------------------------------------------------------- WRR --

void WrrScheduler::attach(const MqState& state) {
  const auto n = static_cast<std::size_t>(state.num_queues());
  slots_left_.assign(n, 0);
  in_list_.assign(n, false);
  active_.clear();
  compute_slots(state);
}

void WrrScheduler::compute_slots(const MqState& state) {
  const auto n = static_cast<std::size_t>(state.num_queues());
  slots_per_round_.assign(n, 1);
  double min_w = 0.0;
  for (const ServiceQueue& q : state.queues) {
    if (q.weight > 0.0 && (min_w == 0.0 || q.weight < min_w)) min_w = q.weight;
  }
  if (min_w <= 0.0) min_w = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = state.queues[i].weight;
    slots_per_round_[i] = std::max(1, static_cast<int>(std::lround(w / min_w)));
  }
}

void WrrScheduler::on_weights_changed(const MqState& state) { compute_slots(state); }

void WrrScheduler::on_enqueue(const MqState& state, int q) {
  (void)state;
  auto idx = static_cast<std::size_t>(q);
  if (!in_list_[idx]) {
    in_list_[idx] = true;
    slots_left_[idx] = 0;  // refilled on first visit
    active_.push_back(q);
  }
}

int WrrScheduler::next_queue(MqState& state) {
  if (active_.empty()) return -1;
  while (true) {
    const int q = active_.front();
    auto idx = static_cast<std::size_t>(q);
    ServiceQueue& sq = state.queue(q);
    if (sq.empty()) {
      active_.pop_front();
      in_list_[idx] = false;
      if (active_.empty()) return -1;
      continue;
    }
    if (slots_left_[idx] <= 0) {
      slots_left_[idx] = slots_per_round_[idx];
      active_.pop_front();
      active_.push_back(q);
      continue;
    }
    --slots_left_[idx];
    if (sq.packets.size() == 1) {
      active_.pop_front();
      in_list_[idx] = false;
      slots_left_[idx] = 0;
    }
    return q;
  }
}

}  // namespace dynaq::net
