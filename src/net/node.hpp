// Network nodes: end hosts and switches.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "net/port.hpp"
#include "sim/simulator.hpp"

namespace dynaq::net {

// An end host with a single NIC port. The transport layer registers a
// packet handler; the net layer itself is protocol-agnostic (the whole
// point of DynaQ).
class Host {
 public:
  Host(sim::Simulator& sim, int id, std::unique_ptr<Port> nic)
      : sim_(sim), id_(id), nic_(std::move(nic)) {
    nic_->set_receiver([this](Packet&& p) {
      if (handler_) handler_(std::move(p));
    });
  }

  int id() const { return id_; }
  Port& nic() { return *nic_; }
  const Port& nic() const { return *nic_; }
  sim::Simulator& simulator() { return sim_; }

  void set_packet_handler(std::function<void(Packet&&)> handler) {
    handler_ = std::move(handler);
  }

  // Transmits `p` out of the NIC. Returns false if the NIC queue dropped it
  // (practically never happens with the default unlimited host queue).
  bool send(Packet&& p) { return nic_->send(std::move(p)); }

 private:
  sim::Simulator& sim_;
  int id_;
  std::unique_ptr<Port> nic_;
  std::function<void(Packet&&)> handler_;
};

// An output-queued switch: arriving packets are routed to an egress port
// and enqueued there. Routing is a pluggable function so topologies can
// implement static star forwarding or ECMP hashing.
class Switch {
 public:
  Switch(sim::Simulator& sim, int id) : sim_(sim), id_(id) {}

  int id() const { return id_; }

  // Adds an egress port; returns its index. The port's receiver is wired to
  // this switch's forwarding path.
  int add_port(std::unique_ptr<Port> port) {
    port->set_receiver([this](Packet&& p) { forward(std::move(p)); });
    ports_.push_back(std::move(port));
    return static_cast<int>(ports_.size()) - 1;
  }

  Port& port(int i) { return *ports_[static_cast<std::size_t>(i)]; }
  const Port& port(int i) const { return *ports_[static_cast<std::size_t>(i)]; }
  int num_ports() const { return static_cast<int>(ports_.size()); }

  // `router(packet) -> egress port index`; returning a negative index
  // blackholes the packet (counted in routing_drops()).
  void set_router(std::function<int(const Packet&)> router) { router_ = std::move(router); }

  void forward(Packet&& p) {
    const int out = router_ ? router_(p) : -1;
    if (out < 0 || out >= num_ports()) {
      ++routing_drops_;
      return;
    }
    ports_[static_cast<std::size_t>(out)]->send(std::move(p));
  }

  std::uint64_t routing_drops() const { return routing_drops_; }
  sim::Simulator& simulator() { return sim_; }

 private:
  sim::Simulator& sim_;
  int id_;
  std::vector<std::unique_ptr<Port>> ports_;
  std::function<int(const Packet&)> router_;
  std::uint64_t routing_drops_ = 0;
};

}  // namespace dynaq::net
