// Queueing discipline interface for port egress buffers.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <utility>

#include "net/packet.hpp"
#include "telemetry/hub.hpp"

namespace dynaq::net {

class QueueDisc {
 public:
  virtual ~QueueDisc() = default;

  // Attempts to buffer `p`. Returns false when the packet is dropped.
  virtual bool enqueue(Packet&& p) = 0;

  // Removes the next packet chosen by the discipline, or nullopt when empty.
  virtual std::optional<Packet> dequeue() = 0;

  virtual bool empty() const = 0;
  virtual std::int64_t backlog_bytes() const = 0;

  // Registers this queue on the telemetry hub under `name` and starts
  // emitting typed events (drops with a reason, enqueues, ...). The default
  // is a no-op so un-instrumented disciplines cost nothing; the hub must
  // outlive the queue.
  virtual void attach_telemetry(telemetry::Hub& hub, const std::string& name) {
    (void)hub, (void)name;
  }
};

// Simple shared-FIFO tail-drop queue; used for end-host NICs where the
// paper's testbed relies on the (rate-limited) qdisc rather than the NIC
// ring for buffering.
class DropTailQueue final : public QueueDisc {
 public:
  // `capacity_bytes` <= 0 means unlimited.
  explicit DropTailQueue(std::int64_t capacity_bytes = 0) : capacity_(capacity_bytes) {}

  bool enqueue(Packet&& p) override {
    if (capacity_ > 0 && bytes_ + p.size > capacity_) {
      ++drops_;
      if (hub_ != nullptr && hub_->enabled()) {
        hub_->emit({.kind = telemetry::EventKind::kDrop,
                    .reason = telemetry::DropReason::kNicFull,
                    .port = tel_port_,
                    .queue = static_cast<std::int16_t>(p.queue),
                    .bytes = p.size,
                    .flow = p.flow});
      }
      return false;
    }
    bytes_ += p.size;
    q_.push_back(std::move(p));
    return true;
  }

  std::optional<Packet> dequeue() override {
    if (q_.empty()) return std::nullopt;
    Packet p = std::move(q_.front());
    q_.pop_front();
    bytes_ -= p.size;
    return p;
  }

  bool empty() const override { return q_.empty(); }
  std::int64_t backlog_bytes() const override { return bytes_; }
  std::uint64_t drops() const { return drops_; }

  void attach_telemetry(telemetry::Hub& hub, const std::string& name) override {
    hub_ = &hub;
    tel_port_ = static_cast<std::int16_t>(hub.register_port(name));
  }

 private:
  std::int64_t capacity_;
  std::int64_t bytes_ = 0;
  std::uint64_t drops_ = 0;
  std::deque<Packet> q_;
  telemetry::Hub* hub_ = nullptr;
  std::int16_t tel_port_ = -1;
};

}  // namespace dynaq::net
