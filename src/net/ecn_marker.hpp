// ECN marking policy interface. Markers only decide *whether* to set CE;
// the multi-queue qdisc applies the mark to ECN-capable packets.
#pragma once

#include <string_view>

#include "net/mq_state.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace dynaq::net {

class EcnMarker {
 public:
  virtual ~EcnMarker() = default;

  virtual void attach(const MqState& state) { (void)state; }

  // Enqueue-time marking (DCTCP-style instantaneous queue marking, PMSB,
  // MQ-ECN). Invoked after the admission decision, before the packet is
  // appended; `state` reflects occupancy *without* packet `p`.
  virtual bool mark_on_enqueue(const MqState& state, int q, const Packet& p) {
    (void)state, (void)q, (void)p;
    return false;
  }

  // Dequeue-time marking (TCN sojourn-time marking). `sojourn` is the time
  // the packet spent buffered.
  virtual bool mark_on_dequeue(const MqState& state, int q, const Packet& p, Time sojourn) {
    (void)state, (void)q, (void)p, (void)sojourn;
    return false;
  }

  virtual std::string_view name() const = 0;
};

}  // namespace dynaq::net
