// Packet model.
//
// Packets are small value types; the simulator moves them between
// components rather than reference-counting buffers. Sizes are in bytes on
// the wire (payload + 40 B TCP/IP header).
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace dynaq::net {

inline constexpr std::int32_t kHeaderBytes = 40;
inline constexpr std::int32_t kAckBytes = kHeaderBytes;
inline constexpr std::int32_t kDefaultMss = 1460;       // standard Ethernet
inline constexpr std::int32_t kJumboMss = 8960;         // 9000 B jumbo frames

enum PacketFlags : std::uint16_t {
  kFlagAck = 1u << 0,
  kFlagSyn = 1u << 1,
  kFlagFin = 1u << 2,   // set on the segment carrying the last flow byte
  kFlagEct = 1u << 3,   // ECN-capable transport
  kFlagCe = 1u << 4,    // congestion experienced (set by switches)
  kFlagEce = 1u << 5,   // ECN echo (set by receivers on ACKs)
  kFlagRetx = 1u << 6,  // retransmission (diagnostics only)
};

// A SACK block: received bytes [start, end) above the cumulative ACK.
struct SackBlock {
  std::uint64_t start = 0;
  std::uint64_t end = 0;
};

inline constexpr int kMaxSackBlocks = 3;  // fits a standard TCP option space

struct Packet {
  std::uint32_t flow = 0;       // globally unique flow id
  std::uint32_t src = 0;        // source host id
  std::uint32_t dst = 0;        // destination host id
  std::int32_t size = 0;        // bytes on the wire
  std::int32_t payload = 0;     // application bytes carried
  std::uint64_t seq = 0;        // first payload byte (data) / next expected (ACK)
  std::uint16_t flags = 0;
  std::uint8_t queue = 0;       // service queue (DSCP class) at switch ports
  std::uint8_t num_sack = 0;    // valid entries in sack[] (ACKs only)
  SackBlock sack[kMaxSackBlocks];
  Time enqueued_at = 0;         // stamped by the multi-queue qdisc (sojourn time)

  bool has(PacketFlags f) const { return (flags & f) != 0; }
  void set(PacketFlags f) { flags = static_cast<std::uint16_t>(flags | f); }
  void clear(PacketFlags f) { flags = static_cast<std::uint16_t>(flags & ~f); }
  bool is_ack() const { return has(kFlagAck); }
};

// Builds a data segment for `flow` carrying `payload` bytes starting at
// byte offset `seq`.
inline Packet make_data_packet(std::uint32_t flow, std::uint32_t src, std::uint32_t dst,
                               std::uint64_t seq, std::int32_t payload) {
  Packet p;
  p.flow = flow;
  p.src = src;
  p.dst = dst;
  p.seq = seq;
  p.payload = payload;
  p.size = payload + kHeaderBytes;
  return p;
}

// Builds a (cumulative) ACK for `flow`, acknowledging everything before
// `ack_seq`.
inline Packet make_ack_packet(std::uint32_t flow, std::uint32_t src, std::uint32_t dst,
                              std::uint64_t ack_seq) {
  Packet p;
  p.flow = flow;
  p.src = src;
  p.dst = dst;
  p.seq = ack_seq;
  p.size = kAckBytes;
  p.set(kFlagAck);
  return p;
}

}  // namespace dynaq::net
