// Packet scheduler interface for multi-queue ports.
#pragma once

#include <string_view>

#include "net/mq_state.hpp"

namespace dynaq::net {

class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  virtual void attach(const MqState& state) { (void)state; }

  // Notification that a packet was appended to queue `q` (used to maintain
  // active lists).
  virtual void on_enqueue(const MqState& state, int q) { (void)state, (void)q; }

  // Called when the operator rewrites the per-queue weights mid-run
  // (scenario weight_update, DESIGN.md §11). Schedulers that precompute
  // weight-derived state must refresh it WITHOUT resetting active lists or
  // per-queue progress — buffered packets stay where they are and the
  // in-flight round must keep draining. Schedulers that read MqState
  // weights live (DRR) need nothing.
  virtual void on_weights_changed(const MqState& state) { (void)state; }

  // Chooses the queue whose head packet should be transmitted next and
  // commits any scheduler state for that choice (deficit decrement, slot
  // consumption). Returns -1 when every queue is empty. The caller will
  // remove exactly the head packet of the returned queue.
  virtual int next_queue(MqState& state) = 0;

  virtual std::string_view name() const = 0;
};

}  // namespace dynaq::net
