// Multi-queue egress buffer of a switch port: per-service-queue storage,
// an admission (buffer-management) policy, a packet scheduler, and an
// optional ECN marker. This is the component the DynaQ paper is about.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "net/buffer_policy.hpp"
#include "net/ecn_marker.hpp"
#include "net/mq_state.hpp"
#include "net/queue_disc.hpp"
#include "net/scheduler.hpp"
#include "net/shared_memory.hpp"
#include "sim/simulator.hpp"

namespace dynaq::net {

struct MqStats {
  std::uint64_t enqueued = 0;
  std::uint64_t evicted = 0;  // buffered packets removed to admit arrivals
  std::uint64_t dropped = 0;
  std::uint64_t dropped_by_policy = 0;     // admission policy said no
  std::uint64_t dropped_port_full = 0;     // policy admitted, physical bound rejected
  std::uint64_t marked = 0;
  std::vector<std::uint64_t> dropped_per_queue;
  std::vector<std::uint64_t> dropped_port_full_per_queue;
  std::vector<std::uint64_t> enqueued_per_queue;
};

class MultiQueueQdisc final : public QueueDisc {
 public:
  // `weights` sets both the scheduler weights and the buffer policy's
  // per-queue weights; `buffer_bytes` is the shared port buffer size B.
  MultiQueueQdisc(sim::Simulator& sim, std::vector<double> weights, std::int64_t buffer_bytes,
                  std::unique_ptr<BufferPolicy> policy,
                  std::unique_ptr<SchedulerPolicy> scheduler,
                  std::unique_ptr<EcnMarker> marker = nullptr);

  bool enqueue(Packet&& p) override;
  std::optional<Packet> dequeue() override;
  bool empty() const override { return state_.port_bytes == 0; }
  std::int64_t backlog_bytes() const override { return state_.port_bytes; }

  // Operator buffer resize at runtime (§III-B3): adjusts B and tells the
  // policy to re-derive its thresholds. Buffered packets are kept; if the
  // new size is smaller than the current backlog, arrivals are rejected
  // until the queues drain below the new bound.
  void resize_buffer(std::int64_t buffer_bytes);

  // Operator weight rewrite at runtime (scenario weight_update, DESIGN.md
  // §11): installs the new per-queue weights and notifies the buffer
  // policy (which must rebalance keeping ΣT = B) and the scheduler (which
  // must not disturb buffered packets or its in-flight round). `weights`
  // must match the queue count and be positive.
  void set_weights(const std::vector<double>& weights);

  // Attaches this port to a chip-wide shared memory pool (§II-C's
  // shared-buffer switch model): admissions must additionally reserve pool
  // bytes; `buffer_bytes` then acts as the per-port cap. The pool must
  // outlive the qdisc.
  void attach_memory_pool(SharedMemoryPool* pool) { pool_ = pool; }

  const MqState& state() const { return state_; }
  // Handle-level introspection for scenario orchestration: the director
  // validates weight vectors and buffer sizes against these instead of
  // reaching into MqState (conventions rule 11).
  int num_service_queues() const { return state_.num_queues(); }
  std::int64_t buffer_bytes() const { return state_.buffer_bytes; }
  BufferPolicy& policy() { return *policy_; }
  const BufferPolicy& policy() const { return *policy_; }
  SchedulerPolicy& scheduler() { return *scheduler_; }
  const MqStats& stats() const { return stats_; }

  // Registers this port's buffer on the telemetry hub (DESIGN.md §8):
  // typed events (Enqueue/Drop{reason}/Evict/ThresholdExchange/EcnMark),
  // per-queue queueing-delay histograms and — when the hub has sampling
  // enabled — the occupancy/threshold time series. Costs one null-pointer
  // test per operation until attached.
  void attach_telemetry(telemetry::Hub& hub, const std::string& name) override;

  // Observability hooks (throughput meters, queue-length samplers). All are
  // optional and invoked synchronously. Measurement drivers (src/harness,
  // bench, tests) may assign these; library code must subscribe through
  // telemetry::Hub instead (tools/check_conventions.sh rule 8).
  std::function<void(int queue, const Packet&, Time now)> on_dequeue_hook;
  std::function<void(int queue, const Packet&, Time now)> on_drop_hook;
  std::function<void(const MqState&, Time now)> on_op_hook;  // after every enqueue/dequeue

 private:
  // Hub attached and collecting: the single guarded branch of the disabled
  // path (bench/micro_telemetry).
  telemetry::Hub* tel() const {
    return hub_ != nullptr && hub_->enabled() ? hub_ : nullptr;
  }
  void emit_packet_event(telemetry::Hub& hub, telemetry::EventKind kind, int queue,
                         const Packet& p, telemetry::DropReason reason,
                         int other_queue = -1) const;
  void sample_queues(telemetry::Hub& hub) const;

  sim::Simulator& sim_;
  MqState state_;
  SharedMemoryPool* pool_ = nullptr;
  std::unique_ptr<BufferPolicy> policy_;
  std::unique_ptr<SchedulerPolicy> scheduler_;
  std::unique_ptr<EcnMarker> marker_;
  MqStats stats_;
  telemetry::Hub* hub_ = nullptr;
  std::int16_t tel_port_ = -1;
};

}  // namespace dynaq::net
