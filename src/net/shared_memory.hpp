// Shared switch memory across ports.
//
// §II-C of the paper discusses shared-buffer switches where "a single port
// can occupy many buffers": per-port admission (e.g. the classic Dynamic
// Threshold) then competes for one chip-wide SRAM pool, and a congested
// port can starve others — the per-port fairness harm the paper cites as a
// reason DynaQ partitions per port. This component models that pool so
// the abl_shared_pool bench can reproduce the argument.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace dynaq::net {

class SharedMemoryPool {
 public:
  explicit SharedMemoryPool(std::int64_t total_bytes) : total_(total_bytes) {
    if (total_bytes <= 0) throw std::invalid_argument("pool size must be positive");
  }

  std::int64_t total_bytes() const { return total_; }
  std::int64_t used_bytes() const { return used_; }
  std::int64_t free_bytes() const { return total_ - used_; }

  // Attempts to reserve `bytes`; false when the pool is exhausted.
  bool reserve(std::int64_t bytes) {
    if (used_ + bytes > total_) return false;
    used_ += bytes;
    return true;
  }

  void release(std::int64_t bytes) {
    used_ -= bytes;
    if (used_ < 0) throw std::logic_error("SharedMemoryPool: released more than reserved");
  }

 private:
  std::int64_t total_;
  std::int64_t used_ = 0;
};

}  // namespace dynaq::net
