// A unidirectional-transmit network port: a queue discipline feeding a
// serializing transmitter connected to a peer port over a propagation-delay
// channel. Two ports connected back-to-back form a full-duplex link.
#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "net/packet.hpp"
#include "net/queue_disc.hpp"
#include "sim/simulator.hpp"

namespace dynaq::net {

class Port {
 public:
  Port(sim::Simulator& sim, double rate_bps, Time propagation_delay,
       std::unique_ptr<QueueDisc> qdisc)
      : sim_(sim),
        rate_bps_(rate_bps),
        prop_delay_(propagation_delay),
        qdisc_(std::move(qdisc)) {}

  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  // Sets the port at the other end of the wire. Must be called on both
  // ports (see connect()).
  void set_peer(Port* peer) { peer_ = peer; }

  // Handler invoked at the owning node when a packet arrives from the wire.
  void set_receiver(std::function<void(Packet&&)> receiver) { receiver_ = std::move(receiver); }

  // Queues `p` for transmission, kicking the transmitter if idle. Returns
  // false when the queue discipline dropped the packet.
  bool send(Packet&& p) {
    const bool queued = qdisc_->enqueue(std::move(p));
    if (!transmitting_ && !down_) start_transmission();
    return queued;
  }

  // ---- runtime link control (scenario link actions, DESIGN.md §11) ------
  // Takes the link down: the in-flight serialization event is cancelled via
  // Simulator::cancel — no dead closure ever fires — and the packet being
  // serialized is lost with it. Bits already propagating (the peer-deliver
  // closure) still arrive: they left the port before the cut. The queue
  // discipline keeps buffering while the link is down.
  void set_link_down() {
    if (down_) return;
    down_ = true;
    if (tx_event_ != sim::kNoEvent) {
      sim_.cancel(tx_event_);
      tx_event_ = sim::kNoEvent;
      ++packets_lost_link_down_;
    }
    transmitting_ = false;
  }

  // Brings the link back up and restarts transmission from the backlog.
  void set_link_up() {
    if (!down_) return;
    down_ = false;
    if (!transmitting_) start_transmission();
  }

  // Rewrites the line rate; takes effect from the next packet's
  // serialization (the in-flight packet finishes at the old rate).
  void set_rate(double rate_bps) {
    if (rate_bps <= 0.0) return;
    rate_bps_ = rate_bps;
  }

  QueueDisc& qdisc() { return *qdisc_; }
  const QueueDisc& qdisc() const { return *qdisc_; }
  double rate_bps() const { return rate_bps_; }
  Time propagation_delay() const { return prop_delay_; }
  std::uint64_t packets_sent() const { return packets_sent_; }
  std::int64_t bytes_sent() const { return bytes_sent_; }
  bool busy() const { return transmitting_; }
  bool link_down() const { return down_; }
  std::uint64_t packets_lost_link_down() const { return packets_lost_link_down_; }

  // Registers this port on the telemetry hub under `name`: wire records
  // (transmit-start / deliver, consumed by PacketTracer) flow to the hub's
  // wire listeners, and the queue discipline is registered under the same
  // observation-point name. The hub must outlive the port.
  void attach_telemetry(telemetry::Hub& hub, const std::string& name) {
    hub_ = &hub;
    tel_port_ = static_cast<std::int16_t>(hub.register_port(name));
    qdisc_->attach_telemetry(hub, name);
  }

  // Called by the peer's transmitter after the propagation delay.
  void deliver(Packet&& p) {
    if (hub_ != nullptr && hub_->wants_wire()) emit_wire(p, /*transmit=*/false);
    if (receiver_) receiver_(std::move(p));
  }

 private:
  void emit_wire(const Packet& p, bool transmit) {
    hub_->emit_wire({.port = tel_port_,
                     .transmit = transmit,
                     .is_ack = p.is_ack(),
                     .retx = p.has(kFlagRetx),
                     .ce = p.has(kFlagCe),
                     .queue = p.queue,
                     .size = p.size,
                     .flow = p.flow,
                     .seq = p.seq});
  }

  void start_transmission() {
    // The serialize/propagate closures below capture a Packet by value;
    // they must fit an event slot's inline buffer or every packet hop
    // would heap-allocate (DESIGN.md §9).
    static_assert(sim::EventFn::fits_inline<Packet>());
    static_assert(sizeof(Packet) + sizeof(void*) <= sim::kEventInlineBytes);
    if (down_) return;
    auto next = qdisc_->dequeue();
    if (!next) return;
    transmitting_ = true;
    ++packets_sent_;
    bytes_sent_ += next->size;
    if (hub_ != nullptr && hub_->wants_wire()) emit_wire(*next, /*transmit=*/true);
    const Time tx = transmission_time(next->size, rate_bps_);
    // Serialization completes at now+tx; the last bit reaches the peer one
    // propagation delay later. The serialization event is tracked in
    // tx_event_ so set_link_down() can cancel it (losing the packet with
    // it); the propagate closure is untracked on purpose — those bits
    // already left the port.
    tx_event_ = sim_.schedule_in(tx, [this, pkt = std::move(*next)]() mutable {
      tx_event_ = sim::kNoEvent;
      Port* peer = peer_;
      if (peer != nullptr) {
        sim_.schedule_in(prop_delay_, [peer, p = std::move(pkt)]() mutable {
          peer->deliver(std::move(p));
        });
      }
      transmitting_ = false;
      start_transmission();
    });
  }

  sim::Simulator& sim_;
  double rate_bps_;
  Time prop_delay_;
  std::unique_ptr<QueueDisc> qdisc_;
  Port* peer_ = nullptr;
  std::function<void(Packet&&)> receiver_;
  bool transmitting_ = false;
  bool down_ = false;
  sim::EventId tx_event_ = sim::kNoEvent;
  std::uint64_t packets_sent_ = 0;
  std::int64_t bytes_sent_ = 0;
  std::uint64_t packets_lost_link_down_ = 0;
  telemetry::Hub* hub_ = nullptr;
  std::int16_t tel_port_ = -1;
};

// Wires two ports into a full-duplex link.
inline void connect(Port& a, Port& b) {
  a.set_peer(&b);
  b.set_peer(&a);
}

}  // namespace dynaq::net
