// Fault-injection queue disciplines for tests and experiments: wrap any
// link with deterministic or random loss without touching the component
// under test.
#pragma once

#include <set>

#include "net/queue_disc.hpp"
#include "sim/random.hpp"

namespace dynaq::net {

// Drops the data packets whose arrival ordinals (0-based, ACKs excluded)
// are listed — precise loss placement for retransmission-path tests.
class DeterministicLossQueue final : public QueueDisc {
 public:
  explicit DeterministicLossQueue(std::set<std::uint64_t> drop_ordinals,
                                  std::int64_t capacity_bytes = 0)
      : drops_(std::move(drop_ordinals)), inner_(capacity_bytes) {}

  bool enqueue(Packet&& p) override {
    if (!p.is_ack() && drops_.erase(data_seen_++) > 0) {
      ++injected_;
      return false;
    }
    return inner_.enqueue(std::move(p));
  }
  std::optional<Packet> dequeue() override { return inner_.dequeue(); }
  bool empty() const override { return inner_.empty(); }
  std::int64_t backlog_bytes() const override { return inner_.backlog_bytes(); }
  std::uint64_t injected_losses() const { return injected_; }

 private:
  std::set<std::uint64_t> drops_;
  std::uint64_t data_seen_ = 0;
  std::uint64_t injected_ = 0;
  DropTailQueue inner_;
};

// Drops each data packet independently with probability `loss_rate` —
// random-loss soak tests (a lossy cable, an overloaded middlebox).
class BernoulliLossQueue final : public QueueDisc {
 public:
  BernoulliLossQueue(double loss_rate, std::uint64_t seed, std::int64_t capacity_bytes = 0)
      : loss_rate_(loss_rate), rng_(seed), inner_(capacity_bytes) {}

  bool enqueue(Packet&& p) override {
    if (!p.is_ack() && rng_.uniform() < loss_rate_) {
      ++injected_;
      return false;
    }
    return inner_.enqueue(std::move(p));
  }
  std::optional<Packet> dequeue() override { return inner_.dequeue(); }
  bool empty() const override { return inner_.empty(); }
  std::int64_t backlog_bytes() const override { return inner_.backlog_bytes(); }
  std::uint64_t injected_losses() const { return injected_; }

 private:
  double loss_rate_;
  sim::Rng rng_;
  std::uint64_t injected_ = 0;
  DropTailQueue inner_;
};

// Sets CE on every ECN-capable data packet — a fully congested marking hop
// for DCTCP feedback tests.
class CeMarkAllQueue final : public QueueDisc {
 public:
  bool enqueue(Packet&& p) override {
    if (!p.is_ack() && p.has(kFlagEct)) p.set(kFlagCe);
    return inner_.enqueue(std::move(p));
  }
  std::optional<Packet> dequeue() override { return inner_.dequeue(); }
  bool empty() const override { return inner_.empty(); }
  std::int64_t backlog_bytes() const override { return inner_.backlog_bytes(); }

 private:
  DropTailQueue inner_;
};

}  // namespace dynaq::net
