// Fault-injection queue disciplines for tests and experiments: wrap any
// link with deterministic or random loss without touching the component
// under test. When attached to a telemetry hub, injected losses emit
// Drop{reason: injected} events and bump the hub's "drops_injected" counter
// so they stay distinguishable from policy drops in every summary.
#pragma once

#include <set>

#include "net/queue_disc.hpp"
#include "sim/random.hpp"

namespace dynaq::net {

namespace detail {

// Telemetry plumbing shared by the loss queues: the wrapper and its inner
// DropTailQueue register under the same observation-point name, and every
// injected loss is both counted (hub metrics registry, allocation-free
// cached reference) and emitted on the event bus.
class LossTelemetry {
 public:
  void attach(telemetry::Hub& hub, const std::string& name, QueueDisc& inner) {
    hub_ = &hub;
    tel_port_ = static_cast<std::int16_t>(hub.register_port(name));
    counter_ = &hub.metrics().counter("drops_injected");
    inner.attach_telemetry(hub, name);
  }

  void on_injected(const Packet& p) {
    if (hub_ == nullptr || !hub_->enabled()) return;
    counter_->add();
    hub_->emit({.kind = telemetry::EventKind::kDrop,
                .reason = telemetry::DropReason::kInjected,
                .port = tel_port_,
                .queue = static_cast<std::int16_t>(p.queue),
                .bytes = p.size,
                .flow = p.flow});
  }

 private:
  telemetry::Hub* hub_ = nullptr;
  telemetry::Counter* counter_ = nullptr;
  std::int16_t tel_port_ = -1;
};

}  // namespace detail

// Drops the data packets whose arrival ordinals (0-based, ACKs excluded)
// are listed — precise loss placement for retransmission-path tests.
class DeterministicLossQueue final : public QueueDisc {
 public:
  explicit DeterministicLossQueue(std::set<std::uint64_t> drop_ordinals,
                                  std::int64_t capacity_bytes = 0)
      : drops_(std::move(drop_ordinals)), inner_(capacity_bytes) {}

  // Scripts additional losses at runtime (scenario loss actions, DESIGN.md
  // §11): ordinals are absolute (the data-packet count since construction),
  // so already-seen ordinals are inert. data_seen() gives the current
  // position for relative scripting.
  void add_drops(std::initializer_list<std::uint64_t> ordinals) {
    drops_.insert(ordinals.begin(), ordinals.end());
  }
  void add_drop(std::uint64_t ordinal) { drops_.insert(ordinal); }
  std::uint64_t data_seen() const { return data_seen_; }

  bool enqueue(Packet&& p) override {
    if (!p.is_ack() && drops_.erase(data_seen_++) > 0) {
      ++injected_;
      telemetry_.on_injected(p);
      return false;
    }
    return inner_.enqueue(std::move(p));
  }
  std::optional<Packet> dequeue() override { return inner_.dequeue(); }
  bool empty() const override { return inner_.empty(); }
  std::int64_t backlog_bytes() const override { return inner_.backlog_bytes(); }
  void attach_telemetry(telemetry::Hub& hub, const std::string& name) override {
    telemetry_.attach(hub, name, inner_);
  }
  std::uint64_t injected_losses() const { return injected_; }

 private:
  std::set<std::uint64_t> drops_;
  std::uint64_t data_seen_ = 0;
  std::uint64_t injected_ = 0;
  DropTailQueue inner_;
  detail::LossTelemetry telemetry_;
};

// Drops each data packet independently with probability `loss_rate` —
// random-loss soak tests (a lossy cable, an overloaded middlebox).
class BernoulliLossQueue final : public QueueDisc {
 public:
  BernoulliLossQueue(double loss_rate, std::uint64_t seed, std::int64_t capacity_bytes = 0)
      : loss_rate_(loss_rate), rng_(seed), inner_(capacity_bytes) {}

  // Scripts the loss probability at runtime (scenario loss_window actions
  // schedule a set at the window start and a reset to 0 at its end,
  // DESIGN.md §11). The RNG stream keeps advancing one draw per data
  // packet regardless of the rate, so two runs that flip the rate at the
  // same instants see identical draws — determinism is per --seed.
  void set_loss_rate(double loss_rate) { loss_rate_ = loss_rate; }
  double loss_rate() const { return loss_rate_; }

  bool enqueue(Packet&& p) override {
    if (!p.is_ack() && rng_.uniform() < loss_rate_) {
      ++injected_;
      telemetry_.on_injected(p);
      return false;
    }
    return inner_.enqueue(std::move(p));
  }
  std::optional<Packet> dequeue() override { return inner_.dequeue(); }
  bool empty() const override { return inner_.empty(); }
  std::int64_t backlog_bytes() const override { return inner_.backlog_bytes(); }
  void attach_telemetry(telemetry::Hub& hub, const std::string& name) override {
    telemetry_.attach(hub, name, inner_);
  }
  std::uint64_t injected_losses() const { return injected_; }

 private:
  double loss_rate_;
  sim::Rng rng_;
  std::uint64_t injected_ = 0;
  DropTailQueue inner_;
  detail::LossTelemetry telemetry_;
};

// Sets CE on every ECN-capable data packet — a fully congested marking hop
// for DCTCP feedback tests.
class CeMarkAllQueue final : public QueueDisc {
 public:
  bool enqueue(Packet&& p) override {
    if (!p.is_ack() && p.has(kFlagEct)) p.set(kFlagCe);
    return inner_.enqueue(std::move(p));
  }
  std::optional<Packet> dequeue() override { return inner_.dequeue(); }
  bool empty() const override { return inner_.empty(); }
  std::int64_t backlog_bytes() const override { return inner_.backlog_bytes(); }
  void attach_telemetry(telemetry::Hub& hub, const std::string& name) override {
    inner_.attach_telemetry(hub, name);
  }

 private:
  DropTailQueue inner_;
};

}  // namespace dynaq::net
