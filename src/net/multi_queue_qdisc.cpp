#include "net/multi_queue_qdisc.hpp"

#include <stdexcept>
#include <utility>

namespace dynaq::net {

MultiQueueQdisc::MultiQueueQdisc(sim::Simulator& sim, std::vector<double> weights,
                                 std::int64_t buffer_bytes,
                                 std::unique_ptr<BufferPolicy> policy,
                                 std::unique_ptr<SchedulerPolicy> scheduler,
                                 std::unique_ptr<EcnMarker> marker)
    : sim_(sim),
      policy_(std::move(policy)),
      scheduler_(std::move(scheduler)),
      marker_(std::move(marker)) {
  if (weights.empty()) throw std::invalid_argument("MultiQueueQdisc needs >= 1 queue");
  if (buffer_bytes <= 0) throw std::invalid_argument("buffer size must be positive");
  state_.queues.resize(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) throw std::invalid_argument("queue weights must be positive");
    state_.queues[i].weight = weights[i];
  }
  state_.buffer_bytes = buffer_bytes;
  stats_.dropped_per_queue.assign(weights.size(), 0);
  stats_.dropped_port_full_per_queue.assign(weights.size(), 0);
  stats_.enqueued_per_queue.assign(weights.size(), 0);
  policy_->attach(state_);
  scheduler_->attach(state_);
  if (marker_) marker_->attach(state_);
}

void MultiQueueQdisc::attach_telemetry(telemetry::Hub& hub, const std::string& name) {
  hub_ = &hub;
  tel_port_ = static_cast<std::int16_t>(hub.register_port(name));
  // Policies that emit their own events (the control-plane shim) observe
  // at the same point as the qdisc that hosts them.
  policy_->attach_telemetry(hub, tel_port_);
}

void MultiQueueQdisc::emit_packet_event(telemetry::Hub& hub, telemetry::EventKind kind,
                                        int queue, const Packet& p,
                                        telemetry::DropReason reason, int other_queue) const {
  hub.emit({.kind = kind,
            .reason = reason,
            .port = tel_port_,
            .queue = static_cast<std::int16_t>(queue),
            .other_queue = static_cast<std::int16_t>(other_queue),
            .bytes = p.size,
            .flow = p.flow});
}

void MultiQueueQdisc::sample_queues(telemetry::Hub& hub) const {
  std::vector<std::int64_t> occupancy;
  occupancy.reserve(state_.queues.size());
  for (const ServiceQueue& q : state_.queues) occupancy.push_back(q.bytes);
  hub.sample(sim_.now(), occupancy, policy_->thresholds());
}

bool MultiQueueQdisc::enqueue(Packet&& p) {
  const int q = p.queue < state_.queues.size() ? p.queue : state_.num_queues() - 1;
  telemetry::Hub* const tel_hub = tel();

  // The buffer-management policy decides admission (DynaQ adjusts its
  // thresholds inside admit()); the physical port-buffer bound — and the
  // chip-wide pool, when attached — acts as a safety net on top. Under
  // DynaQ's threshold-enforced semantics the physical check binds only in
  // the rare transient where a victimized queue sits above its reduced
  // threshold (see DESIGN.md §4).
  const bool policy_ok = policy_->admit(state_, q, p);
  bool fits = state_.port_bytes + p.size <= state_.buffer_bytes &&
              (pool_ == nullptr || pool_->free_bytes() >= p.size);

  // Eviction (BarberQ-style): an admitted arrival that does not physically
  // fit may displace buffered tail packets of queues the policy names.
  while (policy_ok && !fits) {
    const int victim = policy_->evict_candidate(state_, q, p);
    if (victim < 0 || victim == q) break;
    ServiceQueue& vq = state_.queue(victim);
    if (vq.empty()) break;
    Packet evicted = std::move(vq.packets.back());
    vq.packets.pop_back();
    vq.bytes -= evicted.size;
    state_.port_bytes -= evicted.size;
    if (pool_ != nullptr) pool_->release(evicted.size);
    ++stats_.evicted;
    policy_->on_dequeue(state_, victim, evicted);
    if (tel_hub != nullptr) {
      emit_packet_event(*tel_hub, telemetry::EventKind::kEvict, victim, evicted,
                        telemetry::DropReason::kThreshold, q);
    }
    if (on_drop_hook) on_drop_hook(victim, evicted, sim_.now());
    fits = state_.port_bytes + p.size <= state_.buffer_bytes &&
           (pool_ == nullptr || pool_->free_bytes() >= p.size);
  }

  if (policy_ok && !fits) policy_->on_admit_aborted(state_, q, p);
  if (!policy_ok || !fits) {
    ++stats_.dropped;
    ++stats_.dropped_per_queue[static_cast<std::size_t>(q)];
    if (!policy_ok) {
      ++stats_.dropped_by_policy;
    } else {
      ++stats_.dropped_port_full;
      ++stats_.dropped_port_full_per_queue[static_cast<std::size_t>(q)];
    }
    if (tel_hub != nullptr) {
      emit_packet_event(*tel_hub, telemetry::EventKind::kDrop, q, p,
                        policy_ok ? telemetry::DropReason::kPortFull
                                  : policy_->last_drop_reason());
      if (tel_hub->sampling_active()) sample_queues(*tel_hub);
    }
    if (on_drop_hook) on_drop_hook(q, p, sim_.now());
    if (on_op_hook) on_op_hook(state_, sim_.now());
    return false;
  }

  if (marker_ && p.has(kFlagEct) && marker_->mark_on_enqueue(state_, q, p)) {
    p.set(kFlagCe);
    ++stats_.marked;
    if (tel_hub != nullptr) {
      emit_packet_event(*tel_hub, telemetry::EventKind::kEcnMark, q, p,
                        telemetry::DropReason::kThreshold);
    }
  }

  p.enqueued_at = sim_.now();
  if (pool_ != nullptr) pool_->reserve(p.size);
  state_.port_bytes += p.size;
  ServiceQueue& sq = state_.queue(q);
  sq.bytes += p.size;
  sq.packets.push_back(std::move(p));
  ++stats_.enqueued;
  ++stats_.enqueued_per_queue[static_cast<std::size_t>(q)];
  const Packet& queued = sq.packets.back();
  policy_->on_enqueue(state_, q, queued);
  scheduler_->on_enqueue(state_, q);
  if (tel_hub != nullptr) {
    // The exchange behind this admission (if any) is reported only once the
    // packet actually entered the buffer — an aborted admission rolls the
    // exchange back and resets the introspected victim to -1.
    const int exchange_victim = policy_->last_exchange_victim();
    if (exchange_victim >= 0) {
      emit_packet_event(*tel_hub, telemetry::EventKind::kThresholdExchange, q, queued,
                        telemetry::DropReason::kThreshold, exchange_victim);
    }
    emit_packet_event(*tel_hub, telemetry::EventKind::kEnqueue, q, queued,
                      telemetry::DropReason::kThreshold);
    if (tel_hub->sampling_active()) sample_queues(*tel_hub);
  }
  if (on_op_hook) on_op_hook(state_, sim_.now());
  return true;
}

void MultiQueueQdisc::resize_buffer(std::int64_t buffer_bytes) {
  if (buffer_bytes <= 0) throw std::invalid_argument("buffer size must be positive");
  state_.buffer_bytes = buffer_bytes;
  policy_->on_buffer_resize(state_);
}

void MultiQueueQdisc::set_weights(const std::vector<double>& weights) {
  if (weights.size() != state_.queues.size()) {
    throw std::invalid_argument("set_weights needs one weight per service queue");
  }
  for (const double w : weights) {
    if (w <= 0.0) throw std::invalid_argument("queue weights must be positive");
  }
  for (std::size_t i = 0; i < weights.size(); ++i) state_.queues[i].weight = weights[i];
  policy_->on_weights_changed(state_);
  scheduler_->on_weights_changed(state_);
}

std::optional<Packet> MultiQueueQdisc::dequeue() {
  // Eviction can empty a queue behind the scheduler's back; skip such
  // stale picks rather than dereferencing an empty queue.
  int q = scheduler_->next_queue(state_);
  while (q >= 0 && state_.queue(q).empty()) q = scheduler_->next_queue(state_);
  if (q < 0) return std::nullopt;
  ServiceQueue& sq = state_.queue(q);
  Packet p = std::move(sq.packets.front());
  sq.packets.pop_front();
  sq.bytes -= p.size;
  state_.port_bytes -= p.size;
  if (pool_ != nullptr) pool_->release(p.size);
  policy_->on_dequeue(state_, q, p);
  const Time sojourn = sim_.now() - p.enqueued_at;
  if (marker_ && p.has(kFlagEct)) {
    if (marker_->mark_on_dequeue(state_, q, p, sojourn)) {
      p.set(kFlagCe);
      ++stats_.marked;
      if (telemetry::Hub* const hub = tel(); hub != nullptr) {
        emit_packet_event(*hub, telemetry::EventKind::kEcnMark, q, p,
                          telemetry::DropReason::kThreshold);
      }
    }
  }
  if (telemetry::Hub* const hub = tel(); hub != nullptr) {
    hub->record_queue_delay(q, sojourn);
    if (hub->sampling_active()) sample_queues(*hub);
  }
  if (on_dequeue_hook) on_dequeue_hook(q, p, sim_.now());
  if (on_op_hook) on_op_hook(state_, sim_.now());
  return p;
}

}  // namespace dynaq::net
