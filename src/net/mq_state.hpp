// Shared state of a multi-queue switch port: per-service-queue packet
// storage and byte accounting, visible to buffer policies, ECN markers and
// packet schedulers.
#pragma once

#include <cstdint>
#include <deque>
#include <numeric>
#include <vector>

#include "net/packet.hpp"

namespace dynaq::net {

struct ServiceQueue {
  std::deque<Packet> packets;
  std::int64_t bytes = 0;  // current occupancy
  double weight = 1.0;     // scheduler weight / DRR quantum proportion

  bool empty() const { return packets.empty(); }
};

struct MqState {
  std::vector<ServiceQueue> queues;
  std::int64_t buffer_bytes = 0;  // port buffer size B
  std::int64_t port_bytes = 0;    // current total occupancy

  int num_queues() const { return static_cast<int>(queues.size()); }

  double total_weight() const {
    double sum = 0.0;
    for (const ServiceQueue& q : queues) sum += q.weight;
    return sum;
  }

  const ServiceQueue& queue(int i) const { return queues[static_cast<std::size_t>(i)]; }
  ServiceQueue& queue(int i) { return queues[static_cast<std::size_t>(i)]; }
};

}  // namespace dynaq::net
