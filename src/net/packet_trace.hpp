// Packet-level tracing: subscribe to the telemetry hub's wire-record feed
// and record transmit/deliver events (optionally filtered by flow) for
// debugging and for verifying wire-level behaviour in tests — the
// simulator's tcpdump. Any number of tracers may observe the same hub.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "net/port.hpp"
#include "telemetry/hub.hpp"

namespace dynaq::net {

struct TraceEvent {
  Time when = 0;
  std::string point;   // label of the observation point ("h1.nic", "sw.p0")
  bool transmit = false;  // true: serialization started; false: delivered
  std::uint32_t flow = 0;
  std::uint64_t seq = 0;
  std::int32_t size = 0;
  std::uint8_t queue = 0;
  bool is_ack = false;
  bool retx = false;
  bool ce = false;
};

class PacketTracer {
 public:
  // Subscribes to `hub`'s wire records. The tracer must outlive the hub's
  // traffic; it sees every port attached to the hub (via attach() or
  // directly through Port::attach_telemetry).
  explicit PacketTracer(telemetry::Hub& hub) : hub_(hub) {
    hub.add_wire_listener([this](const telemetry::WireRecord& w) { record(w); });
  }

  PacketTracer(const PacketTracer&) = delete;
  PacketTracer& operator=(const PacketTracer&) = delete;

  // Restrict recording to one flow id (0 = record everything).
  void filter_flow(std::uint32_t flow) { flow_filter_ = flow; }

  // Observes both directions of `port` under the given label — shorthand
  // for port.attach_telemetry(hub, label).
  void attach(Port& port, std::string label) { port.attach_telemetry(hub_, label); }

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  // Human-readable dump, one line per event.
  void print(std::ostream& os) const {
    for (const TraceEvent& e : events_) {
      os << to_microseconds(e.when) << "us " << e.point << (e.transmit ? " tx " : " rx ")
         << (e.is_ack ? "ACK " : "DATA ") << "flow=" << e.flow << " seq=" << e.seq
         << " size=" << e.size << " q=" << static_cast<int>(e.queue)
         << (e.retx ? " RETX" : "") << (e.ce ? " CE" : "") << '\n';
    }
  }

 private:
  void record(const telemetry::WireRecord& w) {
    if (flow_filter_ != 0 && w.flow != flow_filter_) return;
    events_.push_back(TraceEvent{w.when, std::string(hub_.port_name(w.port)), w.transmit,
                                 w.flow, w.seq, w.size, w.queue, w.is_ack, w.retx, w.ce});
  }

  telemetry::Hub& hub_;
  std::uint32_t flow_filter_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace dynaq::net
