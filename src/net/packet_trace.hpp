// Packet-level tracing: attach to ports and record transmit/deliver events
// (optionally filtered by flow) for debugging and for verifying wire-level
// behaviour in tests — the simulator's tcpdump.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "net/port.hpp"
#include "sim/simulator.hpp"

namespace dynaq::net {

struct TraceEvent {
  Time when = 0;
  std::string point;   // label of the observation point ("h1.nic", "sw.p0")
  bool transmit = false;  // true: serialization started; false: delivered
  std::uint32_t flow = 0;
  std::uint64_t seq = 0;
  std::int32_t size = 0;
  std::uint8_t queue = 0;
  bool is_ack = false;
  bool retx = false;
  bool ce = false;
};

class PacketTracer {
 public:
  explicit PacketTracer(sim::Simulator& sim) : sim_(sim) {}

  // Restrict recording to one flow id (0 = record everything).
  void filter_flow(std::uint32_t flow) { flow_filter_ = flow; }

  // Observes both directions of `port` under the given label. The tracer
  // must outlive the port's traffic.
  void attach(Port& port, std::string label) {
    port.on_transmit_start = [this, label](const Packet& p) { record(p, label, true); };
    port.on_deliver = [this, label](const Packet& p) { record(p, label, false); };
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  // Human-readable dump, one line per event.
  void print(std::ostream& os) const {
    for (const TraceEvent& e : events_) {
      os << to_microseconds(e.when) << "us " << e.point << (e.transmit ? " tx " : " rx ")
         << (e.is_ack ? "ACK " : "DATA ") << "flow=" << e.flow << " seq=" << e.seq
         << " size=" << e.size << " q=" << static_cast<int>(e.queue)
         << (e.retx ? " RETX" : "") << (e.ce ? " CE" : "") << '\n';
    }
  }

 private:
  void record(const Packet& p, const std::string& label, bool transmit) {
    if (flow_filter_ != 0 && p.flow != flow_filter_) return;
    events_.push_back(TraceEvent{sim_.now(), label, transmit, p.flow, p.seq, p.size, p.queue,
                                 p.is_ack(), p.has(kFlagRetx), p.has(kFlagCe)});
  }

  sim::Simulator& sim_;
  std::uint32_t flow_filter_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace dynaq::net
