// Work-conserving packet schedulers: FIFO, strict priority (SPQ), deficit
// round-robin (DRR), weighted round-robin (WRR), and the paper's SPQ/DRR
// hybrid (one strict high-priority queue over a DRR group).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "net/scheduler.hpp"

namespace dynaq::net {

// Serves buffered packets in global arrival order regardless of queue,
// emulating a single shared FIFO over the per-queue storage.
class FifoScheduler final : public SchedulerPolicy {
 public:
  void on_enqueue(const MqState& state, int q) override;
  int next_queue(MqState& state) override;
  std::string_view name() const override { return "fifo"; }

 private:
  std::deque<int> order_;  // queue index of each buffered packet, in arrival order
};

// Strict priority: lower queue index = higher priority.
class SpqScheduler final : public SchedulerPolicy {
 public:
  int next_queue(MqState& state) override;
  std::string_view name() const override { return "spq"; }
};

// Deficit round-robin (Shreedhar & Varghese). Queue i's quantum is
// `quantum_base * weight_i`, with weights taken from MqState; the paper's
// testbed uses a 1.5 KB base quantum.
class DrrScheduler final : public SchedulerPolicy {
 public:
  explicit DrrScheduler(std::int64_t quantum_base = 1500) : quantum_base_(quantum_base) {}

  void attach(const MqState& state) override;
  void on_enqueue(const MqState& state, int q) override;
  int next_queue(MqState& state) override;
  std::string_view name() const override { return "drr"; }

  std::int64_t deficit(int q) const { return deficits_[static_cast<std::size_t>(q)]; }

 private:
  std::int64_t quantum_for(const MqState& state, int q) const;

  std::int64_t quantum_base_;
  std::vector<std::int64_t> deficits_;
  std::vector<bool> in_list_;
  std::deque<int> active_;  // round-robin order of backlogged queues
};

// Packet-based weighted round-robin: queue i may send round(w_i / min(w))
// packets per round. Used by the paper's 10/100 Gbps simulations.
class WrrScheduler final : public SchedulerPolicy {
 public:
  void attach(const MqState& state) override;
  void on_enqueue(const MqState& state, int q) override;
  int next_queue(MqState& state) override;
  // Mid-run weight rewrite: recompute only slots_per_round_ — active_,
  // in_list_ and slots_left_ describe buffered packets and the in-flight
  // round, which must survive the reconfiguration (new rates apply from
  // each queue's next refill).
  void on_weights_changed(const MqState& state) override;
  std::string_view name() const override { return "wrr"; }

 private:
  void compute_slots(const MqState& state);

  std::vector<int> slots_per_round_;
  std::vector<int> slots_left_;
  std::vector<bool> in_list_;
  std::deque<int> active_;
};

// One strict high-priority queue (index 0) over an inner scheduler serving
// queues 1..M-1. Low-priority packets are dequeued only when the
// high-priority queue is empty — the paper's SPQ(1)/DRR(k) configuration.
// The inner scheduler is simply never notified about queue 0, so its active
// list can only ever contain the low-priority group.
class SpqOverScheduler final : public SchedulerPolicy {
 public:
  explicit SpqOverScheduler(std::unique_ptr<SchedulerPolicy> inner) : inner_(std::move(inner)) {}

  void attach(const MqState& state) override { inner_->attach(state); }

  void on_enqueue(const MqState& state, int q) override {
    if (q != 0) inner_->on_enqueue(state, q);
  }

  int next_queue(MqState& state) override {
    if (!state.queue(0).empty()) return 0;
    return inner_->next_queue(state);
  }

  std::string_view name() const override { return "spq+"; }

 private:
  std::unique_ptr<SchedulerPolicy> inner_;
};

}  // namespace dynaq::net
