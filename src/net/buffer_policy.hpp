// Buffer-management policy interface: decides packet admission into a
// shared multi-queue port buffer. DynaQ and all compared schemes
// (BestEffort, PQL, classic Dynamic Threshold) implement this interface.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "net/mq_state.hpp"
#include "net/packet.hpp"
#include "telemetry/events.hpp"

namespace dynaq::telemetry {
class Hub;
}

namespace dynaq::net {

class BufferPolicy {
 public:
  virtual ~BufferPolicy() = default;

  // Called once when installed on a port, before any traffic.
  virtual void attach(const MqState& state) { (void)state; }

  // Admission decision for packet `p` destined to service queue `q`.
  // Policies may mutate their internal thresholds here (DynaQ does), but
  // must not touch the queues themselves. Returning true means the policy
  // allows the enqueue; the port additionally enforces the physical buffer
  // bound `port_bytes + size <= B`.
  virtual bool admit(const MqState& state, int q, const Packet& p) = 0;

  // Called when the policy admitted packet `p` but the port's physical
  // buffer bound rejected it anyway: any state mutated by admit() (e.g.
  // DynaQ's threshold exchange) must be rolled back so thresholds cannot
  // drift without packets actually entering the buffer.
  virtual void on_admit_aborted(const MqState& state, int q, const Packet& p) {
    (void)state, (void)q, (void)p;
  }

  // Eviction support (the BarberQ technique the paper's related work
  // discusses): when the policy admitted packet `p` but the port is
  // physically full, the qdisc asks for a queue to evict a buffered tail
  // packet from. Return -1 (default) to decline — the packet is then
  // dropped (after on_admit_aborted). The qdisc may call this repeatedly
  // until the arrival fits; implementations must only name non-empty
  // queues other than `q`.
  virtual int evict_candidate(const MqState& state, int q, const Packet& p) {
    (void)state, (void)q, (void)p;
    return -1;
  }

  // Called when the operator resizes the port buffer at runtime
  // (§III-B3): policies must re-derive their thresholds from the new B
  // (DynaQ re-initializes via Eq. 1). `state.buffer_bytes` already holds
  // the new size. Default: re-run attach().
  virtual void on_buffer_resize(const MqState& state) { attach(state); }

  // Called when the operator rewrites the per-queue weights mid-run
  // (scenario weight_update, DESIGN.md §11). `state.queues[i].weight`
  // already holds the new values. Threshold-conserving policies must
  // rebalance so ΣT = B still holds immediately after this call — the
  // invariant auditor re-checks it here. Default: re-run attach(), which
  // re-derives everything from the state (correct for PQL/DT/BestEffort).
  virtual void on_weights_changed(const MqState& state) { attach(state); }

  // Notification hooks for policies that track occupancy-derived state.
  virtual void on_enqueue(const MqState& state, int q, const Packet& p) {
    (void)state, (void)q, (void)p;
  }
  virtual void on_dequeue(const MqState& state, int q, const Packet& p) {
    (void)state, (void)q, (void)p;
  }

  // Current per-queue drop thresholds for introspection/plotting; empty if
  // the policy has no such notion (e.g. BestEffort).
  virtual std::vector<std::int64_t> thresholds() const { return {}; }

  // Contract declarations consumed by check::AuditedBufferPolicy
  // (DESIGN.md §6). A policy that conserves the threshold sum promises
  // ΣT_i = B after every call (DynaQ's Eq. 1 invariant); a threshold-
  // enforcing policy promises that an admitted packet fits under the
  // arriving queue's threshold (q_p + size ≤ T_p). Either way, a rejected
  // admit() must leave thresholds() unchanged — the qdisc only calls
  // on_admit_aborted() for packets that were admitted.
  virtual bool conserves_threshold_sum() const { return false; }
  virtual bool enforces_thresholds() const { return false; }

  // Bounded staleness (DESIGN.md §14): a conserving policy whose thresholds
  // are updated asynchronously (the dynaq::ctrlplane shim) may let ΣT drift
  // from B transiently after a buffer resize or weight change, as long as a
  // re-balancing update commits within this window. 0 (the default) keeps
  // today's strict contract: ΣT = B at every audited call. The auditor
  // (check::AuditedBufferPolicy) timestamps the first mismatch and reports a
  // violation only when it persists beyond the bound.
  virtual Time threshold_staleness_bound() const { return 0; }

  // Telemetry introspection (DESIGN.md §8), read by the qdisc right after
  // admit() to classify the event it emits. last_drop_reason() explains the
  // most recent admit() == false (default: the generic threshold/quota
  // reason). last_exchange_victim() names the queue the most recent
  // admit() == true borrowed threshold from, or -1 when no exchange
  // happened; a subsequent on_admit_aborted() must reset it to -1 along
  // with the rollback.
  virtual telemetry::DropReason last_drop_reason() const {
    return telemetry::DropReason::kThreshold;
  }
  virtual int last_exchange_victim() const { return -1; }

  // Telemetry attachment (DESIGN.md §8): the qdisc forwards its hub and
  // observation-point id when it is instrumented, so policies that act
  // asynchronously (the control-plane shim) can emit their own events at
  // the same port. Default: no instrumentation.
  virtual void attach_telemetry(telemetry::Hub& hub, int tel_port) {
    (void)hub, (void)tel_port;
  }

  virtual std::string_view name() const = 0;
};

}  // namespace dynaq::net
