// Static-flow experiments: long-lived (iperf-style) senders toward one
// receiver on a star topology, measuring per-queue throughput and queue
// evolution at the bottleneck — the setup behind Figs. 1, 3-7, 10-12.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include <string>

#include "ctrlplane/control_plane.hpp"
#include "net/multi_queue_qdisc.hpp"
#include "oracle/report.hpp"
#include "scenario/scenario.hpp"
#include "stats/queue_sampler.hpp"
#include "stats/throughput_meter.hpp"
#include "telemetry/hub.hpp"
#include "topo/star.hpp"
#include "transport/flow.hpp"
#include "transport/flow_sender.hpp"

namespace dynaq::harness {

// A group of identical long-lived flows feeding one service queue. The
// group's flows originate round-robin from `num_src_hosts` hosts starting
// at `first_src_host` (the 10/100 Gbps simulations give every sender its
// own host; the testbed uses one host per queue).
struct SenderGroup {
  int queue = 0;
  int num_flows = 1;
  int first_src_host = 1;
  int num_src_hosts = 1;
  Time start = 0;
  Time stop = 0;  // 0 = run until the experiment ends
  transport::CcKind cc = transport::CcKind::kNewReno;
};

struct StaticExperimentConfig {
  topo::StarConfig star;
  std::vector<SenderGroup> groups;
  int receiver_host = 0;
  Time duration = seconds(std::int64_t{10});
  Time meter_window = milliseconds(std::int64_t{500});
  // Flows within a group start uniformly inside [start, start + jitter),
  // emulating the few-RTT skew of real iperf process launches.
  Time start_jitter = milliseconds(std::int64_t{1});
  std::int32_t mss = net::kDefaultMss;
  Time rto_min = milliseconds(std::int64_t{10});
  double initial_cwnd_packets = 10.0;
  std::size_t queue_samples = 0;  // >0: record per-op queue length samples
  std::size_t queue_sample_skip = 0;
  std::uint64_t seed = 1;
  // Run every switch-port buffer policy under check::AuditedBufferPolicy,
  // throwing AuditError at the first contract violation (DESIGN.md §6). On
  // by default so the whole test suite runs audited; disable for
  // paper-scale perf runs.
  bool audit_invariants = true;
  // Attach a telemetry::Hub (DESIGN.md §8) to the bottleneck port and every
  // host NIC: typed events, drop reasons, per-queue queueing-delay
  // histograms, and the queue_samples time series all flow through it.
  bool collect_telemetry = true;
  std::size_t telemetry_ring = 4096;  // newest events kept in the result
  // Fold the run into a check::TrajectoryHash (DESIGN.md §10): event-engine
  // pop stream + telemetry event bus + per-port audit ledgers. Equal seeds
  // must yield equal hashes; ci.sh diffs them across repeat/jobs/seed runs.
  bool fingerprint_trajectory = true;
  // Record the bottleneck port's arrival/drain trace off the telemetry taps
  // and evaluate the clairvoyant offline-optimal allocator over it
  // (DESIGN.md §12): the result carries an oracle::Report with empirical
  // competitive ratios. Off by default — recording buffers one TraceEvent
  // per packet operation at the port. Wire taps are not folded into the
  // trajectory fingerprint, so turning this on leaves trajectory_hash
  // byte-identical. Scenario timelines that resize the buffer or rewrite
  // weights mid-run make the bound approximate (the solver replays the
  // configured values).
  bool oracle_competitive = false;
  // Control-plane model (DESIGN.md §14): when enabled and the scheme is
  // kDynaQ, every switch port runs its DynaQ policy behind a
  // ctrlplane::ControlPlanePolicy shim (async threshold updates, watchdog
  // failover to DT, scenario-drivable faults), and a RecoveryInstrument on
  // the bottleneck port derives degraded-time / recovery-time / throughput-
  // retention metrics into the result's TelemetrySummary. Other schemes
  // ignore this (they have no controller to degrade).
  ctrlplane::ControlPlaneConfig control_plane;
  // Optional mid-run timeline (DESIGN.md §11): a ScenarioDirector is built
  // over the topology's registered handles, every sender is registered
  // under its group's queue, and incast bursts spawn short flows toward
  // the receiver. The Scenario must outlive the run call.
  const scenario::Scenario* scenario = nullptr;
};

struct StaticExperimentResult {
  stats::ThroughputMeter meter;
  std::vector<stats::QueueLengthSample> queue_samples;
  net::MqStats bottleneck_stats;
  transport::SenderStats sender_totals;  // summed over all flows
  std::uint64_t events = 0;
  telemetry::TelemetrySummary telemetry;         // empty when collection is off
  std::vector<telemetry::Event> telemetry_events;  // tail of the event ring
  std::vector<std::string> telemetry_ports;        // observation-point names
  std::uint64_t trajectory_hash = 0;  // 0 when fingerprint_trajectory is off
  std::uint64_t scenario_actions = 0;  // timeline mutations applied (DESIGN.md §11)
  // Competitive ratios vs. the offline optimum (DESIGN.md §12); set iff
  // config.oracle_competitive.
  std::optional<oracle::Report> oracle{};
};

StaticExperimentResult run_static_experiment(const StaticExperimentConfig& config);

}  // namespace dynaq::harness
