#include "harness/dynamic_experiment.hpp"

#include <optional>
#include <stdexcept>

#include "check/invariant_auditor.hpp"
#include "check/trajectory_hash.hpp"
#include "oracle/trace_recorder.hpp"
#include "scenario/director.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "transport/host_agent.hpp"
#include "workload/flow_generator.hpp"

namespace dynaq::harness {
namespace {

// Builds and arms a scenario director over the topology's handles when the
// config carries a timeline (DESIGN.md §11). The director is emplaced into
// the caller's optional (it is pinned: scheduled closures capture `this`).
template <typename TopoT>
void arm_scenario(std::optional<dynaq::scenario::ScenarioDirector>& director,
                  sim::Simulator& sim, telemetry::Hub& hub, TopoT& topo,
                  const dynaq::scenario::Scenario* scenario) {
  if (scenario == nullptr) return;
  director.emplace(sim);
  if (hub.enabled()) director->attach_telemetry(hub);
  topo.register_scenario_handles(*director);
  director->arm(*scenario);
}

// Folds one qdisc's audit ledger when the port runs under the auditor —
// part of the per-run trajectory hash (DESIGN.md §10).
void fold_ledger(check::TrajectoryHash& th, const net::MultiQueueQdisc& qdisc) {
  if (const auto* audited =
          dynamic_cast<const check::AuditedBufferPolicy*>(&qdisc.policy())) {
    th.fold(audited->ledger());
  }
}

// Wires one finite request flow (sender at src, receiver at dst) and
// records its completion into `result`.
template <typename TopoT>
void install_flow(TopoT& topo, const transport::FlowParams& params,
                  DynamicExperimentResult& result, std::size_t& outstanding) {
  transport::FlowReceiver& rx = topo.agent(params.dst_host).add_receiver(params);
  rx.on_complete = [&result, &outstanding](const transport::FlowReceiver& r) {
    result.fcts.record(r.params().id, r.params().size_bytes, r.params().start,
                       r.completion_time());
    --outstanding;
  };
  topo.agent(params.src_host).add_sender(params).start();
}

}  // namespace

DynamicExperimentResult run_dynamic_star_experiment(const DynamicStarConfig& config) {
  if (config.dist == nullptr) throw std::invalid_argument("dist must be set");
  const int num_queues = static_cast<int>(config.star.queue_weights.size());
  if (config.first_service_queue >= num_queues) {
    throw std::invalid_argument("no dedicated service queues configured");
  }

  sim::Simulator sim;
  sim.enable_trajectory_fingerprint(config.fingerprint_trajectory);
  sim::Rng rng(config.seed);
  topo::StarConfig star_config = config.star;
  star_config.scheme.audit = star_config.scheme.audit || config.audit_invariants;
  topo::StarTopology topo(sim, star_config);

  Time initial_srtt = config.initial_srtt;
  if (initial_srtt == 0) initial_srtt = 4 * config.star.link_delay + microseconds(std::int64_t{25});
  if (initial_srtt < 0) initial_srtt = 0;

  DynamicExperimentResult result;
  std::size_t outstanding = config.num_flows;

  telemetry::Hub hub(sim, {.enabled = config.collect_telemetry ||
                                      config.fingerprint_trajectory ||
                                      config.oracle_competitive,
                           .ring_capacity = config.telemetry_ring,
                           .fingerprint = config.fingerprint_trajectory});
  const std::string bottleneck_name = "sw.p" + std::to_string(config.client_host);
  if (hub.enabled()) {
    topo.port_qdisc(config.client_host).attach_telemetry(hub, bottleneck_name);
    for (int i = 0; i < topo.num_hosts(); ++i) {
      topo.host(i).nic().attach_telemetry(hub, "h" + std::to_string(i) + ".nic");
    }
  }
  // Oracle trace at the client downlink (DESIGN.md §12): the egress Port
  // joins the hub under the qdisc's observation-point name so its wire taps
  // (serialization starts) become the trace's drain records.
  std::optional<oracle::ArrivalTraceRecorder> oracle_recorder;
  if (config.oracle_competitive) {
    topo.fabric().port(config.client_host).attach_telemetry(hub, bottleneck_name);
    oracle_recorder.emplace(
        hub, oracle::TraceRecorderConfig{
                 bottleneck_name,
                 config.star.link_rate_bps * config.star.egress_rate_factor,
                 config.star.buffer_bytes, config.star.queue_weights});
  }

  const double rate = workload::arrival_rate_for_load(
      config.load, config.star.link_rate_bps, config.dist->mean_bytes());
  const int dedicated = num_queues - config.first_service_queue;
  const auto flows = workload::generate_poisson_flows(
      config.num_flows, rate, *config.dist, rng,
      [&](std::size_t, workload::FlowRequest& req) {
        req.src_host = 1 + static_cast<int>(rng.uniform_int(0, config.num_servers - 1));
        req.dst_host = config.client_host;
        req.service_queue =
            config.first_service_queue + static_cast<int>(rng.uniform_int(0, dedicated - 1));
      });

  std::uint32_t next_id = 1;
  for (const workload::FlowRequest& req : flows) {
    transport::FlowParams params;
    params.id = next_id++;
    params.src_host = req.src_host;
    params.dst_host = req.dst_host;
    params.size_bytes = req.size_bytes;
    params.start = req.start;
    params.service_queue = req.service_queue;
    params.cc = config.cc;
    params.mss = config.mss;
    params.initial_cwnd_packets = config.initial_cwnd_packets;
    params.rto_min = config.rto_min;
    params.initial_srtt = initial_srtt;
    params.pias = config.pias;
    params.pias_threshold_bytes = config.pias_threshold_bytes;
    params.pias_high_queue = config.pias_high_queue;
    install_flow(topo, params, result, outstanding);
  }

  std::optional<dynaq::scenario::ScenarioDirector> director;
  arm_scenario(director, sim, hub, topo, config.scenario);

  sim.run_until(config.max_sim_time);
  if (director) result.scenario_actions = director->actions_applied();
  result.incomplete = outstanding;
  result.events = sim.events_processed();
  result.drops = topo.port_qdisc(config.client_host).stats().dropped;
  result.marks = topo.port_qdisc(config.client_host).stats().marked;
  result.bottleneck = topo.port_qdisc(config.client_host).stats();
  if (config.collect_telemetry) {
    result.telemetry = hub.summary();
    result.telemetry_events = hub.ring_events();
    result.telemetry_ports = hub.port_names();
  }
  if (config.fingerprint_trajectory) {
    check::TrajectoryHash th;
    th.fold(sim).fold(hub);
    for (int i = 0; i < topo.num_hosts(); ++i) fold_ledger(th, topo.port_qdisc(i));
    result.trajectory_hash = th.value();
  }
  if (oracle_recorder) {
    oracle_recorder->set_horizon(sim.now());
    result.oracle = oracle::evaluate(oracle_recorder->trace());
  }
  return result;
}

DynamicExperimentResult run_dynamic_leaf_spine_experiment(
    const DynamicLeafSpineConfig& config) {
  // Services occupy dedicated queues 1..num_services; queue 0 is shared SPQ.
  const int num_queues = static_cast<int>(config.fabric.queue_weights.size());
  if (config.num_services > num_queues - 1) {
    throw std::invalid_argument("more services than dedicated queues");
  }

  sim::Simulator sim;
  sim.enable_trajectory_fingerprint(config.fingerprint_trajectory);
  sim::Rng rng(config.seed);
  topo::LeafSpineConfig fabric_config = config.fabric;
  fabric_config.scheme.audit = fabric_config.scheme.audit || config.audit_invariants;
  topo::LeafSpineTopology topo(sim, fabric_config);
  const int num_hosts = topo.num_hosts();

  Time initial_srtt = config.initial_srtt;
  if (initial_srtt == 0) initial_srtt = 8 * config.fabric.link_delay + microseconds(std::int64_t{5});
  if (initial_srtt < 0) initial_srtt = 0;

  DynamicExperimentResult result;
  std::size_t outstanding = config.num_flows;

  telemetry::Hub hub(sim, {.enabled = config.collect_telemetry || config.fingerprint_trajectory,
                           .ring_capacity = config.telemetry_ring,
                           .fingerprint = config.fingerprint_trajectory});
  if (hub.enabled()) {
    const auto& qdiscs = topo.all_qdiscs();
    for (std::size_t i = 0; i < qdiscs.size(); ++i) {
      qdiscs[i]->attach_telemetry(hub, "sw.p" + std::to_string(i));
    }
    for (int i = 0; i < num_hosts; ++i) {
      topo.host(i).nic().attach_telemetry(hub, "h" + std::to_string(i) + ".nic");
    }
  }

  // Per-service flow-size distributions, cycling through the four
  // production workloads (paper: "Different services use different traffic
  // distributions in Figure 2").
  const auto workloads = workload::all_workloads();
  std::vector<const workload::FlowSizeDistribution*> service_dist;
  double mean_size = 0.0;
  for (int s = 0; s < config.num_services; ++s) {
    service_dist.push_back(workloads[static_cast<std::size_t>(s) % workloads.size()]);
    mean_size += service_dist.back()->mean_bytes();
  }
  mean_size /= static_cast<double>(config.num_services);

  // Offered load is defined against a single access link: with uniformly
  // random destinations, each host downlink sees total_rate/num_hosts flows
  // on average, so total_rate = load · C · num_hosts / (8 · mean).
  const double total_rate =
      workload::arrival_rate_for_load(config.load, config.fabric.link_rate_bps, mean_size) *
      static_cast<double>(num_hosts);

  std::uint32_t next_id = 1;
  double t_seconds = 0.0;
  for (std::size_t i = 0; i < config.num_flows; ++i) {
    t_seconds += rng.exponential(1.0 / total_rate);
    const int service = static_cast<int>(rng.uniform_int(0, config.num_services - 1));

    transport::FlowParams params;
    params.id = next_id++;
    params.src_host = static_cast<int>(rng.uniform_int(0, num_hosts - 1));
    do {
      params.dst_host = static_cast<int>(rng.uniform_int(0, num_hosts - 1));
    } while (params.dst_host == params.src_host);
    params.size_bytes = service_dist[static_cast<std::size_t>(service)]->sample(rng);
    params.start = seconds(t_seconds);
    params.service_queue = 1 + service;  // queue 0 is the shared SPQ queue
    params.cc = config.cc;
    params.mss = config.mss;
    params.initial_cwnd_packets = config.initial_cwnd_packets;
    params.rto_min = config.rto_min;
    params.initial_srtt = initial_srtt;
    params.pias = config.pias;
    params.pias_threshold_bytes = config.pias_threshold_bytes;
    params.pias_high_queue = 0;
    install_flow(topo, params, result, outstanding);
  }

  std::optional<dynaq::scenario::ScenarioDirector> director;
  arm_scenario(director, sim, hub, topo, config.scenario);

  sim.run_until(config.max_sim_time);
  if (director) result.scenario_actions = director->actions_applied();
  result.incomplete = outstanding;
  result.events = sim.events_processed();
  for (const net::MultiQueueQdisc* q : topo.all_qdiscs()) {
    result.drops += q->stats().dropped;
    result.marks += q->stats().marked;
  }
  if (config.collect_telemetry) {
    result.telemetry = hub.summary();
    result.telemetry_events = hub.ring_events();
    result.telemetry_ports = hub.port_names();
  }
  if (config.fingerprint_trajectory) {
    check::TrajectoryHash th;
    th.fold(sim).fold(hub);
    // all_qdiscs() enumerates ports in a construction-fixed order, so the
    // ledger fold order is identical across same-seed runs.
    for (const net::MultiQueueQdisc* q : topo.all_qdiscs()) fold_ledger(th, *q);
    result.trajectory_hash = th.value();
  }
  return result;
}

}  // namespace dynaq::harness
