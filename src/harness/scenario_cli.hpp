// Shared --list-scenarios / --scenario=help handling for the scenario-aware
// bench binaries: prints the scenario::scenario_names() catalogue with the
// one-line descriptions so users can discover timelines without reading
// DESIGN.md §11. Call right after constructing the Cli; a true return means
// the catalogue was printed and the binary should exit 0.
#pragma once

#include <cstdio>
#include <string>

#include "harness/cli.hpp"
#include "scenario/scenario.hpp"

namespace dynaq::harness {

inline bool list_scenarios_requested(const Cli& cli) {
  if (!cli.flag("list-scenarios") && cli.text("scenario", "") != "help") return false;
  std::puts("Scenario catalogue (DESIGN.md §11) — pick one with --scenario=<name>:");
  for (const std::string& name : scenario::scenario_names()) {
    const auto desc = scenario::scenario_description(name);
    std::printf("  %-15s %.*s\n", name.c_str(), static_cast<int>(desc.size()), desc.data());
  }
  return true;
}

}  // namespace dynaq::harness
