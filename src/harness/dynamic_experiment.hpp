// Dynamic-flow experiments: open-loop Poisson request workloads with FCT
// collection — the setup behind Figs. 8, 9 (testbed star) and 13
// (leaf-spine fabric).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "oracle/report.hpp"
#include "scenario/scenario.hpp"
#include "stats/fct_recorder.hpp"
#include "telemetry/hub.hpp"
#include "topo/leaf_spine.hpp"
#include "topo/star.hpp"
#include "transport/flow.hpp"
#include "workload/flow_size_distribution.hpp"

namespace dynaq::harness {

// Fig. 8/9 scenario: `num_servers` servers send Poisson-arriving responses
// (sizes from `dist`) to one client over a star; the client downlink is the
// bottleneck whose load is swept. Each flow lands on a uniformly random
// dedicated service queue, with PIAS promoting its first 100 KB to the
// strict-priority queue when enabled.
struct DynamicStarConfig {
  topo::StarConfig star;
  int client_host = 0;
  int num_servers = 4;
  std::size_t num_flows = 2000;
  double load = 0.5;  // fraction of the client link capacity
  const workload::FlowSizeDistribution* dist = nullptr;
  transport::CcKind cc = transport::CcKind::kNewReno;
  bool pias = true;
  std::int64_t pias_threshold_bytes = 100'000;
  int pias_high_queue = 0;
  int first_service_queue = 1;  // dedicated queues [first, num_queues)
  std::int32_t mss = net::kDefaultMss;
  Time rto_min = milliseconds(std::int64_t{10});
  double initial_cwnd_packets = 10.0;
  // Persistent-connection RTT seeding; 0 derives ~the base RTT from the
  // topology's link delay (pass a negative value for cold connections).
  Time initial_srtt = 0;
  std::uint64_t seed = 1;
  Time max_sim_time = seconds(std::int64_t{3600});
  // Audit every port's buffer policy against the contract (DESIGN.md §6);
  // see StaticExperimentConfig::audit_invariants.
  bool audit_invariants = true;
  // Telemetry hub attachment (DESIGN.md §8); see StaticExperimentConfig.
  bool collect_telemetry = true;
  std::size_t telemetry_ring = 4096;
  // Trajectory-fingerprint oracle (DESIGN.md §10); see StaticExperimentConfig.
  bool fingerprint_trajectory = true;
  // Record the client downlink's arrival/drain trace and evaluate the
  // offline-optimal allocator (DESIGN.md §12); see StaticExperimentConfig.
  bool oracle_competitive = false;
  // Optional mid-run timeline (DESIGN.md §11). Dynamic runs register only
  // topology handles (no per-queue sender lists, no incast launcher), so
  // arm() rejects service_join/leave and incast_burst actions here.
  const scenario::Scenario* scenario = nullptr;
};

struct DynamicExperimentResult {
  stats::FctRecorder fcts;
  std::size_t incomplete = 0;  // flows unfinished at max_sim_time (should be 0)
  std::uint64_t events = 0;
  std::uint64_t drops = 0;   // at measured bottleneck qdisc(s)
  std::uint64_t marks = 0;
  net::MqStats bottleneck;   // star: the client downlink port (leaf-spine: unset)
  telemetry::TelemetrySummary telemetry;           // empty when collection is off
  std::vector<telemetry::Event> telemetry_events;  // tail of the event ring
  std::vector<std::string> telemetry_ports;        // observation-point names
  std::uint64_t trajectory_hash = 0;  // 0 when fingerprint_trajectory is off
  std::uint64_t scenario_actions = 0;  // timeline mutations applied (DESIGN.md §11)
  // Competitive ratios vs. the offline optimum at the bottleneck port
  // (DESIGN.md §12); set iff the config enables oracle_competitive (star
  // runs only — the leaf-spine fabric has no single bottleneck port).
  std::optional<oracle::Report> oracle;
};

DynamicExperimentResult run_dynamic_star_experiment(const DynamicStarConfig& config);

// Fig. 13 scenario: all-to-all Poisson traffic over the leaf-spine fabric,
// `num_services` services on dedicated DRR queues (1..7), each service
// drawing sizes from its own workload distribution (cycled through the four
// production CDFs), PIAS promoting small flows to the shared SPQ queue.
struct DynamicLeafSpineConfig {
  topo::LeafSpineConfig fabric;
  std::size_t num_flows = 2000;
  double load = 0.5;  // fraction of per-host access capacity
  int num_services = 7;
  transport::CcKind cc = transport::CcKind::kNewReno;
  bool pias = true;
  std::int64_t pias_threshold_bytes = 100'000;
  std::int32_t mss = net::kDefaultMss;
  Time rto_min = milliseconds(std::int64_t{5});
  double initial_cwnd_packets = 10.0;
  Time initial_srtt = 0;  // see DynamicStarConfig
  std::uint64_t seed = 1;
  Time max_sim_time = seconds(std::int64_t{3600});
  bool audit_invariants = true;  // see DynamicStarConfig
  bool collect_telemetry = true;  // see DynamicStarConfig
  std::size_t telemetry_ring = 4096;
  bool fingerprint_trajectory = true;  // see DynamicStarConfig
  const scenario::Scenario* scenario = nullptr;  // see DynamicStarConfig
};

DynamicExperimentResult run_dynamic_leaf_spine_experiment(const DynamicLeafSpineConfig& config);

}  // namespace dynaq::harness
