#include "harness/static_experiment.hpp"

#include <optional>
#include <stdexcept>

#include "check/invariant_auditor.hpp"
#include "check/trajectory_hash.hpp"
#include "ctrlplane/recovery_instrument.hpp"
#include "oracle/trace_recorder.hpp"
#include "scenario/director.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "transport/host_agent.hpp"

namespace dynaq::harness {

StaticExperimentResult run_static_experiment(const StaticExperimentConfig& config) {
  sim::Simulator sim;
  sim.enable_trajectory_fingerprint(config.fingerprint_trajectory);
  sim::Rng rng(config.seed);
  topo::StarConfig star_config = config.star;
  star_config.scheme.audit = star_config.scheme.audit || config.audit_invariants;
  // Control-plane shim (DESIGN.md §14): wrap DynaQ behind the asynchronous
  // threshold-update/watchdog model on every switch port. The audit
  // decorator still applies on top, so the shim's bounded-staleness
  // contract is verified like any other policy's.
  if (config.control_plane.enabled &&
      star_config.scheme.kind == core::SchemeKind::kDynaQ) {
    const ctrlplane::ControlPlaneConfig cp = config.control_plane;
    const core::DynaQPolicy::Options dynaq_opts = star_config.scheme.dynaq;
    star_config.scheme.custom_policy_sim =
        [cp, dynaq_opts](sim::Simulator& s) -> std::unique_ptr<net::BufferPolicy> {
      return std::make_unique<ctrlplane::ControlPlanePolicy>(s, cp, dynaq_opts);
    };
  }
  topo::StarTopology topo(sim, star_config);

  const int num_queues = static_cast<int>(config.star.queue_weights.size());
  StaticExperimentResult result{
      stats::ThroughputMeter(num_queues, config.meter_window), {}, {}, {}, 0, {}, {}, {}};

  net::MultiQueueQdisc& bottleneck = topo.port_qdisc(config.receiver_host);
  bottleneck.on_dequeue_hook = [&result](int q, const net::Packet& p, Time now) {
    if (!p.is_ack()) result.meter.record(q, p.size, now);
  };

  // One hub per simulator (DESIGN.md §8): the bottleneck switch port and
  // every host NIC report into it; queue_samples ride the hub's series.
  const bool collect = config.collect_telemetry || config.queue_samples > 0;
  telemetry::Hub hub(sim,
                     {.enabled = collect || config.fingerprint_trajectory ||
                                 config.oracle_competitive,
                      .ring_capacity = config.telemetry_ring,
                      .fingerprint = config.fingerprint_trajectory});
  const std::string bottleneck_name = "sw.p" + std::to_string(config.receiver_host);
  if (hub.enabled()) {
    bottleneck.attach_telemetry(hub, bottleneck_name);
    for (int i = 0; i < topo.num_hosts(); ++i) {
      topo.host(i).nic().attach_telemetry(hub, "h" + std::to_string(i) + ".nic");
    }
  }
  // Recovery metrics (DESIGN.md §14): failover/restore windows and
  // throughput retention observed off the bottleneck port's event stream.
  std::optional<ctrlplane::RecoveryInstrument> recovery;
  if (config.control_plane.enabled && hub.enabled()) {
    recovery.emplace(hub, hub.register_port(bottleneck_name));
  }
  // Oracle trace (DESIGN.md §12): drains come off the egress Port's wire
  // taps, so the port joins the hub under the same observation-point name
  // as its qdisc (switch port index == host index on a star).
  std::optional<oracle::ArrivalTraceRecorder> oracle_recorder;
  if (config.oracle_competitive) {
    topo.fabric().port(config.receiver_host).attach_telemetry(hub, bottleneck_name);
    oracle_recorder.emplace(
        hub, oracle::TraceRecorderConfig{
                 bottleneck_name,
                 config.star.link_rate_bps * config.star.egress_rate_factor,
                 config.star.buffer_bytes, config.star.queue_weights});
  }
  if (config.queue_samples > 0) {
    hub.enable_queue_sampling(config.queue_samples, config.queue_sample_skip);
  }

  // Scenario timeline (DESIGN.md §11): the director mutates components only
  // through the handles the topology registers; senders register under
  // their group's queue so service_join/leave can find them.
  std::optional<scenario::ScenarioDirector> director;
  if (config.scenario != nullptr) {
    director.emplace(sim);
    if (hub.enabled()) director->attach_telemetry(hub);
    topo.register_scenario_handles(*director);
  }

  std::uint32_t next_flow_id = 1;
  std::vector<transport::FlowSender*> senders;
  for (const SenderGroup& group : config.groups) {
    if (group.queue < 0 || group.queue >= num_queues) {
      throw std::invalid_argument("sender group references unknown queue");
    }
    for (int f = 0; f < group.num_flows; ++f) {
      const int src = group.first_src_host + (f % group.num_src_hosts);
      transport::FlowParams params;
      params.id = next_flow_id++;
      params.src_host = src;
      params.dst_host = config.receiver_host;
      params.size_bytes = 0;  // unbounded
      params.start = group.start +
                     (config.start_jitter > 0
                          ? static_cast<Time>(rng.uniform() *
                                              static_cast<double>(config.start_jitter))
                          : 0);
      params.stop = group.stop > 0 ? group.stop : config.duration;
      params.service_queue = group.queue;
      params.cc = group.cc;
      params.mss = config.mss;
      params.initial_cwnd_packets = config.initial_cwnd_packets;
      params.rto_min = config.rto_min;

      topo.agent(config.receiver_host).add_receiver(params);
      transport::FlowSender& sender = topo.agent(src).add_sender(params);
      senders.push_back(&sender);
      if (director) director->register_sender(group.queue, sender);
      sender.start();
    }
  }

  if (director) {
    director->set_incast_launcher([&topo, &config, &sim, &next_flow_id,
                                   &senders](const scenario::Action& a) {
      // Synchronized fan-in: `count` short flows into the action's queue,
      // sourced round-robin from every non-receiver host, all launched at
      // the burst's timestamp.
      const int others = topo.num_hosts() - 1;
      if (others <= 0) return;
      for (int f = 0; f < a.count; ++f) {
        int src = f % others;
        if (src >= config.receiver_host) ++src;
        transport::FlowParams params;
        params.id = next_flow_id++;
        params.src_host = src;
        params.dst_host = config.receiver_host;
        params.size_bytes = a.bytes;
        params.start = sim.now();
        params.service_queue = a.queue;
        params.mss = config.mss;
        params.initial_cwnd_packets = config.initial_cwnd_packets;
        params.rto_min = config.rto_min;
        topo.agent(config.receiver_host).add_receiver(params);
        transport::FlowSender& sender = topo.agent(src).add_sender(params);
        senders.push_back(&sender);
        sender.start();
      }
    });
    director->arm(*config.scenario);
  }

  sim.run_until(config.duration);
  if (director) result.scenario_actions = director->actions_applied();
  for (const transport::FlowSender* s : senders) {
    result.sender_totals.data_packets += s->stats().data_packets;
    result.sender_totals.retransmissions += s->stats().retransmissions;
    result.sender_totals.partial_ack_retx += s->stats().partial_ack_retx;
    result.sender_totals.goback_retx += s->stats().goback_retx;
    result.sender_totals.fast_retransmits += s->stats().fast_retransmits;
    result.sender_totals.timeouts += s->stats().timeouts;
    result.sender_totals.bytes_sent += s->stats().bytes_sent;
  }
  result.queue_samples = hub.queue_samples();
  result.bottleneck_stats = bottleneck.stats();
  result.events = sim.events_processed();
  if (collect) {
    result.telemetry = hub.summary();
    result.telemetry_events = hub.ring_events();
    result.telemetry_ports = hub.port_names();
    if (recovery) {
      const ctrlplane::RecoveryInstrument::Metrics m = recovery->finalize(config.duration);
      result.telemetry.control.degraded_us = m.degraded_us;
      result.telemetry.control.recovery_us = m.recovery_us;
      result.telemetry.control.throughput_retention = m.throughput_retention;
    }
  }
  if (config.fingerprint_trajectory) {
    check::TrajectoryHash th;
    th.fold(sim).fold(hub);
    // Audit ledgers in ascending port index: a fixed fold order so equal
    // trajectories hash equal regardless of construction details.
    for (int i = 0; i < topo.num_hosts(); ++i) {
      if (const auto* audited = dynamic_cast<const check::AuditedBufferPolicy*>(
              &topo.port_qdisc(i).policy())) {
        th.fold(audited->ledger());
      }
    }
    result.trajectory_hash = th.value();
  }
  if (oracle_recorder) {
    oracle_recorder->set_horizon(sim.now());
    result.oracle = oracle::evaluate(oracle_recorder->trace());
  }
  return result;
}

}  // namespace dynaq::harness
