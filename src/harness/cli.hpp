// Minimal command-line flag parsing for bench/example binaries:
// --name=value, --name value, and boolean --name.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace dynaq::harness {

class Cli {
 public:
  Cli(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string_view arg = argv[i];
      if (!arg.starts_with("--")) continue;
      arg.remove_prefix(2);
      if (const auto eq = arg.find('='); eq != std::string_view::npos) {
        values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      } else if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
        values_[std::string(arg)] = argv[++i];
      } else {
        values_[std::string(arg)] = "true";
      }
    }
  }

  bool has(const std::string& name) const { return values_.contains(name); }

  bool flag(const std::string& name, bool fallback = false) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return it->second != "false" && it->second != "0";
  }

  std::int64_t integer(const std::string& name, std::int64_t fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
  }

  double real(const std::string& name, double fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
  }

  std::string text(const std::string& name, std::string fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? std::move(fallback) : it->second;
  }

  // Comma-separated list of doubles, e.g. --loads=0.3,0.5,0.8.
  std::vector<double> reals(const std::string& name, std::vector<double> fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    std::vector<double> out;
    std::size_t pos = 0;
    const std::string& s = it->second;
    while (pos < s.size()) {
      std::size_t next = s.find(',', pos);
      if (next == std::string::npos) next = s.size();
      out.push_back(std::strtod(s.substr(pos, next - pos).c_str(), nullptr));
      pos = next + 1;
    }
    return out;
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace dynaq::harness
