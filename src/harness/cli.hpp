// Minimal command-line flag parsing for bench/example binaries:
// --name=value, --name value, and boolean --name. Every accessor records
// the flag name it was asked for, so after a binary has read all its flags
// it can call unknown() / complain_unknown() to catch typos
// (--seeed=3 used to be silently ignored).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace dynaq::harness {

class Cli {
 public:
  Cli(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string_view arg = argv[i];
      if (!arg.starts_with("--")) continue;
      arg.remove_prefix(2);
      if (const auto eq = arg.find('='); eq != std::string_view::npos) {
        values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      } else if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
        values_[std::string(arg)] = argv[++i];
      } else {
        values_[std::string(arg)] = "true";
      }
    }
  }

  bool has(const std::string& name) const {
    queried_.insert(name);
    return values_.contains(name);
  }

  bool flag(const std::string& name, bool fallback = false) const {
    queried_.insert(name);
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return it->second != "false" && it->second != "0";
  }

  std::int64_t integer(const std::string& name, std::int64_t fallback) const {
    queried_.insert(name);
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
  }

  double real(const std::string& name, double fallback) const {
    queried_.insert(name);
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
  }

  std::string text(const std::string& name, std::string fallback) const {
    queried_.insert(name);
    const auto it = values_.find(name);
    return it == values_.end() ? std::move(fallback) : it->second;
  }

  // Comma-separated list of doubles, e.g. --loads=0.3,0.5,0.8.
  std::vector<double> reals(const std::string& name, std::vector<double> fallback) const {
    queried_.insert(name);
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    std::vector<double> out;
    std::size_t pos = 0;
    const std::string& s = it->second;
    while (pos < s.size()) {
      std::size_t next = s.find(',', pos);
      if (next == std::string::npos) next = s.size();
      out.push_back(std::strtod(s.substr(pos, next - pos).c_str(), nullptr));
      pos = next + 1;
    }
    return out;
  }

  // Comma-separated list of strings, e.g. --schemes=DynaQ,PQL.
  std::vector<std::string> list(const std::string& name,
                                std::vector<std::string> fallback) const {
    queried_.insert(name);
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    std::vector<std::string> out;
    std::size_t pos = 0;
    const std::string& s = it->second;
    while (pos < s.size()) {
      std::size_t next = s.find(',', pos);
      if (next == std::string::npos) next = s.size();
      out.push_back(s.substr(pos, next - pos));
      pos = next + 1;
    }
    return out;
  }

  // Flags that were given on the command line but never looked up by any
  // accessor. Only meaningful after the binary has read all its flags.
  std::vector<std::string> unknown() const {
    std::vector<std::string> out;
    for (const auto& [name, value] : values_) {
      if (!queried_.contains(name)) out.push_back(name);
    }
    return out;
  }

  // Warns on stderr about unrecognized flags; returns true (i.e. "abort")
  // only when `strict` is set and at least one flag was unrecognized.
  bool complain_unknown(bool strict) const {
    const auto bad = unknown();
    for (const auto& name : bad) {
      std::fprintf(stderr, "%s: unrecognized flag --%s\n", strict ? "error" : "warning",
                   name.c_str());
    }
    return strict && !bad.empty();
  }

 private:
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> queried_;
};

}  // namespace dynaq::harness
