// Column-aligned plain-text tables for bench output: the same rows/series
// the paper's figures plot, greppable and diffable.
#pragma once

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace dynaq::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], r[c].size());
      }
    }
    print_row(os, header_, widths);
    std::string rule;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      rule += std::string(widths[c], '-');
      if (c + 1 < widths.size()) rule += "  ";
    }
    os << rule << '\n';
    for (const auto& r : rows_) print_row(os, r, widths);
  }

  static std::string num(double v, int precision = 3) {
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    return ss.str();
  }

 private:
  static void print_row(std::ostream& os, const std::vector<std::string>& cells,
                        const std::vector<std::size_t>& widths) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[c])) << cell;
      if (c + 1 < widths.size()) os << "  ";
    }
    os << '\n';
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dynaq::harness
