#include "oracle/report.hpp"

namespace dynaq::oracle {
namespace {

// Below one byte both sides are noise: call the ratio 1. A zero-delivery
// policy against a real optimum has no finite ratio; report -1.
double safe_ratio(double optimal, double policy) {
  if (policy >= 1.0) return optimal / policy;
  return optimal < 1.0 ? 1.0 : -1.0;
}

}  // namespace

Report evaluate(const ArrivalTrace& trace) {
  const OfflineOptimalResult opt = OfflineOptimal::solve(trace);

  Report report;
  report.port = trace.port;
  report.offered_bytes = opt.offered_bytes;
  report.policy_bytes = opt.policy_bytes;
  report.optimal_bytes = opt.optimal_bytes;
  report.ratio = safe_ratio(opt.optimal_bytes, static_cast<double>(opt.policy_bytes));
  report.arrivals = opt.arrivals;
  report.policy_drops = opt.policy_drops;
  report.policy_evictions = opt.policy_evictions;
  report.opt_pushouts = opt.opt_pushouts;
  report.trace_events = trace.events.size();
  report.trace_fingerprint = trace.fingerprint();

  const std::size_t n = opt.optimal_bytes_per_queue.size();
  report.queues.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    QueueRatio q;
    q.queue = static_cast<int>(i);
    q.offered_bytes = opt.offered_bytes_per_queue[i];
    q.policy_bytes = opt.policy_bytes_per_queue[i];
    q.optimal_bytes = opt.optimal_bytes_per_queue[i];
    q.ratio = safe_ratio(q.optimal_bytes, static_cast<double>(q.policy_bytes));
    report.queues.push_back(q);
  }
  return report;
}

}  // namespace dynaq::oracle
