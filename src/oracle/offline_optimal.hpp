// Clairvoyant shared-buffer allocator replayed over a recorded ArrivalTrace
// (DESIGN.md §12): an upper bound on the bytes any online buffer-sharing
// policy could have delivered for the same arrival sequence.
//
// Model: a fluid server of rate R (the port's line rate) drains a shared
// buffer under GPS with the trace's scheduler weights. Capacity is B plus
// one serializer slot (the largest recorded packet): the online system
// holds up to B in the qdisc *and* one packet already dequeued into the
// transmitter, and the optimum is granted the same physical resources.
// Every recorded arrival (admit + drop — the offered load, independent of
// what the online policy decided) is accepted greedily; whenever occupancy
// exceeds capacity the solver regrets exactly the overflow, pushing fluid
// out of the queue with the most stranded backlog (backlog beyond its
// guaranteed service for the remaining horizon — clairvoyance is knowing
// the horizon). Rollback is exact: a pushed-out arrival never consumed
// service.
//
// Why the aggregate is a true upper bound: the fluid server is
// work-conserving, so aggregate delivered = R · measure{occupancy > 0}
// regardless of which victim the regret step picks. By induction the
// optimum's unfinished work dominates the policy system's (both serve at
// R; the optimum admits a superset and sheds only down to a capacity the
// policy system never exceeds), so the optimum's busy set covers the
// policy's, and with the horizon extended past the last recorded drain's
// serialization window, recorded policy bytes ≤ R · (policy busy time) ≤
// optimal bytes. Victim choice only shapes the per-queue split (reported
// for diagnosis).
#pragma once

#include <cstdint>
#include <vector>

#include "oracle/trace.hpp"

namespace dynaq::oracle {

struct OfflineOptimalResult {
  // Clairvoyant upper bound (fluid, hence double) vs. the recorded policy.
  double optimal_bytes = 0.0;
  std::int64_t policy_bytes = 0;   // recorded drains (serialization starts)
  std::int64_t offered_bytes = 0;  // recorded admits + drops
  std::vector<double> optimal_bytes_per_queue;
  std::vector<std::int64_t> policy_bytes_per_queue;
  std::vector<std::int64_t> offered_bytes_per_queue;

  std::uint64_t arrivals = 0;          // offered packets
  std::uint64_t policy_drops = 0;      // recorded drop events
  std::uint64_t policy_evictions = 0;  // recorded evict events
  std::uint64_t opt_pushouts = 0;      // regret steps the clairvoyant took
  double opt_pushout_bytes = 0.0;      // fluid it rolled back
  Time horizon = 0;                    // extended horizon actually replayed
};

class OfflineOptimal {
 public:
  static OfflineOptimalResult solve(const ArrivalTrace& trace);
};

}  // namespace dynaq::oracle
