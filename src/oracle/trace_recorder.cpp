#include "oracle/trace_recorder.hpp"

#include <utility>

namespace dynaq::oracle {

ArrivalTraceRecorder::ArrivalTraceRecorder(telemetry::Hub& hub, TraceRecorderConfig config)
    : port_id_(hub.register_port(config.port)) {
  trace_.port = std::move(config.port);
  trace_.line_rate_bps = config.line_rate_bps;
  trace_.buffer_bytes = config.buffer_bytes;
  trace_.weights = std::move(config.weights);

  // Bus half: admissions, drops and evictions at the observation point.
  // kDrop carries the arrival the policy refused — together with kEnqueue
  // it reconstructs the full offered arrival sequence.
  hub.subscribe([this](const telemetry::Event& e) {
    if (e.port != port_id_) return;
    switch (e.kind) {
      case telemetry::EventKind::kEnqueue:
        trace_.events.push_back({e.when, TraceEventKind::kAdmit, e.queue, e.bytes});
        break;
      case telemetry::EventKind::kDrop:
        trace_.events.push_back({e.when, TraceEventKind::kDrop, e.queue, e.bytes});
        break;
      case telemetry::EventKind::kEvict:
        // e.queue is the victim whose buffered packet was displaced.
        trace_.events.push_back({e.when, TraceEventKind::kEvict, e.queue, e.bytes});
        break;
      default:
        break;
    }
  });

  // Wire half: serialization starts are the moment bytes leave the shared
  // buffer, i.e. the policy's realized drain sequence.
  hub.add_wire_listener([this](const telemetry::WireRecord& w) {
    if (w.port != port_id_ || !w.transmit) return;
    trace_.events.push_back(
        {w.when, TraceEventKind::kDrain, static_cast<std::int16_t>(w.queue), w.size});
  });
}

}  // namespace dynaq::oracle
