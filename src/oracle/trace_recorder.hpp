// Records an ArrivalTrace from a live run by listening to telemetry::Hub
// (DESIGN.md §12). The recorder subscribes to the typed event bus
// (enqueue → admit, drop → drop, evict → evict) and to the wire taps
// (serialization start → drain), filtered to one observation point, so it
// needs no new callbacks on net::Port and no access to queue internals.
//
// Attaching a recorder leaves the run's trajectory_hash untouched: bus
// subscription is passive and Hub::emit_wire() does not fold wire records
// into the fingerprint (only emit() does).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "oracle/trace.hpp"
#include "telemetry/hub.hpp"

namespace dynaq::oracle {

struct TraceRecorderConfig {
  std::string port;            // hub observation-point name, e.g. "sw.p0"
  double line_rate_bps = 0.0;  // effective egress line rate at that port
  std::int64_t buffer_bytes = 0;
  std::vector<double> weights;  // scheduler weight per service queue
};

class ArrivalTraceRecorder {
 public:
  // Registers the observation point on `hub` (idempotent per name, so the
  // port/qdisc pair that shares the name keeps its id) and installs the
  // listeners. The recorder must outlive every emission on `hub`.
  ArrivalTraceRecorder(telemetry::Hub& hub, TraceRecorderConfig config);

  // Listeners capture `this`; moving the recorder would dangle them.
  ArrivalTraceRecorder(const ArrivalTraceRecorder&) = delete;
  ArrivalTraceRecorder& operator=(const ArrivalTraceRecorder&) = delete;

  // Stamp the end of the observation window (normally sim.now() after the
  // run) so the solver knows how much service time the optimum had.
  void set_horizon(Time horizon) { trace_.horizon = horizon; }

  const ArrivalTrace& trace() const { return trace_; }

 private:
  int port_id_;
  ArrivalTrace trace_;
};

}  // namespace dynaq::oracle
