// Empirical competitive ratios: clairvoyant optimal bytes / policy bytes,
// per queue and aggregate, packaged for harness results and sweep JSON
// (schema_version 5, DESIGN.md §12).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "oracle/offline_optimal.hpp"
#include "oracle/trace.hpp"

namespace dynaq::oracle {

struct QueueRatio {
  int queue = 0;
  std::int64_t offered_bytes = 0;
  std::int64_t policy_bytes = 0;
  double optimal_bytes = 0.0;
  // optimal / policy; 1.0 when both are (near) zero, -1.0 when the policy
  // delivered nothing against a nonzero optimum (ratio undefined). Note the
  // aggregate bound is what the theory guarantees — a per-queue ratio may
  // dip below 1 because the clairvoyant split differs from the policy's.
  double ratio = 1.0;
};

struct Report {
  std::string port;  // observation point the trace was recorded at
  std::int64_t offered_bytes = 0;
  std::int64_t policy_bytes = 0;
  double optimal_bytes = 0.0;
  double ratio = 1.0;  // aggregate competitive ratio (optimal / policy, >= 1)
  std::vector<QueueRatio> queues;

  std::uint64_t arrivals = 0;
  std::uint64_t policy_drops = 0;
  std::uint64_t policy_evictions = 0;
  std::uint64_t opt_pushouts = 0;
  std::uint64_t trace_events = 0;
  std::uint64_t trace_fingerprint = 0;  // record→replay identity checks
};

// Solve the trace and package the ratios.
Report evaluate(const ArrivalTrace& trace);

}  // namespace dynaq::oracle
