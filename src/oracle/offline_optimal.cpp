#include "oracle/offline_optimal.hpp"

#include <algorithm>
#include <cmath>

namespace dynaq::oracle {
namespace {

// Fluid-backlog positivity cutoff in bytes: far below one byte, far above
// the accumulated rounding error of any realistic trace.
constexpr double kEps = 1e-6;

}  // namespace

OfflineOptimalResult OfflineOptimal::solve(const ArrivalTrace& trace) {
  OfflineOptimalResult r;

  // Queue count: the weight vector, widened if the trace mentions a higher
  // index (unknown queues get weight 1 — they existed, we just were not
  // told their share).
  int n = trace.num_queues();
  for (const TraceEvent& e : trace.events) {
    n = std::max(n, static_cast<int>(e.queue) + 1);
  }
  n = std::max(n, 1);
  std::vector<double> w(trace.weights);
  w.resize(static_cast<std::size_t>(n), 1.0);
  double total_weight = 0.0;
  for (double wi : w) total_weight += std::max(wi, 0.0);

  const double rate = trace.line_rate_bps / 8.0 / 1e12;  // bytes per picosecond

  // Capacity: the shared buffer plus one serializer slot. The online
  // policy's system holds up to B in the qdisc *and* one packet already
  // dequeued into the transmitter (drains are recorded at serialization
  // start), so an optimum capped at exactly B could fall below the policy
  // on bursty traces. Granting the same slot — sized by the largest packet
  // the trace ever saw — restores the domination argument (see header).
  std::int32_t serializer_slot = 0;
  for (const TraceEvent& e : trace.events) {
    if (e.kind == TraceEventKind::kAdmit || e.kind == TraceEventKind::kDrain) {
      serializer_slot = std::max(serializer_slot, e.bytes);
    }
  }
  const double buffer = static_cast<double>(trace.buffer_bytes + serializer_slot);

  // Clairvoyant horizon: at least the observation window, and always past
  // the serialization window of the last recorded drain, so every byte the
  // policy put on the wire fits inside the optimum's service budget.
  double horizon = static_cast<double>(trace.horizon);
  for (const TraceEvent& e : trace.events) {
    horizon = std::max(horizon, static_cast<double>(e.when));
    if (e.kind == TraceEventKind::kDrain && rate > 0.0) {
      horizon = std::max(horizon, static_cast<double>(e.when) + e.bytes / rate);
    }
  }
  r.horizon = static_cast<Time>(std::ceil(horizon));

  std::vector<double> backlog(static_cast<std::size_t>(n), 0.0);    // fluid bytes buffered
  std::vector<double> delivered(static_cast<std::size_t>(n), 0.0);  // fluid bytes served
  std::vector<double> share(static_cast<std::size_t>(n), 0.0);      // scratch: GPS rates
  r.optimal_bytes_per_queue.assign(static_cast<std::size_t>(n), 0.0);
  r.policy_bytes_per_queue.assign(static_cast<std::size_t>(n), 0);
  r.offered_bytes_per_queue.assign(static_cast<std::size_t>(n), 0);
  double occupancy = 0.0;

  // GPS fluid drain from `t` to `to`: piecewise-constant shares, advancing
  // to the next queue-empties breakpoint; at most n+1 segments per call.
  auto advance = [&](double t, double to) {
    if (rate <= 0.0) return;
    while (t < to) {
      double active_weight = 0.0;
      int active = 0;
      for (int i = 0; i < n; ++i) {
        if (backlog[static_cast<std::size_t>(i)] > kEps) {
          active_weight += std::max(w[static_cast<std::size_t>(i)], 0.0);
          ++active;
        }
      }
      if (active == 0) return;
      double dt = to - t;
      for (int i = 0; i < n; ++i) {
        const auto ui = static_cast<std::size_t>(i);
        if (backlog[ui] <= kEps) {
          share[ui] = 0.0;
          continue;
        }
        // Zero-weight queues still drain once every weighted queue is idle
        // (the packet scheduler below is work-conserving too).
        share[ui] = active_weight > 0.0 ? rate * std::max(w[ui], 0.0) / active_weight
                                        : rate / active;
        if (share[ui] > 0.0) dt = std::min(dt, backlog[ui] / share[ui]);
      }
      if (dt <= 0.0) dt = to - t;  // numeric floor: finish the interval
      for (int i = 0; i < n; ++i) {
        const auto ui = static_cast<std::size_t>(i);
        const double served = std::min(backlog[ui], share[ui] * dt);
        backlog[ui] -= served;
        delivered[ui] += served;
        occupancy -= served;
      }
      t += dt;
    }
  };

  // Regret step: shed exactly the overflow, from the queue with the most
  // stranded backlog — backlog beyond its guaranteed GPS service for the
  // remaining horizon (this is where clairvoyance enters). The aggregate
  // optimum is invariant to this choice (see header); ties go to the lowest
  // index for determinism.
  auto push_out = [&](double t, double excess) {
    const double remaining = std::max(horizon - t, 0.0);
    while (excess > kEps) {
      int victim = -1;
      double worst = 0.0;
      for (int i = 0; i < n; ++i) {
        const auto ui = static_cast<std::size_t>(i);
        if (backlog[ui] <= kEps) continue;
        const double guaranteed =
            total_weight > 0.0 ? rate * std::max(w[ui], 0.0) / total_weight * remaining : 0.0;
        const double stranded = backlog[ui] - guaranteed;
        if (victim < 0 || stranded > worst) {
          victim = i;
          worst = stranded;
        }
      }
      if (victim < 0) return;  // nothing buffered: occupancy drift, ignore
      const auto uv = static_cast<std::size_t>(victim);
      const double removed = std::min(excess, backlog[uv]);
      backlog[uv] -= removed;
      occupancy -= removed;
      excess -= removed;
      ++r.opt_pushouts;
      r.opt_pushout_bytes += removed;
    }
  };

  double now = 0.0;
  for (const TraceEvent& e : trace.events) {
    if (e.queue < 0) continue;  // malformed record: no queue to charge
    const double when = static_cast<double>(e.when);
    if (when > now) {
      advance(now, when);
      now = when;
    }
    const auto q = static_cast<std::size_t>(e.queue);
    switch (e.kind) {
      case TraceEventKind::kAdmit:
      case TraceEventKind::kDrop: {
        // Offered load: what the online policy decided is irrelevant to the
        // optimum — it sees the arrival either way.
        ++r.arrivals;
        r.offered_bytes += e.bytes;
        r.offered_bytes_per_queue[q] += e.bytes;
        backlog[q] += e.bytes;
        occupancy += e.bytes;
        if (occupancy > buffer) push_out(now, occupancy - buffer);
        if (e.kind == TraceEventKind::kDrop) ++r.policy_drops;
        break;
      }
      case TraceEventKind::kEvict:
        // The online policy displacing its own buffered packet is not an
        // arrival; the optimum already counted that packet when it arrived.
        ++r.policy_evictions;
        break;
      case TraceEventKind::kDrain:
        r.policy_bytes += e.bytes;
        r.policy_bytes_per_queue[q] += e.bytes;
        break;
    }
  }
  advance(now, horizon);

  for (int i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    r.optimal_bytes_per_queue[ui] = delivered[ui];
    r.optimal_bytes += delivered[ui];
  }
  return r;
}

}  // namespace dynaq::oracle
