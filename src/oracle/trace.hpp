// The offline-optimal oracle's input: a compact, deterministic record of
// everything that crossed one switch egress port (DESIGN.md §12).
//
// A trace is built exclusively from telemetry::Hub observations — the event
// bus (enqueue/drop/evict) plus the wire taps (serialization starts) — so
// the subsystem sits at the bottom of the dependency stack next to
// telemetry: it never includes queue internals (check_conventions.sh rule
// 12) and attaching a recorder cannot perturb a run (wire taps are not
// folded into the hub's trajectory fingerprint).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/fingerprint.hpp"
#include "sim/time.hpp"

namespace dynaq::oracle {

enum class TraceEventKind : std::uint8_t {
  kAdmit = 0,  // the policy accepted the arrival into the shared buffer
  kDrop = 1,   // the policy (or the physical bound) refused the arrival
  kEvict = 2,  // a buffered packet was displaced to admit an arrival
  kDrain = 3,  // serialization onto the wire started (bytes left the buffer)
};

constexpr std::string_view trace_event_kind_name(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kAdmit: return "admit";
    case TraceEventKind::kDrop: return "drop";
    case TraceEventKind::kEvict: return "evict";
    case TraceEventKind::kDrain: return "drain";
  }
  return "unknown";
}

struct TraceEvent {
  Time when = 0;
  TraceEventKind kind = TraceEventKind::kAdmit;
  std::int16_t queue = -1;  // service queue at the observation point
  std::int32_t bytes = 0;   // packet size
};

// Everything the clairvoyant solver needs to replay one port: the arrival
// sequence (admits + drops = offered load), the policy's realized drains,
// and the physical resources (shared buffer, line rate, scheduler weights)
// the optimum must respect. Events appear in emission order, which the
// single-threaded engine keeps deterministic per seed.
struct ArrivalTrace {
  std::string port;             // hub observation-point name, e.g. "sw.p0"
  double line_rate_bps = 0.0;   // effective egress line rate
  std::int64_t buffer_bytes = 0;
  std::vector<double> weights;  // scheduler weight per service queue
  Time horizon = 0;             // end of the observation window (sim end)
  std::vector<TraceEvent> events;

  int num_queues() const { return static_cast<int>(weights.size()); }

  // FNV-1a digest of the header + every event, for record→replay
  // byte-identity checks (same primitive as the trajectory hash).
  std::uint64_t fingerprint() const {
    std::uint64_t h = sim::kFnv1aOffset;
    h = sim::fnv1a_u64(h, static_cast<std::uint64_t>(buffer_bytes));
    h = sim::fnv1a_u64(h, static_cast<std::uint64_t>(line_rate_bps));
    h = sim::fnv1a_u64(h, static_cast<std::uint64_t>(weights.size()));
    h = sim::fnv1a_u64(h, static_cast<std::uint64_t>(horizon));
    for (const TraceEvent& e : events) {
      h = sim::fnv1a_u64(h, static_cast<std::uint64_t>(e.when));
      h = sim::fnv1a_u64(h, (static_cast<std::uint64_t>(e.kind) << 48) |
                                (static_cast<std::uint64_t>(static_cast<std::uint16_t>(e.queue)) << 32) |
                                static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.bytes)));
    }
    return h;
  }
};

}  // namespace dynaq::oracle
