// Runtime invariant auditor for the buffer-policy contract (DESIGN.md §6).
//
// AuditedBufferPolicy is a transparent decorator around any net::BufferPolicy:
// it forwards every call to the wrapped policy and, around each one, verifies
// the invariants the DynaQ paper states but ordinary tests only spot-check:
//
//   * ΣT_i = B at all times for threshold-conserving policies (Eq. 1), and
//     T_i ≥ 0 for every advertised threshold;
//   * a rejected admit() leaves the thresholds untouched (no drift without
//     packets entering the buffer);
//   * an admitted packet fits under its queue's threshold when the policy
//     declares threshold-enforced admission (q_p + size ≤ T_p, DESIGN.md §4);
//   * on_admit_aborted() restores the exact pre-admit thresholds
//     (snapshot-diff proof of DynaQController::undo_last_exchange);
//   * evict_candidate() only names in-range, non-empty queues other than the
//     arriving one;
//   * on_buffer_resize() re-derives thresholds for the new B;
//   * port-level packet conservation: the auditor keeps its own ledger of
//     enqueued/dequeued bytes and packets and cross-checks it against the
//     MqState occupancy on every operation (enqueued = dequeued + resident).
//
// Violations become structured diagnostics (sim time, scheme, queue, state
// snapshot) and either throw AuditError (default — fails the test that
// triggered it) or accumulate in violations() for inspection.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "net/buffer_policy.hpp"
#include "net/mq_state.hpp"
#include "sim/simulator.hpp"

namespace dynaq::check {

enum class ViolationKind {
  kThresholdSumMismatch,  // ΣT != B for a threshold-conserving policy
  kNegativeThreshold,     // some advertised T_i < 0
  kRejectMutatedState,    // admit() returned false but thresholds changed
  kAdmitBeyondThreshold,  // enforcing policy admitted beyond T_q
  kAbortRollbackLeak,     // on_admit_aborted() did not restore pre-admit thresholds
  kBadEvictionVictim,     // victim out of range, == arriving queue, or empty
  kConservationMismatch,  // ledger vs MqState byte/packet accounting drift
  kQueueAccountingDrift,  // queue byte counter != sum of resident packet sizes
  kStaleThresholdWindow,  // ΣT != B persisted beyond threshold_staleness_bound()
};

std::string_view violation_kind_name(ViolationKind kind);

// One contract violation, with enough context to reproduce: which check
// fired, when (sim time, if a simulator was attached), on which policy and
// queue, and the buffer state at that instant.
struct Violation {
  ViolationKind kind = ViolationKind::kThresholdSumMismatch;
  Time when = 0;
  std::string scheme;    // wrapped policy's name()
  std::string where;     // hook that fired the check (e.g. "admit")
  int queue = -1;        // service queue involved; -1 for port-level checks
  std::string detail;    // human-readable specifics with the offending numbers
  std::int64_t buffer_bytes = 0;
  std::int64_t port_bytes = 0;
  std::vector<std::int64_t> thresholds;  // policy thresholds at violation time
};

std::string to_string(const Violation& v);

class AuditError : public std::runtime_error {
 public:
  explicit AuditError(Violation v);
  const Violation& violation() const { return violation_; }

 private:
  Violation violation_;
};

struct AuditOptions {
  // true: throw AuditError at the first violation (fail fast — the default
  // wired into the harness). false: record into violations() and keep going,
  // which the auditor's own tests use to collect multiple diagnostics.
  bool throw_on_violation = true;
  std::size_t max_recorded = 1024;
  // Every N audited operations, additionally recompute each queue's byte and
  // packet totals from the actual packet deques (O(resident) sweep) and
  // compare with the incremental counters. 0 disables the sweep.
  std::uint64_t deep_check_every = 256;
};

// Monotonic per-port accounting maintained by the auditor, independent of
// MqStats: conservation requires enqueued == dequeued + resident at all times
// (evictions count as dequeues; drops never enter the ledger).
struct AuditLedger {
  std::uint64_t enqueued_packets = 0;
  std::uint64_t dequeued_packets = 0;
  std::int64_t enqueued_bytes = 0;
  std::int64_t dequeued_bytes = 0;
  std::uint64_t admits_allowed = 0;
  std::uint64_t admits_rejected = 0;
  std::uint64_t aborts = 0;

  std::int64_t resident_bytes() const { return enqueued_bytes - dequeued_bytes; }
  std::uint64_t resident_packets() const { return enqueued_packets - dequeued_packets; }
};

class AuditedBufferPolicy final : public net::BufferPolicy {
 public:
  // `sim` is optional and only used to stamp diagnostics with the sim time.
  explicit AuditedBufferPolicy(std::unique_ptr<net::BufferPolicy> inner,
                               const sim::Simulator* sim = nullptr, AuditOptions options = {});

  void attach(const net::MqState& state) override;
  bool admit(const net::MqState& state, int q, const net::Packet& p) override;
  void on_admit_aborted(const net::MqState& state, int q, const net::Packet& p) override;
  int evict_candidate(const net::MqState& state, int q, const net::Packet& p) override;
  void on_buffer_resize(const net::MqState& state) override;
  // Mid-run weight rebalance (DESIGN.md §11): ΣT = B must hold again the
  // instant the rebalance returns — this is the audit point the scenario
  // weight_update action is checked at.
  void on_weights_changed(const net::MqState& state) override;
  void on_enqueue(const net::MqState& state, int q, const net::Packet& p) override;
  void on_dequeue(const net::MqState& state, int q, const net::Packet& p) override;

  // The decorator is transparent: introspection reflects the wrapped policy.
  std::vector<std::int64_t> thresholds() const override { return inner_->thresholds(); }
  bool conserves_threshold_sum() const override { return inner_->conserves_threshold_sum(); }
  bool enforces_thresholds() const override { return inner_->enforces_thresholds(); }
  Time threshold_staleness_bound() const override { return inner_->threshold_staleness_bound(); }
  void attach_telemetry(telemetry::Hub& hub, int tel_port) override {
    inner_->attach_telemetry(hub, tel_port);
  }
  telemetry::DropReason last_drop_reason() const override { return inner_->last_drop_reason(); }
  int last_exchange_victim() const override { return inner_->last_exchange_victim(); }
  std::string_view name() const override { return inner_->name(); }

  net::BufferPolicy& inner() { return *inner_; }
  const net::BufferPolicy& inner() const { return *inner_; }

  const std::vector<Violation>& violations() const { return violations_; }
  const AuditLedger& ledger() const { return ledger_; }
  std::uint64_t checks_run() const { return checks_run_; }
  void clear_violations() { violations_.clear(); }

  // Bounded-staleness introspection (DESIGN.md §14): the sim time of the
  // first still-unresolved ΣT ≠ B observation, or -1 when the sum currently
  // balances. Only meaningful for policies with a nonzero staleness bound.
  Time stale_since() const { return stale_since_; }

 private:
  void report(ViolationKind kind, const net::MqState& state, const char* where, int queue,
              std::string detail);
  // ΣT = B (conserving policies) and T_i ≥ 0; reuses snapshot_ as scratch.
  void check_thresholds(const net::MqState& state, const char* where);
  // Ledger vs MqState: Σq_i == port_bytes, ledger resident == port state.
  void check_conservation(const net::MqState& state, const char* where);
  void deep_check(const net::MqState& state, const char* where);

  std::unique_ptr<net::BufferPolicy> inner_;
  const sim::Simulator* sim_ = nullptr;
  AuditOptions options_;
  AuditLedger ledger_;
  std::vector<Violation> violations_;
  std::uint64_t checks_run_ = 0;
  std::uint64_t ops_since_deep_check_ = 0;
  // Thresholds captured immediately before the last admit(), against which
  // both the reject path and on_admit_aborted() are diffed.
  std::vector<std::int64_t> pre_admit_thresholds_;
  bool pre_admit_valid_ = false;
  std::vector<std::int64_t> scratch_;
  // First audited observation of ΣT ≠ B that has not rebalanced yet; -1
  // while the sum holds. Drives the bounded-staleness window (§14).
  Time stale_since_ = -1;
};

}  // namespace dynaq::check
