#include "check/trajectory_hash.hpp"

namespace dynaq::check {

TrajectoryHash& TrajectoryHash::fold(const AuditLedger& ledger) {
  fold(ledger.enqueued_packets).fold(ledger.dequeued_packets);
  fold(static_cast<std::uint64_t>(ledger.enqueued_bytes));
  fold(static_cast<std::uint64_t>(ledger.dequeued_bytes));
  fold(ledger.admits_allowed).fold(ledger.admits_rejected).fold(ledger.aborts);
  return *this;
}

std::string TrajectoryHash::fingerprint_hex(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out = "0x0000000000000000";
  for (std::size_t i = 17; i >= 2; --i) {
    out[i] = kDigits[v & 0xfu];
    v >>= 4;
  }
  return out;
}

}  // namespace dynaq::check
