#include "check/invariant_auditor.hpp"

#include <sstream>
#include <utility>

namespace dynaq::check {

std::string_view violation_kind_name(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kThresholdSumMismatch: return "threshold-sum-mismatch";
    case ViolationKind::kNegativeThreshold: return "negative-threshold";
    case ViolationKind::kRejectMutatedState: return "reject-mutated-state";
    case ViolationKind::kAdmitBeyondThreshold: return "admit-beyond-threshold";
    case ViolationKind::kAbortRollbackLeak: return "abort-rollback-leak";
    case ViolationKind::kBadEvictionVictim: return "bad-eviction-victim";
    case ViolationKind::kConservationMismatch: return "conservation-mismatch";
    case ViolationKind::kQueueAccountingDrift: return "queue-accounting-drift";
    case ViolationKind::kStaleThresholdWindow: return "stale-threshold-window";
  }
  return "?";
}

std::string to_string(const Violation& v) {
  std::ostringstream os;
  os << "[audit:" << violation_kind_name(v.kind) << "] scheme=" << v.scheme << " in=" << v.where
     << " t=" << to_microseconds(v.when) << "us";
  if (v.queue >= 0) os << " queue=" << v.queue;
  os << " B=" << v.buffer_bytes << " port_bytes=" << v.port_bytes;
  if (!v.thresholds.empty()) {
    os << " T=[";
    for (std::size_t i = 0; i < v.thresholds.size(); ++i) {
      if (i > 0) os << ",";
      os << v.thresholds[i];
    }
    os << "]";
  }
  os << ": " << v.detail;
  return os.str();
}

AuditError::AuditError(Violation v) : std::runtime_error(to_string(v)), violation_(std::move(v)) {}

AuditedBufferPolicy::AuditedBufferPolicy(std::unique_ptr<net::BufferPolicy> inner,
                                         const sim::Simulator* sim, AuditOptions options)
    : inner_(std::move(inner)), sim_(sim), options_(options) {
  if (!inner_) throw std::invalid_argument("AuditedBufferPolicy needs a policy to wrap");
}

void AuditedBufferPolicy::report(ViolationKind kind, const net::MqState& state, const char* where,
                                 int queue, std::string detail) {
  Violation v;
  v.kind = kind;
  v.when = sim_ != nullptr ? sim_->now() : 0;
  v.scheme = std::string(inner_->name());
  v.where = where;
  v.queue = queue;
  v.detail = std::move(detail);
  v.buffer_bytes = state.buffer_bytes;
  v.port_bytes = state.port_bytes;
  v.thresholds = inner_->thresholds();
  if (options_.throw_on_violation) throw AuditError(std::move(v));
  if (violations_.size() < options_.max_recorded) violations_.push_back(std::move(v));
}

void AuditedBufferPolicy::check_thresholds(const net::MqState& state, const char* where) {
  ++checks_run_;
  scratch_ = inner_->thresholds();
  if (scratch_.empty()) return;  // policy has no threshold notion (e.g. BestEffort)
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < scratch_.size(); ++i) {
    sum += scratch_[i];
    if (scratch_[i] < 0) {
      std::ostringstream os;
      os << "T_" << i << " = " << scratch_[i] << " < 0";
      report(ViolationKind::kNegativeThreshold, state, where, static_cast<int>(i), os.str());
    }
  }
  if (!inner_->conserves_threshold_sum()) return;
  if (sum == state.buffer_bytes) {
    stale_since_ = -1;  // the sum re-balanced; close any staleness window
    return;
  }
  // Bounded staleness (DESIGN.md §14): an asynchronously-updated policy may
  // run on stale thresholds after a resize/weight change until the next
  // control update commits, so ΣT = B is checked at commit points rather
  // than mid-flight. The drift still has a hard deadline: the first
  // mismatched observation opens a window, and a mismatch persisting past
  // the policy's declared bound is a violation. Without a simulator there
  // is no clock to bound the window, so the strict check applies.
  const Time bound = inner_->threshold_staleness_bound();
  if (bound > 0 && sim_ != nullptr) {
    const Time now = sim_->now();
    if (stale_since_ < 0) stale_since_ = now;
    if (now - stale_since_ > bound) {
      std::ostringstream os;
      os << "sum(T) = " << sum << " != B = " << state.buffer_bytes << " for "
         << to_microseconds(now - stale_since_) << "us > staleness bound "
         << to_microseconds(bound) << "us";
      report(ViolationKind::kStaleThresholdWindow, state, where, -1, os.str());
      stale_since_ = now;  // one violation per expired window in record mode
    }
    return;
  }
  std::ostringstream os;
  os << "sum(T) = " << sum << " != B = " << state.buffer_bytes;
  report(ViolationKind::kThresholdSumMismatch, state, where, -1, os.str());
}

void AuditedBufferPolicy::check_conservation(const net::MqState& state, const char* where) {
  ++checks_run_;
  std::int64_t queue_bytes = 0;
  std::uint64_t queue_packets = 0;
  for (const net::ServiceQueue& q : state.queues) {
    queue_bytes += q.bytes;
    queue_packets += q.packets.size();
  }
  if (queue_bytes != state.port_bytes) {
    std::ostringstream os;
    os << "sum(q_i) = " << queue_bytes << " != port_bytes = " << state.port_bytes;
    report(ViolationKind::kConservationMismatch, state, where, -1, os.str());
  }
  if (ledger_.resident_bytes() != state.port_bytes ||
      ledger_.resident_packets() != queue_packets) {
    std::ostringstream os;
    os << "ledger: enqueued(" << ledger_.enqueued_bytes << "B/" << ledger_.enqueued_packets
       << "p) - dequeued(" << ledger_.dequeued_bytes << "B/" << ledger_.dequeued_packets
       << "p) != resident(" << state.port_bytes << "B/" << queue_packets << "p)";
    report(ViolationKind::kConservationMismatch, state, where, -1, os.str());
  }
  if (options_.deep_check_every > 0 && ++ops_since_deep_check_ >= options_.deep_check_every) {
    ops_since_deep_check_ = 0;
    deep_check(state, where);
  }
}

void AuditedBufferPolicy::deep_check(const net::MqState& state, const char* where) {
  ++checks_run_;
  for (int i = 0; i < state.num_queues(); ++i) {
    const net::ServiceQueue& q = state.queue(i);
    std::int64_t bytes = 0;
    for (const net::Packet& p : q.packets) bytes += p.size;
    if (bytes != q.bytes) {
      std::ostringstream os;
      os << "queue byte counter " << q.bytes << " != sum of " << q.packets.size()
         << " resident packet sizes " << bytes;
      report(ViolationKind::kQueueAccountingDrift, state, where, i, os.str());
    }
  }
}

void AuditedBufferPolicy::attach(const net::MqState& state) {
  inner_->attach(state);
  ledger_ = AuditLedger{};
  ops_since_deep_check_ = 0;
  pre_admit_valid_ = false;
  stale_since_ = -1;
  check_thresholds(state, "attach");
}

bool AuditedBufferPolicy::admit(const net::MqState& state, int q, const net::Packet& p) {
  pre_admit_thresholds_ = inner_->thresholds();
  pre_admit_valid_ = true;
  const bool admitted = inner_->admit(state, q, p);
  check_thresholds(state, "admit");
  if (admitted) {
    ++ledger_.admits_allowed;
    if (inner_->enforces_thresholds()) {
      // Threshold-enforced admission (DESIGN.md §4): the arriving queue must
      // fit under its (possibly just-raised) threshold. Victim queues may
      // transiently exceed their reduced T_v; only the arrival is checked.
      scratch_ = inner_->thresholds();
      if (q >= 0 && static_cast<std::size_t>(q) < scratch_.size() &&
          state.queue(q).bytes + p.size > scratch_[static_cast<std::size_t>(q)]) {
        std::ostringstream os;
        os << "admitted with q_p + size = " << state.queue(q).bytes + p.size
           << " > T_p = " << scratch_[static_cast<std::size_t>(q)];
        report(ViolationKind::kAdmitBeyondThreshold, state, "admit", q, os.str());
      }
    }
  } else {
    ++ledger_.admits_rejected;
    // A rejected packet must leave the policy state untouched: the qdisc
    // never calls on_admit_aborted() for it, so any mutation here is drift.
    if (inner_->thresholds() != pre_admit_thresholds_) {
      report(ViolationKind::kRejectMutatedState, state, "admit", q,
             "admit() returned false but thresholds changed");
    }
    pre_admit_valid_ = false;
  }
  return admitted;
}

void AuditedBufferPolicy::on_admit_aborted(const net::MqState& state, int q,
                                           const net::Packet& p) {
  inner_->on_admit_aborted(state, q, p);
  ++ledger_.aborts;
  ++checks_run_;
  // Snapshot-diff proof of exact rollback: after the abort the thresholds
  // must equal what they were immediately before the aborted admit().
  if (pre_admit_valid_ && inner_->thresholds() != pre_admit_thresholds_) {
    std::ostringstream os;
    os << "on_admit_aborted() did not restore pre-admit thresholds; expected [";
    for (std::size_t i = 0; i < pre_admit_thresholds_.size(); ++i) {
      if (i > 0) os << ",";
      os << pre_admit_thresholds_[i];
    }
    os << "]";
    report(ViolationKind::kAbortRollbackLeak, state, "on_admit_aborted", q, os.str());
  }
  pre_admit_valid_ = false;
  check_thresholds(state, "on_admit_aborted");
}

int AuditedBufferPolicy::evict_candidate(const net::MqState& state, int q, const net::Packet& p) {
  const int victim = inner_->evict_candidate(state, q, p);
  ++checks_run_;
  if (victim >= 0) {  // -1 is the legal "decline" answer
    if (victim >= state.num_queues()) {
      std::ostringstream os;
      os << "victim " << victim << " out of range (M = " << state.num_queues() << ")";
      report(ViolationKind::kBadEvictionVictim, state, "evict_candidate", q, os.str());
    } else if (victim == q) {
      report(ViolationKind::kBadEvictionVictim, state, "evict_candidate", q,
             "victim equals the arriving queue");
    } else if (state.queue(victim).empty()) {
      std::ostringstream os;
      os << "victim " << victim << " is empty";
      report(ViolationKind::kBadEvictionVictim, state, "evict_candidate", q, os.str());
    }
  }
  return victim;
}

void AuditedBufferPolicy::on_buffer_resize(const net::MqState& state) {
  inner_->on_buffer_resize(state);
  pre_admit_valid_ = false;  // resize invalidates any pending admit snapshot
  check_thresholds(state, "on_buffer_resize");
}

void AuditedBufferPolicy::on_weights_changed(const net::MqState& state) {
  inner_->on_weights_changed(state);
  pre_admit_valid_ = false;  // the rebalance invalidates any pending admit snapshot
  check_thresholds(state, "on_weights_changed");
}

void AuditedBufferPolicy::on_enqueue(const net::MqState& state, int q, const net::Packet& p) {
  inner_->on_enqueue(state, q, p);
  pre_admit_valid_ = false;  // the admitted packet is in; the snapshot is spent
  ++ledger_.enqueued_packets;
  ledger_.enqueued_bytes += p.size;
  check_conservation(state, "on_enqueue");
}

void AuditedBufferPolicy::on_dequeue(const net::MqState& state, int q, const net::Packet& p) {
  inner_->on_dequeue(state, q, p);
  ++ledger_.dequeued_packets;
  ledger_.dequeued_bytes += p.size;
  check_conservation(state, "on_dequeue");
}

}  // namespace dynaq::check
