// Trajectory-fingerprint oracle (DESIGN.md §10).
//
// A run of this simulator is a pure function of its seed; TrajectoryHash
// turns that claim into one comparable number. It folds, with FNV-1a 64
// (sim/fingerprint.hpp):
//
//   * the event-engine pop stream — the (when, seq) pair of every popped
//     event, accumulated inside sim::Simulator when
//     enable_trajectory_fingerprint() is on;
//   * the telemetry event bus — every Event emitted through a
//     telemetry::Hub constructed with HubConfig::fingerprint, which catches
//     packet-level decisions (drop victims, exchange partners, flows) even
//     when event timing coincides;
//   * the packet-conservation ledgers — check::AuditedBufferPolicy's
//     per-port enqueue/dequeue byte and packet accounting.
//
// Two runs with the same seed must produce equal values for any sweep
// worker count; different seeds must diverge. The harness surfaces the
// digest in every experiment result, the sweep JSON carries it per job
// (schema_version 4), and ci.sh diffs it across seed-repeat, --jobs 1 vs 4
// and seed-change runs.
#pragma once

#include <cstdint>
#include <string>

#include "check/invariant_auditor.hpp"
#include "sim/fingerprint.hpp"
#include "sim/simulator.hpp"
#include "telemetry/hub.hpp"

namespace dynaq::check {

class TrajectoryHash {
 public:
  TrajectoryHash& fold(std::uint64_t x) {
    h_ = sim::fnv1a_u64(h_, x);
    return *this;
  }

  // Engine half: the pop-stream digest plus the pop count (so an empty
  // fingerprint is distinguishable from a run that never enabled one).
  TrajectoryHash& fold(const sim::Simulator& sim) {
    return fold(sim.trajectory_fingerprint()).fold(sim.events_processed());
  }

  // Bus half: the hub's event fingerprint in emission order.
  TrajectoryHash& fold(const telemetry::Hub& hub) {
    return fold(hub.trajectory_fingerprint());
  }

  // Conservation half: one audited port's monotonic packet/byte ledger.
  TrajectoryHash& fold(const AuditLedger& ledger);

  std::uint64_t value() const { return h_; }
  std::string hex() const { return fingerprint_hex(h_); }

  // Canonical text form used by the sweep JSON and the ci.sh differential
  // gate: "0x" + 16 lowercase hex digits.
  static std::string fingerprint_hex(std::uint64_t v);

 private:
  std::uint64_t h_ = sim::kFnv1aOffset;
};

}  // namespace dynaq::check
