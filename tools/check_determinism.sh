#!/usr/bin/env bash
# Trajectory-hash differential gate (DESIGN.md §10). Runs the Fig. 8 smoke
# sweep through bench/fig08_fct_non_ecn and asserts, via the per-job
# trajectory_hash fields in the sweep JSON (schema_version 4):
#
#   1. repeat:   the same command twice yields identical hash sets;
#   2. jobs:     --jobs 1 and --jobs 4 yield identical hash sets (worker
#                count must not leak into any trajectory);
#   3. seed:     a different --seeds set yields disjoint hashes (the oracle
#                actually discriminates — it is not a constant);
#   4. scenario: the rob_weight_churn timeline (mid-run audited weight
#                rebalances, DESIGN.md §11) satisfies the same properties —
#                scenario actions are part of the trajectory, not a source
#                of nondeterminism.
#
# Usage: check_determinism.sh <build-dir>
set -eu

build=${1:?usage: check_determinism.sh <build-dir>}
bin="$build/bench/fig08_fct_non_ecn"
[[ -x "$bin" ]] || { echo "check_determinism: $bin not built" >&2; exit 1; }

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

run() {  # run <outdir> <extra flags...>
  local out="$work/$1"
  shift
  mkdir -p "$out"
  "$bin" --schemes=DynaQ,BestEffort --loads=0.5 --flows=200 --strict \
    --json "$out" "$@" > /dev/null
  grep -o '"trajectory_hash":"0x[0-9a-f]*"' "$out/fig08_fct_non_ecn.json" | sort
}

fail=0
expect_equal() {  # expect_equal <label> <a> <b>
  if [[ "$2" != "$3" ]]; then
    echo "check_determinism: FAILED ($1): hash sets differ"
    diff <(printf '%s\n' "$2") <(printf '%s\n' "$3") | sed 's/^/  /'
    fail=1
  fi
}

a=$(run repeat_a --seeds=1,2 --jobs=2)
b=$(run repeat_b --seeds=1,2 --jobs=2)
expect_equal "same seed, repeated run" "$a" "$b"

j1=$(run jobs_1 --seeds=1,2 --jobs=1)
j4=$(run jobs_4 --seeds=1,2 --jobs=4)
expect_equal "--jobs 1 vs --jobs 4" "$j1" "$j4"

other=$(run seed_b --seeds=3,4 --jobs=2)
if [[ -n "$(comm -12 <(printf '%s\n' "$a") <(printf '%s\n' "$other"))" ]]; then
  echo "check_determinism: FAILED (different seeds produced a shared hash):"
  comm -12 <(printf '%s\n' "$a") <(printf '%s\n' "$other") | sed 's/^/  /'
  fail=1
fi

if [[ $(printf '%s\n' "$a" | wc -l) -lt 2 || "$a" != *trajectory_hash* ]]; then
  echo "check_determinism: FAILED (no trajectory_hash fields in sweep JSON)"
  fail=1
fi

# -- scenario runs (DESIGN.md §11) ------------------------------------------
rbin="$build/bench/rob_weight_churn"
[[ -x "$rbin" ]] || { echo "check_determinism: $rbin not built" >&2; exit 1; }

run_scn() {  # run_scn <outdir> <extra flags...>
  local out="$work/$1"
  shift
  mkdir -p "$out"
  "$rbin" --duration-s=1 --schemes=DynaQ,BestEffort --strict \
    --json "$out" "$@" > /dev/null
  grep -o '"trajectory_hash":"0x[0-9a-f]*"' "$out/rob_weight_churn.json" | sort
}

sa=$(run_scn scn_repeat_a --seeds=1,2 --jobs=1)
sb=$(run_scn scn_repeat_b --seeds=1,2 --jobs=1)
expect_equal "scenario: same seed, repeated run" "$sa" "$sb"
sj=$(run_scn scn_jobs_4 --seeds=1,2 --jobs=4)
expect_equal "scenario: --jobs 1 vs --jobs 4" "$sa" "$sj"
ss=$(run_scn scn_seed_b --seeds=3,4 --jobs=2)
if [[ -n "$(comm -12 <(printf '%s\n' "$sa") <(printf '%s\n' "$ss"))" ]]; then
  echo "check_determinism: FAILED (scenario: different seeds produced a shared hash):"
  comm -12 <(printf '%s\n' "$sa") <(printf '%s\n' "$ss") | sed 's/^/  /'
  fail=1
fi

if [[ $fail -eq 0 ]]; then
  echo "check_determinism: OK (repeat, --jobs 1 vs 4, seed sensitivity, scenario runs)"
fi
exit $fail
