#!/usr/bin/env bash
# Trajectory-hash differential gate (DESIGN.md §10). Runs the Fig. 8 smoke
# sweep through bench/fig08_fct_non_ecn and asserts, via the per-job
# trajectory_hash fields in the sweep JSON (schema_version 4):
#
#   1. repeat:   the same command twice yields identical hash sets;
#   2. jobs:     --jobs 1 and --jobs 4 yield identical hash sets (worker
#                count must not leak into any trajectory);
#   3. seed:     a different --seeds set yields disjoint hashes (the oracle
#                actually discriminates — it is not a constant);
#   4. scenario: the rob_weight_churn timeline (mid-run audited weight
#                rebalances, DESIGN.md §11) satisfies the same properties —
#                scenario actions are part of the trajectory, not a source
#                of nondeterminism.
#   5. oracle:   an oracle-enabled run (bench/abl_competitive, DESIGN.md
#                §12) satisfies the same properties on trajectory_hash AND
#                on the emitted oracle blocks (trace fingerprints, solver
#                outputs): recording + offline replay is a pure function of
#                the seed, for any worker count.
#   6. ctrlplane: a degraded-control-plane run (bench/rob_controller with
#                the controller_crash timeline, DESIGN.md §14) satisfies the
#                same properties — asynchronous threshold updates (period >
#                0), Bernoulli update loss, watchdog failover to DT and the
#                re-sync restore are all part of the trajectory, for any
#                worker count.
#
# Usage: check_determinism.sh <build-dir>
set -eu

build=${1:?usage: check_determinism.sh <build-dir>}
bin="$build/bench/fig08_fct_non_ecn"
[[ -x "$bin" ]] || { echo "check_determinism: $bin not built" >&2; exit 1; }

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

run() {  # run <outdir> <extra flags...>
  local out="$work/$1"
  shift
  mkdir -p "$out"
  "$bin" --schemes=DynaQ,BestEffort --loads=0.5 --flows=200 --strict \
    --json "$out" "$@" > /dev/null
  grep -o '"trajectory_hash":"0x[0-9a-f]*"' "$out/fig08_fct_non_ecn.json" | sort
}

fail=0
expect_equal() {  # expect_equal <label> <a> <b>
  if [[ "$2" != "$3" ]]; then
    echo "check_determinism: FAILED ($1): hash sets differ"
    diff <(printf '%s\n' "$2") <(printf '%s\n' "$3") | sed 's/^/  /'
    fail=1
  fi
}

a=$(run repeat_a --seeds=1,2 --jobs=2)
b=$(run repeat_b --seeds=1,2 --jobs=2)
expect_equal "same seed, repeated run" "$a" "$b"

j1=$(run jobs_1 --seeds=1,2 --jobs=1)
j4=$(run jobs_4 --seeds=1,2 --jobs=4)
expect_equal "--jobs 1 vs --jobs 4" "$j1" "$j4"

other=$(run seed_b --seeds=3,4 --jobs=2)
if [[ -n "$(comm -12 <(printf '%s\n' "$a") <(printf '%s\n' "$other"))" ]]; then
  echo "check_determinism: FAILED (different seeds produced a shared hash):"
  comm -12 <(printf '%s\n' "$a") <(printf '%s\n' "$other") | sed 's/^/  /'
  fail=1
fi

if [[ $(printf '%s\n' "$a" | wc -l) -lt 2 || "$a" != *trajectory_hash* ]]; then
  echo "check_determinism: FAILED (no trajectory_hash fields in sweep JSON)"
  fail=1
fi

# -- scenario runs (DESIGN.md §11) ------------------------------------------
rbin="$build/bench/rob_weight_churn"
[[ -x "$rbin" ]] || { echo "check_determinism: $rbin not built" >&2; exit 1; }

run_scn() {  # run_scn <outdir> <extra flags...>
  local out="$work/$1"
  shift
  mkdir -p "$out"
  "$rbin" --duration-s=1 --schemes=DynaQ,BestEffort --strict \
    --json "$out" "$@" > /dev/null
  grep -o '"trajectory_hash":"0x[0-9a-f]*"' "$out/rob_weight_churn.json" | sort
}

sa=$(run_scn scn_repeat_a --seeds=1,2 --jobs=1)
sb=$(run_scn scn_repeat_b --seeds=1,2 --jobs=1)
expect_equal "scenario: same seed, repeated run" "$sa" "$sb"
sj=$(run_scn scn_jobs_4 --seeds=1,2 --jobs=4)
expect_equal "scenario: --jobs 1 vs --jobs 4" "$sa" "$sj"
ss=$(run_scn scn_seed_b --seeds=3,4 --jobs=2)
if [[ -n "$(comm -12 <(printf '%s\n' "$sa") <(printf '%s\n' "$ss"))" ]]; then
  echo "check_determinism: FAILED (scenario: different seeds produced a shared hash):"
  comm -12 <(printf '%s\n' "$sa") <(printf '%s\n' "$ss") | sed 's/^/  /'
  fail=1
fi

# -- oracle-enabled runs (DESIGN.md §12) -------------------------------------
obin="$build/bench/abl_competitive"
[[ -x "$obin" ]] || { echo "check_determinism: $obin not built" >&2; exit 1; }

run_oracle() {  # run_oracle <outdir> <grep pattern> <extra flags...>
  local out="$work/$1" pattern="$2"
  shift 2
  mkdir -p "$out"
  "$obin" --flows=120 --schemes=DynaQ,LQD --strict \
    --json "$out" "$@" > /dev/null
  grep -o "$pattern" "$out/abl_competitive.json" | sort
}

hash_pat='"trajectory_hash":"0x[0-9a-f]*"'
# The solver's outputs ride the differential too: a nondeterministic replay
# would change optimal_bytes/fingerprint even with identical trajectories.
oracle_pat='"trace_fingerprint":"0x[0-9a-f]*"\|"optimal_bytes":[0-9.e+-]*'

oa=$(run_oracle orc_repeat_a "$hash_pat" --seeds=1,2 --jobs=1)
ob=$(run_oracle orc_repeat_b "$hash_pat" --seeds=1,2 --jobs=1)
expect_equal "oracle: same seed, repeated run" "$oa" "$ob"
ova=$(grep -o "$oracle_pat" "$work/orc_repeat_a/abl_competitive.json" | sort)
ovb=$(grep -o "$oracle_pat" "$work/orc_repeat_b/abl_competitive.json" | sort)
expect_equal "oracle: repeated run solver outputs" "$ova" "$ovb"
oj=$(run_oracle orc_jobs_4 "$hash_pat" --seeds=1,2 --jobs=4)
expect_equal "oracle: --jobs 1 vs --jobs 4" "$oa" "$oj"
ovj=$(grep -o "$oracle_pat" "$work/orc_jobs_4/abl_competitive.json" | sort)
expect_equal "oracle: --jobs 1 vs 4 solver outputs" "$ova" "$ovj"
os=$(run_oracle orc_seed_b "$hash_pat" --seeds=3,4 --jobs=2)
if [[ -n "$(comm -12 <(printf '%s\n' "$oa") <(printf '%s\n' "$os"))" ]]; then
  echo "check_determinism: FAILED (oracle: different seeds produced a shared hash):"
  comm -12 <(printf '%s\n' "$oa") <(printf '%s\n' "$os") | sed 's/^/  /'
  fail=1
fi
if [[ "$ova" != *trace_fingerprint* ]]; then
  echo "check_determinism: FAILED (no oracle blocks in abl_competitive JSON)"
  fail=1
fi

# -- degraded-control-plane runs (DESIGN.md §14) ------------------------------
cbin="$build/bench/rob_controller"
[[ -x "$cbin" ]] || { echo "check_determinism: $cbin not built" >&2; exit 1; }

run_ctrl() {  # run_ctrl <outdir> <extra flags...>
  local out="$work/$1"
  shift
  mkdir -p "$out"
  # The bench always runs DynaQ behind the shim with update period 5 ms >
  # 0 (async staleness + per-update loss draws are on the differential).
  "$cbin" --duration-s=1 --scenario=controller_crash --schemes=DynaQ,DT --strict \
    --json "$out" "$@" > /dev/null
  grep -o '"trajectory_hash":"0x[0-9a-f]*"' "$out/rob_controller.json" | sort
}

ca=$(run_ctrl ctrl_repeat_a --seeds=1,2 --jobs=1)
cb=$(run_ctrl ctrl_repeat_b --seeds=1,2 --jobs=1)
expect_equal "ctrlplane: same seed, repeated run" "$ca" "$cb"
cj=$(run_ctrl ctrl_jobs_4 --seeds=1,2 --jobs=4)
expect_equal "ctrlplane: --jobs 1 vs --jobs 4" "$ca" "$cj"
cs=$(run_ctrl ctrl_seed_b --seeds=3,4 --jobs=2)
if [[ -n "$(comm -12 <(printf '%s\n' "$ca") <(printf '%s\n' "$cs"))" ]]; then
  echo "check_determinism: FAILED (ctrlplane: different seeds produced a shared hash):"
  comm -12 <(printf '%s\n' "$ca") <(printf '%s\n' "$cs") | sed 's/^/  /'
  fail=1
fi
# The crash scenario must actually degrade the run: the JSON carries the
# telemetry control block with at least one failover.
if ! grep -q '"failovers":[1-9]' "$work/ctrl_repeat_a/rob_controller.json"; then
  echo "check_determinism: FAILED (ctrlplane: controller_crash produced no failover)"
  fail=1
fi

if [[ $fail -eq 0 ]]; then
  echo "check_determinism: OK (repeat, --jobs 1 vs 4, seed sensitivity, scenario runs, oracle runs, ctrlplane runs)"
fi
exit $fail
