#!/usr/bin/env bash
# Repo-convention lint (CLAUDE.md / DESIGN.md §6). Exits non-zero with
# file:line diagnostics when a rule is broken; CI runs this as its third
# configuration, next to the -Werror build and the ASan+UBSan ctest pass.
#
#   1. Time is dynaq::Time (int64 picoseconds): no double/float variables or
#      functions holding "seconds" inside model code (src/sim, src/net,
#      src/core, src/transport, src/topo). The declared conversion boundary
#      (src/sim/time.hpp) is exempt.
#   2. No float anywhere in src/ (byte/time math must be int64 or double).
#   3. No global simulator: no static/extern sim::Simulator — every
#      component takes sim::Simulator& (CLAUDE.md).
#   4. Namespaces mirror directories: every file in src/<dir>/ declares
#      namespace dynaq::<dir> (src/sim/time.hpp declares repo-wide dynaq::).
#   5. Every core::SchemeKind enumerator is registered in scheme.cpp
#      (scheme_name + parse_scheme) and covered by Scheme.NamesRoundTrip in
#      tests/core_test.cpp.
#   6. Every header is include-guarded with #pragma once.
#   7. Threads live only in src/sweep (dynaq::sweep, the experiment-sweep
#      worker pool, DESIGN.md §7): simulators are single-threaded by design,
#      so no other src/ directory may use std::thread/mutex/atomic — a sweep
#      job parallelizes whole simulator instances, never their internals.
#   9. Event scheduling is allocation-free (DESIGN.md §9): the engine
#      (src/sim) stores callables in sim::EventFn inline slots, so no
#      std::function may appear inside src/sim, and no caller may wrap a
#      schedule_at/schedule_in callable in std::function (the type-erased
#      indirection defeats the inline-storage fast path).
#  10. Determinism hazards (DESIGN.md §10) are delegated to tools/detlint:
#      unordered-container iteration, wall-clock/raw-rand use in models,
#      pointer-keyed ordering, unordered reductions.
#  11. Scenario actions mutate components only via registered handle methods
#      (set_weights, resize_buffer, set_link_down/up, set_rate,
#      set_loss_rate, pause/resume — DESIGN.md §11): src/scenario must never
#      reach into buffer state (MqState, ServiceQueue, packet deques), so
#      every mutation stays inside the audited component APIs.
#  12. The oracle consumes telemetry taps only (DESIGN.md §12): src/oracle
#      reconstructs arrivals from the hub's event bus and wire records, so
#      it must not include net/core/transport/topo headers nor name queue
#      internals (MqState, ServiceQueue, MultiQueueQdisc) — the offline
#      bound stays decoupled from the online implementation it judges.
#  13. The report subsystem reads serialized artifacts only (DESIGN.md
#      §13): src/report evaluates sweep results JSON, BENCH_core.json and
#      BENCH_history.jsonl, so it must not include any model/runtime header
#      (sim, net, core, transport, topo, harness, telemetry, sweep,
#      scenario, oracle, check, stats, workload) — expectations judge runs
#      from their artifacts, never from simulator internals.
#  14. Control-plane mutations go through the ctrlplane shim (DESIGN.md
#      §14): outside src/core (the policy that owns it) and src/ctrlplane
#      (the shim), no src/ code may drive core::DynaQController's mutating
#      entry points (on_arrival / undo_last_exchange / reinitialize) — stale
#      thresholds, watchdog failover and re-sync all flow through
#      ctrlplane::ControlPlanePolicy so the bounded-staleness audit and the
#      trajectory hash see every change.
#   8. Instrumentation goes through telemetry::Hub (DESIGN.md §8): no
#      ad-hoc per-port callback mutation. The last-writer-wins Port
#      callbacks (on_transmit_start/on_deliver) were replaced by the hub's
#      wire taps and must not be reintroduced; library code in src/ must
#      not assign the qdisc measurement hooks (only measurement drivers —
#      src/harness, bench/, tests/, examples/ — may).
set -u
cd "$(dirname "$0")/.."

fail=0
complain() {  # complain <rule> <message lines...>
  echo "CONVENTION VIOLATION [$1]:"
  shift
  local arg line
  for arg in "$@"; do
    while IFS= read -r line; do printf '  %s\n' "$line"; done <<< "$arg"
  done
  fail=1
}

model_dirs=(src/sim src/net src/core src/transport src/topo)

# -- 1. no raw double/float seconds in models ------------------------------
hits=$(grep -rnE '\b(double|float)\s+[A-Za-z_]*(seconds|_sec)\b' "${model_dirs[@]}" \
  | grep -v '^src/sim/time.hpp:' || true)
if [[ -n "$hits" ]]; then
  complain "time-as-int64-ps" "model code must use dynaq::Time, not double seconds:" "$hits"
fi

# -- 2. no float in src/ ----------------------------------------------------
hits=$(grep -rnE '\bfloat\b' src/ | grep -vE '^\S+:\s*//' || true)
if [[ -n "$hits" ]]; then
  complain "no-float" "use double or std::int64_t, not float:" "$hits"
fi

# -- 3. no global simulator -------------------------------------------------
hits=$(grep -rnE '(static|extern)\s+(dynaq::)?(sim::)?Simulator\b' src/ || true)
if [[ -n "$hits" ]]; then
  complain "no-global-simulator" "every component takes sim::Simulator&:" "$hits"
fi

# -- 4. namespaces mirror directories --------------------------------------
for f in src/*/*.hpp src/*/*.cpp; do
  [[ "$f" == src/sim/time.hpp ]] && continue  # repo-wide dynaq::Time
  dir=$(basename "$(dirname "$f")")
  if ! grep -q "namespace dynaq::$dir" "$f"; then
    complain "namespace-mirrors-directory" "$f must declare namespace dynaq::$dir"
  fi
done

# -- 5. SchemeKind registration coverage ------------------------------------
enumerators=$(sed -n '/^enum class SchemeKind {/,/^};/p' src/core/scheme.hpp \
  | grep -oE '^\s+k[A-Za-z0-9]+' | tr -d ' ')
if [[ -z "$enumerators" ]]; then
  complain "schemekind-coverage" "could not extract SchemeKind enumerators from src/core/scheme.hpp"
fi
for e in $enumerators; do
  if [[ $(grep -c "SchemeKind::$e\b" src/core/scheme.cpp) -lt 2 ]]; then
    complain "schemekind-coverage" \
      "SchemeKind::$e must appear in both scheme_name() and parse_scheme() in src/core/scheme.cpp"
  fi
  if ! grep -q "SchemeKind::$e\b" tests/core_test.cpp; then
    complain "schemekind-coverage" \
      "SchemeKind::$e lacks Scheme.NamesRoundTrip coverage in tests/core_test.cpp"
  fi
done

# -- 7. threading primitives confined to src/sweep --------------------------
hits=$(grep -rnE 'std::(thread|jthread|mutex|atomic|condition_variable|future|async)\b' src/ \
  | grep -v '^src/sweep/' | grep -vE '^\S+:\s*//' || true)
if [[ -n "$hits" ]]; then
  complain "threads-only-in-sweep" \
    "only src/sweep (dynaq::sweep worker pool) may use threading primitives:" "$hits"
fi

# -- 8. instrumentation via telemetry::Hub ----------------------------------
hits=$(grep -rnE '\.on_(transmit_start|deliver)\s*=' src/ tests/ bench/ examples/ \
  2>/dev/null || true)
if [[ -n "$hits" ]]; then
  complain "telemetry-hub-instrumentation" \
    "per-port wire callbacks were replaced by telemetry::Hub wire taps (DESIGN.md §8):" "$hits"
fi
hits=$(grep -rnE '\.?on_(dequeue_hook|drop_hook|op_hook)\s*=' src/ \
  | grep -v '^src/harness/' | grep -v '^src/net/multi_queue_qdisc.hpp' \
  | grep -vE '^\S+:\s*//' || true)
if [[ -n "$hits" ]]; then
  complain "telemetry-hub-instrumentation" \
    "library code must observe via telemetry::Hub, not qdisc measurement hooks:" "$hits"
fi

# -- 9. allocation-free event scheduling (DESIGN.md §9) ----------------------
hits=$(grep -rnE 'std::function' src/sim/ | grep -vE '^\S+:\s*//' || true)
if [[ -n "$hits" ]]; then
  complain "eventfn-not-stdfunction" \
    "the event engine stores callables in sim::EventFn inline slots; src/sim must not use std::function:" \
    "$hits"
fi
hits=$(grep -rnE 'schedule_(at|in)[^;]*std::function' src/ bench/ examples/ tests/ \
  | grep -vE '^\S+:\s*//' || true)
if [[ -n "$hits" ]]; then
  complain "eventfn-not-stdfunction" \
    "pass lambdas/functors to schedule_at/schedule_in directly (std::function defeats inline event storage):" \
    "$hits"
fi

# -- 11. scenario mutates only via registered handles (DESIGN.md §11) --------
hits=$(grep -rnE '\bMqState\b|\bServiceQueue\b|\.packets\b|->packets\b' src/scenario/ \
  | grep -vE '^\S+:\s*//' || true)
if [[ -n "$hits" ]]; then
  complain "scenario-via-handles" \
    "src/scenario mutates components only through registered handle methods, never raw buffer/queue state:" \
    "$hits"
fi

# -- 12. oracle consumes telemetry taps only (DESIGN.md §12) ------------------
hits=$(grep -rnE '#include "(net|core|transport|topo)/' src/oracle/ \
  | grep -vE '^\S+:\s*//' || true)
if [[ -n "$hits" ]]; then
  complain "oracle-via-telemetry" \
    "src/oracle must reconstruct state from telemetry taps, not include online model headers:" \
    "$hits"
fi
hits=$(grep -rnE '\bMqState\b|\bServiceQueue\b|\bMultiQueueQdisc\b' src/oracle/ \
  | grep -vE '^\S+:\s*//' || true)
if [[ -n "$hits" ]]; then
  complain "oracle-via-telemetry" \
    "src/oracle must not touch queue internals (the offline bound judges the online policy from outside):" \
    "$hits"
fi

# -- 13. report reads serialized artifacts only (DESIGN.md §13) ---------------
hits=$(grep -rnE '#include "(sim|net|core|transport|topo|harness|telemetry|sweep|scenario|oracle|check|stats|workload)/' \
  src/report/ tools/report_gen.cpp | grep -vE '^\S+:\s*//' || true)
if [[ -n "$hits" ]]; then
  complain "report-via-artifacts" \
    "src/report judges runs from serialized artifacts (sweep JSON, BENCH_*.json); it must not include model/runtime headers:" \
    "$hits"
fi

# -- 14. controller mutations only via src/core + src/ctrlplane (§14) ---------
hits=$(grep -rnE '\.(on_arrival|undo_last_exchange|reinitialize)\s*\(' src/ \
  | grep -vE '^src/(core|ctrlplane)/' | grep -vE '^\S+:\s*//' || true)
if [[ -n "$hits" ]]; then
  complain "ctrlplane-shim-only" \
    "DynaQController mutations outside src/core and src/ctrlplane bypass the control-plane shim (DESIGN.md §14):" \
    "$hits"
fi

# -- 10. determinism lint (tools/detlint, DESIGN.md §10) ---------------------
if ! tools/detlint > /tmp/detlint.$$ 2>&1; then
  complain "determinism" "tools/detlint found nondeterminism hazards:" "$(cat /tmp/detlint.$$)"
fi
rm -f /tmp/detlint.$$

# -- 6. pragma once in headers ----------------------------------------------
for f in src/*/*.hpp bench/*.hpp; do
  if ! grep -q '#pragma once' "$f"; then
    complain "pragma-once" "$f is missing #pragma once"
  fi
done

if [[ $fail -eq 0 ]]; then
  echo "check_conventions: OK"
fi
exit $fail
