// detlint self-test fixture: must trip [ctrlplane-bypass]. Not compiled.
#include <cstdint>
#include <vector>

namespace dynaq::fixture {

struct Controller {
  int on_arrival(const std::vector<std::int64_t>&, int, std::int32_t);
  void undo_last_exchange();
  void reinitialize(std::int64_t);
};

inline void poke_controller_behind_the_shims_back(Controller& ctl) {
  const std::vector<std::int64_t> occupancy{1'000, 2'000};
  ctl.on_arrival(occupancy, 0, 1'460);  // mutation invisible to the shim
  ctl.undo_last_exchange();
  ctl.reinitialize(85'000);
}

}  // namespace dynaq::fixture
