// detlint self-test fixture: must trip [unordered-container]. Not compiled.
#include <cstdint>
#include <unordered_map>

namespace dynaq::fixture {

inline std::int64_t total_bytes(const std::unordered_map<int, std::int64_t>& by_queue) {
  std::int64_t total = 0;
  for (const auto& [queue, bytes] : by_queue) total += bytes;  // order varies
  return total;
}

}  // namespace dynaq::fixture
