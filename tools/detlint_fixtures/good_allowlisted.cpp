// detlint self-test fixture: every hazard below carries an allow comment,
// so this file must produce zero violations. Not compiled.
#include <chrono>
#include <cstdint>
#include <map>
#include <numeric>
#include <random>
#include <unordered_map>
#include <vector>

namespace dynaq::fixture {

struct Conn {
  // detlint: allow(unordered-container): lookup-only by flow id, never iterated
  std::unordered_map<std::uint32_t, std::int64_t> bytes_by_flow;
};

inline std::int64_t wall_ms() {
  const auto now = std::chrono::steady_clock::now();  // detlint: allow(wall-clock): job timing, reported not simulated
  return now.time_since_epoch().count();
}

inline std::uint64_t entropy_seed() {
  // detlint: allow(raw-rand): operator-requested entropy for a --seed default
  std::random_device entropy;
  return entropy();
}

// detlint: allow(pointer-order): drained before iteration, order never observed
using Scratch = std::map<Conn*, int>;

inline double checked_sum(const std::vector<double>& xs) {
  // detlint: allow(unordered-reduce): integer payload, order-independent
  return std::reduce(xs.begin(), xs.end());
}

}  // namespace dynaq::fixture
