// detlint self-test fixture: must trip [wall-clock]. Not compiled.
#include <chrono>
#include <cstdint>

namespace dynaq::fixture {

inline std::int64_t jitter_ps() {
  const auto now = std::chrono::steady_clock::now();  // host time in a model
  return now.time_since_epoch().count();
}

}  // namespace dynaq::fixture
