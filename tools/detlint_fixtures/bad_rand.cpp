// detlint self-test fixture: must trip [raw-rand]. Not compiled.
#include <cstdlib>
#include <random>

namespace dynaq::fixture {

inline int pick_queue(int num_queues) {
  std::random_device entropy;            // unseedable
  std::mt19937_64 gen(entropy());        // bypasses sim::Rng
  return static_cast<int>(gen() % static_cast<unsigned>(num_queues));
}

inline int legacy_pick(int num_queues) { return std::rand() % num_queues; }

}  // namespace dynaq::fixture
