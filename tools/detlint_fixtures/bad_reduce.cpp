// detlint self-test fixture: must trip [unordered-reduce]. Not compiled.
#include <numeric>
#include <vector>

namespace dynaq::fixture {

inline double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  const double sum = std::reduce(xs.begin(), xs.end());  // unspecified order
  return sum / static_cast<double>(xs.size());
}

}  // namespace dynaq::fixture
