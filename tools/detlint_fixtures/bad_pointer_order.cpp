// detlint self-test fixture: must trip [pointer-order]. Not compiled.
#include <cstdint>
#include <map>

namespace dynaq::fixture {

struct Flow {
  std::uint32_t id = 0;
};

// Keyed by address: iteration order follows ASLR, not the flow id.
using FlowBytes = std::map<Flow*, std::int64_t>;

inline std::int64_t first_bytes(const FlowBytes& m) {
  return m.empty() ? 0 : m.begin()->second;
}

}  // namespace dynaq::fixture
