// report_gen — render the paper-fidelity report and enforce the regression
// gate (DESIGN.md §13).
//
//   report_gen [--results DIR] [--sweep FILE]... [--bench-core FILE]
//              [--history FILE --rev REV] [--out FILE] [--gate] [--quiet]
//
//   --results DIR      scan DIR/json/*.json for sweep documents and default
//                      --out to DIR/REPORT.md
//   --sweep FILE       add one sweep results JSON explicitly (repeatable;
//                      e.g. the repo-root BENCH_sweep.json smoke snapshot)
//   --bench-core FILE  BENCH_core.json event-engine snapshot (default:
//                      ./BENCH_core.json when present)
//   --history FILE     BENCH_history.jsonl ledger: append/refresh this
//                      run's row (requires --rev) and render the trend
//   --rev REV          git revision recorded in the history row
//   --out FILE         where to write the markdown report
//                      (default results/REPORT.md)
//   --gate             exit 1 when any expectation fails or the bench
//                      comparator finds a regression
//
// The tool links only dynaq_report: it reads serialized artifacts, never a
// simulator (check_conventions.sh rule 13).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "report/artifacts.hpp"
#include "report/bench_history.hpp"
#include "report/expectation.hpp"
#include "report/json.hpp"
#include "report/markdown.hpp"

namespace {

namespace fs = std::filesystem;
using namespace dynaq;

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool write_file(const std::string& path, const std::string& text) {
  const fs::path parent = fs::path(path).parent_path();
  std::error_code ec;
  if (!parent.empty()) fs::create_directories(parent, ec);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << text;
  return bool(out);
}

struct Options {
  std::string results;
  std::vector<std::string> sweeps;
  std::string bench_core;
  std::string history;
  std::string rev = "unknown";
  std::string out;
  bool gate = false;
  bool quiet = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--results DIR] [--sweep FILE]... [--bench-core FILE]\n"
               "          [--history FILE --rev REV] [--out FILE] [--gate] [--quiet]\n",
               argv0);
  return 2;
}

bool parse_args(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--gate") {
      opt->gate = true;
    } else if (arg == "--quiet") {
      opt->quiet = true;
    } else if (arg == "--results") {
      const char* v = value();
      if (v == nullptr) return false;
      opt->results = v;
    } else if (arg == "--sweep") {
      const char* v = value();
      if (v == nullptr) return false;
      opt->sweeps.push_back(v);
    } else if (arg == "--bench-core") {
      const char* v = value();
      if (v == nullptr) return false;
      opt->bench_core = v;
    } else if (arg == "--history") {
      const char* v = value();
      if (v == nullptr) return false;
      opt->history = v;
    } else if (arg == "--rev") {
      const char* v = value();
      if (v == nullptr) return false;
      opt->rev = v;
    } else if (arg == "--out") {
      const char* v = value();
      if (v == nullptr) return false;
      opt->out = v;
    } else {
      std::fprintf(stderr, "report_gen: unknown flag '%s'\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, &opt)) return usage(argv[0]);
  if (opt.out.empty()) {
    opt.out = (opt.results.empty() ? std::string("results") : opt.results) + "/REPORT.md";
  }

  report::ReportInputs inputs;

  // ---- sweep documents: explicit files + results/json scan ------------
  std::vector<std::string> sweep_paths = opt.sweeps;
  if (!opt.results.empty()) {
    const fs::path json_dir = fs::path(opt.results) / "json";
    std::error_code ec;
    std::vector<std::string> scanned;
    for (const auto& entry : fs::directory_iterator(json_dir, ec)) {
      if (entry.path().extension() == ".json") scanned.push_back(entry.path().string());
    }
    std::sort(scanned.begin(), scanned.end());  // directory order is not deterministic
    sweep_paths.insert(sweep_paths.end(), scanned.begin(), scanned.end());
  }
  for (const std::string& path : sweep_paths) {
    std::string text;
    if (!read_file(path, &text)) {
      std::fprintf(stderr, "report_gen: cannot read %s\n", path.c_str());
      return 2;
    }
    try {
      const report::Json doc = report::parse_json(text);
      if (!report::looks_like_sweep_doc(doc)) {
        if (!opt.quiet) {
          std::fprintf(stderr, "report_gen: %s is not a sweep document, skipping\n",
                       path.c_str());
        }
        continue;
      }
      inputs.sweeps.push_back(report::load_sweep_doc(doc, path));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "report_gen: %s: %s\n", path.c_str(), e.what());
      return 2;
    }
  }

  // ---- BENCH_core.json -------------------------------------------------
  report::BenchCoreDoc bench_core;
  bool have_core = false;
  std::string core_path = opt.bench_core;
  if (core_path.empty() && fs::exists("BENCH_core.json")) core_path = "BENCH_core.json";
  if (!core_path.empty()) {
    std::string text;
    if (!read_file(core_path, &text)) {
      std::fprintf(stderr, "report_gen: cannot read %s\n", core_path.c_str());
      return 2;
    }
    try {
      bench_core = report::load_bench_core_doc(report::parse_json(text), core_path);
      have_core = true;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "report_gen: %s: %s\n", core_path.c_str(), e.what());
      return 2;
    }
  }
  if (have_core) inputs.bench_core = &bench_core;

  // ---- history ledger --------------------------------------------------
  bool have_ledger_baseline = false;  // prior rows existed to compare against
  if (!opt.history.empty()) {
    std::string existing;
    read_file(opt.history, &existing);  // absent file = empty ledger
    have_ledger_baseline = !existing.empty();
    // The smoke-sweep perf row prefers the doc named like the CI snapshot;
    // otherwise the first loaded sweep carries the wall-clock trend.
    const report::SweepDoc* perf_doc = nullptr;
    for (const report::SweepDoc& doc : inputs.sweeps) {
      if (perf_doc == nullptr || doc.path.find("BENCH_sweep") != std::string::npos) {
        perf_doc = &doc;
      }
    }
    try {
      const std::string updated = report::append_history(
          existing,
          report::make_history_row(opt.rev, have_core ? &bench_core : nullptr, perf_doc));
      if (!write_file(opt.history, updated)) {
        std::fprintf(stderr, "report_gen: cannot write %s\n", opt.history.c_str());
        return 2;
      }
      inputs.history = report::parse_history(updated);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "report_gen: %s: %s\n", opt.history.c_str(), e.what());
      return 2;
    }
  }

  // ---- evaluate + render ----------------------------------------------
  inputs.outcomes = report::evaluate(report::default_catalogue(), inputs.sweeps);
  inputs.bench_findings = report::history_regressions(inputs.history);

  const std::string md = report::render_markdown_report(inputs);
  if (!write_file(opt.out, md)) {
    std::fprintf(stderr, "report_gen: cannot write %s\n", opt.out.c_str());
    return 2;
  }

  std::int64_t pass = 0;
  std::int64_t fail = 0;
  std::int64_t skip = 0;
  for (const report::Outcome& o : inputs.outcomes) {
    if (o.status == report::Status::kPass) ++pass;
    if (o.status == report::Status::kFail) ++fail;
    if (o.status == report::Status::kSkip) ++skip;
  }
  if (!opt.quiet) {
    std::printf("report_gen: %lld pass / %lld fail / %lld skipped -> %s\n",
                static_cast<long long>(pass), static_cast<long long>(fail),
                static_cast<long long>(skip), opt.out.c_str());
    for (const report::Outcome& o : inputs.outcomes) {
      if (o.status != report::Status::kFail) continue;
      std::printf("report_gen: FAILED expectation %s: %s\n", o.id.c_str(), o.detail.c_str());
    }
    for (const std::string& finding : inputs.bench_findings) {
      std::printf("report_gen: BENCH REGRESSION: %s\n", finding.c_str());
    }
  }

  if (opt.gate) {
    if (inputs.sweeps.empty()) {
      std::fprintf(stderr, "report_gen: --gate needs at least one sweep document\n");
      return 2;
    }
    // A gate without a populated ledger still judges expectations, but the
    // bench comparator has no baseline — say so instead of passing silently.
    if (!have_ledger_baseline) {
      if (opt.history.empty()) {
        std::fprintf(stderr, "report_gen: warning: no ledger (--history not given) — "
                             "bench regression check skipped\n");
      } else {
        std::fprintf(stderr,
                     "report_gen: warning: %s missing or empty — no ledger, bench "
                     "regression check skipped\n",
                     opt.history.c_str());
      }
    }
    if (report::gate_failed(inputs)) return 1;
  }
  return 0;
}
