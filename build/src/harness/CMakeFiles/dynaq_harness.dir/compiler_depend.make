# Empty compiler generated dependencies file for dynaq_harness.
# This may be replaced when dependencies are built.
