file(REMOVE_RECURSE
  "libdynaq_harness.a"
)
