file(REMOVE_RECURSE
  "CMakeFiles/dynaq_harness.dir/dynamic_experiment.cpp.o"
  "CMakeFiles/dynaq_harness.dir/dynamic_experiment.cpp.o.d"
  "CMakeFiles/dynaq_harness.dir/static_experiment.cpp.o"
  "CMakeFiles/dynaq_harness.dir/static_experiment.cpp.o.d"
  "libdynaq_harness.a"
  "libdynaq_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaq_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
