file(REMOVE_RECURSE
  "libdynaq_transport.a"
)
