file(REMOVE_RECURSE
  "CMakeFiles/dynaq_transport.dir/congestion_control.cpp.o"
  "CMakeFiles/dynaq_transport.dir/congestion_control.cpp.o.d"
  "CMakeFiles/dynaq_transport.dir/cubic.cpp.o"
  "CMakeFiles/dynaq_transport.dir/cubic.cpp.o.d"
  "CMakeFiles/dynaq_transport.dir/dctcp.cpp.o"
  "CMakeFiles/dynaq_transport.dir/dctcp.cpp.o.d"
  "CMakeFiles/dynaq_transport.dir/flow_receiver.cpp.o"
  "CMakeFiles/dynaq_transport.dir/flow_receiver.cpp.o.d"
  "CMakeFiles/dynaq_transport.dir/flow_sender.cpp.o"
  "CMakeFiles/dynaq_transport.dir/flow_sender.cpp.o.d"
  "CMakeFiles/dynaq_transport.dir/newreno.cpp.o"
  "CMakeFiles/dynaq_transport.dir/newreno.cpp.o.d"
  "libdynaq_transport.a"
  "libdynaq_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaq_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
