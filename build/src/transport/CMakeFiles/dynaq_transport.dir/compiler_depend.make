# Empty compiler generated dependencies file for dynaq_transport.
# This may be replaced when dependencies are built.
