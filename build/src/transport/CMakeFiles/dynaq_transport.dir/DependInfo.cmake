
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/congestion_control.cpp" "src/transport/CMakeFiles/dynaq_transport.dir/congestion_control.cpp.o" "gcc" "src/transport/CMakeFiles/dynaq_transport.dir/congestion_control.cpp.o.d"
  "/root/repo/src/transport/cubic.cpp" "src/transport/CMakeFiles/dynaq_transport.dir/cubic.cpp.o" "gcc" "src/transport/CMakeFiles/dynaq_transport.dir/cubic.cpp.o.d"
  "/root/repo/src/transport/dctcp.cpp" "src/transport/CMakeFiles/dynaq_transport.dir/dctcp.cpp.o" "gcc" "src/transport/CMakeFiles/dynaq_transport.dir/dctcp.cpp.o.d"
  "/root/repo/src/transport/flow_receiver.cpp" "src/transport/CMakeFiles/dynaq_transport.dir/flow_receiver.cpp.o" "gcc" "src/transport/CMakeFiles/dynaq_transport.dir/flow_receiver.cpp.o.d"
  "/root/repo/src/transport/flow_sender.cpp" "src/transport/CMakeFiles/dynaq_transport.dir/flow_sender.cpp.o" "gcc" "src/transport/CMakeFiles/dynaq_transport.dir/flow_sender.cpp.o.d"
  "/root/repo/src/transport/newreno.cpp" "src/transport/CMakeFiles/dynaq_transport.dir/newreno.cpp.o" "gcc" "src/transport/CMakeFiles/dynaq_transport.dir/newreno.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/dynaq_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
