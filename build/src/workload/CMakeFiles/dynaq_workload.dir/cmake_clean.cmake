file(REMOVE_RECURSE
  "CMakeFiles/dynaq_workload.dir/flow_generator.cpp.o"
  "CMakeFiles/dynaq_workload.dir/flow_generator.cpp.o.d"
  "CMakeFiles/dynaq_workload.dir/flow_size_distribution.cpp.o"
  "CMakeFiles/dynaq_workload.dir/flow_size_distribution.cpp.o.d"
  "libdynaq_workload.a"
  "libdynaq_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaq_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
