
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/flow_generator.cpp" "src/workload/CMakeFiles/dynaq_workload.dir/flow_generator.cpp.o" "gcc" "src/workload/CMakeFiles/dynaq_workload.dir/flow_generator.cpp.o.d"
  "/root/repo/src/workload/flow_size_distribution.cpp" "src/workload/CMakeFiles/dynaq_workload.dir/flow_size_distribution.cpp.o" "gcc" "src/workload/CMakeFiles/dynaq_workload.dir/flow_size_distribution.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
