file(REMOVE_RECURSE
  "libdynaq_workload.a"
)
