# Empty dependencies file for dynaq_workload.
# This may be replaced when dependencies are built.
