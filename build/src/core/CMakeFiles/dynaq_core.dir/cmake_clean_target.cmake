file(REMOVE_RECURSE
  "libdynaq_core.a"
)
