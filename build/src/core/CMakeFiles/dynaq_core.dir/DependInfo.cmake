
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dynaq_controller.cpp" "src/core/CMakeFiles/dynaq_core.dir/dynaq_controller.cpp.o" "gcc" "src/core/CMakeFiles/dynaq_core.dir/dynaq_controller.cpp.o.d"
  "/root/repo/src/core/ecn_markers.cpp" "src/core/CMakeFiles/dynaq_core.dir/ecn_markers.cpp.o" "gcc" "src/core/CMakeFiles/dynaq_core.dir/ecn_markers.cpp.o.d"
  "/root/repo/src/core/policies.cpp" "src/core/CMakeFiles/dynaq_core.dir/policies.cpp.o" "gcc" "src/core/CMakeFiles/dynaq_core.dir/policies.cpp.o.d"
  "/root/repo/src/core/scheme.cpp" "src/core/CMakeFiles/dynaq_core.dir/scheme.cpp.o" "gcc" "src/core/CMakeFiles/dynaq_core.dir/scheme.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/dynaq_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
