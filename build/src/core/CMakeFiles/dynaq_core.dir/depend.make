# Empty dependencies file for dynaq_core.
# This may be replaced when dependencies are built.
