file(REMOVE_RECURSE
  "CMakeFiles/dynaq_core.dir/dynaq_controller.cpp.o"
  "CMakeFiles/dynaq_core.dir/dynaq_controller.cpp.o.d"
  "CMakeFiles/dynaq_core.dir/ecn_markers.cpp.o"
  "CMakeFiles/dynaq_core.dir/ecn_markers.cpp.o.d"
  "CMakeFiles/dynaq_core.dir/policies.cpp.o"
  "CMakeFiles/dynaq_core.dir/policies.cpp.o.d"
  "CMakeFiles/dynaq_core.dir/scheme.cpp.o"
  "CMakeFiles/dynaq_core.dir/scheme.cpp.o.d"
  "libdynaq_core.a"
  "libdynaq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
