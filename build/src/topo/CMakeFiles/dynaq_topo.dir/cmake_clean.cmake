file(REMOVE_RECURSE
  "CMakeFiles/dynaq_topo.dir/leaf_spine.cpp.o"
  "CMakeFiles/dynaq_topo.dir/leaf_spine.cpp.o.d"
  "CMakeFiles/dynaq_topo.dir/star.cpp.o"
  "CMakeFiles/dynaq_topo.dir/star.cpp.o.d"
  "libdynaq_topo.a"
  "libdynaq_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaq_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
