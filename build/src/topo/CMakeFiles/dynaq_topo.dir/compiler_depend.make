# Empty compiler generated dependencies file for dynaq_topo.
# This may be replaced when dependencies are built.
