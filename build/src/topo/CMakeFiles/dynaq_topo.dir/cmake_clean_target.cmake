file(REMOVE_RECURSE
  "libdynaq_topo.a"
)
