file(REMOVE_RECURSE
  "CMakeFiles/dynaq_stats.dir/fairness.cpp.o"
  "CMakeFiles/dynaq_stats.dir/fairness.cpp.o.d"
  "CMakeFiles/dynaq_stats.dir/fct_recorder.cpp.o"
  "CMakeFiles/dynaq_stats.dir/fct_recorder.cpp.o.d"
  "CMakeFiles/dynaq_stats.dir/percentile.cpp.o"
  "CMakeFiles/dynaq_stats.dir/percentile.cpp.o.d"
  "libdynaq_stats.a"
  "libdynaq_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaq_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
