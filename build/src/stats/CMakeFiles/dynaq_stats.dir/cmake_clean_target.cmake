file(REMOVE_RECURSE
  "libdynaq_stats.a"
)
