# Empty dependencies file for dynaq_stats.
# This may be replaced when dependencies are built.
