
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/fairness.cpp" "src/stats/CMakeFiles/dynaq_stats.dir/fairness.cpp.o" "gcc" "src/stats/CMakeFiles/dynaq_stats.dir/fairness.cpp.o.d"
  "/root/repo/src/stats/fct_recorder.cpp" "src/stats/CMakeFiles/dynaq_stats.dir/fct_recorder.cpp.o" "gcc" "src/stats/CMakeFiles/dynaq_stats.dir/fct_recorder.cpp.o.d"
  "/root/repo/src/stats/percentile.cpp" "src/stats/CMakeFiles/dynaq_stats.dir/percentile.cpp.o" "gcc" "src/stats/CMakeFiles/dynaq_stats.dir/percentile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
