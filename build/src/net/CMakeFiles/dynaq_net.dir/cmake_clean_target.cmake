file(REMOVE_RECURSE
  "libdynaq_net.a"
)
