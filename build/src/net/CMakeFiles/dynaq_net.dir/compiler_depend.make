# Empty compiler generated dependencies file for dynaq_net.
# This may be replaced when dependencies are built.
