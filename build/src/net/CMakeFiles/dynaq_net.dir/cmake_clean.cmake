file(REMOVE_RECURSE
  "CMakeFiles/dynaq_net.dir/multi_queue_qdisc.cpp.o"
  "CMakeFiles/dynaq_net.dir/multi_queue_qdisc.cpp.o.d"
  "CMakeFiles/dynaq_net.dir/schedulers.cpp.o"
  "CMakeFiles/dynaq_net.dir/schedulers.cpp.o.d"
  "libdynaq_net.a"
  "libdynaq_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaq_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
