file(REMOVE_RECURSE
  "CMakeFiles/marker_e2e_test.dir/marker_e2e_test.cpp.o"
  "CMakeFiles/marker_e2e_test.dir/marker_e2e_test.cpp.o.d"
  "marker_e2e_test"
  "marker_e2e_test.pdb"
  "marker_e2e_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marker_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
