# Empty dependencies file for dynaq_property_test.
# This may be replaced when dependencies are built.
