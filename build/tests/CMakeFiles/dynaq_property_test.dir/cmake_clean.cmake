file(REMOVE_RECURSE
  "CMakeFiles/dynaq_property_test.dir/dynaq_property_test.cpp.o"
  "CMakeFiles/dynaq_property_test.dir/dynaq_property_test.cpp.o.d"
  "dynaq_property_test"
  "dynaq_property_test.pdb"
  "dynaq_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaq_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
