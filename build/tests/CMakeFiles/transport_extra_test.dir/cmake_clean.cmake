file(REMOVE_RECURSE
  "CMakeFiles/transport_extra_test.dir/transport_extra_test.cpp.o"
  "CMakeFiles/transport_extra_test.dir/transport_extra_test.cpp.o.d"
  "transport_extra_test"
  "transport_extra_test.pdb"
  "transport_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transport_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
