# Empty dependencies file for transport_extra_test.
# This may be replaced when dependencies are built.
