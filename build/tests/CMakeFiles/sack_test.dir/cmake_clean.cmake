file(REMOVE_RECURSE
  "CMakeFiles/sack_test.dir/sack_test.cpp.o"
  "CMakeFiles/sack_test.dir/sack_test.cpp.o.d"
  "sack_test"
  "sack_test.pdb"
  "sack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
