file(REMOVE_RECURSE
  "CMakeFiles/highspeed_shape_test.dir/highspeed_shape_test.cpp.o"
  "CMakeFiles/highspeed_shape_test.dir/highspeed_shape_test.cpp.o.d"
  "highspeed_shape_test"
  "highspeed_shape_test.pdb"
  "highspeed_shape_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/highspeed_shape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
