# Empty dependencies file for highspeed_shape_test.
# This may be replaced when dependencies are built.
