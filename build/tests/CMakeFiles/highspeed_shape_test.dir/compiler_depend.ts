# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for highspeed_shape_test.
