file(REMOVE_RECURSE
  "CMakeFiles/trace_and_ack_test.dir/trace_and_ack_test.cpp.o"
  "CMakeFiles/trace_and_ack_test.dir/trace_and_ack_test.cpp.o.d"
  "trace_and_ack_test"
  "trace_and_ack_test.pdb"
  "trace_and_ack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_and_ack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
