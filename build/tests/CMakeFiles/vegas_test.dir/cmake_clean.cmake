file(REMOVE_RECURSE
  "CMakeFiles/vegas_test.dir/vegas_test.cpp.o"
  "CMakeFiles/vegas_test.dir/vegas_test.cpp.o.d"
  "vegas_test"
  "vegas_test.pdb"
  "vegas_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vegas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
