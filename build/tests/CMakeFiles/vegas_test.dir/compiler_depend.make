# Empty compiler generated dependencies file for vegas_test.
# This may be replaced when dependencies are built.
