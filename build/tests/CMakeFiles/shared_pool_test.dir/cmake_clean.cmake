file(REMOVE_RECURSE
  "CMakeFiles/shared_pool_test.dir/shared_pool_test.cpp.o"
  "CMakeFiles/shared_pool_test.dir/shared_pool_test.cpp.o.d"
  "shared_pool_test"
  "shared_pool_test.pdb"
  "shared_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
