# Empty compiler generated dependencies file for shared_pool_test.
# This may be replaced when dependencies are built.
