# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/sack_test[1]_include.cmake")
include("/root/repo/build/tests/topo_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/resilience_test[1]_include.cmake")
include("/root/repo/build/tests/eviction_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_property_test[1]_include.cmake")
include("/root/repo/build/tests/transport_extra_test[1]_include.cmake")
include("/root/repo/build/tests/shared_pool_test[1]_include.cmake")
include("/root/repo/build/tests/trace_and_ack_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
include("/root/repo/build/tests/marker_e2e_test[1]_include.cmake")
include("/root/repo/build/tests/chaos_test[1]_include.cmake")
include("/root/repo/build/tests/dynaq_property_test[1]_include.cmake")
include("/root/repo/build/tests/highspeed_shape_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/vegas_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
