file(REMOVE_RECURSE
  "CMakeFiles/fig12_many_flows.dir/fig12_many_flows.cpp.o"
  "CMakeFiles/fig12_many_flows.dir/fig12_many_flows.cpp.o.d"
  "fig12_many_flows"
  "fig12_many_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_many_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
