# Empty compiler generated dependencies file for fig12_many_flows.
# This may be replaced when dependencies are built.
