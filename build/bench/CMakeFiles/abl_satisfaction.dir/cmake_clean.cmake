file(REMOVE_RECURSE
  "CMakeFiles/abl_satisfaction.dir/abl_satisfaction.cpp.o"
  "CMakeFiles/abl_satisfaction.dir/abl_satisfaction.cpp.o.d"
  "abl_satisfaction"
  "abl_satisfaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_satisfaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
