# Empty dependencies file for abl_satisfaction.
# This may be replaced when dependencies are built.
