file(REMOVE_RECURSE
  "CMakeFiles/abl_delay_based.dir/abl_delay_based.cpp.o"
  "CMakeFiles/abl_delay_based.dir/abl_delay_based.cpp.o.d"
  "abl_delay_based"
  "abl_delay_based.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_delay_based.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
