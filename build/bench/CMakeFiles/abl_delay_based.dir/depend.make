# Empty dependencies file for abl_delay_based.
# This may be replaced when dependencies are built.
