file(REMOVE_RECURSE
  "CMakeFiles/abl_victim_selection.dir/abl_victim_selection.cpp.o"
  "CMakeFiles/abl_victim_selection.dir/abl_victim_selection.cpp.o.d"
  "abl_victim_selection"
  "abl_victim_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_victim_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
