
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl_victim_selection.cpp" "bench/CMakeFiles/abl_victim_selection.dir/abl_victim_selection.cpp.o" "gcc" "bench/CMakeFiles/abl_victim_selection.dir/abl_victim_selection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/dynaq_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dynaq_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dynaq_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/dynaq_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dynaq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/dynaq_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dynaq_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
