# Empty dependencies file for abl_victim_selection.
# This may be replaced when dependencies are built.
