# Empty dependencies file for fig02_workloads.
# This may be replaced when dependencies are built.
