file(REMOVE_RECURSE
  "CMakeFiles/fig02_workloads.dir/fig02_workloads.cpp.o"
  "CMakeFiles/fig02_workloads.dir/fig02_workloads.cpp.o.d"
  "fig02_workloads"
  "fig02_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
