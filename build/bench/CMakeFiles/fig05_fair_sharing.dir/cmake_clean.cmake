file(REMOVE_RECURSE
  "CMakeFiles/fig05_fair_sharing.dir/fig05_fair_sharing.cpp.o"
  "CMakeFiles/fig05_fair_sharing.dir/fig05_fair_sharing.cpp.o.d"
  "fig05_fair_sharing"
  "fig05_fair_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_fair_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
