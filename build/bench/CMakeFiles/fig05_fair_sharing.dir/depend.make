# Empty dependencies file for fig05_fair_sharing.
# This may be replaced when dependencies are built.
