file(REMOVE_RECURSE
  "CMakeFiles/abl_tna_staleness.dir/abl_tna_staleness.cpp.o"
  "CMakeFiles/abl_tna_staleness.dir/abl_tna_staleness.cpp.o.d"
  "abl_tna_staleness"
  "abl_tna_staleness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_tna_staleness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
