# Empty dependencies file for abl_tna_staleness.
# This may be replaced when dependencies are built.
