file(REMOVE_RECURSE
  "CMakeFiles/abl_shared_pool.dir/abl_shared_pool.cpp.o"
  "CMakeFiles/abl_shared_pool.dir/abl_shared_pool.cpp.o.d"
  "abl_shared_pool"
  "abl_shared_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_shared_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
