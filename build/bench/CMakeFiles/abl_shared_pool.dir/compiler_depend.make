# Empty compiler generated dependencies file for abl_shared_pool.
# This may be replaced when dependencies are built.
