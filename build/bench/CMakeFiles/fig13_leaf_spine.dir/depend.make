# Empty dependencies file for fig13_leaf_spine.
# This may be replaced when dependencies are built.
