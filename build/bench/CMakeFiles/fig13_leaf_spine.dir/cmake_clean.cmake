file(REMOVE_RECURSE
  "CMakeFiles/fig13_leaf_spine.dir/fig13_leaf_spine.cpp.o"
  "CMakeFiles/fig13_leaf_spine.dir/fig13_leaf_spine.cpp.o.d"
  "fig13_leaf_spine"
  "fig13_leaf_spine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_leaf_spine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
