# Empty dependencies file for abl_generic_ecn.
# This may be replaced when dependencies are built.
