file(REMOVE_RECURSE
  "CMakeFiles/abl_generic_ecn.dir/abl_generic_ecn.cpp.o"
  "CMakeFiles/abl_generic_ecn.dir/abl_generic_ecn.cpp.o.d"
  "abl_generic_ecn"
  "abl_generic_ecn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_generic_ecn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
