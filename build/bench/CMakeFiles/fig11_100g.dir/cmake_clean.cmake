file(REMOVE_RECURSE
  "CMakeFiles/fig11_100g.dir/fig11_100g.cpp.o"
  "CMakeFiles/fig11_100g.dir/fig11_100g.cpp.o.d"
  "fig11_100g"
  "fig11_100g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_100g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
