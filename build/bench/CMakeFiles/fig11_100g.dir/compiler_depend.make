# Empty compiler generated dependencies file for fig11_100g.
# This may be replaced when dependencies are built.
