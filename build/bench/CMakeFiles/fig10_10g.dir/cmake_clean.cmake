file(REMOVE_RECURSE
  "CMakeFiles/fig10_10g.dir/fig10_10g.cpp.o"
  "CMakeFiles/fig10_10g.dir/fig10_10g.cpp.o.d"
  "fig10_10g"
  "fig10_10g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_10g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
