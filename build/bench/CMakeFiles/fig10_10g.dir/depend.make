# Empty dependencies file for fig10_10g.
# This may be replaced when dependencies are built.
