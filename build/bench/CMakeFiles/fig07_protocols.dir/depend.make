# Empty dependencies file for fig07_protocols.
# This may be replaced when dependencies are built.
