file(REMOVE_RECURSE
  "CMakeFiles/fig07_protocols.dir/fig07_protocols.cpp.o"
  "CMakeFiles/fig07_protocols.dir/fig07_protocols.cpp.o.d"
  "fig07_protocols"
  "fig07_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
