# Empty compiler generated dependencies file for abl_dt_baseline.
# This may be replaced when dependencies are built.
