file(REMOVE_RECURSE
  "CMakeFiles/abl_dt_baseline.dir/abl_dt_baseline.cpp.o"
  "CMakeFiles/abl_dt_baseline.dir/abl_dt_baseline.cpp.o.d"
  "abl_dt_baseline"
  "abl_dt_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dt_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
