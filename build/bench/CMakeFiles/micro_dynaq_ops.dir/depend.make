# Empty dependencies file for micro_dynaq_ops.
# This may be replaced when dependencies are built.
