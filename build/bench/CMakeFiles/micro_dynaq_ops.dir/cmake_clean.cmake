file(REMOVE_RECURSE
  "CMakeFiles/micro_dynaq_ops.dir/micro_dynaq_ops.cpp.o"
  "CMakeFiles/micro_dynaq_ops.dir/micro_dynaq_ops.cpp.o.d"
  "micro_dynaq_ops"
  "micro_dynaq_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_dynaq_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
