# Empty compiler generated dependencies file for fig08_fct_non_ecn.
# This may be replaced when dependencies are built.
