file(REMOVE_RECURSE
  "CMakeFiles/fig08_fct_non_ecn.dir/fig08_fct_non_ecn.cpp.o"
  "CMakeFiles/fig08_fct_non_ecn.dir/fig08_fct_non_ecn.cpp.o.d"
  "fig08_fct_non_ecn"
  "fig08_fct_non_ecn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_fct_non_ecn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
