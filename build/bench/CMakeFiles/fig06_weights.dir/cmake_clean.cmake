file(REMOVE_RECURSE
  "CMakeFiles/fig06_weights.dir/fig06_weights.cpp.o"
  "CMakeFiles/fig06_weights.dir/fig06_weights.cpp.o.d"
  "fig06_weights"
  "fig06_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
