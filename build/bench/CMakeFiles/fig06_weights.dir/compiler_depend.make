# Empty compiler generated dependencies file for fig06_weights.
# This may be replaced when dependencies are built.
