file(REMOVE_RECURSE
  "CMakeFiles/fig09_fct_ecn.dir/fig09_fct_ecn.cpp.o"
  "CMakeFiles/fig09_fct_ecn.dir/fig09_fct_ecn.cpp.o.d"
  "fig09_fct_ecn"
  "fig09_fct_ecn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_fct_ecn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
