# Empty dependencies file for fig09_fct_ecn.
# This may be replaced when dependencies are built.
