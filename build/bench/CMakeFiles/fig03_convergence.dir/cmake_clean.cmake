file(REMOVE_RECURSE
  "CMakeFiles/fig03_convergence.dir/fig03_convergence.cpp.o"
  "CMakeFiles/fig03_convergence.dir/fig03_convergence.cpp.o.d"
  "fig03_convergence"
  "fig03_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
