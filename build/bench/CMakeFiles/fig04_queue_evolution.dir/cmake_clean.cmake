file(REMOVE_RECURSE
  "CMakeFiles/fig04_queue_evolution.dir/fig04_queue_evolution.cpp.o"
  "CMakeFiles/fig04_queue_evolution.dir/fig04_queue_evolution.cpp.o.d"
  "fig04_queue_evolution"
  "fig04_queue_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_queue_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
