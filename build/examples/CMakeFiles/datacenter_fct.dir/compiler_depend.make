# Empty compiler generated dependencies file for datacenter_fct.
# This may be replaced when dependencies are built.
