file(REMOVE_RECURSE
  "CMakeFiles/datacenter_fct.dir/datacenter_fct.cpp.o"
  "CMakeFiles/datacenter_fct.dir/datacenter_fct.cpp.o.d"
  "datacenter_fct"
  "datacenter_fct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_fct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
