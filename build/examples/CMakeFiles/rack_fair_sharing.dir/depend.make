# Empty dependencies file for rack_fair_sharing.
# This may be replaced when dependencies are built.
