file(REMOVE_RECURSE
  "CMakeFiles/rack_fair_sharing.dir/rack_fair_sharing.cpp.o"
  "CMakeFiles/rack_fair_sharing.dir/rack_fair_sharing.cpp.o.d"
  "rack_fair_sharing"
  "rack_fair_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rack_fair_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
