file(REMOVE_RECURSE
  "CMakeFiles/microburst_absorption.dir/microburst_absorption.cpp.o"
  "CMakeFiles/microburst_absorption.dir/microburst_absorption.cpp.o.d"
  "microburst_absorption"
  "microburst_absorption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microburst_absorption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
