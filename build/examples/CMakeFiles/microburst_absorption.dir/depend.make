# Empty dependencies file for microburst_absorption.
# This may be replaced when dependencies are built.
