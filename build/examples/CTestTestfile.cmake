# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rack_fair_sharing "/root/repo/build/examples/rack_fair_sharing" "--seconds" "2")
set_tests_properties(example_rack_fair_sharing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_datacenter_fct "/root/repo/build/examples/datacenter_fct" "--flows" "200" "--load" "0.5")
set_tests_properties(example_datacenter_fct PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_datacenter_fct_leafspine "/root/repo/build/examples/datacenter_fct" "--leaf-spine" "--leaves" "3" "--flows" "100" "--load" "0.4")
set_tests_properties(example_datacenter_fct_leafspine PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_policy "/root/repo/build/examples/custom_policy")
set_tests_properties(example_custom_policy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_microburst "/root/repo/build/examples/microburst_absorption")
set_tests_properties(example_microburst PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
