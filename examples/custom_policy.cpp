// Extending the library: write your own buffer-management policy.
//
// This example implements "ReserveHalf", a policy that statically reserves
// half of each queue's fair share and lets the rest of the buffer float
// first-come-first-served, then races it against DynaQ, PQL and BestEffort
// on the 2-vs-16-flows scenario. The point is the API: a policy implements
// admit() (plus optional hooks), is plugged in through
// SchemeSpec::custom_policy, and every topology/harness/bench in the
// library can then run it.
#include <cstdio>
#include <memory>

#include "harness/static_experiment.hpp"
#include "harness/table.hpp"
#include "net/buffer_policy.hpp"

using namespace dynaq;

namespace {

// Admission rule: queue i may always use its reservation R_i = B·w_i/(2Σw);
// spill beyond the reservation must fit into the shared floating pool of
// B/2 bytes, counted across all queues.
class ReserveHalfPolicy final : public net::BufferPolicy {
 public:
  void attach(const net::MqState& state) override {
    reserved_.clear();
    const double sum_w = state.total_weight();
    for (const net::ServiceQueue& q : state.queues) {
      reserved_.push_back(static_cast<std::int64_t>(
          static_cast<double>(state.buffer_bytes) * q.weight / (2.0 * sum_w)));
    }
    floating_pool_ = state.buffer_bytes / 2;
  }

  bool admit(const net::MqState& state, int q, const net::Packet& p) override {
    const std::int64_t after = state.queue(q).bytes + p.size;
    const std::int64_t r_q = reserved_[static_cast<std::size_t>(q)];
    if (after <= r_q) return true;
    std::int64_t floating_used = 0;
    for (std::size_t i = 0; i < state.queues.size(); ++i) {
      if (static_cast<int>(i) == q) continue;
      floating_used += std::max<std::int64_t>(state.queues[i].bytes - reserved_[i], 0);
    }
    return floating_used + (after - r_q) <= floating_pool_;
  }

  std::vector<std::int64_t> thresholds() const override { return reserved_; }
  std::string_view name() const override { return "reserve-half"; }

 private:
  std::vector<std::int64_t> reserved_;
  std::int64_t floating_pool_ = 0;
};

harness::StaticExperimentConfig experiment_config() {
  harness::StaticExperimentConfig cfg;
  cfg.star.num_hosts = 5;
  cfg.star.link_rate_bps = 1e9;
  cfg.star.link_delay = microseconds(std::int64_t{125});
  cfg.star.buffer_bytes = 85'000;
  cfg.star.queue_weights = {1, 1};
  cfg.star.scheduler = topo::SchedulerKind::kDrr;
  cfg.groups = {
      {.queue = 0, .num_flows = 2, .first_src_host = 1, .num_src_hosts = 2,
       .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno},
      {.queue = 1, .num_flows = 16, .first_src_host = 3, .num_src_hosts = 2,
       .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno},
  };
  cfg.duration = seconds(std::int64_t{5});
  return cfg;
}

}  // namespace

int main() {
  std::puts("Custom policy demo: queue1 has 2 flows, queue2 has 16; fair split is 0.5/0.5\n");

  harness::Table t({"policy", "queue1_Gbps", "queue2_Gbps", "aggregate"});

  // Built-in schemes go through SchemeSpec::kind...
  for (const auto kind : {core::SchemeKind::kBestEffort, core::SchemeKind::kPql,
                          core::SchemeKind::kDynaQ}) {
    auto cfg = experiment_config();
    cfg.star.scheme.kind = kind;
    const auto r = harness::run_static_experiment(cfg);
    const double q1 = r.meter.mean_gbps(0, 2, r.meter.num_windows());
    const double q2 = r.meter.mean_gbps(1, 2, r.meter.num_windows());
    t.row({std::string(core::scheme_name(kind)), harness::Table::num(q1),
           harness::Table::num(q2), harness::Table::num(q1 + q2)});
  }

  // ...and a user-defined policy goes through SchemeSpec::custom_policy.
  {
    auto cfg = experiment_config();
    cfg.star.scheme.custom_policy = [] { return std::make_unique<ReserveHalfPolicy>(); };
    const auto r = harness::run_static_experiment(cfg);
    const double q1 = r.meter.mean_gbps(0, 2, r.meter.num_windows());
    const double q2 = r.meter.mean_gbps(1, 2, r.meter.num_windows());
    t.row({"ReserveHalf (custom)", harness::Table::num(q1), harness::Table::num(q2),
           harness::Table::num(q1 + q2)});
  }

  t.print();
  std::puts("\nReserveHalf sits between PQL (fair, not work-conserving) and BestEffort");
  std::puts("(work-conserving, unfair): the reservation protects half the fair share,");
  std::puts("the floating pool still favours the aggressive queue. See");
  std::puts("ReserveHalfPolicy above for the ~30-line implementation.");
  return 0;
}
