// Quickstart: simulate two competing services on one switch port with
// DynaQ, and watch the dynamic thresholds give each service queue the
// buffer it needs.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/scheme.hpp"
#include "sim/simulator.hpp"
#include "stats/throughput_meter.hpp"
#include "topo/star.hpp"
#include "transport/host_agent.hpp"

using namespace dynaq;

int main() {
  // 1. A 1 GbE rack: 4 hosts and a switch whose egress ports run DynaQ
  //    over two DRR service queues and an 85 KB shared buffer.
  sim::Simulator sim;
  topo::StarConfig cfg;
  cfg.num_hosts = 4;
  cfg.link_rate_bps = 1e9;
  cfg.link_delay = microseconds(std::int64_t{125});  // ~500 us base RTT
  cfg.buffer_bytes = 85'000;
  cfg.queue_weights = {1, 1};
  cfg.scheme.kind = core::SchemeKind::kDynaQ;
  cfg.scheduler = topo::SchedulerKind::kDrr;
  topo::StarTopology topo(sim, cfg);

  // 2. Two services sending to host 0: service A (queue 0) has 2 flows,
  //    service B (queue 1) has 12 — an aggressive neighbour.
  std::uint32_t flow_id = 1;
  auto start_flow = [&](int src, int queue) {
    transport::FlowParams params;
    params.id = flow_id++;
    params.src_host = src;
    params.dst_host = 0;
    params.size_bytes = 0;  // long-lived
    params.stop = seconds(std::int64_t{3});
    params.service_queue = queue;
    topo.agent(0).add_receiver(params);
    topo.agent(src).add_sender(params).start();
  };
  for (int i = 0; i < 2; ++i) start_flow(1, /*queue=*/0);
  for (int i = 0; i < 12; ++i) start_flow(2 + i % 2, /*queue=*/1);

  // 3. Meter the bottleneck (the switch port facing host 0).
  stats::ThroughputMeter meter(2, milliseconds(std::int64_t{250}));
  topo.port_qdisc(0).on_dequeue_hook = [&](int q, const net::Packet& p, Time now) {
    if (!p.is_ack()) meter.record(q, p.size, now);
  };

  sim.run_until(seconds(std::int64_t{3}));

  // 4. Report: both services should converge to ~0.5 Gbps despite the
  //    6x difference in flow count.
  std::puts("time_s  serviceA_Gbps  serviceB_Gbps");
  for (std::size_t w = 0; w < meter.num_windows(); ++w) {
    std::printf("%5.2f   %13.3f  %13.3f\n", (static_cast<double>(w) + 0.5) * 0.25,
                meter.gbps(w, 0), meter.gbps(w, 1));
  }
  const auto thresholds = topo.port_qdisc(0).policy().thresholds();
  std::printf("\nfinal DynaQ drop thresholds: queueA=%lld B, queueB=%lld B (sum=85000)\n",
              static_cast<long long>(thresholds[0]), static_cast<long long>(thresholds[1]));
  std::printf("drops at bottleneck: %llu\n",
              static_cast<unsigned long long>(topo.port_qdisc(0).stats().dropped));
  return 0;
}
