// Rack fair-sharing explorer: an iperf-style workbench for comparing
// buffer-management schemes under configurable service queues, weights and
// flow counts.
//
// Examples:
//   rack_fair_sharing --scheme BestEffort
//   rack_fair_sharing --scheme DynaQ --weights 4,3,2,1 --flows 2,4,8,16
//   rack_fair_sharing --scheme PQL --rate-gbps 10 --buffer-kb 192 --seconds 5
#include <cstdio>

#include "harness/cli.hpp"
#include "harness/static_experiment.hpp"
#include "harness/table.hpp"
#include "stats/fairness.hpp"

using namespace dynaq;

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const auto scheme = core::parse_scheme(cli.text("scheme", "DynaQ"));
  const auto weights = cli.reals("weights", {1, 1, 1, 1});
  const auto flows = cli.reals("flows", {2, 4, 8, 16});
  const double rate_gbps = cli.real("rate-gbps", 1.0);
  const auto buffer_kb = cli.integer("buffer-kb", 85);
  const auto duration = seconds(cli.integer("seconds", 5));

  if (weights.size() != flows.size()) {
    std::fprintf(stderr, "--weights and --flows must have the same length\n");
    return 1;
  }
  const int queues = static_cast<int>(weights.size());

  harness::StaticExperimentConfig cfg;
  cfg.star.num_hosts = 1 + 2 * queues;  // receiver + 2 sender hosts per queue
  cfg.star.link_rate_bps = rate_gbps * 1e9;
  cfg.star.link_delay = microseconds(std::int64_t{125});
  cfg.star.buffer_bytes = buffer_kb * 1000;
  cfg.star.queue_weights = weights;
  cfg.star.scheme.kind = scheme;
  cfg.star.scheduler = topo::SchedulerKind::kDrr;
  for (int q = 0; q < queues; ++q) {
    cfg.groups.push_back({.queue = q,
                          .num_flows = static_cast<int>(flows[static_cast<std::size_t>(q)]),
                          .first_src_host = 1 + 2 * q,
                          .num_src_hosts = 2,
                          .start = 0,
                          .stop = 0,
                          .cc = transport::CcKind::kNewReno});
  }
  cfg.duration = duration;
  cfg.meter_window = milliseconds(std::int64_t{500});
  cfg.seed = static_cast<std::uint64_t>(cli.integer("seed", 1));

  std::printf("scheme=%s  rate=%.1fG  buffer=%lldKB  queues=%d\n\n",
              std::string(core::scheme_name(scheme)).c_str(), rate_gbps,
              static_cast<long long>(buffer_kb), queues);
  const auto r = harness::run_static_experiment(cfg);

  std::vector<std::string> header{"time_s"};
  for (int q = 0; q < queues; ++q) header.push_back("q" + std::to_string(q + 1));
  header.push_back("aggregate");
  header.push_back("jain");
  harness::Table t(std::move(header));
  for (std::size_t w = 0; w < r.meter.num_windows(); ++w) {
    std::vector<std::string> row{harness::Table::num((static_cast<double>(w) + 0.5) * 0.5, 2)};
    const auto xs = r.meter.window_gbps(w);
    for (int q = 0; q < queues; ++q) {
      row.push_back(harness::Table::num(xs[static_cast<std::size_t>(q)]));
    }
    row.push_back(harness::Table::num(r.meter.aggregate_gbps(w)));
    row.push_back(harness::Table::num(stats::jain_index(xs), 3));
    t.row(std::move(row));
  }
  t.print();

  std::printf("\nbottleneck drops: %llu (policy %llu, port-full %llu)\n",
              static_cast<unsigned long long>(r.bottleneck_stats.dropped),
              static_cast<unsigned long long>(r.bottleneck_stats.dropped_by_policy),
              static_cast<unsigned long long>(r.bottleneck_stats.dropped_port_full));
  std::printf("sender totals: %llu fast retransmits, %llu timeouts\n",
              static_cast<unsigned long long>(r.sender_totals.fast_retransmits),
              static_cast<unsigned long long>(r.sender_totals.timeouts));
  return 0;
}
