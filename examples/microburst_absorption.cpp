// Microburst absorption: what happens when a latency-sensitive service
// fires a synchronized burst into a port whose buffer is already pinned
// full by bulk traffic — comparing drop-based DynaQ with the eviction
// extension (and PQL's hard reservation).
//
//   microburst_absorption [--burst-flows 12] [--burst-kb 20] [--seed 1]
#include <cstdio>

#include "harness/cli.hpp"
#include "harness/table.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "stats/fct_recorder.hpp"
#include "topo/star.hpp"
#include "transport/host_agent.hpp"

using namespace dynaq;

namespace {

stats::FctSummary run_burst(core::SchemeKind kind, int burst_flows, std::int64_t burst_bytes,
                            std::uint64_t seed) {
  sim::Simulator sim;
  sim::Rng rng(seed);
  topo::StarConfig cfg;
  cfg.num_hosts = 7;
  cfg.link_rate_bps = 1e9;
  cfg.link_delay = microseconds(std::int64_t{125});
  cfg.buffer_bytes = 85'000;
  cfg.queue_weights = {1, 1, 1};  // queue 0: bursty service; 1-2: bulk
  cfg.scheme.kind = kind;
  cfg.scheduler = topo::SchedulerKind::kSpqOverDrr;
  topo::StarTopology topo(sim, cfg);

  // Bulk background: 8 long-lived flows per bulk queue, pinning the buffer.
  std::uint32_t id = 1;
  for (int q = 1; q <= 2; ++q) {
    for (int f = 0; f < 8; ++f) {
      transport::FlowParams params;
      params.id = id++;
      params.src_host = 1 + 2 * (q - 1) + f % 2;
      params.dst_host = 0;
      params.size_bytes = 0;
      params.stop = milliseconds(std::int64_t{400});
      params.service_queue = q;
      params.initial_srtt = microseconds(std::int64_t{525});
      topo.agent(0).add_receiver(params);
      topo.agent(params.src_host).add_sender(params).start();
    }
  }

  // The microburst: `burst_flows` request responses fired within 100 us of
  // each other at t=200 ms, from two hosts, on the high-priority queue.
  stats::FctRecorder fcts;
  for (int f = 0; f < burst_flows; ++f) {
    transport::FlowParams params;
    params.id = id++;
    params.src_host = 5 + f % 2;
    params.dst_host = 0;
    params.size_bytes = burst_bytes;
    params.start = milliseconds(std::int64_t{200}) +
                   static_cast<Time>(rng.uniform() * static_cast<double>(microseconds(
                                                         std::int64_t{100})));
    params.service_queue = 0;
    params.initial_srtt = microseconds(std::int64_t{525});
    auto& rx = topo.agent(0).add_receiver(params);
    rx.on_complete = [&fcts](const transport::FlowReceiver& r) {
      fcts.record(r.params().id, r.params().size_bytes, r.params().start, r.completion_time());
    };
    topo.agent(params.src_host).add_sender(params).start();
  }

  sim.run_until(milliseconds(std::int64_t{450}));
  return fcts.summarize();
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const int burst_flows = static_cast<int>(cli.integer("burst-flows", 6));
  const std::int64_t burst_bytes = cli.integer("burst-kb", 8) * 1000;
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 1));

  std::printf("Microburst: %d x %lld KB responses into a buffer pinned by 16 bulk flows\n",
              burst_flows, static_cast<long long>(burst_bytes / 1000));
  std::puts("(queue 0 = strict-priority burst queue; queues 1-2 = bulk DRR)\n");

  harness::Table t({"scheme", "completed", "avg_ms", "p99_ms"});
  for (const auto kind : {core::SchemeKind::kBestEffort, core::SchemeKind::kPql,
                          core::SchemeKind::kDynaQ, core::SchemeKind::kDynaQEvict}) {
    const auto s = run_burst(kind, burst_flows, burst_bytes, seed);
    t.row({std::string(core::scheme_name(kind)), std::to_string(s.count),
           harness::Table::num(s.avg_overall_ms, 2), harness::Table::num(s.p99_overall_ms, 2)});
  }
  t.print();
  std::puts("\nSPQ already prioritizes the burst's *service*; the schemes differ in");
  std::puts("whether the burst's packets find *buffer*: BestEffort and plain DynaQ");
  std::puts("race against the pinned port, PQL reserves a quota, and DynaQ+Evict");
  std::puts("displaces bulk tail packets on demand.");
  return 0;
}
