// Datacenter FCT workbench: replay a production-derived request workload
// (web search / data mining / cache / hadoop) against any buffer scheme
// and report the flow-completion-time breakdown the paper uses.
//
// Examples:
//   datacenter_fct --scheme DynaQ --workload websearch --load 0.6
//   datacenter_fct --scheme TCN --workload cache --flows 5000
//   datacenter_fct --scheme BestEffort --leaf-spine --load 0.4
#include <cstdio>

#include "harness/cli.hpp"
#include "harness/dynamic_experiment.hpp"
#include "harness/table.hpp"
#include "workload/flow_size_distribution.hpp"

using namespace dynaq;

namespace {

const workload::FlowSizeDistribution& pick_workload(const std::string& name) {
  for (const auto* w : workload::all_workloads()) {
    if (w->name() == name) return *w;
  }
  std::fprintf(stderr, "unknown workload '%s' (try websearch/datamining/cache/hadoop)\n",
               name.c_str());
  std::exit(1);
}

void print_summary(const stats::FctSummary& s, std::size_t incomplete) {
  harness::Table t({"metric", "value"});
  t.row({"flows completed", std::to_string(s.count)});
  t.row({"avg FCT overall", harness::Table::num(s.avg_overall_ms, 2) + " ms"});
  t.row({"avg FCT small (<=100KB)", harness::Table::num(s.avg_small_ms, 2) + " ms"});
  t.row({"avg FCT medium", harness::Table::num(s.avg_medium_ms, 2) + " ms"});
  t.row({"avg FCT large (>10MB)", harness::Table::num(s.avg_large_ms, 2) + " ms"});
  t.row({"p99 FCT small", harness::Table::num(s.p99_small_ms, 2) + " ms"});
  t.row({"p99 FCT overall", harness::Table::num(s.p99_overall_ms, 2) + " ms"});
  t.print();
  if (incomplete > 0) std::printf("WARNING: %zu flows did not complete\n", incomplete);
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const auto scheme = core::parse_scheme(cli.text("scheme", "DynaQ"));
  const auto& dist = pick_workload(cli.text("workload", "websearch"));
  const double load = cli.real("load", 0.6);
  const auto flows = static_cast<std::size_t>(cli.integer("flows", 2000));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 1));

  if (cli.flag("leaf-spine")) {
    harness::DynamicLeafSpineConfig cfg;
    cfg.fabric.num_leaves = static_cast<int>(cli.integer("leaves", 4));
    cfg.fabric.num_spines = cfg.fabric.num_leaves;
    cfg.fabric.hosts_per_leaf = cfg.fabric.num_leaves;
    cfg.fabric.queue_weights.assign(8, 1.0);
    cfg.fabric.scheme.kind = scheme;
    // ECN settings scaled to the 10 Gbps fabric (K = C*RTT-class value).
    cfg.fabric.scheme.ecn.port_threshold_bytes = 96'000;
    cfg.fabric.scheme.ecn.sojourn_threshold = microseconds(std::int64_t{80});
    cfg.fabric.scheme.ecn.capacity_bps = cfg.fabric.link_rate_bps;
    cfg.fabric.scheme.ecn.rtt = microseconds(std::int64_t{85});
    cfg.cc = core::scheme_uses_ecn(scheme) ? transport::CcKind::kDctcp
                                           : transport::CcKind::kNewReno;
    cfg.num_flows = flows;
    cfg.load = load;
    cfg.seed = seed;
    std::printf("leaf-spine %dx%d, scheme=%s, load=%.0f%%, %zu flows\n\n",
                cfg.fabric.num_leaves, cfg.fabric.num_spines,
                std::string(core::scheme_name(scheme)).c_str(), load * 100, flows);
    const auto r = harness::run_dynamic_leaf_spine_experiment(cfg);
    print_summary(r.fcts.summarize(), r.incomplete);
    return 0;
  }

  harness::DynamicStarConfig cfg;
  cfg.star.num_hosts = 5;
  cfg.star.link_rate_bps = 1e9;
  cfg.star.link_delay = microseconds(std::int64_t{125});
  cfg.star.buffer_bytes = 85'000;
  cfg.star.queue_weights = {1, 1, 1, 1, 1};
  cfg.star.scheme.kind = scheme;
  cfg.star.scheme.ecn.port_threshold_bytes = 30'000;
  cfg.star.scheme.ecn.sojourn_threshold = microseconds(std::int64_t{240});
  cfg.star.scheme.ecn.capacity_bps = 1e9;
  cfg.star.scheme.ecn.rtt = microseconds(std::int64_t{500});
  cfg.star.scheduler = topo::SchedulerKind::kSpqOverDrr;
  cfg.num_flows = flows;
  cfg.load = load;
  cfg.dist = &dist;
  cfg.cc = core::scheme_uses_ecn(scheme) ? transport::CcKind::kDctcp
                                         : transport::CcKind::kNewReno;
  cfg.seed = seed;

  std::printf("1G star (4 servers -> 1 client), scheme=%s, workload=%s, load=%.0f%%, %zu flows\n",
              std::string(core::scheme_name(scheme)).c_str(), dist.name().c_str(), load * 100,
              flows);
  std::printf("transport=%s, SPQ(1)/DRR(4) with PIAS tagging at 100KB\n\n",
              std::string(transport::cc_name(cfg.cc)).c_str());
  const auto r = harness::run_dynamic_star_experiment(cfg);
  print_summary(r.fcts.summarize(), r.incomplete);
  std::printf("\nbottleneck: %llu drops, %llu ECN marks\n",
              static_cast<unsigned long long>(r.drops),
              static_cast<unsigned long long>(r.marks));
  return 0;
}
