// Topology tests: star wiring and routing, leaf-spine ECMP and
// connectivity, egress rate shaping, host queue limits.
#include <gtest/gtest.h>

#include <set>

#include "sim/simulator.hpp"
#include "topo/leaf_spine.hpp"
#include "topo/star.hpp"
#include "transport/host_agent.hpp"

namespace dynaq {
namespace {

TEST(StarTopology, BuildsRequestedShape) {
  sim::Simulator sim;
  topo::StarConfig cfg;
  cfg.num_hosts = 7;
  topo::StarTopology topo(sim, cfg);
  EXPECT_EQ(topo.num_hosts(), 7);
  EXPECT_EQ(topo.fabric().num_ports(), 7);
  for (int h = 0; h < 7; ++h) {
    EXPECT_EQ(topo.host(h).id(), h);
    EXPECT_EQ(topo.port_qdisc(h).state().num_queues(), 4);  // default weights
  }
}

TEST(StarTopology, DeliversBetweenAnyPair) {
  sim::Simulator sim;
  topo::StarConfig cfg;
  cfg.num_hosts = 4;
  topo::StarTopology topo(sim, cfg);
  int received = 0;
  for (int dst = 0; dst < 4; ++dst) {
    topo.host(dst).set_packet_handler([&received](net::Packet&&) { ++received; });
  }
  for (int src = 0; src < 4; ++src) {
    for (int dst = 0; dst < 4; ++dst) {
      if (src == dst) continue;
      topo.host(src).send(net::make_data_packet(1, static_cast<std::uint32_t>(src),
                                                static_cast<std::uint32_t>(dst), 0, 100));
    }
  }
  sim.run();
  EXPECT_EQ(received, 12);
}

TEST(StarTopology, EgressFactorSlowsSwitchPorts) {
  sim::Simulator sim;
  topo::StarConfig cfg;
  cfg.num_hosts = 2;
  cfg.egress_rate_factor = 0.5;
  topo::StarTopology topo(sim, cfg);
  // Send one packet host1 -> host0 and check arrival time reflects the
  // halved egress rate on the switch->host leg.
  Time arrival = -1;
  topo.host(0).set_packet_handler([&](net::Packet&&) { arrival = sim.now(); });
  topo.host(1).send(net::make_data_packet(1, 1, 0, 0, 1460));
  sim.run();
  // Host NIC: 12 us serialize + 125 us prop; switch egress at 0.5 Gbps:
  // 24 us serialize + 125 us prop.
  EXPECT_EQ(arrival, microseconds(std::int64_t{12 + 125 + 24 + 125}));
}

TEST(StarTopology, HostQueueLimitDropsBursts) {
  sim::Simulator sim;
  topo::StarConfig cfg;
  cfg.num_hosts = 2;
  cfg.host_queue_bytes = 3000;  // two packets
  topo::StarTopology topo(sim, cfg);
  int received = 0;
  topo.host(0).set_packet_handler([&](net::Packet&&) { ++received; });
  for (int i = 0; i < 10; ++i) {
    topo.host(1).send(net::make_data_packet(1, 1, 0, 0, 1460));
  }
  sim.run();
  // One packet in flight immediately + two buffered.
  EXPECT_EQ(received, 3);
}

TEST(LeafSpine, BuildsRequestedShape) {
  sim::Simulator sim;
  topo::LeafSpineConfig cfg;
  cfg.num_leaves = 3;
  cfg.num_spines = 3;
  cfg.hosts_per_leaf = 2;
  topo::LeafSpineTopology topo(sim, cfg);
  EXPECT_EQ(topo.num_hosts(), 6);
  EXPECT_EQ(topo.leaf_of(0), 0);
  EXPECT_EQ(topo.leaf_of(5), 2);
  // Leaf: 2 down + 3 up ports; spine: 3 ports.
  EXPECT_EQ(topo.leaf(0).num_ports(), 5);
  EXPECT_EQ(topo.spine(0).num_ports(), 3);
  // Qdiscs: 6 downlinks + 9 leaf uplinks + 9 spine downlinks.
  EXPECT_EQ(topo.all_qdiscs().size(), 24u);
}

TEST(LeafSpine, AllPairsConnected) {
  sim::Simulator sim;
  topo::LeafSpineConfig cfg;
  cfg.num_leaves = 3;
  cfg.num_spines = 3;
  cfg.hosts_per_leaf = 3;
  topo::LeafSpineTopology topo(sim, cfg);
  const int n = topo.num_hosts();
  std::vector<int> received(static_cast<std::size_t>(n), 0);
  for (int h = 0; h < n; ++h) {
    topo.host(h).set_packet_handler(
        [&received, h](net::Packet&& p) {
          EXPECT_EQ(static_cast<int>(p.dst), h);
          ++received[static_cast<std::size_t>(h)];
        });
  }
  std::uint32_t flow = 1;
  for (int src = 0; src < n; ++src) {
    for (int dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      topo.host(src).send(net::make_data_packet(flow++, static_cast<std::uint32_t>(src),
                                                static_cast<std::uint32_t>(dst), 0, 100));
    }
  }
  sim.run();
  for (int h = 0; h < n; ++h) {
    EXPECT_EQ(received[static_cast<std::size_t>(h)], n - 1) << "host " << h;
  }
  for (int l = 0; l < 3; ++l) EXPECT_EQ(topo.leaf(l).routing_drops(), 0u);
  for (int s = 0; s < 3; ++s) EXPECT_EQ(topo.spine(s).routing_drops(), 0u);
}

TEST(LeafSpine, IntraRackTrafficSkipsSpines) {
  sim::Simulator sim;
  topo::LeafSpineConfig cfg;
  cfg.num_leaves = 2;
  cfg.num_spines = 2;
  cfg.hosts_per_leaf = 2;
  topo::LeafSpineTopology topo(sim, cfg);
  Time arrival = -1;
  topo.host(1).set_packet_handler([&](net::Packet&&) { arrival = sim.now(); });
  topo.host(0).send(net::make_data_packet(1, 0, 1, 0, 1460));
  sim.run();
  // Two hops (host->leaf, leaf->host): 2 serializations + 2 propagations.
  const Time tx = transmission_time(1500, cfg.link_rate_bps);
  EXPECT_EQ(arrival, 2 * tx + 2 * cfg.link_delay);
}

TEST(LeafSpine, EcmpSpreadsFlowsAcrossSpines) {
  sim::Simulator sim;
  topo::LeafSpineConfig cfg;
  cfg.num_leaves = 4;
  cfg.num_spines = 4;
  cfg.hosts_per_leaf = 2;
  topo::LeafSpineTopology topo(sim, cfg);

  // Count packets traversing each spine for many distinct cross-rack flows.
  std::vector<int> per_spine(4, 0);
  // Spine traversal is observable via the spine's egress qdisc stats; we
  // instead count deliveries grouped by which spine the flow hashes to by
  // sending one packet per flow and tallying spine enqueues.
  for (std::uint32_t flow = 0; flow < 400; ++flow) {
    topo.host(0).send(net::make_data_packet(flow, 0, 7, 0, 100));  // leaf 0 -> leaf 3
  }
  sim.run();
  // Leaf 0's uplink ports are indices 2..5 (after 2 down ports); packets
  // counted by the port's bytes_sent.
  int used_spines = 0;
  std::int64_t total = 0;
  for (int s = 0; s < 4; ++s) {
    const auto& port = topo.leaf(0).port(2 + s);
    if (port.packets_sent() > 0) ++used_spines;
    total += static_cast<std::int64_t>(port.packets_sent());
    // No uplink should carry a grossly disproportionate share.
    EXPECT_LT(port.packets_sent(), 200u);
    EXPECT_GT(port.packets_sent(), 40u);
  }
  EXPECT_EQ(used_spines, 4);
  EXPECT_EQ(total, 400);
}

TEST(LeafSpine, EcmpIsFlowSticky) {
  sim::Simulator sim;
  topo::LeafSpineConfig cfg;
  cfg.num_leaves = 2;
  cfg.num_spines = 2;
  cfg.hosts_per_leaf = 2;
  topo::LeafSpineTopology topo(sim, cfg);
  // All packets of one flow must use the same spine (no reordering).
  for (int i = 0; i < 50; ++i) {
    topo.host(0).send(net::make_data_packet(/*flow=*/42, 0, 3, 0, 100));
  }
  sim.run();
  int used = 0;
  for (int s = 0; s < 2; ++s) {
    if (topo.leaf(0).port(2 + s).packets_sent() > 0) ++used;
  }
  EXPECT_EQ(used, 1);
}

TEST(LeafSpine, EndToEndFlowAcrossRacks) {
  sim::Simulator sim;
  topo::LeafSpineConfig cfg;
  cfg.num_leaves = 2;
  cfg.num_spines = 2;
  cfg.hosts_per_leaf = 2;
  topo::LeafSpineTopology topo(sim, cfg);
  transport::FlowParams params;
  params.id = 9;
  params.src_host = 0;
  params.dst_host = 3;
  params.size_bytes = 500'000;
  params.rto_min = milliseconds(std::int64_t{5});
  Time done = -1;
  topo.agent(3).add_receiver(params).on_complete =
      [&](const transport::FlowReceiver& r) { done = r.completion_time(); };
  topo.agent(0).add_sender(params).start();
  sim.run_until(seconds(std::int64_t{1}));
  ASSERT_GT(done, 0);
  // 500 KB at ~10 Gbps is ~0.4 ms plus slow start.
  EXPECT_LT(to_milliseconds(done), 5.0);
}

}  // namespace
}  // namespace dynaq
