// Resilience and operational-edge tests: runtime buffer resizing
// (§III-B3), transactional admit/abort, custom policies, the hardware cost
// model, and invariants under hostile churn.
#include <gtest/gtest.h>

#include <memory>

#include "core/hardware_model.hpp"
#include "core/policies.hpp"
#include "core/scheme.hpp"
#include "net/multi_queue_qdisc.hpp"
#include "net/schedulers.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace dynaq {
namespace {

net::Packet pkt(int queue, std::int32_t payload = 1460) {
  net::Packet p = net::make_data_packet(1, 0, 1, 0, payload);
  p.queue = static_cast<std::uint8_t>(queue);
  return p;
}

// ------------------------------------------------------ buffer resize --

TEST(BufferResize, DynaQReinitializesThresholds) {
  sim::Simulator sim;
  net::MultiQueueQdisc qd(sim, {1, 1}, 10'000, std::make_unique<core::DynaQPolicy>(),
                          std::make_unique<net::SpqScheduler>());
  // Skew thresholds first.
  qd.enqueue(pkt(0));
  qd.enqueue(pkt(0));
  qd.enqueue(pkt(0));
  qd.enqueue(pkt(0));  // exceeds 5000 -> exchange
  EXPECT_NE(qd.policy().thresholds()[0], 5'000);

  qd.resize_buffer(20'000);
  EXPECT_EQ(qd.policy().thresholds(), (std::vector<std::int64_t>{10'000, 10'000}));
  const auto& policy = dynamic_cast<const core::DynaQPolicy&>(qd.policy());
  EXPECT_EQ(policy.controller().threshold_sum(), 20'000);
}

TEST(BufferResize, PqlRecomputesQuotas) {
  sim::Simulator sim;
  net::MultiQueueQdisc qd(sim, {3, 1}, 8'000, std::make_unique<core::PqlPolicy>(),
                          std::make_unique<net::SpqScheduler>());
  EXPECT_EQ(qd.policy().thresholds(), (std::vector<std::int64_t>{6'000, 2'000}));
  qd.resize_buffer(16'000);
  EXPECT_EQ(qd.policy().thresholds(), (std::vector<std::int64_t>{12'000, 4'000}));
}

TEST(BufferResize, ShrinkBelowBacklogStopsAdmission) {
  sim::Simulator sim;
  net::MultiQueueQdisc qd(sim, {1}, 10'000, std::make_unique<core::BestEffortPolicy>(),
                          std::make_unique<net::SpqScheduler>());
  for (int i = 0; i < 6; ++i) qd.enqueue(pkt(0));  // 9000 B buffered
  qd.resize_buffer(3'000);
  EXPECT_FALSE(qd.enqueue(pkt(0))) << "over the new bound";
  // Drain below the new bound; admission resumes.
  qd.dequeue();
  qd.dequeue();
  qd.dequeue();
  qd.dequeue();
  qd.dequeue();  // 1500 left
  EXPECT_TRUE(qd.enqueue(pkt(0)));
  EXPECT_THROW(qd.resize_buffer(0), std::invalid_argument);
}

TEST(BufferResize, DynaQKeepsInvariantsAfterManyResizes) {
  sim::Simulator sim;
  sim::Rng rng(5);
  net::MultiQueueQdisc qd(sim, {1, 2, 1}, 50'000, std::make_unique<core::DynaQPolicy>(),
                          std::make_unique<net::DrrScheduler>(1500));
  auto& policy = dynamic_cast<core::DynaQPolicy&>(qd.policy());
  for (int step = 0; step < 20'000; ++step) {
    const double dice = rng.uniform();
    if (dice < 0.50) {
      qd.enqueue(pkt(static_cast<int>(rng.uniform_int(0, 2)),
                     static_cast<std::int32_t>(rng.uniform_int(60, 1460))));
    } else if (dice < 0.98) {
      qd.dequeue();
    } else {
      qd.resize_buffer(rng.uniform_int(20'000, 120'000));
    }
    ASSERT_EQ(policy.controller().threshold_sum(), qd.state().buffer_bytes);
    for (int i = 0; i < 3; ++i) ASSERT_GE(policy.controller().threshold(i), 0);
  }
}

// --------------------------------------------------- transactional admit --

TEST(TransactionalAdmit, PortFullRejectionRevertsExchange) {
  sim::Simulator sim;
  // Buffer 6000; fill queue 1 to 4500 so the port has only 1500 free.
  net::MultiQueueQdisc qd(sim, {1, 1}, 6'000, std::make_unique<core::DynaQPolicy>(),
                          std::make_unique<net::SpqScheduler>());
  auto& policy = dynamic_cast<core::DynaQPolicy&>(qd.policy());
  ASSERT_TRUE(qd.enqueue(pkt(1)));
  ASSERT_TRUE(qd.enqueue(pkt(1)));  // q1 = 3000 = T_1; exact fit, no exchange
  ASSERT_TRUE(qd.enqueue(pkt(1)));  // exceeds -> exchange from queue 0
  const auto t_after = qd.policy().thresholds();
  EXPECT_EQ(t_after, (std::vector<std::int64_t>{1'500, 4'500}));

  // Fill queue 0 to its (raided) threshold: the port is now pinned at
  // exactly B with q_i == T_i everywhere.
  ASSERT_TRUE(qd.enqueue(pkt(0)));
  ASSERT_EQ(qd.backlog_bytes(), 6'000);

  // Queue 0 arrival: the exchange succeeds (queue 1 is satisfied-active
  // with 1500 B of extra, so it is not protected), but the port is
  // physically full — the qdisc must abort and the policy must roll the
  // exchange back.
  const auto t_before = qd.policy().thresholds();
  const auto adjustments_before = policy.threshold_adjustments();
  EXPECT_FALSE(qd.enqueue(pkt(0))) << "port is physically full";
  EXPECT_EQ(qd.policy().thresholds(), t_before) << "failed admit must not move thresholds";
  EXPECT_EQ(policy.threshold_adjustments(), adjustments_before + 1)
      << "the exchange happened and was rolled back";
  EXPECT_EQ(qd.stats().dropped_port_full, 1u);
}

// -------------------------------------------------------- custom policy --

TEST(CustomPolicy, FactoryOverridesKind) {
  struct DenyAll final : net::BufferPolicy {
    bool admit(const net::MqState&, int, const net::Packet&) override { return false; }
    std::string_view name() const override { return "deny-all"; }
  };
  core::SchemeSpec spec;
  spec.kind = core::SchemeKind::kBestEffort;
  spec.custom_policy = [] { return std::make_unique<DenyAll>(); };
  auto policy = core::make_policy(spec);
  EXPECT_EQ(policy->name(), "deny-all");

  sim::Simulator sim;
  auto qd = core::make_mq_qdisc(sim, {1.0}, 10'000, spec,
                                std::make_unique<net::SpqScheduler>());
  EXPECT_FALSE(qd->enqueue(pkt(0)));
  EXPECT_EQ(qd->stats().dropped_by_policy, 1u);
}

// ------------------------------------------------------ hardware model --

TEST(HardwareModel, MatchesPaperClaims) {
  const auto cost8 = core::dynaq_asic_cost(8);
  EXPECT_EQ(cost8.threshold_check, 1);
  EXPECT_EQ(cost8.victim_search, 3);  // log2(8)
  EXPECT_EQ(cost8.protection, 2);
  EXPECT_EQ(cost8.exchange, 1);
  EXPECT_EQ(cost8.total(), 7);
  EXPECT_EQ(core::dynaq_asic_cost(4).victim_search, 2);
  EXPECT_EQ(core::dynaq_asic_fast_path_cycles(), 1);
}

TEST(HardwareModel, OverheadBelowOnePercentOnTrident3) {
  EXPECT_NEAR(core::dynaq_overhead_fraction(8), 7.0 / 800.0, 1e-12);
  EXPECT_LT(core::dynaq_overhead_fraction(8), 0.01);
}

TEST(HardwareModel, Log2CeilEdgeCases) {
  EXPECT_EQ(core::log2_ceil(1), 0);
  EXPECT_EQ(core::log2_ceil(2), 1);
  EXPECT_EQ(core::log2_ceil(3), 2);
  EXPECT_EQ(core::log2_ceil(9), 4);
  EXPECT_EQ(core::log2_ceil(64), 6);
}

// ------------------------------------------------------ undo coverage --

TEST(DynaQController, UndoRestoresThresholds) {
  core::DynaQConfig cfg;
  cfg.buffer_bytes = 8'000;
  cfg.weights = {1, 1};
  core::DynaQController ctl(cfg);
  const std::vector<std::int64_t> q{4'000, 0};
  ASSERT_EQ(ctl.on_arrival(q, 0, 1'000), core::Verdict::kAdjusted);
  EXPECT_EQ(ctl.threshold(0), 5'000);
  ctl.undo_last_exchange();
  EXPECT_EQ(ctl.threshold(0), 4'000);
  EXPECT_EQ(ctl.threshold(1), 4'000);
  // Idempotent: second undo is a no-op.
  ctl.undo_last_exchange();
  EXPECT_EQ(ctl.threshold(0), 4'000);
}

TEST(DynaQController, UndoOnlyAppliesToLastArrival) {
  core::DynaQConfig cfg;
  cfg.buffer_bytes = 8'000;
  cfg.weights = {1, 1};
  core::DynaQController ctl(cfg);
  std::vector<std::int64_t> q{4'000, 0};
  ASSERT_EQ(ctl.on_arrival(q, 0, 1'000), core::Verdict::kAdjusted);  // exchange
  q[0] = 1'000;
  ASSERT_EQ(ctl.on_arrival(q, 0, 1'000), core::Verdict::kAdmit);  // below threshold
  const auto t0 = ctl.threshold(0);
  ctl.undo_last_exchange();  // must NOT undo the older exchange
  EXPECT_EQ(ctl.threshold(0), t0);
}

}  // namespace
}  // namespace dynaq
