// Unit tests for the stats module: fairness, percentiles, FCT summaries,
// throughput meters and queue-length sampling.
#include <gtest/gtest.h>

#include <vector>

#include "stats/fairness.hpp"
#include "stats/fct_recorder.hpp"
#include "stats/percentile.hpp"
#include "stats/queue_sampler.hpp"
#include "stats/throughput_meter.hpp"

namespace dynaq {
namespace {

// ------------------------------------------------------------ fairness --

TEST(JainIndex, PerfectlyFairIsOne) {
  const std::vector<double> x{5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(stats::jain_index(x), 1.0);
}

TEST(JainIndex, MonopolyIsOneOverN) {
  const std::vector<double> x{10.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(stats::jain_index(x), 0.25);
}

TEST(JainIndex, ScaleInvariant) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(stats::jain_index(a), stats::jain_index(b));
}

TEST(JainIndex, EmptyAndAllZeroAreFair) {
  EXPECT_DOUBLE_EQ(stats::jain_index({}), 1.0);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_DOUBLE_EQ(stats::jain_index(zeros), 1.0);
}

TEST(JainIndex, KnownTwoMemberValue) {
  // (1+3)^2 / (2*(1+9)) = 16/20 = 0.8
  const std::vector<double> x{1.0, 3.0};
  EXPECT_DOUBLE_EQ(stats::jain_index(x), 0.8);
}

TEST(ShareOf, BasicShares) {
  const std::vector<double> x{1.0, 3.0};
  EXPECT_DOUBLE_EQ(stats::share_of(x, 0), 0.25);
  EXPECT_DOUBLE_EQ(stats::share_of(x, 1), 0.75);
  EXPECT_DOUBLE_EQ(stats::share_of(x, 2), 0.0);  // out of range
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_DOUBLE_EQ(stats::share_of(zeros, 0), 0.0);
}

// ---------------------------------------------------------- percentile --

TEST(Percentile, MedianOfOddSet) {
  const std::vector<double> x{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(stats::percentile(x, 50.0), 2.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(stats::percentile(x, 50.0), 2.5);
}

TEST(Percentile, Extremes) {
  const std::vector<double> x{5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(stats::percentile(x, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats::percentile(x, 100.0), 9.0);
}

TEST(Percentile, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(stats::percentile({}, 50.0), 0.0);
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(stats::percentile(one, 99.0), 7.0);
}

TEST(Percentile, P99OfUniformRamp) {
  std::vector<double> x;
  for (int i = 1; i <= 100; ++i) x.push_back(static_cast<double>(i));
  EXPECT_NEAR(stats::percentile(x, 99.0), 99.01, 0.011);
}

TEST(Percentile, InplaceMatchesCopying) {
  std::vector<double> x{9.0, 3.0, 7.0, 1.0, 5.0};
  const double expected50 = stats::percentile(x, 50.0);
  const double expected90 = stats::percentile(x, 90.0);
  const std::vector<double> ps{50.0, 90.0};
  const auto got = stats::percentiles_inplace(x, ps);
  EXPECT_DOUBLE_EQ(got[0], expected50);
  EXPECT_DOUBLE_EQ(got[1], expected90);
  EXPECT_TRUE(std::is_sorted(x.begin(), x.end()));
}

TEST(Mean, BasicAndEmpty) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(stats::mean(x), 2.0);
  EXPECT_DOUBLE_EQ(stats::mean({}), 0.0);
}

// -------------------------------------------------------- FctRecorder --

TEST(FctRecorder, BucketsBySize) {
  stats::FctRecorder rec;
  // small (<= 100 KB), medium, large (> 10 MB)
  rec.record(1, 50'000, 0, milliseconds(std::int64_t{2}));
  rec.record(2, 1'000'000, 0, milliseconds(std::int64_t{10}));
  rec.record(3, 20'000'000, 0, milliseconds(std::int64_t{200}));
  const auto s = rec.summarize();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.small_count, 1u);
  EXPECT_EQ(s.large_count, 1u);
  EXPECT_DOUBLE_EQ(s.avg_small_ms, 2.0);
  EXPECT_DOUBLE_EQ(s.avg_medium_ms, 10.0);
  EXPECT_DOUBLE_EQ(s.avg_large_ms, 200.0);
  EXPECT_NEAR(s.avg_overall_ms, (2.0 + 10.0 + 200.0) / 3.0, 1e-9);
}

TEST(FctRecorder, BoundarySizesClassify) {
  stats::FctRecorder rec;
  rec.record(1, stats::kSmallFlowBytes, 0, milliseconds(std::int64_t{1}));      // small
  rec.record(2, stats::kSmallFlowBytes + 1, 0, milliseconds(std::int64_t{1}));  // medium
  rec.record(3, stats::kLargeFlowBytes, 0, milliseconds(std::int64_t{1}));      // medium
  rec.record(4, stats::kLargeFlowBytes + 1, 0, milliseconds(std::int64_t{1}));  // large
  const auto s = rec.summarize();
  EXPECT_EQ(s.small_count, 1u);
  EXPECT_EQ(s.large_count, 1u);
}

TEST(FctRecorder, P99TracksTail) {
  stats::FctRecorder rec;
  for (int i = 0; i < 99; ++i) rec.record(i, 1000, 0, milliseconds(std::int64_t{1}));
  rec.record(99, 1000, 0, milliseconds(std::int64_t{100}));
  const auto s = rec.summarize();
  EXPECT_GT(s.p99_small_ms, 1.0);
  EXPECT_LE(s.p99_small_ms, 100.0);
}

TEST(FctRecorder, EmptySummary) {
  stats::FctRecorder rec;
  const auto s = rec.summarize();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.avg_overall_ms, 0.0);
}

TEST(FctRecorder, FctIsFinishMinusStart) {
  stats::FlowRecord r{1, 1000, milliseconds(std::int64_t{5}), milliseconds(std::int64_t{9})};
  EXPECT_EQ(r.fct(), milliseconds(std::int64_t{4}));
}

// ----------------------------------------------------- ThroughputMeter --

TEST(ThroughputMeter, BinsBytesIntoWindows) {
  stats::ThroughputMeter m(2, milliseconds(std::int64_t{100}));
  m.record(0, 1'250'000, milliseconds(std::int64_t{50}));   // window 0: 0.1 Gbps
  m.record(1, 2'500'000, milliseconds(std::int64_t{150}));  // window 1: 0.2 Gbps
  EXPECT_NEAR(m.gbps(0, 0), 0.1, 1e-9);
  EXPECT_NEAR(m.gbps(0, 1), 0.0, 1e-9);
  EXPECT_NEAR(m.gbps(1, 1), 0.2, 1e-9);
  EXPECT_NEAR(m.aggregate_gbps(1), 0.2, 1e-9);
}

TEST(ThroughputMeter, WindowBoundaryGoesToLaterWindow) {
  stats::ThroughputMeter m(1, milliseconds(std::int64_t{100}));
  m.record(0, 1000, milliseconds(std::int64_t{100}));  // exactly at boundary
  EXPECT_EQ(m.num_windows(), 2u);
  EXPECT_GT(m.gbps(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.gbps(0, 0), 0.0);
}

TEST(ThroughputMeter, MeanOverRange) {
  stats::ThroughputMeter m(1, milliseconds(std::int64_t{100}));
  m.record(0, 1'250'000, milliseconds(std::int64_t{50}));
  m.record(0, 2'500'000, milliseconds(std::int64_t{150}));
  EXPECT_NEAR(m.mean_gbps(0, 0, 2), 0.15, 1e-9);
  EXPECT_DOUBLE_EQ(m.mean_gbps(0, 2, 2), 0.0);
}

TEST(ThroughputMeter, OutOfRangeWindowIsZero) {
  stats::ThroughputMeter m(1, milliseconds(std::int64_t{100}));
  EXPECT_DOUBLE_EQ(m.gbps(5, 0), 0.0);
}

// -------------------------------------------------- QueueLengthSampler --

TEST(QueueLengthSampler, RespectsCapacityAndSkip) {
  stats::QueueLengthSampler s(3, 2);
  for (int i = 0; i < 10; ++i) s.record(nanoseconds(i), {i}, {});
  ASSERT_EQ(s.samples().size(), 3u);
  EXPECT_EQ(s.samples()[0].queue_bytes[0], 2);  // first two skipped
  EXPECT_EQ(s.samples()[2].queue_bytes[0], 4);
  EXPECT_TRUE(s.full());
}

TEST(QueueLengthSampler, KeepsThresholds) {
  stats::QueueLengthSampler s(1, 0);
  s.record(0, {10, 20}, {100, 200});
  ASSERT_EQ(s.samples().size(), 1u);
  EXPECT_EQ(s.samples()[0].thresholds[1], 200);
}

}  // namespace
}  // namespace dynaq
