// Invariant-auditor tests: deliberately broken buffer policies that the
// auditor must flag, plus property tests that the honest policies — the
// whole scheme catalogue — run clean under audit (the tier-1 suite itself
// runs audited via harness defaults; these tests exercise the auditor's
// own detection logic).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "check/invariant_auditor.hpp"
#include "core/policies.hpp"
#include "core/scheme.hpp"
#include "harness/static_experiment.hpp"
#include "net/multi_queue_qdisc.hpp"
#include "net/schedulers.hpp"
#include "sim/simulator.hpp"
#include "topo/scheduler_factory.hpp"

namespace dynaq {
namespace {

using check::AuditedBufferPolicy;
using check::AuditOptions;
using check::ViolationKind;

// A policy that commits every sin in the contract, selectable per test:
// advertises ΣT = B conservation and threshold enforcement but leaks
// threshold on abort, names illegal eviction victims, reports a wrong sum,
// admits beyond its thresholds, and mutates state on rejected admits.
struct Sins {
  bool bad_sum = false;            // thresholds sum to B - 1000
  bool negative_threshold = false; // T_0 = -1
  bool leak_on_abort = false;      // on_admit_aborted() restores nothing
  bool admit_beyond = false;       // admits packets that exceed T_q
  bool mutate_on_reject = false;   // shifts thresholds on a rejected admit
  int evict_victim = -1;           // forced evict_candidate() answer
};

class BrokenPolicy final : public net::BufferPolicy {
 public:
  explicit BrokenPolicy(Sins sins) : sins_(sins) {}

  void attach(const net::MqState& state) override {
    const auto share = state.buffer_bytes / state.num_queues();
    thresholds_.assign(state.queues.size(), share);
    thresholds_.back() += state.buffer_bytes - share * state.num_queues();
    if (sins_.bad_sum) thresholds_.back() -= 1000;
    if (sins_.negative_threshold) {
      thresholds_.back() += thresholds_.front() + 1;
      thresholds_.front() = -1;
    }
  }

  bool admit(const net::MqState& state, int q, const net::Packet& p) override {
    const auto qi = static_cast<std::size_t>(q);
    if (state.queue(q).bytes + p.size <= thresholds_[qi]) return true;
    if (sins_.admit_beyond) return true;
    if (sins_.mutate_on_reject) {
      // Drift: takes buffer from another queue even though the packet drops.
      thresholds_[qi] += p.size;
      thresholds_[(qi + 1) % thresholds_.size()] -= p.size;
      return false;
    }
    // A "DynaQ-like" exchange that on_admit_aborted() may fail to undo.
    thresholds_[qi] += p.size;
    thresholds_[(qi + 1) % thresholds_.size()] -= p.size;
    return true;
  }

  void on_admit_aborted(const net::MqState&, int q, const net::Packet& p) override {
    if (sins_.leak_on_abort) return;  // the leak: borrowed threshold kept
    const auto qi = static_cast<std::size_t>(q);
    thresholds_[qi] -= p.size;
    thresholds_[(qi + 1) % thresholds_.size()] += p.size;
  }

  int evict_candidate(const net::MqState&, int, const net::Packet&) override {
    return sins_.evict_victim;
  }

  std::vector<std::int64_t> thresholds() const override { return thresholds_; }
  bool conserves_threshold_sum() const override { return true; }
  bool enforces_thresholds() const override { return true; }
  std::string_view name() const override { return "broken"; }

 private:
  Sins sins_;
  std::vector<std::int64_t> thresholds_;
};

net::MqState small_state(int queues = 2, std::int64_t buffer = 10'000) {
  net::MqState s;
  s.queues.resize(static_cast<std::size_t>(queues));
  s.buffer_bytes = buffer;
  return s;
}

AuditedBufferPolicy make_audited(Sins sins) {
  AuditOptions opts;
  opts.throw_on_violation = false;
  return AuditedBufferPolicy(std::make_unique<BrokenPolicy>(sins), nullptr, opts);
}

// ------------------------------------------- individual detections --

TEST(Auditor, FlagsThresholdSumMismatch) {
  auto audited = make_audited({.bad_sum = true});
  audited.attach(small_state());
  ASSERT_FALSE(audited.violations().empty());
  EXPECT_EQ(audited.violations()[0].kind, ViolationKind::kThresholdSumMismatch);
}

TEST(Auditor, FlagsNegativeThreshold) {
  auto audited = make_audited({.negative_threshold = true});
  audited.attach(small_state());
  ASSERT_FALSE(audited.violations().empty());
  EXPECT_EQ(audited.violations()[0].kind, ViolationKind::kNegativeThreshold);
  EXPECT_EQ(audited.violations()[0].queue, 0);
}

TEST(Auditor, FlagsAbortRollbackLeak) {
  auto audited = make_audited({.leak_on_abort = true});
  auto state = small_state();
  audited.attach(state);
  // Fill queue 0 beyond its threshold so admit() performs the exchange,
  // then abort: the leak leaves the exchange in place.
  state.queue(0).bytes = 5'000;
  state.port_bytes = 5'000;
  const auto p = net::make_data_packet(1, 0, 1, 0, 1460);
  ASSERT_TRUE(audited.admit(state, 0, p));
  EXPECT_TRUE(audited.violations().empty());
  audited.on_admit_aborted(state, 0, p);
  ASSERT_FALSE(audited.violations().empty());
  EXPECT_EQ(audited.violations()[0].kind, ViolationKind::kAbortRollbackLeak);
  EXPECT_EQ(audited.ledger().aborts, 1u);
}

TEST(Auditor, ExactRollbackPassesSnapshotDiff) {
  auto audited = make_audited({});
  auto state = small_state();
  audited.attach(state);
  state.queue(0).bytes = 5'000;
  state.port_bytes = 5'000;
  const auto p = net::make_data_packet(1, 0, 1, 0, 1460);
  ASSERT_TRUE(audited.admit(state, 0, p));
  audited.on_admit_aborted(state, 0, p);
  EXPECT_TRUE(audited.violations().empty());
}

TEST(Auditor, FlagsAdmitBeyondThreshold) {
  auto audited = make_audited({.admit_beyond = true});
  auto state = small_state();
  audited.attach(state);
  state.queue(0).bytes = 4'990;  // T_0 = 5000; a 1500 B packet cannot fit
  state.port_bytes = 4'990;
  ASSERT_TRUE(audited.admit(state, 0, net::make_data_packet(1, 0, 1, 0, 1460)));
  ASSERT_FALSE(audited.violations().empty());
  EXPECT_EQ(audited.violations()[0].kind, ViolationKind::kAdmitBeyondThreshold);
}

TEST(Auditor, FlagsRejectThatMutatesState) {
  auto audited = make_audited({.mutate_on_reject = true});
  auto state = small_state();
  audited.attach(state);
  state.queue(0).bytes = 4'990;
  state.port_bytes = 4'990;
  EXPECT_FALSE(audited.admit(state, 0, net::make_data_packet(1, 0, 1, 0, 1460)));
  ASSERT_FALSE(audited.violations().empty());
  EXPECT_EQ(audited.violations()[0].kind, ViolationKind::kRejectMutatedState);
}

TEST(Auditor, FlagsIllegalEvictionVictims) {
  auto state = small_state(/*queues=*/3);
  const auto p = net::make_data_packet(1, 0, 1, 0, 1460);
  state.queue(1).packets.push_back(p);  // only queue 1 is non-empty
  state.queue(1).bytes = p.size;
  state.port_bytes = p.size;

  auto self = make_audited({.evict_victim = 0});
  self.attach(state);
  self.evict_candidate(state, 0, p);
  ASSERT_FALSE(self.violations().empty());
  EXPECT_EQ(self.violations()[0].kind, ViolationKind::kBadEvictionVictim);

  auto empty = make_audited({.evict_victim = 2});
  empty.attach(state);
  empty.evict_candidate(state, 0, p);
  ASSERT_FALSE(empty.violations().empty());
  EXPECT_EQ(empty.violations()[0].kind, ViolationKind::kBadEvictionVictim);

  auto range = make_audited({.evict_victim = 17});
  range.attach(state);
  range.evict_candidate(state, 0, p);
  ASSERT_FALSE(range.violations().empty());
  EXPECT_EQ(range.violations()[0].kind, ViolationKind::kBadEvictionVictim);

  auto legal = make_audited({.evict_victim = 1});
  legal.attach(state);
  legal.evict_candidate(state, 0, p);
  EXPECT_TRUE(legal.violations().empty());

  auto decline = make_audited({.evict_victim = -1});
  decline.attach(state);
  decline.evict_candidate(state, 0, p);
  EXPECT_TRUE(decline.violations().empty());
}

TEST(Auditor, FlagsConservationMismatch) {
  auto audited = make_audited({});
  auto state = small_state();
  audited.attach(state);
  // Port counter says 3000 resident bytes but the queues hold 1500: the
  // independent ledger and the Σq_i cross-check both fire.
  const auto p = net::make_data_packet(1, 0, 1, 0, 1460);
  state.queue(0).packets.push_back(p);
  state.queue(0).bytes = p.size;
  state.port_bytes = 2 * p.size;
  audited.on_enqueue(state, 0, p);
  ASSERT_FALSE(audited.violations().empty());
  EXPECT_EQ(audited.violations()[0].kind, ViolationKind::kConservationMismatch);
}

TEST(Auditor, DeepCheckCatchesQueueByteDrift) {
  AuditOptions opts;
  opts.throw_on_violation = false;
  opts.deep_check_every = 1;  // sweep on every operation
  AuditedBufferPolicy audited(std::make_unique<BrokenPolicy>(Sins{}), nullptr, opts);
  auto state = small_state();
  audited.attach(state);
  auto p = net::make_data_packet(1, 0, 1, 0, 1460);
  state.queue(0).packets.push_back(p);
  state.queue(0).bytes = p.size + 7;  // counter drifted from the deque contents
  state.port_bytes = p.size + 7;
  audited.on_enqueue(state, 0, p);
  bool found = false;
  for (const auto& v : audited.violations()) {
    found = found || v.kind == ViolationKind::kQueueAccountingDrift;
  }
  EXPECT_TRUE(found);
}

TEST(Auditor, ThrowModeRaisesAuditError) {
  AuditedBufferPolicy audited(std::make_unique<BrokenPolicy>(Sins{.bad_sum = true}));
  EXPECT_THROW(audited.attach(small_state()), check::AuditError);
}

TEST(Auditor, DiagnosticsCarrySchemeAndState) {
  auto audited = make_audited({.bad_sum = true});
  audited.attach(small_state());
  ASSERT_FALSE(audited.violations().empty());
  const check::Violation& v = audited.violations()[0];
  EXPECT_EQ(v.scheme, "broken");
  EXPECT_EQ(v.where, "attach");
  EXPECT_EQ(v.buffer_bytes, 10'000);
  EXPECT_EQ(v.thresholds.size(), 2u);
  const std::string text = check::to_string(v);
  EXPECT_NE(text.find("threshold-sum-mismatch"), std::string::npos);
  EXPECT_NE(text.find("broken"), std::string::npos);
}

// ------------------------- the acceptance fixture: qdisc end-to-end --

// Driving a fully broken policy through a real MultiQueueQdisc must trip
// at least three distinct diagnostics (ISSUE acceptance criterion).
TEST(Auditor, BrokenPolicyTripsThreeDistinctDiagnosticsThroughQdisc) {
  sim::Simulator sim;
  AuditOptions opts;
  opts.throw_on_violation = false;
  auto audited = std::make_unique<AuditedBufferPolicy>(
      std::make_unique<BrokenPolicy>(Sins{.bad_sum = true,
                                          .leak_on_abort = true,
                                          .admit_beyond = true,
                                          .evict_victim = 0}),
      &sim, opts);
  AuditedBufferPolicy* auditor = audited.get();
  net::MultiQueueQdisc qdisc(sim, {1, 1}, /*buffer_bytes=*/6'000, std::move(audited),
                             std::make_unique<net::DrrScheduler>(1500));
  // Overfill queue 0: the bad sum fires at attach, admit-beyond-threshold
  // once q_0 exceeds its 3 KB share, eviction self-victim when the port is
  // physically full, and the rollback leak on the final abort.
  for (int i = 0; i < 8; ++i) {
    net::Packet p = net::make_data_packet(1, 0, 1, static_cast<std::uint64_t>(i) * 1460, 1460);
    qdisc.enqueue(std::move(p));
  }
  std::set<ViolationKind> kinds;
  for (const auto& v : auditor->violations()) kinds.insert(v.kind);
  EXPECT_GE(kinds.size(), 3u) << "expected >= 3 distinct diagnostics, got "
                              << auditor->violations().size() << " violations";
  EXPECT_TRUE(kinds.count(ViolationKind::kThresholdSumMismatch));
  EXPECT_TRUE(kinds.count(ViolationKind::kAdmitBeyondThreshold));
  EXPECT_TRUE(kinds.count(ViolationKind::kBadEvictionVictim));
}

// ----------------------------------------- honest policies run clean --

// Every scheme in the catalogue, driven end-to-end through the star
// harness with the auditor in fail-fast mode (the harness default):
// a violation would abort the run with check::AuditError.
TEST(AuditorProperty, AllSchemesRunCleanUnderAudit) {
  for (core::SchemeKind kind :
       {core::SchemeKind::kDynaQ, core::SchemeKind::kDynaQEvict, core::SchemeKind::kBestEffort,
        core::SchemeKind::kPql, core::SchemeKind::kDynamicThreshold, core::SchemeKind::kDynaQEcn,
        core::SchemeKind::kTcn, core::SchemeKind::kPmsb, core::SchemeKind::kPerQueueEcn,
        core::SchemeKind::kMqEcn}) {
    harness::StaticExperimentConfig cfg;
    cfg.star.num_hosts = 3;
    cfg.star.queue_weights = {1, 2};
    cfg.star.buffer_bytes = 40'000;  // small buffer: exercise drops/exchanges
    cfg.star.scheme.kind = kind;
    cfg.star.scheme.ecn.port_threshold_bytes = 15'000;
    cfg.star.scheme.ecn.capacity_bps = 1e9;
    cfg.star.scheme.ecn.rtt = microseconds(std::int64_t{500});
    cfg.groups = {{.queue = 0, .num_flows = 2, .first_src_host = 1, .num_src_hosts = 2,
                   .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno},
                  {.queue = 1, .num_flows = 2, .first_src_host = 1, .num_src_hosts = 2,
                   .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno}};
    cfg.duration = milliseconds(std::int64_t{300});
    ASSERT_TRUE(cfg.audit_invariants) << "audit must be on by default";
    const auto r = harness::run_static_experiment(cfg);
    EXPECT_GT(r.bottleneck_stats.enqueued, 0u) << scheme_name(kind);
  }
}

// TNA-staleness ablation runs Algorithm 1 on stale queue depths; the
// enforcement recheck is declared unsound there and must stay disabled
// while ΣT = B auditing still applies.
TEST(AuditorProperty, StaleQueueInfoModeRunsCleanUnderAudit) {
  harness::StaticExperimentConfig cfg;
  cfg.star.num_hosts = 3;
  cfg.star.buffer_bytes = 40'000;
  cfg.star.queue_weights = {1, 1};
  cfg.star.scheme.kind = core::SchemeKind::kDynaQ;
  cfg.star.scheme.dynaq.stale_queue_info = true;
  cfg.groups = {{.queue = 0, .num_flows = 2, .first_src_host = 1, .num_src_hosts = 2,
                 .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno},
                {.queue = 1, .num_flows = 2, .first_src_host = 1, .num_src_hosts = 2,
                 .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno}};
  cfg.duration = milliseconds(std::int64_t{300});
  const auto r = harness::run_static_experiment(cfg);
  EXPECT_GT(r.bottleneck_stats.enqueued, 0u);
}

// Runtime buffer resizes (§III-B3) must re-derive thresholds so ΣT tracks
// the new B — audited in fail-fast mode end-to-end.
TEST(AuditorProperty, ResizeKeepsContractUnderAudit) {
  sim::Simulator sim;
  core::SchemeSpec spec;
  spec.kind = core::SchemeKind::kDynaQ;
  spec.audit = true;
  auto qdisc = core::make_mq_qdisc(sim, {1, 1, 1}, 30'000, spec,
                                   topo::make_scheduler(topo::SchedulerKind::kDrr));
  for (int i = 0; i < 12; ++i) {
    qdisc->enqueue(net::make_data_packet(1, 0, 1, static_cast<std::uint64_t>(i) * 1460, 1460));
  }
  qdisc->resize_buffer(12'000);   // shrink below the current backlog
  qdisc->resize_buffer(120'000);  // grow
  for (int i = 0; i < 12; ++i) {
    qdisc->enqueue(net::make_data_packet(1, 0, 1, static_cast<std::uint64_t>(i) * 1460, 1460));
    qdisc->dequeue();
  }
  while (qdisc->dequeue().has_value()) {
  }
  auto& auditor = dynamic_cast<AuditedBufferPolicy&>(qdisc->policy());
  EXPECT_TRUE(auditor.violations().empty());
  EXPECT_EQ(auditor.ledger().resident_bytes(), 0);
}

// The eviction scheme exercises the evict_candidate() path for real:
// overfill a DynaQ+Evict port and let the auditor watch every eviction.
TEST(AuditorProperty, EvictionSchemeRunsCleanUnderAudit) {
  sim::Simulator sim;
  core::SchemeSpec spec;
  spec.kind = core::SchemeKind::kDynaQEvict;
  spec.audit = true;
  auto qdisc = core::make_mq_qdisc(sim, {1, 1}, 8'000, spec,
                                   topo::make_scheduler(topo::SchedulerKind::kDrr));
  for (int q = 0; q < 2; ++q) {
    for (int i = 0; i < 10; ++i) {
      net::Packet p =
          net::make_data_packet(1, 0, 1, static_cast<std::uint64_t>(i) * 1460, 1460);
      p.queue = static_cast<std::uint8_t>(q);
      qdisc->enqueue(std::move(p));
    }
  }
  const auto& stats = qdisc->stats();
  EXPECT_GT(stats.enqueued, 0u);
  auto& auditor = dynamic_cast<AuditedBufferPolicy&>(qdisc->policy());
  EXPECT_TRUE(auditor.violations().empty());
}

// -------------------------------------------------- transparency --

TEST(Auditor, DecoratorIsTransparent) {
  AuditedBufferPolicy audited(std::make_unique<core::DynaQPolicy>());
  EXPECT_EQ(audited.name(), "dynaq");
  EXPECT_TRUE(audited.conserves_threshold_sum());
  EXPECT_TRUE(audited.enforces_thresholds());
  auto state = small_state();
  audited.attach(state);
  EXPECT_EQ(audited.thresholds(), audited.inner().thresholds());
}

TEST(Auditor, LedgerBalancesThroughQdisc) {
  sim::Simulator sim;
  core::SchemeSpec spec;
  spec.kind = core::SchemeKind::kDynaQ;
  spec.audit = true;
  auto qdisc = core::make_mq_qdisc(sim, {1, 1}, 30'000, spec,
                                   topo::make_scheduler(topo::SchedulerKind::kDrr));
  for (int i = 0; i < 6; ++i) {
    qdisc->enqueue(net::make_data_packet(1, 0, 1, static_cast<std::uint64_t>(i) * 1460, 1460));
  }
  qdisc->dequeue();
  qdisc->dequeue();
  const auto& auditor = dynamic_cast<const AuditedBufferPolicy&>(qdisc->policy());
  EXPECT_EQ(auditor.ledger().enqueued_packets, 6u);
  EXPECT_EQ(auditor.ledger().dequeued_packets, 2u);
  EXPECT_EQ(auditor.ledger().resident_bytes(), qdisc->backlog_bytes());
  EXPECT_GT(auditor.checks_run(), 0u);
}

}  // namespace
}  // namespace dynaq
