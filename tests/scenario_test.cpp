// Scenario-orchestration tests (DESIGN.md §11): catalogue construction,
// director validation, the ΣT = B audit through mid-run weight rebalances,
// link_down timer cancellation, injected-loss tagging, pause/resume service
// churn and the determinism of scenario-bearing runs.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>

#include "harness/dynamic_experiment.hpp"
#include "harness/static_experiment.hpp"
#include "core/policies.hpp"
#include "net/fault_injection.hpp"
#include "net/multi_queue_qdisc.hpp"
#include "net/packet.hpp"
#include "net/port.hpp"
#include "net/queue_disc.hpp"
#include "net/schedulers.hpp"
#include "scenario/director.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"
#include "telemetry/events.hpp"
#include "workload/flow_size_distribution.hpp"

namespace dynaq {
namespace {

constexpr int kNumQueues = 4;

// Testbed-style star with one long-lived flow per queue; short enough that
// the whole file stays in tier-1 time budget, long enough for steady state
// between catalogue actions (which land on eighths of the duration).
harness::StaticExperimentConfig star_config(
    core::SchemeKind kind = core::SchemeKind::kDynaQ) {
  harness::StaticExperimentConfig cfg;
  cfg.star.num_hosts = 5;
  cfg.star.scheme.kind = kind;
  for (int q = 0; q < kNumQueues; ++q) {
    cfg.groups.push_back({.queue = q,
                          .num_flows = 1,
                          .first_src_host = 1 + q,
                          .num_src_hosts = 1,
                          .start = 0,
                          .stop = 0,
                          .cc = transport::CcKind::kNewReno});
  }
  cfg.duration = seconds(std::int64_t{2});
  cfg.meter_window = milliseconds(std::int64_t{100});
  return cfg;
}

scenario::ScenarioParams params_for(const harness::StaticExperimentConfig& cfg) {
  scenario::ScenarioParams sp;
  sp.duration = cfg.duration;
  sp.num_queues = kNumQueues;
  sp.qdisc = "sw.p0";
  sp.link = "sw.p0";
  sp.buffer_bytes = cfg.star.buffer_bytes;
  return sp;
}

// Mean aggregate (or one queue's) gbps over the window range [lo, hi) given
// as fractions of the run.
double slice_mean(const stats::ThroughputMeter& meter, double lo, double hi, int queue = -1) {
  const auto n = meter.num_windows();
  const auto a = static_cast<std::size_t>(lo * static_cast<double>(n));
  const auto b = static_cast<std::size_t>(hi * static_cast<double>(n));
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t w = a; w < b && w < n; ++w) {
    sum += queue < 0 ? meter.aggregate_gbps(w) : meter.gbps(w, queue);
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

// ---------------------------------------------------------- catalogue --

TEST(Catalogue, UnknownNameThrowsListingKnown) {
  const auto sp = params_for(star_config());
  try {
    scenario::make_scenario("no_such_timeline", sp);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no_such_timeline"), std::string::npos) << msg;
    EXPECT_NE(msg.find("weight_churn"), std::string::npos)
        << "message should list the known names: " << msg;
  }
}

TEST(Catalogue, EveryNamedScenarioBuilds) {
  auto sp = params_for(star_config());
  sp.loss = "h1.nic";
  for (const std::string& name : scenario::scenario_names()) {
    const scenario::Scenario s = scenario::make_scenario(name, sp);
    EXPECT_EQ(s.name, name);
    EXPECT_EQ(s.empty(), name == "none") << name;
  }
}

TEST(Catalogue, RejectsDegenerateParams) {
  auto sp = params_for(star_config());
  sp.duration = 0;
  EXPECT_THROW(scenario::make_scenario("weight_churn", sp), std::invalid_argument);
}

// ----------------------------------------------------------- director --

TEST(Director, ArmRejectsUnknownHandle) {
  sim::Simulator sim;
  scenario::ScenarioDirector director(sim);
  scenario::Scenario s{"t", {}};
  scenario::Action a;
  a.at = 0;
  a.kind = scenario::ActionKind::kWeightUpdate;
  a.target = "sw.p0";
  a.weights = {1, 1, 1, 1};
  s.actions.push_back(a);
  try {
    director.arm(s);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("none registered"), std::string::npos) << e.what();
  }
  EXPECT_EQ(sim.events_processed(), 0u) << "nothing may be scheduled on reject";
}

// Validate-all-then-schedule: a timeline whose LAST action is invalid must
// be rejected as a whole — the valid leading action may not fire later, and
// the error names the unresolvable handle.
TEST(Director, ArmRejectsWholeTimelineOnLateInvalidAction) {
  sim::Simulator sim;
  net::MultiQueueQdisc qd(sim, {1, 1}, 100'000, std::make_unique<core::BestEffortPolicy>(),
                          std::make_unique<net::SpqScheduler>());
  scenario::ScenarioDirector director(sim);
  director.register_qdisc("sw.p0", qd);

  scenario::Scenario s{"t", {}};
  scenario::Action ok;
  ok.at = 0;
  ok.kind = scenario::ActionKind::kWeightUpdate;
  ok.target = "sw.p0";
  ok.weights = {2, 1};
  s.actions.push_back(ok);
  scenario::Action bad;
  bad.at = milliseconds(std::int64_t{1});
  bad.kind = scenario::ActionKind::kControllerCrash;
  bad.target = "sw.p9.ctrl";  // never registered
  bad.duration = milliseconds(std::int64_t{5});
  s.actions.push_back(bad);

  try {
    director.arm(s);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("sw.p9.ctrl"), std::string::npos) << e.what();
  }
  // Nothing from the timeline was scheduled: running the sim to completion
  // applies zero actions and the valid weight update never lands.
  sim.run();
  EXPECT_EQ(director.actions_applied(), 0u);
  EXPECT_EQ(director.actions_armed(), 0u);
  EXPECT_EQ(qd.state().queue(0).weight, 1.0);
}

TEST(Director, ArmTwiceThrows) {
  sim::Simulator sim;
  scenario::ScenarioDirector director(sim);
  const scenario::Scenario s{"empty", {}};
  director.arm(s);
  EXPECT_THROW(director.arm(s), std::logic_error);
}

TEST(Director, DynamicRunRejectsServiceChurn) {
  // Dynamic experiments register topology handles only — no per-queue
  // sender lists — so a join/leave timeline must fail at arm() time.
  harness::DynamicStarConfig cfg;
  cfg.dist = &workload::web_search_workload();
  cfg.num_flows = 20;
  const auto scn =
      scenario::make_scenario("service_churn", params_for(star_config()));
  cfg.scenario = &scn;
  EXPECT_THROW(harness::run_dynamic_star_experiment(cfg), std::invalid_argument);
}

// ------------------------------------------------------- weight churn --

TEST(WeightChurn, SigmaTAuditedThroughEveryRebalance) {
  // audit_invariants defaults on: every set_weights lands on the auditor's
  // "on_weights_changed" checkpoint, which throws AuditError the moment
  // ΣT ≠ B. A clean run therefore certifies the invariant at all six
  // rebalances (5 promotions + restore).
  auto cfg = star_config(core::SchemeKind::kDynaQ);
  const auto scn = scenario::make_scenario("weight_churn", params_for(cfg));
  cfg.scenario = &scn;
  const auto r = harness::run_static_experiment(cfg);
  EXPECT_EQ(r.scenario_actions, 6u);
  EXPECT_GT(slice_mean(r.meter, 0.875, 1.0), 0.5) << "line rate after restore";
}

TEST(WeightChurn, PromotedQueueGainsBandwidth) {
  // Step 1 promotes queue 0 to weight 4 during [1/8, 2/8): DRR should give
  // it ~4/7 of the link vs ~1/7 each for the others.
  auto cfg = star_config(core::SchemeKind::kDynaQ);
  const auto scn = scenario::make_scenario("weight_churn", params_for(cfg));
  cfg.scenario = &scn;
  const auto r = harness::run_static_experiment(cfg);
  const double promoted = slice_mean(r.meter, 0.14, 0.25, 0);
  const double peer = slice_mean(r.meter, 0.14, 0.25, 3);
  EXPECT_GT(promoted, 2.0 * peer) << "promoted=" << promoted << " peer=" << peer;
}

// ---------------------------------------------------------- link flap --

TEST(LinkFlap, DownCancelsInFlightTimerNoDeadClosures) {
  sim::Simulator sim;
  net::Port a(sim, /*rate_bps=*/1e6, microseconds(std::int64_t{10}),
              std::make_unique<net::DropTailQueue>());
  net::Port b(sim, 1e6, microseconds(std::int64_t{10}),
              std::make_unique<net::DropTailQueue>());
  a.set_peer(&b);
  b.set_peer(&a);
  int delivered = 0;
  b.set_receiver([&delivered](net::Packet&&) { ++delivered; });

  scenario::ScenarioDirector director(sim);
  director.register_link("l", a);
  scenario::Scenario s{"flap", {}};
  scenario::Action down;
  down.at = microseconds(std::int64_t{1});  // mid-serialization of packet 1
  down.kind = scenario::ActionKind::kLinkDown;
  down.target = "l";
  s.actions.push_back(down);
  scenario::Action up;
  up.at = milliseconds(std::int64_t{1});
  up.kind = scenario::ActionKind::kLinkUp;
  up.target = "l";
  s.actions.push_back(up);
  director.arm(s);

  // Two packets: ~12 ms serialization each at 1 Mbps, so the cut at 1 us
  // catches packet 1 on the wire-side timer.
  a.send(net::make_data_packet(1, 0, 1, 0, 1460));
  a.send(net::make_data_packet(1, 0, 1, 1460, 1460));
  sim.run_until(seconds(std::int64_t{1}));

  EXPECT_EQ(sim.events_cancelled(), 1u) << "the superseded serialize timer";
  EXPECT_EQ(a.packets_lost_link_down(), 1u);
  EXPECT_EQ(delivered, 1) << "the queued packet transmits after link_up";
  EXPECT_EQ(sim.event_heap_fallbacks(), 0u) << "scenario closures stay inline";
  EXPECT_EQ(director.actions_applied(), 2u);
}

TEST(LinkFlap, ThroughputCollapsesAndRecovers) {
  auto cfg = star_config(core::SchemeKind::kDynaQ);
  const auto scn = scenario::make_scenario("link_flap", params_for(cfg));
  cfg.scenario = &scn;
  const auto r = harness::run_static_experiment(cfg);
  EXPECT_EQ(r.scenario_actions, 4u);
  const double pre = slice_mean(r.meter, 0.125, 0.25);
  const double outage = slice_mean(r.meter, 0.27, 0.36);
  const double recovered = slice_mean(r.meter, 0.8, 1.0);
  EXPECT_LT(outage, 0.25 * pre) << "pre=" << pre << " outage=" << outage;
  EXPECT_GT(recovered, 0.5 * pre) << "pre=" << pre << " recovered=" << recovered;
  EXPECT_GT(r.sender_totals.timeouts, 0u) << "an eighth-of-a-run outage must RTO";
}

// ------------------------------------------------------ injected loss --

TEST(LossWindow, InjectedDropsAreTaggedAndLedgerHolds) {
  auto cfg = star_config(core::SchemeKind::kDynaQ);
  cfg.star.lossy_nics = true;  // rate-0 Bernoulli NICs until the window opens
  auto sp = params_for(cfg);
  sp.loss = "h1.nic";
  sp.loss_burst_rate = 0.05;
  const auto scn = scenario::make_scenario("loss_burst", sp);
  cfg.scenario = &scn;
  // audit_invariants on: injected drops happen before the switch buffer, so
  // the port conservation ledger must not notice them — AuditError otherwise.
  const auto r = harness::run_static_experiment(cfg);
  EXPECT_EQ(r.scenario_actions, 2u) << "window open + close";
  const auto injected =
      r.telemetry.drops_by_reason[static_cast<std::size_t>(telemetry::DropReason::kInjected)];
  EXPECT_GT(injected, 0u) << "5% loss for a half-second window must hit";
  EXPECT_GT(r.sender_totals.retransmissions, 0u) << "losses must be repaired";
  EXPECT_GT(slice_mean(r.meter, 0.8, 1.0), 0.5) << "full rate after the window closes";
}

// ------------------------------------------------------ service churn --

TEST(ServiceChurn, PausedQueueGoesIdleThenRecovers) {
  auto cfg = star_config(core::SchemeKind::kDynaQ);
  const auto scn = scenario::make_scenario("service_churn", params_for(cfg));
  cfg.scenario = &scn;
  const auto r = harness::run_static_experiment(cfg);
  EXPECT_EQ(r.scenario_actions, 2u);
  // Queue 3 leaves at 2/8 and rejoins at 5/8.
  EXPECT_LT(slice_mean(r.meter, 0.35, 0.6, 3), 0.02);
  EXPECT_GT(slice_mean(r.meter, 0.8, 1.0, 3), 0.05);
  // The survivors absorb the freed bandwidth while queue 3 is away.
  EXPECT_GT(slice_mean(r.meter, 0.35, 0.6, 0), slice_mean(r.meter, 0.125, 0.25, 0) * 1.1);
}

// -------------------------------------------------------- determinism --

TEST(ScenarioDeterminism, HashStableAcrossRunsAndSensitiveToTimeline) {
  auto cfg = star_config(core::SchemeKind::kDynaQ);
  cfg.duration = seconds(std::int64_t{1});
  const auto scn = scenario::make_scenario("weight_churn", params_for(cfg));
  cfg.scenario = &scn;
  const auto r1 = harness::run_static_experiment(cfg);
  const auto r2 = harness::run_static_experiment(cfg);
  EXPECT_EQ(r1.trajectory_hash, r2.trajectory_hash) << "same seed, same timeline";

  cfg.seed = 2;
  const auto r3 = harness::run_static_experiment(cfg);
  EXPECT_NE(r1.trajectory_hash, r3.trajectory_hash) << "seeds must diverge";

  cfg.seed = 1;
  cfg.scenario = nullptr;
  const auto r4 = harness::run_static_experiment(cfg);
  EXPECT_NE(r1.trajectory_hash, r4.trajectory_hash)
      << "the applied timeline must be part of the trajectory";
}

// ------------------------------------------------- incast + resize --

TEST(IncastBurst, SpawnsFlowsMidRun) {
  auto cfg = star_config(core::SchemeKind::kDynaQ);
  cfg.duration = seconds(std::int64_t{1});
  auto sp = params_for(cfg);
  sp.incast_fanin = 8;
  const auto scn = scenario::make_scenario("incast", sp);
  cfg.scenario = &scn;
  const auto with_incast = harness::run_static_experiment(cfg);
  EXPECT_EQ(with_incast.scenario_actions, 1u);

  cfg.scenario = nullptr;
  const auto baseline = harness::run_static_experiment(cfg);
  EXPECT_GT(with_incast.sender_totals.bytes_sent, baseline.sender_totals.bytes_sent)
      << "8 extra 20 KB flows must add traffic";
}

TEST(BufferSqueeze, MidRunResizeStaysAudited) {
  auto cfg = star_config(core::SchemeKind::kDynaQ);
  cfg.duration = seconds(std::int64_t{1});
  const auto scn = scenario::make_scenario("buffer_squeeze", params_for(cfg));
  cfg.scenario = &scn;
  const auto r = harness::run_static_experiment(cfg);
  EXPECT_EQ(r.scenario_actions, 2u) << "shrink + restore";
  EXPECT_GT(slice_mean(r.meter, 0.8, 1.0), 0.5) << "restored buffer serves line rate";
}

}  // namespace
}  // namespace dynaq
