// Small-surface edge cases across modules, rounding out coverage of
// accessors and boundary conditions.
#include <gtest/gtest.h>

#include <memory>

#include "core/dynaq_controller.hpp"
#include "core/ecn_markers.hpp"
#include "harness/cli.hpp"
#include "net/fault_injection.hpp"
#include "net/port.hpp"
#include "sim/simulator.hpp"
#include "transport/flow.hpp"

namespace dynaq {
namespace {

TEST(EdgeCases, SingleQueueControllerHasNoVictim) {
  core::DynaQConfig cfg;
  cfg.buffer_bytes = 10'000;
  cfg.weights = {1};
  core::DynaQController ctl(cfg);
  EXPECT_EQ(ctl.find_victim_tournament(0), -1);
  EXPECT_EQ(ctl.find_victim_linear(0), -1);
  const std::vector<std::int64_t> q{10'000};
  EXPECT_EQ(ctl.on_arrival(q, 0, 1'000), core::Verdict::kDrop);
}

TEST(EdgeCases, TinyPacketsRespectThresholdGranularity) {
  core::DynaQConfig cfg;
  cfg.buffer_bytes = 1'000;
  cfg.weights = {1, 1};
  core::DynaQController ctl(cfg);  // T = {500, 500}
  std::vector<std::int64_t> q{500, 0};
  // 64-byte packets exchange in 64-byte steps.
  EXPECT_EQ(ctl.on_arrival(q, 0, 64), core::Verdict::kAdjusted);
  EXPECT_EQ(ctl.threshold(0), 564);
  EXPECT_EQ(ctl.threshold(1), 436);
  EXPECT_EQ(ctl.threshold_sum(), 1'000);
}

TEST(EdgeCases, CliNegativeNumbersParse) {
  std::vector<std::string> storage{"prog", "--offset", "-5"};
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  const harness::Cli cli(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(cli.integer("offset", 0), -5);
}

TEST(EdgeCases, PortBusyFlagTracksTransmission) {
  sim::Simulator sim;
  auto a = std::make_unique<net::Port>(sim, 1e9, 0, std::make_unique<net::DropTailQueue>());
  auto b = std::make_unique<net::Port>(sim, 1e9, 0, std::make_unique<net::DropTailQueue>());
  net::connect(*a, *b);
  EXPECT_FALSE(a->busy());
  a->send(net::make_data_packet(1, 0, 1, 0, 1460));
  EXPECT_TRUE(a->busy());
  sim.run();
  EXPECT_FALSE(a->busy());
}

TEST(EdgeCases, BernoulliLossRateIsRespected) {
  net::BernoulliLossQueue q(0.3, /*seed=*/5);
  int admitted = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (q.enqueue(net::make_data_packet(1, 0, 1, 0, 100))) {
      ++admitted;
      q.dequeue();
    }
  }
  EXPECT_NEAR(static_cast<double>(q.injected_losses()) / n, 0.3, 0.02);
  EXPECT_EQ(admitted + static_cast<int>(q.injected_losses()), n);
}

TEST(EdgeCases, BernoulliNeverDropsAcks) {
  net::BernoulliLossQueue q(1.0, 7);
  EXPECT_TRUE(q.enqueue(net::make_ack_packet(1, 0, 1, 100)));
  EXPECT_FALSE(q.enqueue(net::make_data_packet(1, 0, 1, 0, 100)));
}

TEST(EdgeCases, MqEcnRoundEstimateExposed) {
  core::EcnConfig ec;
  ec.capacity_bps = 1e9;
  ec.rtt = microseconds(std::int64_t{500});
  ec.quantum_base = 1500;
  core::MqEcnMarker marker(ec);
  net::MqState s;
  s.buffer_bytes = 85'000;
  s.queues.resize(2);
  s.queues[0].weight = s.queues[1].weight = 1.0;
  s.queues[0].bytes = 1'500;
  net::Packet p = net::make_data_packet(1, 0, 1, 0, 1460);
  marker.mark_on_enqueue(s, 0, p);
  // One active queue: round = 1500 B at 1 Gbps = 12 us.
  EXPECT_NEAR(to_seconds(marker.smoothed_round()), 12e-6, 1e-7);
}

TEST(EdgeCases, QueueForSegmentWithHighQueueEqualToService) {
  transport::FlowParams p;
  p.pias = true;
  p.service_queue = 0;
  p.pias_high_queue = 0;
  EXPECT_EQ(transport::queue_for_segment(p, 0), 0);
  EXPECT_EQ(transport::queue_for_segment(p, 1'000'000), 0);
}

TEST(EdgeCases, ControllerRejectsOutOfRangeResize) {
  core::DynaQConfig cfg;
  cfg.buffer_bytes = 10'000;
  cfg.weights = {1, 1};
  core::DynaQController ctl(cfg);
  EXPECT_THROW(ctl.reinitialize(0), std::invalid_argument);
  EXPECT_THROW(ctl.reinitialize(-5), std::invalid_argument);
  ctl.reinitialize(1);  // degenerate but legal: 1-byte buffer
  EXPECT_EQ(ctl.threshold_sum(), 1);
}

}  // namespace
}  // namespace dynaq
