// End-to-end ECN marker behaviour through the multi-queue qdisc, plus
// EventQueue internals and miscellaneous edge coverage.
#include <gtest/gtest.h>

#include <memory>

#include "core/ecn_markers.hpp"
#include "core/policies.hpp"
#include "core/scheme.hpp"
#include "net/multi_queue_qdisc.hpp"
#include "net/schedulers.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace dynaq {
namespace {

net::Packet ect_pkt(int queue, std::int32_t payload = 1460) {
  net::Packet p = net::make_data_packet(1, 0, 1, 0, payload);
  p.queue = static_cast<std::uint8_t>(queue);
  p.set(net::kFlagEct);
  return p;
}

core::EcnConfig testbed_ecn() {
  core::EcnConfig ec;
  ec.port_threshold_bytes = 30'000;
  ec.sojourn_threshold = microseconds(std::int64_t{240});
  ec.capacity_bps = 1e9;
  ec.rtt = microseconds(std::int64_t{500});
  return ec;
}

// ------------------------------------------------------ EventQueue --

TEST(EventQueue, PopsInTimeThenInsertionOrder) {
  sim::EventQueue q;
  std::vector<int> order;
  q.push(nanoseconds(5), [&] { order.push_back(2); });
  q.push(nanoseconds(1), [&] { order.push_back(1); });
  q.push(nanoseconds(5), [&] { order.push_back(3); });
  Time now = 0;
  while (!q.empty()) q.pop(now)();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(now, nanoseconds(5));
}

TEST(EventQueue, SizeAndNextTime) {
  sim::EventQueue q;
  EXPECT_TRUE(q.empty());
  q.push(nanoseconds(7), [] {});
  q.push(nanoseconds(3), [] {});
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.next_time(), nanoseconds(3));
}

// -------------------------------------------------- markers via qdisc --

TEST(MarkerE2E, EnqueueMarkerSetsCeOnlyOnEct) {
  sim::Simulator sim;
  net::MultiQueueQdisc qd(sim, {1, 1}, 85'000, std::make_unique<core::BestEffortPolicy>(),
                          std::make_unique<net::DrrScheduler>(1500),
                          std::make_unique<core::PerQueueEcnMarker>(testbed_ecn()));
  // Fill queue 0 beyond its K_0 = 15 KB share.
  for (int i = 0; i < 12; ++i) ASSERT_TRUE(qd.enqueue(ect_pkt(0)));
  EXPECT_GT(qd.stats().marked, 0u);

  // Non-ECT packets must never be marked.
  net::Packet plain = net::make_data_packet(2, 0, 1, 0, 1460);
  plain.queue = 0;
  const auto marked_before = qd.stats().marked;
  ASSERT_TRUE(qd.enqueue(std::move(plain)));
  EXPECT_EQ(qd.stats().marked, marked_before);
  bool found_unmarked_tail = false;
  for (const auto& p : qd.state().queue(0).packets) {
    if (!p.has(net::kFlagEct)) {
      EXPECT_FALSE(p.has(net::kFlagCe));
      found_unmarked_tail = true;
    }
  }
  EXPECT_TRUE(found_unmarked_tail);
}

TEST(MarkerE2E, TcnMarksAtDequeueBasedOnSojourn) {
  sim::Simulator sim;
  net::MultiQueueQdisc qd(sim, {1}, 85'000, std::make_unique<core::BestEffortPolicy>(),
                          std::make_unique<net::SpqScheduler>(),
                          std::make_unique<core::TcnEcnMarker>(testbed_ecn()));
  qd.enqueue(ect_pkt(0));
  qd.enqueue(ect_pkt(0));
  // Dequeue the first immediately: sojourn ~0 -> unmarked.
  auto first = qd.dequeue();
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(first->has(net::kFlagCe));
  // Let the second linger past the 240 us threshold.
  sim.schedule_in(microseconds(std::int64_t{300}), [&] {
    auto second = qd.dequeue();
    ASSERT_TRUE(second.has_value());
    EXPECT_TRUE(second->has(net::kFlagCe));
  });
  sim.run();
  EXPECT_EQ(qd.stats().marked, 1u);
}

TEST(MarkerE2E, DynaQEcnSchemeFreezesThresholdsAndMarks) {
  sim::Simulator sim;
  core::SchemeSpec spec;
  spec.kind = core::SchemeKind::kDynaQEcn;
  spec.ecn = testbed_ecn();
  auto qd = core::make_mq_qdisc(sim, {1, 1}, 85'000, spec,
                                std::make_unique<net::DrrScheduler>(1500));
  // The DynaQ+ECN configuration has no dynamic thresholds (shared buffer).
  EXPECT_TRUE(qd->policy().thresholds().empty());
  // PMSB marking: port must exceed K AND the queue its share.
  for (int i = 0; i < 25; ++i) ASSERT_TRUE(qd->enqueue(ect_pkt(0)));  // 37.5 KB
  EXPECT_GT(qd->stats().marked, 0u);
}

TEST(MarkerE2E, MqEcnMarksWhenManyQueuesActive) {
  sim::Simulator sim;
  core::EcnConfig ec = testbed_ecn();
  net::MultiQueueQdisc qd(sim, {1, 1, 1, 1}, 850'000, std::make_unique<core::BestEffortPolicy>(),
                          std::make_unique<net::DrrScheduler>(1500),
                          std::make_unique<core::MqEcnMarker>(ec));
  // One active queue: K_0 ~ C*RTT = 62.5 KB; 30 KB backlog stays unmarked.
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(qd.enqueue(ect_pkt(0)));
  EXPECT_EQ(qd.stats().marked, 0u);
  // Four active queues: per-queue rate share quarters, K_i ~ 15.6 KB; the
  // same 30 KB backlog per queue now marks.
  for (int q = 1; q < 4; ++q) {
    for (int i = 0; i < 20; ++i) ASSERT_TRUE(qd.enqueue(ect_pkt(q)));
  }
  std::uint64_t marked_before = qd.stats().marked;
  for (int q = 0; q < 4; ++q) {
    for (int i = 0; i < 4; ++i) ASSERT_TRUE(qd.enqueue(ect_pkt(q)));
  }
  EXPECT_GT(qd.stats().marked, marked_before);
}

// ------------------------------------------------------------ misc --

TEST(Misc, AckPacketsBypassPolicyPressure) {
  // ACKs are tiny; verify a nearly full buffer still takes them (they are
  // data to the qdisc — the point is size-based accounting works).
  sim::Simulator sim;
  net::MultiQueueQdisc qd(sim, {1}, 3'040, std::make_unique<core::BestEffortPolicy>(),
                          std::make_unique<net::SpqScheduler>());
  ASSERT_TRUE(qd.enqueue(ect_pkt(0)));       // 1500
  ASSERT_TRUE(qd.enqueue(ect_pkt(0, 1460)));  // 3000
  net::Packet ack = net::make_ack_packet(1, 1, 0, 0);  // 40 B
  EXPECT_TRUE(qd.enqueue(std::move(ack)));
  net::Packet ack2 = net::make_ack_packet(1, 1, 0, 0);
  EXPECT_FALSE(qd.enqueue(std::move(ack2)));  // 3040 + 40 > 3040
}

TEST(Misc, ResizeWithSharedEvictionPolicyKeepsSatisfactionFresh) {
  sim::Simulator sim;
  net::MultiQueueQdisc qd(sim, {1, 1}, 6'000, std::make_unique<core::DynaQEvictPolicy>(),
                          std::make_unique<net::DrrScheduler>(1500));
  qd.resize_buffer(12'000);
  const auto& policy = dynamic_cast<const core::DynaQEvictPolicy&>(qd.policy());
  EXPECT_EQ(policy.controller().satisfaction(0), 6'000);
  EXPECT_EQ(policy.controller().threshold_sum(), 12'000);
}

}  // namespace
}  // namespace dynaq
