// Tests for the paper's contribution: the DynaQ controller (Algorithm 1),
// victim selection, satisfaction thresholds, and the baseline policies and
// ECN markers — including property sweeps over random packet sequences.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "core/dynaq_controller.hpp"
#include "core/ecn_markers.hpp"
#include "core/policies.hpp"
#include "core/scheme.hpp"
#include "net/multi_queue_qdisc.hpp"
#include "net/schedulers.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace dynaq {
namespace {

using core::DynaQConfig;
using core::DynaQController;
using core::Verdict;

DynaQConfig cfg4(std::int64_t buffer = 85'000) {
  DynaQConfig c;
  c.buffer_bytes = buffer;
  c.weights = {1, 1, 1, 1};
  return c;
}

// ------------------------------------------------- initialization (Eq 1) --

TEST(DynaQController, InitialThresholdsAreWeightedShares) {
  DynaQConfig c;
  c.buffer_bytes = 100'000;
  c.weights = {4, 3, 2, 1};
  DynaQController ctl(c);
  EXPECT_EQ(ctl.threshold(0), 40'000);
  EXPECT_EQ(ctl.threshold(1), 30'000);
  EXPECT_EQ(ctl.threshold(2), 20'000);
  EXPECT_EQ(ctl.threshold(3), 10'000);
  EXPECT_EQ(ctl.threshold_sum(), 100'000);
}

TEST(DynaQController, RoundingStillSumsToBuffer) {
  DynaQConfig c;
  c.buffer_bytes = 100'001;  // not divisible by 3
  c.weights = {1, 1, 1};
  DynaQController ctl(c);
  EXPECT_EQ(ctl.threshold_sum(), 100'001);
}

TEST(DynaQController, SatisfactionEqualsInitialThreshold) {
  DynaQController ctl(cfg4());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(ctl.satisfaction(i), ctl.threshold(i));
    EXPECT_EQ(ctl.extra(i), 0);
    EXPECT_TRUE(ctl.satisfied(i));
  }
}

TEST(DynaQController, RejectsBadConfig) {
  DynaQConfig c;
  c.buffer_bytes = 0;
  c.weights = {1};
  EXPECT_THROW(DynaQController{c}, std::invalid_argument);
  c.buffer_bytes = 100;
  c.weights = {};
  EXPECT_THROW(DynaQController{c}, std::invalid_argument);
  c.weights = {1, -1};
  EXPECT_THROW(DynaQController{c}, std::invalid_argument);
  c.weights.assign(65, 1.0);
  EXPECT_THROW(DynaQController{c}, std::invalid_argument);
}

// -------------------------------------------------------- Algorithm 1 --

TEST(DynaQController, BelowThresholdDoesNothing) {
  DynaQController ctl(cfg4());
  const std::vector<std::int64_t> q{0, 0, 0, 0};
  EXPECT_EQ(ctl.on_arrival(q, 0, 1500), Verdict::kAdmit);
  EXPECT_EQ(ctl.threshold(0), 21'250);
}

TEST(DynaQController, ExceedingTakesFromInactiveVictim) {
  DynaQController ctl(cfg4());
  const std::vector<std::int64_t> q{21'000, 0, 0, 0};
  EXPECT_EQ(ctl.on_arrival(q, 0, 1500), Verdict::kAdjusted);
  EXPECT_EQ(ctl.threshold(0), 22'750);
  // Exactly one victim lost exactly the packet size.
  EXPECT_EQ(ctl.threshold_sum(), 85'000);
  int reduced = 0;
  for (int i = 1; i < 4; ++i) reduced += ctl.threshold(i) < 21'250;
  EXPECT_EQ(reduced, 1);
}

TEST(DynaQController, ProtectsUnsatisfiedActiveVictims) {
  DynaQConfig c;
  c.buffer_bytes = 8'000;
  c.weights = {1, 1};
  DynaQController ctl(c);  // T = {4000, 4000}, S = {4000, 4000}
  // Queue 1 is active; taking from it would push T_1 below S_1 -> drop.
  const std::vector<std::int64_t> q{4'000, 1'000};
  EXPECT_EQ(ctl.on_arrival(q, 0, 1500), Verdict::kDrop);
  EXPECT_EQ(ctl.threshold(0), 4'000);
  EXPECT_EQ(ctl.threshold(1), 4'000);
}

TEST(DynaQController, RaidsInactiveQueueBelowSatisfaction) {
  DynaQConfig c;
  c.buffer_bytes = 8'000;
  c.weights = {1, 1};
  DynaQController ctl(c);
  // Queue 1 empty -> not protected even though T_1 would drop below S_1.
  const std::vector<std::int64_t> q{4'000, 0};
  EXPECT_EQ(ctl.on_arrival(q, 0, 1500), Verdict::kAdjusted);
  EXPECT_EQ(ctl.threshold(0), 5'500);
  EXPECT_EQ(ctl.threshold(1), 2'500);
}

TEST(DynaQController, NeverDrivesVictimThresholdNegative) {
  DynaQConfig c;
  c.buffer_bytes = 4'000;
  c.weights = {1, 1};
  DynaQController ctl(c);
  std::vector<std::int64_t> q{2'000, 0};
  EXPECT_EQ(ctl.on_arrival(q, 0, 1500), Verdict::kAdjusted);  // T1: 2000->500
  q[0] = 3'500;
  EXPECT_EQ(ctl.on_arrival(q, 0, 1500), Verdict::kDrop);  // T1=500 < 1500
  EXPECT_EQ(ctl.threshold(1), 500);
  EXPECT_GE(ctl.threshold(1), 0);
}

TEST(DynaQController, SingleQueuePortDrops) {
  DynaQConfig c;
  c.buffer_bytes = 4'000;
  c.weights = {1};
  DynaQController ctl(c);
  const std::vector<std::int64_t> q{4'000};
  EXPECT_EQ(ctl.on_arrival(q, 0, 1500), Verdict::kDrop);
}

TEST(DynaQController, ReinitializeAfterBufferResize) {
  DynaQController ctl(cfg4(85'000));
  std::vector<std::int64_t> q{21'000, 0, 0, 0};
  ctl.on_arrival(q, 0, 1500);
  ctl.reinitialize(170'000);
  EXPECT_EQ(ctl.threshold_sum(), 170'000);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(ctl.threshold(i), 42'500);
}

// ------------------------------------------------------ victim search --

TEST(DynaQController, VictimSearchExcludesArrivingQueue) {
  DynaQController ctl(cfg4());
  // Give queue 0 a large extra by raiding others.
  std::vector<std::int64_t> q{21'000, 0, 0, 0};
  for (int i = 0; i < 10; ++i) {
    ctl.on_arrival(q, 0, 1500);
    q[0] += 1500;
  }
  EXPECT_GT(ctl.extra(0), 0);
  // Queue 0 has by far the largest extra, but must not victimize itself.
  EXPECT_NE(ctl.find_victim_tournament(0), 0);
  EXPECT_NE(ctl.find_victim_linear(0), 0);
}

TEST(DynaQController, TournamentMatchesLinearReference) {
  // Property check over random threshold configurations and all M in 2..8.
  sim::Rng rng(123);
  for (int m = 2; m <= 8; ++m) {
    DynaQConfig c;
    c.buffer_bytes = 100'000;
    c.weights.assign(static_cast<std::size_t>(m), 1.0);
    DynaQController ctl(c);
    std::vector<std::int64_t> q(static_cast<std::size_t>(m), 0);
    for (int round = 0; round < 2'000; ++round) {
      const int p = static_cast<int>(rng.uniform_int(0, m - 1));
      EXPECT_EQ(ctl.find_victim_tournament(p), ctl.find_victim_linear(p))
          << "m=" << m << " round=" << round;
      // Mutate thresholds through a legal arrival.
      for (int i = 0; i < m; ++i) {
        q[static_cast<std::size_t>(i)] = rng.uniform_int(0, 40'000);
      }
      ctl.on_arrival(q, p, static_cast<std::int32_t>(rng.uniform_int(60, 9'000)));
    }
  }
}

TEST(DynaQController, LargestExtraRespectsWeights) {
  // The paper's §III-B2 example: weights 1:2:3. With thresholds at their
  // initial values, all extras are 0 and the tie breaks to the lowest
  // index; after queue 3 loses buffer once, it must not be picked again
  // over queues with larger extras.
  DynaQConfig c;
  c.buffer_bytes = 60'000;
  c.weights = {1, 2, 3};
  DynaQController ctl(c);  // T = S = {10k, 20k, 30k}
  std::vector<std::int64_t> q{10'000, 0, 0};
  EXPECT_EQ(ctl.on_arrival(q, 0, 1'000), Verdict::kAdjusted);
  // With kLargestThreshold the victim would have been queue 2 (30k);
  // kLargestExtra picks among extras (all 0) -> queue 1 by tie-break.
  EXPECT_EQ(ctl.threshold(1), 19'000);
  EXPECT_EQ(ctl.threshold(2), 30'000);
}

TEST(DynaQController, LargestThresholdAblationPicksBigQueue) {
  DynaQConfig c;
  c.buffer_bytes = 60'000;
  c.weights = {1, 2, 3};
  c.victim = core::VictimSelection::kLargestThreshold;
  DynaQController ctl(c);
  std::vector<std::int64_t> q{10'000, 0, 0};
  EXPECT_EQ(ctl.on_arrival(q, 0, 1'000), Verdict::kAdjusted);
  EXPECT_EQ(ctl.threshold(2), 29'000) << "strawman selection raids the heaviest queue";
}

// ------------------------------------------------- invariant sweeps --

struct SweepParam {
  int queues;
  std::int64_t buffer;
  std::uint64_t seed;
};

class DynaQInvariants : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DynaQInvariants, ThresholdSumAndNonNegativityHoldUnderRandomTraffic) {
  const auto param = GetParam();
  DynaQConfig c;
  c.buffer_bytes = param.buffer;
  sim::Rng wrng(param.seed);
  for (int i = 0; i < param.queues; ++i) {
    c.weights.push_back(static_cast<double>(wrng.uniform_int(1, 4)));
  }
  DynaQController ctl(c);
  sim::Rng rng(param.seed * 7 + 1);
  std::vector<std::int64_t> q(static_cast<std::size_t>(param.queues), 0);

  for (int step = 0; step < 20'000; ++step) {
    // Random occupancy consistent with the buffer bound.
    std::int64_t used = 0;
    for (auto& v : q) {
      v = rng.uniform_int(0, param.buffer / param.queues);
      used += v;
    }
    (void)used;
    const int p = static_cast<int>(rng.uniform_int(0, param.queues - 1));
    const auto size = static_cast<std::int32_t>(rng.uniform_int(60, 9'000));
    ctl.on_arrival(q, p, size);

    ASSERT_EQ(ctl.threshold_sum(), param.buffer) << "ΣT=B must hold at every step";
    for (int i = 0; i < param.queues; ++i) {
      ASSERT_GE(ctl.threshold(i), 0) << "T_i >= 0 must hold";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DynaQInvariants,
    ::testing::Values(SweepParam{2, 85'000, 1}, SweepParam{4, 85'000, 2},
                      SweepParam{8, 192'000, 3}, SweepParam{8, 1'000'000, 4},
                      SweepParam{3, 10'000, 5}, SweepParam{5, 50'000, 6}),
    [](const auto& info) {
      return "q" + std::to_string(info.param.queues) + "_b" +
             std::to_string(info.param.buffer) + "_s" + std::to_string(info.param.seed);
    });

TEST(DynaQController, StrictModeRevertsExchangeOnDrop) {
  DynaQConfig c = cfg4(8'000);
  c.weights = {1, 1};
  c.strict = true;
  DynaQController ctl(c);  // T = {4000, 4000}
  // Occupancy far above threshold: one exchange cannot fix it -> strict
  // mode drops and must restore both thresholds.
  const std::vector<std::int64_t> q{7'000, 0};
  EXPECT_EQ(ctl.on_arrival(q, 0, 500), Verdict::kDrop);
  EXPECT_EQ(ctl.threshold(0), 4'000);
  EXPECT_EQ(ctl.threshold(1), 4'000);
  EXPECT_EQ(ctl.threshold_sum(), 8'000);
}

TEST(DynaQController, WeightedBdpSatisfactionRule) {
  DynaQConfig c;
  c.buffer_bytes = 100'000;
  c.weights = {1, 1};
  c.satisfaction = core::SatisfactionRule::kWeightedBdp;
  c.bdp_bytes = 62'500;
  DynaQController ctl(c);
  EXPECT_EQ(ctl.satisfaction(0), 31'250);
  EXPECT_EQ(ctl.threshold(0), 50'000);
  EXPECT_EQ(ctl.extra(0), 18'750);
}

// ------------------------------------------------------- policies --

net::Packet pkt(int queue, std::int32_t payload = 1460) {
  net::Packet p = net::make_data_packet(1, 0, 1, 0, payload);
  p.queue = static_cast<std::uint8_t>(queue);
  return p;
}

TEST(PqlPolicy, EnforcesStaticQuota) {
  sim::Simulator sim;
  net::MultiQueueQdisc qd(sim, {1, 1}, 6'000, std::make_unique<core::PqlPolicy>(),
                          std::make_unique<net::SpqScheduler>());
  // Quota per queue = 3000 bytes = 2 packets.
  EXPECT_TRUE(qd.enqueue(pkt(0)));
  EXPECT_TRUE(qd.enqueue(pkt(0)));
  EXPECT_FALSE(qd.enqueue(pkt(0)));  // queue 0 quota exhausted
  EXPECT_TRUE(qd.enqueue(pkt(1)));   // queue 1 unaffected
}

TEST(DynamicThresholdPolicy, ThresholdShrinksWithOccupancy) {
  sim::Simulator sim;
  net::MultiQueueQdisc qd(sim, {1, 1}, 6'000,
                          std::make_unique<core::DynamicThresholdPolicy>(1.0),
                          std::make_unique<net::SpqScheduler>());
  // First packet: T = 1.0 * 6000 free = 6000 -> admit.
  EXPECT_TRUE(qd.enqueue(pkt(0)));
  // Now free = 4500, T = 4500; queue 0 holds 1500, 1500+1500 <= 4500 ok.
  EXPECT_TRUE(qd.enqueue(pkt(0)));
  // free = 3000, T = 3000; queue 0 holds 3000 -> 4500 > 3000 rejected.
  EXPECT_FALSE(qd.enqueue(pkt(0)));
  // Queue 1 holds 0 -> 1500 <= 3000 admitted.
  EXPECT_TRUE(qd.enqueue(pkt(1)));
}

TEST(DynaQPolicy, ReportsThresholdsAndAdjustments) {
  sim::Simulator sim;
  net::MultiQueueQdisc qd(sim, {1, 1}, 6'000, std::make_unique<core::DynaQPolicy>(),
                          std::make_unique<net::SpqScheduler>());
  auto& policy = dynamic_cast<core::DynaQPolicy&>(qd.policy());
  EXPECT_EQ(policy.thresholds(), (std::vector<std::int64_t>{3'000, 3'000}));
  EXPECT_TRUE(qd.enqueue(pkt(0)));
  EXPECT_TRUE(qd.enqueue(pkt(0)));  // q_0 = 3000 = T_0 exactly: no adjustment yet
  EXPECT_EQ(policy.threshold_adjustments(), 0u);
  EXPECT_TRUE(qd.enqueue(pkt(0)));  // 3000 + 1500 > T_0 -> exchange from queue 1
  EXPECT_EQ(policy.threshold_adjustments(), 1u);
  EXPECT_EQ(policy.thresholds(), (std::vector<std::int64_t>{4'500, 1'500}));
}

TEST(DynaQPolicy, QueueOccupancyNeverExceedsBufferUnderChurn) {
  sim::Simulator sim;
  sim::Rng rng(9);
  net::MultiQueueQdisc qd(sim, {1, 1, 1, 1}, 85'000, std::make_unique<core::DynaQPolicy>(),
                          std::make_unique<net::DrrScheduler>(1500));
  for (int step = 0; step < 50'000; ++step) {
    if (rng.uniform() < 0.55) {
      qd.enqueue(pkt(static_cast<int>(rng.uniform_int(0, 3)),
                     static_cast<std::int32_t>(rng.uniform_int(60, 1460))));
    } else {
      qd.dequeue();
    }
    ASSERT_LE(qd.backlog_bytes(), 85'000);
    ASSERT_GE(qd.backlog_bytes(), 0);
  }
}

// ------------------------------------------------------- ECN markers --

net::MqState marker_state(std::vector<double> weights, std::int64_t buffer) {
  net::MqState s;
  s.buffer_bytes = buffer;
  s.queues.resize(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) s.queues[i].weight = weights[i];
  return s;
}

TEST(PerQueueEcn, MarksAboveWeightedShare) {
  core::EcnConfig ec;
  ec.port_threshold_bytes = 30'000;
  core::PerQueueEcnMarker marker(ec);
  auto s = marker_state({1, 1}, 85'000);  // K_i = 15000
  s.queues[0].bytes = 14'000;
  EXPECT_FALSE(marker.mark_on_enqueue(s, 0, pkt(0, 500)));
  EXPECT_TRUE(marker.mark_on_enqueue(s, 0, pkt(0, 1460)));
}

TEST(PmsbEcn, RequiresBothConditions) {
  core::EcnConfig ec;
  ec.port_threshold_bytes = 30'000;
  core::PmsbEcnMarker marker(ec);
  auto s = marker_state({1, 1}, 85'000);
  // Queue over its share but port under K: no mark (selective blindness).
  s.queues[0].bytes = 16'000;
  s.port_bytes = 16'000;
  EXPECT_FALSE(marker.mark_on_enqueue(s, 0, pkt(0)));
  // Port over K but this queue under its share: no mark.
  s.queues[0].bytes = 1'000;
  s.queues[1].bytes = 31'000;
  s.port_bytes = 32'000;
  EXPECT_FALSE(marker.mark_on_enqueue(s, 0, pkt(0, 500)));
  // Both: mark.
  s.queues[0].bytes = 15'000;
  s.port_bytes = 46'000;
  EXPECT_TRUE(marker.mark_on_enqueue(s, 0, pkt(0)));
}

TEST(TcnEcn, MarksOnSojournOnly) {
  core::EcnConfig ec;
  ec.sojourn_threshold = microseconds(std::int64_t{240});
  core::TcnEcnMarker marker(ec);
  auto s = marker_state({1}, 85'000);
  EXPECT_FALSE(marker.mark_on_dequeue(s, 0, pkt(0), microseconds(std::int64_t{239})));
  EXPECT_TRUE(marker.mark_on_dequeue(s, 0, pkt(0), microseconds(std::int64_t{241})));
  EXPECT_FALSE(marker.mark_on_enqueue(s, 0, pkt(0)));  // dequeue marking only
}

TEST(MqEcn, ThresholdScalesWithActiveQueues) {
  core::EcnConfig ec;
  ec.capacity_bps = 1e9;
  ec.rtt = microseconds(std::int64_t{500});
  ec.lambda = 1.0;
  ec.quantum_base = 1500;
  core::MqEcnMarker marker(ec);
  auto s = marker_state({1, 1}, 85'000);
  // Only queue 0 active: full rate share -> K_0 ~ C*RTT = 62.5 KB.
  s.queues[0].bytes = 40'000;
  EXPECT_FALSE(marker.mark_on_enqueue(s, 0, pkt(0)));
  // Both active: rate share halves -> K_0 ~ 31 KB; 40 KB now marks. Feed a
  // few samples to let the round-time EWMA converge.
  s.queues[1].bytes = 10'000;
  bool marked = false;
  for (int i = 0; i < 16; ++i) marked = marker.mark_on_enqueue(s, 0, pkt(0));
  EXPECT_TRUE(marked);
}

// ------------------------------------------------------- scheme table --

TEST(Scheme, NamesRoundTrip) {
  using core::SchemeKind;
  for (SchemeKind k : {SchemeKind::kDynaQ, SchemeKind::kDynaQEvict, SchemeKind::kBestEffort,
                       SchemeKind::kPql, SchemeKind::kDynamicThreshold,
                       SchemeKind::kLongestQueueDrop, SchemeKind::kHarmonic,
                       SchemeKind::kDynaQEcn, SchemeKind::kTcn, SchemeKind::kPmsb,
                       SchemeKind::kPerQueueEcn, SchemeKind::kMqEcn}) {
    EXPECT_EQ(core::parse_scheme(core::scheme_name(k)), k);
  }
  EXPECT_THROW(core::parse_scheme("nope"), std::invalid_argument);
}

TEST(Scheme, EcnSchemesGetMarkersAndSharedBuffers) {
  core::SchemeSpec spec;
  spec.kind = core::SchemeKind::kDynaQEcn;
  spec.ecn.port_threshold_bytes = 30'000;
  EXPECT_EQ(make_policy(spec)->name(), "besteffort");
  EXPECT_EQ(make_marker(spec)->name(), "pmsb");
  spec.kind = core::SchemeKind::kDynaQ;
  EXPECT_EQ(make_policy(spec)->name(), "dynaq");
  EXPECT_EQ(make_marker(spec), nullptr);
}

TEST(Scheme, UsesEcnPredicate) {
  EXPECT_TRUE(core::scheme_uses_ecn(core::SchemeKind::kTcn));
  EXPECT_TRUE(core::scheme_uses_ecn(core::SchemeKind::kDynaQEcn));
  EXPECT_FALSE(core::scheme_uses_ecn(core::SchemeKind::kDynaQ));
  EXPECT_FALSE(core::scheme_uses_ecn(core::SchemeKind::kPql));
}

}  // namespace
}  // namespace dynaq
