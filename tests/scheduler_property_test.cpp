// Property sweeps over all schedulers: work conservation, validity of the
// picked queue, termination, and long-run (weighted) byte fairness under
// random packet sizes and arrival patterns.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "net/schedulers.hpp"
#include "sim/random.hpp"

namespace dynaq {
namespace {

enum class Kind { kFifo, kSpq, kDrr, kWrr, kSpqOverDrr };

std::unique_ptr<net::SchedulerPolicy> make(Kind kind) {
  switch (kind) {
    case Kind::kFifo: return std::make_unique<net::FifoScheduler>();
    case Kind::kSpq: return std::make_unique<net::SpqScheduler>();
    case Kind::kDrr: return std::make_unique<net::DrrScheduler>(1500);
    case Kind::kWrr: return std::make_unique<net::WrrScheduler>();
    case Kind::kSpqOverDrr:
      return std::make_unique<net::SpqOverScheduler>(std::make_unique<net::DrrScheduler>(1500));
  }
  return nullptr;
}

std::string kind_name(Kind kind) {
  switch (kind) {
    case Kind::kFifo: return "fifo";
    case Kind::kSpq: return "spq";
    case Kind::kDrr: return "drr";
    case Kind::kWrr: return "wrr";
    case Kind::kSpqOverDrr: return "spqdrr";
  }
  return "?";
}

struct Param {
  Kind kind;
  int queues;
  std::uint64_t seed;
};

class SchedulerProperties : public ::testing::TestWithParam<Param> {
 protected:
  net::MqState make_state(int queues) {
    net::MqState s;
    s.buffer_bytes = 1'000'000'000;
    s.queues.resize(static_cast<std::size_t>(queues));
    for (auto& q : s.queues) q.weight = 1.0;
    return s;
  }

  void push(net::MqState& s, net::SchedulerPolicy& sched, int q, std::int32_t wire_size) {
    net::Packet p = net::make_data_packet(1, 0, 1, 0, wire_size - net::kHeaderBytes);
    p.queue = static_cast<std::uint8_t>(q);
    s.queue(q).bytes += p.size;
    s.port_bytes += p.size;
    s.queue(q).packets.push_back(std::move(p));
    sched.on_enqueue(s, q);
  }

  std::int64_t pop(net::MqState& s, int q) {
    net::Packet p = std::move(s.queue(q).packets.front());
    s.queue(q).packets.pop_front();
    s.queue(q).bytes -= p.size;
    s.port_bytes -= p.size;
    return p.size;
  }
};

TEST_P(SchedulerProperties, NeverPicksEmptyOrInvalidQueue) {
  const auto param = GetParam();
  auto sched = make(param.kind);
  auto s = make_state(param.queues);
  sched->attach(s);
  sim::Rng rng(param.seed);

  for (int step = 0; step < 20'000; ++step) {
    if (rng.uniform() < 0.55) {
      push(s, *sched, static_cast<int>(rng.uniform_int(0, param.queues - 1)),
           static_cast<std::int32_t>(rng.uniform_int(64, 1500)));
    } else {
      const int q = sched->next_queue(s);
      if (s.port_bytes == 0) {
        ASSERT_EQ(q, -1) << "no backlog must yield -1";
      } else {
        ASSERT_GE(q, 0) << "work conservation: backlog exists";
        ASSERT_LT(q, param.queues);
        ASSERT_FALSE(s.queue(q).empty()) << "picked queue must hold a packet";
        pop(s, q);
      }
    }
  }
}

TEST_P(SchedulerProperties, DrainsEverythingEventually) {
  const auto param = GetParam();
  auto sched = make(param.kind);
  auto s = make_state(param.queues);
  sched->attach(s);
  sim::Rng rng(param.seed + 1);

  int pushed = 0;
  for (int i = 0; i < 5'000; ++i) {
    push(s, *sched, static_cast<int>(rng.uniform_int(0, param.queues - 1)),
         static_cast<std::int32_t>(rng.uniform_int(64, 1500)));
    ++pushed;
  }
  int popped = 0;
  while (true) {
    const int q = sched->next_queue(s);
    if (q < 0) break;
    pop(s, q);
    ++popped;
  }
  EXPECT_EQ(popped, pushed);
  EXPECT_EQ(s.port_bytes, 0);
}

TEST_P(SchedulerProperties, BackloggedQueuesShareBytes) {
  const auto param = GetParam();
  if (param.kind == Kind::kFifo || param.kind == Kind::kSpq) {
    GTEST_SKIP() << "fairness only applies to round-robin schedulers";
  }
  auto sched = make(param.kind);
  auto s = make_state(param.queues);
  sched->attach(s);
  sim::Rng rng(param.seed + 2);

  // The strict-priority queue of SPQ-over must stay empty for the DRR
  // group to be measured.
  const int lo = param.kind == Kind::kSpqOverDrr ? 1 : 0;
  std::vector<std::int64_t> served(static_cast<std::size_t>(param.queues), 0);
  // Keep every measured queue constantly backlogged with random sizes.
  auto refill = [&] {
    for (int q = lo; q < param.queues; ++q) {
      while (s.queue(q).packets.size() < 4) {
        push(s, *sched, q, static_cast<std::int32_t>(rng.uniform_int(64, 1500)));
      }
    }
  };
  refill();
  std::int64_t total = 0;
  while (total < 30'000'000) {
    const int q = sched->next_queue(s);
    ASSERT_GE(q, lo);
    const std::int64_t bytes = pop(s, q);
    served[static_cast<std::size_t>(q)] += bytes;
    total += bytes;
    refill();
  }
  const double expected = static_cast<double>(total) / static_cast<double>(param.queues - lo);
  for (int q = lo; q < param.queues; ++q) {
    EXPECT_NEAR(static_cast<double>(served[static_cast<std::size_t>(q)]) / expected, 1.0, 0.05)
        << "queue " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchedulerProperties,
    ::testing::Values(Param{Kind::kFifo, 4, 1}, Param{Kind::kSpq, 4, 2}, Param{Kind::kDrr, 4, 3},
                      Param{Kind::kDrr, 8, 4}, Param{Kind::kWrr, 4, 5}, Param{Kind::kWrr, 8, 6},
                      Param{Kind::kSpqOverDrr, 5, 7}, Param{Kind::kSpqOverDrr, 8, 8},
                      Param{Kind::kDrr, 2, 9}, Param{Kind::kWrr, 2, 10}),
    [](const auto& info) {
      return kind_name(info.param.kind) + "_q" + std::to_string(info.param.queues) + "_s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace dynaq
