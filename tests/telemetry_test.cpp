// Tests for the telemetry subsystem (DESIGN.md §8): histogram bucket
// exactness, ring-buffer overwrite semantics, the drop-reason taxonomy
// driven through the real qdiscs/harness, disabled-hub zero-side-effect,
// and sweep-export byte identity across worker counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/scheme.hpp"
#include "harness/dynamic_experiment.hpp"
#include "harness/static_experiment.hpp"
#include "net/fault_injection.hpp"
#include "net/multi_queue_qdisc.hpp"
#include "net/queue_disc.hpp"
#include "net/schedulers.hpp"
#include "sim/simulator.hpp"
#include "sweep/sweep_runner.hpp"
#include "telemetry/hub.hpp"
#include "workload/flow_size_distribution.hpp"

namespace dynaq {
namespace {

using telemetry::DropReason;
using telemetry::EventKind;

// A data packet destined for service queue `q`. make_data_packet adds the
// 40-byte header, so the wire size is payload + 40.
net::Packet pkt(int q, std::int32_t payload = 1'460, std::uint32_t flow = 1) {
  net::Packet p = net::make_data_packet(flow, 0, 1, 0, payload);
  p.queue = static_cast<std::uint8_t>(q);
  return p;
}

std::unique_ptr<net::MultiQueueQdisc> make_qdisc(sim::Simulator& sim, core::SchemeKind kind,
                                                 int queues, std::int64_t buffer_bytes) {
  core::SchemeSpec spec;
  spec.kind = kind;
  return core::make_mq_qdisc(sim, std::vector<double>(static_cast<std::size_t>(queues), 1.0),
                             buffer_bytes, spec, std::make_unique<net::DrrScheduler>(1'500));
}

// ----------------------------------------------------------- histogram --

TEST(LogHistogram, BucketBoundariesExactEverywhere) {
  using H = telemetry::LogHistogram;
  for (int i = 0; i < H::kNumBuckets; ++i) {
    const std::int64_t lo = H::lower_bound(i);
    EXPECT_EQ(H::index_of(lo), i) << "lower bound of bucket " << i;
    if (i > 0) {
      EXPECT_EQ(H::index_of(lo - 1), i - 1) << "value below bucket " << i;
    }
  }
  EXPECT_EQ(H::index_of(-5), 0) << "negative values clamp to the first bucket";
  EXPECT_EQ(H::index_of(std::int64_t{1} << 60), H::kNumBuckets - 1)
      << "values beyond kMaxBits clamp to the last bucket";
}

TEST(LogHistogram, SmallValuesAndPercentilesAreExact) {
  telemetry::LogHistogram h;
  for (std::int64_t v = 0; v < 8; ++v) h.record(v);  // sub-kSub: exact buckets
  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.max(), 7);
  EXPECT_EQ(h.percentile(100), 7);
  EXPECT_EQ(h.percentile(1), 0);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(h.bucket(i), 1u);
}

// ----------------------------------------------------------- event ring --

TEST(Hub, RingOverwritesOldestButCountersStayMonotonic) {
  sim::Simulator sim;
  telemetry::Hub hub(sim, {.ring_capacity = 4});
  for (std::uint32_t i = 0; i < 6; ++i) {
    hub.emit({.kind = EventKind::kEnqueue, .flow = i});
  }
  EXPECT_EQ(hub.ring_capacity(), 4u);
  EXPECT_EQ(hub.ring_size(), 4u);
  EXPECT_EQ(hub.ring_overwritten(), 2u);
  const auto events = hub.ring_events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].flow, i + 2) << "oldest two events must be gone";
  }
  EXPECT_EQ(hub.summary().enqueues, 6u) << "aggregates ignore ring overwrites";
}

TEST(Hub, SubscribersSeeEveryEvent) {
  sim::Simulator sim;
  telemetry::Hub hub(sim, {.ring_capacity = 2});
  std::vector<EventKind> seen;
  hub.subscribe([&](const telemetry::Event& e) { seen.push_back(e.kind); });
  hub.emit({.kind = EventKind::kEnqueue});
  hub.emit({.kind = EventKind::kDrop, .reason = DropReason::kThreshold});
  hub.emit({.kind = EventKind::kEcnMark});
  ASSERT_EQ(seen.size(), 3u) << "fan-out is not bounded by the ring";
  EXPECT_EQ(seen[1], EventKind::kDrop);
}

// --------------------------------------------- drop-reason taxonomy ----
// One test per DropReason, each driving the real emitting component.

TEST(DropTaxonomy, ThresholdWhenNoVictimExists) {
  sim::Simulator sim;
  telemetry::Hub hub(sim);
  // Single service queue, B = 2000: the second 1500 B packet exceeds the
  // threshold and there is no other queue to borrow from.
  auto qd = make_qdisc(sim, core::SchemeKind::kDynaQ, 1, 2'000);
  qd->attach_telemetry(hub, "sw.p0");
  EXPECT_TRUE(qd->enqueue(pkt(0)));
  EXPECT_FALSE(qd->enqueue(pkt(0)));
  const auto s = hub.summary();
  EXPECT_EQ(s.drops(DropReason::kThreshold), 1u);
  EXPECT_EQ(s.total_drops(), 1u);
  EXPECT_EQ(s.enqueues, 1u);
}

TEST(DropTaxonomy, VictimTooSmallWhenThresholdBelowPacket) {
  sim::Simulator sim;
  telemetry::Hub hub(sim);
  // Two queues, B = 2000 -> T = {1000, 1000}: the very first 1500 B packet
  // needs an exchange but the victim's whole threshold is below the packet.
  auto qd = make_qdisc(sim, core::SchemeKind::kDynaQ, 2, 2'000);
  qd->attach_telemetry(hub, "sw.p0");
  EXPECT_FALSE(qd->enqueue(pkt(0)));
  EXPECT_EQ(hub.summary().drops(DropReason::kVictimTooSmall), 1u);
}

TEST(DropTaxonomy, VictimUnsatisfiedWhenActiveVictimWouldDropBelowS) {
  sim::Simulator sim;
  telemetry::Hub hub(sim);
  // Two queues, B = 6000 -> T = S = {3000, 3000}. Queue 1 holds one packet
  // (active); queue 0 fills to its threshold, then one more arrival asks
  // queue 1 to donate 1500 B, which would leave T_1 = 1500 < S_1.
  auto qd = make_qdisc(sim, core::SchemeKind::kDynaQ, 2, 6'000);
  qd->attach_telemetry(hub, "sw.p0");
  EXPECT_TRUE(qd->enqueue(pkt(1)));
  EXPECT_TRUE(qd->enqueue(pkt(0)));
  EXPECT_TRUE(qd->enqueue(pkt(0)));
  EXPECT_FALSE(qd->enqueue(pkt(0)));
  EXPECT_EQ(hub.summary().drops(DropReason::kVictimUnsatisfied), 1u);
}

TEST(DropTaxonomy, PortFullWhenPolicyAdmitsButBufferCannot) {
  sim::Simulator sim;
  telemetry::Hub hub(sim);
  // BestEffort has no per-queue quota: the physical bound is the only limit.
  auto qd = make_qdisc(sim, core::SchemeKind::kBestEffort, 2, 2'000);
  qd->attach_telemetry(hub, "sw.p0");
  EXPECT_TRUE(qd->enqueue(pkt(0)));
  EXPECT_FALSE(qd->enqueue(pkt(1)));
  EXPECT_EQ(hub.summary().drops(DropReason::kPortFull), 1u);
}

TEST(DropTaxonomy, NicFullFromHostDropTailQueue) {
  sim::Simulator sim;
  telemetry::Hub hub(sim);
  net::DropTailQueue nic(2'000);
  nic.attach_telemetry(hub, "h0.nic");
  EXPECT_TRUE(nic.enqueue(pkt(0)));
  EXPECT_FALSE(nic.enqueue(pkt(0)));
  EXPECT_EQ(hub.summary().drops(DropReason::kNicFull), 1u);
  EXPECT_EQ(nic.drops(), 1u);
}

TEST(DropTaxonomy, InjectedFromFaultInjectionQueue) {
  sim::Simulator sim;
  telemetry::Hub hub(sim);
  net::DeterministicLossQueue loss({0});  // drop the first data packet
  loss.attach_telemetry(hub, "link");
  EXPECT_FALSE(loss.enqueue(pkt(0)));
  EXPECT_TRUE(loss.enqueue(pkt(0)));
  const auto s = hub.summary();
  EXPECT_EQ(s.drops(DropReason::kInjected), 1u);
  EXPECT_EQ(loss.injected_losses(), 1u);
  // Injected losses are also counted in the metrics registry.
  EXPECT_EQ(hub.metrics().counter("drops_injected").value(), 1u);
}

// ------------------------------------------------- exchange events -----

TEST(Telemetry, ThresholdExchangeEmittedOnSuccessfulBorrow) {
  sim::Simulator sim;
  telemetry::Hub hub(sim);
  // B = 6000, queue 1 idle: queue 0's third packet borrows 1500 B of
  // threshold from the inactive victim and is admitted.
  auto qd = make_qdisc(sim, core::SchemeKind::kDynaQ, 2, 6'000);
  qd->attach_telemetry(hub, "sw.p0");
  EXPECT_TRUE(qd->enqueue(pkt(0)));
  EXPECT_TRUE(qd->enqueue(pkt(0)));
  EXPECT_TRUE(qd->enqueue(pkt(0)));
  const auto s = hub.summary();
  EXPECT_EQ(s.threshold_exchanges, 1u);
  EXPECT_EQ(s.exchanged_bytes, 1'500);
  EXPECT_EQ(s.enqueues, 3u);
  EXPECT_EQ(s.total_drops(), 0u);
  bool saw_exchange = false;
  for (const auto& e : hub.ring_events()) {
    if (e.kind != EventKind::kThresholdExchange) continue;
    saw_exchange = true;
    EXPECT_EQ(e.queue, 0) << "requester";
    EXPECT_EQ(e.other_queue, 1) << "victim";
    EXPECT_EQ(e.bytes, 1'500);
  }
  EXPECT_TRUE(saw_exchange);
}

// ---------------------------------------------- disabled-hub fast path --

TEST(Telemetry, DisabledHubHasZeroSideEffects) {
  sim::Simulator sim;
  telemetry::Hub hub(sim, {.enabled = false});
  auto qd = make_qdisc(sim, core::SchemeKind::kDynaQ, 2, 6'000);
  qd->attach_telemetry(hub, "sw.p0");
  net::DropTailQueue nic(2'000);
  nic.attach_telemetry(hub, "h0.nic");
  net::DeterministicLossQueue loss({0});
  loss.attach_telemetry(hub, "link");

  for (int i = 0; i < 3; ++i) qd->enqueue(pkt(0));  // exchange + drops happen
  nic.enqueue(pkt(0));
  nic.enqueue(pkt(0));  // NIC drop happens
  loss.enqueue(pkt(0));  // injected loss happens
  while (qd->dequeue()) {
  }

  EXPECT_EQ(hub.ring_size(), 0u);
  EXPECT_EQ(hub.num_delay_queues(), 0u);
  EXPECT_FALSE(hub.sampling_active());
  const auto s = hub.summary();
  EXPECT_EQ(s.total_drops(), 0u);
  EXPECT_EQ(s.enqueues, 0u);
  EXPECT_EQ(s.threshold_exchanges, 0u);
  EXPECT_TRUE(s.queue_delay.empty());
}

TEST(Telemetry, CollectionDoesNotPerturbTheSimulation) {
  harness::StaticExperimentConfig cfg;
  cfg.star.num_hosts = 3;
  cfg.groups = {{.queue = 0, .num_flows = 2, .first_src_host = 1, .num_src_hosts = 2,
                 .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno},
                {.queue = 1, .num_flows = 2, .first_src_host = 1, .num_src_hosts = 2,
                 .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno}};
  cfg.duration = milliseconds(std::int64_t{500});
  cfg.collect_telemetry = true;
  const auto with = harness::run_static_experiment(cfg);
  cfg.collect_telemetry = false;
  const auto without = harness::run_static_experiment(cfg);

  EXPECT_EQ(with.events, without.events) << "observation must not change the trajectory";
  EXPECT_EQ(with.bottleneck_stats.enqueued, without.bottleneck_stats.enqueued);
  EXPECT_EQ(with.bottleneck_stats.dropped, without.bottleneck_stats.dropped);
  EXPECT_GT(with.telemetry.enqueues, 0u);
  EXPECT_EQ(without.telemetry.enqueues, 0u);
  EXPECT_TRUE(without.telemetry_events.empty());
}

// -------------------------------------------- harness cross-checks -----

TEST(Telemetry, HarnessSummaryMatchesQdiscStats) {
  harness::StaticExperimentConfig cfg;
  cfg.star.num_hosts = 4;
  cfg.star.buffer_bytes = 40'000;  // small buffer: force policy drops
  cfg.groups = {{.queue = 0, .num_flows = 3, .first_src_host = 1, .num_src_hosts = 3,
                 .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno},
                {.queue = 1, .num_flows = 3, .first_src_host = 1, .num_src_hosts = 3,
                 .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno}};
  cfg.duration = seconds(std::int64_t{1});
  const auto r = harness::run_static_experiment(cfg);

  // The bottleneck port is the only MultiQueueQdisc attached to the hub, so
  // the event-bus aggregates must agree with its internal MqStats exactly.
  const auto& s = r.telemetry;
  EXPECT_EQ(s.enqueues, r.bottleneck_stats.enqueued);
  EXPECT_EQ(s.drops(DropReason::kThreshold) + s.drops(DropReason::kVictimUnsatisfied) +
                s.drops(DropReason::kVictimTooSmall),
            r.bottleneck_stats.dropped_by_policy);
  EXPECT_EQ(s.drops(DropReason::kPortFull), r.bottleneck_stats.dropped_port_full);
  EXPECT_GT(s.threshold_exchanges, 0u) << "contended DynaQ run must exchange thresholds";
  EXPECT_GT(s.exchanged_bytes, 0);

  // Per-queue queueing delay collected at the bottleneck.
  ASSERT_GE(s.queue_delay.size(), 2u);
  for (int q = 0; q < 2; ++q) {
    const auto& d = s.queue_delay[static_cast<std::size_t>(q)];
    EXPECT_GT(d.count, 0u);
    EXPECT_GE(d.p99_us, d.p50_us);
    EXPECT_GE(d.max_us, d.p99_us);
    EXPECT_GT(d.p50_us, 0.0);
  }
  EXPECT_FALSE(r.telemetry_ports.empty());
  EXPECT_FALSE(r.telemetry_events.empty());
}

// ------------------------------------------------------- JSONL export --

TEST(Telemetry, EventsRenderAsJsonlWithPortNamesAndReasons) {
  sim::Simulator sim;
  telemetry::Hub hub(sim);
  const auto port = static_cast<std::int16_t>(hub.register_port("sw.p0"));
  hub.emit({.kind = EventKind::kDrop,
            .reason = DropReason::kVictimUnsatisfied,
            .port = port,
            .queue = 2,
            .bytes = 1'500,
            .flow = 7});
  hub.emit({.kind = EventKind::kThresholdExchange,
            .port = port,
            .queue = 0,
            .other_queue = 3,
            .bytes = 1'500});
  const std::string jsonl = telemetry::events_to_jsonl(hub.ring_events(), hub.port_names());
  EXPECT_NE(jsonl.find("\"kind\":\"drop\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"reason\":\"victim_unsatisfied\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"port\":\"sw.p0\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"victim\":3"), std::string::npos);
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
}

// ------------------------------------------------ sweep integration ----

TEST(Telemetry, SweepJsonByteIdenticalAcrossWorkerCounts) {
  sweep::SweepSpec spec;
  spec.axes = {sweep::Axis::labels("scheme", {"DynaQ", "BestEffort"}),
               sweep::Axis::numeric("seed", {1, 2})};
  const auto job = [](const sweep::JobPoint& p) -> sweep::JobResult {
    harness::DynamicStarConfig cfg;
    cfg.star.scheme.kind = core::parse_scheme(p.label("scheme"));
    cfg.num_flows = 60;
    cfg.load = 0.5;
    cfg.dist = &workload::web_search_workload();
    cfg.seed = static_cast<std::uint64_t>(p.number("seed"));
    auto r = harness::run_dynamic_star_experiment(cfg);
    return sweep::JobResult{{{"flows", static_cast<double>(r.fcts.count())},
                             {"drops", static_cast<double>(r.telemetry.total_drops())}},
                            std::move(r.telemetry)};
  };

  const auto s1 = sweep::SweepRunner(sweep::RunnerOptions{.jobs = 1}).run("tel", spec, job);
  const auto s3 = sweep::SweepRunner(sweep::RunnerOptions{.jobs = 3}).run("tel", spec, job);
  ASSERT_EQ(s1.failures(), 0u);
  ASSERT_EQ(s3.failures(), 0u);

  const sweep::JsonOptions no_perf{.include_perf = false};
  const std::string j1 = s1.to_json(no_perf);
  EXPECT_EQ(j1, s3.to_json(no_perf)) << "telemetry must not break sweep determinism";

  // schema_version 2: per-job telemetry block with the full drop taxonomy.
  EXPECT_NE(j1.find("\"schema_version\""), std::string::npos);
  EXPECT_NE(j1.find("\"telemetry\""), std::string::npos);
  EXPECT_NE(j1.find("\"threshold_exchanges\""), std::string::npos);
  EXPECT_NE(j1.find("\"victim_unsatisfied\""), std::string::npos);
  EXPECT_NE(j1.find("\"queue_delay\""), std::string::npos);

  for (const auto& o : s1.outcomes()) {
    ASSERT_TRUE(o.telemetry.has_value());
    EXPECT_GT(o.telemetry->enqueues, 0u);
  }
}

// ------------------------------------------------------ time series ----

TEST(QueueSeries, MinGapTurnsEventCadenceIntoTimeCadence) {
  telemetry::QueueSeries series(10, 0, 100);
  series.record(0, {1});
  series.record(50, {2});   // closer than min_gap: skipped
  series.record(120, {3});  // 120 ps after the last kept sample: recorded
  ASSERT_EQ(series.samples().size(), 2u);
  EXPECT_EQ(series.samples()[1].when, 120);
  EXPECT_EQ(series.samples()[1].queue_bytes[0], 3);
}

TEST(QueueSeries, HubSamplingStopsAtCapacity) {
  sim::Simulator sim;
  telemetry::Hub hub(sim);
  EXPECT_FALSE(hub.sampling_active()) << "capacity 0 means sampling is off";
  hub.enable_queue_sampling(2);
  EXPECT_TRUE(hub.sampling_active());
  const std::vector<std::int64_t> occ{100, 200};
  hub.sample(0, occ, {50, 50});
  hub.sample(1, occ, {50, 50});
  EXPECT_FALSE(hub.sampling_active());
  ASSERT_EQ(hub.queue_samples().size(), 2u);
  EXPECT_EQ(hub.queue_samples()[0].thresholds[1], 50);
}

}  // namespace
}  // namespace dynaq
