// Control-plane degradation tests (DESIGN.md §14): inline byte-identity of
// the shim, asynchronous threshold updates, watchdog failover to Dynamic
// Thresholds under stall/crash/update-loss faults, bounded recovery time,
// the auditor's bounded-staleness window, and determinism of degraded runs.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "check/invariant_auditor.hpp"
#include "ctrlplane/control_plane.hpp"
#include "harness/static_experiment.hpp"
#include "net/mq_state.hpp"
#include "net/packet.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"

namespace dynaq {
namespace {

constexpr int kNumQueues = 4;

// Testbed-style star, one long-lived flow per queue — the same shape the
// scenario tests use, short enough for tier-1 budgets.
harness::StaticExperimentConfig base_config() {
  harness::StaticExperimentConfig cfg;
  cfg.star.num_hosts = 5;
  cfg.star.scheme.kind = core::SchemeKind::kDynaQ;
  for (int q = 0; q < kNumQueues; ++q) {
    cfg.groups.push_back({.queue = q,
                          .num_flows = 1,
                          .first_src_host = 1 + q,
                          .num_src_hosts = 1,
                          .start = 0,
                          .stop = 0,
                          .cc = transport::CcKind::kNewReno});
  }
  cfg.duration = seconds(std::int64_t{1});
  cfg.meter_window = milliseconds(std::int64_t{100});
  return cfg;
}

ctrlplane::ControlPlaneConfig async_control() {
  ctrlplane::ControlPlaneConfig cp;
  cp.enabled = true;
  cp.update_period = milliseconds(std::int64_t{5});
  cp.update_delay = milliseconds(std::int64_t{1});
  cp.watchdog_deadline = milliseconds(std::int64_t{40});
  return cp;
}

scenario::ScenarioParams params_for(const harness::StaticExperimentConfig& cfg) {
  scenario::ScenarioParams sp;
  sp.duration = cfg.duration;
  sp.num_queues = kNumQueues;
  sp.qdisc = "sw.p0";
  sp.ctrl = "sw.p0.ctrl";
  return sp;
}

// ------------------------------------------------------ inline mode --

// The shim's default configuration (period 0, no watchdog) is a pure
// pass-through: it schedules no events and delegates every call inline, so
// the trajectory must be byte-identical to running DynaQ without the shim.
TEST(ControlPlane, InlineDefaultIsByteIdenticalToPlainDynaQ) {
  auto plain = base_config();
  const auto r_plain = harness::run_static_experiment(plain);

  auto shimmed = base_config();
  shimmed.control_plane.enabled = true;  // period 0, watchdog 0
  const auto r_shim = harness::run_static_experiment(shimmed);

  EXPECT_EQ(r_plain.trajectory_hash, r_shim.trajectory_hash);
  EXPECT_EQ(r_shim.telemetry.control.updates, 0u);
  EXPECT_EQ(r_shim.telemetry.control.failovers, 0u);
}

// ------------------------------------------------------- async mode --

TEST(ControlPlane, AsyncUpdatesCommitAndWatchdogStaysQuiet) {
  auto cfg = base_config();
  cfg.control_plane = async_control();
  const auto r = harness::run_static_experiment(cfg);

  // ~1 s / 5 ms periods, minus the 1 ms commit delay in flight at the end.
  EXPECT_GT(r.telemetry.control.updates, 100u);
  EXPECT_EQ(r.telemetry.control.failovers, 0u) << "healthy controller must not fail over";
  EXPECT_EQ(r.telemetry.control.restores, 0u);
  EXPECT_TRUE(r.telemetry.control.any());
  // Stale-but-bounded thresholds still keep the link busy.
  EXPECT_GT(r.meter.aggregate_gbps(r.meter.num_windows() / 2), 0.9);
}

// ------------------------------------------------- faults + recovery --

TEST(ControlPlane, CrashFailsOverAndRecoversWithinBudget) {
  auto cfg = base_config();
  cfg.control_plane = async_control();
  const auto scn = scenario::make_scenario("controller_crash", params_for(cfg));
  cfg.scenario = &scn;
  const auto r = harness::run_static_experiment(cfg);

  EXPECT_EQ(r.scenario_actions, 1u);
  EXPECT_EQ(r.telemetry.control.failovers, 1u);
  EXPECT_EQ(r.telemetry.control.restores, 1u);
  EXPECT_GT(r.telemetry.control.degraded_us, 0);
  // Recovery runs from the controller's return to the restoring commit:
  // at most one watchdog probe interval plus the re-sync update delay —
  // bounded well inside watchdog_deadline + update_period + update_delay.
  const auto& cp = cfg.control_plane;
  EXPECT_GT(r.telemetry.control.recovery_us, 0);
  EXPECT_LE(static_cast<double>(r.telemetry.control.recovery_us),
            to_microseconds(cp.watchdog_deadline + cp.update_period + cp.update_delay));
  // DT failover keeps the port busy: retention near 1 on a saturated link.
  EXPECT_GT(r.telemetry.control.throughput_retention, 0.9);
}

TEST(ControlPlane, StallFailsOverAndRestores) {
  auto cfg = base_config();
  cfg.control_plane = async_control();
  const auto scn = scenario::make_scenario("controller_stall", params_for(cfg));
  cfg.scenario = &scn;
  const auto r = harness::run_static_experiment(cfg);

  EXPECT_EQ(r.telemetry.control.failovers, 1u);
  EXPECT_EQ(r.telemetry.control.restores, 1u);
}

// An inline shim (period 0) with a watchdog enforces the last good
// thresholds while the controller is down, then fails over and re-syncs.
TEST(ControlPlane, InlineCrashFreezesThenFailsOver) {
  auto cfg = base_config();
  cfg.control_plane.enabled = true;
  cfg.control_plane.watchdog_deadline = milliseconds(std::int64_t{40});
  const auto scn = scenario::make_scenario("controller_crash", params_for(cfg));
  cfg.scenario = &scn;
  const auto r = harness::run_static_experiment(cfg);

  EXPECT_EQ(r.telemetry.control.failovers, 1u);
  EXPECT_EQ(r.telemetry.control.restores, 1u);
  EXPECT_GT(r.telemetry.control.throughput_retention, 0.9);
}

// A total update-loss window starves commits past the watchdog deadline;
// the reliable re-sync path (exempt from injected loss) restores DynaQ even
// mid-window — after which periodic updates are lost again, so the shim
// cycles failover → re-sync → failover until the window closes. Every
// failover must be matched by a restore and the cycle must stop with the
// window.
TEST(ControlPlane, TotalUpdateLossTriggersFailoverAndReliableResync) {
  auto cfg = base_config();
  cfg.control_plane = async_control();
  auto sp = params_for(cfg);
  sp.ctrl_loss_rate = 1.0;
  const auto scn = scenario::make_scenario("control_loss_window", sp);
  cfg.scenario = &scn;
  const auto r = harness::run_static_experiment(cfg);

  EXPECT_EQ(r.scenario_actions, 2u) << "window start + restore both count";
  EXPECT_GT(r.telemetry.control.updates_lost, 0u);
  EXPECT_GE(r.telemetry.control.failovers, 1u);
  EXPECT_EQ(r.telemetry.control.restores, r.telemetry.control.failovers)
      << "every failover ends in a reliable re-sync restore";
  // The 250 ms window supports at most ~window/deadline cycles.
  EXPECT_LE(r.telemetry.control.failovers, 7u);
}

// -------------------------------------------------------- determinism --

TEST(ControlPlane, DegradedRunsAreSeedDeterministic) {
  auto cfg = base_config();
  cfg.control_plane = async_control();
  cfg.control_plane.update_loss = 0.05;
  const auto scn = scenario::make_scenario("controller_crash", params_for(cfg));
  cfg.scenario = &scn;
  const auto r1 = harness::run_static_experiment(cfg);
  const auto r2 = harness::run_static_experiment(cfg);
  EXPECT_EQ(r1.trajectory_hash, r2.trajectory_hash) << "same seed, same faults";

  cfg.seed = 2;
  cfg.control_plane.seed = 2;
  const auto r3 = harness::run_static_experiment(cfg);
  EXPECT_NE(r1.trajectory_hash, r3.trajectory_hash) << "seeds must diverge";
}

// -------------------------------------------- bounded-staleness audit --

// Minimal conserving policy whose thresholds the test steers directly: the
// auditor must tolerate ΣT ≠ B inside the declared staleness window and
// flag it only once the window is exceeded.
class FakeStalePolicy final : public net::BufferPolicy {
 public:
  bool admit(const net::MqState&, int, const net::Packet&) override { return true; }
  std::vector<std::int64_t> thresholds() const override { return thresholds_; }
  bool conserves_threshold_sum() const override { return true; }
  Time threshold_staleness_bound() const override { return milliseconds(std::int64_t{1}); }
  std::string_view name() const override { return "fake-stale"; }

  std::vector<std::int64_t> thresholds_;
};

TEST(ControlPlane, AuditorToleratesStalenessOnlyWithinBound) {
  sim::Simulator sim;
  auto fake = std::make_unique<FakeStalePolicy>();
  FakeStalePolicy* stale = fake.get();
  check::AuditedBufferPolicy audited(std::move(fake), &sim,
                                     {.throw_on_violation = false});
  net::MqState state;
  state.buffer_bytes = 1'000;
  state.queues.resize(2);
  state.queues[0].weight = state.queues[1].weight = 1.0;
  const net::Packet p = net::make_data_packet(1, 0, 1, 0, 100);

  stale->thresholds_ = {500, 500};  // balanced: no window opens
  audited.admit(state, 0, p);
  EXPECT_EQ(audited.stale_since(), -1);
  EXPECT_TRUE(audited.violations().empty());

  stale->thresholds_ = {600, 500};  // ΣT = 1100 ≠ B: window opens at t=0
  audited.admit(state, 0, p);
  EXPECT_EQ(audited.stale_since(), 0);
  EXPECT_TRUE(audited.violations().empty()) << "inside the 1 ms bound";

  // Re-balance before the bound expires: the window must close cleanly.
  sim.schedule_at(microseconds(std::int64_t{500}), [&] {
    stale->thresholds_ = {400, 600};
    audited.admit(state, 0, p);
  });
  // Past the bound with the sum still broken: now it is a violation.
  sim.schedule_at(milliseconds(std::int64_t{2}), [&] {
    stale->thresholds_ = {600, 500};
    audited.admit(state, 0, p);  // opens a fresh window at t=2ms
  });
  sim.schedule_at(milliseconds(std::int64_t{4}), [&] { audited.admit(state, 0, p); });
  sim.run();

  ASSERT_FALSE(audited.violations().empty());
  EXPECT_EQ(audited.violations().front().kind, check::ViolationKind::kStaleThresholdWindow);
}

// The e2e lookup the topology uses: the shim is found through the audit
// decorator, and plain policies yield null.
TEST(ControlPlane, FindControlPlaneSeesThroughAuditWrap) {
  sim::Simulator sim;
  ctrlplane::ControlPlaneConfig cp;
  cp.enabled = true;
  auto shim = std::make_unique<ctrlplane::ControlPlanePolicy>(sim, cp,
                                                              core::DynaQPolicy::Options{});
  ctrlplane::ControlPlanePolicy* raw = shim.get();
  check::AuditedBufferPolicy audited(std::move(shim), &sim);
  EXPECT_EQ(ctrlplane::find_control_plane(audited), raw);

  check::AuditedBufferPolicy plain(std::make_unique<FakeStalePolicy>(), &sim);
  EXPECT_EQ(ctrlplane::find_control_plane(plain), nullptr);
}

}  // namespace
}  // namespace dynaq
