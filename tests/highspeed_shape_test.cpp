// Shape regression tests at the paper's simulation operating points: the
// headline Fig. 10/12 behaviours distilled into fast assertions, plus a
// parameterized timing sweep of the port model across rates and MTUs.
#include <gtest/gtest.h>

#include <memory>

#include "harness/static_experiment.hpp"
#include "net/node.hpp"
#include "net/port.hpp"
#include "sim/simulator.hpp"
#include "stats/fairness.hpp"

namespace dynaq {
namespace {

harness::StaticExperimentConfig sim10g(core::SchemeKind kind, int senders_q1) {
  harness::StaticExperimentConfig cfg;
  cfg.star.num_hosts = 1 + senders_q1;
  cfg.star.link_rate_bps = 10e9;
  cfg.star.link_delay = microseconds(std::int64_t{21});
  cfg.star.buffer_bytes = 192'000;
  cfg.star.queue_weights.assign(8, 1.0);
  cfg.star.scheme.kind = kind;
  cfg.star.scheduler = topo::SchedulerKind::kWrr;
  cfg.groups = {{.queue = 0, .num_flows = senders_q1, .first_src_host = 1,
                 .num_src_hosts = senders_q1, .start = 0, .stop = 0,
                 .cc = transport::CcKind::kNewReno}};
  cfg.duration = seconds(std::int64_t{1});
  cfg.meter_window = milliseconds(std::int64_t{100});
  cfg.rto_min = milliseconds(std::int64_t{5});
  return cfg;
}

TEST(HighSpeedShape, Fig10SingleActiveQueuePqlCollapsesDynaQDoesNot) {
  // The end state of Fig. 10: one queue of 8 active, 2 senders, 10 Gbps.
  const auto pql = harness::run_static_experiment(sim10g(core::SchemeKind::kPql, 2));
  const auto dq = harness::run_static_experiment(sim10g(core::SchemeKind::kDynaQ, 2));
  const double pql_gbps = pql.meter.mean_gbps(0, 3, pql.meter.num_windows());
  const double dq_gbps = dq.meter.mean_gbps(0, 3, dq.meter.num_windows());
  EXPECT_LT(pql_gbps, 9.5) << "PQL must lose throughput (paper: ~8.5G)";
  EXPECT_GT(dq_gbps, 9.8) << "DynaQ must stay work-conserving (paper: ~10G)";
}

TEST(HighSpeedShape, Fig12ExtremeFlowCountsStayWeightedFair) {
  // A compressed Fig. 12 moment: queues with 16 vs 256 single-flow senders
  // must still split a 10G link evenly under DynaQ.
  harness::StaticExperimentConfig cfg;
  cfg.star.num_hosts = 1 + 16 + 256;
  cfg.star.link_rate_bps = 10e9;
  cfg.star.link_delay = microseconds(std::int64_t{21});
  cfg.star.buffer_bytes = 192'000;
  cfg.star.queue_weights = {1, 1};
  cfg.star.scheme.kind = core::SchemeKind::kDynaQ;
  cfg.star.scheduler = topo::SchedulerKind::kWrr;
  cfg.groups = {
      {.queue = 0, .num_flows = 16, .first_src_host = 1, .num_src_hosts = 16,
       .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno},
      {.queue = 1, .num_flows = 256, .first_src_host = 17, .num_src_hosts = 256,
       .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno},
  };
  cfg.duration = seconds(std::int64_t{1});
  cfg.meter_window = milliseconds(std::int64_t{50});
  cfg.rto_min = milliseconds(std::int64_t{5});
  const auto r = harness::run_static_experiment(cfg);
  // Skip the 272-flow slow-start storm; judge the steady half-second. A
  // ~10% residual skew toward the many-flow queue remains at this
  // compressed scale (the paper-scale Fig. 12 bench splits exactly).
  const double q0 = r.meter.mean_gbps(0, 10, r.meter.num_windows());
  const double q1 = r.meter.mean_gbps(1, 10, r.meter.num_windows());
  EXPECT_NEAR(q0, 5.0, 0.75);
  EXPECT_NEAR(q1, 5.0, 0.75);
  EXPECT_GT(q0 + q1, 9.5) << "work conservation";
}

// ------------------------------------------- port timing sweep --

struct PortParam {
  double rate_bps;
  std::int32_t payload;
};

class PortTiming : public ::testing::TestWithParam<PortParam> {};

TEST_P(PortTiming, DeliveryTimeIsSerializationPlusPropagation) {
  const auto param = GetParam();
  sim::Simulator sim;
  const Time prop = microseconds(std::int64_t{10});
  auto tx = std::make_unique<net::Port>(sim, param.rate_bps, prop,
                                        std::make_unique<net::DropTailQueue>());
  auto rx = std::make_unique<net::Port>(sim, param.rate_bps, prop,
                                        std::make_unique<net::DropTailQueue>());
  net::connect(*tx, *rx);
  Time delivered = -1;
  rx->set_receiver([&](net::Packet&&) { delivered = sim.now(); });
  tx->send(net::make_data_packet(1, 0, 1, 0, param.payload));
  sim.run();
  const Time expected =
      transmission_time(param.payload + net::kHeaderBytes, param.rate_bps) + prop;
  ASSERT_EQ(delivered, expected);
}

INSTANTIATE_TEST_SUITE_P(
    RatesAndSizes, PortTiming,
    ::testing::Values(PortParam{1e9, 1460}, PortParam{10e9, 1460}, PortParam{100e9, 1460},
                      PortParam{100e9, 8960}, PortParam{1e9, 1}, PortParam{40e9, 8960},
                      PortParam{25e9, 256}),
    [](const auto& info) {
      return "r" + std::to_string(static_cast<long long>(info.param.rate_bps / 1e6)) + "M_p" +
             std::to_string(info.param.payload);
    });

}  // namespace
}  // namespace dynaq
