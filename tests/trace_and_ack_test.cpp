// Tests for the packet tracer, delayed ACKs and the socket-buffer window
// cap.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "net/node.hpp"
#include "net/packet_trace.hpp"
#include "net/port.hpp"
#include "sim/simulator.hpp"
#include "transport/host_agent.hpp"

namespace dynaq {
namespace {

struct Pipe {
  sim::Simulator sim;
  std::unique_ptr<net::Host> a, b;
  std::unique_ptr<transport::HostAgent> agent_a, agent_b;

  Pipe() {
    auto nic_a = std::make_unique<net::Port>(sim, 1e9, microseconds(std::int64_t{50}),
                                             std::make_unique<net::DropTailQueue>());
    auto nic_b = std::make_unique<net::Port>(sim, 1e9, microseconds(std::int64_t{50}),
                                             std::make_unique<net::DropTailQueue>());
    net::connect(*nic_a, *nic_b);
    a = std::make_unique<net::Host>(sim, 0, std::move(nic_a));
    b = std::make_unique<net::Host>(sim, 1, std::move(nic_b));
    agent_a = std::make_unique<transport::HostAgent>(*a);
    agent_b = std::make_unique<transport::HostAgent>(*b);
  }
};

transport::FlowParams flow_of(std::int64_t bytes) {
  transport::FlowParams p;
  p.id = 1;
  p.src_host = 0;
  p.dst_host = 1;
  p.size_bytes = bytes;
  return p;
}

// ------------------------------------------------------------- tracer --

TEST(PacketTracer, RecordsTransmitAndDeliverWithTimestamps) {
  Pipe pipe;
  telemetry::Hub hub(pipe.sim);
  net::PacketTracer tracer(hub);
  tracer.attach(pipe.a->nic(), "h0.nic");

  const auto params = flow_of(1'460);
  pipe.agent_b->add_receiver(params);
  pipe.agent_a->add_sender(params).start();
  pipe.sim.run();

  // One data packet transmitted from h0; its ACK delivered back to h0.
  ASSERT_GE(tracer.events().size(), 2u);
  const auto& tx = tracer.events().front();
  EXPECT_TRUE(tx.transmit);
  EXPECT_FALSE(tx.is_ack);
  EXPECT_EQ(tx.point, "h0.nic");
  EXPECT_EQ(tx.size, 1'500);
  bool saw_ack_rx = false;
  for (const auto& e : tracer.events()) {
    if (!e.transmit && e.is_ack) {
      saw_ack_rx = true;
      EXPECT_EQ(e.seq, 1'460u);
      EXPECT_GT(e.when, tx.when);
    }
  }
  EXPECT_TRUE(saw_ack_rx);
}

TEST(PacketTracer, FlowFilterExcludesOthers) {
  Pipe pipe;
  telemetry::Hub hub(pipe.sim);
  net::PacketTracer tracer(hub);
  tracer.filter_flow(2);
  tracer.attach(pipe.a->nic(), "h0");
  for (std::uint32_t id = 1; id <= 3; ++id) {
    transport::FlowParams params = flow_of(1'460);
    params.id = id;
    pipe.agent_b->add_receiver(params);
    pipe.agent_a->add_sender(params).start();
  }
  pipe.sim.run();
  ASSERT_FALSE(tracer.events().empty());
  for (const auto& e : tracer.events()) EXPECT_EQ(e.flow, 2u);
}

TEST(PacketTracer, PrintsHumanReadableLines) {
  Pipe pipe;
  telemetry::Hub hub(pipe.sim);
  net::PacketTracer tracer(hub);
  tracer.attach(pipe.a->nic(), "h0");
  const auto params = flow_of(1'460);
  pipe.agent_b->add_receiver(params);
  pipe.agent_a->add_sender(params).start();
  pipe.sim.run();
  std::ostringstream os;
  tracer.print(os);
  EXPECT_NE(os.str().find("h0 tx DATA flow=1 seq=0 size=1500"), std::string::npos);
}

TEST(PacketTracer, TwoTracersOnOneHubBothRecord) {
  // The bus fans out to every subscriber; with the old per-port callback
  // design the second tracer silently clobbered the first.
  Pipe pipe;
  telemetry::Hub hub(pipe.sim);
  net::PacketTracer all(hub);
  net::PacketTracer only_flow2(hub);
  only_flow2.filter_flow(2);
  all.attach(pipe.a->nic(), "h0");
  for (std::uint32_t id = 1; id <= 3; ++id) {
    transport::FlowParams params = flow_of(1'460);
    params.id = id;
    pipe.agent_b->add_receiver(params);
    pipe.agent_a->add_sender(params).start();
  }
  pipe.sim.run();
  ASSERT_FALSE(all.events().empty());
  ASSERT_FALSE(only_flow2.events().empty());
  EXPECT_GT(all.events().size(), only_flow2.events().size());
  for (const auto& e : only_flow2.events()) EXPECT_EQ(e.flow, 2u);
}

// -------------------------------------------------------- delayed ACK --

TEST(DelayedAck, HalvesAckCountOnBulkTransfer) {
  Pipe per_packet;
  {
    const auto params = flow_of(146'000);  // 100 segments
    per_packet.agent_b->add_receiver(params);
    per_packet.agent_a->add_sender(params).start();
    per_packet.sim.run();
  }
  Pipe delayed;
  transport::FlowParams params = flow_of(146'000);
  params.delayed_ack = true;
  auto& rx = delayed.agent_b->add_receiver(params);
  auto& tx = delayed.agent_a->add_sender(params);
  tx.start();
  delayed.sim.run();
  ASSERT_TRUE(tx.complete());
  // ~1 ACK per 2 segments instead of per segment.
  EXPECT_LT(rx.acks_sent(), 60u);
  EXPECT_GE(rx.acks_sent(), 50u);
}

TEST(DelayedAck, LoneSegmentAckedAfterTimeout) {
  Pipe pipe;
  transport::FlowParams params = flow_of(0);  // unbounded: no FIN fast path
  params.delayed_ack = true;
  params.delayed_ack_timeout = microseconds(std::int64_t{400});
  auto& rx = pipe.agent_b->add_receiver(params);
  // Inject a single data segment directly.
  Time acked_at = -1;
  pipe.a->set_packet_handler([&](net::Packet&& p) {
    if (p.is_ack()) acked_at = pipe.sim.now();
  });
  pipe.sim.schedule_at(microseconds(std::int64_t{10}), [&] {
    rx.on_data(net::make_data_packet(1, 0, 1, 0, 1'460));
  });
  pipe.sim.run();
  ASSERT_GT(acked_at, 0);
  // ACK left after the 400 us delayed-ACK timer, not immediately.
  EXPECT_GE(acked_at, microseconds(std::int64_t{410}));
  EXPECT_LT(acked_at, microseconds(std::int64_t{600}));
}

TEST(DelayedAck, OutOfOrderDataAckedImmediately) {
  Pipe pipe;
  transport::FlowParams params = flow_of(0);
  params.delayed_ack = true;
  auto& rx = pipe.agent_b->add_receiver(params);
  int acks = 0;
  pipe.a->set_packet_handler([&](net::Packet&& p) {
    if (p.is_ack()) ++acks;
  });
  // A gap: the second segment is out of order -> immediate dupACK.
  pipe.sim.schedule_at(microseconds(std::int64_t{1}), [&] {
    rx.on_data(net::make_data_packet(1, 0, 1, 2'920, 1'460));
  });
  pipe.sim.run_until(microseconds(std::int64_t{100}));
  EXPECT_EQ(acks, 1) << "out-of-order data must not be delayed";
}

TEST(DelayedAck, CompletesFlows) {
  Pipe pipe;
  transport::FlowParams params = flow_of(50'000);
  params.delayed_ack = true;
  Time done = -1;
  pipe.agent_b->add_receiver(params).on_complete =
      [&](const transport::FlowReceiver& r) { done = r.completion_time(); };
  pipe.agent_a->add_sender(params).start();
  pipe.sim.run();
  EXPECT_GT(done, 0);
}

// ----------------------------------------------------------- rwnd cap --

TEST(WindowCap, BoundsInflightBytes) {
  Pipe pipe;
  transport::FlowParams params = flow_of(0);
  params.stop = milliseconds(std::int64_t{20});
  params.max_window_bytes = 8 * 1460;
  pipe.agent_b->add_receiver(params);
  auto& tx = pipe.agent_a->add_sender(params);
  tx.start();
  // Sample in-flight bytes periodically: never beyond the cap (+1 MSS of
  // slack for the at-least-one-segment rule).
  for (int ms = 1; ms <= 19; ++ms) {
    pipe.sim.schedule_at(milliseconds(static_cast<std::int64_t>(ms)), [&] {
      EXPECT_LE(tx.snd_nxt() - tx.snd_una(), static_cast<std::uint64_t>(9 * 1460));
    });
  }
  pipe.sim.run_until(milliseconds(std::int64_t{20}));
}

TEST(WindowCap, ThroughputIsWindowOverRtt) {
  // cwnd capped at 8 MSS over a ~100us RTT path: throughput ~ 8*1460*8/RTT.
  Pipe pipe;
  transport::FlowParams params = flow_of(0);
  params.stop = milliseconds(std::int64_t{50});
  params.max_window_bytes = 8 * 1460;
  auto& rx = pipe.agent_b->add_receiver(params);
  pipe.agent_a->add_sender(params).start();
  pipe.sim.run_until(milliseconds(std::int64_t{50}));
  const double rtt_s = 112.3e-6;  // 2x50us prop + 12us data serialization
  const double expected = 8 * 1460 / rtt_s;
  const double measured = static_cast<double>(rx.bytes_received()) / 50e-3;
  EXPECT_NEAR(measured / expected, 1.0, 0.1);
}

}  // namespace
}  // namespace dynaq
