// Tests for the fidelity-and-regression report subsystem (DESIGN.md §13).
// Everything here drives src/report through serialized artifacts — fixture
// JSON under tests/data/report plus in-memory documents — never a
// simulator, mirroring how report_gen consumes the build products.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "report/artifacts.hpp"
#include "report/bench_history.hpp"
#include "report/expectation.hpp"
#include "report/json.hpp"
#include "report/markdown.hpp"

namespace report = dynaq::report;

namespace {

std::string data_path(const std::string& name) {
  return std::string(REPORT_TEST_DATA_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

report::SweepDoc load_fixture(const std::string& name) {
  return report::load_sweep_doc(report::parse_json(read_file(data_path(name))), name);
}

const report::Outcome& outcome_of(const std::vector<report::Outcome>& outcomes,
                                  const std::string& id) {
  for (const report::Outcome& o : outcomes) {
    if (o.id == id) return o;
  }
  ADD_FAILURE() << "expectation id not in catalogue: " << id;
  static report::Outcome missing;
  return missing;
}

// A minimal in-memory sweep doc for targeted evaluator tests.
report::SweepDoc make_doc(const std::string& sweep) {
  report::SweepDoc doc;
  doc.path = sweep + ".json";
  doc.schema_version = 5;
  doc.sweep = sweep;
  return doc;
}

report::SweepJob make_job(std::int64_t id, const std::string& scheme, double seed,
                          std::map<std::string, double> metrics) {
  report::SweepJob job;
  job.id = id;
  job.labels["scheme"] = scheme;
  job.numbers["seed"] = seed;
  job.ok = true;
  job.metrics = std::move(metrics);
  return job;
}

// ---------------------------------------------------------------- JSON --

TEST(ReportJson, ParsesScalarsContainersAndEscapes) {
  const report::Json doc = report::parse_json(
      R"({"a":1.5,"b":-2e3,"c":"x\n\"Aé","d":[true,false,null],"e":{}})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.number_or("a", 0.0), 1.5);
  EXPECT_DOUBLE_EQ(doc.number_or("b", 0.0), -2000.0);
  EXPECT_EQ(doc.string_or("c", ""), "x\n\"A\xc3\xa9");
  ASSERT_TRUE(doc.find("d")->is_array());
  EXPECT_EQ(doc.find("d")->as_array().size(), 3u);
  EXPECT_TRUE(doc.find("d")->as_array()[0].as_bool());
  EXPECT_TRUE(doc.find("d")->as_array()[2].is_null());
  EXPECT_TRUE(doc.find("e")->is_object());
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(ReportJson, PreservesObjectKeyOrder) {
  const report::Json doc = report::parse_json(R"({"zebra":1,"apple":2,"mango":3})");
  const report::Json::Object& obj = doc.as_object();
  ASSERT_EQ(obj.size(), 3u);
  EXPECT_EQ(obj[0].first, "zebra");
  EXPECT_EQ(obj[1].first, "apple");
  EXPECT_EQ(obj[2].first, "mango");
}

TEST(ReportJson, ReportsLineAndColumnOnError) {
  try {
    report::parse_json("{\"a\": 1,\n  \"b\": }");
    FAIL() << "expected ParseError";
  } catch (const report::ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_GT(e.column(), 1u);
  }
}

TEST(ReportJson, RejectsTrailingGarbage) {
  EXPECT_THROW(report::parse_json("{} trailing"), report::ParseError);
  EXPECT_THROW(report::parse_json(""), report::ParseError);
}

TEST(ReportJson, JsonlSkipsBlankLinesAndNamesBadLine) {
  const std::vector<report::Json> docs = report::parse_jsonl("{\"a\":1}\n\n{\"b\":2}\n");
  ASSERT_EQ(docs.size(), 2u);
  try {
    report::parse_jsonl("{\"ok\":true}\nnot json\n");
    FAIL() << "expected ParseError";
  } catch (const report::ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

// ----------------------------------------------------------- artifacts --

TEST(ReportArtifacts, LoadsSweepFixture) {
  const report::SweepDoc doc = load_fixture("passing_sweep.json");
  EXPECT_EQ(doc.schema_version, 5);
  EXPECT_EQ(doc.sweep, "fig08_fct_non_ecn");
  ASSERT_EQ(doc.jobs.size(), 6u);
  EXPECT_EQ(doc.failures, 0);
  EXPECT_DOUBLE_EQ(doc.total_wall_ms, 1234.5);
  const report::SweepJob& job = doc.jobs[0];
  EXPECT_EQ(job.labels.at("scheme"), "DynaQ");
  EXPECT_DOUBLE_EQ(job.numbers.at("load"), 0.5);
  EXPECT_DOUBLE_EQ(job.numbers.at("seed"), 1.0);
  EXPECT_TRUE(job.ok);
  EXPECT_DOUBLE_EQ(job.metrics.at("p99_small_ms"), 4.0);
  EXPECT_EQ(job.trajectory_hash, "0x1111111111111111");
  ASSERT_TRUE(job.oracle.has_value());
  EXPECT_EQ(job.oracle->port, "switch:0");
  EXPECT_DOUBLE_EQ(job.oracle->ratio, 1.02);
  ASSERT_EQ(job.oracle->queues.size(), 2u);
  EXPECT_FALSE(doc.jobs[1].oracle.has_value());
  EXPECT_EQ(doc.label_values("scheme"),
            (std::vector<std::string>{"DynaQ", "BestEffort", "PQL"}));
}

TEST(ReportArtifacts, SweepDocDetectionRejectsForeignJson) {
  EXPECT_FALSE(report::looks_like_sweep_doc(report::parse_json(R"({"events":[]})")));
  EXPECT_FALSE(report::looks_like_sweep_doc(report::parse_json("[1,2,3]")));
  EXPECT_THROW(report::load_sweep_doc(report::parse_json("{}"), "x.json"), std::runtime_error);
}

TEST(ReportArtifacts, LoadsBenchCoreFixture) {
  const report::BenchCoreDoc doc = report::load_bench_core_doc(
      report::parse_json(read_file(data_path("bench_core.json"))), "bench_core.json");
  EXPECT_EQ(doc.schema, "dynaq-bench-core-v1");
  EXPECT_EQ(doc.reps, 5);
  ASSERT_EQ(doc.workloads.size(), 3u);
  EXPECT_EQ(doc.workloads[0].name, "chain");  // JSON object order, not sorted
  EXPECT_DOUBLE_EQ(doc.workloads[0].ns_per_event, 20.5);
  ASSERT_TRUE(doc.workloads[0].budget_ns_per_event.has_value());
  EXPECT_DOUBLE_EQ(*doc.workloads[0].budget_ns_per_event, 45.0);
  EXPECT_FALSE(doc.workloads[2].baseline_ns_per_event.has_value());
}

// -------------------------------------------------------- expectations --

TEST(Expectations, CatalogueIdsAreUniqueAndStable) {
  const std::vector<report::Expectation> cat = report::default_catalogue();
  ASSERT_GE(cat.size(), 18u);
  for (std::size_t i = 0; i < cat.size(); ++i) {
    EXPECT_FALSE(cat[i].id.empty());
    EXPECT_FALSE(cat[i].claim.empty());
    for (std::size_t j = i + 1; j < cat.size(); ++j) {
      EXPECT_NE(cat[i].id, cat[j].id);
    }
  }
}

TEST(Expectations, PassingFixturePassesEveryApplicableExpectation) {
  const std::vector<report::SweepDoc> sweeps = {load_fixture("passing_sweep.json")};
  const auto outcomes = report::evaluate(report::default_catalogue(), sweeps);
  for (const report::Outcome& o : outcomes) {
    EXPECT_NE(o.status, report::Status::kFail) << o.id << ": " << o.detail;
  }
  EXPECT_EQ(outcome_of(outcomes, "fidelity.audit_clean").status, report::Status::kPass);
  EXPECT_EQ(outcome_of(outcomes, "fig08.overall_ties_besteffort").status,
            report::Status::kPass);
  EXPECT_EQ(outcome_of(outcomes, "fig08.small_p99_beats_besteffort").status,
            report::Status::kPass);
  EXPECT_EQ(outcome_of(outcomes, "fig08.large_beats_pql").status, report::Status::kPass);
  // Sweeps not among the inputs are skipped, not failed.
  EXPECT_EQ(outcome_of(outcomes, "fig12.dynaq_fair_share").status, report::Status::kSkip);
  EXPECT_EQ(outcome_of(outcomes, "oracle.lqd_within_bound").status, report::Status::kSkip);
}

TEST(Expectations, ViolatingFixtureFailsTheNamedExpectationOnly) {
  const std::vector<report::SweepDoc> sweeps = {load_fixture("violating_sweep.json")};
  const auto outcomes = report::evaluate(report::default_catalogue(), sweeps);
  const report::Outcome& bad = outcome_of(outcomes, "fig08.small_p99_beats_besteffort");
  EXPECT_EQ(bad.status, report::Status::kFail);
  // 85/35 ≈ 2.43 > 1.0: the detail names the judged ratio and its bound.
  EXPECT_NE(bad.detail.find("p99_small_ms"), std::string::npos) << bad.detail;
  EXPECT_EQ(outcome_of(outcomes, "fig08.overall_ties_besteffort").status,
            report::Status::kPass);
  EXPECT_EQ(outcome_of(outcomes, "fidelity.audit_clean").status, report::Status::kPass);
}

TEST(Expectations, SchemeRatioAveragesSeedReplicasFirst) {
  report::SweepDoc doc = make_doc("fig08_fct_non_ecn");
  // Per-seed ratios straddle 1.0 (2.0 and 0.1); the seed-replica means
  // (1.5 vs 2.55) do not. The evaluator must judge means, not per-seed.
  doc.jobs = {make_job(0, "DynaQ", 1, {{"p99_small_ms", 2.0}}),
              make_job(1, "DynaQ", 2, {{"p99_small_ms", 1.0}}),
              make_job(2, "BestEffort", 1, {{"p99_small_ms", 1.0}}),
              make_job(3, "BestEffort", 2, {{"p99_small_ms", 4.1}})};
  report::Expectation e;
  e.id = "test.ratio";
  e.kind = report::ExpectationKind::kSchemeRatio;
  e.sweep = "fig08_fct_non_ecn";
  e.metric = "p99_small_ms";
  e.scheme_a = "DynaQ";
  e.scheme_b = {"BestEffort"};
  e.lo = 0.0;
  e.hi = 1.0;
  const auto outcomes = report::evaluate({e}, {doc});
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].status, report::Status::kPass) << outcomes[0].detail;
}

TEST(Expectations, MinLoadGatesLowLoadPoints) {
  report::SweepDoc doc = make_doc("fig08_fct_non_ecn");
  report::SweepJob low = make_job(0, "DynaQ", 1, {{"p99_small_ms", 9.0}});
  low.numbers["load"] = 0.2;  // violating value, but below min_load
  report::SweepJob low_base = make_job(1, "BestEffort", 1, {{"p99_small_ms", 1.0}});
  low_base.numbers["load"] = 0.2;
  doc.jobs = {low, low_base};
  report::Expectation e;
  e.id = "test.min_load";
  e.kind = report::ExpectationKind::kSchemeRatio;
  e.sweep = "fig08_fct_non_ecn";
  e.metric = "p99_small_ms";
  e.scheme_a = "DynaQ";
  e.scheme_b = {"BestEffort"};
  e.hi = 1.0;
  e.min_load = 0.5;
  const auto outcomes = report::evaluate({e}, {doc});
  EXPECT_EQ(outcomes[0].status, report::Status::kSkip);
}

TEST(Expectations, JobHealthFailsOnFailedJobAndRecordedFailures) {
  report::SweepDoc doc = make_doc("anything");
  report::SweepJob dead = make_job(7, "DynaQ", 1, {});
  dead.ok = false;
  dead.error = "audit: threshold sum 9999 != buffer 12000";
  doc.jobs = {make_job(0, "DynaQ", 1, {{"x", 1.0}}), dead};
  doc.failures = 1;
  report::Expectation e;
  e.id = "test.health";
  e.kind = report::ExpectationKind::kJobHealth;
  const auto outcomes = report::evaluate({e}, {doc});
  EXPECT_EQ(outcomes[0].status, report::Status::kFail);
  EXPECT_NE(outcomes[0].detail.find("job 7"), std::string::npos) << outcomes[0].detail;
}

TEST(Expectations, MetricPairRatioRelatesTwoMetricsOfOneRun) {
  report::SweepDoc doc = make_doc("rob_link_flap");
  doc.jobs = {make_job(0, "DynaQ", 1, {{"recovered_gbps", 0.97}, {"pre_gbps", 1.0}}),
              make_job(1, "DT", 1, {{"recovered_gbps", 0.5}, {"pre_gbps", 1.0}})};
  report::Expectation e;
  e.id = "test.pair";
  e.kind = report::ExpectationKind::kMetricPairRatio;
  e.sweep = "rob_link_flap";
  e.metric = "recovered_gbps";
  e.metric_b = "pre_gbps";
  e.lo = 0.9;
  e.unbounded_above = true;
  const auto outcomes = report::evaluate({e}, {doc});
  EXPECT_EQ(outcomes[0].status, report::Status::kFail);  // DT recovered only 50%
  EXPECT_NE(outcomes[0].detail.find("DT"), std::string::npos) << outcomes[0].detail;
}

TEST(Expectations, OracleBoundChecksRatioAndHarmonicUsesQueueCount) {
  report::SweepDoc doc = make_doc("abl_competitive");
  report::SweepJob job = make_job(0, "Harmonic", 1, {});
  report::OracleBlock oracle;
  oracle.ratio = 3.0;  // > 2.05 flat, but <= 2.05 + ln(8) ≈ 4.13
  oracle.queues.resize(8);
  job.oracle = oracle;
  doc.jobs = {job};
  report::Expectation e;
  e.id = "test.harmonic";
  e.kind = report::ExpectationKind::kOracleBound;
  e.sweep = "abl_competitive";
  e.scheme_a = "Harmonic";
  e.lo = 1.0;
  e.hi = 2.05;
  e.harmonic_bound = true;
  auto outcomes = report::evaluate({e}, {doc});
  EXPECT_EQ(outcomes[0].status, report::Status::kPass) << outcomes[0].detail;
  e.harmonic_bound = false;  // without the ln(n) term the same ratio fails
  outcomes = report::evaluate({e}, {doc});
  EXPECT_EQ(outcomes[0].status, report::Status::kFail);
}

TEST(Expectations, OracleBoundSkipsWhenNoOracleBlocks) {
  report::SweepDoc doc = make_doc("abl_competitive");
  doc.jobs = {make_job(0, "LQD", 1, {{"x", 1.0}})};
  report::Expectation e;
  e.id = "test.no_oracle";
  e.kind = report::ExpectationKind::kOracleBound;
  e.sweep = "abl_competitive";
  e.scheme_a = "LQD";
  e.lo = 1.0;
  e.hi = 1.55;
  const auto outcomes = report::evaluate({e}, {doc});
  EXPECT_EQ(outcomes[0].status, report::Status::kSkip);
}

// ------------------------------------------------------- bench history --

TEST(BenchHistory, RowRoundTripsThroughRenderAndParse) {
  const std::string text = read_file(data_path("history.jsonl"));
  const std::vector<report::HistoryRow> rows = report::parse_history(text);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].rev, "1111aaa");
  EXPECT_EQ(rows[1].seq, 2);
  ASSERT_EQ(rows[1].core.size(), 3u);
  EXPECT_EQ(rows[1].core[2].name, "cancel");
  ASSERT_TRUE(rows[1].sweep.has_value());
  EXPECT_DOUBLE_EQ(rows[1].sweep->total_wall_ms, 1234.5);
  // render ∘ parse is the identity on ledger lines.
  std::string rendered;
  for (const report::HistoryRow& row : rows) rendered += report::render_history_row(row) + "\n";
  EXPECT_EQ(rendered, text);
}

TEST(BenchHistory, AppendsNewRevAndRefreshesSameRevInPlace) {
  report::HistoryRow row;
  row.rev = "aaa1111";
  row.core.push_back(report::BenchWorkload{"chain", 20.0, 0.0, 0, 45.0, {}});
  const std::string one = report::append_history("", row);
  EXPECT_EQ(report::parse_history(one).size(), 1u);
  EXPECT_EQ(report::parse_history(one)[0].seq, 1);

  row.core[0].ns_per_event = 21.0;  // same rev: refresh, don't grow
  const std::string refreshed = report::append_history(one, row);
  const auto refreshed_rows = report::parse_history(refreshed);
  ASSERT_EQ(refreshed_rows.size(), 1u);
  EXPECT_EQ(refreshed_rows[0].seq, 1);
  EXPECT_DOUBLE_EQ(refreshed_rows[0].core[0].ns_per_event, 21.0);

  row.rev = "bbb2222";  // new rev: append; older row is byte-identical
  const std::string two = report::append_history(refreshed, row);
  const auto two_rows = report::parse_history(two);
  ASSERT_EQ(two_rows.size(), 2u);
  EXPECT_EQ(two_rows[1].seq, 2);
  EXPECT_EQ(two.substr(0, refreshed.size()), refreshed);
}

TEST(BenchHistory, RegressionComparatorFlagsFallbacksBudgetsAndFailures) {
  EXPECT_TRUE(report::history_regressions({}).empty());

  report::HistoryRow clean;
  clean.rev = "aaa";
  clean.core.push_back(report::BenchWorkload{"chain", 20.0, 0.0, 0, 45.0, {}});
  EXPECT_TRUE(report::history_regressions({clean}).empty());

  report::HistoryRow bad = clean;
  bad.core[0].heap_fallbacks = 3;                      // hard gate
  bad.core.push_back(report::BenchWorkload{"packet", 70.0, 0.0, 0, 65.0, {}});  // soft budget
  bad.sweep = report::HistoryRow::SweepPerf{"fig08_fct_non_ecn", 4, 1, 100.0};  // hard gate
  const std::vector<std::string> findings = report::history_regressions({clean, bad});
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_NE(findings[0].find("heap_fallbacks"), std::string::npos);
  EXPECT_NE(findings[1].find("ns_budget"), std::string::npos);
  EXPECT_NE(findings[2].find("sweep_failures"), std::string::npos);

  // Only the newest row is judged: an old regression already fixed is clean.
  EXPECT_TRUE(report::history_regressions({bad, clean}).empty());
}

// ------------------------------------------------------------ markdown --

// Golden-file test: the renderer is a pure function of its inputs, so the
// exact bytes are asserted. Regenerate after an intentional format change:
//   REPORT_TEST_REGEN=1 build/tests/report_test --gtest_filter='Markdown.*'
TEST(Markdown, GoldenReport) {
  report::ReportInputs inputs;
  inputs.sweeps.push_back(load_fixture("passing_sweep.json"));
  inputs.outcomes = report::evaluate(report::default_catalogue(), inputs.sweeps);
  const report::BenchCoreDoc core = report::load_bench_core_doc(
      report::parse_json(read_file(data_path("bench_core.json"))), "bench_core.json");
  inputs.bench_core = &core;
  inputs.history = report::parse_history(read_file(data_path("history.jsonl")));
  inputs.bench_findings = report::history_regressions(inputs.history);
  ASSERT_TRUE(inputs.bench_findings.empty());

  const std::string rendered = report::render_markdown_report(inputs);
  const std::string golden_path = data_path("golden_report.md");
  if (std::getenv("REPORT_TEST_REGEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary | std::ios::trunc);
    out << rendered;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  EXPECT_EQ(rendered, read_file(golden_path))
      << "renderer output changed; if intentional, regenerate with REPORT_TEST_REGEN=1";
}

TEST(Markdown, GateFailsOnFailedExpectationOrBenchFinding) {
  report::ReportInputs inputs;
  EXPECT_FALSE(report::gate_failed(inputs));
  report::Outcome o;
  o.status = report::Status::kSkip;
  inputs.outcomes.push_back(o);
  EXPECT_FALSE(report::gate_failed(inputs));
  inputs.outcomes[0].status = report::Status::kFail;
  EXPECT_TRUE(report::gate_failed(inputs));
  inputs.outcomes[0].status = report::Status::kPass;
  inputs.bench_findings.push_back("bench.ns_budget: chain over budget");
  EXPECT_TRUE(report::gate_failed(inputs));
}

TEST(Markdown, RendersFailureBadgeAndDetails) {
  report::ReportInputs inputs;
  inputs.sweeps.push_back(load_fixture("violating_sweep.json"));
  inputs.outcomes = report::evaluate(report::default_catalogue(), inputs.sweeps);
  const std::string rendered = report::render_markdown_report(inputs);
  EXPECT_NE(rendered.find("❌ **FAIL**"), std::string::npos);
  EXPECT_NE(rendered.find("`fig08.small_p99_beats_besteffort`"), std::string::npos);
  EXPECT_NE(rendered.find("Failure details:"), std::string::npos);
}

}  // namespace
