// SACK machinery tests: receiver block advertisement, sender scoreboard
// merging, hole scanning, pipe accounting, and burst-loss recovery without
// RTOs.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "net/node.hpp"
#include "net/port.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "transport/host_agent.hpp"

namespace dynaq {
namespace {

// A two-host pipe with a loss-injection queue on the sender NIC.
class LossQueue final : public net::QueueDisc {
 public:
  explicit LossQueue(std::set<std::uint64_t> drops) : drops_(std::move(drops)) {}
  bool enqueue(net::Packet&& p) override {
    if (!p.is_ack() && drops_.erase(seen_++) > 0) return false;
    return inner_.enqueue(std::move(p));
  }
  std::optional<net::Packet> dequeue() override { return inner_.dequeue(); }
  bool empty() const override { return inner_.empty(); }
  std::int64_t backlog_bytes() const override { return inner_.backlog_bytes(); }

 private:
  std::set<std::uint64_t> drops_;
  std::uint64_t seen_ = 0;
  net::DropTailQueue inner_;
};

struct Pipe {
  sim::Simulator sim;
  std::unique_ptr<net::Host> a, b;
  std::unique_ptr<transport::HostAgent> agent_a, agent_b;
  std::vector<net::Packet> acks_seen;  // sniffed at the sender side

  explicit Pipe(std::set<std::uint64_t> drops = {}) {
    auto nic_a = std::make_unique<net::Port>(sim, 1e9, microseconds(std::int64_t{50}),
                                             std::make_unique<LossQueue>(std::move(drops)));
    auto nic_b = std::make_unique<net::Port>(sim, 1e9, microseconds(std::int64_t{50}),
                                             std::make_unique<net::DropTailQueue>());
    net::connect(*nic_a, *nic_b);
    a = std::make_unique<net::Host>(sim, 0, std::move(nic_a));
    b = std::make_unique<net::Host>(sim, 1, std::move(nic_b));
    agent_a = std::make_unique<transport::HostAgent>(*a);
    agent_b = std::make_unique<transport::HostAgent>(*b);
  }
};

transport::FlowParams flow_of(std::int64_t bytes, bool sack = true) {
  transport::FlowParams p;
  p.id = 1;
  p.src_host = 0;
  p.dst_host = 1;
  p.size_bytes = bytes;
  p.sack = sack;
  p.rto_min = milliseconds(std::int64_t{10});
  return p;
}

TEST(SackReceiver, AdvertisesOutOfOrderBlocks) {
  Pipe pipe({1});  // drop the 2nd data packet
  const auto params = flow_of(14'600);
  pipe.agent_b->add_receiver(params);
  // Sniff ACKs by wrapping the sender host's handler before the agent's
  // sender consumes them: instead, inspect via scoreboard below. Here we
  // directly check the receiver's behaviour through a custom host handler.
  bool saw_sack = false;
  pipe.a->set_packet_handler([&](net::Packet&& p) {
    if (p.is_ack() && p.num_sack > 0) {
      saw_sack = true;
      EXPECT_GT(p.sack[0].start, p.seq) << "SACK blocks lie above the cumulative ACK";
      EXPECT_GT(p.sack[0].end, p.sack[0].start);
    }
  });
  // Drive the receiver manually with out-of-order data.
  auto& rx = pipe.agent_b->add_receiver([] {
    transport::FlowParams q;
    q.id = 2;
    q.src_host = 0;
    q.dst_host = 1;
    q.size_bytes = 10'000;
    return q;
  }());
  net::Packet seg = net::make_data_packet(2, 0, 1, 2'000, 1'000);  // hole at [0,2000)
  rx.on_data(seg);
  pipe.sim.run();
  EXPECT_TRUE(saw_sack);
  EXPECT_EQ(rx.rcv_nxt(), 0u);
}

TEST(SackSender, ScoreboardTracksBlocks) {
  Pipe pipe;
  auto& tx = pipe.agent_a->add_sender(flow_of(0));
  // Feed crafted ACKs directly.
  net::Packet ack = net::make_ack_packet(1, 1, 0, 0);
  ack.num_sack = 2;
  ack.sack[0] = {3'000, 4'500};
  ack.sack[1] = {6'000, 7'500};
  tx.start();
  pipe.sim.run_until(microseconds(std::int64_t{1}));  // emit initial window
  tx.on_ack(ack);
  EXPECT_EQ(tx.sacked_bytes(), 3'000);
  EXPECT_EQ(tx.highest_sacked(), 7'500u);

  // Overlapping block merges.
  net::Packet ack2 = net::make_ack_packet(1, 1, 0, 0);
  ack2.num_sack = 1;
  ack2.sack[0] = {4'000, 6'500};
  tx.on_ack(ack2);
  EXPECT_EQ(tx.sacked_bytes(), 4'500);  // [3000,7500) contiguous
}

TEST(SackSender, CumulativeAckPrunesScoreboard) {
  Pipe pipe;
  auto& tx = pipe.agent_a->add_sender(flow_of(0));
  tx.start();
  pipe.sim.run_until(microseconds(std::int64_t{1}));
  net::Packet ack = net::make_ack_packet(1, 1, 0, 0);
  ack.num_sack = 1;
  ack.sack[0] = {3'000, 6'000};
  tx.on_ack(ack);
  ASSERT_EQ(tx.sacked_bytes(), 3'000);

  net::Packet cum = net::make_ack_packet(1, 1, 0, 4'500);
  tx.on_ack(cum);
  EXPECT_EQ(tx.sacked_bytes(), 1'500) << "bytes below snd_una must be pruned";
  EXPECT_EQ(tx.snd_una(), 4'500u);
}

TEST(SackEndToEnd, BurstLossRecoversWithoutTimeout) {
  // Drop 5 of the first 10 packets: NewReno without SACK would need ~5
  // partial-ACK rounds or an RTO; SACK recovery refills all holes fast.
  Pipe pipe({2, 4, 5, 7, 8});
  const auto params = flow_of(100'000);
  Time done = -1;
  pipe.agent_b->add_receiver(params).on_complete =
      [&](const transport::FlowReceiver& r) { done = r.completion_time(); };
  auto& tx = pipe.agent_a->add_sender(params);
  tx.start();
  pipe.sim.run();
  ASSERT_GT(done, 0);
  EXPECT_EQ(tx.stats().timeouts, 0u) << "SACK must recover the burst without RTO";
  EXPECT_LT(to_milliseconds(done), 5.0);
  EXPECT_GE(tx.stats().retransmissions, 5u);
  EXPECT_LE(tx.stats().retransmissions, 8u) << "no spurious mass retransmission";
}

TEST(SackEndToEnd, NoSackFallsBackToNewReno) {
  Pipe pipe({2, 4, 5, 7, 8});
  const auto params = flow_of(100'000, /*sack=*/false);
  Time done = -1;
  pipe.agent_b->add_receiver(params).on_complete =
      [&](const transport::FlowReceiver& r) { done = r.completion_time(); };
  auto& tx = pipe.agent_a->add_sender(params);
  tx.start();
  pipe.sim.run_until(seconds(std::int64_t{5}));
  ASSERT_GT(done, 0) << "NewReno must still complete";
  // NewReno recovers one hole per RTT (or worse); SACK recovery above was
  // faster or equal.
  EXPECT_GE(tx.stats().retransmissions, 5u);
}

TEST(SackEndToEnd, ManySeedsNeverStall) {
  // Property sweep: random loss patterns must never wedge the connection.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    sim::Rng rng(seed);
    std::set<std::uint64_t> drops;
    for (int i = 0; i < 8; ++i) {
      drops.insert(static_cast<std::uint64_t>(rng.uniform_int(0, 60)));
    }
    Pipe pipe(drops);
    const auto params = flow_of(80'000);
    Time done = -1;
    pipe.agent_b->add_receiver(params).on_complete =
        [&](const transport::FlowReceiver& r) { done = r.completion_time(); };
    pipe.agent_a->add_sender(params).start();
    pipe.sim.run_until(seconds(std::int64_t{30}));
    ASSERT_GT(done, 0) << "seed " << seed << " stalled";
  }
}

}  // namespace
}  // namespace dynaq
