// End-to-end integration tests across sim + net + core + transport + topo:
// real flows over real topologies, checking completion, throughput,
// fairness and work conservation.
#include <gtest/gtest.h>

#include "harness/dynamic_experiment.hpp"
#include "harness/static_experiment.hpp"
#include "sim/simulator.hpp"
#include "stats/fairness.hpp"
#include "topo/leaf_spine.hpp"
#include "topo/star.hpp"
#include "transport/host_agent.hpp"
#include "workload/flow_size_distribution.hpp"

namespace dynaq {
namespace {

topo::StarConfig small_star(core::SchemeKind kind) {
  topo::StarConfig cfg;
  cfg.num_hosts = 5;
  cfg.link_rate_bps = 1e9;
  cfg.link_delay = microseconds(std::int64_t{125});  // ~500 us base RTT
  cfg.buffer_bytes = 85'000;
  cfg.queue_weights = {1, 1, 1, 1};
  cfg.scheme.kind = kind;
  cfg.scheduler = topo::SchedulerKind::kDrr;
  return cfg;
}

TEST(Integration, SingleFlowCompletesWithPlausibleFct) {
  sim::Simulator sim;
  topo::StarTopology topo(sim, small_star(core::SchemeKind::kDynaQ));

  transport::FlowParams params;
  params.id = 1;
  params.src_host = 1;
  params.dst_host = 0;
  params.size_bytes = 1'000'000;  // 1 MB
  params.start = 0;
  params.service_queue = 0;

  Time finish = -1;
  auto& rx = topo.agent(0).add_receiver(params);
  rx.on_complete = [&finish](const transport::FlowReceiver& r) { finish = r.completion_time(); };
  topo.agent(1).add_sender(params).start();

  sim.run_until(seconds(std::int64_t{10}));
  ASSERT_GT(finish, 0);
  // 1 MB at ~0.95 Gbps goodput is ~8.4 ms plus slow-start ramp; anything
  // between the line-rate bound and 3x of it is sane.
  const double fct_ms = to_milliseconds(finish);
  EXPECT_GT(fct_ms, 8.0);
  EXPECT_LT(fct_ms, 30.0);
}

TEST(Integration, SingleLongFlowSaturatesLink) {
  harness::StaticExperimentConfig cfg;
  cfg.star = small_star(core::SchemeKind::kDynaQ);
  cfg.groups = {{.queue = 0, .num_flows = 1, .first_src_host = 1, .num_src_hosts = 1,
                 .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno}};
  cfg.duration = seconds(std::int64_t{2});
  cfg.meter_window = milliseconds(std::int64_t{100});

  const auto result = harness::run_static_experiment(cfg);
  // Skip the ramp-up; later windows should be near line rate (1 Gbps wire).
  const double gbps = result.meter.mean_gbps(0, 5, result.meter.num_windows());
  EXPECT_GT(gbps, 0.95);
  EXPECT_LE(gbps, 1.01);
}

TEST(Integration, DynaQSharesFairlyAcrossUnevenFlowCounts) {
  harness::StaticExperimentConfig cfg;
  cfg.star = small_star(core::SchemeKind::kDynaQ);
  // The Fig. 3 setup: queue 0 has 2 flows, queue 1 has 16 flows.
  cfg.groups = {
      {.queue = 0, .num_flows = 2, .first_src_host = 1, .num_src_hosts = 1,
       .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno},
      {.queue = 1, .num_flows = 16, .first_src_host = 2, .num_src_hosts = 1,
       .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno},
  };
  cfg.duration = seconds(std::int64_t{4});
  cfg.meter_window = milliseconds(std::int64_t{500});

  const auto result = harness::run_static_experiment(cfg);
  const auto last = result.meter.num_windows();
  const double q0 = result.meter.mean_gbps(0, 2, last);
  const double q1 = result.meter.mean_gbps(1, 2, last);
  EXPECT_NEAR(q0, q1, 0.12) << "DynaQ should equalize DRR queues regardless of flow count";
  EXPECT_GT(q0 + q1, 0.90) << "aggregate should stay near line rate";
}

TEST(Integration, BestEffortViolatesFairnessUnderUnevenFlowCounts) {
  harness::StaticExperimentConfig cfg;
  cfg.star = small_star(core::SchemeKind::kBestEffort);
  cfg.groups = {
      {.queue = 0, .num_flows = 2, .first_src_host = 1, .num_src_hosts = 1,
       .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno},
      {.queue = 1, .num_flows = 16, .first_src_host = 2, .num_src_hosts = 1,
       .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno},
  };
  cfg.duration = seconds(std::int64_t{6});

  const auto result = harness::run_static_experiment(cfg);
  const auto last = result.meter.num_windows();
  const double q0 = result.meter.mean_gbps(0, 4, last);
  const double q1 = result.meter.mean_gbps(1, 4, last);
  EXPECT_GT(q1, q0 * 1.25) << "the 16-flow queue should skew the shared buffer in its favour";
}

TEST(Integration, PqlIsNotWorkConservingWithOneActiveQueue) {
  harness::StaticExperimentConfig cfg;
  cfg.star = small_star(core::SchemeKind::kPql);
  // One active queue out of four: PQL caps its buffer at B/4 = 21.25 KB,
  // below the 62.5 KB BDP, so the sawtooth dips below full utilization.
  // Two sender hosts keep the standing queue at the switch port.
  cfg.groups = {{.queue = 0, .num_flows = 2, .first_src_host = 1, .num_src_hosts = 2,
                 .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno}};
  cfg.duration = seconds(std::int64_t{4});

  const auto result = harness::run_static_experiment(cfg);
  const double gbps = result.meter.mean_gbps(0, 2, result.meter.num_windows());
  EXPECT_LT(gbps, 0.96) << "PQL should lose throughput when few queues are active";

  harness::StaticExperimentConfig dq = cfg;
  dq.star = small_star(core::SchemeKind::kDynaQ);
  const auto dq_result = harness::run_static_experiment(dq);
  const double dq_gbps = dq_result.meter.mean_gbps(0, 2, dq_result.meter.num_windows());
  EXPECT_GT(dq_gbps, 0.97) << "DynaQ should stay work-conserving";
  EXPECT_GT(dq_gbps, gbps) << "DynaQ should beat PQL with few active queues";
}

TEST(Integration, DynamicStarFlowsAllComplete) {
  harness::DynamicStarConfig cfg;
  cfg.star = small_star(core::SchemeKind::kDynaQ);
  cfg.star.queue_weights = {1, 1, 1, 1, 1};  // SPQ + 4 DRR
  cfg.star.scheduler = topo::SchedulerKind::kSpqOverDrr;
  cfg.num_flows = 200;
  cfg.load = 0.5;
  cfg.dist = &workload::web_search_workload();
  cfg.seed = 3;

  const auto result = harness::run_dynamic_star_experiment(cfg);
  EXPECT_EQ(result.incomplete, 0u);
  EXPECT_EQ(result.fcts.count(), 200u);
  const auto summary = result.fcts.summarize();
  EXPECT_GT(summary.avg_overall_ms, 0.0);
  EXPECT_GE(summary.p99_small_ms, summary.avg_small_ms * 0.5);
}

TEST(Integration, LeafSpineFlowsCompleteAcrossRacks) {
  harness::DynamicLeafSpineConfig cfg;
  cfg.fabric.num_leaves = 4;
  cfg.fabric.num_spines = 4;
  cfg.fabric.hosts_per_leaf = 4;
  cfg.fabric.queue_weights = {1, 1, 1, 1, 1, 1, 1, 1};
  cfg.fabric.scheme.kind = core::SchemeKind::kDynaQ;
  cfg.num_flows = 150;
  cfg.load = 0.4;
  cfg.seed = 5;

  const auto result = harness::run_dynamic_leaf_spine_experiment(cfg);
  EXPECT_EQ(result.incomplete, 0u);
  EXPECT_EQ(result.fcts.count(), 150u);
}

}  // namespace
}  // namespace dynaq
