// Unit tests for the net module: packets, ports/links, queue disciplines,
// schedulers and the multi-queue qdisc plumbing.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/policies.hpp"
#include "net/fault_injection.hpp"
#include "net/multi_queue_qdisc.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "net/port.hpp"
#include "net/queue_disc.hpp"
#include "net/schedulers.hpp"
#include "sim/simulator.hpp"
#include "telemetry/hub.hpp"

namespace dynaq {
namespace {

net::Packet data_pkt(int queue, std::int32_t payload = 1460) {
  net::Packet p = net::make_data_packet(1, 0, 1, 0, payload);
  p.queue = static_cast<std::uint8_t>(queue);
  return p;
}

// ------------------------------------------------------------- Packet --

TEST(Packet, FlagsSetClearQuery) {
  net::Packet p;
  EXPECT_FALSE(p.has(net::kFlagCe));
  p.set(net::kFlagCe);
  p.set(net::kFlagEct);
  EXPECT_TRUE(p.has(net::kFlagCe));
  p.clear(net::kFlagCe);
  EXPECT_FALSE(p.has(net::kFlagCe));
  EXPECT_TRUE(p.has(net::kFlagEct));
}

TEST(Packet, FactoriesSetSizes) {
  const net::Packet d = net::make_data_packet(7, 1, 2, 100, 1460);
  EXPECT_EQ(d.size, 1500);
  EXPECT_EQ(d.payload, 1460);
  EXPECT_FALSE(d.is_ack());
  const net::Packet a = net::make_ack_packet(7, 2, 1, 1560);
  EXPECT_EQ(a.size, net::kAckBytes);
  EXPECT_TRUE(a.is_ack());
  EXPECT_EQ(a.seq, 1560u);
}

// ----------------------------------------------------------- DropTail --

TEST(DropTailQueue, DropsWhenFull) {
  net::DropTailQueue q(3000);
  EXPECT_TRUE(q.enqueue(data_pkt(0)));   // 1500
  EXPECT_TRUE(q.enqueue(data_pkt(0)));   // 3000
  EXPECT_FALSE(q.enqueue(data_pkt(0)));  // would exceed
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.backlog_bytes(), 3000);
}

TEST(DropTailQueue, UnlimitedWhenZeroCapacity) {
  net::DropTailQueue q(0);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(q.enqueue(data_pkt(0)));
}

TEST(DropTailQueue, FifoOrder) {
  net::DropTailQueue q;
  net::Packet a = data_pkt(0);
  a.seq = 1;
  net::Packet b = data_pkt(0);
  b.seq = 2;
  q.enqueue(std::move(a));
  q.enqueue(std::move(b));
  EXPECT_EQ(q.dequeue()->seq, 1u);
  EXPECT_EQ(q.dequeue()->seq, 2u);
  EXPECT_FALSE(q.dequeue().has_value());
}

// --------------------------------------------------------------- Port --

TEST(Port, SerializationPlusPropagationDelay) {
  sim::Simulator sim;
  auto tx = std::make_unique<net::Port>(sim, 1e9, microseconds(std::int64_t{100}),
                                        std::make_unique<net::DropTailQueue>());
  auto rx = std::make_unique<net::Port>(sim, 1e9, microseconds(std::int64_t{100}),
                                        std::make_unique<net::DropTailQueue>());
  net::connect(*tx, *rx);
  Time delivered = -1;
  rx->set_receiver([&](net::Packet&&) { delivered = sim.now(); });
  tx->send(data_pkt(0));  // 1500 B at 1 Gbps = 12 us, + 100 us propagation
  sim.run();
  EXPECT_EQ(delivered, microseconds(std::int64_t{112}));
}

TEST(Port, BackToBackPacketsSerialize) {
  sim::Simulator sim;
  auto tx = std::make_unique<net::Port>(sim, 1e9, 0, std::make_unique<net::DropTailQueue>());
  auto rx = std::make_unique<net::Port>(sim, 1e9, 0, std::make_unique<net::DropTailQueue>());
  net::connect(*tx, *rx);
  std::vector<Time> arrivals;
  rx->set_receiver([&](net::Packet&&) { arrivals.push_back(sim.now()); });
  tx->send(data_pkt(0));
  tx->send(data_pkt(0));
  tx->send(data_pkt(0));
  sim.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[1] - arrivals[0], microseconds(std::int64_t{12}));
  EXPECT_EQ(arrivals[2] - arrivals[1], microseconds(std::int64_t{12}));
  EXPECT_EQ(tx->packets_sent(), 3u);
  EXPECT_EQ(tx->bytes_sent(), 4500);
}

TEST(Port, NoPeerDropsSilently) {
  sim::Simulator sim;
  net::Port tx(sim, 1e9, 0, std::make_unique<net::DropTailQueue>());
  tx.send(data_pkt(0));
  sim.run();  // must not crash
  EXPECT_EQ(tx.packets_sent(), 1u);
}

// --------------------------------------------------------------- Host --

TEST(Host, DeliversToRegisteredHandler) {
  sim::Simulator sim;
  auto nic_a = std::make_unique<net::Port>(sim, 1e9, 0, std::make_unique<net::DropTailQueue>());
  auto nic_b = std::make_unique<net::Port>(sim, 1e9, 0, std::make_unique<net::DropTailQueue>());
  net::connect(*nic_a, *nic_b);
  net::Host a(sim, 0, std::move(nic_a));
  net::Host b(sim, 1, std::move(nic_b));
  int received = 0;
  b.set_packet_handler([&](net::Packet&& p) {
    ++received;
    EXPECT_EQ(p.payload, 1460);
  });
  a.send(data_pkt(0));
  sim.run();
  EXPECT_EQ(received, 1);
}

// ------------------------------------------------------------- Switch --

TEST(Switch, RoutesThroughConfiguredRouter) {
  sim::Simulator sim;
  net::Switch sw(sim, 0);
  auto p0 = std::make_unique<net::Port>(sim, 1e9, 0, std::make_unique<net::DropTailQueue>());
  auto host_nic = std::make_unique<net::Port>(sim, 1e9, 0, std::make_unique<net::DropTailQueue>());
  net::connect(*p0, *host_nic);
  int delivered = 0;
  host_nic->set_receiver([&](net::Packet&&) { ++delivered; });
  sw.add_port(std::move(p0));
  sw.set_router([](const net::Packet&) { return 0; });
  sw.forward(data_pkt(0));
  sim.run();
  EXPECT_EQ(delivered, 1);
  (void)host_nic;
}

TEST(Switch, NegativeRouteCountsAsRoutingDrop) {
  sim::Simulator sim;
  net::Switch sw(sim, 0);
  sw.set_router([](const net::Packet&) { return -1; });
  sw.forward(data_pkt(0));
  EXPECT_EQ(sw.routing_drops(), 1u);
}

// --------------------------------------------------------- Schedulers --

net::MqState make_state(std::vector<double> weights, std::int64_t buffer = 1'000'000) {
  net::MqState s;
  s.buffer_bytes = buffer;
  s.queues.resize(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) s.queues[i].weight = weights[i];
  return s;
}

void push(net::MqState& s, net::SchedulerPolicy& sched, int q, std::int32_t size = 1500) {
  net::Packet p = data_pkt(q, size - net::kHeaderBytes);
  s.queue(q).bytes += p.size;
  s.port_bytes += p.size;
  s.queue(q).packets.push_back(std::move(p));
  sched.on_enqueue(s, q);
}

net::Packet pop(net::MqState& s, int q) {
  net::Packet p = std::move(s.queue(q).packets.front());
  s.queue(q).packets.pop_front();
  s.queue(q).bytes -= p.size;
  s.port_bytes -= p.size;
  return p;
}

TEST(SpqScheduler, AlwaysPicksHighestPriorityBacklogged) {
  auto s = make_state({1, 1, 1});
  net::SpqScheduler sched;
  push(s, sched, 2);
  push(s, sched, 1);
  EXPECT_EQ(sched.next_queue(s), 1);
  pop(s, 1);
  EXPECT_EQ(sched.next_queue(s), 2);
  pop(s, 2);
  EXPECT_EQ(sched.next_queue(s), -1);
}

TEST(FifoScheduler, GlobalArrivalOrder) {
  auto s = make_state({1, 1});
  net::FifoScheduler sched;
  push(s, sched, 1);
  push(s, sched, 0);
  push(s, sched, 1);
  EXPECT_EQ(sched.next_queue(s), 1);
  pop(s, 1);
  EXPECT_EQ(sched.next_queue(s), 0);
  pop(s, 0);
  EXPECT_EQ(sched.next_queue(s), 1);
}

TEST(DrrScheduler, EqualWeightsAlternate) {
  auto s = make_state({1, 1});
  net::DrrScheduler sched(1500);
  sched.attach(s);
  for (int i = 0; i < 4; ++i) push(s, sched, 0);
  for (int i = 0; i < 4; ++i) push(s, sched, 1);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    const int q = sched.next_queue(s);
    order.push_back(q);
    pop(s, q);
  }
  int q0 = 0;
  for (int i = 0; i < 4; ++i) q0 += order[static_cast<std::size_t>(i)] == 0;
  EXPECT_EQ(q0, 2) << "first 4 dequeues should split 2/2";
}

TEST(DrrScheduler, WeightsRespectedInBytes) {
  auto s = make_state({3, 1});
  net::DrrScheduler sched(1500);
  sched.attach(s);
  for (int i = 0; i < 30; ++i) push(s, sched, 0);
  for (int i = 0; i < 30; ++i) push(s, sched, 1);
  std::int64_t bytes[2] = {0, 0};
  for (int i = 0; i < 24; ++i) {
    const int q = sched.next_queue(s);
    bytes[q] += pop(s, q).size;
  }
  EXPECT_NEAR(static_cast<double>(bytes[0]) / static_cast<double>(bytes[1]), 3.0, 0.6);
}

TEST(DrrScheduler, VariablePacketSizesStayProportional) {
  auto s = make_state({1, 1});
  net::DrrScheduler sched(1500);
  sched.attach(s);
  // Queue 0: many small packets; queue 1: few large ones. DRR must still
  // split *bytes* evenly.
  for (int i = 0; i < 60; ++i) push(s, sched, 0, 500);
  for (int i = 0; i < 20; ++i) push(s, sched, 1, 1500);
  std::int64_t bytes[2] = {0, 0};
  for (int i = 0; i < 40; ++i) {
    const int q = sched.next_queue(s);
    bytes[q] += pop(s, q).size;
  }
  EXPECT_NEAR(static_cast<double>(bytes[0]) / static_cast<double>(bytes[1]), 1.0, 0.25);
}

TEST(DrrScheduler, EmptiedQueueLeavesRound) {
  auto s = make_state({1, 1});
  net::DrrScheduler sched(1500);
  sched.attach(s);
  push(s, sched, 0);
  push(s, sched, 1);
  push(s, sched, 1);
  // Drain everything; scheduler must serve all three packets.
  int served = 0;
  while (true) {
    const int q = sched.next_queue(s);
    if (q < 0) break;
    pop(s, q);
    ++served;
  }
  EXPECT_EQ(served, 3);
  EXPECT_EQ(sched.deficit(0), 0);
}

TEST(WrrScheduler, PacketSlotsFollowWeights) {
  auto s = make_state({2, 1});
  net::WrrScheduler sched;
  sched.attach(s);
  for (int i = 0; i < 30; ++i) push(s, sched, 0);
  for (int i = 0; i < 30; ++i) push(s, sched, 1);
  int count[2] = {0, 0};
  for (int i = 0; i < 30; ++i) {
    const int q = sched.next_queue(s);
    ++count[q];
    pop(s, q);
  }
  EXPECT_NEAR(static_cast<double>(count[0]) / static_cast<double>(count[1]), 2.0, 0.3);
}

TEST(SpqOverScheduler, HighPriorityPreempts) {
  auto s = make_state({1, 1, 1});
  net::SpqOverScheduler sched(std::make_unique<net::DrrScheduler>(1500));
  sched.attach(s);
  push(s, sched, 1);
  push(s, sched, 2);
  push(s, sched, 0);
  EXPECT_EQ(sched.next_queue(s), 0);  // strict high priority first
  pop(s, 0);
  const int q1 = sched.next_queue(s);
  EXPECT_TRUE(q1 == 1 || q1 == 2);
  pop(s, q1);
  push(s, sched, 0);  // arrives mid-round
  EXPECT_EQ(sched.next_queue(s), 0);
}

// ---------------------------------------------------- MultiQueueQdisc --

TEST(MultiQueueQdisc, EnforcesPhysicalBufferBound) {
  sim::Simulator sim;
  net::MultiQueueQdisc qd(sim, {1, 1}, 4500, std::make_unique<core::BestEffortPolicy>(),
                          std::make_unique<net::SpqScheduler>());
  EXPECT_TRUE(qd.enqueue(data_pkt(0)));
  EXPECT_TRUE(qd.enqueue(data_pkt(1)));
  EXPECT_TRUE(qd.enqueue(data_pkt(1)));
  EXPECT_FALSE(qd.enqueue(data_pkt(0)));  // 4x1500 > 4500
  EXPECT_EQ(qd.stats().dropped, 1u);
  EXPECT_EQ(qd.backlog_bytes(), 4500);
}

TEST(MultiQueueQdisc, DequeueFollowsScheduler) {
  sim::Simulator sim;
  net::MultiQueueQdisc qd(sim, {1, 1}, 100'000, std::make_unique<core::BestEffortPolicy>(),
                          std::make_unique<net::SpqScheduler>());
  qd.enqueue(data_pkt(1));
  qd.enqueue(data_pkt(0));
  EXPECT_EQ(qd.dequeue()->queue, 0);
  EXPECT_EQ(qd.dequeue()->queue, 1);
  EXPECT_TRUE(qd.empty());
}

TEST(MultiQueueQdisc, HooksFire) {
  sim::Simulator sim;
  net::MultiQueueQdisc qd(sim, {1}, 1500, std::make_unique<core::BestEffortPolicy>(),
                          std::make_unique<net::SpqScheduler>());
  int deq = 0, drop = 0, ops = 0;
  qd.on_dequeue_hook = [&](int, const net::Packet&, Time) { ++deq; };
  qd.on_drop_hook = [&](int, const net::Packet&, Time) { ++drop; };
  qd.on_op_hook = [&](const net::MqState&, Time) { ++ops; };
  qd.enqueue(data_pkt(0));
  qd.enqueue(data_pkt(0));  // dropped
  qd.dequeue();
  EXPECT_EQ(deq, 1);
  EXPECT_EQ(drop, 1);
  EXPECT_EQ(ops, 3);
}

TEST(MultiQueueQdisc, OutOfRangeQueueClampsToLast) {
  sim::Simulator sim;
  net::MultiQueueQdisc qd(sim, {1, 1}, 100'000, std::make_unique<core::BestEffortPolicy>(),
                          std::make_unique<net::SpqScheduler>());
  qd.enqueue(data_pkt(7));
  EXPECT_EQ(qd.state().queue(1).packets.size(), 1u);
}

TEST(MultiQueueQdisc, RejectsInvalidConfig) {
  sim::Simulator sim;
  EXPECT_THROW(net::MultiQueueQdisc(sim, {}, 1000, std::make_unique<core::BestEffortPolicy>(),
                                    std::make_unique<net::SpqScheduler>()),
               std::invalid_argument);
  EXPECT_THROW(net::MultiQueueQdisc(sim, {1.0}, 0, std::make_unique<core::BestEffortPolicy>(),
                                    std::make_unique<net::SpqScheduler>()),
               std::invalid_argument);
  EXPECT_THROW(net::MultiQueueQdisc(sim, {0.0}, 1000, std::make_unique<core::BestEffortPolicy>(),
                                    std::make_unique<net::SpqScheduler>()),
               std::invalid_argument);
}

TEST(MultiQueueQdisc, SojournTimestampSet) {
  sim::Simulator sim;
  net::MultiQueueQdisc qd(sim, {1}, 100'000, std::make_unique<core::BestEffortPolicy>(),
                          std::make_unique<net::SpqScheduler>());
  sim.schedule_at(microseconds(std::int64_t{50}), [&] { qd.enqueue(data_pkt(0)); });
  sim.run();
  EXPECT_EQ(qd.state().queue(0).packets.front().enqueued_at, microseconds(std::int64_t{50}));
}

// ------------------------------------------- Fault-injection queues --

// set_loss_rate(0.0) must pass every packet: the RNG stream keeps drawing
// (determinism across rate flips) but no draw can fall below zero.
TEST(BernoulliLossQueue, RateZeroAdmitsEverything) {
  sim::Simulator sim;
  telemetry::Hub hub(sim, {.enabled = true});
  net::BernoulliLossQueue q(0.7, /*seed=*/11);
  q.attach_telemetry(hub, "lossy");
  q.set_loss_rate(0.0);
  const int n = 1'000;
  int admitted = 0;
  for (int i = 0; i < n; ++i) {
    if (q.enqueue(data_pkt(0, 100))) {
      ++admitted;
      q.dequeue();
    }
  }
  EXPECT_EQ(admitted, n);
  EXPECT_EQ(q.injected_losses(), 0u);
  EXPECT_EQ(hub.summary().drops(telemetry::DropReason::kInjected), 0u);
}

// set_loss_rate(1.0) must drop every data packet — tagged kInjected, ACKs
// untouched, and the offered = admitted + injected ledger conserved.
TEST(BernoulliLossQueue, RateOneDropsAllDataTaggedInjected) {
  sim::Simulator sim;
  telemetry::Hub hub(sim, {.enabled = true});
  net::BernoulliLossQueue q(0.0, /*seed=*/11);
  q.attach_telemetry(hub, "lossy");
  q.set_loss_rate(1.0);
  const int n = 1'000;
  int admitted = 0;
  for (int i = 0; i < n; ++i) {
    if (q.enqueue(data_pkt(0, 100))) ++admitted;
  }
  EXPECT_EQ(admitted, 0);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.injected_losses(), static_cast<std::uint64_t>(n));
  EXPECT_EQ(admitted + static_cast<int>(q.injected_losses()), n);
  // The injector only touches data packets: ACKs pass even at rate 1.0.
  EXPECT_TRUE(q.enqueue(net::make_ack_packet(1, 0, 1, 100)));
  EXPECT_EQ(hub.summary().drops(telemetry::DropReason::kInjected),
            static_cast<std::uint64_t>(n));
  EXPECT_EQ(hub.summary().drops(telemetry::DropReason::kPortFull), 0u);
}

}  // namespace
}  // namespace dynaq
