// Shared switch-memory pool tests: accounting, qdisc integration, and the
// chip-wide Dynamic Threshold configuration of §II-C.
#include <gtest/gtest.h>

#include <memory>

#include "core/policies.hpp"
#include "net/multi_queue_qdisc.hpp"
#include "net/schedulers.hpp"
#include "net/shared_memory.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace dynaq {
namespace {

net::Packet pkt(int queue, std::int32_t payload = 1460) {
  net::Packet p = net::make_data_packet(1, 0, 1, 0, payload);
  p.queue = static_cast<std::uint8_t>(queue);
  return p;
}

TEST(SharedMemoryPool, ReserveReleaseAccounting) {
  net::SharedMemoryPool pool(10'000);
  EXPECT_EQ(pool.free_bytes(), 10'000);
  EXPECT_TRUE(pool.reserve(4'000));
  EXPECT_TRUE(pool.reserve(6'000));
  EXPECT_FALSE(pool.reserve(1));
  EXPECT_EQ(pool.used_bytes(), 10'000);
  pool.release(4'000);
  EXPECT_EQ(pool.free_bytes(), 4'000);
  EXPECT_THROW(pool.release(7'000), std::logic_error);
  EXPECT_THROW(net::SharedMemoryPool(0), std::invalid_argument);
}

TEST(SharedMemoryPool, TwoPortsCompeteForOnePool) {
  sim::Simulator sim;
  net::SharedMemoryPool pool(6'000);
  net::MultiQueueQdisc a(sim, {1}, 6'000, std::make_unique<core::BestEffortPolicy>(),
                         std::make_unique<net::SpqScheduler>());
  net::MultiQueueQdisc b(sim, {1}, 6'000, std::make_unique<core::BestEffortPolicy>(),
                         std::make_unique<net::SpqScheduler>());
  a.attach_memory_pool(&pool);
  b.attach_memory_pool(&pool);

  EXPECT_TRUE(a.enqueue(pkt(0)));
  EXPECT_TRUE(a.enqueue(pkt(0)));
  EXPECT_TRUE(a.enqueue(pkt(0)));
  EXPECT_TRUE(a.enqueue(pkt(0)));  // pool exhausted by port A
  EXPECT_FALSE(b.enqueue(pkt(0))) << "port B is starved by the shared pool";
  EXPECT_EQ(b.stats().dropped_port_full, 1u);

  // Draining port A frees pool space for port B.
  a.dequeue();
  EXPECT_TRUE(b.enqueue(pkt(0)));
  EXPECT_EQ(pool.used_bytes(), 6'000);
}

TEST(SharedMemoryPool, DequeueAndEvictionRelease) {
  sim::Simulator sim;
  net::SharedMemoryPool pool(20'000);
  net::MultiQueueQdisc qd(sim, {1, 1}, 6'000, std::make_unique<core::DynaQEvictPolicy>(),
                          std::make_unique<net::DrrScheduler>(1500));
  qd.attach_memory_pool(&pool);
  // Fill to the port cap (6000 < pool), then force an eviction via the
  // policy path: queue 1 at 4500 (surplus over S=3000), queue 0 at 1500.
  ASSERT_TRUE(qd.enqueue(pkt(1)));
  ASSERT_TRUE(qd.enqueue(pkt(1)));
  ASSERT_TRUE(qd.enqueue(pkt(1)));
  ASSERT_TRUE(qd.enqueue(pkt(0)));
  EXPECT_EQ(pool.used_bytes(), 6'000);
  ASSERT_TRUE(qd.enqueue(pkt(0)));  // evicts queue 1's tail
  EXPECT_EQ(qd.stats().evicted, 1u);
  EXPECT_EQ(pool.used_bytes(), 6'000) << "eviction released, enqueue re-reserved";
  qd.dequeue();
  EXPECT_EQ(pool.used_bytes(), 4'500);
}

TEST(SharedMemoryPool, ChipWideDtStealsFromQuietPort) {
  // §II-C: DT over a shared pool lets a busy port shrink a quiet port's
  // admission threshold. With 8000 B of pool used by port A, port B's DT
  // threshold is alpha * 2000 free -> a 1500 B packet into an empty queue
  // fits only barely; after A takes 9000, B admits nothing.
  sim::Simulator sim;
  net::SharedMemoryPool pool(10'000);
  auto make_qdisc = [&] {
    auto qd = std::make_unique<net::MultiQueueQdisc>(
        sim, std::vector<double>{1}, 10'000,
        std::make_unique<core::DynamicThresholdPolicy>(1.0, &pool),
        std::make_unique<net::SpqScheduler>());
    qd->attach_memory_pool(&pool);
    return qd;
  };
  auto a = make_qdisc();
  auto b = make_qdisc();
  // A fills until DT rejects: admitted at free 10000/8500/7000 (queue
  // reaching 4500), rejected at 4500+1500 > 5500 free.
  ASSERT_TRUE(a->enqueue(pkt(0)));
  ASSERT_TRUE(a->enqueue(pkt(0)));
  ASSERT_TRUE(a->enqueue(pkt(0)));
  EXPECT_FALSE(a->enqueue(pkt(0)));
  EXPECT_EQ(a->backlog_bytes(), 4'500);
  // B starts empty, but its threshold is already shrunk by A's occupancy:
  // two packets fit (3000 <= 4000 free), the third fails (4500 > 2500).
  EXPECT_TRUE(b->enqueue(pkt(0)));
  EXPECT_TRUE(b->enqueue(pkt(0)));
  EXPECT_FALSE(b->enqueue(pkt(0))) << "B's DT threshold shrank because of A";
  EXPECT_EQ(b->stats().dropped_by_policy, 1u);
}

TEST(SharedMemoryPool, InvariantUnderChurn) {
  sim::Simulator sim;
  sim::Rng rng(23);
  net::SharedMemoryPool pool(30'000);
  std::vector<std::unique_ptr<net::MultiQueueQdisc>> ports;
  for (int i = 0; i < 3; ++i) {
    ports.push_back(std::make_unique<net::MultiQueueQdisc>(
        sim, std::vector<double>{1, 1}, 20'000, std::make_unique<core::DynaQPolicy>(),
        std::make_unique<net::DrrScheduler>(1500)));
    ports.back()->attach_memory_pool(&pool);
  }
  for (int step = 0; step < 30'000; ++step) {
    auto& port = *ports[static_cast<std::size_t>(rng.uniform_int(0, 2))];
    if (rng.uniform() < 0.55) {
      port.enqueue(pkt(static_cast<int>(rng.uniform_int(0, 1)),
                       static_cast<std::int32_t>(rng.uniform_int(60, 1460))));
    } else {
      port.dequeue();
    }
    std::int64_t total = 0;
    for (const auto& p : ports) total += p->backlog_bytes();
    ASSERT_EQ(total, pool.used_bytes()) << "pool accounting must track port backlogs";
    ASSERT_LE(total, 30'000);
  }
}

}  // namespace
}  // namespace dynaq
