// Packet-eviction extension tests (BarberQ-style tail eviction through the
// BufferPolicy::evict_candidate hook).
#include <gtest/gtest.h>

#include <memory>

#include "core/policies.hpp"
#include "core/scheme.hpp"
#include "harness/dynamic_experiment.hpp"
#include "net/multi_queue_qdisc.hpp"
#include "net/schedulers.hpp"
#include "sim/simulator.hpp"
#include "workload/flow_size_distribution.hpp"

namespace dynaq {
namespace {

net::Packet pkt(int queue, std::uint64_t seq = 0, std::int32_t payload = 1460) {
  net::Packet p = net::make_data_packet(1, 0, 1, seq, payload);
  p.queue = static_cast<std::uint8_t>(queue);
  return p;
}

TEST(Eviction, AdmitsArrivalByEvictingSurplusQueue) {
  sim::Simulator sim;
  net::MultiQueueQdisc qd(sim, {1, 1}, 6'000, std::make_unique<core::DynaQEvictPolicy>(),
                          std::make_unique<net::DrrScheduler>(1500));
  // Pin queue 1 at 4500 B (beyond its 3000 B satisfaction) and queue 0 at
  // its raided 1500 B threshold: port full.
  ASSERT_TRUE(qd.enqueue(pkt(1, 0)));
  ASSERT_TRUE(qd.enqueue(pkt(1, 1'460)));
  ASSERT_TRUE(qd.enqueue(pkt(1, 2'920)));
  ASSERT_TRUE(qd.enqueue(pkt(0, 0)));
  ASSERT_EQ(qd.backlog_bytes(), 6'000);

  // Plain DynaQ would drop here (port full); eviction displaces queue 1's
  // tail packet instead.
  EXPECT_TRUE(qd.enqueue(pkt(0, 1'460)));
  EXPECT_EQ(qd.stats().evicted, 1u);
  EXPECT_EQ(qd.state().queue(1).bytes, 3'000);
  EXPECT_EQ(qd.state().queue(0).bytes, 3'000);
  EXPECT_EQ(qd.backlog_bytes(), 6'000);
  EXPECT_EQ(qd.stats().dropped, 0u);
}

TEST(Eviction, EvictsNewestPacketOfVictim) {
  sim::Simulator sim;
  net::MultiQueueQdisc qd(sim, {1, 1}, 6'000, std::make_unique<core::DynaQEvictPolicy>(),
                          std::make_unique<net::DrrScheduler>(1500));
  ASSERT_TRUE(qd.enqueue(pkt(1, 0)));
  ASSERT_TRUE(qd.enqueue(pkt(1, 1'460)));
  ASSERT_TRUE(qd.enqueue(pkt(1, 2'920)));  // tail: seq 2920
  ASSERT_TRUE(qd.enqueue(pkt(0, 0)));
  ASSERT_TRUE(qd.enqueue(pkt(0, 1'460)));  // evicts queue 1's tail

  // Queue 1 must still hold its two oldest packets in order.
  ASSERT_EQ(qd.state().queue(1).packets.size(), 2u);
  EXPECT_EQ(qd.state().queue(1).packets.front().seq, 0u);
  EXPECT_EQ(qd.state().queue(1).packets.back().seq, 1'460u);
}

TEST(Eviction, NeverEvictsBelowSatisfaction) {
  sim::Simulator sim;
  net::MultiQueueQdisc qd(sim, {1, 1}, 6'000, std::make_unique<core::DynaQEvictPolicy>(),
                          std::make_unique<net::DrrScheduler>(1500));
  // Both queues exactly at satisfaction (3000 each): no surplus anywhere.
  ASSERT_TRUE(qd.enqueue(pkt(0, 0)));
  ASSERT_TRUE(qd.enqueue(pkt(0, 1'460)));
  ASSERT_TRUE(qd.enqueue(pkt(1, 0)));
  ASSERT_TRUE(qd.enqueue(pkt(1, 1'460)));
  ASSERT_EQ(qd.backlog_bytes(), 6'000);

  EXPECT_FALSE(qd.enqueue(pkt(0, 2'920))) << "no queue holds surplus to evict";
  EXPECT_EQ(qd.stats().evicted, 0u);
  EXPECT_EQ(qd.state().queue(1).bytes, 3'000);
}

TEST(Eviction, EvictedBytesCountAsDropsForTransport) {
  // End-to-end: eviction must look like loss to the sender (retransmitted)
  // and flows still complete.
  harness::DynamicStarConfig cfg;
  cfg.star.num_hosts = 5;
  cfg.star.queue_weights = {1, 1, 1, 1, 1};
  cfg.star.scheme.kind = core::SchemeKind::kDynaQEvict;
  cfg.star.scheduler = topo::SchedulerKind::kSpqOverDrr;
  cfg.num_flows = 300;
  cfg.load = 0.7;
  cfg.dist = &workload::web_search_workload();
  cfg.seed = 3;
  const auto r = harness::run_dynamic_star_experiment(cfg);
  EXPECT_EQ(r.incomplete, 0u);
  EXPECT_GT(r.bottleneck.evicted, 0u) << "the scenario should exercise eviction";
}

TEST(Eviction, SchemeRoundTrip) {
  EXPECT_EQ(core::parse_scheme("DynaQ+Evict"), core::SchemeKind::kDynaQEvict);
  core::SchemeSpec spec;
  spec.kind = core::SchemeKind::kDynaQEvict;
  EXPECT_EQ(core::make_policy(spec)->name(), "dynaq+evict");
  EXPECT_FALSE(core::scheme_uses_ecn(core::SchemeKind::kDynaQEvict));
}

TEST(Eviction, InvariantsHoldUnderChurn) {
  sim::Simulator sim;
  sim::Rng rng(17);
  net::MultiQueueQdisc qd(sim, {1, 1, 1, 1}, 40'000, std::make_unique<core::DynaQEvictPolicy>(),
                          std::make_unique<net::DrrScheduler>(1500));
  auto& policy = dynamic_cast<core::DynaQEvictPolicy&>(qd.policy());
  for (int step = 0; step < 40'000; ++step) {
    if (rng.uniform() < 0.6) {
      qd.enqueue(pkt(static_cast<int>(rng.uniform_int(0, 3)), 0,
                     static_cast<std::int32_t>(rng.uniform_int(60, 1460))));
    } else {
      qd.dequeue();
    }
    ASSERT_LE(qd.backlog_bytes(), 40'000);
    ASSERT_EQ(policy.controller().threshold_sum(), 40'000);
    // Byte accounting must match the actual queue contents.
    std::int64_t total = 0;
    for (int i = 0; i < 4; ++i) {
      std::int64_t bytes = 0;
      for (const auto& buffered : qd.state().queue(i).packets) bytes += buffered.size;
      ASSERT_EQ(bytes, qd.state().queue(i).bytes);
      total += bytes;
    }
    ASSERT_EQ(total, qd.backlog_bytes());
  }
}

}  // namespace
}  // namespace dynaq
