// Deep property tests of DynaQ's semantics: conservation under interleaved
// arrivals and departures, weighted-share guarantees at the controller
// level, victim-protection soundness, and cross-checks between the policy
// and a reference model.
#include <gtest/gtest.h>

#include <vector>

#include "core/dynaq_controller.hpp"
#include "sim/random.hpp"

namespace dynaq {
namespace {

using core::DynaQConfig;
using core::DynaQController;
using core::Verdict;

// A reference model of Algorithm 1 written as naively as possible (linear
// search, explicit branches) for differential testing against the
// optimized controller.
class ReferenceDynaQ {
 public:
  ReferenceDynaQ(std::int64_t buffer, std::vector<double> weights)
      : buffer_(buffer), weights_(std::move(weights)) {
    double sum = 0;
    for (double w : weights_) sum += w;
    std::int64_t assigned = 0;
    std::size_t largest = 0;
    for (std::size_t i = 0; i < weights_.size(); ++i) {
      t_.push_back(static_cast<std::int64_t>(
          std::floor(static_cast<double>(buffer) * weights_[i] / sum)));
      s_.push_back(t_.back());
      assigned += t_.back();
      if (weights_[i] > weights_[largest]) largest = i;
    }
    t_[largest] += buffer - assigned;
    s_[largest] = t_[largest];
  }

  Verdict arrival(const std::vector<std::int64_t>& q, int p, std::int32_t size) {
    if (q[static_cast<std::size_t>(p)] + size <= t_[static_cast<std::size_t>(p)]) {
      return Verdict::kAdmit;
    }
    int v = -1;
    std::int64_t best = std::numeric_limits<std::int64_t>::min();
    for (int i = 0; i < static_cast<int>(t_.size()); ++i) {
      if (i == p) continue;
      const std::int64_t extra = t_[static_cast<std::size_t>(i)] - s_[static_cast<std::size_t>(i)];
      if (extra > best) {
        best = extra;
        v = i;
      }
    }
    if (v < 0) return Verdict::kDrop;
    const auto vi = static_cast<std::size_t>(v);
    if (t_[vi] < size || (q[vi] > 0 && t_[vi] - size < s_[vi])) return Verdict::kDrop;
    t_[vi] -= size;
    t_[static_cast<std::size_t>(p)] += size;
    if (q[static_cast<std::size_t>(p)] + size > t_[static_cast<std::size_t>(p)]) {
      t_[static_cast<std::size_t>(p)] -= size;
      t_[vi] += size;
      return Verdict::kDrop;
    }
    return Verdict::kAdjusted;
  }

  std::int64_t threshold(int i) const { return t_[static_cast<std::size_t>(i)]; }

 private:
  std::int64_t buffer_;
  std::vector<double> weights_;
  std::vector<std::int64_t> t_;
  std::vector<std::int64_t> s_;
};

TEST(DynaQDifferential, OptimizedMatchesReferenceModel) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sim::Rng rng(seed);
    const int m = static_cast<int>(rng.uniform_int(2, 8));
    std::vector<double> weights;
    for (int i = 0; i < m; ++i) weights.push_back(static_cast<double>(rng.uniform_int(1, 4)));
    const std::int64_t buffer = rng.uniform_int(20'000, 200'000);

    DynaQConfig cfg;
    cfg.buffer_bytes = buffer;
    cfg.weights = weights;
    DynaQController ctl(cfg);
    ReferenceDynaQ ref(buffer, weights);

    std::vector<std::int64_t> q(static_cast<std::size_t>(m), 0);
    for (int step = 0; step < 30'000; ++step) {
      for (auto& v : q) v = rng.uniform_int(0, buffer / m);
      const int p = static_cast<int>(rng.uniform_int(0, m - 1));
      const auto size = static_cast<std::int32_t>(rng.uniform_int(60, 9'000));
      const auto got = ctl.on_arrival(q, p, size);
      const auto expected = ref.arrival(q, p, size);
      ASSERT_EQ(got, expected) << "seed=" << seed << " step=" << step;
      for (int i = 0; i < m; ++i) {
        ASSERT_EQ(ctl.threshold(i), ref.threshold(i)) << "seed=" << seed << " step=" << step;
      }
    }
  }
}

TEST(DynaQProperty, SatisfiedQueueAlwaysAdmitsUpToItsShare) {
  // The core guarantee behind weighted fair sharing: a queue whose
  // occupancy is below its satisfaction threshold must ALWAYS be able to
  // buffer the next packet (either under threshold, or by reclaiming from
  // whoever borrowed) — as long as no queue is above its own occupancy
  // bound (q_i <= T_i, which strict admission maintains).
  sim::Rng rng(4);
  DynaQConfig cfg;
  cfg.buffer_bytes = 100'000;
  cfg.weights = {1, 1, 1, 1};
  DynaQController ctl(cfg);

  // Occupancies tracked consistently: enqueue when admitted, random drains.
  std::vector<std::int64_t> q(4, 0);
  int protected_admits = 0;
  for (int step = 0; step < 50'000; ++step) {
    const int p = static_cast<int>(rng.uniform_int(0, 3));
    const std::int32_t size = 1'500;
    const auto verdict = ctl.on_arrival(q, p, size);
    const bool under_satisfaction = q[static_cast<std::size_t>(p)] + size <= ctl.satisfaction(p);
    if (verdict != Verdict::kDrop) {
      q[static_cast<std::size_t>(p)] += size;
    } else {
      ASSERT_FALSE(under_satisfaction)
          << "a queue below its satisfaction threshold must never be refused (step " << step
          << ")";
    }
    if (under_satisfaction && verdict != Verdict::kDrop) ++protected_admits;
    // Random drains keep the system live.
    for (auto& v : q) {
      if (rng.uniform() < 0.4 && v >= 1'500) v -= 1'500;
    }
  }
  EXPECT_GT(protected_admits, 1'000);
}

TEST(DynaQProperty, ThresholdsTrackDemandShifts) {
  // A queue that goes idle is gradually raided; when it becomes busy again
  // it reclaims at least its satisfaction threshold.
  DynaQConfig cfg;
  cfg.buffer_bytes = 80'000;
  cfg.weights = {1, 1};
  DynaQController ctl(cfg);
  std::vector<std::int64_t> q(2, 0);

  // Phase 1: queue 1 idle, queue 0 grabs everything it can.
  while (true) {
    const auto verdict = ctl.on_arrival(q, 0, 1'000);
    if (verdict == Verdict::kDrop) break;
    q[0] += 1'000;
  }
  EXPECT_GT(ctl.threshold(0), 70'000);
  EXPECT_LT(ctl.threshold(1), 10'000);

  // Phase 2: queue 1 becomes active; as queue 0 drains, queue 1 reclaims.
  while (q[0] > 0) {
    q[0] -= 1'000;  // queue 0 drains and sends nothing new
    const auto verdict = ctl.on_arrival(q, 1, 1'000);
    if (verdict != Verdict::kDrop) q[1] += 1'000;
  }
  EXPECT_GE(ctl.threshold(1), ctl.satisfaction(1))
      << "an active queue must reclaim at least its satisfaction threshold";
  EXPECT_GE(q[1], ctl.satisfaction(1) - 1'000);
}

TEST(DynaQProperty, WeightedSharesScaleWithWeights) {
  for (const auto& weights : std::vector<std::vector<double>>{
           {1, 1}, {3, 1}, {4, 3, 2, 1}, {8, 4, 2, 1, 1}}) {
    DynaQConfig cfg;
    cfg.buffer_bytes = 120'000;
    cfg.weights = weights;
    DynaQController ctl(cfg);
    double sum = 0;
    for (double w : weights) sum += w;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      const double expected = 120'000.0 * weights[i] / sum;
      EXPECT_NEAR(static_cast<double>(ctl.satisfaction(static_cast<int>(i))), expected, 2.0);
    }
  }
}

}  // namespace
}  // namespace dynaq
