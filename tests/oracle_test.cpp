// dynaq::oracle (DESIGN.md §12): the offline-optimal solver on hand-built
// traces, trace recording through the telemetry hub on a live switch port,
// the clairvoyant-bound guarantee (OPT >= policy on the identical arrival
// sequence) across every registered scheme, the literature sanity checks
// (DT loses >1x to the oracle on an adversarial burst; LQD stays within
// its 1.5-competitive bound), and record/replay determinism — repeat runs
// and any sweep worker count must produce byte-identical oracle reports.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/scheme.hpp"
#include "harness/dynamic_experiment.hpp"
#include "net/packet.hpp"
#include "net/port.hpp"
#include "net/queue_disc.hpp"
#include "oracle/offline_optimal.hpp"
#include "oracle/report.hpp"
#include "oracle/trace_recorder.hpp"
#include "sim/simulator.hpp"
#include "sweep/sweep_runner.hpp"
#include "telemetry/hub.hpp"
#include "topo/scheduler_factory.hpp"
#include "workload/flow_size_distribution.hpp"

namespace dynaq {
namespace {

using oracle::TraceEventKind;

// ---- solver on hand-built traces --------------------------------------

oracle::ArrivalTrace base_trace() {
  oracle::ArrivalTrace trace;
  trace.port = "sw.p0";
  trace.line_rate_bps = 8e9;  // 1 byte per nanosecond
  trace.buffer_bytes = 3'000;
  trace.weights = {1.0, 1.0};
  trace.horizon = microseconds(std::int64_t{10});
  return trace;
}

TEST(OfflineOptimal, ServesWholeOfferedLoadWithinHorizon) {
  // 1000 B admitted + 500 B dropped at t=0; the policy drains only the
  // admitted 1000 B. At 1 B/ns the oracle fits all 1500 B well inside the
  // 10 us horizon, so OPT = offered and the ratio is exactly 1.5.
  auto trace = base_trace();
  trace.events = {{0, TraceEventKind::kAdmit, 0, 1'000},
                  {0, TraceEventKind::kDrop, 0, 500},
                  {microseconds(std::int64_t{1}), TraceEventKind::kDrain, 0, 1'000}};
  const auto res = oracle::OfflineOptimal::solve(trace);
  EXPECT_EQ(res.offered_bytes, 1'500);
  EXPECT_EQ(res.policy_bytes, 1'000);
  EXPECT_EQ(res.arrivals, 2u);
  EXPECT_EQ(res.policy_drops, 1u);
  EXPECT_EQ(res.opt_pushouts, 0u);
  EXPECT_NEAR(res.optimal_bytes, 1'500.0, 1.0);

  const auto report = oracle::evaluate(trace);
  EXPECT_NEAR(report.ratio, 1.5, 1e-3);
  ASSERT_EQ(report.queues.size(), 2u);
  EXPECT_EQ(report.queues[0].offered_bytes, 1'500);
}

TEST(OfflineOptimal, PushesOutWhenOfferedLoadExceedsCapacity) {
  // Three simultaneous 2000 B arrivals against B = 3000: capacity is B plus
  // one 2000 B serializer slot = 5000, so even clairvoyance holds only
  // 5000 B — the oracle pushes the remaining 1000 B out.
  auto trace = base_trace();
  trace.events = {{0, TraceEventKind::kAdmit, 0, 2'000},
                  {0, TraceEventKind::kAdmit, 1, 2'000},
                  {0, TraceEventKind::kAdmit, 0, 2'000}};
  const auto res = oracle::OfflineOptimal::solve(trace);
  EXPECT_EQ(res.offered_bytes, 6'000);
  EXPECT_GE(res.opt_pushouts, 1u);
  EXPECT_NEAR(res.opt_pushout_bytes, 1'000.0, 1.0);
  EXPECT_NEAR(res.optimal_bytes, 5'000.0, 1.0);
}

TEST(OfflineOptimal, HorizonExtendsToCoverRecordedDrains) {
  // A drain whose serialization ends after the nominal horizon must still
  // fit in the oracle's service budget — otherwise OPT < policy would be
  // reportable, breaking the bound.
  auto trace = base_trace();
  trace.horizon = 0;
  trace.events = {{0, TraceEventKind::kAdmit, 0, 2'000},
                  {0, TraceEventKind::kDrain, 0, 1'000},
                  {microseconds(std::int64_t{1}), TraceEventKind::kDrain, 0, 1'000}};
  const auto res = oracle::OfflineOptimal::solve(trace);
  EXPECT_EQ(res.policy_bytes, 2'000);
  EXPECT_GE(res.optimal_bytes + 1e-6, 2'000.0);
}

TEST(OfflineOptimal, FingerprintIsStableAndContentSensitive) {
  auto a = base_trace();
  a.events = {{0, TraceEventKind::kAdmit, 0, 1'000}};
  auto b = a;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.events[0].bytes = 1'001;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

// ---- recording from a live port ---------------------------------------

// A single audited switch egress port driven by hand: packets pushed
// straight into the qdisc-backed net::Port, drains recorded off the wire
// taps, horizon closed at sim.now(). This is the oracle's whole input
// surface — no queue internals touched (conventions rule 12).
struct PortRig {
  sim::Simulator sim;
  telemetry::Hub hub{sim, {.enabled = true}};
  std::unique_ptr<net::Port> port;
  std::unique_ptr<net::Port> sink;
  std::optional<oracle::ArrivalTraceRecorder> recorder;

  PortRig(core::SchemeKind kind, std::vector<double> weights, std::int64_t buffer_bytes,
          double rate_bps) {
    core::SchemeSpec spec;
    spec.kind = kind;
    spec.audit = true;  // contract violations throw and fail the test
    auto qdisc = core::make_mq_qdisc(sim, weights, buffer_bytes, spec,
                                     topo::make_scheduler(topo::SchedulerKind::kDrr));
    port = std::make_unique<net::Port>(sim, rate_bps, 0, std::move(qdisc));
    sink = std::make_unique<net::Port>(sim, rate_bps, 0, std::make_unique<net::DropTailQueue>());
    net::connect(*port, *sink);
    port->attach_telemetry(hub, "sw.p0");
    recorder.emplace(hub, oracle::TraceRecorderConfig{"sw.p0", rate_bps, buffer_bytes,
                                                      std::move(weights)});
  }

  void burst(int queue, int count, std::int32_t payload) {
    for (int i = 0; i < count; ++i) {
      auto p = net::make_data_packet(static_cast<std::uint32_t>(queue), 0, 1,
                                     static_cast<std::uint64_t>(i) * 1'460, payload);
      p.queue = static_cast<std::uint8_t>(queue);
      port->send(std::move(p));
    }
  }

  oracle::Report finish(Time run_until) {
    sim.schedule_at(run_until, [] {});
    sim.run();
    recorder->set_horizon(sim.now());
    return oracle::evaluate(recorder->trace());
  }
};

TEST(OracleRecording, DtAdversarialBurstLosesToOracle) {
  // DT with alpha=1 caps a lone bursty queue at B/2: the other queue is
  // idle, yet half the buffer stays off limits. The clairvoyant allocator
  // keeps the whole buffer, so with slack time after the burst it delivers
  // close to 2x the policy's bytes.
  PortRig rig(core::SchemeKind::kDynamicThreshold, {1.0, 1.0}, 30'000, 1e8);
  rig.burst(/*queue=*/0, /*count=*/40, /*payload=*/1'460);
  const auto report = rig.finish(milliseconds(std::int64_t{5}));
  EXPECT_GT(report.policy_drops, 0u);
  EXPECT_GE(report.ratio, 1.2) << "DT should strand buffer on a one-queue burst";
  EXPECT_LE(report.ratio, 2.1);
  EXPECT_GE(report.optimal_bytes + 1e-6,
            static_cast<double>(report.policy_bytes));
}

TEST(OracleRecording, LqdStaysWithinItsCompetitiveBound) {
  // Matsakis-style pressure: a steady stream on queue 0 while queue 1
  // bursts past the buffer repeatedly. LQD is 1.5-competitive, so the
  // measured ratio must stay under 1.5 (+ slack for the fluid relaxation
  // of the oracle) — and >= 1 by the work-conservation bound.
  PortRig rig(core::SchemeKind::kLongestQueueDrop, {1.0, 1.0}, 20'000, 1e9);
  rig.burst(/*queue=*/0, /*count=*/12, /*payload=*/1'460);
  for (int wave = 1; wave <= 4; ++wave) {
    rig.sim.schedule_at(microseconds(std::int64_t{100} * wave), [&rig] {
      rig.burst(/*queue=*/1, /*count=*/20, /*payload=*/1'460);
      rig.burst(/*queue=*/0, /*count=*/6, /*payload=*/1'460);
    });
  }
  const auto report = rig.finish(milliseconds(std::int64_t{3}));
  EXPECT_GT(report.policy_drops, 0u);
  EXPECT_GE(report.ratio, 1.0 - 1e-9);
  EXPECT_LE(report.ratio, 1.55);
}

// ---- end-to-end through the harness -----------------------------------

harness::DynamicStarConfig small_star(core::SchemeKind kind, std::uint64_t seed) {
  harness::DynamicStarConfig cfg;
  cfg.star.num_hosts = 5;
  cfg.star.queue_weights = {1, 1, 1, 1, 1};
  cfg.star.scheme.kind = kind;
  cfg.star.scheduler = topo::SchedulerKind::kSpqOverDrr;
  cfg.client_host = 0;
  cfg.num_servers = 4;
  cfg.num_flows = 80;
  cfg.load = 0.8;
  cfg.dist = &workload::web_search_workload();
  cfg.pias = true;
  cfg.pias_threshold_bytes = 100'000;
  cfg.first_service_queue = 1;
  cfg.seed = seed;
  cfg.oracle_competitive = true;
  return cfg;
}

TEST(OracleHarness, OptimalDominatesEveryPolicyOnItsOwnTrace) {
  for (const auto kind :
       {core::SchemeKind::kDynaQ, core::SchemeKind::kDynamicThreshold,
        core::SchemeKind::kLongestQueueDrop, core::SchemeKind::kHarmonic,
        core::SchemeKind::kBestEffort}) {
    const auto r = harness::run_dynamic_star_experiment(small_star(kind, 3));
    ASSERT_TRUE(r.oracle.has_value()) << core::scheme_name(kind);
    EXPECT_GT(r.oracle->trace_events, 0u) << core::scheme_name(kind);
    EXPECT_GE(r.oracle->optimal_bytes + 1e-6,
              static_cast<double>(r.oracle->policy_bytes))
        << core::scheme_name(kind);
    EXPECT_GE(r.oracle->ratio, 1.0 - 1e-9) << core::scheme_name(kind);
  }
}

TEST(OracleHarness, RecordReplayIsBitIdenticalAcrossRepeatRuns) {
  const auto cfg = small_star(core::SchemeKind::kDynaQ, 7);
  const auto a = harness::run_dynamic_star_experiment(cfg);
  const auto b = harness::run_dynamic_star_experiment(cfg);
  ASSERT_TRUE(a.oracle.has_value());
  ASSERT_TRUE(b.oracle.has_value());
  EXPECT_EQ(a.oracle->trace_fingerprint, b.oracle->trace_fingerprint);
  EXPECT_EQ(a.oracle->trace_events, b.oracle->trace_events);
  EXPECT_EQ(a.oracle->policy_bytes, b.oracle->policy_bytes);
  EXPECT_EQ(a.oracle->optimal_bytes, b.oracle->optimal_bytes);  // bit-exact
  EXPECT_EQ(a.oracle->ratio, b.oracle->ratio);
  // Recording must not perturb the run itself (wire taps stay outside the
  // hub fingerprint).
  EXPECT_EQ(a.trajectory_hash, b.trajectory_hash);

  const auto c = harness::run_dynamic_star_experiment(
      small_star(core::SchemeKind::kDynaQ, 8));
  ASSERT_TRUE(c.oracle.has_value());
  EXPECT_NE(a.oracle->trace_fingerprint, c.oracle->trace_fingerprint)
      << "different seeds must record different traces";
}

TEST(OracleHarness, SweepJsonIsByteIdenticalForAnyWorkerCount) {
  sweep::SweepSpec spec;
  spec.axes = {sweep::Axis::labels("scheme", {"DynaQ", "LQD"}),
               sweep::Axis::numeric("seed", {1, 2})};
  const auto job = [](const sweep::JobPoint& point) {
    auto cfg = small_star(core::parse_scheme(point.label("scheme")),
                          static_cast<std::uint64_t>(point.number("seed")));
    cfg.num_flows = 40;
    auto r = harness::run_dynamic_star_experiment(cfg);
    sweep::JobResult out{{{"ratio", r.oracle->ratio}}};
    out.trajectory_hash = r.trajectory_hash;
    out.oracle = std::move(r.oracle);
    return out;
  };
  const auto serial = sweep::SweepRunner({.jobs = 1}).run("oracle_sweep", spec, job);
  const auto parallel = sweep::SweepRunner({.jobs = 4}).run("oracle_sweep", spec, job);
  const sweep::JsonOptions no_perf{.include_perf = false};
  EXPECT_EQ(serial.to_json(no_perf), parallel.to_json(no_perf));
  EXPECT_NE(serial.to_json(no_perf).find("\"oracle\""), std::string::npos);
}

}  // namespace
}  // namespace dynaq
