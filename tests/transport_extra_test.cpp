// Additional transport coverage: RTO backoff dynamics, PIAS end-to-end
// queue tagging, receiver robustness against duplication/reordering,
// congestion-control property sweeps, and TNA-stale DynaQ behaviour.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/policies.hpp"
#include "net/fault_injection.hpp"
#include "net/multi_queue_qdisc.hpp"
#include "net/node.hpp"
#include "net/port.hpp"
#include "net/schedulers.hpp"
#include "sim/simulator.hpp"
#include "transport/cubic.hpp"
#include "transport/dctcp.hpp"
#include "transport/host_agent.hpp"
#include "transport/newreno.hpp"

namespace dynaq {
namespace {

struct Pipe {
  sim::Simulator sim;
  std::unique_ptr<net::Host> a, b;
  std::unique_ptr<transport::HostAgent> agent_a, agent_b;

  explicit Pipe(std::unique_ptr<net::QueueDisc> tx_qdisc =
                    std::make_unique<net::DropTailQueue>()) {
    auto nic_a = std::make_unique<net::Port>(sim, 1e9, microseconds(std::int64_t{50}),
                                             std::move(tx_qdisc));
    auto nic_b = std::make_unique<net::Port>(sim, 1e9, microseconds(std::int64_t{50}),
                                             std::make_unique<net::DropTailQueue>());
    net::connect(*nic_a, *nic_b);
    a = std::make_unique<net::Host>(sim, 0, std::move(nic_a));
    b = std::make_unique<net::Host>(sim, 1, std::move(nic_b));
    agent_a = std::make_unique<transport::HostAgent>(*a);
    agent_b = std::make_unique<transport::HostAgent>(*b);
  }
};

transport::FlowParams flow_of(std::int64_t bytes) {
  transport::FlowParams p;
  p.id = 1;
  p.src_host = 0;
  p.dst_host = 1;
  p.size_bytes = bytes;
  p.rto_min = milliseconds(std::int64_t{10});
  return p;
}

// ------------------------------------------------------------ backoff --

TEST(RtoBackoff, DoublesOnRepeatedTimeouts) {
  // Drop the only data packet and all its retransmissions for a while: the
  // gaps between retransmissions must follow RTOmin * 2^k.
  Pipe pipe(std::make_unique<net::DeterministicLossQueue>(
      std::set<std::uint64_t>{0, 1, 2, 3}));
  transport::FlowParams params = flow_of(1'000);  // single packet flow
  params.initial_srtt = microseconds(std::int64_t{200});
  pipe.agent_b->add_receiver(params);
  auto& tx = pipe.agent_a->add_sender(params);
  tx.start();
  pipe.sim.run_until(seconds(std::int64_t{2}));
  EXPECT_TRUE(tx.complete());
  // Timeouts at ~10, 30 (=10+20), 70, 150 ms: four losses -> 4 timeouts.
  EXPECT_EQ(tx.stats().timeouts, 4u);
}

TEST(RtoBackoff, ResetsAfterProgress) {
  Pipe pipe(std::make_unique<net::DeterministicLossQueue>(std::set<std::uint64_t>{0, 1}));
  transport::FlowParams params = flow_of(20'000);
  params.initial_srtt = microseconds(std::int64_t{200});
  pipe.agent_b->add_receiver(params);
  auto& tx = pipe.agent_a->add_sender(params);
  tx.start();
  pipe.sim.run_until(seconds(std::int64_t{2}));
  ASSERT_TRUE(tx.complete());
  // After the two early timeouts the rest of the flow proceeds promptly:
  // no runaway backoff once ACKs flow again.
  EXPECT_LE(tx.stats().timeouts, 3u);
}

// ---------------------------------------------------------------- PIAS --

// Counts payload bytes per service-queue tag passing through a NIC.
class TaggingCounterQueue final : public net::QueueDisc {
 public:
  explicit TaggingCounterQueue(std::map<int, std::int64_t>& bytes_per_queue)
      : bytes_(bytes_per_queue) {}
  bool enqueue(net::Packet&& p) override {
    if (!p.is_ack() && !p.has(net::kFlagRetx)) bytes_[p.queue] += p.payload;
    return inner_.enqueue(std::move(p));
  }
  std::optional<net::Packet> dequeue() override { return inner_.dequeue(); }
  bool empty() const override { return inner_.empty(); }
  std::int64_t backlog_bytes() const override { return inner_.backlog_bytes(); }

 private:
  std::map<int, std::int64_t>& bytes_;
  net::DropTailQueue inner_;
};

TEST(PiasEndToEnd, SegmentsChangeQueueAtThreshold) {
  std::map<int, std::int64_t> bytes_per_queue;
  Pipe pipe(std::make_unique<TaggingCounterQueue>(bytes_per_queue));
  transport::FlowParams params = flow_of(300'000);
  params.pias = true;
  params.pias_threshold_bytes = 100'000;
  params.pias_high_queue = 0;
  params.service_queue = 3;
  pipe.agent_b->add_receiver(params);
  auto& tx = pipe.agent_a->add_sender(params);
  tx.start();
  pipe.sim.run_until(seconds(std::int64_t{2}));
  ASSERT_TRUE(tx.complete());
  // First 100 KB rode queue 0, the remaining 200 KB queue 3.
  EXPECT_EQ(bytes_per_queue[0], 100'740);  // 69 MSS-sized segments
  EXPECT_EQ(bytes_per_queue[3], 300'000 - 100'740);
  EXPECT_EQ(bytes_per_queue.size(), 2u);
}

// ------------------------------------------------- receiver robustness --

TEST(Receiver, IgnoresDuplicateAndOverlappingSegments) {
  Pipe pipe;
  transport::FlowParams params = flow_of(10'000);
  auto& rx = pipe.agent_b->add_receiver(params);
  bool completed = false;
  rx.on_complete = [&](const transport::FlowReceiver&) { completed = true; };

  auto seg = [&](std::uint64_t seq, std::int32_t len) {
    rx.on_data(net::make_data_packet(1, 0, 1, seq, len));
  };
  seg(0, 4'000);
  seg(0, 4'000);      // exact duplicate
  seg(2'000, 4'000);  // overlap
  EXPECT_EQ(rx.rcv_nxt(), 6'000u);
  seg(8'000, 2'000);  // gap at [6000,8000)
  EXPECT_EQ(rx.rcv_nxt(), 6'000u);
  seg(4'000, 4'000);  // fills the gap with overlap on both sides
  EXPECT_EQ(rx.rcv_nxt(), 10'000u);
  EXPECT_TRUE(completed);
  // Late retransmission after completion must be harmless.
  seg(6'000, 2'000);
  EXPECT_EQ(rx.rcv_nxt(), 10'000u);
}

TEST(Receiver, CompletionFiresExactlyOnce) {
  Pipe pipe;
  transport::FlowParams params = flow_of(2'000);
  auto& rx = pipe.agent_b->add_receiver(params);
  int completions = 0;
  rx.on_complete = [&](const transport::FlowReceiver&) { ++completions; };
  rx.on_data(net::make_data_packet(1, 0, 1, 0, 2'000));
  rx.on_data(net::make_data_packet(1, 0, 1, 0, 2'000));
  EXPECT_EQ(completions, 1);
}

// ------------------------------------------- CC properties (TEST_P) --

class CcProperties : public ::testing::TestWithParam<transport::CcKind> {};

TEST_P(CcProperties, WindowAlwaysPositiveUnderRandomEvents) {
  auto cc = transport::make_congestion_control(GetParam());
  cc->init(1460, 10.0);
  sim::Rng rng(99);
  std::uint64_t snd = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double dice = rng.uniform();
    if (dice < 0.85) {
      transport::AckInfo info;
      info.bytes_acked = rng.uniform_int(1, 3 * 1460);
      snd += static_cast<std::uint64_t>(info.bytes_acked);
      info.snd_una = snd;
      info.snd_nxt = snd + 14'600;
      info.now = milliseconds(static_cast<std::int64_t>(i));
      info.srtt = microseconds(std::int64_t{500});
      info.ece = rng.uniform() < 0.1;
      cc->on_ack(info);
    } else if (dice < 0.95) {
      transport::AckInfo info;
      info.now = milliseconds(static_cast<std::int64_t>(i));
      cc->on_loss_event(info);
    } else {
      cc->on_timeout();
    }
    ASSERT_GE(cc->cwnd_bytes(), 1460.0) << transport::cc_name(GetParam());
    ASSERT_LT(cc->cwnd_bytes(), 1e12);
  }
}

TEST_P(CcProperties, LossNeverIncreasesWindow) {
  auto cc = transport::make_congestion_control(GetParam());
  cc->init(1460, 50.0);
  const double before = cc->cwnd_bytes();
  transport::AckInfo info;
  info.now = milliseconds(std::int64_t{1});
  cc->on_loss_event(info);
  EXPECT_LE(cc->cwnd_bytes(), before);
}

INSTANTIATE_TEST_SUITE_P(AllCc, CcProperties,
                         ::testing::Values(transport::CcKind::kNewReno,
                                           transport::CcKind::kCubic,
                                           transport::CcKind::kDctcp),
                         [](const auto& info) {
                           return std::string(transport::cc_name(info.param));
                         });

// ------------------------------------------------- TNA-stale DynaQ --

TEST(TnaStaleness, StaleInfoStillIsolatesQueues) {
  sim::Simulator sim;
  core::DynaQPolicy::Options opts;
  opts.stale_queue_info = true;
  net::MultiQueueQdisc qd(sim, {1, 1}, 12'000,
                          std::make_unique<core::DynaQPolicy>(opts),
                          std::make_unique<net::DrrScheduler>(1500));
  // Without any dequeue, stale lengths stay 0: queue 0 can absorb beyond
  // its threshold because the controller believes it is empty — but the
  // physical bound still caps the port.
  for (int i = 0; i < 10; ++i) {
    net::Packet p = net::make_data_packet(1, 0, 1, 0, 1460);
    p.queue = 0;
    qd.enqueue(std::move(p));
  }
  EXPECT_LE(qd.backlog_bytes(), 12'000);
  // After dequeues, the feedback catches up and thresholds start binding.
  for (int i = 0; i < 4; ++i) qd.dequeue();
  const auto& policy = dynamic_cast<const core::DynaQPolicy&>(qd.policy());
  EXPECT_EQ(policy.controller().threshold_sum(), 12'000);
}

// ----------------------------------------------- random-loss soak --

TEST(RandomLossSoak, FlowsSurviveFivePercentLoss) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Pipe pipe(std::make_unique<net::BernoulliLossQueue>(0.05, seed));
    transport::FlowParams params = flow_of(200'000);
    params.initial_srtt = microseconds(std::int64_t{200});
    Time done = -1;
    pipe.agent_b->add_receiver(params).on_complete =
        [&](const transport::FlowReceiver& r) { done = r.completion_time(); };
    pipe.agent_a->add_sender(params).start();
    pipe.sim.run_until(seconds(std::int64_t{30}));
    ASSERT_GT(done, 0) << "seed " << seed;
  }
}

}  // namespace
}  // namespace dynaq
