// Delay-based (Vegas-style) congestion control tests: backlog-targeted
// window adaptation, starvation under shared buffers, and isolation under
// DynaQ — the §II-B motivation experiment in miniature.
#include <gtest/gtest.h>

#include "harness/static_experiment.hpp"
#include "transport/vegas.hpp"

namespace dynaq {
namespace {

transport::AckInfo ack_with_rtt(std::int64_t bytes, Time rtt, Time base_sample = 0) {
  transport::AckInfo a;
  a.bytes_acked = bytes;
  a.srtt = rtt;
  a.rtt_sample = base_sample > 0 ? base_sample : rtt;
  a.now = milliseconds(std::int64_t{1});
  return a;
}

TEST(Vegas, GrowsWhileBacklogBelowAlpha) {
  transport::VegasCc cc;
  cc.init(1460, 10.0);
  // RTT equals baseRTT: zero backlog -> keep growing.
  const double w0 = cc.cwnd_bytes();
  cc.on_ack(ack_with_rtt(1460, microseconds(std::int64_t{500})));
  EXPECT_GT(cc.cwnd_bytes(), w0);
}

TEST(Vegas, BacksOffWhenDelayRises) {
  transport::VegasCc cc;
  cc.init(1460, 20.0);
  // Establish baseRTT = 500 us.
  cc.on_ack(ack_with_rtt(1460, microseconds(std::int64_t{500})));
  const double w_before = cc.cwnd_bytes();
  // RTT doubles: backlog estimate = cwnd/2 >> beta -> shrink.
  for (int i = 0; i < 30; ++i) {
    cc.on_ack(ack_with_rtt(1460, microseconds(std::int64_t{1'000}),
                           microseconds(std::int64_t{1'000})));
  }
  EXPECT_LT(cc.cwnd_bytes(), w_before);
  EXPECT_GE(cc.cwnd_bytes(), 2.0 * 1460);
}

TEST(Vegas, TracksMinimumRttAsBase) {
  transport::VegasCc cc;
  cc.init(1460, 10.0);
  cc.on_ack(ack_with_rtt(1460, microseconds(std::int64_t{800})));
  cc.on_ack(ack_with_rtt(1460, microseconds(std::int64_t{500})));
  cc.on_ack(ack_with_rtt(1460, microseconds(std::int64_t{900})));
  EXPECT_EQ(cc.base_rtt(), microseconds(std::int64_t{500}));
}

TEST(Vegas, LossResponseIsGentlerThanReno) {
  transport::VegasCc cc;
  cc.init(1460, 40.0);
  const double w = cc.cwnd_bytes();
  transport::AckInfo info;
  cc.on_loss_event(info);
  EXPECT_NEAR(cc.cwnd_bytes(), 0.75 * w, 1.0);
  cc.on_timeout();
  EXPECT_DOUBLE_EQ(cc.cwnd_bytes(), 1460.0);
}

TEST(Vegas, SeparateServiceQueuesProtectTheDelaySignal) {
  // With its own DRR service queue, the Vegas service holds its fair share
  // against loss-based neighbours — the paper's service-queue-isolation
  // claim for a transport that never needs drops or ECN. (Mixed into ONE
  // queue it collapses; see bench/abl_delay_based.)
  auto run = [](core::SchemeKind kind) {
    harness::StaticExperimentConfig cfg;
    cfg.star.num_hosts = 5;
    cfg.star.queue_weights = {1, 1};
    cfg.star.scheme.kind = kind;
    cfg.groups = {
        {.queue = 0, .num_flows = 4, .first_src_host = 1, .num_src_hosts = 2,
         .start = 0, .stop = 0, .cc = transport::CcKind::kVegas},
        {.queue = 1, .num_flows = 4, .first_src_host = 3, .num_src_hosts = 2,
         .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno},
    };
    cfg.duration = seconds(std::int64_t{4});
    cfg.seed = 3;
    const auto r = harness::run_static_experiment(cfg);
    return r.meter.mean_gbps(0, 2, r.meter.num_windows());
  };
  EXPECT_GT(run(core::SchemeKind::kDynaQ), 0.45);
  EXPECT_GT(run(core::SchemeKind::kBestEffort), 0.40)
      << "per-queue DRR already shields the delay signal at equal flow counts";
}

}  // namespace
}  // namespace dynaq
