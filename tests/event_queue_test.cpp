// Contract tests for the calendar-queue event engine (DESIGN.md §9):
// strict (when, seq) pop order across rebuilds and window jumps, O(1)
// cancellation semantics, inline-vs-heap callable storage, and a
// differential fuzz against a reference model.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <random>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace dynaq {
namespace {

// ------------------------------------------------------------- EventFn --

TEST(EventFn, SmallCallableStaysInline) {
  int hits = 0;
  sim::EventFn fn([&hits] { ++hits; });
  ASSERT_TRUE(bool(fn));
  EXPECT_FALSE(fn.on_heap());
  fn();
  EXPECT_EQ(hits, 1);
}

TEST(EventFn, OversizedCallableFallsBackToHeap) {
  std::array<std::uint64_t, 32> big{};  // 256 B > inline capacity
  big[0] = 41;
  std::uint64_t seen = 0;
  sim::EventFn fn([big, &seen] { seen = big[0] + 1; });
  EXPECT_TRUE(fn.on_heap());
  fn();
  EXPECT_EQ(seen, 42u);
}

TEST(EventFn, MoveTransfersOwnership) {
  int hits = 0;
  sim::EventFn a([&hits] { ++hits; });
  sim::EventFn b(std::move(a));
  EXPECT_FALSE(bool(a));  // NOLINT(bugprone-use-after-move): moved-from state is specified
  ASSERT_TRUE(bool(b));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(EventFn, DestroysCapturesExactlyOnce) {
  struct Probe {
    int* dtors;
    explicit Probe(int* d) : dtors(d) {}
    Probe(Probe&& o) noexcept : dtors(o.dtors) { o.dtors = nullptr; }
    Probe(const Probe&) = delete;
    ~Probe() {
      if (dtors != nullptr) ++*dtors;
    }
  };
  int dtors = 0;
  {
    sim::EventFn fn([p = Probe(&dtors)] { (void)p; });
    sim::EventFn moved(std::move(fn));
    EXPECT_EQ(dtors, 0);
  }
  EXPECT_EQ(dtors, 1);
}

// ---------------------------------------------------- ordering contract --

// Pops every remaining event and returns the observed (when, tag) pairs.
std::vector<std::pair<Time, int>> drain(sim::EventQueue& q, std::vector<int>& fired) {
  std::vector<std::pair<Time, int>> order;
  Time now = 0;
  while (!q.empty()) {
    fired.clear();
    auto ev = q.pop(now);
    ev();
    order.emplace_back(now, fired.empty() ? -1 : fired.front());
  }
  return order;
}

TEST(EventQueue, SameTimestampFifoSurvivesRebuild) {
  sim::EventQueue q;
  std::vector<int> fired;
  const Time when = microseconds(std::int64_t{5});
  // Push enough to force several capacity rebuilds (size > 2 * buckets),
  // all at one timestamp plus padding around it.
  const int kTies = 500;
  for (int i = 0; i < kTies; ++i) {
    q.push(when, [i, &fired] { fired.push_back(i); });
    q.push(when + microseconds(std::int64_t{1}) * (i + 1),
           [&fired] { fired.push_back(-2); });
  }
  Time now = 0;
  for (int i = 0; i < kTies; ++i) {
    fired.clear();
    auto ev = q.pop(now);
    ev();
    ASSERT_EQ(now, when);
    ASSERT_EQ(fired, std::vector<int>{i}) << "tie " << i << " popped out of order";
  }
}

TEST(EventQueue, WideTimeRangeStaysSorted) {
  // Spread events across 12 orders of magnitude so they traverse the
  // staged front, the ring, and the overflow region (window jumps).
  sim::EventQueue q;
  std::mt19937_64 rng(7);
  std::vector<Time> times;
  for (int i = 0; i < 2000; ++i) {
    const int mag = static_cast<int>(rng() % 12);
    Time t = 1;
    for (int m = 0; m < mag; ++m) t *= 10;
    times.push_back(static_cast<Time>(rng() % static_cast<std::uint64_t>(t)) + 1);
  }
  std::vector<int> fired;
  for (std::size_t i = 0; i < times.size(); ++i) {
    q.push(times[i], [i, &fired] { fired.push_back(static_cast<int>(i)); });
  }
  auto order = drain(q, fired);
  ASSERT_EQ(order.size(), times.size());
  std::vector<Time> sorted = times;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < order.size(); ++i) {
    ASSERT_EQ(order[i].first, sorted[i]) << "pop " << i << " out of time order";
  }
}

// --------------------------------------------------------- cancellation --

TEST(EventQueue, CancelPendingEventNeverFires) {
  sim::EventQueue q;
  bool fired = false;
  const sim::EventId id = q.push(nanoseconds(10), [&fired] { fired = true; });
  q.push(nanoseconds(20), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);
  std::vector<int> sink;
  drain(q, sink);
  EXPECT_FALSE(fired);
  EXPECT_EQ(q.cancelled(), 1u);
}

TEST(EventQueue, CancelReturnsFalseForFiredAndDoubleCancel) {
  sim::EventQueue q;
  const sim::EventId a = q.push(nanoseconds(1), [] {});
  const sim::EventId b = q.push(nanoseconds(2), [] {});
  Time now = 0;
  q.pop(now)();
  EXPECT_FALSE(q.cancel(a)) << "already fired";
  EXPECT_TRUE(q.cancel(b));
  EXPECT_FALSE(q.cancel(b)) << "double cancel";
  EXPECT_FALSE(q.cancel(sim::kNoEvent));
}

TEST(EventQueue, CancelIsSlotReuseSafe) {
  // After a slot is recycled, the old id's generation is stale: cancelling
  // it must not kill the slot's new occupant.
  sim::EventQueue q;
  const sim::EventId old_id = q.push(nanoseconds(1), [] {});
  ASSERT_TRUE(q.cancel(old_id));
  bool fired = false;
  q.push(nanoseconds(2), [&fired] { fired = true; });  // reuses the slot
  EXPECT_FALSE(q.cancel(old_id)) << "stale id must not cancel the new occupant";
  std::vector<int> sink;
  drain(q, sink);
  EXPECT_TRUE(fired);
}

TEST(Simulator, CancelSkipsEventAndCountsIt) {
  sim::Simulator sim;
  std::vector<int> order;
  sim.schedule_at(nanoseconds(10), [&] { order.push_back(1); });
  const sim::EventId id = sim.schedule_at(nanoseconds(20), [&] { order.push_back(2); });
  sim.schedule_at(nanoseconds(30), [&] { order.push_back(3); });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  EXPECT_EQ(sim.events_cancelled(), 1u);
  EXPECT_EQ(sim.events_processed(), 2u);
}

TEST(Simulator, SelfCancelDuringExecutionIsNoOp) {
  // begin_fire retires the id before the callable runs, so an event that
  // tries to cancel itself (via a captured id) gets `false`.
  sim::Simulator sim;
  sim::EventId self = sim::kNoEvent;
  bool cancelled_self = true;
  self = sim.schedule_at(nanoseconds(5), [&] { cancelled_self = sim.cancel(self); });
  sim.run();
  EXPECT_FALSE(cancelled_self);
}

TEST(Simulator, CancelWhileRunning) {
  // A running event cancels another event that is already past skim()
  // staging: the stale entry must be skipped at pop time, not fired.
  sim::Simulator sim;
  bool later_fired = false;
  const sim::EventId later =
      sim.schedule_at(nanoseconds(7), [&later_fired] { later_fired = true; });
  bool cancel_ok = false;
  sim.schedule_at(nanoseconds(6), [&] { cancel_ok = sim.cancel(later); });
  sim.run();
  EXPECT_TRUE(cancel_ok);
  EXPECT_FALSE(later_fired);
  EXPECT_EQ(sim.events_processed(), 1u);
}

// ------------------------------------------------------------ fuzzing --

struct RefEntry {
  Time when;
  std::uint64_t seq;
  sim::EventId id;
};

// Differential fuzz against a reference model: random interleavings of
// push / pop / cancel (with same-timestamp bursts and far-future pushes
// that exercise the overflow window) must pop in exact (when, seq) order.
TEST(EventQueue, FuzzMatchesReferenceModel) {
  for (int round = 0; round < 60; ++round) {
    std::mt19937_64 rng(round);
    sim::EventQueue q;
    std::vector<RefEntry> ref;
    std::uint64_t seq = 0;
    Time now = 0;
    std::uint64_t fired_seq = 0;

    auto push = [&](Time when) {
      const std::uint64_t s = seq++;
      const sim::EventId id = q.push(when, [s, &fired_seq] { fired_seq = s; });
      ref.push_back({when, s, id});
    };
    auto ref_min = [&] {
      return std::min_element(ref.begin(), ref.end(), [](const RefEntry& a, const RefEntry& b) {
        if (a.when != b.when) return a.when < b.when;
        return a.seq < b.seq;
      });
    };

    const int ops = 1200;
    for (int op = 0; op < ops || !ref.empty(); ++op) {
      const int dice = static_cast<int>(rng() % 100);
      if (op < ops && (ref.empty() || dice < 50)) {
        Time when = now;
        switch (rng() % 5) {
          case 0: when += static_cast<Time>(rng() % 50); break;          // staged front
          case 1: when += static_cast<Time>(rng() % 100'000); break;     // ring
          case 2: when += static_cast<Time>(rng() % 100'000'000); break; // overflow
          case 3: when += seconds(std::int64_t{1}); break;               // far future
          default: break;                                                // exact tie
        }
        const int burst = (rng() % 16 == 0) ? static_cast<int>(1 + rng() % 6) : 1;
        for (int b = 0; b < burst; ++b) push(when);
      } else if (dice < 60 && !ref.empty()) {
        // Cancel a random pending event.
        const std::size_t victim = rng() % ref.size();
        ASSERT_TRUE(q.cancel(ref[victim].id));
        ASSERT_FALSE(q.cancel(ref[victim].id));
        ref.erase(ref.begin() + static_cast<std::ptrdiff_t>(victim));
      } else if (!ref.empty()) {
        const auto it = ref_min();
        ASSERT_EQ(q.next_time(), it->when) << "round " << round << " op " << op;
        Time popped = now;
        auto ev = q.pop(popped);
        ev();
        ASSERT_EQ(popped, it->when) << "round " << round << " op " << op;
        ASSERT_EQ(fired_seq, it->seq) << "round " << round << " op " << op;
        now = popped;
        ref.erase(it);
      }
      ASSERT_EQ(q.size(), ref.size());
    }
    ASSERT_TRUE(q.empty());
    EXPECT_EQ(q.heap_fallbacks(), 0u) << "fuzz closures must stay inline";
  }
}

}  // namespace
}  // namespace dynaq
