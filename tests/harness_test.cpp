// Harness tests: CLI parsing, table rendering, CSV output, experiment
// driver validation and measurement plumbing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "harness/cli.hpp"
#include "harness/dynamic_experiment.hpp"
#include "harness/static_experiment.hpp"
#include "harness/table.hpp"
#include "stats/csv_writer.hpp"
#include "workload/flow_size_distribution.hpp"

namespace dynaq {
namespace {

// ---------------------------------------------------------------- CLI --

harness::Cli make_cli(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  static std::vector<char*> argv;
  argv.clear();
  for (auto& s : storage) argv.push_back(s.data());
  return harness::Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesEqualsAndSpaceForms) {
  const auto cli = make_cli({"--flows=500", "--load", "0.7"});
  EXPECT_EQ(cli.integer("flows", 0), 500);
  EXPECT_DOUBLE_EQ(cli.real("load", 0.0), 0.7);
}

TEST(Cli, BooleanFlags) {
  const auto cli = make_cli({"--full", "--verbose=false"});
  EXPECT_TRUE(cli.flag("full"));
  EXPECT_FALSE(cli.flag("verbose"));
  EXPECT_FALSE(cli.flag("absent"));
  EXPECT_TRUE(cli.flag("absent", true));
}

TEST(Cli, FallbacksWhenMissing) {
  const auto cli = make_cli({});
  EXPECT_EQ(cli.integer("n", 42), 42);
  EXPECT_EQ(cli.text("name", "dflt"), "dflt");
  EXPECT_FALSE(cli.has("n"));
}

TEST(Cli, CommaSeparatedReals) {
  const auto cli = make_cli({"--loads=0.3,0.5,0.8"});
  const auto loads = cli.reals("loads", {});
  ASSERT_EQ(loads.size(), 3u);
  EXPECT_DOUBLE_EQ(loads[1], 0.5);
  const auto fallback = cli.reals("other", {1.0});
  ASSERT_EQ(fallback.size(), 1u);
}

TEST(Cli, CommaSeparatedStrings) {
  const auto cli = make_cli({"--schemes=DynaQ,PQL"});
  const auto schemes = cli.list("schemes", {});
  ASSERT_EQ(schemes.size(), 2u);
  EXPECT_EQ(schemes[0], "DynaQ");
  EXPECT_EQ(schemes[1], "PQL");
  EXPECT_EQ(cli.list("absent", {"x"}).size(), 1u);
}

TEST(Cli, UnknownFlagsAreTheOnesNeverQueried) {
  const auto cli = make_cli({"--seeed=3", "--flows=10", "--strict"});
  EXPECT_EQ(cli.integer("flows", 0), 10);
  EXPECT_TRUE(cli.flag("strict"));
  const auto bad = cli.unknown();
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0], "seeed");  // the typo --seed would have been silently ignored
  EXPECT_TRUE(cli.complain_unknown(/*strict=*/true));
  EXPECT_FALSE(cli.complain_unknown(/*strict=*/false));
}

TEST(Cli, NoUnknownFlagsWhenAllQueried) {
  const auto cli = make_cli({"--flows=10"});
  EXPECT_EQ(cli.integer("flows", 0), 10);
  EXPECT_TRUE(cli.unknown().empty());
  EXPECT_FALSE(cli.complain_unknown(/*strict=*/true));
}

// -------------------------------------------------------------- Table --

TEST(Table, AlignsColumns) {
  harness::Table t({"a", "long_header"});
  t.row({"xxxx", "1"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Three lines: header, rule, row.
  EXPECT_NE(out.find("a     long_header"), std::string::npos);
  EXPECT_NE(out.find("xxxx  1"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(harness::Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(harness::Table::num(2.0, 0), "2");
}

// ---------------------------------------------------------- CsvWriter --

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = "/tmp/dynaq_csv_test.csv";
  {
    stats::CsvWriter csv(path);
    ASSERT_TRUE(csv.ok());
    csv.header({"t", "gbps"});
    csv.row({0.5, 1.25});
    csv.row({1.0, 2.5});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "t,gbps");
  std::getline(in, line);
  EXPECT_EQ(line, "0.5,1.25");
  std::remove(path.c_str());
}

// ------------------------------------------------ experiment drivers --

TEST(StaticExperiment, RejectsUnknownQueue) {
  harness::StaticExperimentConfig cfg;
  cfg.star.queue_weights = {1, 1};
  cfg.groups = {{.queue = 5, .num_flows = 1, .first_src_host = 1, .num_src_hosts = 1,
                 .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno}};
  EXPECT_THROW(harness::run_static_experiment(cfg), std::invalid_argument);
}

TEST(StaticExperiment, MeterWindowsCoverDuration) {
  harness::StaticExperimentConfig cfg;
  cfg.star.num_hosts = 3;
  cfg.groups = {{.queue = 0, .num_flows = 1, .first_src_host = 1, .num_src_hosts = 1,
                 .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno}};
  cfg.duration = seconds(std::int64_t{1});
  cfg.meter_window = milliseconds(std::int64_t{100});
  const auto r = harness::run_static_experiment(cfg);
  EXPECT_GE(r.meter.num_windows(), 9u);
  EXPECT_LE(r.meter.num_windows(), 11u);
  EXPECT_GT(r.events, 1000u);
}

TEST(StaticExperiment, DeterministicAcrossRuns) {
  harness::StaticExperimentConfig cfg;
  cfg.star.num_hosts = 4;
  cfg.groups = {
      {.queue = 0, .num_flows = 3, .first_src_host = 1, .num_src_hosts = 2,
       .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno},
      {.queue = 1, .num_flows = 5, .first_src_host = 1, .num_src_hosts = 2,
       .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno},
  };
  cfg.duration = seconds(std::int64_t{1});
  cfg.seed = 77;
  const auto a = harness::run_static_experiment(cfg);
  const auto b = harness::run_static_experiment(cfg);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.bottleneck_stats.dropped, b.bottleneck_stats.dropped);
  for (std::size_t w = 0; w < a.meter.num_windows(); ++w) {
    EXPECT_DOUBLE_EQ(a.meter.gbps(w, 0), b.meter.gbps(w, 0));
  }
}

TEST(StaticExperiment, SeedChangesJitterOnly) {
  harness::StaticExperimentConfig cfg;
  cfg.star.num_hosts = 3;
  cfg.groups = {{.queue = 0, .num_flows = 4, .first_src_host = 1, .num_src_hosts = 1,
                 .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno}};
  cfg.duration = seconds(std::int64_t{1});
  cfg.seed = 1;
  const auto a = harness::run_static_experiment(cfg);
  cfg.seed = 2;
  const auto b = harness::run_static_experiment(cfg);
  EXPECT_NE(a.events, b.events) << "different jitter should perturb the trajectory";
  // But both saturate the link.
  EXPECT_NEAR(a.meter.mean_gbps(0, 5, a.meter.num_windows()),
              b.meter.mean_gbps(0, 5, b.meter.num_windows()), 0.05);
}

TEST(DynamicStarExperiment, RequiresDistribution) {
  harness::DynamicStarConfig cfg;
  cfg.dist = nullptr;
  EXPECT_THROW(harness::run_dynamic_star_experiment(cfg), std::invalid_argument);
}

TEST(DynamicStarExperiment, RequiresDedicatedQueues) {
  harness::DynamicStarConfig cfg;
  cfg.dist = &workload::web_search_workload();
  cfg.star.queue_weights = {1};
  cfg.first_service_queue = 1;
  EXPECT_THROW(harness::run_dynamic_star_experiment(cfg), std::invalid_argument);
}

TEST(DynamicStarExperiment, RecordsEveryFlowOnce) {
  harness::DynamicStarConfig cfg;
  cfg.star.num_hosts = 5;
  cfg.star.queue_weights = {1, 1, 1, 1, 1};
  cfg.star.scheduler = topo::SchedulerKind::kSpqOverDrr;
  cfg.num_flows = 300;
  cfg.load = 0.4;
  cfg.dist = &workload::web_search_workload();
  cfg.seed = 9;
  const auto r = harness::run_dynamic_star_experiment(cfg);
  EXPECT_EQ(r.incomplete, 0u);
  ASSERT_EQ(r.fcts.count(), 300u);
  std::set<std::uint64_t> ids;
  for (const auto& rec : r.fcts.records()) {
    EXPECT_GT(rec.finish, rec.start);
    EXPECT_GT(rec.size_bytes, 0);
    ids.insert(rec.flow_id);
  }
  EXPECT_EQ(ids.size(), 300u) << "every flow id recorded exactly once";
}

TEST(DynamicLeafSpineExperiment, RejectsTooManyServices) {
  harness::DynamicLeafSpineConfig cfg;
  cfg.fabric.queue_weights = {1, 1, 1};
  cfg.num_services = 7;
  EXPECT_THROW(harness::run_dynamic_leaf_spine_experiment(cfg), std::invalid_argument);
}

TEST(DynamicLeafSpineExperiment, LoadScalesDuration) {
  // Same flows at half the load should take roughly twice the time span.
  harness::DynamicLeafSpineConfig cfg;
  cfg.fabric.num_leaves = 3;
  cfg.fabric.num_spines = 3;
  cfg.fabric.hosts_per_leaf = 3;
  cfg.num_flows = 400;
  cfg.seed = 4;
  cfg.load = 0.8;
  const auto high = harness::run_dynamic_leaf_spine_experiment(cfg);
  cfg.load = 0.4;
  const auto low = harness::run_dynamic_leaf_spine_experiment(cfg);
  ASSERT_EQ(high.incomplete, 0u);
  ASSERT_EQ(low.incomplete, 0u);
  Time span_high = 0;
  Time span_low = 0;
  for (const auto& rec : high.fcts.records()) span_high = std::max(span_high, rec.start);
  for (const auto& rec : low.fcts.records()) span_low = std::max(span_low, rec.start);
  EXPECT_NEAR(static_cast<double>(span_low) / static_cast<double>(span_high), 2.0, 0.4);
}

}  // namespace
}  // namespace dynaq
