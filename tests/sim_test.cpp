// Tests for the discrete-event engine: ordering, determinism, clock math.
#include <gtest/gtest.h>

#include <vector>

#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace dynaq {
namespace {

TEST(Time, UnitConversions) {
  EXPECT_EQ(seconds(std::int64_t{1}), 1'000'000'000'000);
  EXPECT_EQ(milliseconds(std::int64_t{1}), 1'000'000'000);
  EXPECT_EQ(microseconds(std::int64_t{1}), 1'000'000);
  EXPECT_EQ(nanoseconds(1), 1'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(std::int64_t{3})), 3.0);
  EXPECT_DOUBLE_EQ(to_microseconds(microseconds(std::int64_t{7})), 7.0);
}

TEST(Time, FractionalConstructors) {
  EXPECT_EQ(seconds(0.5), 500'000'000'000);
  EXPECT_EQ(milliseconds(0.25), 250'000'000);
  EXPECT_EQ(microseconds(1.5), 1'500'000);
}

TEST(Time, TransmissionTime) {
  // 1500 B at 1 Gbps = 12 microseconds.
  EXPECT_EQ(transmission_time(1500, 1e9), microseconds(std::int64_t{12}));
  // 64 B at 100 Gbps = 5.12 ns, exact in picoseconds.
  EXPECT_EQ(transmission_time(64, 100e9), 5'120);
}

TEST(Simulator, ExecutesInTimeOrder) {
  sim::Simulator sim;
  std::vector<int> order;
  sim.schedule_at(nanoseconds(30), [&] { order.push_back(3); });
  sim.schedule_at(nanoseconds(10), [&] { order.push_back(1); });
  sim.schedule_at(nanoseconds(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), nanoseconds(30));
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulator, FifoTieBreakAtEqualTimes) {
  sim::Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(nanoseconds(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, NestedSchedulingFromHandlers) {
  sim::Simulator sim;
  int fired = 0;
  sim.schedule_at(nanoseconds(1), [&] {
    ++fired;
    sim.schedule_in(nanoseconds(1), [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), nanoseconds(2));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  sim::Simulator sim;
  int fired = 0;
  sim.schedule_at(nanoseconds(10), [&] { ++fired; });
  sim.schedule_at(nanoseconds(20), [&] { ++fired; });
  sim.run_until(nanoseconds(15));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.events_pending(), 1u);
  sim.run_until(nanoseconds(25));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  sim::Simulator sim;
  sim.run_until(microseconds(std::int64_t{5}));
  EXPECT_EQ(sim.now(), microseconds(std::int64_t{5}));
}

TEST(Simulator, StopHaltsTheLoop) {
  sim::Simulator sim;
  int fired = 0;
  sim.schedule_at(nanoseconds(1), [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(nanoseconds(2), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.events_pending(), 1u);
}

TEST(Simulator, SchedulingInThePastThrows) {
  sim::Simulator sim;
  sim.schedule_at(nanoseconds(10), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(nanoseconds(5), [] {}), std::logic_error);
}

TEST(Rng, DeterministicAcrossInstances) {
  sim::Rng a(42);
  sim::Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiffer) {
  sim::Rng a(1);
  sim::Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInRange) {
  sim::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, ExponentialMeanConverges) {
  sim::Rng rng(11);
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

}  // namespace
}  // namespace dynaq
