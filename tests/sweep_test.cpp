// Sweep-engine tests: grid expansion, worker-pool determinism (byte-
// identical JSON for any --jobs), per-job fault isolation (a throwing job
// is captured, its siblings finish), timeout, retry-once, seed-replica
// aggregation and the JSON/CSV emitters.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>
#include <thread>

#include "check/invariant_auditor.hpp"
#include "sweep/json.hpp"
#include "sweep/result_store.hpp"
#include "sweep/sweep_runner.hpp"
#include "sweep/sweep_spec.hpp"

namespace dynaq {
namespace {

using sweep::Axis;
using sweep::JobPoint;
using sweep::ResultStore;
using sweep::RunnerOptions;
using sweep::SweepRunner;
using sweep::SweepSpec;

SweepSpec scheme_load_seed_grid() {  // 3 x 2 x 2 = 12 jobs
  SweepSpec spec;
  spec.axes = {Axis::labels("scheme", {"DynaQ", "BestEffort", "PQL"}),
               Axis::numeric("load", {0.3, 0.7}), Axis::numeric("seed", {1, 2})};
  return spec;
}

// Deterministic pseudo-experiment: metrics depend only on the point.
std::map<std::string, double> fake_job(const JobPoint& p) {
  const double scheme_bias = static_cast<double>(p.label("scheme").size());
  return {{"fct_ms", scheme_bias * p.number("load") + p.number("seed") / 8.0},
          {"drops", std::floor(10.0 * p.number("load"))}};
}

// ------------------------------------------------------------- spec --

TEST(SweepSpec, CartesianExpandsLastAxisFastest) {
  const auto points = scheme_load_seed_grid().expand();
  ASSERT_EQ(points.size(), 12u);
  EXPECT_EQ(points[0].name(), "scheme=DynaQ load=0.3 seed=1");
  EXPECT_EQ(points[1].name(), "scheme=DynaQ load=0.3 seed=2");
  EXPECT_EQ(points[2].name(), "scheme=DynaQ load=0.7 seed=1");
  EXPECT_EQ(points[4].name(), "scheme=BestEffort load=0.3 seed=1");
  EXPECT_EQ(points[11].name(), "scheme=PQL load=0.7 seed=2");
  for (std::size_t i = 0; i < points.size(); ++i) EXPECT_EQ(points[i].job_id, i);
}

TEST(SweepSpec, ZippedPairsValuesPositionally) {
  SweepSpec spec;
  spec.zipped = true;
  spec.axes = {Axis::numeric("load", {0.3, 0.5}), Axis::numeric("flows", {100, 200})};
  const auto points = spec.expand();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[1].number("load"), 0.5);
  EXPECT_DOUBLE_EQ(points[1].number("flows"), 200);
}

TEST(SweepSpec, RejectsEmptyAndRaggedSpecs) {
  EXPECT_THROW(SweepSpec{}.expand(), std::invalid_argument);
  SweepSpec empty_axis;
  empty_axis.axes = {Axis::numeric("load", {})};
  EXPECT_THROW(empty_axis.expand(), std::invalid_argument);
  SweepSpec ragged;
  ragged.zipped = true;
  ragged.axes = {Axis::numeric("a", {1}), Axis::numeric("b", {1, 2})};
  EXPECT_THROW(ragged.expand(), std::invalid_argument);
}

TEST(SweepSpec, PointLookupThrowsOnUnknownAxis) {
  const auto points = scheme_load_seed_grid().expand();
  EXPECT_THROW(points[0].at("nope"), std::out_of_range);
  EXPECT_EQ(points[0].label("scheme"), "DynaQ");
}

// ------------------------------------------------------ determinism --

TEST(SweepRunner, TwelveJobSweepJsonBytesIdenticalForAnyWorkerCount) {
  const auto spec = scheme_load_seed_grid();
  // A little jitter so parallel completion order actually scrambles.
  const auto job = [](const JobPoint& p) {
    std::this_thread::sleep_for(std::chrono::milliseconds((p.job_id * 7) % 13));
    return fake_job(p);
  };
  const sweep::JsonOptions no_perf{.include_perf = false};
  const auto store1 = SweepRunner(RunnerOptions{.jobs = 1}).run("det", spec, job);
  const auto store4 = SweepRunner(RunnerOptions{.jobs = 4}).run("det", spec, job);
  ASSERT_EQ(store1.outcomes().size(), 12u);
  EXPECT_TRUE(store1.all_ok());
  EXPECT_TRUE(store4.all_ok());
  EXPECT_EQ(store1.to_json(no_perf), store4.to_json(no_perf));

  const std::string p1 = testing::TempDir() + "sweep_j1.json";
  const std::string p4 = testing::TempDir() + "sweep_j4.json";
  ASSERT_TRUE(store1.write_json(p1, no_perf));
  ASSERT_TRUE(store4.write_json(p4, no_perf));
  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  EXPECT_EQ(slurp(p1), slurp(p4));
  EXPECT_FALSE(slurp(p1).empty());
}

TEST(SweepRunner, TrajectoryHashesRideJobResultsForAnyWorkerCount) {
  const auto spec = scheme_load_seed_grid();
  // Pseudo-experiment returning a per-point trajectory hash, like
  // bench/fct_common.hpp's run_fct_job does with the harness oracle value.
  const auto job = [](const JobPoint& p) {
    std::this_thread::sleep_for(std::chrono::milliseconds((p.job_id * 5) % 11));
    sweep::JobResult r{fake_job(p)};
    r.trajectory_hash = 0x1000u + p.job_id;
    return r;
  };
  const auto store1 = SweepRunner(RunnerOptions{.jobs = 1}).run("hashes", spec, job);
  const auto store4 = SweepRunner(RunnerOptions{.jobs = 4}).run("hashes", spec, job);
  ASSERT_TRUE(store1.all_ok());
  ASSERT_TRUE(store4.all_ok());
  for (std::size_t i = 0; i < store1.outcomes().size(); ++i) {
    ASSERT_TRUE(store1.outcome(i).trajectory_hash.has_value());
    EXPECT_EQ(store1.outcome(i).trajectory_hash, store4.outcome(i).trajectory_hash);
    EXPECT_EQ(*store1.outcome(i).trajectory_hash, 0x1000u + i);
  }

  // Since schema_version 3, per-job "trajectory_hash" is a canonical hex
  // string (u64 values do not survive JSON doubles), byte-identical across
  // --jobs.
  const sweep::JsonOptions no_perf{.include_perf = false};
  const std::string json = store1.to_json(no_perf);
  EXPECT_EQ(json, store4.to_json(no_perf));
  EXPECT_NE(json.find("\"schema_version\":6"), std::string::npos);
  EXPECT_NE(json.find("\"trajectory_hash\":\"0x0000000000001000\""), std::string::npos);
  EXPECT_NE(json.find("\"trajectory_hash\":\"0x000000000000100b\""), std::string::npos);
}

TEST(ResultStore, OmitsTrajectoryHashWhenJobsDoNotReportOne) {
  const auto spec = scheme_load_seed_grid();
  const auto store = SweepRunner(RunnerOptions{.jobs = 2}).run("nohash", spec, fake_job);
  ASSERT_TRUE(store.all_ok());
  for (const auto& o : store.outcomes()) EXPECT_FALSE(o.trajectory_hash.has_value());
  EXPECT_EQ(store.to_json().find("trajectory_hash"), std::string::npos);
}

// -------------------------------------------------- fault isolation --

TEST(SweepRunner, AuditErrorInOneJobDoesNotAbortSiblings) {
  const auto spec = scheme_load_seed_grid();
  const auto job = [](const JobPoint& p) -> std::map<std::string, double> {
    if (p.label("scheme") == "BestEffort" && p.number("seed") == 2) {
      check::Violation v;
      v.kind = check::ViolationKind::kThresholdSumMismatch;
      v.scheme = "BestEffort";
      v.detail = "injected for the fault-isolation test";
      throw check::AuditError(v);
    }
    return fake_job(p);
  };
  const auto store = SweepRunner(RunnerOptions{.jobs = 4}).run("faulty", spec, job);
  ASSERT_EQ(store.outcomes().size(), 12u);
  EXPECT_EQ(store.failures(), 2u);  // loads 0.3 and 0.7 at (BestEffort, seed 2)
  for (const auto& o : store.outcomes()) {
    const bool should_fail =
        o.point.label("scheme") == "BestEffort" && o.point.number("seed") == 2;
    EXPECT_EQ(o.ok, !should_fail) << o.point.name();
    if (should_fail) {
      EXPECT_NE(o.error.find("injected for the fault-isolation test"), std::string::npos);
      EXPECT_FALSE(o.timed_out);
    } else {
      EXPECT_FALSE(o.metrics.empty()) << o.point.name();
    }
  }
  // Failed replicas drop out of aggregation: (BestEffort, *) keeps seed 1.
  for (const auto& row : store.aggregate("seed")) {
    std::string scheme;
    for (const auto& [axis, value] : row.coords) {
      if (axis == "scheme") scheme = value.label;
    }
    EXPECT_EQ(row.replicas, scheme == "BestEffort" ? 1u : 2u);
  }
}

TEST(SweepRunner, RetryOnceRecoversTransientFailuresAndCountsAttempts) {
  SweepSpec spec;
  spec.axes = {Axis::numeric("id", {0, 1, 2})};
  std::atomic<int> flaky_calls{0};
  const auto job = [&flaky_calls](const JobPoint& p) -> std::map<std::string, double> {
    if (p.number("id") == 1 && flaky_calls.fetch_add(1) == 0) {
      throw std::runtime_error("transient");
    }
    if (p.number("id") == 2) throw std::runtime_error("permanent");
    return {{"v", p.number("id")}};
  };
  const auto store =
      SweepRunner(RunnerOptions{.jobs = 1, .retry_failed_once = true}).run("retry", spec, job);
  EXPECT_TRUE(store.outcome(0).ok);
  EXPECT_EQ(store.outcome(0).attempts, 1);
  EXPECT_TRUE(store.outcome(1).ok);  // failed once, retried, succeeded
  EXPECT_EQ(store.outcome(1).attempts, 2);
  EXPECT_FALSE(store.outcome(2).ok);
  EXPECT_EQ(store.outcome(2).attempts, 2);
  EXPECT_EQ(store.outcome(2).error, "permanent");
}

TEST(SweepRunner, TimedOutJobIsRecordedWhileSiblingsComplete) {
  SweepSpec spec;
  spec.axes = {Axis::numeric("id", {0, 1, 2, 3})};
  const auto job = [](const JobPoint& p) -> std::map<std::string, double> {
    if (p.number("id") == 2) std::this_thread::sleep_for(std::chrono::milliseconds(400));
    return {{"v", 1.0}};
  };
  const auto store =
      SweepRunner(RunnerOptions{.jobs = 2, .timeout_s = 0.05}).run("slow", spec, job);
  EXPECT_EQ(store.failures(), 1u);
  EXPECT_TRUE(store.outcome(2).timed_out);
  EXPECT_NE(store.outcome(2).error.find("timed out"), std::string::npos);
  for (const std::size_t id : {0u, 1u, 3u}) {
    EXPECT_TRUE(store.outcome(id).ok) << id;
    EXPECT_FALSE(store.outcome(id).timed_out);
  }
}

// --------------------------------------------------- aggregation --

TEST(ResultStore, AggregatesSeedReplicasWithConfidenceInterval) {
  const auto agg = sweep::aggregate_samples({10.0, 12.0, 14.0, 16.0});
  EXPECT_EQ(agg.n, 4u);
  EXPECT_DOUBLE_EQ(agg.mean, 13.0);
  EXPECT_DOUBLE_EQ(agg.min, 10.0);
  EXPECT_DOUBLE_EQ(agg.max, 16.0);
  EXPECT_DOUBLE_EQ(agg.p50, 13.0);
  EXPECT_NEAR(agg.p99, 16.0, 0.25);
  // sd = sqrt(20/3); ci = t(3df) * sd / 2 = 3.182 * 2.582 / 2.
  EXPECT_NEAR(agg.ci95_half, 3.182 * std::sqrt(20.0 / 3.0) / 2.0, 1e-9);
  const auto one = sweep::aggregate_samples({5.0});
  EXPECT_DOUBLE_EQ(one.mean, 5.0);
  EXPECT_DOUBLE_EQ(one.ci95_half, 0.0);
}

TEST(ResultStore, AggregateGroupsByNonReplicaAxes) {
  const auto spec = scheme_load_seed_grid();
  const auto store = SweepRunner(RunnerOptions{.jobs = 2}).run("agg", spec, fake_job);
  const auto rows = store.aggregate("seed");
  ASSERT_EQ(rows.size(), 6u);  // 3 schemes x 2 loads
  for (const auto& row : rows) {
    EXPECT_EQ(row.replicas, 2u);
    ASSERT_TRUE(row.metrics.contains("fct_ms"));
    const auto& m = row.metrics.at("fct_ms");
    EXPECT_EQ(m.n, 2u);
    // seeds 1 and 2 contribute bias + 1/8 and bias + 2/8.
    EXPECT_NEAR(m.max - m.min, 0.125, 1e-12);
    EXPECT_NEAR(m.mean, (m.min + m.max) / 2.0, 1e-12);
  }
  // Aggregating on an axis the spec lacks yields one row per job.
  EXPECT_EQ(store.aggregate("not_an_axis").size(), 12u);
}

// ------------------------------------------------------- emission --

TEST(ResultStore, CsvHasOneRowPerJobWithErrorsFlattened) {
  SweepSpec spec;
  spec.axes = {Axis::labels("scheme", {"A", "B"})};
  const auto job = [](const JobPoint& p) -> std::map<std::string, double> {
    if (p.label("scheme") == "B") throw std::runtime_error("boom, with\ncomma");
    return {{"v", 1.5}};
  };
  const auto store = SweepRunner(RunnerOptions{.jobs = 1}).run("csv", spec, job);
  const std::string path = testing::TempDir() + "sweep_rows.csv";
  ASSERT_TRUE(store.write_csv(path));
  std::ifstream in(path);
  std::string header, row_a, row_b;
  std::getline(in, header);
  std::getline(in, row_a);
  std::getline(in, row_b);
  EXPECT_EQ(header, "job_id,scheme,v,ok,error");
  EXPECT_EQ(row_a, "0,A,1.5,1,");
  EXPECT_EQ(row_b, "1,B,,0,boom; with comma");
}

TEST(JsonWriter, EscapesAndFormatsDeterministically) {
  sweep::JsonWriter json;
  json.begin_object();
  json.key("s");
  json.value("a\"b\\c\nd");
  json.key("i");
  json.value(3.0);
  json.key("d");
  json.value(0.125);
  json.key("arr");
  json.begin_array();
  json.value(1);
  json.value(true);
  json.end_array();
  json.end_object();
  EXPECT_EQ(json.take(), "{\"s\":\"a\\\"b\\\\c\\nd\",\"i\":3,\"d\":0.125,\"arr\":[1,true]}");
}

}  // namespace
}  // namespace dynaq
