// Unit and property tests for flow-size distributions and the Poisson
// open-loop generator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sim/random.hpp"
#include "workload/flow_generator.hpp"
#include "workload/flow_size_distribution.hpp"

namespace dynaq {
namespace {

using workload::CdfPoint;
using workload::FlowSizeDistribution;

TEST(FlowSizeDistribution, RejectsMalformedTables) {
  EXPECT_THROW(FlowSizeDistribution("x", {{100, 1.0}}), std::invalid_argument);
  EXPECT_THROW(FlowSizeDistribution("x", {{100, 0.5}, {50, 1.0}}), std::invalid_argument);
  EXPECT_THROW(FlowSizeDistribution("x", {{10, 0.0}, {100, 0.9}}), std::invalid_argument);
  EXPECT_THROW(FlowSizeDistribution("x", {{10, 0.5}, {100, 0.2}}), std::invalid_argument);
}

TEST(FlowSizeDistribution, QuantileInterpolatesLinearly) {
  FlowSizeDistribution d("x", {{0, 0.0}, {100, 1.0}});
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 100.0);
}

TEST(FlowSizeDistribution, CdfIsInverseOfQuantile) {
  const FlowSizeDistribution& d = workload::web_search_workload();
  for (double u : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    EXPECT_NEAR(d.cdf(d.quantile(u)), u, 1e-9) << "u=" << u;
  }
}

TEST(FlowSizeDistribution, MeanOfUniformSegment) {
  FlowSizeDistribution d("x", {{0, 0.0}, {100, 1.0}});
  EXPECT_DOUBLE_EQ(d.mean_bytes(), 50.0);
}

TEST(FlowSizeDistribution, MeanOfTwoSegmentTable) {
  // Half the mass uniform on [0,10], half on [10,100]:
  // mean = 0.5*5 + 0.5*55 = 30.
  FlowSizeDistribution d("x", {{0, 0.0}, {10, 0.5}, {100, 1.0}});
  EXPECT_DOUBLE_EQ(d.mean_bytes(), 30.0);
}

TEST(FlowSizeDistribution, SampleMeanConvergesToAnalyticMean) {
  const FlowSizeDistribution& d = workload::web_search_workload();
  sim::Rng rng(42);
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(d.sample(rng));
  EXPECT_NEAR(sum / n / d.mean_bytes(), 1.0, 0.03);
}

TEST(FlowSizeDistribution, SamplesAreAtLeastOneByte) {
  FlowSizeDistribution d("x", {{0, 0.0}, {2, 1.0}});
  sim::Rng rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(d.sample(rng), 1);
}

// Property sweep over all four built-in workloads.
class BuiltinWorkloads : public ::testing::TestWithParam<const FlowSizeDistribution*> {};

TEST_P(BuiltinWorkloads, TableIsValidCdf) {
  const auto& d = *GetParam();
  const auto table = d.table();
  ASSERT_GE(table.size(), 2u);
  EXPECT_DOUBLE_EQ(table.back().cum_prob, 1.0);
  for (std::size_t i = 1; i < table.size(); ++i) {
    EXPECT_GE(table[i].cum_prob, table[i - 1].cum_prob);
    EXPECT_GE(table[i].bytes, table[i - 1].bytes);
  }
}

TEST_P(BuiltinWorkloads, HeavyTailed) {
  // The paper's Fig. 2 point: flow-size distributions are heavy-tailed —
  // the median flow is far below the mean.
  const auto& d = *GetParam();
  EXPECT_LT(d.quantile(0.5), d.mean_bytes() * 0.5) << d.name();
}

TEST_P(BuiltinWorkloads, QuantileMonotone) {
  const auto& d = *GetParam();
  double prev = -1.0;
  for (int i = 0; i <= 100; ++i) {
    const double q = d.quantile(i / 100.0);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST_P(BuiltinWorkloads, SamplesWithinTableRange) {
  const auto& d = *GetParam();
  sim::Rng rng(7);
  const double max_bytes = d.table().back().bytes;
  for (int i = 0; i < 10'000; ++i) {
    const auto s = d.sample(rng);
    EXPECT_GE(s, 1);
    EXPECT_LE(static_cast<double>(s), max_bytes + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, BuiltinWorkloads,
                         ::testing::Values(&workload::web_search_workload(),
                                           &workload::data_mining_workload(),
                                           &workload::cache_workload(),
                                           &workload::hadoop_workload()),
                         [](const auto& info) { return info.param->name(); });

TEST(Workloads, WebSearchMatchesPaperQuote) {
  // "roughly 50% of flows are 1KB while 90% of bytes are from flows larger
  // than 100MB" describes data mining; web search's median is ~30-80 KB.
  const auto& ws = workload::web_search_workload();
  EXPECT_GT(ws.quantile(0.5), 10'000.0);
  EXPECT_LT(ws.quantile(0.5), 200'000.0);
  const auto& dm = workload::data_mining_workload();
  EXPECT_LE(dm.quantile(0.5), 2'000.0);
}

TEST(Workloads, AllWorkloadsSpanExposesFour) {
  EXPECT_EQ(workload::all_workloads().size(), 4u);
}

// ---------------------------------------------------------- generator --

TEST(FlowGenerator, ArrivalRateForLoadFormula) {
  // load 0.5 on 1 Gbps with mean 1 MB flows: 0.5 * 1e9 / (8 * 1e6) = 62.5/s
  EXPECT_DOUBLE_EQ(workload::arrival_rate_for_load(0.5, 1e9, 1e6), 62.5);
  EXPECT_THROW(workload::arrival_rate_for_load(0.0, 1e9, 1e6), std::invalid_argument);
  EXPECT_THROW(workload::arrival_rate_for_load(0.5, 0.0, 1e6), std::invalid_argument);
}

TEST(FlowGenerator, ProducesSortedStartsAtExpectedRate) {
  sim::Rng rng(3);
  const auto flows = workload::generate_poisson_flows(
      5000, 1000.0, workload::web_search_workload(), rng,
      [](std::size_t i, workload::FlowRequest& req) {
        req.src_host = static_cast<int>(i % 4);
        req.dst_host = 9;
      });
  ASSERT_EQ(flows.size(), 5000u);
  EXPECT_TRUE(std::is_sorted(flows.begin(), flows.end(),
                             [](const auto& a, const auto& b) { return a.start < b.start; }));
  // 5000 arrivals at 1000/s should span ~5 s.
  EXPECT_NEAR(to_seconds(flows.back().start), 5.0, 0.5);
  EXPECT_EQ(flows.back().dst_host, 9);
}

TEST(FlowGenerator, OfferedLoadMatchesTarget) {
  // Generated bytes / duration should approximate load * capacity.
  sim::Rng rng(11);
  const auto& dist = workload::web_search_workload();
  const double load = 0.6;
  const double cap = 1e9;
  const double rate = workload::arrival_rate_for_load(load, cap, dist.mean_bytes());
  const auto flows = workload::generate_poisson_flows(
      20'000, rate, dist, rng, [](std::size_t, workload::FlowRequest&) {});
  double total_bytes = 0.0;
  for (const auto& f : flows) total_bytes += static_cast<double>(f.size_bytes);
  const double duration = to_seconds(flows.back().start);
  EXPECT_NEAR(total_bytes * 8.0 / duration / cap, load, 0.05);
}

}  // namespace
}  // namespace dynaq
