// Kitchen-sink chaos tests: everything at once — mixed transports, PIAS,
// eviction, runtime buffer resizes, lossy links and ECMP — asserting the
// system stays consistent and every flow eventually completes.
#include <gtest/gtest.h>

#include <memory>

#include "harness/dynamic_experiment.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "topo/leaf_spine.hpp"
#include "topo/star.hpp"
#include "transport/host_agent.hpp"
#include "workload/flow_size_distribution.hpp"

namespace dynaq {
namespace {

TEST(Chaos, MixedTransportsWithRuntimeResizes) {
  sim::Simulator sim;
  sim::Rng rng(99);
  topo::StarConfig cfg;
  cfg.num_hosts = 9;
  cfg.queue_weights = {1, 2, 1, 2};
  cfg.scheme.kind = core::SchemeKind::kDynaQEvict;
  cfg.scheduler = topo::SchedulerKind::kDrr;
  topo::StarTopology topo(sim, cfg);

  // 40 finite flows with mixed CC kinds, mixed sizes, mixed queues.
  const transport::CcKind kinds[] = {transport::CcKind::kNewReno, transport::CcKind::kCubic,
                                     transport::CcKind::kNewRenoEcn, transport::CcKind::kDctcp};
  int completed = 0;
  for (std::uint32_t id = 1; id <= 40; ++id) {
    transport::FlowParams params;
    params.id = id;
    params.src_host = 1 + static_cast<int>(rng.uniform_int(0, 7));
    params.dst_host = 0;
    params.size_bytes = rng.uniform_int(2'000, 2'000'000);
    params.start = milliseconds(static_cast<std::int64_t>(rng.uniform_int(0, 50)));
    params.service_queue = static_cast<int>(rng.uniform_int(0, 3));
    params.cc = kinds[id % 4];
    params.pias = id % 3 == 0;
    params.delayed_ack = id % 5 == 0;
    params.initial_srtt = microseconds(std::int64_t{525});
    auto& rx = topo.agent(0).add_receiver(params);
    rx.on_complete = [&completed](const transport::FlowReceiver&) { ++completed; };
    topo.agent(params.src_host).add_sender(params).start();
  }

  // Resize the bottleneck buffer every 20 ms while traffic runs.
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(milliseconds(static_cast<std::int64_t>(20 * i)), [&topo, &rng] {
      topo.port_qdisc(0).resize_buffer(rng.uniform_int(40'000, 170'000));
    });
  }

  sim.run_until(seconds(std::int64_t{60}));
  EXPECT_EQ(completed, 40) << "every flow must complete despite the churn";
  // The DynaQ invariant must have survived all resizes.
  const auto& policy = dynamic_cast<const core::DynaQPolicy&>(topo.port_qdisc(0).policy());
  EXPECT_EQ(policy.controller().threshold_sum(), topo.port_qdisc(0).state().buffer_bytes);
}

TEST(Chaos, LeafSpineSurvivesHotspotAndIncast) {
  // 3x3 fabric; every host fires a burst at one victim host while
  // background traffic runs — ECMP, SPQ/DRR and DynaQ all engaged.
  sim::Simulator sim;
  topo::LeafSpineConfig cfg;
  cfg.num_leaves = 3;
  cfg.num_spines = 3;
  cfg.hosts_per_leaf = 3;
  cfg.queue_weights = {1, 1, 1, 1};
  cfg.scheme.kind = core::SchemeKind::kDynaQ;
  cfg.scheduler = topo::SchedulerKind::kSpqOverDrr;
  topo::LeafSpineTopology topo(sim, cfg);

  int completed = 0;
  std::uint32_t id = 1;
  auto flow = [&](int src, int dst, std::int64_t bytes, Time start, int queue) {
    transport::FlowParams params;
    params.id = id++;
    params.src_host = src;
    params.dst_host = dst;
    params.size_bytes = bytes;
    params.start = start;
    params.service_queue = queue;
    params.rto_min = milliseconds(std::int64_t{5});
    params.initial_srtt = microseconds(std::int64_t{90});
    auto& rx = topo.agent(dst).add_receiver(params);
    rx.on_complete = [&completed](const transport::FlowReceiver&) { ++completed; };
    topo.agent(src).add_sender(params).start();
  };

  int launched = 0;
  // Background: ring of medium flows.
  for (int h = 0; h < 9; ++h) {
    flow(h, (h + 4) % 9, 400'000, 0, 1 + h % 3);
    ++launched;
  }
  // Incast: everyone sends 50 KB to host 4 at t=5ms.
  for (int h = 0; h < 9; ++h) {
    if (h == 4) continue;
    flow(h, 4, 50'000, milliseconds(std::int64_t{5}), 1 + h % 3);
    ++launched;
  }
  sim.run_until(seconds(std::int64_t{30}));
  EXPECT_EQ(completed, launched);
  for (const auto* qd : topo.all_qdiscs()) {
    // Byte accounting must be clean everywhere after the storm.
    std::int64_t bytes = 0;
    for (const auto& q : qd->state().queues) bytes += q.bytes;
    EXPECT_EQ(bytes, qd->backlog_bytes());
  }
}

TEST(Chaos, AllSchemesCompleteTheSameWorkload) {
  // Same 300-flow workload through every scheme: completion is mandatory,
  // whatever the drop/mark policy does.
  for (const auto kind :
       {core::SchemeKind::kDynaQ, core::SchemeKind::kDynaQEvict, core::SchemeKind::kBestEffort,
        core::SchemeKind::kPql, core::SchemeKind::kDynamicThreshold, core::SchemeKind::kDynaQEcn,
        core::SchemeKind::kTcn, core::SchemeKind::kPmsb, core::SchemeKind::kPerQueueEcn,
        core::SchemeKind::kMqEcn}) {
    harness::DynamicStarConfig cfg;
    cfg.star.num_hosts = 5;
    cfg.star.queue_weights = {1, 1, 1, 1, 1};
    cfg.star.scheme.kind = kind;
    cfg.star.scheme.ecn.port_threshold_bytes = 30'000;
    cfg.star.scheme.ecn.sojourn_threshold = microseconds(std::int64_t{240});
    cfg.star.scheme.ecn.capacity_bps = 1e9;
    cfg.star.scheme.ecn.rtt = microseconds(std::int64_t{500});
    cfg.star.scheduler = topo::SchedulerKind::kSpqOverDrr;
    cfg.num_flows = 300;
    cfg.load = 0.6;
    cfg.dist = &workload::web_search_workload();
    cfg.cc = core::scheme_uses_ecn(kind) ? transport::CcKind::kDctcp
                                         : transport::CcKind::kNewReno;
    cfg.seed = 13;
    const auto r = harness::run_dynamic_star_experiment(cfg);
    EXPECT_EQ(r.incomplete, 0u) << core::scheme_name(kind);
    EXPECT_EQ(r.fcts.count(), 300u) << core::scheme_name(kind);
  }
}

}  // namespace
}  // namespace dynaq
