// Determinism and cross-scheme scenario sweeps: every experiment must be
// bit-identical across runs with the same seed, and every (scheme,
// scheduler, transport) combination must satisfy basic sanity invariants
// end-to-end.
#include <gtest/gtest.h>

#include <string>

#include "check/trajectory_hash.hpp"
#include "harness/dynamic_experiment.hpp"
#include "harness/static_experiment.hpp"
#include "sim/simulator.hpp"
#include "stats/fairness.hpp"
#include "telemetry/hub.hpp"
#include "workload/flow_size_distribution.hpp"

namespace dynaq {
namespace {

TEST(Determinism, DynamicStarIsBitIdentical) {
  harness::DynamicStarConfig cfg;
  cfg.star.num_hosts = 5;
  cfg.star.queue_weights = {1, 1, 1, 1, 1};
  cfg.star.scheduler = topo::SchedulerKind::kSpqOverDrr;
  cfg.num_flows = 250;
  cfg.load = 0.6;
  cfg.dist = &workload::web_search_workload();
  cfg.seed = 21;
  const auto a = harness::run_dynamic_star_experiment(cfg);
  const auto b = harness::run_dynamic_star_experiment(cfg);
  ASSERT_EQ(a.fcts.count(), b.fcts.count());
  for (std::size_t i = 0; i < a.fcts.count(); ++i) {
    ASSERT_EQ(a.fcts.records()[i].finish, b.fcts.records()[i].finish) << "flow " << i;
  }
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_NE(a.trajectory_hash, 0u);
  EXPECT_EQ(a.trajectory_hash, b.trajectory_hash);
}

TEST(Determinism, LeafSpineIsBitIdentical) {
  harness::DynamicLeafSpineConfig cfg;
  cfg.fabric.num_leaves = 3;
  cfg.fabric.num_spines = 3;
  cfg.fabric.hosts_per_leaf = 3;
  cfg.num_flows = 150;
  cfg.load = 0.5;
  cfg.seed = 8;
  const auto a = harness::run_dynamic_leaf_spine_experiment(cfg);
  const auto b = harness::run_dynamic_leaf_spine_experiment(cfg);
  ASSERT_EQ(a.fcts.count(), b.fcts.count());
  for (std::size_t i = 0; i < a.fcts.count(); ++i) {
    ASSERT_EQ(a.fcts.records()[i].finish, b.fcts.records()[i].finish);
  }
  EXPECT_EQ(a.events, b.events);
  EXPECT_NE(a.trajectory_hash, 0u);
  EXPECT_EQ(a.trajectory_hash, b.trajectory_hash);
}

// ------------------------------------- trajectory-fingerprint oracle --

TEST(TrajectoryHash, SeedChangesTheHash) {
  harness::DynamicStarConfig cfg;
  cfg.star.num_hosts = 5;
  cfg.star.queue_weights = {1, 1, 1, 1, 1};
  cfg.star.scheduler = topo::SchedulerKind::kSpqOverDrr;
  cfg.num_flows = 150;
  cfg.load = 0.5;
  cfg.dist = &workload::web_search_workload();
  cfg.seed = 1;
  const auto a = harness::run_dynamic_star_experiment(cfg);
  cfg.seed = 2;
  const auto b = harness::run_dynamic_star_experiment(cfg);
  EXPECT_NE(a.trajectory_hash, 0u);
  EXPECT_NE(b.trajectory_hash, 0u);
  EXPECT_NE(a.trajectory_hash, b.trajectory_hash);
}

TEST(TrajectoryHash, StaticExperimentStableAndOptional) {
  harness::StaticExperimentConfig cfg;
  cfg.star.num_hosts = 5;
  cfg.star.queue_weights = {1, 1};
  cfg.groups = {
      {.queue = 0, .num_flows = 2, .first_src_host = 1, .num_src_hosts = 2},
      {.queue = 1, .num_flows = 2, .first_src_host = 3, .num_src_hosts = 2},
  };
  cfg.duration = milliseconds(std::int64_t{200});
  cfg.seed = 7;
  const auto a = harness::run_static_experiment(cfg);
  const auto b = harness::run_static_experiment(cfg);
  EXPECT_NE(a.trajectory_hash, 0u);
  EXPECT_EQ(a.trajectory_hash, b.trajectory_hash);

  cfg.fingerprint_trajectory = false;
  const auto off = harness::run_static_experiment(cfg);
  EXPECT_EQ(off.trajectory_hash, 0u);
  // Opting out of the oracle must not change the trajectory itself.
  EXPECT_EQ(off.events, a.events);
}

// Two trajectories with identical event timing but a different packet-level
// decision — the signature of a nondeterministic buffer policy (e.g. one
// picking its drop victim by iterating an unordered_map). The pop-stream
// digest alone cannot separate them; the hub's event digest must.
TEST(TrajectoryHash, CapturesDecisionDivergence) {
  const auto run = [](std::int16_t victim) {
    sim::Simulator sim;
    sim.enable_trajectory_fingerprint();
    telemetry::Hub hub(sim, {.fingerprint = true});
    hub.register_port("sw.p0");
    sim.schedule_at(microseconds(std::int64_t{10}), [&hub, victim] {
      hub.emit({.kind = telemetry::EventKind::kDrop,
                .reason = telemetry::DropReason::kThreshold,
                .port = 0,
                .queue = 1,
                .other_queue = victim,
                .bytes = 1500,
                .flow = 42});
    });
    sim.run_until(milliseconds(std::int64_t{1}));
    check::TrajectoryHash th;
    th.fold(sim).fold(hub);
    return th.value();
  };
  EXPECT_EQ(run(2), run(2));
  EXPECT_NE(run(2), run(3));
}

TEST(TrajectoryHash, PopStreamSeesEventTiming) {
  const auto run = [](Time when) {
    sim::Simulator sim;
    sim.enable_trajectory_fingerprint();
    int fired = 0;
    sim.schedule_at(when, [&fired] { ++fired; });
    sim.run_until(milliseconds(std::int64_t{1}));
    EXPECT_EQ(fired, 1);
    return sim.trajectory_fingerprint();
  };
  EXPECT_EQ(run(microseconds(std::int64_t{5})), run(microseconds(std::int64_t{5})));
  EXPECT_NE(run(microseconds(std::int64_t{5})), run(microseconds(std::int64_t{6})));
}

TEST(TrajectoryHash, HexIsCanonical) {
  EXPECT_EQ(check::TrajectoryHash::fingerprint_hex(0), "0x0000000000000000");
  EXPECT_EQ(check::TrajectoryHash::fingerprint_hex(0xdeadbeefcafe0123ull),
            "0xdeadbeefcafe0123");
  check::TrajectoryHash th;
  EXPECT_EQ(th.hex(), check::TrajectoryHash::fingerprint_hex(th.value()));
}

// ----------------------------------- scheme x scheduler x cc sweep --

struct ScenarioParam {
  core::SchemeKind scheme;
  topo::SchedulerKind scheduler;
  transport::CcKind cc;
};

std::string scenario_name(const ScenarioParam& p) {
  std::string name = std::string(core::scheme_name(p.scheme)) + "_" +
                     std::string(topo::scheduler_kind_name(p.scheduler)) + "_" +
                     std::string(transport::cc_name(p.cc));
  for (char& c : name) {
    if (c == '+' || c == '/' || c == '-') c = 'x';
  }
  return name;
}

class ScenarioSweep : public ::testing::TestWithParam<ScenarioParam> {};

TEST_P(ScenarioSweep, TwoQueueContentionSanity) {
  const auto param = GetParam();
  harness::StaticExperimentConfig cfg;
  cfg.star.num_hosts = 5;
  cfg.star.queue_weights = {1, 1};
  cfg.star.scheme.kind = param.scheme;
  cfg.star.scheme.ecn.port_threshold_bytes = 30'000;
  cfg.star.scheme.ecn.sojourn_threshold = microseconds(std::int64_t{240});
  cfg.star.scheme.ecn.capacity_bps = 1e9;
  cfg.star.scheme.ecn.rtt = microseconds(std::int64_t{500});
  cfg.star.scheduler = param.scheduler;
  cfg.groups = {
      {.queue = 0, .num_flows = 3, .first_src_host = 1, .num_src_hosts = 2,
       .start = 0, .stop = 0, .cc = param.cc},
      {.queue = 1, .num_flows = 6, .first_src_host = 3, .num_src_hosts = 2,
       .start = 0, .stop = 0, .cc = param.cc},
  };
  cfg.duration = seconds(std::int64_t{2});
  cfg.seed = 5;
  const auto r = harness::run_static_experiment(cfg);

  // Sanity invariants that must hold for every combination:
  const double q0 = r.meter.mean_gbps(0, 2, r.meter.num_windows());
  const double q1 = r.meter.mean_gbps(1, 2, r.meter.num_windows());
  EXPECT_LE(q0 + q1, 1.02) << "cannot exceed line rate";
  EXPECT_GT(q0 + q1, 0.80) << "link must stay mostly utilized";
  EXPECT_GT(q0, 0.05) << "no queue may starve completely";
  EXPECT_GT(q1, 0.05);
  EXPECT_LE(r.bottleneck_stats.dropped + r.bottleneck_stats.enqueued,
            r.bottleneck_stats.enqueued + r.bottleneck_stats.dropped);  // no overflowing counters

  // Strong isolation claim only for the isolating schemes on fair
  // schedulers.
  const bool isolating = param.scheme == core::SchemeKind::kDynaQ ||
                         param.scheme == core::SchemeKind::kDynaQEvict ||
                         param.scheme == core::SchemeKind::kPql;
  const bool fair_sched = param.scheduler == topo::SchedulerKind::kDrr ||
                          param.scheduler == topo::SchedulerKind::kWrr;
  if (isolating && fair_sched) {
    EXPECT_NEAR(q0, q1, 0.15) << "isolating scheme must keep rough fairness";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, ScenarioSweep,
    ::testing::Values(
        ScenarioParam{core::SchemeKind::kDynaQ, topo::SchedulerKind::kDrr,
                      transport::CcKind::kNewReno},
        ScenarioParam{core::SchemeKind::kDynaQ, topo::SchedulerKind::kWrr,
                      transport::CcKind::kNewReno},
        ScenarioParam{core::SchemeKind::kDynaQ, topo::SchedulerKind::kDrr,
                      transport::CcKind::kCubic},
        ScenarioParam{core::SchemeKind::kDynaQEvict, topo::SchedulerKind::kDrr,
                      transport::CcKind::kNewReno},
        ScenarioParam{core::SchemeKind::kPql, topo::SchedulerKind::kDrr,
                      transport::CcKind::kNewReno},
        ScenarioParam{core::SchemeKind::kPql, topo::SchedulerKind::kWrr,
                      transport::CcKind::kCubic},
        ScenarioParam{core::SchemeKind::kBestEffort, topo::SchedulerKind::kDrr,
                      transport::CcKind::kNewReno},
        ScenarioParam{core::SchemeKind::kDynamicThreshold, topo::SchedulerKind::kDrr,
                      transport::CcKind::kNewReno},
        ScenarioParam{core::SchemeKind::kDynaQEcn, topo::SchedulerKind::kDrr,
                      transport::CcKind::kDctcp},
        ScenarioParam{core::SchemeKind::kPmsb, topo::SchedulerKind::kDrr,
                      transport::CcKind::kDctcp},
        ScenarioParam{core::SchemeKind::kTcn, topo::SchedulerKind::kDrr,
                      transport::CcKind::kDctcp},
        ScenarioParam{core::SchemeKind::kPerQueueEcn, topo::SchedulerKind::kWrr,
                      transport::CcKind::kDctcp},
        ScenarioParam{core::SchemeKind::kMqEcn, topo::SchedulerKind::kDrr,
                      transport::CcKind::kDctcp},
        ScenarioParam{core::SchemeKind::kDynaQEcn, topo::SchedulerKind::kDrr,
                      transport::CcKind::kNewRenoEcn},
        ScenarioParam{core::SchemeKind::kPmsb, topo::SchedulerKind::kWrr,
                      transport::CcKind::kNewRenoEcn}),
    [](const auto& info) { return scenario_name(info.param); });

// -------------------------------------------------- RFC 3168 TCP-ECN --

TEST(NewRenoEcn, HalvesOncePerWindowOnEce) {
  auto cc = transport::make_congestion_control(transport::CcKind::kNewRenoEcn);
  cc->init(1460, 20.0);
  EXPECT_TRUE(cc->wants_ecn());
  const double w = cc->cwnd_bytes();
  transport::AckInfo a;
  a.bytes_acked = 1460;
  a.ece = true;
  a.snd_una = 1460;
  a.snd_nxt = 29'200;
  cc->on_ack(a);
  EXPECT_DOUBLE_EQ(cc->cwnd_bytes(), w / 2.0);
  // Further marks inside the same window: no additional cut.
  transport::AckInfo b = a;
  b.snd_una = 2'920;
  cc->on_ack(b);
  EXPECT_GE(cc->cwnd_bytes(), w / 2.0);
  // Past the CWR point: a new mark cuts again.
  transport::AckInfo c = a;
  c.snd_una = 30'000;
  c.snd_nxt = 60'000;
  cc->on_ack(c);
  // (plus the ~0.1 MSS of congestion-avoidance growth from the suppressed
  // mark inside the CWR window)
  EXPECT_NEAR(cc->cwnd_bytes(), w / 4.0, 150.0);
}

}  // namespace
}  // namespace dynaq
