// Transport-layer tests: congestion-control units (NewReno, CUBIC, DCTCP),
// sender/receiver reliability with injected loss, RTT estimation, PIAS
// tagging and ECN echo.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "net/node.hpp"
#include "net/port.hpp"
#include "net/queue_disc.hpp"
#include "sim/simulator.hpp"
#include "transport/cubic.hpp"
#include "transport/dctcp.hpp"
#include "transport/flow.hpp"
#include "transport/host_agent.hpp"
#include "transport/newreno.hpp"

namespace dynaq {
namespace {

using transport::AckInfo;

// ------------------------------------------------------------ NewReno --

AckInfo ack(std::int64_t bytes, Time now = microseconds(std::int64_t{500}), bool ece = false) {
  AckInfo a;
  a.bytes_acked = bytes;
  a.now = now;
  a.ece = ece;
  a.srtt = microseconds(std::int64_t{500});
  return a;
}

TEST(NewReno, InitialWindowIsTenPackets) {
  transport::NewRenoCc cc;
  cc.init(1460, 10.0);
  EXPECT_DOUBLE_EQ(cc.cwnd_bytes(), 14'600.0);
  EXPECT_TRUE(cc.in_slow_start());
}

TEST(NewReno, SlowStartDoublesPerWindow) {
  transport::NewRenoCc cc;
  cc.init(1460, 10.0);
  const double before = cc.cwnd_bytes();
  cc.on_ack(ack(static_cast<std::int64_t>(before)));  // ack a full window
  EXPECT_DOUBLE_EQ(cc.cwnd_bytes(), 2 * before);
}

TEST(NewReno, CongestionAvoidanceGrowsOneMssPerRtt) {
  transport::NewRenoCc cc;
  cc.init(1460, 10.0);
  cc.on_loss_event(ack(0));  // forces ssthresh = cwnd/2, exits slow start
  const double w = cc.cwnd_bytes();
  cc.on_ack(ack(static_cast<std::int64_t>(w)));  // one full window of ACKs
  EXPECT_NEAR(cc.cwnd_bytes(), w + 1460.0, 1.0);
  EXPECT_FALSE(cc.in_slow_start());
}

TEST(NewReno, LossHalvesWindow) {
  transport::NewRenoCc cc;
  cc.init(1460, 20.0);
  const double w = cc.cwnd_bytes();
  cc.on_loss_event(ack(0));
  EXPECT_DOUBLE_EQ(cc.cwnd_bytes(), w / 2.0);
  EXPECT_DOUBLE_EQ(cc.ssthresh_bytes(), w / 2.0);
}

TEST(NewReno, LossNeverBelowTwoMss) {
  transport::NewRenoCc cc;
  cc.init(1460, 2.0);
  cc.on_loss_event(ack(0));
  EXPECT_DOUBLE_EQ(cc.cwnd_bytes(), 2.0 * 1460.0);
}

TEST(NewReno, TimeoutResetsToOneMss) {
  transport::NewRenoCc cc;
  cc.init(1460, 20.0);
  cc.on_timeout();
  EXPECT_DOUBLE_EQ(cc.cwnd_bytes(), 1460.0);
  EXPECT_DOUBLE_EQ(cc.ssthresh_bytes(), 10.0 * 1460.0);
  EXPECT_TRUE(cc.in_slow_start());
}

// -------------------------------------------------------------- CUBIC --

TEST(Cubic, SlowStartThenConcaveGrowthTowardWmax) {
  transport::CubicCc cc;
  cc.init(1460, 10.0);
  // Grow to ~100 pkts, lose, then verify cubic recovery toward Wmax.
  cc.on_ack(ack(130'000, microseconds(std::int64_t{500})));
  const double w_max = cc.cwnd_bytes();
  cc.on_loss_event(ack(0, milliseconds(std::int64_t{1})));
  EXPECT_NEAR(cc.cwnd_bytes(), 0.7 * w_max, 1.0);

  // Feed ACKs over simulated time; window should approach w_max again and
  // be (weakly) monotone through the concave region.
  double prev = cc.cwnd_bytes();
  for (int ms = 2; ms < 2'000; ms += 10) {
    cc.on_ack(ack(1460 * 10, milliseconds(std::int64_t{ms})));
    EXPECT_GE(cc.cwnd_bytes(), prev - 1e-6);
    prev = cc.cwnd_bytes();
  }
  EXPECT_GT(cc.cwnd_bytes(), 0.95 * w_max);
}

TEST(Cubic, TimeoutDropsToOneMss) {
  transport::CubicCc cc;
  cc.init(1460, 10.0);
  cc.on_timeout();
  EXPECT_DOUBLE_EQ(cc.cwnd_bytes(), 1460.0);
}

TEST(Cubic, BetaIsSeventyPercent) {
  transport::CubicCc cc;
  cc.init(1460, 100.0);
  cc.on_ack(ack(1'000'000));  // leave slow start far behind? still ss; force loss
  const double w = cc.cwnd_bytes();
  cc.on_loss_event(ack(0));
  EXPECT_NEAR(cc.cwnd_bytes() / w, 0.7, 1e-9);
}

// -------------------------------------------------------------- DCTCP --

TEST(Dctcp, WantsEcn) {
  transport::DctcpCc cc;
  cc.init(1460, 10.0);
  EXPECT_TRUE(cc.wants_ecn());
  transport::NewRenoCc reno;
  EXPECT_FALSE(reno.wants_ecn());
}

TEST(Dctcp, AlphaConvergesToMarkFraction) {
  transport::DctcpCc cc;
  cc.init(1460, 10.0);
  // Feed 300 windows with 25% marked bytes.
  std::uint64_t snd = 0;
  for (int w = 0; w < 300; ++w) {
    for (int i = 0; i < 4; ++i) {
      AckInfo a = ack(1460, milliseconds(std::int64_t{w * 10 + i}), i == 0);
      snd += 1460;
      a.snd_una = snd;
      a.snd_nxt = snd;  // window boundary every ACK group
      cc.on_ack(a);
    }
  }
  EXPECT_NEAR(cc.alpha(), 0.25, 0.08);
}

TEST(Dctcp, FullMarkingHalvesLikeTcp) {
  transport::DctcpCc cc;
  cc.init(1460, 10.0);
  // Alpha starts at 1.0; a marked ACK should cut the window by ~half.
  const double w = cc.cwnd_bytes();
  AckInfo a = ack(1460, milliseconds(std::int64_t{1}), true);
  a.snd_una = 1460;
  a.snd_nxt = 14'600;
  cc.on_ack(a);
  EXPECT_LE(cc.cwnd_bytes(), w * 0.55);
}

TEST(Dctcp, AtMostOneReductionPerWindow) {
  transport::DctcpCc cc;
  cc.init(1460, 10.0);
  AckInfo a = ack(1460, milliseconds(std::int64_t{1}), true);
  a.snd_una = 1460;
  a.snd_nxt = 14'600;
  cc.on_ack(a);
  const double after_first = cc.cwnd_bytes();
  // More marked ACKs within the same window (snd_una < cwr_end=14600).
  for (int i = 2; i <= 5; ++i) {
    AckInfo b = ack(1460, milliseconds(std::int64_t{i}), true);
    b.snd_una = static_cast<std::uint64_t>(i) * 1460;
    b.snd_nxt = 14'600;
    cc.on_ack(b);
  }
  EXPECT_GE(cc.cwnd_bytes(), after_first) << "no further cuts inside the CWR window";
}

// ------------------------------------------------ end-to-end with loss --

// Queue discipline that drops chosen data-packet ordinals once — failure
// injection for retransmission-path tests.
class DropNthQueue final : public net::QueueDisc {
 public:
  explicit DropNthQueue(std::set<std::uint64_t> drop_ordinals)
      : drops_(std::move(drop_ordinals)) {}

  bool enqueue(net::Packet&& p) override {
    if (!p.is_ack()) {
      const std::uint64_t ordinal = data_seen_++;
      if (drops_.erase(ordinal) > 0) return false;
    }
    inner_.enqueue(std::move(p));
    return true;
  }
  std::optional<net::Packet> dequeue() override { return inner_.dequeue(); }
  bool empty() const override { return inner_.empty(); }
  std::int64_t backlog_bytes() const override { return inner_.backlog_bytes(); }

 private:
  std::set<std::uint64_t> drops_;
  std::uint64_t data_seen_ = 0;
  net::DropTailQueue inner_;
};

struct Pipe {
  sim::Simulator sim;
  std::unique_ptr<net::Host> a;
  std::unique_ptr<net::Host> b;
  std::unique_ptr<transport::HostAgent> agent_a;
  std::unique_ptr<transport::HostAgent> agent_b;

  explicit Pipe(std::set<std::uint64_t> drop_ordinals = {}) {
    auto nic_a = std::make_unique<net::Port>(sim, 1e9, microseconds(std::int64_t{50}),
                                             std::make_unique<DropNthQueue>(drop_ordinals));
    auto nic_b = std::make_unique<net::Port>(sim, 1e9, microseconds(std::int64_t{50}),
                                             std::make_unique<net::DropTailQueue>());
    net::connect(*nic_a, *nic_b);
    a = std::make_unique<net::Host>(sim, 0, std::move(nic_a));
    b = std::make_unique<net::Host>(sim, 1, std::move(nic_b));
    agent_a = std::make_unique<transport::HostAgent>(*a);
    agent_b = std::make_unique<transport::HostAgent>(*b);
  }
};

transport::FlowParams flow_of(std::int64_t bytes) {
  transport::FlowParams p;
  p.id = 1;
  p.src_host = 0;
  p.dst_host = 1;
  p.size_bytes = bytes;
  p.rto_min = milliseconds(std::int64_t{10});
  return p;
}

TEST(EndToEnd, LosslessTransferCompletesAtExpectedTime) {
  Pipe pipe;
  const auto params = flow_of(14'600);  // exactly one initial window
  Time done = -1;
  auto& rx = pipe.agent_b->add_receiver(params);
  rx.on_complete = [&](const transport::FlowReceiver& r) { done = r.completion_time(); };
  auto& tx = pipe.agent_a->add_sender(params);
  tx.start();
  pipe.sim.run();
  ASSERT_GT(done, 0);
  // 10 packets back-to-back: last bit arrives after 10 serializations
  // (12 us each) + 50 us propagation.
  EXPECT_EQ(done, microseconds(std::int64_t{170}));
  EXPECT_TRUE(tx.complete());
  EXPECT_EQ(tx.stats().retransmissions, 0u);
}

TEST(EndToEnd, SingleLossRecoversViaFastRetransmit) {
  Pipe pipe({2});  // drop the 3rd data packet once
  const auto params = flow_of(14'600);
  Time done = -1;
  pipe.agent_b->add_receiver(params).on_complete =
      [&](const transport::FlowReceiver& r) { done = r.completion_time(); };
  auto& tx = pipe.agent_a->add_sender(params);
  tx.start();
  pipe.sim.run();
  ASSERT_GT(done, 0);
  EXPECT_EQ(tx.stats().fast_retransmits, 1u);
  EXPECT_EQ(tx.stats().timeouts, 0u);
  EXPECT_LT(done, milliseconds(std::int64_t{5})) << "no RTO should be involved";
}

TEST(EndToEnd, LostRetransmissionFallsBackToRto) {
  // Drop packet 2 and also its retransmission (data ordinal 10).
  Pipe pipe({2, 10});
  const auto params = flow_of(14'600);
  Time done = -1;
  pipe.agent_b->add_receiver(params).on_complete =
      [&](const transport::FlowReceiver& r) { done = r.completion_time(); };
  auto& tx = pipe.agent_a->add_sender(params);
  tx.start();
  pipe.sim.run();
  ASSERT_GT(done, 0);
  EXPECT_GE(tx.stats().timeouts, 1u);
  EXPECT_GE(done, milliseconds(std::int64_t{10})) << "RTOmin must gate the recovery";
}

TEST(EndToEnd, TailLossRecoversViaRto) {
  Pipe pipe({9});  // drop the last packet of the window: no dupACKs possible
  const auto params = flow_of(14'600);
  Time done = -1;
  pipe.agent_b->add_receiver(params).on_complete =
      [&](const transport::FlowReceiver& r) { done = r.completion_time(); };
  auto& tx = pipe.agent_a->add_sender(params);
  tx.start();
  pipe.sim.run();
  ASSERT_GT(done, 0);
  EXPECT_GE(tx.stats().timeouts, 1u);
}

TEST(EndToEnd, BurstLossStillCompletes) {
  Pipe pipe({1, 2, 3, 4, 5, 6, 7});  // drop most of the initial window
  const auto params = flow_of(50'000);
  Time done = -1;
  pipe.agent_b->add_receiver(params).on_complete =
      [&](const transport::FlowReceiver& r) { done = r.completion_time(); };
  auto& tx = pipe.agent_a->add_sender(params);
  tx.start();
  pipe.sim.run_until(seconds(std::int64_t{10}));
  ASSERT_GT(done, 0) << "flow must complete despite burst loss";
}

TEST(EndToEnd, SrttConvergesToPathRtt) {
  // A flow short enough not to self-congest its NIC: the RTT estimate must
  // reflect the raw path (2x50 us propagation + serialization), not
  // queueing of its own backlog.
  Pipe pipe;
  transport::FlowParams params = flow_of(14'600);
  pipe.agent_b->add_receiver(params);
  auto& tx = pipe.agent_a->add_sender(params);
  tx.start();
  pipe.sim.run();
  EXPECT_GT(tx.srtt(), microseconds(std::int64_t{100}));
  EXPECT_LT(tx.srtt(), microseconds(std::int64_t{300}));
}

// Queue discipline that sets CE on every ECN-capable data packet — models
// a fully congested marking switch for DCTCP feedback tests.
class CeMarkingQueue final : public net::QueueDisc {
 public:
  bool enqueue(net::Packet&& p) override {
    if (!p.is_ack() && p.has(net::kFlagEct)) p.set(net::kFlagCe);
    return inner_.enqueue(std::move(p));
  }
  std::optional<net::Packet> dequeue() override { return inner_.dequeue(); }
  bool empty() const override { return inner_.empty(); }
  std::int64_t backlog_bytes() const override { return inner_.backlog_bytes(); }

 private:
  net::DropTailQueue inner_;
};

TEST(EndToEnd, EcnEchoFeedsDctcp) {
  sim::Simulator sim;
  auto nic_a = std::make_unique<net::Port>(sim, 1e9, microseconds(std::int64_t{50}),
                                           std::make_unique<CeMarkingQueue>());
  auto nic_b = std::make_unique<net::Port>(sim, 1e9, microseconds(std::int64_t{50}),
                                           std::make_unique<net::DropTailQueue>());
  net::connect(*nic_a, *nic_b);
  net::Host a(sim, 0, std::move(nic_a));
  net::Host b(sim, 1, std::move(nic_b));
  transport::HostAgent agent_a(a);
  transport::HostAgent agent_b(b);

  transport::FlowParams params = flow_of(500'000);
  params.cc = transport::CcKind::kDctcp;
  agent_b.add_receiver(params);
  auto& tx = agent_a.add_sender(params);
  tx.start();
  sim.run();
  ASSERT_TRUE(tx.complete());
  // With every packet CE-marked, alpha must stay pinned near 1 and the
  // window must have been repeatedly cut (flow still completes, slowly).
  const auto& dctcp = dynamic_cast<const transport::DctcpCc&>(tx.cc());
  EXPECT_GT(dctcp.alpha(), 0.8);
  // The per-window alpha/2 cuts must pin the window far below where an
  // unmarked slow-start would end (~the 500 KB flow size).
  EXPECT_LE(dctcp.cwnd_bytes(), 100'000.0);
}

TEST(EndToEnd, UnboundedFlowStopsAtStopTime) {
  Pipe pipe;
  transport::FlowParams params = flow_of(0);
  params.stop = milliseconds(std::int64_t{2});
  pipe.agent_b->add_receiver(params);
  auto& tx = pipe.agent_a->add_sender(params);
  tx.start();
  pipe.sim.run_until(milliseconds(std::int64_t{100}));
  EXPECT_FALSE(tx.complete());  // unbounded flows never "complete"
  const auto sent_at_stop = tx.stats().bytes_sent;
  pipe.sim.run_until(milliseconds(std::int64_t{200}));
  EXPECT_EQ(tx.stats().bytes_sent, sent_at_stop) << "no new data after stop";
}

// --------------------------------------------------------------- PIAS --

TEST(Pias, TagsFirstBytesHighPriority) {
  transport::FlowParams p;
  p.service_queue = 3;
  p.pias = true;
  p.pias_threshold_bytes = 100'000;
  p.pias_high_queue = 0;
  EXPECT_EQ(transport::queue_for_segment(p, 0), 0);
  EXPECT_EQ(transport::queue_for_segment(p, 99'999), 0);
  EXPECT_EQ(transport::queue_for_segment(p, 100'000), 3);
  EXPECT_EQ(transport::queue_for_segment(p, 5'000'000), 3);
}

TEST(Pias, DisabledUsesServiceQueue) {
  transport::FlowParams p;
  p.service_queue = 2;
  p.pias = false;
  EXPECT_EQ(transport::queue_for_segment(p, 0), 2);
}

// ---------------------------------------------------------- HostAgent --

TEST(HostAgent, CountsStrayPackets) {
  Pipe pipe;
  // No receiver registered at B: data packets for flow 1 are strays.
  const auto params = flow_of(1'460);
  pipe.agent_a->add_sender(params).start();
  pipe.sim.run_until(milliseconds(std::int64_t{50}));
  EXPECT_GT(pipe.agent_b->stray_packets(), 0u);
}

}  // namespace
}  // namespace dynaq
