// Micro-benchmark for the paper's §IV-A hardware-cost claims: Algorithm 1
// runs in a handful of simple operations (≤7 clock cycles on an ASIC) and
// the loop-free MaxIdx victim search is O(log M). We measure the software
// analogue: per-arrival latency of the controller hot path and the two
// victim-search implementations across queue counts.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/dynaq_controller.hpp"
#include "sim/random.hpp"

namespace {

using dynaq::core::DynaQConfig;
using dynaq::core::DynaQController;

DynaQController make_controller(int queues, bool loop_free) {
  DynaQConfig cfg;
  cfg.buffer_bytes = 192'000;
  cfg.weights.assign(static_cast<std::size_t>(queues), 1.0);
  cfg.loop_free_search = loop_free;
  return DynaQController(cfg);
}

void BM_OnArrival(benchmark::State& state) {
  const int queues = static_cast<int>(state.range(0));
  auto ctl = make_controller(queues, /*loop_free=*/true);
  dynaq::sim::Rng rng(1);
  std::vector<std::int64_t> occupancy(static_cast<std::size_t>(queues));
  // Pre-generate occupancy patterns so RNG cost stays out of the loop.
  std::vector<std::vector<std::int64_t>> patterns;
  for (int i = 0; i < 64; ++i) {
    auto& p = patterns.emplace_back(occupancy);
    for (auto& v : p) v = rng.uniform_int(0, 192'000 / queues);
  }
  int p = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctl.on_arrival(patterns[i++ & 63], p, 1500));
    p = (p + 1) % queues;
  }
}
BENCHMARK(BM_OnArrival)->Arg(2)->Arg(4)->Arg(8)->Arg(64);

void BM_VictimTournament(benchmark::State& state) {
  const int queues = static_cast<int>(state.range(0));
  const auto ctl = make_controller(queues, true);
  int p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctl.find_victim_tournament(p));
    p = (p + 1) % queues;
  }
}
BENCHMARK(BM_VictimTournament)->Arg(2)->Arg(4)->Arg(8)->Arg(64);

void BM_VictimLinear(benchmark::State& state) {
  const int queues = static_cast<int>(state.range(0));
  const auto ctl = make_controller(queues, false);
  int p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctl.find_victim_linear(p));
    p = (p + 1) % queues;
  }
}
BENCHMARK(BM_VictimLinear)->Arg(2)->Arg(4)->Arg(8)->Arg(64);

void BM_BelowThresholdFastPath(benchmark::State& state) {
  // The common case (line 1 false): queue under threshold, no search.
  auto ctl = make_controller(8, true);
  const std::vector<std::int64_t> occupancy(8, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctl.on_arrival(occupancy, 3, 1500));
  }
}
BENCHMARK(BM_BelowThresholdFastPath);

}  // namespace

BENCHMARK_MAIN();
