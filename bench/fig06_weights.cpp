// Figure 6: bandwidth sharing between 4 DRR queues with weights 4:3:2:1
// (quantums 6/4.5/3/1.5 KB). Queue i still carries 2^i flows; the ideal
// throughput *shares* are 0.4/0.3/0.2/0.1 regardless of flow counts.
#include "bench/common.hpp"

using namespace dynaq;

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const auto duration = seconds(cli.integer("seconds", 10));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 1));

  std::puts("Figure 6 — throughput share with queue weights 4:3:2:1, queue i has 2^i flows\n");

  const core::SchemeKind kinds[] = {core::SchemeKind::kBestEffort, core::SchemeKind::kPql,
                                    core::SchemeKind::kDynaQ};
  for (const auto kind : kinds) {
    harness::StaticExperimentConfig cfg;
    cfg.star = bench::testbed_star(kind, /*num_hosts=*/9, {4, 3, 2, 1});
    for (int q = 0; q < 4; ++q) {
      cfg.groups.push_back({.queue = q,
                            .num_flows = 1 << (q + 1),
                            .first_src_host = 1 + 2 * q,
                            .num_src_hosts = 2,
                            .start = 0,
                            .stop = 0,
                            .cc = transport::CcKind::kNewReno});
    }
    cfg.duration = duration;
    cfg.meter_window = milliseconds(std::int64_t{500});
    cfg.seed = seed;
    const auto r = harness::run_static_experiment(cfg);

    std::printf("--- %s ---\n", std::string(core::scheme_name(kind)).c_str());
    harness::Table t({"time_s", "share_q1", "share_q2", "share_q3", "share_q4"});
    for (std::size_t w = 0; w < r.meter.num_windows(); ++w) {
      const auto xs = r.meter.window_gbps(w);
      t.row({bench::fmt((static_cast<double>(w) + 0.5) * 0.5, 1),
             bench::fmt(stats::share_of(xs, 0), 2), bench::fmt(stats::share_of(xs, 1), 2),
             bench::fmt(stats::share_of(xs, 2), 2), bench::fmt(stats::share_of(xs, 3), 2)});
    }
    t.print();
    std::vector<double> means;
    for (int q = 0; q < 4; ++q) means.push_back(r.meter.mean_gbps(q, 2, r.meter.num_windows()));
    std::printf("mean shares after warmup: %.2f / %.2f / %.2f / %.2f (ideal 0.40/0.30/0.20/0.10)\n\n",
                stats::share_of(means, 0), stats::share_of(means, 1), stats::share_of(means, 2),
                stats::share_of(means, 3));
  }
  std::puts("paper shape: BestEffort gives the 16-flow queue4 ~0.35 instead of 0.10;");
  std::puts("PQL and DynaQ both respect the 4:3:2:1 weights (but PQL is not");
  std::puts("work-conserving when queues deactivate, see Figure 5)");
  return 0;
}
