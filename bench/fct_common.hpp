// Shared driver for the FCT comparison figures (8, 9): the testbed's
// client/server request workload on a star topology with SPQ(1)/DRR(4) and
// two-level PIAS tagging, swept over traffic load.
#pragma once

#include <map>

#include "bench/common.hpp"
#include "workload/flow_size_distribution.hpp"

namespace dynaq::bench {

struct FctSweepConfig {
  std::vector<core::SchemeKind> schemes;
  std::vector<double> loads;          // fractions of client link capacity
  std::size_t flows = 1000;
  transport::CcKind default_cc = transport::CcKind::kNewReno;
  transport::CcKind ecn_cc = transport::CcKind::kDctcp;  // for ECN schemes
  std::uint64_t seed = 1;
};

using FctResults =
    std::map<core::SchemeKind, std::map<double, stats::FctSummary>>;

inline FctResults run_fct_sweep(const FctSweepConfig& sweep) {
  FctResults results;
  for (const auto kind : sweep.schemes) {
    for (const double load : sweep.loads) {
      harness::DynamicStarConfig cfg;
      cfg.star = testbed_star(kind, /*num_hosts=*/5, {1, 1, 1, 1, 1});
      cfg.star.scheduler = topo::SchedulerKind::kSpqOverDrr;
      cfg.client_host = 0;
      cfg.num_servers = 4;
      cfg.num_flows = sweep.flows;
      cfg.load = load;
      cfg.dist = &workload::web_search_workload();
      cfg.cc = core::scheme_uses_ecn(kind) ? sweep.ecn_cc : sweep.default_cc;
      cfg.pias = true;
      cfg.pias_threshold_bytes = 100'000;
      cfg.first_service_queue = 1;
      cfg.seed = sweep.seed;
      const auto r = harness::run_dynamic_star_experiment(cfg);
      if (r.incomplete > 0) {
        std::fprintf(stderr, "warning: %zu flows incomplete (%s, load %.0f%%)\n", r.incomplete,
                     std::string(core::scheme_name(kind)).c_str(), load * 100);
      }
      results[kind][load] = r.fcts.summarize();
    }
  }
  return results;
}

// Prints one metric table: rows = schemes, columns = loads, values
// normalized by the reference scheme (the paper normalizes by DynaQ).
inline void print_fct_metric(const FctResults& results, core::SchemeKind reference,
                             const std::vector<double>& loads, const char* title,
                             double stats::FctSummary::*metric) {
  std::printf("%s (normalized by %s; raw %s values in ms on the reference row)\n", title,
              std::string(core::scheme_name(reference)).c_str(),
              std::string(core::scheme_name(reference)).c_str());
  std::vector<std::string> header{"scheme"};
  for (const double l : loads) header.push_back(fmt(l * 100, 0) + "%");
  harness::Table t(std::move(header));
  for (const auto& [kind, by_load] : results) {
    std::vector<std::string> row{std::string(core::scheme_name(kind))};
    for (const double l : loads) {
      const double ref = results.at(reference).at(l).*metric;
      const double v = by_load.at(l).*metric;
      if (kind == reference) {
        row.push_back(fmt(v, 2) + "ms");
      } else {
        row.push_back(ref > 0 ? fmt(v / ref, 2) + "x" : "n/a");
      }
    }
    t.row(std::move(row));
  }
  t.print();
  std::puts("");
}

// Tidy CSV export of a whole sweep: one row per (scheme, load) with every
// summary metric — ready for pandas/gnuplot.
inline void write_fct_csv(const std::string& dir, const std::string& name,
                          const FctResults& results) {
  if (dir.empty()) return;
  stats::CsvWriter csv(dir + "/" + name + ".csv");
  if (!csv.ok()) {
    std::fprintf(stderr, "warning: cannot write %s/%s.csv\n", dir.c_str(), name.c_str());
    return;
  }
  csv.header({"scheme", "load", "avg_overall_ms", "avg_small_ms", "avg_medium_ms",
              "avg_large_ms", "p99_small_ms", "p99_overall_ms", "flows"});
  for (const auto& [kind, by_load] : results) {
    for (const auto& [load, s] : by_load) {
      csv.row({std::string(core::scheme_name(kind)), fmt(load, 2), fmt(s.avg_overall_ms, 4),
               fmt(s.avg_small_ms, 4), fmt(s.avg_medium_ms, 4), fmt(s.avg_large_ms, 4),
               fmt(s.p99_small_ms, 4), fmt(s.p99_overall_ms, 4), std::to_string(s.count)});
    }
  }
  std::printf("wrote %s/%s.csv\n", dir.c_str(), name.c_str());
}

}  // namespace dynaq::bench
