// Shared driver for the FCT comparison figures (8, 9): the testbed's
// client/server request workload on a star topology with SPQ(1)/DRR(4) and
// two-level PIAS tagging, swept over (scheme x load x seed) through the
// dynaq::sweep engine — every grid point builds its own simulator on a
// worker thread, so --jobs N parallelizes the grid without changing any
// number (see DESIGN.md §7).
#pragma once

#include <array>
#include <cmath>
#include <map>

#include "bench/common.hpp"
#include "workload/flow_size_distribution.hpp"

namespace dynaq::bench {

struct FctSweepConfig {
  std::vector<core::SchemeKind> schemes;
  std::vector<double> loads;          // fractions of client link capacity
  std::vector<double> seeds = {1};    // seed replicas, aggregated in the JSON
  std::size_t flows = 1000;
  transport::CcKind default_cc = transport::CcKind::kNewReno;
  transport::CcKind ecn_cc = transport::CcKind::kDctcp;  // for ECN schemes
};

using FctResults =
    std::map<core::SchemeKind, std::map<double, stats::FctSummary>>;

// Scalar metrics of one dynamic-star run, as stored per sweep job. The
// drop-reason breakdown and exchange count come from the run's telemetry
// summary (whole-fabric, so drops_* can exceed the bottleneck-only "drops").
inline std::map<std::string, double> fct_metrics(const harness::DynamicExperimentResult& r) {
  const auto s = r.fcts.summarize();
  std::map<std::string, double> m = {{"avg_overall_ms", s.avg_overall_ms},
                                     {"avg_small_ms", s.avg_small_ms},
                                     {"avg_medium_ms", s.avg_medium_ms},
                                     {"avg_large_ms", s.avg_large_ms},
                                     {"p99_small_ms", s.p99_small_ms},
                                     {"p99_overall_ms", s.p99_overall_ms},
                                     {"flows", static_cast<double>(s.count)},
                                     {"incomplete", static_cast<double>(r.incomplete)},
                                     {"drops", static_cast<double>(r.drops)},
                                     {"marks", static_cast<double>(r.marks)}};
  for (std::size_t i = 0; i < telemetry::kNumDropReasons; ++i) {
    const auto reason = static_cast<telemetry::DropReason>(i);
    m["drops_" + std::string(telemetry::drop_reason_name(reason))] =
        static_cast<double>(r.telemetry.drops(reason));
  }
  m["threshold_exchanges"] = static_cast<double>(r.telemetry.threshold_exchanges);
  return m;
}

// Folds the (scheme, load) aggregates (seed-mean of every metric) back into
// the map the table/CSV printers consume. With a single seed this is
// exactly the per-run summary, so the output matches the old serial driver
// byte for byte.
inline FctResults fct_results_from_store(const sweep::ResultStore& store) {
  FctResults results;
  for (const auto& row : store.aggregate("seed")) {
    if (row.replicas == 0) continue;  // every replica failed; printers show n/a
    stats::FctSummary s;
    const auto metric = [&](const char* name) {
      const auto it = row.metrics.find(name);
      return it == row.metrics.end() ? 0.0 : it->second.mean;
    };
    s.avg_overall_ms = metric("avg_overall_ms");
    s.avg_small_ms = metric("avg_small_ms");
    s.avg_medium_ms = metric("avg_medium_ms");
    s.avg_large_ms = metric("avg_large_ms");
    s.p99_small_ms = metric("p99_small_ms");
    s.p99_overall_ms = metric("p99_overall_ms");
    s.count = static_cast<std::size_t>(std::llround(metric("flows")));
    std::string scheme;
    double load = 0.0;
    for (const auto& [axis, value] : row.coords) {
      if (axis == "scheme") scheme = value.label;
      if (axis == "load") load = value.number;
    }
    results[core::parse_scheme(scheme)][load] = s;
  }
  return results;
}

// One grid point of the Fig. 8/9 scenario. Constructs a fresh simulator and
// star topology from the point alone (required by the sweep contract).
inline sweep::JobResult run_fct_job(const FctSweepConfig& sweep,
                                    const sweep::JobPoint& point) {
  const auto kind = core::parse_scheme(point.label("scheme"));
  harness::DynamicStarConfig cfg;
  cfg.star = testbed_star(kind, /*num_hosts=*/5, {1, 1, 1, 1, 1});
  cfg.star.scheduler = topo::SchedulerKind::kSpqOverDrr;
  cfg.client_host = 0;
  cfg.num_servers = 4;
  cfg.num_flows = sweep.flows;
  cfg.load = point.number("load");
  cfg.dist = &workload::web_search_workload();
  cfg.cc = core::scheme_uses_ecn(kind) ? sweep.ecn_cc : sweep.default_cc;
  cfg.pias = true;
  cfg.pias_threshold_bytes = 100'000;
  cfg.first_service_queue = 1;
  cfg.seed = static_cast<std::uint64_t>(point.number("seed"));
  auto r = harness::run_dynamic_star_experiment(cfg);
  sweep::JobResult job{fct_metrics(r), std::move(r.telemetry)};
  job.trajectory_hash = r.trajectory_hash;
  return job;
}

// Runs the whole grid through the sweep engine (--jobs/--strict/--json...,
// see run_sweep) and re-prints the serial driver's incomplete-flow warnings
// in job order.
inline SweepRun run_fct_sweep(const harness::Cli& cli, std::string name,
                              const FctSweepConfig& sweep) {
  auto run = run_sweep(
      cli, std::move(name), scheme_load_seed_spec(sweep.schemes, sweep.loads, sweep.seeds),
      [&sweep](const sweep::JobPoint& point) { return run_fct_job(sweep, point); });
  for (const auto& o : run.store.outcomes()) {
    const auto it = o.metrics.find("incomplete");
    if (it != o.metrics.end() && it->second > 0) {
      std::fprintf(stderr, "warning: %.0f flows incomplete (%s, load %.0f%%)\n", it->second,
                   o.point.label("scheme").c_str(), o.point.number("load") * 100);
    }
  }
  return run;
}

// Prints one metric table: rows = schemes, columns = loads, values
// normalized by the reference scheme (the paper normalizes by DynaQ).
inline void print_fct_metric(const FctResults& results, core::SchemeKind reference,
                             const std::vector<double>& loads, const char* title,
                             double stats::FctSummary::*metric) {
  std::printf("%s (normalized by %s; raw %s values in ms on the reference row)\n", title,
              std::string(core::scheme_name(reference)).c_str(),
              std::string(core::scheme_name(reference)).c_str());
  std::vector<std::string> header{"scheme"};
  for (const double l : loads) header.push_back(fmt(l * 100, 0) + "%");
  harness::Table t(std::move(header));
  // A (scheme, load) cell can be absent when every seed replica of that job
  // failed (fault isolation keeps the rest of the sweep alive) — print n/a.
  const auto lookup = [&results, metric](core::SchemeKind k, double l) {
    const auto ki = results.find(k);
    if (ki == results.end()) return 0.0;
    const auto li = ki->second.find(l);
    return li == ki->second.end() ? 0.0 : li->second.*metric;
  };
  for (const auto& [kind, by_load] : results) {
    std::vector<std::string> row{std::string(core::scheme_name(kind))};
    for (const double l : loads) {
      const double ref = lookup(reference, l);
      const auto li = by_load.find(l);
      if (li == by_load.end()) {
        row.push_back("n/a");
      } else if (kind == reference) {
        row.push_back(fmt(li->second.*metric, 2) + "ms");
      } else {
        row.push_back(ref > 0 ? fmt(li->second.*metric / ref, 2) + "x" : "n/a");
      }
    }
    t.row(std::move(row));
  }
  t.print();
  std::puts("");
}

// Per-(scheme, load) drop-reason breakdown from the per-job telemetry
// summaries (seed-summed): where each scheme loses packets — Algorithm 1's
// victim protection vs. plain threshold vs. physical port/NIC overflow.
inline void print_drop_breakdown(const sweep::ResultStore& store) {
  struct Cell {
    std::array<std::uint64_t, telemetry::kNumDropReasons> drops{};
    std::uint64_t exchanges = 0;
  };
  std::map<std::string, std::map<double, Cell>> cells;
  for (const auto& o : store.outcomes()) {
    if (!o.ok || !o.telemetry) continue;
    Cell& c = cells[o.point.label("scheme")][o.point.number("load")];
    for (std::size_t i = 0; i < telemetry::kNumDropReasons; ++i) {
      c.drops[i] += o.telemetry->drops_by_reason[i];
    }
    c.exchanges += o.telemetry->threshold_exchanges;
  }
  if (cells.empty()) return;
  std::puts("Drop reasons (telemetry, summed over seeds)");
  harness::Table t({"scheme", "load", "threshold", "victim_unsat", "victim_small", "port_full",
                    "nic_full", "injected", "exchanges"});
  const auto count = [](std::uint64_t n) { return std::to_string(n); };
  for (const auto& [scheme, by_load] : cells) {
    for (const auto& [load, c] : by_load) {
      t.row({scheme, fmt(load * 100, 0) + "%",
             count(c.drops[static_cast<std::size_t>(telemetry::DropReason::kThreshold)]),
             count(c.drops[static_cast<std::size_t>(telemetry::DropReason::kVictimUnsatisfied)]),
             count(c.drops[static_cast<std::size_t>(telemetry::DropReason::kVictimTooSmall)]),
             count(c.drops[static_cast<std::size_t>(telemetry::DropReason::kPortFull)]),
             count(c.drops[static_cast<std::size_t>(telemetry::DropReason::kNicFull)]),
             count(c.drops[static_cast<std::size_t>(telemetry::DropReason::kInjected)]),
             count(c.exchanges)});
    }
  }
  t.print();
  std::puts("");
}

// Tidy CSV export of a whole sweep: one row per (scheme, load) with every
// summary metric — ready for pandas/gnuplot. Values are seed-means (the
// per-seed records live in the sweep JSON).
inline void write_fct_csv(const std::string& dir, const std::string& name,
                          const FctResults& results) {
  if (dir.empty()) return;
  stats::CsvWriter csv(dir + "/" + name + ".csv");
  if (!csv.ok()) {
    std::fprintf(stderr, "warning: cannot write %s/%s.csv\n", dir.c_str(), name.c_str());
    return;
  }
  csv.header({"scheme", "load", "avg_overall_ms", "avg_small_ms", "avg_medium_ms",
              "avg_large_ms", "p99_small_ms", "p99_overall_ms", "flows"});
  for (const auto& [kind, by_load] : results) {
    for (const auto& [load, s] : by_load) {
      csv.row({std::string(core::scheme_name(kind)), fmt(load, 2), fmt(s.avg_overall_ms, 4),
               fmt(s.avg_small_ms, 4), fmt(s.avg_medium_ms, 4), fmt(s.avg_large_ms, 4),
               fmt(s.p99_small_ms, 4), fmt(s.p99_overall_ms, 4), std::to_string(s.count)});
    }
  }
  std::printf("wrote %s/%s.csv\n", dir.c_str(), name.c_str());
}

}  // namespace dynaq::bench
