// Shared configuration for the figure-reproduction benches: the paper's
// three operating points (1 GbE testbed, 10 Gbps and 100 Gbps simulations)
// with their buffer sizes, RTTs, ECN thresholds and scheduler settings.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/scheme.hpp"
#include "harness/cli.hpp"
#include "stats/csv_writer.hpp"
#include "harness/dynamic_experiment.hpp"
#include "harness/static_experiment.hpp"
#include "harness/table.hpp"
#include "stats/fairness.hpp"
#include "stats/percentile.hpp"
#include "sweep/sweep_runner.hpp"
#include "topo/star.hpp"

namespace dynaq::bench {

// 1 GbE testbed: Broadcom 56538-class port buffer, ~500 us base RTT.
inline topo::StarConfig testbed_star(core::SchemeKind kind, int num_hosts = 5,
                                     std::vector<double> weights = {1, 1, 1, 1}) {
  topo::StarConfig cfg;
  cfg.num_hosts = num_hosts;
  cfg.link_rate_bps = 1e9;
  cfg.link_delay = microseconds(std::int64_t{125});
  cfg.buffer_bytes = 85'000;
  cfg.queue_weights = std::move(weights);
  cfg.scheme.kind = kind;
  // Testbed ECN settings: K = 30 KB (DCTCP's experimentally best value at
  // 1 Gbps), TCN sojourn threshold 240 us.
  cfg.scheme.ecn.port_threshold_bytes = 30'000;
  cfg.scheme.ecn.sojourn_threshold = microseconds(std::int64_t{240});
  cfg.scheme.ecn.capacity_bps = 1e9;
  cfg.scheme.ecn.rtt = microseconds(std::int64_t{500});
  cfg.scheduler = topo::SchedulerKind::kDrr;
  cfg.quantum_base = 1500;
  return cfg;
}

// 10 Gbps rack simulation: Broadcom Trident+ (192 KB/port), 84 us base RTT.
inline topo::StarConfig sim10g_star(core::SchemeKind kind, int num_hosts,
                                    std::vector<double> weights) {
  topo::StarConfig cfg;
  cfg.num_hosts = num_hosts;
  cfg.link_rate_bps = 10e9;
  cfg.link_delay = microseconds(std::int64_t{21});
  cfg.buffer_bytes = 192'000;
  cfg.queue_weights = std::move(weights);
  cfg.scheme.kind = kind;
  cfg.scheme.ecn.port_threshold_bytes = 192'000 / 2;
  cfg.scheme.ecn.capacity_bps = 10e9;
  cfg.scheme.ecn.rtt = microseconds(std::int64_t{84});
  cfg.scheduler = topo::SchedulerKind::kWrr;
  cfg.quantum_base = 1500;
  return cfg;
}

// 100 Gbps rack simulation: Broadcom Trident 3 (1 MB/port), 40 us base RTT,
// jumbo frames.
inline topo::StarConfig sim100g_star(core::SchemeKind kind, int num_hosts,
                                     std::vector<double> weights) {
  topo::StarConfig cfg;
  cfg.num_hosts = num_hosts;
  cfg.link_rate_bps = 100e9;
  cfg.link_delay = microseconds(std::int64_t{10});
  cfg.buffer_bytes = 1'000'000;
  cfg.queue_weights = std::move(weights);
  cfg.scheme.kind = kind;
  cfg.scheme.ecn.capacity_bps = 100e9;
  cfg.scheme.ecn.rtt = microseconds(std::int64_t{40});
  cfg.scheduler = topo::SchedulerKind::kWrr;
  cfg.quantum_base = 9000;
  cfg.host_queue_bytes = 4'000'000;  // txqueuelen-scale at jumbo MTU
  return cfg;
}

// Jain's fairness index over the throughput of queues active in window `w`.
inline double active_jain(const stats::ThroughputMeter& meter, std::size_t w,
                          const std::vector<bool>& active) {
  std::vector<double> xs;
  for (int q = 0; q < meter.num_queues(); ++q) {
    if (active[static_cast<std::size_t>(q)]) xs.push_back(meter.gbps(w, q));
  }
  return stats::jain_index(xs);
}

inline std::string fmt(double v, int precision = 3) {
  return harness::Table::num(v, precision);
}

// Writes a numeric time series to `<dir>/<name>.csv` when `dir` is
// non-empty (every fig bench exposes this via --csv <dir>).
inline void maybe_write_csv(const std::string& dir, const std::string& name,
                            const std::vector<std::string>& header,
                            const std::vector<std::vector<double>>& rows) {
  if (dir.empty()) return;
  stats::CsvWriter csv(dir + "/" + name + ".csv");
  if (!csv.ok()) {
    std::fprintf(stderr, "warning: cannot write %s/%s.csv\n", dir.c_str(), name.c_str());
    return;
  }
  csv.header(header);
  for (const auto& r : rows) {
    std::vector<std::string> cells;
    cells.reserve(r.size());
    for (const double v : r) cells.push_back(harness::Table::num(v, 6));
    csv.row(cells);
  }
  std::printf("wrote %s/%s.csv\n", dir.c_str(), name.c_str());
}

// ---------------------------------------------------------------------------
// Sweep-engine entry point shared by the fig binaries (DESIGN.md §7). Reads
// the common sweep flags, fans the grid out over a worker pool, reports
// failed jobs on stderr in job order, and writes the machine-readable JSON:
//
//   --jobs N        worker threads (default: hardware concurrency)
//   --timeout-s S   per-job wall-clock budget (default: none)
//   --retry         retry a failed/timed-out job once
//   --strict        exit non-zero on job failures or unrecognized flags
//   --json DIR      write <DIR>/<name>.json (sweep results schema)
//   --bench-json P  additionally write the JSON to exactly P (perf trajectory)
//
// Call after main() has read every binary-specific flag: this is also where
// unrecognized-flag complaints fire (harness::Cli::complain_unknown).
struct SweepRun {
  sweep::ResultStore store;
  int exit_code = 0;  // non-zero only under --strict
};

inline SweepRun run_sweep(const harness::Cli& cli, std::string name, sweep::SweepSpec spec,
                          const sweep::JobFn& fn) {
  sweep::RunnerOptions options;
  options.jobs = static_cast<int>(cli.integer("jobs", 0));
  options.timeout_s = cli.real("timeout-s", 0.0);
  options.retry_failed_once = cli.flag("retry");
  const bool strict = cli.flag("strict");
  const std::string json_dir = cli.text("json", "");
  const std::string bench_json = cli.text("bench-json", "");
  const bool bad_flags = cli.complain_unknown(strict);

  const sweep::SweepRunner runner(options);
  auto store = runner.run(std::move(name), spec, fn);
  for (const auto& o : store.outcomes()) {
    if (!o.ok) {
      std::fprintf(stderr, "sweep job %zu failed [%s] after %d attempt(s): %s\n",
                   o.point.job_id, o.point.name().c_str(), o.attempts, o.error.c_str());
    }
  }
  if (!json_dir.empty()) {
    const std::string path = json_dir + "/" + store.name() + ".json";
    if (store.write_json(path)) std::printf("wrote %s\n", path.c_str());
  }
  if (!bench_json.empty() && store.write_json(bench_json)) {
    std::printf("wrote %s\n", bench_json.c_str());
  }
  const int exit_code = strict && (bad_flags || !store.all_ok()) ? 1 : 0;
  return SweepRun{std::move(store), exit_code};
}

// Parses --schemes=DynaQ,PQL,... into SchemeKinds, defaulting to `fallback`.
inline std::vector<core::SchemeKind> schemes_from_cli(const harness::Cli& cli,
                                                      std::vector<core::SchemeKind> fallback) {
  if (!cli.has("schemes")) return fallback;
  std::vector<core::SchemeKind> kinds;
  for (const auto& name : cli.list("schemes", {})) kinds.push_back(core::parse_scheme(name));
  return kinds;
}

// The scheme/load/seed grid every FCT-style figure sweeps.
inline sweep::SweepSpec scheme_load_seed_spec(const std::vector<core::SchemeKind>& schemes,
                                              const std::vector<double>& loads,
                                              const std::vector<double>& seeds) {
  std::vector<std::string> names;
  names.reserve(schemes.size());
  for (const auto kind : schemes) names.emplace_back(core::scheme_name(kind));
  sweep::SweepSpec spec;
  spec.axes = {sweep::Axis::labels("scheme", std::move(names)),
               sweep::Axis::numeric("load", loads), sweep::Axis::numeric("seed", seeds)};
  return spec;
}

}  // namespace dynaq::bench
