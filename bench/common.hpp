// Shared configuration for the figure-reproduction benches: the paper's
// three operating points (1 GbE testbed, 10 Gbps and 100 Gbps simulations)
// with their buffer sizes, RTTs, ECN thresholds and scheduler settings.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/scheme.hpp"
#include "harness/cli.hpp"
#include "stats/csv_writer.hpp"
#include "harness/dynamic_experiment.hpp"
#include "harness/static_experiment.hpp"
#include "harness/table.hpp"
#include "stats/fairness.hpp"
#include "stats/percentile.hpp"
#include "topo/star.hpp"

namespace dynaq::bench {

// 1 GbE testbed: Broadcom 56538-class port buffer, ~500 us base RTT.
inline topo::StarConfig testbed_star(core::SchemeKind kind, int num_hosts = 5,
                                     std::vector<double> weights = {1, 1, 1, 1}) {
  topo::StarConfig cfg;
  cfg.num_hosts = num_hosts;
  cfg.link_rate_bps = 1e9;
  cfg.link_delay = microseconds(std::int64_t{125});
  cfg.buffer_bytes = 85'000;
  cfg.queue_weights = std::move(weights);
  cfg.scheme.kind = kind;
  // Testbed ECN settings: K = 30 KB (DCTCP's experimentally best value at
  // 1 Gbps), TCN sojourn threshold 240 us.
  cfg.scheme.ecn.port_threshold_bytes = 30'000;
  cfg.scheme.ecn.sojourn_threshold = microseconds(std::int64_t{240});
  cfg.scheme.ecn.capacity_bps = 1e9;
  cfg.scheme.ecn.rtt = microseconds(std::int64_t{500});
  cfg.scheduler = topo::SchedulerKind::kDrr;
  cfg.quantum_base = 1500;
  return cfg;
}

// 10 Gbps rack simulation: Broadcom Trident+ (192 KB/port), 84 us base RTT.
inline topo::StarConfig sim10g_star(core::SchemeKind kind, int num_hosts,
                                    std::vector<double> weights) {
  topo::StarConfig cfg;
  cfg.num_hosts = num_hosts;
  cfg.link_rate_bps = 10e9;
  cfg.link_delay = microseconds(std::int64_t{21});
  cfg.buffer_bytes = 192'000;
  cfg.queue_weights = std::move(weights);
  cfg.scheme.kind = kind;
  cfg.scheme.ecn.port_threshold_bytes = 192'000 / 2;
  cfg.scheme.ecn.capacity_bps = 10e9;
  cfg.scheme.ecn.rtt = microseconds(std::int64_t{84});
  cfg.scheduler = topo::SchedulerKind::kWrr;
  cfg.quantum_base = 1500;
  return cfg;
}

// 100 Gbps rack simulation: Broadcom Trident 3 (1 MB/port), 40 us base RTT,
// jumbo frames.
inline topo::StarConfig sim100g_star(core::SchemeKind kind, int num_hosts,
                                     std::vector<double> weights) {
  topo::StarConfig cfg;
  cfg.num_hosts = num_hosts;
  cfg.link_rate_bps = 100e9;
  cfg.link_delay = microseconds(std::int64_t{10});
  cfg.buffer_bytes = 1'000'000;
  cfg.queue_weights = std::move(weights);
  cfg.scheme.kind = kind;
  cfg.scheme.ecn.capacity_bps = 100e9;
  cfg.scheme.ecn.rtt = microseconds(std::int64_t{40});
  cfg.scheduler = topo::SchedulerKind::kWrr;
  cfg.quantum_base = 9000;
  cfg.host_queue_bytes = 4'000'000;  // txqueuelen-scale at jumbo MTU
  return cfg;
}

// Jain's fairness index over the throughput of queues active in window `w`.
inline double active_jain(const stats::ThroughputMeter& meter, std::size_t w,
                          const std::vector<bool>& active) {
  std::vector<double> xs;
  for (int q = 0; q < meter.num_queues(); ++q) {
    if (active[static_cast<std::size_t>(q)]) xs.push_back(meter.gbps(w, q));
  }
  return stats::jain_index(xs);
}

inline std::string fmt(double v, int precision = 3) {
  return harness::Table::num(v, precision);
}

// Writes a numeric time series to `<dir>/<name>.csv` when `dir` is
// non-empty (every fig bench exposes this via --csv <dir>).
inline void maybe_write_csv(const std::string& dir, const std::string& name,
                            const std::vector<std::string>& header,
                            const std::vector<std::vector<double>>& rows) {
  if (dir.empty()) return;
  stats::CsvWriter csv(dir + "/" + name + ".csv");
  if (!csv.ok()) {
    std::fprintf(stderr, "warning: cannot write %s/%s.csv\n", dir.c_str(), name.c_str());
    return;
  }
  csv.header(header);
  for (const auto& r : rows) {
    std::vector<std::string> cells;
    cells.reserve(r.size());
    for (const double v : r) cells.push_back(harness::Table::num(v, 6));
    csv.row(cells);
  }
  std::printf("wrote %s/%s.csv\n", dir.c_str(), name.c_str());
}

}  // namespace dynaq::bench
