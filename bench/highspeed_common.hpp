// Shared driver for the high-speed static-flow simulations (Figures 10-12):
// 8 WRR queues with equal weights, queue i fed by its own set of sender
// hosts, queues 2..8 deactivating every 50 ms from 200 ms. Reports Jain's
// fairness index across active queues and the aggregate throughput per
// 10 ms window.
#pragma once

#include "bench/common.hpp"

namespace dynaq::bench {

struct HighSpeedConfig {
  topo::StarConfig star;                // 8-queue WRR star, receiver host 0
  std::vector<int> senders_per_queue;   // queue i gets senders_per_queue[i] hosts
  std::int32_t mss = net::kDefaultMss;
  Time rto_min = milliseconds(std::int64_t{5});
  Time duration = milliseconds(std::int64_t{700});
  std::uint64_t seed = 1;
};

struct HighSpeedRow {
  double time_ms;
  double jain;
  double aggregate_gbps;
};

inline std::vector<HighSpeedRow> run_high_speed(HighSpeedConfig cfg) {
  const int num_queues = 8;
  harness::StaticExperimentConfig exp;
  exp.star = std::move(cfg.star);
  int next_host = 1;
  std::vector<Time> stop_at(num_queues, 0);
  for (int q = 0; q < num_queues; ++q) {
    // Queue q (paper queue q+1) stops at 200 + 50*(q-1) ms; queue 1 (q=0)
    // runs to the end.
    stop_at[static_cast<std::size_t>(q)] =
        q == 0 ? cfg.duration : milliseconds(std::int64_t{200 + 50 * (q - 1)});
    exp.groups.push_back({.queue = q,
                          .num_flows = cfg.senders_per_queue[static_cast<std::size_t>(q)],
                          .first_src_host = next_host,
                          .num_src_hosts = cfg.senders_per_queue[static_cast<std::size_t>(q)],
                          .start = 0,
                          .stop = stop_at[static_cast<std::size_t>(q)],
                          .cc = transport::CcKind::kNewReno});
    next_host += cfg.senders_per_queue[static_cast<std::size_t>(q)];
  }
  exp.star.num_hosts = next_host;
  exp.duration = cfg.duration;
  exp.meter_window = milliseconds(std::int64_t{10});
  exp.start_jitter = milliseconds(std::int64_t{1});
  exp.mss = cfg.mss;
  exp.rto_min = cfg.rto_min;
  exp.seed = cfg.seed;

  const auto r = harness::run_static_experiment(exp);
  std::vector<HighSpeedRow> rows;
  for (std::size_t w = 0; w < r.meter.num_windows(); ++w) {
    const Time window_start = static_cast<Time>(w) * exp.meter_window;
    std::vector<bool> active(num_queues);
    for (int q = 0; q < num_queues; ++q) {
      active[static_cast<std::size_t>(q)] = window_start < stop_at[static_cast<std::size_t>(q)];
    }
    rows.push_back(HighSpeedRow{to_milliseconds(window_start) + 5.0,
                                active_jain(r.meter, w, active), r.meter.aggregate_gbps(w)});
  }
  return rows;
}

inline void print_high_speed(const std::vector<HighSpeedRow>& rows) {
  harness::Table t({"time_ms", "jain_index", "aggregate_Gbps"});
  for (const auto& row : rows) {
    t.row({fmt(row.time_ms, 0), fmt(row.jain, 3), fmt(row.aggregate_gbps, 2)});
  }
  t.print();
}

// Scalar summary of one high-speed run, as stored per sweep job (same
// quantities print_high_speed_summary reports).
inline std::map<std::string, double> high_speed_metrics(const std::vector<HighSpeedRow>& rows) {
  double min_jain = 1.0;
  double sum_jain = 0.0;
  double sum_agg = 0.0;
  double last_phase_agg = 0.0;
  std::size_t last_n = 0;
  for (const auto& row : rows) {
    min_jain = std::min(min_jain, row.jain);
    sum_jain += row.jain;
    sum_agg += row.aggregate_gbps;
    if (row.time_ms > 520.0) {
      last_phase_agg += row.aggregate_gbps;
      ++last_n;
    }
  }
  const double n = rows.empty() ? 1.0 : static_cast<double>(rows.size());
  return {{"mean_jain", sum_jain / n},
          {"min_jain", min_jain},
          {"mean_aggregate_gbps", sum_agg / n},
          {"last_phase_gbps", last_n > 0 ? last_phase_agg / static_cast<double>(last_n) : 0.0}};
}

inline void print_high_speed_summary(const std::vector<HighSpeedRow>& rows, double line_gbps) {
  double min_jain = 1.0;
  double sum_jain = 0.0;
  double sum_agg = 0.0;
  double last_phase_agg = 0.0;
  std::size_t last_n = 0;
  for (const auto& row : rows) {
    min_jain = std::min(min_jain, row.jain);
    sum_jain += row.jain;
    sum_agg += row.aggregate_gbps;
    if (row.time_ms > 520.0) {  // only paper-queue 1 active
      last_phase_agg += row.aggregate_gbps;
      ++last_n;
    }
  }
  std::printf("mean jain=%.3f min jain=%.3f mean aggregate=%.2f/%.0f Gbps",
              sum_jain / static_cast<double>(rows.size()), min_jain,
              sum_agg / static_cast<double>(rows.size()), line_gbps);
  if (last_n > 0) {
    std::printf("  last-phase aggregate=%.2f Gbps", last_phase_agg / static_cast<double>(last_n));
  }
  std::puts("");
}

}  // namespace dynaq::bench
