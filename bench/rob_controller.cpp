// Robustness: degraded control plane (DESIGN.md §14). Four always-active DRR
// queues on the testbed star while DynaQ's threshold controller runs behind
// the ctrlplane shim (5 ms update period, 1 ms update delay, 40 ms watchdog)
// and the scenario timeline stalls it, crashes it, or drops its updates. The
// watchdog fails the port over to Dynamic Thresholds until the controller
// returns and a reliable re-sync restores Eq. 1 (ΣT = B). DT runs the same
// workload natively as the degraded-mode baseline — it has no controller to
// break, so its jobs carry no scenario. Reported per scheme: pre-fault /
// fault-window / recovered throughput, fault-window retention, and (DynaQ
// only) failover counts plus recovery time vs. the watchdog+re-sync budget.
#include <algorithm>
#include <stdexcept>

#include "bench/common.hpp"
#include "harness/scenario_cli.hpp"
#include "scenario/scenario.hpp"

using namespace dynaq;

namespace {

constexpr int kNumQueues = 4;

ctrlplane::ControlPlaneConfig control_config(std::uint64_t seed) {
  ctrlplane::ControlPlaneConfig cp;
  cp.enabled = true;
  cp.update_period = milliseconds(std::int64_t{5});
  cp.update_delay = milliseconds(std::int64_t{1});
  cp.watchdog_deadline = milliseconds(std::int64_t{40});
  cp.seed = seed;
  return cp;
}

harness::StaticExperimentConfig experiment_config(core::SchemeKind kind, Time duration,
                                                  std::uint64_t seed,
                                                  const scenario::Scenario* scn) {
  harness::StaticExperimentConfig cfg;
  cfg.star = bench::testbed_star(kind, /*num_hosts=*/1 + 2 * kNumQueues);
  for (int q = 0; q < kNumQueues; ++q) {
    cfg.groups.push_back({.queue = q,
                          .num_flows = 2,
                          .first_src_host = 1 + 2 * q,
                          .num_src_hosts = 2,
                          .start = 0,
                          .stop = 0,
                          .cc = transport::CcKind::kNewReno});
  }
  cfg.duration = duration;
  // 16 windows per run so the eighth-of-the-run scenario phases resolve.
  cfg.meter_window = std::max(duration / 16, milliseconds(std::int64_t{10}));
  cfg.seed = seed;
  cfg.control_plane = control_config(seed);
  cfg.scenario = scn;
  return cfg;
}

sweep::JobResult run_job(const sweep::JobPoint& point, Time duration,
                         const scenario::Scenario& scn) {
  const auto kind = core::parse_scheme(point.label("scheme"));
  const auto seed = static_cast<std::uint64_t>(point.number("seed"));
  // Controller-fault timelines target "sw.p0.ctrl", which only exists when
  // the scheme actually runs behind the shim — every other scheme is the
  // fault-free baseline.
  const scenario::Scenario* scenario =
      kind == core::SchemeKind::kDynaQ ? &scn : nullptr;
  auto r = harness::run_static_experiment(experiment_config(kind, duration, seed, scenario));

  // The catalogue's controller timelines put the fault in [3/8, 5/8) of the
  // run (onset at 3/8, duration/4 long); slice the meter windows accordingly.
  const std::size_t n = r.meter.num_windows();
  const auto slice_mean = [&r, n](double lo, double hi) {
    const auto a = static_cast<std::size_t>(lo * static_cast<double>(n));
    const auto b = std::max(a + 1, static_cast<std::size_t>(hi * static_cast<double>(n)));
    double sum = 0.0;
    for (std::size_t w = a; w < b && w < n; ++w) sum += r.meter.aggregate_gbps(w);
    return sum / static_cast<double>(std::min(b, n) - a);
  };

  std::map<std::string, double> metrics;
  const double pre = slice_mean(0.125, 0.375);        // steady state before the fault
  const double fault = slice_mean(0.375, 0.625);      // controller down / degraded
  metrics["pre_gbps"] = pre;
  metrics["fault_gbps"] = fault;
  metrics["recovered_gbps"] = slice_mean(0.75, 1.0);  // after restore
  // One retention estimator for every scheme so the §14 ratio expectation
  // compares like with like; the event-derived estimate rides the telemetry
  // control block in the JSON.
  metrics["throughput_retention"] = pre > 0.0 ? fault / pre : 0.0;
  metrics["ctrl_updates"] = static_cast<double>(r.telemetry.control.updates);
  metrics["ctrl_updates_lost"] = static_cast<double>(r.telemetry.control.updates_lost);
  metrics["failovers"] = static_cast<double>(r.telemetry.control.failovers);
  metrics["restores"] = static_cast<double>(r.telemetry.control.restores);
  if (r.telemetry.control.failovers > 0) {
    const ctrlplane::ControlPlaneConfig cp = control_config(seed);
    metrics["recovery_time_us"] = static_cast<double>(r.telemetry.control.recovery_us);
    metrics["recovery_budget_us"] = to_microseconds(cp.watchdog_deadline + cp.update_period +
                                                    cp.update_delay);
  }
  metrics["timeouts"] = static_cast<double>(r.sender_totals.timeouts);
  metrics["drops"] = static_cast<double>(r.bottleneck_stats.dropped);
  metrics["scenario_actions"] = static_cast<double>(r.scenario_actions);
  sweep::JobResult job{std::move(metrics), std::move(r.telemetry)};
  job.trajectory_hash = r.trajectory_hash;
  return job;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  if (harness::list_scenarios_requested(cli)) return 0;
  const bool full = cli.flag("full");
  const Time duration = seconds(cli.real("duration-s", full ? 10.0 : 4.0));
  const auto seeds = cli.reals("seeds", {1, 2, 3});
  const auto schemes = bench::schemes_from_cli(
      cli, {core::SchemeKind::kDynaQ, core::SchemeKind::kDynamicThreshold});
  const std::string scenario_name = cli.text("scenario", "controller_crash");
  const std::string csv_dir = cli.text("csv", "");

  scenario::ScenarioParams sp;
  sp.duration = duration;
  sp.num_queues = kNumQueues;
  sp.qdisc = "sw.p0";
  sp.ctrl = "sw.p0.ctrl";  // the bottleneck port's control-plane shim
  scenario::Scenario scn;
  try {
    scn = scenario::make_scenario(scenario_name, sp);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::printf("Robustness — scenario '%s' against DynaQ's control plane (testbed star)\n",
              scn.name.c_str());
  std::puts("(watchdog fails over to DT; a reliable re-sync restores ΣT = B on return)\n");

  std::vector<std::string> names;
  for (const auto kind : schemes) names.emplace_back(core::scheme_name(kind));
  sweep::SweepSpec spec;
  spec.axes = {sweep::Axis::labels("scheme", std::move(names)),
               sweep::Axis::numeric("seed", seeds)};
  auto run = bench::run_sweep(cli, "rob_controller", spec,
                              [duration, &scn](const sweep::JobPoint& point) {
                                return run_job(point, duration, scn);
                              });

  harness::Table t({"scheme", "pre_gbps", "fault_gbps", "recov_gbps", "retention",
                    "failovers", "recovery_us", "actions"});
  std::vector<std::vector<double>> csv_rows;
  for (const auto& row : run.store.aggregate("seed")) {
    const auto metric = [&row](const char* name) {
      const auto it = row.metrics.find(name);
      return it == row.metrics.end() ? 0.0 : it->second.mean;
    };
    t.row({row.coords.front().second.label, bench::fmt(metric("pre_gbps")),
           bench::fmt(metric("fault_gbps")), bench::fmt(metric("recovered_gbps")),
           bench::fmt(metric("throughput_retention")), bench::fmt(metric("failovers"), 0),
           bench::fmt(metric("recovery_time_us"), 0),
           bench::fmt(metric("scenario_actions"), 0)});
    csv_rows.push_back({metric("pre_gbps"), metric("fault_gbps"), metric("recovered_gbps"),
                        metric("throughput_retention"), metric("failovers"),
                        metric("recovery_time_us"), metric("recovery_budget_us")});
  }
  t.print();
  bench::maybe_write_csv(csv_dir, "rob_controller",
                         {"pre_gbps", "fault_gbps", "recovered_gbps", "throughput_retention",
                          "failovers", "recovery_time_us", "recovery_budget_us"},
                         csv_rows);
  std::puts("\nexpected shape: DynaQ's fault-window retention stays within a few percent");
  std::puts("of the native DT baseline, and recovery_us <= the watchdog+re-sync budget");
  return run.exit_code;
}
