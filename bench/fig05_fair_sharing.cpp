// Figure 5: bandwidth sharing between 4 DRR queues with equal weights.
// Queue i carries 2^i flows; queues deactivate over time (queue 4 at 10 s,
// queue 3 at 15 s, queue 2 at 20 s, queue 1 ends at 25 s). DynaQ alone
// keeps both per-queue fairness and full aggregate throughput.
#include "bench/common.hpp"

using namespace dynaq;

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const bool full = cli.flag("full");
  // Default compresses the paper's 10/15/20/25 s schedule to 4/6/8/10 s —
  // same phases, shorter steady-state stretches.
  const double scale = full ? 1.0 : 0.4;
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 1));

  std::puts("Figure 5 — bandwidth sharing, 4 DRR queues, equal weights, queue i has 2^i flows");
  std::printf("(queue4 stops at %.0fs, queue3 at %.0fs, queue2 at %.0fs, end at %.0fs)\n\n",
              10 * scale, 15 * scale, 20 * scale, 25 * scale);

  const core::SchemeKind kinds[] = {core::SchemeKind::kBestEffort, core::SchemeKind::kPql,
                                    core::SchemeKind::kDynaQ};
  for (const auto kind : kinds) {
    harness::StaticExperimentConfig cfg;
    cfg.star = bench::testbed_star(kind, /*num_hosts=*/9);
    // Two sender hosts per queue keep the standing queue at the switch port
    // even in single-active-queue phases (see DESIGN.md).
    for (int q = 0; q < 4; ++q) {
      cfg.groups.push_back({.queue = q,
                            .num_flows = 1 << (q + 1),
                            .first_src_host = 1 + 2 * q,
                            .num_src_hosts = 2,
                            .start = 0,
                            .stop = seconds((25.0 - 5.0 * q) * scale),
                            .cc = transport::CcKind::kNewReno});
    }
    cfg.duration = seconds(25.0 * scale);
    cfg.meter_window = milliseconds(std::int64_t{500});
    cfg.seed = seed;
    const auto r = harness::run_static_experiment(cfg);

    std::printf("--- %s ---\n", std::string(core::scheme_name(kind)).c_str());
    harness::Table t({"time_s", "q1", "q2", "q3", "q4", "aggregate"});
    for (std::size_t w = 0; w < r.meter.num_windows(); ++w) {
      t.row({bench::fmt((static_cast<double>(w) + 0.5) * 0.5, 1), bench::fmt(r.meter.gbps(w, 0)),
             bench::fmt(r.meter.gbps(w, 1)), bench::fmt(r.meter.gbps(w, 2)),
             bench::fmt(r.meter.gbps(w, 3)), bench::fmt(r.meter.aggregate_gbps(w))});
    }
    t.print();

    // Phase summaries: mean aggregate during each active-set phase.
    const auto wps = static_cast<std::size_t>(seconds(5.0 * scale) / cfg.meter_window);
    for (int phase = 0; phase < 5; ++phase) {
      const std::size_t from = static_cast<std::size_t>(phase + 1) * wps;
      if (from >= r.meter.num_windows()) break;
      double agg = 0.0;
      std::size_t n = 0;
      for (std::size_t w = from; w < from + wps && w < r.meter.num_windows(); ++w, ++n) {
        agg += r.meter.aggregate_gbps(w);
      }
      if (phase >= 1 && n > 0) {
        std::printf("phase with %d active queue(s): aggregate %.3f Gbps\n", 5 - phase - 1,
                    agg / static_cast<double>(n));
      }
    }
    std::puts("");
  }
  std::puts("paper shape: BestEffort unfair when several queues active (queue4 wins);");
  std::puts("PQL fair but aggregate drops as queues deactivate (0.78 Gbps in the last");
  std::puts("phase); DynaQ fair and work-conserving throughout");
  return 0;
}
