// Extension experiment (§II-B motivation): delay-based transports are a
// key reason the paper wants protocol independence. A Vegas-style
// delay-based service competes with a loss-based NewReno service:
//
//   (a) mixed into ONE service queue — the classic failure: the loss-based
//       flows keep the queue (and the delay signal) inflated and the
//       delay-based flows back off far below their share;
//   (b) on SEPARATE service queues — the scheduler isolates the delay
//       signal and the buffer policy isolates the memory; the delay-based
//       service gets its share without ECN, with any generic transport —
//       exactly the paper's service-queue-isolation claim.
#include "bench/common.hpp"
#include "transport/host_agent.hpp"

using namespace dynaq;

namespace {

struct Outcome {
  double vegas_gbps = 0.0;
  double reno_gbps = 0.0;
};

Outcome run(core::SchemeKind kind, bool separate_queues, std::uint64_t seed) {
  sim::Simulator sim;
  sim::Rng rng(seed);
  topo::StarConfig cfg;
  cfg.num_hosts = 5;
  cfg.link_rate_bps = 1e9;
  cfg.link_delay = microseconds(std::int64_t{125});
  cfg.buffer_bytes = 85'000;
  cfg.queue_weights = {1, 1};
  cfg.scheme.kind = kind;
  cfg.scheduler = topo::SchedulerKind::kDrr;
  topo::StarTopology topo(sim, cfg);

  const Time duration = seconds(std::int64_t{8});
  std::vector<const transport::FlowReceiver*> vegas_rx;
  std::vector<const transport::FlowReceiver*> reno_rx;
  std::uint32_t id = 1;
  auto start = [&](transport::CcKind cc, int src, int queue,
                   std::vector<const transport::FlowReceiver*>& group) {
    transport::FlowParams params;
    params.id = id++;
    params.src_host = src;
    params.dst_host = 0;
    params.size_bytes = 0;
    params.stop = duration;
    params.service_queue = queue;
    params.cc = cc;
    params.start = static_cast<Time>(rng.uniform() *
                                     static_cast<double>(milliseconds(std::int64_t{1})));
    group.push_back(&topo.agent(0).add_receiver(params));
    topo.agent(params.src_host).add_sender(params).start();
  };
  for (int f = 0; f < 4; ++f) start(transport::CcKind::kVegas, 1 + f % 2, 0, vegas_rx);
  for (int f = 0; f < 4; ++f) {
    start(transport::CcKind::kNewReno, 3 + f % 2, separate_queues ? 1 : 0, reno_rx);
  }
  sim.run_until(duration);

  Outcome o;
  for (const auto* rx : vegas_rx) o.vegas_gbps += static_cast<double>(rx->bytes_received());
  for (const auto* rx : reno_rx) o.reno_gbps += static_cast<double>(rx->bytes_received());
  o.vegas_gbps = o.vegas_gbps * 8.0 / to_seconds(duration) / 1e9;
  o.reno_gbps = o.reno_gbps * 8.0 / to_seconds(duration) / 1e9;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 1));

  std::puts("Extension — delay-based (Vegas, 4 flows) vs loss-based (NewReno, 4 flows)");
  std::puts("on a 1 Gbps port; ideal split 0.50/0.50\n");

  harness::Table t({"configuration", "vegas_Gbps", "newreno_Gbps"});
  const auto mixed = run(core::SchemeKind::kBestEffort, /*separate_queues=*/false, seed);
  t.row({"one shared queue (no isolation)", bench::fmt(mixed.vegas_gbps),
         bench::fmt(mixed.reno_gbps)});
  for (const auto kind : {core::SchemeKind::kBestEffort, core::SchemeKind::kDynaQ}) {
    const auto o = run(kind, /*separate_queues=*/true, seed);
    t.row({"separate queues + " + std::string(core::scheme_name(kind)),
           bench::fmt(o.vegas_gbps), bench::fmt(o.reno_gbps)});
  }
  t.print();
  std::puts("\nin one queue the loss-based flows inflate the delay signal and Vegas");
  std::puts("collapses; separate service queues restore its share — protocol-");
  std::puts("independent isolation working for a transport that never needs a drop.");
  std::puts("DynaQ additionally keeps the *buffer* split fair when flow counts are");
  std::puts("skewed (see fig03), which BestEffort alone does not.");
  return 0;
}
