// Ablation (§IV-A2): DynaQ on a Tofino-style programmable switch cannot
// read live queue depths in the ingress pipeline; it sees the last
// dequeued packet's deq_qdepth through an extern-register feedback loop.
// The paper *believes* the resulting inaccuracy is tolerable with
// round-robin schedulers and leaves verification to future work — this
// bench performs that verification: DynaQ with live vs stale queue-length
// information on the Fig. 3 and Fig. 6 scenarios.
#include "bench/common.hpp"

using namespace dynaq;

namespace {

struct Outcome {
  std::vector<double> shares;
  double aggregate = 0.0;
};

Outcome run(bool stale, std::vector<double> weights, std::vector<int> flows,
            std::uint64_t seed) {
  const int queues = static_cast<int>(weights.size());
  harness::StaticExperimentConfig cfg;
  cfg.star = bench::testbed_star(core::SchemeKind::kDynaQ, 1 + 2 * queues, std::move(weights));
  cfg.star.scheme.dynaq.stale_queue_info = stale;
  for (int q = 0; q < queues; ++q) {
    cfg.groups.push_back({.queue = q,
                          .num_flows = flows[static_cast<std::size_t>(q)],
                          .first_src_host = 1 + 2 * q,
                          .num_src_hosts = 2,
                          .start = 0,
                          .stop = 0,
                          .cc = transport::CcKind::kNewReno});
  }
  cfg.duration = seconds(std::int64_t{6});
  cfg.seed = seed;
  const auto r = harness::run_static_experiment(cfg);
  Outcome o;
  std::vector<double> means;
  for (int q = 0; q < queues; ++q) {
    means.push_back(r.meter.mean_gbps(q, 4, r.meter.num_windows()));
    o.aggregate += means.back();
  }
  for (int q = 0; q < queues; ++q) {
    o.shares.push_back(stats::share_of(means, static_cast<std::size_t>(q)));
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 1));

  std::puts("Ablation — DynaQ with live vs TNA-stale (deq_qdepth) queue lengths\n");

  std::puts("(a) Fig. 3 scenario: equal weights, 2 vs 16 flows (ideal 0.50/0.50)");
  harness::Table a({"queue info", "share_q1", "share_q2", "aggregate_Gbps"});
  for (const bool stale : {false, true}) {
    const auto o = run(stale, {1, 1}, {2, 16}, seed);
    a.row({stale ? "stale (TNA deq_qdepth)" : "live (ASIC)", bench::fmt(o.shares[0], 3),
           bench::fmt(o.shares[1], 3), bench::fmt(o.aggregate, 3)});
  }
  a.print();

  std::puts("\n(b) Fig. 6 scenario: weights 4:3:2:1, queue i has 2^i flows");
  harness::Table b({"queue info", "share_q1", "share_q2", "share_q3", "share_q4",
                    "aggregate_Gbps"});
  for (const bool stale : {false, true}) {
    const auto o = run(stale, {4, 3, 2, 1}, {2, 4, 8, 16}, seed);
    b.row({stale ? "stale (TNA deq_qdepth)" : "live (ASIC)", bench::fmt(o.shares[0], 3),
           bench::fmt(o.shares[1], 3), bench::fmt(o.shares[2], 3), bench::fmt(o.shares[3], 3),
           bench::fmt(o.aggregate, 3)});
  }
  b.print();
  std::puts("\npaper's conjecture: 'with round-robin based schedulers, some inaccuracy");
  std::puts("is tolerable to isolate service queues' — compare the rows");
  return 0;
}
