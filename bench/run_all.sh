#!/usr/bin/env bash
# Regenerates every paper figure, ablation and micro-benchmark.
#
#   bench/run_all.sh [build-dir] [output-dir] [--full]
#
# Text reports land in <output-dir>/<bench>.txt and machine-readable series
# in <output-dir>/csv/. Pass --full for paper-scale parameters (the FCT and
# leaf-spine sweeps then take tens of minutes).
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-results}"
FULL_FLAG=""
for arg in "$@"; do
  [[ "$arg" == "--full" ]] && FULL_FLAG="--full"
done

mkdir -p "$OUT_DIR/csv"

run() {
  local bin="$1"
  shift
  local name
  name="$(basename "$bin")"
  echo "=== $name $* ==="
  "$bin" "$@" | tee "$OUT_DIR/$name.txt"
  echo
}

for fig in fig01_motivation fig02_workloads fig04_queue_evolution \
           fig05_fair_sharing fig06_weights fig07_protocols; do
  run "$BUILD_DIR/bench/$fig" $FULL_FLAG
done
for fig in fig03_convergence fig10_10g fig11_100g fig12_many_flows; do
  run "$BUILD_DIR/bench/$fig" $FULL_FLAG --csv "$OUT_DIR/csv"
done
for fig in fig08_fct_non_ecn fig09_fct_ecn; do
  run "$BUILD_DIR/bench/$fig" $FULL_FLAG --csv "$OUT_DIR/csv"
done
run "$BUILD_DIR/bench/fig13_leaf_spine" $FULL_FLAG

for abl in abl_victim_selection abl_satisfaction abl_dt_baseline abl_eviction \
           abl_tna_staleness abl_shared_pool abl_generic_ecn abl_delay_based; do
  run "$BUILD_DIR/bench/$abl"
done

run "$BUILD_DIR/bench/micro_dynaq_ops"
run "$BUILD_DIR/bench/micro_simulator"

echo "all reports in $OUT_DIR/"
