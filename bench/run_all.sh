#!/usr/bin/env bash
# Regenerates every paper figure, ablation and micro-benchmark.
#
#   bench/run_all.sh [build-dir] [output-dir] [--full] [--jobs N]
#
# Text reports land in <output-dir>/<bench>.txt, machine-readable series in
# <output-dir>/csv/, sweep results (per-job records + seed aggregates,
# DESIGN.md §7) in <output-dir>/json/, and per-figure telemetry event dumps
# (fig03/fig04, DESIGN.md §8) as <output-dir>/json/*.events.jsonl. Pass
# --full for paper-scale parameters; --jobs N fans the sweep-driven figures
# (8, 9, 12, 13) and the rob_* robustness sweeps out over N worker threads
# (default: all hardware threads).
set -euo pipefail

BUILD_DIR="build"
OUT_DIR="results"
if [[ $# -ge 1 && "$1" != --* ]]; then BUILD_DIR="$1"; fi
if [[ $# -ge 2 && "$2" != --* ]]; then OUT_DIR="$2"; fi
FULL_FLAG=""
JOBS=""
args=("$@")
for i in "${!args[@]}"; do
  case "${args[$i]}" in
    --full) FULL_FLAG="--full" ;;
    --jobs) JOBS="${args[$((i + 1))]:-}" ;;
    --jobs=*) JOBS="${args[$i]#--jobs=}" ;;
  esac
done
JOBS_FLAG="--jobs=${JOBS:-$(nproc 2>/dev/null || echo 2)}"

mkdir -p "$OUT_DIR/csv" "$OUT_DIR/json"

run() {
  local bin="$1"
  shift
  local name
  name="$(basename "$bin")"
  echo "=== $name $* ==="
  # `set -o pipefail` alone would abort without saying which binary died;
  # catch the pipe status so the failing bench is named before we stop.
  if ! "$bin" "$@" | tee "$OUT_DIR/$name.txt"; then
    echo "error: $name failed (exit ${PIPESTATUS[0]}); report in $OUT_DIR/$name.txt" >&2
    exit 1
  fi
  echo
}

for fig in fig01_motivation fig02_workloads \
           fig05_fair_sharing fig06_weights fig07_protocols; do
  run "$BUILD_DIR/bench/$fig" $FULL_FLAG
done
run "$BUILD_DIR/bench/fig04_queue_evolution" $FULL_FLAG --jsonl "$OUT_DIR/json"
run "$BUILD_DIR/bench/fig03_convergence" $FULL_FLAG --csv "$OUT_DIR/csv" \
    --jsonl "$OUT_DIR/json"
for fig in fig10_10g fig11_100g; do
  run "$BUILD_DIR/bench/$fig" $FULL_FLAG --csv "$OUT_DIR/csv"
done
run "$BUILD_DIR/bench/fig12_many_flows" $FULL_FLAG --csv "$OUT_DIR/csv" \
    "$JOBS_FLAG" --json "$OUT_DIR/json"
for fig in fig08_fct_non_ecn fig09_fct_ecn; do
  run "$BUILD_DIR/bench/$fig" $FULL_FLAG --csv "$OUT_DIR/csv" \
      "$JOBS_FLAG" --json "$OUT_DIR/json"
done
run "$BUILD_DIR/bench/fig13_leaf_spine" $FULL_FLAG "$JOBS_FLAG" --json "$OUT_DIR/json"

for abl in abl_victim_selection abl_satisfaction abl_dt_baseline abl_eviction \
           abl_tna_staleness abl_shared_pool abl_generic_ecn abl_delay_based; do
  run "$BUILD_DIR/bench/$abl"
done

# Competitive-ratio ablation vs. the offline-optimal oracle (DESIGN.md
# §12): per-job oracle blocks land in json/abl_competitive.json.
run "$BUILD_DIR/bench/abl_competitive" $FULL_FLAG "$JOBS_FLAG" --json "$OUT_DIR/json"

# Robustness sweeps under mid-run scenarios (DESIGN.md §11): weight churn
# and bottleneck link flaps, DynaQ vs DT vs shared-pool baselines.
for rob in rob_weight_churn rob_link_flap; do
  run "$BUILD_DIR/bench/$rob" $FULL_FLAG "$JOBS_FLAG" --json "$OUT_DIR/json"
done

# Degraded control plane (DESIGN.md §14): DynaQ behind the asynchronous
# shim through a controller crash, vs the DT failover target; emits the
# recovery-time / throughput-retention telemetry judged by the §14
# expectations.
run "$BUILD_DIR/bench/rob_controller" $FULL_FLAG "$JOBS_FLAG" \
    --csv "$OUT_DIR/csv" --json "$OUT_DIR/json"

run "$BUILD_DIR/bench/micro_dynaq_ops"
run "$BUILD_DIR/bench/micro_simulator"
run "$BUILD_DIR/bench/micro_telemetry"

# Fidelity report (DESIGN.md §13): evaluate the expectation catalogue over
# every sweep JSON produced above and render <output-dir>/REPORT.md. Not
# gated here — run_all.sh regenerates artifacts; ci.sh enforces the gate.
run "$BUILD_DIR/tools/report_gen" --results "$OUT_DIR"

echo "all reports in $OUT_DIR/ (fidelity summary: $OUT_DIR/REPORT.md)"
