// Robustness: bottleneck link flaps (DESIGN.md §11). Four always-active DRR
// queues on the testbed star while the scenario timeline takes the receiver
// downlink down and back up twice. link_down cancels the in-flight serialize
// timer through Simulator::cancel (no dead closure fires, the interrupted
// packet is lost); senders see RTOs, retransmit, and must re-fill the pipe
// when the link returns. Reported per scheme: throughput before the first
// flap, the flap-window dip, and post-recovery throughput.
#include <algorithm>
#include <stdexcept>

#include "bench/common.hpp"
#include "harness/scenario_cli.hpp"
#include "scenario/scenario.hpp"

using namespace dynaq;

namespace {

constexpr int kNumQueues = 4;

harness::StaticExperimentConfig experiment_config(core::SchemeKind kind, Time duration,
                                                  std::uint64_t seed,
                                                  const scenario::Scenario& scn) {
  harness::StaticExperimentConfig cfg;
  cfg.star = bench::testbed_star(kind, /*num_hosts=*/1 + 2 * kNumQueues);
  for (int q = 0; q < kNumQueues; ++q) {
    cfg.groups.push_back({.queue = q,
                          .num_flows = 2,
                          .first_src_host = 1 + 2 * q,
                          .num_src_hosts = 2,
                          .start = 0,
                          .stop = 0,
                          .cc = transport::CcKind::kNewReno});
  }
  cfg.duration = duration;
  // 16 windows per run so the eighth-of-the-run scenario phases resolve.
  cfg.meter_window = std::max(duration / 16, milliseconds(std::int64_t{10}));
  cfg.seed = seed;
  cfg.scenario = &scn;
  return cfg;
}

sweep::JobResult run_job(const sweep::JobPoint& point, Time duration,
                         const scenario::Scenario& scn) {
  const auto kind = core::parse_scheme(point.label("scheme"));
  const auto seed = static_cast<std::uint64_t>(point.number("seed"));
  auto r = harness::run_static_experiment(experiment_config(kind, duration, seed, scn));

  // The catalogue's link_flap timeline puts outages in [2/8, 3/8) and
  // [5/8, 6/8) of the run; slice the meter windows accordingly.
  const std::size_t n = r.meter.num_windows();
  const auto slice_mean = [&r, n](double lo, double hi) {
    const auto a = static_cast<std::size_t>(lo * static_cast<double>(n));
    const auto b = std::max(a + 1, static_cast<std::size_t>(hi * static_cast<double>(n)));
    double sum = 0.0;
    for (std::size_t w = a; w < b && w < n; ++w) sum += r.meter.aggregate_gbps(w);
    return sum / static_cast<double>(std::min(b, n) - a);
  };

  std::map<std::string, double> metrics;
  metrics["pre_gbps"] = slice_mean(0.125, 0.25);       // steady state before flap 1
  metrics["flap_gbps"] = slice_mean(0.25, 0.375);      // first outage window
  metrics["recovered_gbps"] = slice_mean(0.75, 1.0);   // after the last link_up
  metrics["timeouts"] = static_cast<double>(r.sender_totals.timeouts);
  metrics["retx"] = static_cast<double>(r.sender_totals.retransmissions);
  metrics["drops"] = static_cast<double>(r.bottleneck_stats.dropped);
  metrics["scenario_actions"] = static_cast<double>(r.scenario_actions);
  sweep::JobResult job{std::move(metrics), std::move(r.telemetry)};
  job.trajectory_hash = r.trajectory_hash;
  return job;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  if (harness::list_scenarios_requested(cli)) return 0;
  const bool full = cli.flag("full");
  const Time duration = seconds(cli.real("duration-s", full ? 10.0 : 4.0));
  const auto seeds = cli.reals("seeds", {1, 2, 3});
  const auto schemes = bench::schemes_from_cli(
      cli, {core::SchemeKind::kDynaQ, core::SchemeKind::kDynamicThreshold, core::SchemeKind::kBestEffort});
  const std::string scenario_name = cli.text("scenario", "link_flap");

  scenario::ScenarioParams sp;
  sp.duration = duration;
  sp.num_queues = kNumQueues;
  sp.qdisc = "sw.p0";
  sp.link = "sw.p0";  // the receiver downlink: flapping it stalls all queues
  scenario::Scenario scn;
  try {
    scn = scenario::make_scenario(scenario_name, sp);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::printf("Robustness — scenario '%s' on the bottleneck link (testbed star)\n",
              scn.name.c_str());
  std::puts("(link_down cancels the in-flight serialize timer; senders recover via RTO)\n");

  std::vector<std::string> names;
  for (const auto kind : schemes) names.emplace_back(core::scheme_name(kind));
  sweep::SweepSpec spec;
  spec.axes = {sweep::Axis::labels("scheme", std::move(names)),
               sweep::Axis::numeric("seed", seeds)};
  auto run = bench::run_sweep(cli, "rob_link_flap", spec,
                              [duration, &scn](const sweep::JobPoint& point) {
                                return run_job(point, duration, scn);
                              });

  harness::Table t({"scheme", "pre_gbps", "flap_gbps", "recov_gbps", "timeouts", "retx",
                    "actions"});
  for (const auto& row : run.store.aggregate("seed")) {
    const auto metric = [&row](const char* name) {
      const auto it = row.metrics.find(name);
      return it == row.metrics.end() ? 0.0 : it->second.mean;
    };
    t.row({row.coords.front().second.label, bench::fmt(metric("pre_gbps")),
           bench::fmt(metric("flap_gbps")), bench::fmt(metric("recovered_gbps")),
           bench::fmt(metric("timeouts"), 0), bench::fmt(metric("retx"), 0),
           bench::fmt(metric("scenario_actions"), 0)});
  }
  t.print();
  std::puts("\nexpected shape: throughput collapses during the outage windows and");
  std::puts("recovers to the pre-flap level after link_up for every scheme");
  return run.exit_code;
}
