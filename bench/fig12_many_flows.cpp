// Figure 12: robustness to traffic dynamics — 100 Gbps links where queue i
// is fed by 2^(3+i) single-flow senders (16..2048, 4080 flows in total).
#include "bench/highspeed_common.hpp"

using namespace dynaq;

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 1));
  const bool series = cli.flag("series");
  const auto csv_dir = cli.text("csv", "");
  // Paper scale by default (16..2048 senders, 4080 flows) — the run is
  // short enough; --reduced shrinks the counts 4x for quick smoke tests.
  const int shift = cli.flag("reduced") ? 1 : 3;

  std::puts("Figure 12 — 100Gbps links with many flows (queue i has 2^(3+i) senders)");
  std::printf("(queue sender counts %d..%d)\n\n", 2 << shift, (2 << shift) << 7);

  for (const auto kind : {core::SchemeKind::kBestEffort, core::SchemeKind::kPql,
                          core::SchemeKind::kDynaQ}) {
    bench::HighSpeedConfig cfg;
    cfg.star = bench::sim100g_star(kind, /*num_hosts=*/1, std::vector<double>(8, 1.0));
    for (int i = 1; i <= 8; ++i) cfg.senders_per_queue.push_back(1 << (shift + i));
    cfg.mss = net::kJumboMss;
    cfg.seed = seed;
    const auto rows = bench::run_high_speed(std::move(cfg));
    std::printf("--- %s ---\n", std::string(core::scheme_name(kind)).c_str());
    if (series) bench::print_high_speed(rows);
    std::vector<std::vector<double>> csv_rows;
    for (const auto& row : rows) csv_rows.push_back({row.time_ms, row.jain, row.aggregate_gbps});
    bench::maybe_write_csv(csv_dir, "fig12_" + std::string(core::scheme_name(kind)),
                           {"time_ms", "jain", "aggregate_gbps"}, csv_rows);
    bench::print_high_speed_summary(rows, 100.0);
    std::puts("");
  }
  std::puts("paper shape: BestEffort fairness collapses (~0.24 for the first 200ms) and");
  std::puts("briefly loses throughput at 300ms; PQL stays below ~94.5G after 500ms;");
  std::puts("DynaQ is robust to the extreme flow counts");
  return 0;
}
