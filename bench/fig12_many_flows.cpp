// Figure 12: robustness to traffic dynamics — 100 Gbps links where queue i
// is fed by 2^(3+i) single-flow senders (16..2048, 4080 flows in total).
// The (scheme x seed) grid runs through the sweep engine; each job stores
// its 10 ms time series in a per-job slot so the report prints in grid
// order no matter how many workers ran it.
#include "bench/highspeed_common.hpp"

using namespace dynaq;

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const auto seeds = cli.reals("seeds", {static_cast<double>(cli.integer("seed", 1))});
  const bool series = cli.flag("series");
  const auto csv_dir = cli.text("csv", "");
  // Paper scale by default (16..2048 senders, 4080 flows) — the run is
  // short enough; --reduced shrinks the counts 4x for quick smoke tests.
  const int shift = cli.flag("reduced") ? 1 : 3;
  const auto kinds = bench::schemes_from_cli(
      cli, {core::SchemeKind::kBestEffort, core::SchemeKind::kPql, core::SchemeKind::kDynaQ});

  std::puts("Figure 12 — 100Gbps links with many flows (queue i has 2^(3+i) senders)");
  std::printf("(queue sender counts %d..%d)\n\n", 2 << shift, (2 << shift) << 7);

  sweep::SweepSpec spec;
  {
    std::vector<std::string> names;
    for (const auto kind : kinds) names.emplace_back(core::scheme_name(kind));
    spec.axes = {sweep::Axis::labels("scheme", std::move(names)),
                 sweep::Axis::numeric("seed", seeds)};
  }
  std::vector<std::vector<bench::HighSpeedRow>> all_rows(spec.num_jobs());

  const auto run = bench::run_sweep(
      cli, "fig12_many_flows", spec, [&](const sweep::JobPoint& point) {
        bench::HighSpeedConfig cfg;
        const auto kind = core::parse_scheme(point.label("scheme"));
        cfg.star = bench::sim100g_star(kind, /*num_hosts=*/1, std::vector<double>(8, 1.0));
        for (int i = 1; i <= 8; ++i) cfg.senders_per_queue.push_back(1 << (shift + i));
        cfg.mss = net::kJumboMss;
        cfg.seed = static_cast<std::uint64_t>(point.number("seed"));
        auto rows = bench::run_high_speed(std::move(cfg));
        auto metrics = bench::high_speed_metrics(rows);
        all_rows[point.job_id] = std::move(rows);  // private slot: no locking
        return metrics;
      });

  for (const auto& o : run.store.outcomes()) {
    if (!o.ok) continue;
    const auto& rows = all_rows[o.point.job_id];
    const bool first_seed = o.point.number("seed") == seeds.front();
    const auto scheme = o.point.label("scheme");
    if (first_seed) std::printf("--- %s ---\n", scheme.c_str());
    if (series && first_seed) bench::print_high_speed(rows);
    if (first_seed) {
      std::vector<std::vector<double>> csv_rows;
      for (const auto& row : rows) csv_rows.push_back({row.time_ms, row.jain, row.aggregate_gbps});
      bench::maybe_write_csv(csv_dir, "fig12_" + scheme,
                             {"time_ms", "jain", "aggregate_gbps"}, csv_rows);
    }
    if (seeds.size() > 1) std::printf("seed %g: ", o.point.number("seed"));
    bench::print_high_speed_summary(rows, 100.0);
    if (o.point.number("seed") == seeds.back()) std::puts("");
  }
  std::puts("paper shape: BestEffort fairness collapses (~0.24 for the first 200ms) and");
  std::puts("briefly loses throughput at 300ms; PQL stays below ~94.5G after 500ms;");
  std::puts("DynaQ is robust to the extreme flow counts");
  return run.exit_code;
}
