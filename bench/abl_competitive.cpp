// Ablation: empirical competitive ratios vs. the offline-optimal oracle
// (DESIGN.md §12). Re-runs the Fig. 8 star workload (SPQ(1)/DRR(4), web
// search flows, PIAS tagging) with the bottleneck-port arrival trace
// recorded, replays each trace through oracle::OfflineOptimal, and prints
// the measured optimal/policy goodput ratio per scheme next to the
// worst-case bounds from the buffer-sharing literature: LQD is
// 1.5-competitive (Matsakis), Harmonic is (2+ln n)-competitive (Addanki et
// al.). Measured ratios on a benign workload sit far below the adversarial
// bounds; the interesting signal is the ordering between schemes and how it
// shifts with load. (scheme x load x seed) runs through the sweep engine:
// --jobs N parallelizes, --json emits per-job oracle blocks (schema v5).
#include <cmath>

#include "bench/fct_common.hpp"

using namespace dynaq;

namespace {

// Worst-case competitive-ratio bound from the literature, or "-" where no
// constant-factor bound is known for the shared-memory push-out model.
std::string literature_bound(core::SchemeKind kind, int num_queues) {
  switch (kind) {
    case core::SchemeKind::kLongestQueueDrop:
      return "1.50 (Matsakis)";
    case core::SchemeKind::kHarmonic:
      return bench::fmt(2.0 + std::log(static_cast<double>(num_queues)), 2) +
             " (2+ln " + std::to_string(num_queues) + ", Addanki)";
    default:
      return "-";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const bool full = cli.flag("full");
  bench::FctSweepConfig sweep;
  sweep.schemes = bench::schemes_from_cli(
      cli, {core::SchemeKind::kDynaQ, core::SchemeKind::kDynamicThreshold,
            core::SchemeKind::kLongestQueueDrop, core::SchemeKind::kHarmonic,
            core::SchemeKind::kBestEffort});
  sweep.loads = cli.reals("loads", full ? std::vector<double>{0.5, 0.7, 0.9}
                                        : std::vector<double>{0.7});
  sweep.flows = static_cast<std::size_t>(cli.integer("flows", full ? 4'000 : 400));
  sweep.seeds = cli.reals("seeds", full ? std::vector<double>{1, 2, 3, 4, 5}
                                        : std::vector<double>{1, 2, 3});

  std::puts("Ablation — competitive ratio vs. offline-optimal oracle (DESIGN.md §12)");
  std::printf("(fig08 star workload: SPQ(1)/DRR(4), web search, %zu flows per run;\n",
              sweep.flows);
  std::puts(" ratio = clairvoyant-optimal bytes / policy bytes at the bottleneck port)\n");

  const int num_queues = 5;  // testbed star: SPQ(1) + DRR(4) service queues
  auto run = bench::run_sweep(
      cli, "abl_competitive",
      bench::scheme_load_seed_spec(sweep.schemes, sweep.loads, sweep.seeds),
      [&sweep](const sweep::JobPoint& point) {
        const auto kind = core::parse_scheme(point.label("scheme"));
        harness::DynamicStarConfig cfg;
        cfg.star = bench::testbed_star(kind, /*num_hosts=*/5, {1, 1, 1, 1, 1});
        cfg.star.scheduler = topo::SchedulerKind::kSpqOverDrr;
        cfg.client_host = 0;
        cfg.num_servers = 4;
        cfg.num_flows = sweep.flows;
        cfg.load = point.number("load");
        cfg.dist = &workload::web_search_workload();
        cfg.cc = core::scheme_uses_ecn(kind) ? sweep.ecn_cc : sweep.default_cc;
        cfg.pias = true;
        cfg.pias_threshold_bytes = 100'000;
        cfg.first_service_queue = 1;
        cfg.seed = static_cast<std::uint64_t>(point.number("seed"));
        cfg.oracle_competitive = true;
        auto r = harness::run_dynamic_star_experiment(cfg);
        sweep::JobResult job{bench::fct_metrics(r), std::move(r.telemetry)};
        job.trajectory_hash = r.trajectory_hash;
        if (r.oracle) {
          job.metrics["competitive_ratio"] = r.oracle->ratio;
          job.metrics["oracle_optimal_mb"] = r.oracle->optimal_bytes / 1e6;
          job.metrics["oracle_policy_mb"] =
              static_cast<double>(r.oracle->policy_bytes) / 1e6;
          job.metrics["oracle_offered_mb"] =
              static_cast<double>(r.oracle->offered_bytes) / 1e6;
          job.metrics["oracle_policy_drops"] =
              static_cast<double>(r.oracle->policy_drops);
          job.metrics["oracle_opt_pushouts"] =
              static_cast<double>(r.oracle->opt_pushouts);
        }
        job.oracle = std::move(r.oracle);
        return job;
      });

  // Seed-mean table: measured ratio next to the adversarial literature
  // bound. Rows ordered scheme-major to keep each scheme's load trend
  // adjacent.
  const auto aggregates = run.store.aggregate("seed");
  harness::Table t({"scheme", "load", "ratio", "policy_MB", "optimal_MB", "drops",
                    "literature_bound"});
  for (const auto kind : sweep.schemes) {
    const std::string scheme = std::string(core::scheme_name(kind));
    for (const double load : sweep.loads) {
      const sweep::AggregateRow* found = nullptr;
      for (const auto& row : aggregates) {
        bool match_scheme = false, match_load = false;
        for (const auto& [axis, value] : row.coords) {
          if (axis == "scheme" && value.label == scheme) match_scheme = true;
          if (axis == "load" && value.number == load) match_load = true;
        }
        if (match_scheme && match_load) {
          found = &row;
          break;
        }
      }
      const auto metric = [&found](const char* name) {
        if (found == nullptr) return 0.0;
        const auto it = found->metrics.find(name);
        return it == found->metrics.end() ? 0.0 : it->second.mean;
      };
      if (found == nullptr || found->replicas == 0 ||
          found->metrics.find("competitive_ratio") == found->metrics.end()) {
        t.row({scheme, bench::fmt(load * 100, 0) + "%", "n/a", "n/a", "n/a", "n/a",
               literature_bound(kind, num_queues)});
        continue;
      }
      t.row({scheme, bench::fmt(load * 100, 0) + "%",
             bench::fmt(metric("competitive_ratio"), 4),
             bench::fmt(metric("oracle_policy_mb"), 2),
             bench::fmt(metric("oracle_optimal_mb"), 2),
             bench::fmt(metric("oracle_policy_drops"), 0),
             literature_bound(kind, num_queues)});
    }
  }
  t.print();
  std::puts("");
  std::puts("ratio >= 1 by construction (aggregate optimum is work-conserving over the");
  std::puts("recorded arrivals); closer to 1 = fewer bytes lost vs. a clairvoyant");
  std::puts("shared-buffer allocator on the identical arrival sequence.");
  return run.exit_code;
}
