// Ablation (extension): packet eviction versus packet dropping.
//
// §II-C of the paper argues dropping suffices for service-queue isolation
// and reserves eviction (BarberQ) for microburst absorption. Our
// reproduction found one place where dropping hurts: when heavy queues pin
// the port buffer exactly full, a small-flow burst admitted by DynaQ's
// thresholds can still be rejected by the physical bound and eat an RTO.
// DynaQ+Evict displaces surplus tail packets instead; this bench measures
// what that buys on the Figure 8 small-flow metrics.
#include "bench/fct_common.hpp"

using namespace dynaq;

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  bench::FctSweepConfig sweep;
  sweep.schemes = bench::schemes_from_cli(
      cli, {core::SchemeKind::kDynaQ, core::SchemeKind::kDynaQEvict, core::SchemeKind::kPql});
  sweep.loads = cli.reals("loads", {0.3, 0.5, 0.7});
  sweep.flows = static_cast<std::size_t>(cli.integer("flows", 1'500));
  sweep.seeds = cli.reals("seeds", {static_cast<double>(cli.integer("seed", 1))});

  std::puts("Ablation — drop vs evict under the Figure 8 workload (web search,");
  std::puts("SPQ(1)/DRR(4), PIAS): does tail eviction remove the port-full races");
  std::puts("that tail DynaQ's small-flow FCT?\n");

  const auto run = bench::run_fct_sweep(cli, "abl_eviction", sweep);
  const auto results = bench::fct_results_from_store(run.store);
  bench::print_fct_metric(results, core::SchemeKind::kDynaQ, sweep.loads,
                          "average FCT, small flows (<=100KB)",
                          &stats::FctSummary::avg_small_ms);
  bench::print_fct_metric(results, core::SchemeKind::kDynaQ, sweep.loads,
                          "99th percentile FCT, small flows",
                          &stats::FctSummary::p99_small_ms);
  bench::print_fct_metric(results, core::SchemeKind::kDynaQ, sweep.loads,
                          "average FCT, large flows (>10MB)",
                          &stats::FctSummary::avg_large_ms);

  std::puts("expected: DynaQ+Evict pulls the small-flow tail toward (or past) PQL's");
  std::puts("while keeping DynaQ's work-conserving large-flow advantage");
  return run.exit_code;
}
