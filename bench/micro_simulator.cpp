// Perf-regression harness for the event engine (DESIGN.md §9).
//
// Four workloads exercise the hot paths the models hit:
//   chain  — self-rescheduling tickers (steady-state ring insert/pop)
//   fanout — bulk out-of-order inserts across a wide horizon (overflow +
//            window rebuilds + staged-front sorts)
//   packet — tickers that capture a net::Packet by value (the serialization
//            / propagation hop closure; must never heap-allocate)
//   cancel — a ticker that arms and cancels a far-future decoy per event
//            (the retransmit-timer push-out pattern)
//
// Reports ns/event and events/sec (best of --reps passes) against the
// pre-rewrite baseline (binary heap of std::function, commit c1754d0;
// measured with the same workload code on the same machine class), and
// verifies the hot path stays allocation-free (zero EventFn heap
// fallbacks). --json writes BENCH_core.json; --assert-budget (used by
// ci.sh) fails the run when any workload exceeds its soft ns/event budget
// or a closure falls back to the heap.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "harness/cli.hpp"
#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sweep/json.hpp"

using namespace dynaq;

namespace {

// Pre-rewrite baseline, ns/event: the same workloads driven through the
// std::function binary-heap engine (commit c1754d0), best of 5.
constexpr double kBaselineChainNs = 38.39;
constexpr double kBaselineFanoutNs = 283.49;
constexpr double kBaselinePacketNs = 67.74;

// Soft budgets (ns/event) for --assert-budget: ~2-2.5x the measured
// post-rewrite numbers (chain ~19, fanout ~150, packet ~27, cancel ~40),
// loose enough for a busy shared single-core machine, tight enough to
// catch a complexity regression. The hard gate is the heap-fallback
// count: any per-event allocation fails the run regardless of timing.
constexpr double kBudgetChainNs = 45.0;
constexpr double kBudgetFanoutNs = 400.0;
constexpr double kBudgetPacketNs = 65.0;
constexpr double kBudgetCancelNs = 95.0;

struct Measurement {
  double ns_per_event = 0;
  std::uint64_t heap_fallbacks = 0;
};

double secs(std::chrono::steady_clock::time_point a, std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct Ticker {
  sim::Simulator* sim;
  long* remaining;
  void operator()() const {
    if (--*remaining > 0) sim->schedule_in(nanoseconds(10), *this);
  }
};

Measurement chain_pass(long n) {
  sim::Simulator sim;
  long remaining = n;
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < 4; ++c) sim.schedule_in(nanoseconds(10 + c), Ticker{&sim, &remaining});
  sim.run();
  const auto t1 = std::chrono::steady_clock::now();
  return {secs(t0, t1) * 1e9 / static_cast<double>(n), sim.event_heap_fallbacks()};
}

Measurement fanout_pass(long width) {
  sim::Simulator sim;
  sim::Rng rng(1);
  long fired = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (long i = 0; i < width; ++i) {
    sim.schedule_at(nanoseconds(rng.uniform_int(1, 1'000'000)), [&fired] { ++fired; });
  }
  sim.run();
  const auto t1 = std::chrono::steady_clock::now();
  if (fired != width) std::abort();
  return {secs(t0, t1) * 1e9 / static_cast<double>(width), sim.event_heap_fallbacks()};
}

// Mirrors the Port::start_transmission closure shape — one context pointer
// plus a Packet by value (104 bytes, the largest inline-eligible capture;
// see the static_asserts in net/port.hpp).
struct PacketChain {
  sim::Simulator* sim;
  long remaining;
};

struct PacketHop {
  PacketChain* chain;
  net::Packet pkt;
  void operator()() const {
    if (--chain->remaining > 0) {
      net::Packet next = pkt;
      next.seq += static_cast<std::uint64_t>(next.payload);
      chain->sim->schedule_in(nanoseconds(120), PacketHop{chain, next});
    }
  }
};
static_assert(sim::EventFn::fits_inline<PacketHop>());

Measurement packet_pass(long n) {
  sim::Simulator sim;
  PacketChain chain{&sim, n};
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < 4; ++c) {
    sim.schedule_in(nanoseconds(120 + c),
                    PacketHop{&chain, net::make_data_packet(1, 0, 1, 0, 1460)});
  }
  sim.run();
  const auto t1 = std::chrono::steady_clock::now();
  return {secs(t0, t1) * 1e9 / static_cast<double>(n), sim.event_heap_fallbacks()};
}

// Retransmit-timer pattern: every tick re-arms a decoy deadline far in the
// future, cancelling the previous one. Cost is charged per fired event
// (each tick = one fire + one cancel + two schedules).
struct CancelTicker {
  sim::Simulator* sim;
  long* remaining;
  sim::EventId* decoy;
  void operator()() const {
    if (*decoy != sim::kNoEvent && !sim->cancel(*decoy)) std::abort();
    *decoy = sim->schedule_in(milliseconds(std::int64_t{200}), [] { std::abort(); });
    if (--*remaining > 0) sim->schedule_in(nanoseconds(10), *this);
  }
};

Measurement cancel_pass(long n) {
  sim::Simulator sim;
  long remaining = n;
  sim::EventId decoy = sim::kNoEvent;
  const auto t0 = std::chrono::steady_clock::now();
  sim.schedule_in(nanoseconds(10), CancelTicker{&sim, &remaining, &decoy});
  sim.run_until(milliseconds(std::int64_t{100}));  // the last decoy never fires
  const auto t1 = std::chrono::steady_clock::now();
  if (remaining > 0 || sim.events_cancelled() != static_cast<std::uint64_t>(n) - 1) std::abort();
  return {secs(t0, t1) * 1e9 / static_cast<double>(n), sim.event_heap_fallbacks()};
}

template <typename F>
Measurement best_of(F pass, int reps) {
  Measurement best = pass();
  for (int r = 1; r < reps; ++r) {
    const Measurement m = pass();
    if (m.ns_per_event < best.ns_per_event) best = m;
  }
  return best;
}

struct Row {
  const char* name;
  Measurement m;
  double baseline_ns;  // 0 = no pre-rewrite baseline (workload didn't exist)
  double budget_ns;
};

void json_row(sweep::JsonWriter& w, const Row& r) {
  w.key(r.name);
  w.begin_object();
  w.key("ns_per_event");
  w.value(r.m.ns_per_event);
  w.key("events_per_sec");
  w.value(1e9 / r.m.ns_per_event);
  w.key("heap_fallbacks");
  w.value(static_cast<std::int64_t>(r.m.heap_fallbacks));
  if (r.baseline_ns > 0) {
    w.key("baseline_ns_per_event");
    w.value(r.baseline_ns);
    w.key("speedup");
    w.value(r.baseline_ns / r.m.ns_per_event);
  }
  w.key("budget_ns_per_event");
  w.value(r.budget_ns);
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const long events = cli.integer("events", 400'000);
  const long fanout_width = cli.integer("fanout-width", 100'000);
  const int reps = static_cast<int>(cli.integer("reps", 5));
  const bool assert_budget = cli.flag("assert-budget");
  const std::string json_path = cli.text("json", "");

  std::puts("Event-engine microbench (DESIGN.md §9 perf-regression harness)");
  std::printf("(%ld events per pass, best of %d passes; baseline = binary-heap\n"
              " std::function engine at commit c1754d0)\n\n",
              events, reps);

  const Row rows[] = {
      {"chain", best_of([&] { return chain_pass(events); }, reps), kBaselineChainNs,
       kBudgetChainNs},
      {"fanout", best_of([&] { return fanout_pass(fanout_width); }, reps), kBaselineFanoutNs,
       kBudgetFanoutNs},
      {"packet", best_of([&] { return packet_pass(events); }, reps), kBaselinePacketNs,
       kBudgetPacketNs},
      {"cancel", best_of([&] { return cancel_pass(events); }, reps), 0.0, kBudgetCancelNs},
  };

  std::printf("%-8s %12s %14s %10s %14s\n", "workload", "ns/event", "Mevents/s", "speedup",
              "heap-fallback");
  for (const Row& r : rows) {
    char speedup[16] = "n/a";
    if (r.baseline_ns > 0) {
      std::snprintf(speedup, sizeof speedup, "%.2fx", r.baseline_ns / r.m.ns_per_event);
    }
    std::printf("%-8s %12.2f %14.2f %10s %14llu\n", r.name, r.m.ns_per_event,
                1e3 / r.m.ns_per_event, speedup,
                static_cast<unsigned long long>(r.m.heap_fallbacks));
  }

  if (!json_path.empty()) {
    sweep::JsonWriter w;
    w.begin_object();
    w.key("schema");
    w.value("dynaq-bench-core-v1");
    w.key("events_per_pass");
    w.value(static_cast<std::int64_t>(events));
    w.key("reps");
    w.value(reps);
    w.key("baseline");
    w.value("binary-heap std::function engine (commit c1754d0), best of 5");
    w.key("workloads");
    w.begin_object();
    for (const Row& r : rows) json_row(w, r);
    w.end_object();
    w.end_object();
    std::ofstream out(json_path);
    out << w.take() << "\n";
    if (!out) {
      std::fprintf(stderr, "FAIL: could not write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  if (assert_budget) {
    bool ok = true;
    for (const Row& r : rows) {
      if (r.m.ns_per_event > r.budget_ns) {
        std::fprintf(stderr, "FAIL: %s %.2f ns/event exceeds soft budget %.2f\n", r.name,
                     r.m.ns_per_event, r.budget_ns);
        ok = false;
      }
      if (r.m.heap_fallbacks != 0) {
        std::fprintf(stderr, "FAIL: %s made %llu heap-fallback allocations (want 0)\n", r.name,
                     static_cast<unsigned long long>(r.m.heap_fallbacks));
        ok = false;
      }
    }
    if (!ok) return 1;
    std::puts("\nPASS: all workloads within ns/event budgets, zero heap fallbacks");
  }
  return 0;
}
