// Micro-benchmarks of the simulation substrate: event-loop throughput,
// port serialization, and per-scheme enqueue/dequeue cost of the
// multi-queue qdisc. These bound how large an experiment the simulator can
// sustain (events/second) and show the relative software cost of each
// buffer-management scheme's hot path.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/scheme.hpp"
#include "net/multi_queue_qdisc.hpp"
#include "net/schedulers.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace dynaq;

void BM_EventLoopThroughput(benchmark::State& state) {
  // Self-rescheduling event chain: measures raw schedule+dispatch cost.
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    const int n = 100'000;
    int remaining = n;
    std::function<void()> tick = [&] {
      if (--remaining > 0) sim.schedule_in(nanoseconds(10), tick);
    };
    sim.schedule_in(nanoseconds(10), tick);
    state.ResumeTiming();
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_EventLoopThroughput)->Unit(benchmark::kMillisecond);

void BM_EventQueueFanout(benchmark::State& state) {
  // Wide pending set: heap behaviour with many concurrent timers.
  const int width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    sim::Rng rng(1);
    for (int i = 0; i < width; ++i) {
      sim.schedule_at(nanoseconds(rng.uniform_int(1, 1'000'000)), [] {});
    }
    state.ResumeTiming();
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_EventQueueFanout)->Arg(1'000)->Arg(100'000)->Unit(benchmark::kMillisecond);

void bench_scheme(benchmark::State& state, core::SchemeKind kind) {
  sim::Simulator sim;
  core::SchemeSpec spec;
  spec.kind = kind;
  spec.ecn.port_threshold_bytes = 30'000;
  spec.ecn.sojourn_threshold = microseconds(std::int64_t{240});
  spec.ecn.capacity_bps = 1e9;
  spec.ecn.rtt = microseconds(std::int64_t{500});
  auto qd = core::make_mq_qdisc(sim, std::vector<double>(8, 1.0), 192'000, spec,
                                std::make_unique<net::DrrScheduler>(1500));
  sim::Rng rng(7);
  int q = 0;
  for (auto _ : state) {
    net::Packet p = net::make_data_packet(1, 0, 1, 0, 1460);
    p.queue = static_cast<std::uint8_t>(q);
    p.set(net::kFlagEct);
    benchmark::DoNotOptimize(qd->enqueue(std::move(p)));
    if (qd->backlog_bytes() > 150'000) {
      while (qd->backlog_bytes() > 50'000) benchmark::DoNotOptimize(qd->dequeue());
    }
    q = (q + 1) & 7;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_QdiscDynaQ(benchmark::State& state) { bench_scheme(state, core::SchemeKind::kDynaQ); }
void BM_QdiscDynaQEvict(benchmark::State& state) {
  bench_scheme(state, core::SchemeKind::kDynaQEvict);
}
void BM_QdiscBestEffort(benchmark::State& state) {
  bench_scheme(state, core::SchemeKind::kBestEffort);
}
void BM_QdiscPql(benchmark::State& state) { bench_scheme(state, core::SchemeKind::kPql); }
void BM_QdiscPmsb(benchmark::State& state) { bench_scheme(state, core::SchemeKind::kPmsb); }
void BM_QdiscMqEcn(benchmark::State& state) { bench_scheme(state, core::SchemeKind::kMqEcn); }

BENCHMARK(BM_QdiscDynaQ);
BENCHMARK(BM_QdiscDynaQEvict);
BENCHMARK(BM_QdiscBestEffort);
BENCHMARK(BM_QdiscPql);
BENCHMARK(BM_QdiscPmsb);
BENCHMARK(BM_QdiscMqEcn);

}  // namespace

BENCHMARK_MAIN();
