// Figure 9: FCT comparison against the ECN-based schemes (TCN, PMSB,
// Per-Queue ECN) running DCTCP, versus DynaQ running plain TCP. Same
// SPQ(1)/DRR(4) + PIAS setup as Figure 8, normalized by DynaQ.
#include "bench/fct_common.hpp"

using namespace dynaq;

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const bool full = cli.flag("full");
  bench::FctSweepConfig sweep;
  sweep.schemes = {core::SchemeKind::kDynaQ, core::SchemeKind::kTcn, core::SchemeKind::kPmsb,
                   core::SchemeKind::kPerQueueEcn};
  sweep.loads = cli.reals("loads", full ? std::vector<double>{0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
                                        : std::vector<double>{0.3, 0.5, 0.7});
  sweep.flows = static_cast<std::size_t>(cli.integer("flows", full ? 10'000 : 1'500));
  sweep.seed = static_cast<std::uint64_t>(cli.integer("seed", 1));

  std::puts("Figure 9 — FCT vs ECN-based schemes (DCTCP senders), SPQ(1)/DRR(4)");
  std::printf("(%zu flows per run, K=30KB, TCN sojourn threshold 240us)\n\n", sweep.flows);

  const auto results = bench::run_fct_sweep(sweep);
  bench::write_fct_csv(cli.text("csv", ""), "fig09", results);
  bench::print_fct_metric(results, core::SchemeKind::kDynaQ, sweep.loads,
                          "(a) average FCT, overall", &stats::FctSummary::avg_overall_ms);
  bench::print_fct_metric(results, core::SchemeKind::kDynaQ, sweep.loads,
                          "(b) average FCT, small flows (<=100KB)",
                          &stats::FctSummary::avg_small_ms);
  bench::print_fct_metric(results, core::SchemeKind::kDynaQ, sweep.loads,
                          "(c) 99th percentile FCT, small flows",
                          &stats::FctSummary::p99_small_ms);
  bench::print_fct_metric(results, core::SchemeKind::kDynaQ, sweep.loads,
                          "(d) average FCT, large flows (>10MB)",
                          &stats::FctSummary::avg_large_ms);

  std::puts("paper shape: mixed overall results at 30-40% load (TCN up to 0.95x), DynaQ");
  std::puts("ahead elsewhere (1.28x-1.99x); for small flows DynaQ wins across loads,");
  std::puts("most dramatically at 30% load (>12x vs PMSB/Per-Queue ECN)");
  return 0;
}
