// Figure 9: FCT comparison against the ECN-based schemes (TCN, PMSB,
// Per-Queue ECN) running DCTCP, versus DynaQ running plain TCP. Same
// SPQ(1)/DRR(4) + PIAS setup as Figure 8, normalized by DynaQ. The grid
// runs through the sweep engine (--jobs/--seeds/--json, see fig08).
#include "bench/fct_common.hpp"

using namespace dynaq;

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const bool full = cli.flag("full");
  bench::FctSweepConfig sweep;
  sweep.schemes = bench::schemes_from_cli(
      cli, {core::SchemeKind::kDynaQ, core::SchemeKind::kTcn, core::SchemeKind::kPmsb,
            core::SchemeKind::kPerQueueEcn});
  sweep.loads = cli.reals("loads", full ? std::vector<double>{0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
                                        : std::vector<double>{0.3, 0.5, 0.7});
  sweep.flows = static_cast<std::size_t>(cli.integer("flows", full ? 10'000 : 1'500));
  sweep.seeds = cli.reals("seeds", {static_cast<double>(cli.integer("seed", 1))});
  const auto csv_dir = cli.text("csv", "");

  std::puts("Figure 9 — FCT vs ECN-based schemes (DCTCP senders), SPQ(1)/DRR(4)");
  std::printf("(%zu flows per run, K=30KB, TCN sojourn threshold 240us)\n\n", sweep.flows);

  const auto run = bench::run_fct_sweep(cli, "fig09_fct_ecn", sweep);
  const auto results = bench::fct_results_from_store(run.store);
  bench::write_fct_csv(csv_dir, "fig09", results);
  bench::print_fct_metric(results, core::SchemeKind::kDynaQ, sweep.loads,
                          "(a) average FCT, overall", &stats::FctSummary::avg_overall_ms);
  bench::print_fct_metric(results, core::SchemeKind::kDynaQ, sweep.loads,
                          "(b) average FCT, small flows (<=100KB)",
                          &stats::FctSummary::avg_small_ms);
  bench::print_fct_metric(results, core::SchemeKind::kDynaQ, sweep.loads,
                          "(c) 99th percentile FCT, small flows",
                          &stats::FctSummary::p99_small_ms);
  bench::print_fct_metric(results, core::SchemeKind::kDynaQ, sweep.loads,
                          "(d) average FCT, large flows (>10MB)",
                          &stats::FctSummary::avg_large_ms);
  bench::print_drop_breakdown(run.store);

  std::puts("paper shape: mixed overall results at 30-40% load (TCN up to 0.95x), DynaQ");
  std::puts("ahead elsewhere (1.28x-1.99x); for small flows DynaQ wins across loads,");
  std::puts("most dramatically at 30% load (>12x vs PMSB/Per-Queue ECN)");
  return run.exit_code;
}
