// Figure 1: motivation — violated fair sharing by unfair buffer occupancy.
//
// DRR with equal weights, best-effort shared buffer. Queue 1 has 8 flows
// from one sender; queue 2 has 24 flows from three senders. The paper
// measures per-queue throughput every 0.5 s for 60 s and 1 K sequential
// queue-length samples; queue 1 cannot reach its fair share because it
// cannot hold its weighted BDP in the buffer.
#include "bench/common.hpp"

using namespace dynaq;

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const bool full = cli.flag("full");
  const auto duration = seconds(cli.integer("seconds", full ? 60 : 10));

  harness::StaticExperimentConfig cfg;
  cfg.star = bench::testbed_star(core::SchemeKind::kBestEffort, /*num_hosts=*/5);
  cfg.star.queue_weights = {1, 1};  // the figure uses two service queues
  cfg.groups = {
      {.queue = 0, .num_flows = 8, .first_src_host = 1, .num_src_hosts = 1,
       .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno},
      {.queue = 1, .num_flows = 24, .first_src_host = 2, .num_src_hosts = 3,
       .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno},
  };
  cfg.duration = duration;
  cfg.meter_window = milliseconds(std::int64_t{500});
  cfg.queue_samples = 1000;
  cfg.queue_sample_skip = full ? 2'000'000 : 400'000;
  cfg.seed = static_cast<std::uint64_t>(cli.integer("seed", 1));

  std::puts("Figure 1 — violated fair sharing with the best-effort shared buffer");
  std::puts("(4 senders: queue1 <- 8 flows from 1 host, queue2 <- 24 flows from 3 hosts)\n");
  const auto r = harness::run_static_experiment(cfg);

  std::puts("(a) Throughput per 0.5 s window [Gbps]");
  harness::Table t({"time_s", "queue1", "queue2", "share1", "share2"});
  for (std::size_t w = 0; w < r.meter.num_windows(); ++w) {
    const auto xs = r.meter.window_gbps(w);
    t.row({bench::fmt((static_cast<double>(w) + 0.5) * 0.5, 1), bench::fmt(xs[0]),
           bench::fmt(xs[1]), bench::fmt(stats::share_of(xs, 0), 2),
           bench::fmt(stats::share_of(xs, 1), 2)});
  }
  t.print();

  const double q1 = r.meter.mean_gbps(0, 2, r.meter.num_windows());
  const double q2 = r.meter.mean_gbps(1, 2, r.meter.num_windows());
  std::printf("\nmean after warmup: queue1=%.3f Gbps queue2=%.3f Gbps (fair: ~0.5 each)\n", q1,
              q2);

  std::puts("\n(b) Queue length samples (1K sequential per-operation samples)");
  std::vector<double> occ1;
  std::vector<double> occ2;
  for (const auto& s : r.queue_samples) {
    occ1.push_back(static_cast<double>(s.queue_bytes[0]) / 1000.0);
    occ2.push_back(static_cast<double>(s.queue_bytes[1]) / 1000.0);
  }
  harness::Table qt({"queue", "mean_KB", "p10_KB", "p50_KB", "p90_KB"});
  qt.row({"queue1", bench::fmt(stats::mean(occ1), 1), bench::fmt(stats::percentile(occ1, 10), 1),
          bench::fmt(stats::percentile(occ1, 50), 1), bench::fmt(stats::percentile(occ1, 90), 1)});
  qt.row({"queue2", bench::fmt(stats::mean(occ2), 1), bench::fmt(stats::percentile(occ2, 10), 1),
          bench::fmt(stats::percentile(occ2, 50), 1), bench::fmt(stats::percentile(occ2, 90), 1)});
  qt.print();
  std::printf("\npaper shape: queue2 dominates the 85KB buffer; queue1 throughput < fair share\n");
  return 0;
}
