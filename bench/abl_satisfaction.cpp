// Ablation (§III-B2, Eq. 3): satisfaction threshold S_i = B·w_i/Σw (the
// paper's choice) versus the theoretically sufficient S_i = WBDP_i. The
// paper reports that WBDP leaves no headroom against threshold
// fluctuation, so weighted fair sharing degrades. The weighted-queue
// scenario (4:3:2:1, uneven flow counts) stresses exactly that: with
// S_i = WBDP_i, aggressive queues can raid a light queue's threshold far
// below the buffer share it needs for a stable weighted rate.
#include "bench/common.hpp"

using namespace dynaq;

namespace {

struct Outcome {
  std::vector<double> shares;
  double abs_err = 0.0;
  double mean_jain_weighted = 0.0;
};

Outcome run(core::SatisfactionRule rule, std::uint64_t seed) {
  harness::StaticExperimentConfig cfg;
  cfg.star = bench::testbed_star(core::SchemeKind::kDynaQ, /*num_hosts=*/9, {4, 3, 2, 1});
  cfg.star.scheme.dynaq.satisfaction = rule;
  cfg.star.scheme.dynaq.bdp_bytes = 62'500;  // 1 Gbps x 500 us
  for (int q = 0; q < 4; ++q) {
    cfg.groups.push_back({.queue = q,
                          .num_flows = 1 << (q + 1),
                          .first_src_host = 1 + 2 * q,
                          .num_src_hosts = 2,
                          .start = 0,
                          .stop = 0,
                          .cc = transport::CcKind::kNewReno});
  }
  cfg.duration = seconds(std::int64_t{8});
  cfg.seed = seed;
  const auto r = harness::run_static_experiment(cfg);

  Outcome o;
  const double ideal[4] = {0.4, 0.3, 0.2, 0.1};
  std::vector<double> means;
  for (int q = 0; q < 4; ++q) means.push_back(r.meter.mean_gbps(q, 4, r.meter.num_windows()));
  for (int q = 0; q < 4; ++q) {
    o.shares.push_back(stats::share_of(means, static_cast<std::size_t>(q)));
    o.abs_err += std::abs(o.shares.back() - ideal[q]);
  }
  // Weighted Jain index: normalize each queue's rate by its weight first.
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t w = 4; w < r.meter.num_windows(); ++w, ++n) {
    const auto xs = r.meter.window_gbps(w);
    std::vector<double> normalized;
    const double weights[4] = {4, 3, 2, 1};
    for (int q = 0; q < 4; ++q) {
      normalized.push_back(xs[static_cast<std::size_t>(q)] / weights[q]);
    }
    sum += stats::jain_index(normalized);
  }
  o.mean_jain_weighted = sum / static_cast<double>(n);
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 1));

  std::puts("Ablation — satisfaction threshold rule, DRR weights 4:3:2:1,");
  std::puts("queue i has 2^i flows (ideal shares 0.400/0.300/0.200/0.100)\n");
  harness::Table t({"satisfaction rule", "share_q1", "share_q2", "share_q3", "share_q4",
                    "abs_err", "weighted_jain"});
  for (const auto& [name, rule] :
       std::vector<std::pair<const char*, core::SatisfactionRule>>{
           {"S_i = B*w/Sum(w)  (Eq. 3)", core::SatisfactionRule::kBufferShare},
           {"S_i = WBDP_i      (no headroom)", core::SatisfactionRule::kWeightedBdp}}) {
    const auto o = run(rule, seed);
    t.row({name, bench::fmt(o.shares[0], 3), bench::fmt(o.shares[1], 3),
           bench::fmt(o.shares[2], 3), bench::fmt(o.shares[3], 3), bench::fmt(o.abs_err, 3),
           bench::fmt(o.mean_jain_weighted, 4)});
  }
  t.print();
  std::puts("\npaper's argument: Eq. 3's headroom is needed because with S_i = WBDP_i");
  std::puts("threshold fluctuation destabilizes weighted sharing. In this simulator both");
  std::puts("rules hold weighted fairness (see EXPERIMENTS.md): the instability the");
  std::puts("authors observed appears to be testbed-stack-specific, and Eq. 3 remains");
  std::puts("the safe choice since it never performs worse");
  return 0;
}
