// Robustness: mid-run weight churn (DESIGN.md §11). Four always-active DRR
// queues on the testbed star while a scenario timeline rewrites the queue
// weights every eighth of the run (rotating a 4× promotion, then restoring
// the flat split). DynaQ must rebalance ΣT = B through every update — the
// invariant auditor checks the sum at each rebalance — and track the new
// split without losing aggregate throughput; DT and BestEffort ignore
// weights entirely and serve as the churn-oblivious baselines.
#include <algorithm>
#include <stdexcept>

#include "bench/common.hpp"
#include "harness/scenario_cli.hpp"
#include "scenario/scenario.hpp"
#include "stats/fairness.hpp"

using namespace dynaq;

namespace {

constexpr int kNumQueues = 4;

harness::StaticExperimentConfig experiment_config(core::SchemeKind kind, Time duration,
                                                  std::uint64_t seed,
                                                  const scenario::Scenario& scn) {
  harness::StaticExperimentConfig cfg;
  cfg.star = bench::testbed_star(kind, /*num_hosts=*/1 + 2 * kNumQueues);
  // Two sender hosts per queue (DESIGN.md): the standing queue stays at the
  // switch egress port under test.
  for (int q = 0; q < kNumQueues; ++q) {
    cfg.groups.push_back({.queue = q,
                          .num_flows = 2,
                          .first_src_host = 1 + 2 * q,
                          .num_src_hosts = 2,
                          .start = 0,
                          .stop = 0,
                          .cc = transport::CcKind::kNewReno});
  }
  cfg.duration = duration;
  // 16 windows per run so the eighth-of-the-run scenario phases resolve.
  cfg.meter_window = std::max(duration / 16, milliseconds(std::int64_t{10}));
  cfg.seed = seed;
  cfg.scenario = &scn;
  return cfg;
}

sweep::JobResult run_job(const sweep::JobPoint& point, Time duration,
                         const scenario::Scenario& scn) {
  const auto kind = core::parse_scheme(point.label("scheme"));
  const auto seed = static_cast<std::uint64_t>(point.number("seed"));
  auto r = harness::run_static_experiment(experiment_config(kind, duration, seed, scn));

  double agg = 0.0;
  std::vector<double> per_queue(kNumQueues, 0.0);
  const auto windows = static_cast<double>(r.meter.num_windows());
  for (std::size_t w = 0; w < r.meter.num_windows(); ++w) {
    agg += r.meter.aggregate_gbps(w);
    for (int q = 0; q < kNumQueues; ++q) per_queue[static_cast<std::size_t>(q)] += r.meter.gbps(w, q);
  }
  for (double& x : per_queue) x /= windows;

  std::map<std::string, double> metrics;
  metrics["agg_gbps"] = agg / windows;
  metrics["jain"] = stats::jain_index(per_queue);
  metrics["drops"] = static_cast<double>(r.bottleneck_stats.dropped);
  metrics["retx"] = static_cast<double>(r.sender_totals.retransmissions);
  metrics["scenario_actions"] = static_cast<double>(r.scenario_actions);
  sweep::JobResult job{std::move(metrics), std::move(r.telemetry)};
  job.trajectory_hash = r.trajectory_hash;
  return job;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  if (harness::list_scenarios_requested(cli)) return 0;
  const bool full = cli.flag("full");
  const Time duration = seconds(cli.real("duration-s", full ? 10.0 : 4.0));
  const auto seeds = cli.reals("seeds", {1, 2, 3});
  const auto schemes = bench::schemes_from_cli(
      cli, {core::SchemeKind::kDynaQ, core::SchemeKind::kDynamicThreshold, core::SchemeKind::kBestEffort});
  const std::string scenario_name = cli.text("scenario", "weight_churn");

  scenario::ScenarioParams sp;
  sp.duration = duration;
  sp.num_queues = kNumQueues;
  sp.qdisc = "sw.p0";  // the receiver downlink — the bottleneck under test
  sp.link = "sw.p0";
  scenario::Scenario scn;
  try {
    scn = scenario::make_scenario(scenario_name, sp);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::printf("Robustness — scenario '%s' over %d DRR queues (testbed star)\n",
              scn.name.c_str(), kNumQueues);
  std::puts("(mid-run actions applied through scenario::ScenarioDirector; ΣT = B audited");
  std::puts(" at every weight rebalance)\n");

  std::vector<std::string> names;
  for (const auto kind : schemes) names.emplace_back(core::scheme_name(kind));
  sweep::SweepSpec spec;
  spec.axes = {sweep::Axis::labels("scheme", std::move(names)),
               sweep::Axis::numeric("seed", seeds)};
  auto run = bench::run_sweep(cli, "rob_weight_churn", spec,
                              [duration, &scn](const sweep::JobPoint& point) {
                                return run_job(point, duration, scn);
                              });

  harness::Table t({"scheme", "agg_gbps", "jain", "drops", "retx", "actions"});
  for (const auto& row : run.store.aggregate("seed")) {
    const auto metric = [&row](const char* name) {
      const auto it = row.metrics.find(name);
      return it == row.metrics.end() ? 0.0 : it->second.mean;
    };
    t.row({row.coords.front().second.label, bench::fmt(metric("agg_gbps")),
           bench::fmt(metric("jain")), bench::fmt(metric("drops"), 0),
           bench::fmt(metric("retx"), 0), bench::fmt(metric("scenario_actions"), 0)});
  }
  t.print();
  std::puts("\nexpected shape: DynaQ keeps aggregate ~line rate through every rebalance");
  std::puts("(ΣT = B holds at each update); DT/BestEffort ignore the weight changes");
  return run.exit_code;
}
