// Figure 2: flow-size CDFs of the four production workloads used in the
// dynamic-flow experiments.
#include "bench/common.hpp"
#include "workload/flow_size_distribution.hpp"

using namespace dynaq;

int main() {
  std::puts("Figure 2 — workloads used in dynamic flow experiments\n");
  const double probs[] = {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0};

  harness::Table t({"cdf", "websearch_KB", "datamining_KB", "cache_KB", "hadoop_KB"});
  for (const double p : probs) {
    std::vector<std::string> row{bench::fmt(p, 2)};
    for (const auto* w : workload::all_workloads()) {
      row.push_back(bench::fmt(w->quantile(p) / 1000.0, 1));
    }
    t.row(std::move(row));
  }
  t.print();

  std::puts("");
  harness::Table m({"workload", "mean_KB", "median_KB", "p99_MB"});
  for (const auto* w : workload::all_workloads()) {
    m.row({std::string(w->name()), bench::fmt(w->mean_bytes() / 1000.0, 1),
           bench::fmt(w->quantile(0.5) / 1000.0, 1), bench::fmt(w->quantile(0.99) / 1e6, 2)});
  }
  m.print();
  std::puts("\npaper shape: all four are heavy-tailed (median << mean)");
  return 0;
}
