// Ablation (§II-C related work): classic shared-buffer Dynamic Threshold
// (T = alpha * free buffer, same for every queue) versus DynaQ. DT shares
// the port buffer adaptively but is blind to per-queue weights, so an
// aggressive queue still crowds out a light one.
#include "bench/common.hpp"

using namespace dynaq;

namespace {

struct Outcome {
  double q1;
  double q2;
  double aggregate;
};

Outcome run(core::SchemeKind kind, double alpha, std::uint64_t seed,
            std::vector<double> weights = {1, 1, 1, 1}) {
  harness::StaticExperimentConfig cfg;
  cfg.star = bench::testbed_star(kind, /*num_hosts=*/5, std::move(weights));
  cfg.star.scheme.dt_alpha = alpha;
  cfg.groups = {
      {.queue = 0, .num_flows = 2, .first_src_host = 1, .num_src_hosts = 2,
       .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno},
      {.queue = 1, .num_flows = 16, .first_src_host = 3, .num_src_hosts = 2,
       .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno},
  };
  cfg.duration = seconds(std::int64_t{8});
  cfg.seed = seed;
  const auto r = harness::run_static_experiment(cfg);
  const auto last = r.meter.num_windows();
  return {r.meter.mean_gbps(0, 4, last), r.meter.mean_gbps(1, 4, last),
          r.meter.mean_gbps(0, 4, last) + r.meter.mean_gbps(1, 4, last)};
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 1));

  std::puts("Ablation — classic Dynamic Threshold vs DynaQ (2 vs 16 flows, equal weights)\n");
  harness::Table t({"scheme", "queue1_Gbps", "queue2_Gbps", "aggregate"});
  for (const auto& [name, kind, alpha] :
       std::vector<std::tuple<const char*, core::SchemeKind, double>>{
           {"DT alpha=1", core::SchemeKind::kDynamicThreshold, 1.0},
           {"DT alpha=0.5", core::SchemeKind::kDynamicThreshold, 0.5},
           {"BestEffort", core::SchemeKind::kBestEffort, 0.0},
           {"DynaQ", core::SchemeKind::kDynaQ, 0.0}}) {
    const auto o = run(kind, alpha, seed);
    t.row({name, bench::fmt(o.q1), bench::fmt(o.q2), bench::fmt(o.aggregate)});
  }
  t.print();

  // DT is blind to queue weights: with DRR weights 3:1 on the first two
  // queues, the buffer partition should track 3:1 occupancy needs; DT's
  // uniform alpha-threshold cannot (§II-C's per-queue fairness argument).
  std::puts("\nweighted case (DRR weights 3:1, 8 flows each; ideal 0.75/0.25):");
  harness::Table wt({"scheme", "share_q1", "share_q2"});
  for (const auto& [name, kind, alpha] :
       std::vector<std::tuple<const char*, core::SchemeKind, double>>{
           {"DT alpha=1", core::SchemeKind::kDynamicThreshold, 1.0},
           {"DynaQ", core::SchemeKind::kDynaQ, 0.0}}) {
    harness::StaticExperimentConfig cfg;
    cfg.star = bench::testbed_star(kind, /*num_hosts=*/5, {3, 1, 1, 1});
    cfg.star.scheme.dt_alpha = alpha;
    cfg.groups = {
        {.queue = 0, .num_flows = 8, .first_src_host = 1, .num_src_hosts = 2,
         .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno},
        {.queue = 1, .num_flows = 8, .first_src_host = 3, .num_src_hosts = 2,
         .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno},
    };
    cfg.duration = seconds(std::int64_t{8});
    cfg.seed = seed;
    const auto r = harness::run_static_experiment(cfg);
    std::vector<double> means{r.meter.mean_gbps(0, 4, r.meter.num_windows()),
                              r.meter.mean_gbps(1, 4, r.meter.num_windows())};
    wt.row({name, bench::fmt(stats::share_of(means, 0), 3),
            bench::fmt(stats::share_of(means, 1), 3)});
  }
  wt.print();
  std::puts("\nfinding: per-queue DT does much better than §II-C suggests at this single-");
  std::puts("port operating point — the DRR scheduler provides the weighting as long as");
  std::puts("every queue can hold a window, and alpha*(B - occupied) rarely binds the");
  std::puts("light queue. DT's documented weaknesses (per-port fairness across ports,");
  std::puts("headroom waste) need a multi-port scenario that DynaQ also solves without");
  std::puts("DT's alpha tuning knob");
  return 0;
}
