// Ablation (extension of §II-B's protocol-dependency argument): the
// ECN-based isolation schemes do not just require *some* ECN transport —
// their latency benefits assume DCTCP-style fraction-proportional backoff.
// Running the same markers under classic RFC 3168 TCP-ECN (halve on any
// mark) shows how much of their performance is really the transport's.
// DynaQ's numbers are identical in both columns by construction: it never
// touches ECN for non-ECN senders.
#include <algorithm>
#include <tuple>

#include "bench/fct_common.hpp"

using namespace dynaq;

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const auto loads = cli.reals("loads", {0.5, 0.7});
  const auto flows = static_cast<std::size_t>(cli.integer("flows", 1'500));
  const auto seeds = cli.reals("seeds", {static_cast<double>(cli.integer("seed", 1))});

  std::puts("Ablation — ECN schemes under DCTCP vs classic RFC 3168 TCP-ECN senders");
  std::printf("(%zu flows per run, web search, SPQ(1)/DRR(4), PIAS)\n\n", flows);

  int exit_code = 0;
  for (const auto& [label, sweep_name, ecn_cc] :
       std::vector<std::tuple<const char*, const char*, transport::CcKind>>{
           {"DCTCP senders", "abl_generic_ecn_dctcp", transport::CcKind::kDctcp},
           {"RFC3168 TCP-ECN senders", "abl_generic_ecn_rfc3168",
            transport::CcKind::kNewRenoEcn}}) {
    bench::FctSweepConfig sweep;
    sweep.schemes = bench::schemes_from_cli(
        cli, {core::SchemeKind::kDynaQ, core::SchemeKind::kTcn, core::SchemeKind::kPmsb});
    sweep.loads = loads;
    sweep.flows = flows;
    sweep.ecn_cc = ecn_cc;
    sweep.seeds = seeds;
    std::printf("=== %s ===\n", label);
    const auto run = bench::run_fct_sweep(cli, sweep_name, sweep);
    exit_code = std::max(exit_code, run.exit_code);
    const auto results = bench::fct_results_from_store(run.store);
    bench::print_fct_metric(results, core::SchemeKind::kDynaQ, sweep.loads,
                            "average FCT, small flows (<=100KB)",
                            &stats::FctSummary::avg_small_ms);
    bench::print_fct_metric(results, core::SchemeKind::kDynaQ, sweep.loads,
                            "average FCT, large flows (>10MB)",
                            &stats::FctSummary::avg_large_ms);
  }
  std::puts("expected: the markers' relative standing shifts with the ECN transport —");
  std::puts("isolation built on ECN inherits the transport's reaction curve, which is");
  std::puts("exactly the dependency DynaQ avoids");
  return exit_code;
}
