// Ablation (extension of §II-B's protocol-dependency argument): the
// ECN-based isolation schemes do not just require *some* ECN transport —
// their latency benefits assume DCTCP-style fraction-proportional backoff.
// Running the same markers under classic RFC 3168 TCP-ECN (halve on any
// mark) shows how much of their performance is really the transport's.
// DynaQ's numbers are identical in both columns by construction: it never
// touches ECN for non-ECN senders.
#include "bench/fct_common.hpp"

using namespace dynaq;

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const auto loads = cli.reals("loads", {0.5, 0.7});
  const auto flows = static_cast<std::size_t>(cli.integer("flows", 1'500));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 1));

  std::puts("Ablation — ECN schemes under DCTCP vs classic RFC 3168 TCP-ECN senders");
  std::printf("(%zu flows per run, web search, SPQ(1)/DRR(4), PIAS)\n\n", flows);

  for (const auto& [label, ecn_cc] :
       std::vector<std::pair<const char*, transport::CcKind>>{
           {"DCTCP senders", transport::CcKind::kDctcp},
           {"RFC3168 TCP-ECN senders", transport::CcKind::kNewRenoEcn}}) {
    bench::FctSweepConfig sweep;
    sweep.schemes = {core::SchemeKind::kDynaQ, core::SchemeKind::kTcn,
                     core::SchemeKind::kPmsb};
    sweep.loads = loads;
    sweep.flows = flows;
    sweep.ecn_cc = ecn_cc;
    sweep.seed = seed;
    std::printf("=== %s ===\n", label);
    const auto results = bench::run_fct_sweep(sweep);
    bench::print_fct_metric(results, core::SchemeKind::kDynaQ, sweep.loads,
                            "average FCT, small flows (<=100KB)",
                            &stats::FctSummary::avg_small_ms);
    bench::print_fct_metric(results, core::SchemeKind::kDynaQ, sweep.loads,
                            "average FCT, large flows (>10MB)",
                            &stats::FctSummary::avg_large_ms);
  }
  std::puts("expected: the markers' relative standing shifts with the ECN transport —");
  std::puts("isolation built on ECN inherits the transport's reaction curve, which is");
  std::puts("exactly the dependency DynaQ avoids");
  return 0;
}
