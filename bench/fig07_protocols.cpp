// Figure 7: protocol independence — queues 1,2 use (NewReno) TCP while
// queues 3,4 use CUBIC, same deactivation schedule as Figure 5. DynaQ must
// keep fair sharing regardless of the transport mix.
#include "bench/common.hpp"

using namespace dynaq;

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const bool full = cli.flag("full");
  const double scale = full ? 1.0 : 0.4;
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 1));

  std::puts("Figure 7 — DynaQ with 2 TCP (queues 1,2) and 2 CUBIC (queues 3,4) senders");
  std::printf("(deactivation schedule as Figure 5, scaled x%.1f)\n\n", scale);

  harness::StaticExperimentConfig cfg;
  cfg.star = bench::testbed_star(core::SchemeKind::kDynaQ, /*num_hosts=*/9);
  for (int q = 0; q < 4; ++q) {
    cfg.groups.push_back({.queue = q,
                          .num_flows = 1 << (q + 1),
                          .first_src_host = 1 + 2 * q,
                          .num_src_hosts = 2,
                          .start = 0,
                          .stop = seconds((25.0 - 5.0 * q) * scale),
                          .cc = q < 2 ? transport::CcKind::kNewReno
                                      : transport::CcKind::kCubic});
  }
  cfg.duration = seconds(25.0 * scale);
  cfg.meter_window = milliseconds(std::int64_t{500});
  cfg.seed = seed;
  const auto r = harness::run_static_experiment(cfg);

  harness::Table t({"time_s", "q1_tcp", "q2_tcp", "q3_cubic", "q4_cubic", "aggregate"});
  for (std::size_t w = 0; w < r.meter.num_windows(); ++w) {
    t.row({bench::fmt((static_cast<double>(w) + 0.5) * 0.5, 1), bench::fmt(r.meter.gbps(w, 0)),
           bench::fmt(r.meter.gbps(w, 1)), bench::fmt(r.meter.gbps(w, 2)),
           bench::fmt(r.meter.gbps(w, 3)), bench::fmt(r.meter.aggregate_gbps(w))});
  }
  t.print();

  // Fairness during the all-active phase.
  const auto wps = static_cast<std::size_t>(seconds(10.0 * scale) / cfg.meter_window);
  std::vector<double> means;
  for (int q = 0; q < 4; ++q) means.push_back(r.meter.mean_gbps(q, 2, wps));
  std::printf("\nall-active phase shares: %.2f / %.2f / %.2f / %.2f (ideal 0.25 each)\n",
              stats::share_of(means, 0), stats::share_of(means, 1), stats::share_of(means, 2),
              stats::share_of(means, 3));
  std::puts("paper shape: fair sharing holds across transports; brief aggregate dips at");
  std::puts("deactivation instants are ramp-up, not buffer policy");
  return 0;
}
