// Figure 3: throughput convergence of two active DRR queues with equal
// weights. Queue 1 carries 2 flows, queue 2 carries 16 flows (iperf, 10 s);
// only DynaQ converges to an equal split.
#include "bench/common.hpp"

using namespace dynaq;

namespace {

harness::StaticExperimentConfig experiment_config(core::SchemeKind kind, Time duration,
                                         std::uint64_t seed) {
  harness::StaticExperimentConfig cfg;
  cfg.star = bench::testbed_star(kind, /*num_hosts=*/5);
  cfg.groups = {
      {.queue = 0, .num_flows = 2, .first_src_host = 1, .num_src_hosts = 2,
       .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno},
      {.queue = 1, .num_flows = 16, .first_src_host = 3, .num_src_hosts = 2,
       .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno},
  };
  cfg.duration = duration;
  cfg.meter_window = milliseconds(std::int64_t{500});
  cfg.seed = seed;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const auto duration = seconds(cli.integer("seconds", 10));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 1));
  const auto csv_dir = cli.text("csv", "");
  const auto jsonl_dir = cli.text("jsonl", "");

  std::puts("Figure 3 — throughput convergence of 2 active DRR queues, equal weights");
  std::puts("(queue1: 2 flows, queue2: 16 flows; 4 DRR queues configured)\n");

  const core::SchemeKind kinds[] = {core::SchemeKind::kBestEffort, core::SchemeKind::kPql,
                                    core::SchemeKind::kDynaQ};
  for (const auto kind : kinds) {
    const auto r = harness::run_static_experiment(experiment_config(kind, duration, seed));
    std::printf("--- %s ---\n", std::string(core::scheme_name(kind)).c_str());
    std::vector<std::vector<double>> series;
    for (std::size_t w = 0; w < r.meter.num_windows(); ++w) {
      series.push_back({(static_cast<double>(w) + 0.5) * 0.5, r.meter.gbps(w, 0),
                        r.meter.gbps(w, 1), r.meter.aggregate_gbps(w)});
    }
    bench::maybe_write_csv(csv_dir, "fig03_" + std::string(core::scheme_name(kind)),
                           {"time_s", "queue1_gbps", "queue2_gbps", "aggregate"}, series);
    harness::Table t({"time_s", "queue1_Gbps", "queue2_Gbps", "aggregate"});
    for (std::size_t w = 0; w < r.meter.num_windows(); ++w) {
      t.row({bench::fmt((static_cast<double>(w) + 0.5) * 0.5, 1), bench::fmt(r.meter.gbps(w, 0)),
             bench::fmt(r.meter.gbps(w, 1)), bench::fmt(r.meter.aggregate_gbps(w))});
    }
    t.print();
    const auto last = r.meter.num_windows();
    std::printf("mean after warmup: q1=%.3f q2=%.3f (ideal 0.5/0.5)\n",
                r.meter.mean_gbps(0, 2, last), r.meter.mean_gbps(1, 2, last));
    std::printf("telemetry: %llu threshold exchanges, %llu drops (%llu policy, %llu nic)\n\n",
                static_cast<unsigned long long>(r.telemetry.threshold_exchanges),
                static_cast<unsigned long long>(r.telemetry.total_drops()),
                static_cast<unsigned long long>(
                    r.telemetry.drops(telemetry::DropReason::kThreshold) +
                    r.telemetry.drops(telemetry::DropReason::kVictimUnsatisfied) +
                    r.telemetry.drops(telemetry::DropReason::kVictimTooSmall)),
                static_cast<unsigned long long>(
                    r.telemetry.drops(telemetry::DropReason::kNicFull)));
    if (!jsonl_dir.empty()) {
      const auto path =
          jsonl_dir + "/fig03_" + std::string(core::scheme_name(kind)) + ".events.jsonl";
      if (telemetry::write_events_jsonl(path, r.telemetry_events, r.telemetry_ports)) {
        std::printf("wrote %s (%zu events)\n\n", path.c_str(), r.telemetry_events.size());
      }
    }
  }
  std::puts("paper shape: DynaQ converges to an even split; BestEffort skews to queue2;");
  std::puts("PQL is fairer than BestEffort but still uneven");
  return 0;
}
