// Ablation (§III-B2): victim selection by largest *extra* buffer (DynaQ)
// versus the strawman largest *threshold*. With unequal weights the
// strawman repeatedly raids the heaviest queue even when it holds only the
// minimum buffer for its share, violating weighted fairness.
#include "bench/common.hpp"

using namespace dynaq;

namespace {

std::vector<double> run(core::VictimSelection victim, std::uint64_t seed) {
  harness::StaticExperimentConfig cfg;
  cfg.star = bench::testbed_star(core::SchemeKind::kDynaQ, /*num_hosts=*/9, {4, 3, 2, 1});
  cfg.star.scheme.dynaq.victim = victim;
  for (int q = 0; q < 4; ++q) {
    cfg.groups.push_back({.queue = q,
                          .num_flows = 1 << (q + 1),
                          .first_src_host = 1 + 2 * q,
                          .num_src_hosts = 2,
                          .start = 0,
                          .stop = 0,
                          .cc = transport::CcKind::kNewReno});
  }
  cfg.duration = seconds(std::int64_t{8});
  cfg.seed = seed;
  const auto r = harness::run_static_experiment(cfg);
  std::vector<double> means;
  for (int q = 0; q < 4; ++q) means.push_back(r.meter.mean_gbps(q, 4, r.meter.num_windows()));
  return means;
}

double share_error(const std::vector<double>& means) {
  const double ideal[4] = {0.4, 0.3, 0.2, 0.1};
  double err = 0.0;
  for (int q = 0; q < 4; ++q) {
    err += std::abs(stats::share_of(means, static_cast<std::size_t>(q)) - ideal[q]);
  }
  return err;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 1));

  std::puts("Ablation — victim selection rule, weights 4:3:2:1, queue i has 2^i flows\n");
  harness::Table t({"victim rule", "share_q1", "share_q2", "share_q3", "share_q4", "abs_err"});
  for (const auto& [name, rule] :
       std::vector<std::pair<const char*, core::VictimSelection>>{
           {"largest-extra (DynaQ)", core::VictimSelection::kLargestExtra},
           {"largest-threshold", core::VictimSelection::kLargestThreshold}}) {
    const auto means = run(rule, seed);
    t.row({name, bench::fmt(stats::share_of(means, 0), 3), bench::fmt(stats::share_of(means, 1), 3),
           bench::fmt(stats::share_of(means, 2), 3), bench::fmt(stats::share_of(means, 3), 3),
           bench::fmt(share_error(means), 3)});
  }
  t.print();
  std::puts("\nideal shares 0.400/0.300/0.200/0.100; the largest-extra rule should have");
  std::puts("a smaller absolute share error");
  return 0;
}
